// Scaling-path contracts for the chunked Monte-Carlo runtime: the
// compiled kernel's serial-vs-pooled bitwise identity across thread
// counts, per-worker accumulation under adversarial chunk geometries
// (fewer chunks than threads, far more chunks than threads, zero
// samples), the grain-selection policy, cancellation mid-run, and a
// wall-clock monotonicity smoke (skipped on single-core machines where
// parallel speedup is unmeasurable).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <thread>

#include "cqa/approx/monte_carlo.h"
#include "cqa/core/constraint_database.h"
#include "cqa/logic/parser.h"
#include "cqa/runtime/parallel_sampler.h"
#include "cqa/runtime/session.h"
#include "cqa/runtime/thread_pool.h"

namespace cqa {
namespace {

// Bit-exact double comparison: distinguishes +0.0 from -0.0 and fails
// on any representational drift EXPECT_EQ's == would forgive for NaN.
::testing::AssertionResult bits_equal(double a, double b) {
  std::uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  if (ab == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

TEST(RuntimeScaling, BitwiseIdentityAcrossThreadCounts) {
  Database db;
  VarTable vars;
  // FO+POLY core with a parameter: exercises the non-linear fallback
  // atoms and the hoisted parameter binding on the pooled path.
  auto phi =
      parse_formula("x^2 + y^2 <= a & x + y >= 0", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));
  const std::size_t a = static_cast<std::size_t>(vars.find("a"));
  const std::map<std::size_t, Rational> params{{a, Rational(9, 10)}};

  ParallelSampler sampler(&db, phi, {x, y}, /*sample_size=*/60000,
                          /*seed=*/1234, /*chunk_size=*/512);
  const double serial = sampler.estimate(params, nullptr).value_or_die();
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const double pooled = sampler.estimate(params, &pool).value_or_die();
    EXPECT_TRUE(bits_equal(serial, pooled)) << "threads=" << threads;
  }
}

TEST(RuntimeScaling, FewerChunksThanThreads) {
  // nchunks < threads: most workers find nothing to claim; the ones
  // that do must still land their hits in the right padded slots.
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  ParallelSampler sampler(&db, phi, {0, 1}, /*sample_size=*/700,
                          /*seed=*/5, /*chunk_size=*/256);  // 3 chunks
  ASSERT_EQ(sampler.num_chunks(), 3u);
  const double serial = sampler.estimate({}, nullptr).value_or_die();
  ThreadPool pool(8);
  EXPECT_TRUE(bits_equal(serial, sampler.estimate({}, &pool).value_or_die()));
}

TEST(RuntimeScaling, ManyMoreChunksThanThreads) {
  // nchunks >> threads with a tiny chunk size: stresses grain batching
  // (recommend_grain must coalesce chunks, not dispatch one at a time).
  Database db;
  VarTable vars;
  auto phi = parse_formula("x + y <= 1", &vars).value_or_die();
  ParallelSampler sampler(&db, phi, {0, 1}, /*sample_size=*/40000,
                          /*seed=*/77, /*chunk_size=*/16);  // 2500 chunks
  ASSERT_EQ(sampler.num_chunks(), 2500u);
  const double serial = sampler.estimate({}, nullptr).value_or_die();
  ThreadPool pool(4);
  EXPECT_TRUE(bits_equal(serial, sampler.estimate({}, &pool).value_or_die()));
}

TEST(RuntimeScaling, ZeroSamples) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x <= 1/2", &vars).value_or_die();
  ParallelSampler sampler(&db, phi, {0}, /*sample_size=*/0, /*seed=*/1);
  EXPECT_EQ(sampler.num_chunks(), 0u);
  ThreadPool pool(4);
  auto part = sampler.estimate_partial({}, &pool, nullptr).value_or_die();
  EXPECT_TRUE(part.complete);
  EXPECT_EQ(part.evaluated, 0u);
  EXPECT_EQ(part.hits, 0u);
  EXPECT_EQ(part.estimate, 0.0);
}

TEST(RuntimeScaling, RecommendGrainPolicy) {
  // Cost floor dominates when items are few or cheap...
  EXPECT_EQ(ThreadPool::recommend_grain(100, 8, 32), 32u);
  // ...balance dominates when items are plentiful: ~8 tasks per worker.
  EXPECT_EQ(ThreadPool::recommend_grain(64000, 8, 32), 1000u);
  // Degenerate inputs stay sane.
  EXPECT_EQ(ThreadPool::recommend_grain(0, 8, 32), 1u);
  EXPECT_GE(ThreadPool::recommend_grain(5, 0, 1), 1u);
  EXPECT_EQ(ThreadPool::recommend_grain(7, 4, 1), 1u);
}

TEST(RuntimeScaling, CancelledTokenDropsChunksWhole) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  ParallelSampler sampler(&db, phi, {0, 1}, /*sample_size=*/50000,
                          /*seed=*/3, /*chunk_size=*/1000);
  CancelToken token;
  token.cancel();
  ThreadPool pool(4);
  auto part = sampler.estimate_partial({}, &pool, &token).value_or_die();
  // A pre-cancelled token drops every chunk; expiry is not an error.
  EXPECT_FALSE(part.complete);
  EXPECT_EQ(part.evaluated, 0u);
  EXPECT_EQ(part.requested, 50000u);
}

TEST(RuntimeScaling, PartialChunksAreWholeMultiples) {
  // Whatever survives a racing deadline must be whole chunks: evaluated
  // is always a sum of complete chunk extents, never a torn count.
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  const std::size_t chunk = 512;
  ParallelSampler sampler(&db, phi, {0, 1}, /*sample_size=*/40000,
                          /*seed=*/9, chunk);
  ThreadPool pool(4);
  CancelToken token;
  token.set_deadline_after_ms(1);
  auto part = sampler.estimate_partial({}, &pool, &token).value_or_die();
  EXPECT_EQ(part.evaluated % chunk, 0u)
      << "a chunk was torn mid-count (evaluated=" << part.evaluated << ")";
  if (part.complete) {
    EXPECT_EQ(part.evaluated, 40000u);
  }
}

TEST(RuntimeScaling, BatchMatchesSoloRuns) {
  // The fused batch path must reproduce each member's solo estimate
  // bit for bit, including members with distinct seeds and chunk sizes.
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  ParallelSampler s1(&db, phi, {0, 1}, 20000, 42, 256);
  ParallelSampler s2(&db, phi, {0, 1}, 9000, 7, 64);
  ParallelSampler s3(&db, phi, {0, 1}, 0, 1);
  ThreadPool pool(4);
  std::vector<McBatchItem> items{{&s1, nullptr}, {&s2, nullptr},
                                 {&s3, nullptr}};
  auto batch = ParallelSampler::estimate_partial_batch(items, {}, &pool);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const ParallelSampler* s = items[i].sampler;
    auto solo = s->estimate_partial({}, &pool, nullptr).value_or_die();
    ASSERT_TRUE(batch[i].is_ok()) << batch[i].status().to_string();
    EXPECT_EQ(batch[i].value().hits, solo.hits) << "item " << i;
    EXPECT_EQ(batch[i].value().evaluated, solo.evaluated);
    EXPECT_TRUE(bits_equal(batch[i].value().estimate, solo.estimate));
  }
}

TEST(RuntimeScaling, MonotonicitySmoke) {
  // Wall-clock sanity, not a benchmark: 8 pooled threads should beat
  // 0.7x the serial wall on a 1M-point workload. Only meaningful with
  // real hardware parallelism.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "single hardware thread: parallel speedup is "
                    "unmeasurable here (CI covers this on multicore)";
  }
  Database db;
  VarTable vars;
  auto phi =
      parse_formula("x^2 + y^2 <= 1 & x + y >= 0", &vars).value_or_die();
  ParallelSampler sampler(&db, phi, {0, 1}, /*sample_size=*/1000000,
                          /*seed=*/11, /*chunk_size=*/4096);
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const double serial = sampler.estimate({}, nullptr).value_or_die();
  const auto t1 = clock::now();
  ThreadPool pool(8);
  const double pooled = sampler.estimate({}, &pool).value_or_die();
  const auto t2 = clock::now();
  EXPECT_TRUE(bits_equal(serial, pooled));
  const double serial_s =
      std::chrono::duration<double>(t1 - t0).count();
  const double pooled_s =
      std::chrono::duration<double>(t2 - t1).count();
  EXPECT_LT(pooled_s, 0.7 * serial_s)
      << "8-thread run took " << pooled_s << "s vs serial " << serial_s
      << "s";
}

}  // namespace
}  // namespace cqa
