// Session::run: the unified Request/Answer API, planner routing,
// deadline degradation, and a concurrent eviction stress on the shared
// EvalCache.

#include "cqa/runtime/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace cqa {
namespace {

constexpr const char* kTriangle = "x >= 0 & y >= 0 & x + y <= 1";
constexpr const char* kDisk = "x^2 + y^2 <= 9/10 & 0 <= x & 0 <= y";

SessionOptions two_threads() {
  SessionOptions opts;
  opts.threads = 2;
  return opts;
}

Request volume_request(const std::string& query) {
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = query;
  req.output_vars = {"x", "y"};
  return req;
}

TEST(SessionRunTest, EveryKindFlowsThroughRun) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_region("Box", {"s", "t"},
                            "0 <= s & s <= 1 & 0 <= t & t <= 1")
                  .is_ok());
  Session session(&db, two_threads());

  Request ask;
  ask.kind = RequestKind::kAsk;
  ask.query = "E x. E y. Box(x, y) & x + y <= 1";
  auto a = session.run(ask);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(a.value().truth.has_value());
  EXPECT_TRUE(*a.value().truth);

  Request rewrite;
  rewrite.kind = RequestKind::kRewrite;
  rewrite.query = "E u. Box(x, u) & u <= y";
  auto r = session.run(rewrite);
  ASSERT_TRUE(r.is_ok());
  ASSERT_NE(r.value().formula, nullptr);
  EXPECT_TRUE(r.value().formula->is_quantifier_free());

  Request cells;
  cells.kind = RequestKind::kCells;
  cells.query = "Box(x, y) & x + y <= 1";
  cells.output_vars = {"x", "y"};
  auto c = session.run(cells);
  ASSERT_TRUE(c.is_ok());
  EXPECT_FALSE(c.value().cells.empty());

  auto v = session.run(volume_request(kTriangle));
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().status, AnswerStatus::kOk);
  ASSERT_TRUE(v.value().volume.exact.has_value());
  EXPECT_EQ(*v.value().volume.exact, Rational(1, 2));

  Request mu;
  mu.kind = RequestKind::kMu;
  mu.query = kTriangle;
  mu.output_vars = {"x", "y"};
  auto m = session.run(mu);
  ASSERT_TRUE(m.is_ok());
  EXPECT_EQ(*m.value().mu, Rational(0));  // bounded set

  Request growth;
  growth.kind = RequestKind::kGrowthPolynomial;
  growth.query = kTriangle;
  growth.output_vars = {"x", "y"};
  auto g = session.run(growth);
  ASSERT_TRUE(g.is_ok());
  EXPECT_TRUE(g.value().growth.has_value());
}

TEST(SessionRunTest, PlannerPicksExactForLinearQueries) {
  ConstraintDatabase db;
  Session session(&db);
  auto a = session.run(volume_request(kTriangle));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(a.value().plan.has_value());
  EXPECT_EQ(a.value().plan->chosen, VolumeStrategy::kAuto);
  EXPECT_TRUE(a.value().volume.exact.has_value());
  EXPECT_EQ(session.metrics().counter_value("planner_choice_exact_total"),
            1u);
  EXPECT_EQ(session.metrics().counter_value("planner_decisions_total"),
            1u);
}

TEST(SessionRunTest, PlannerPicksMonteCarloForNonlinearQueries) {
  ConstraintDatabase db;
  Session session(&db, two_threads());
  Request req = volume_request(kDisk);
  req.budget.epsilon = 0.05;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(a.value().plan.has_value());
  EXPECT_EQ(a.value().plan->chosen, VolumeStrategy::kMonteCarlo);
  EXPECT_EQ(a.value().status, AnswerStatus::kOk);
  ASSERT_TRUE(a.value().volume.estimate.has_value());
  // Quarter-disk of radius sqrt(0.9): area pi * 0.9 / 4 ~ 0.7069.
  EXPECT_NEAR(*a.value().volume.estimate, 0.7069, 0.05);
  EXPECT_EQ(a.value().volume.points_evaluated,
            a.value().volume.points_requested);
  EXPECT_EQ(session.metrics().counter_value("planner_choice_mc_total"),
            1u);
}

// {(x, y) : x <= y} inside the unit box, phrased with a quantifier so
// Monte-Carlo must sample the QE rewrite (mc_count_hits rejects
// quantified formulas). True volume: 1/2.
constexpr const char* kQuantifiedHalfBox =
    "E u. x <= u & u <= y & 0 <= x & y <= 1";

TEST(SessionRunTest, QuantifiedQueryRoutedToMonteCarloUsesQERewrite) {
  // Regression: the planner analyzes the QE rewrite (so a quantified
  // FO+LIN query plans as MC-feasible); execution must evaluate that
  // same rewrite, not the raw parse.
  ConstraintDatabase db;
  SessionOptions opts = two_threads();
  opts.cost_model.exact_cell_ns = 1e12;  // price exact out of the race
  opts.cost_model.decompose_cell_ns = 1e12;
  Session session(&db, opts);
  Request req = volume_request(kQuantifiedHalfBox);
  req.budget.epsilon = 0.05;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(a.value().plan.has_value());
  EXPECT_EQ(a.value().plan->chosen, VolumeStrategy::kMonteCarlo);
  EXPECT_EQ(a.value().status, AnswerStatus::kOk);
  ASSERT_TRUE(a.value().volume.estimate.has_value());
  EXPECT_NEAR(*a.value().volume.estimate, 0.5, 0.06);
}

TEST(SessionRunTest, QuantifiedQueryDeadlineReducedMonteCarlo) {
  // The deadline-reduced MC rung must hand back a degraded estimate for
  // a quantified query, not kUnsupported from the raw parse.
  ConstraintDatabase db;
  SessionOptions opts = two_threads();
  opts.cost_model.exact_cell_ns = 1e12;
  opts.cost_model.decompose_cell_ns = 1e12;
  Session session(&db, opts);
  Request req = volume_request(kQuantifiedHalfBox);
  req.budget.epsilon = 0.0005;  // wants far more points than 5ms affords
  req.budget.delta = 0.05;
  req.budget.deadline_ms = 5;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  const Answer& ans = a.value();
  ASSERT_TRUE(ans.plan.has_value());
  EXPECT_EQ(ans.plan->chosen, VolumeStrategy::kMonteCarlo);
  EXPECT_EQ(ans.status, AnswerStatus::kDegraded);
  ASSERT_TRUE(ans.volume.estimate.has_value());
  ASSERT_TRUE(ans.volume.lower.has_value());
  ASSERT_TRUE(ans.volume.upper.has_value());
  EXPECT_GE(*ans.volume.lower, 0.0);
  EXPECT_LE(*ans.volume.upper, 1.0);
}

TEST(SessionRunTest, ForcedMonteCarloOnQuantifiedQuery) {
  // Pinning the strategy bypasses the planner but must still sample the
  // QE rewrite.
  ConstraintDatabase db;
  Session session(&db, two_threads());
  Request req = volume_request(kQuantifiedHalfBox);
  req.strategy = VolumeStrategy::kMonteCarlo;
  req.budget.epsilon = 0.05;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(a.value().volume.estimate.has_value());
  EXPECT_NEAR(*a.value().volume.estimate, 0.5, 0.06);
}

TEST(SessionRunTest, ForcedStrategyBypassesPlanner) {
  ConstraintDatabase db;
  Session session(&db);
  Request req = volume_request(kTriangle);
  req.strategy = VolumeStrategy::kTrivialHalf;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  EXPECT_FALSE(a.value().plan.has_value());
  EXPECT_EQ(session.metrics().counter_value("planner_decisions_total"),
            0u);
}

// What the full (no-deadline) plan would draw, for comparison against
// the deadline-reduced sample.
std::size_t full_sample_for(double epsilon, double delta) {
  FormulaStats s;
  s.dimension = 2;
  s.atoms = 3;
  s.linear = false;
  s.quantifier_free = true;
  s.vc_dim = 4.0;
  Budget b;
  b.epsilon = epsilon;
  b.delta = delta;
  return plan_volume(s, b).mc_samples;
}

TEST(SessionRunTest, DeadlineExpiryDegradesInsteadOfFailing) {
  ConstraintDatabase db;
  Session session(&db, two_threads());
  Request req = volume_request(kDisk);
  // An epsilon this small wants hundreds of thousands of points; the
  // deadline affords a fraction of them.
  req.budget.epsilon = 0.0005;
  req.budget.delta = 0.05;
  req.budget.deadline_ms = 3;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  const Answer& ans = a.value();
  EXPECT_EQ(ans.status, AnswerStatus::kDegraded);
  ASSERT_TRUE(ans.plan.has_value());
  // Either rung of the ladder is acceptable under load (reduced MC or
  // the trivial 1/2), but the answer must carry finite widened bars.
  ASSERT_TRUE(ans.volume.estimate.has_value());
  ASSERT_TRUE(ans.volume.lower.has_value());
  ASSERT_TRUE(ans.volume.upper.has_value());
  EXPECT_GE(*ans.volume.upper, *ans.volume.lower);
  if (ans.plan->chosen == VolumeStrategy::kMonteCarlo) {
    EXPECT_LT(ans.plan->mc_samples, full_sample_for(0.0005, 0.05));
  }
  EXPECT_GE(session.metrics().counter_value("planner_degraded_total"), 1u);

  // The decision must be inspectable after the fact.
  EXPECT_NE(plan_to_string(*ans.plan).find("->"), std::string::npos);
}

TEST(SessionRunTest, ZeroDeadlineStillAnswersWithTrivialHalf) {
  ConstraintDatabase db;
  Session session(&db);
  Request req = volume_request(kDisk);
  req.budget.epsilon = 0.01;
  req.budget.deadline_ms = 0;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().status, AnswerStatus::kDegraded);
  ASSERT_TRUE(a.value().volume.estimate.has_value());
  EXPECT_EQ(*a.value().volume.estimate, 0.5);
  EXPECT_EQ(*a.value().volume.lower, 0.0);
  EXPECT_EQ(*a.value().volume.upper, 1.0);
}

TEST(SessionRunTest, DegradedMonteCarloReportsPartialPoints) {
  // Drive the partial path deterministically: a caller-owned cancel
  // token with an armed deadline long enough for a few chunks. Accept
  // either a partial (degraded) or complete outcome -- what must never
  // happen is an error status.
  ConstraintDatabase db;
  Session session(&db, two_threads());
  CancelToken token;
  token.set_deadline_after_ms(2);
  Request req = Request::volume(kDisk)
                    .vars({"x", "y"})
                    .strategy(VolumeStrategy::kMonteCarlo)
                    .epsilon(0.001)
                    .delta(0.05)
                    .cancel(&token);
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  const VolumeAnswer& v = a.value().volume;
  EXPECT_LE(v.points_evaluated, v.points_requested);
  if (v.degraded) {
    EXPECT_LT(v.points_evaluated, v.points_requested);
    ASSERT_TRUE(v.lower.has_value());
    ASSERT_TRUE(v.upper.has_value());
    EXPECT_GE(*v.lower, 0.0);
    EXPECT_LE(*v.upper, 1.0);
  }
}

TEST(SessionRunTest, CallerTokenExpiredBeforeAnyWorkReturnsTrivialHalf) {
  // A token that is already expired must yield the honest last rung
  // (estimate 1/2, bars [0, 1]), never bars derived from zero samples.
  ConstraintDatabase db;
  Session session(&db, two_threads());
  CancelToken token;
  token.set_deadline_after_ms(0);
  Request req = Request::volume(kDisk)
                    .vars({"x", "y"})
                    .strategy(VolumeStrategy::kMonteCarlo)
                    .epsilon(0.01)
                    .delta(0.05)
                    .cancel(&token);
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  const VolumeAnswer& v = a.value().volume;
  EXPECT_TRUE(v.degraded);
  EXPECT_EQ(*v.estimate, 0.5);
  EXPECT_EQ(*v.lower, 0.0);
  EXPECT_EQ(*v.upper, 1.0);
}

TEST(SessionRunTest, AggregateRequest) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_table("R", std::vector<std::vector<std::int64_t>>{
                                    {1}, {2}, {3}})
                  .is_ok());
  Session session(&db);
  Request req;
  req.kind = RequestKind::kAggregate;
  req.query = "R(v)";
  req.output_vars = {"v"};
  req.aggregate_fn = AggregateFn::kSum;
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(*a.value().aggregate, Rational(6));

  // Wrong arity is a Status, not a crash.
  req.output_vars = {"v", "w"};
  EXPECT_FALSE(session.run(req).is_ok());
}

TEST(SessionRunTest, ConcurrentEvictionStress) {
  // Many threads hammer a deliberately tiny cache with more distinct
  // keys than capacity, mixing hits, misses, and evictions on both the
  // rewrite and volume sides. The test asserts accounting stays sane
  // and nothing tears (run under TSan in CI).
  EvalCache cache(EvalCacheOptions{/*rewrite_capacity=*/16,
                                   /*volume_capacity=*/16,
                                   /*shards=*/4});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 200;  // >> capacity: constant eviction
  std::atomic<int> ready{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (i * 31 + t * 17) % kKeySpace;
        const std::string key = "k" + std::to_string(k);
        if (i % 3 == 0) {
          cache.store_volume(key, Rational(k, 7));
        } else if (auto hit = cache.lookup_volume(key)) {
          // A hit must always carry the value stored for that key.
          EXPECT_EQ(*hit, Rational(k, 7));
        }
        if (i % 5 == 0) {
          cache.store_rewrite(key, Formula::make_true());
        } else if (i % 5 == 1) {
          (void)cache.lookup_rewrite(key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const CacheStats vol = cache.volume_stats();
  const CacheStats rw = cache.rewrite_stats();
  EXPECT_LE(vol.entries, 16u);
  EXPECT_LE(rw.entries, 16u);
  EXPECT_GT(vol.evictions, 0u);
  EXPECT_GT(vol.hits + vol.misses, 0u);
  // Stores = lookups resolved as misses is not an invariant under LRU,
  // but total accounted operations must match what the threads issued.
  EXPECT_GT(rw.evictions, 0u);
}

// Fuzz-found parser regressions: every malformed query must come back
// as a kInvalidArgument Status through run(), for both kAsk and kVolume
// (planner-routed and forced), never as a crash or a default Answer.
TEST(SessionRunTest, MalformedQueriesSurfaceAsInvalidArgument) {
  ConstraintDatabase db;
  SessionOptions opts;
  opts.threads = 1;
  Session session(&db, opts);

  const std::vector<std::string> malformed = {
      "",                                // empty input
      "x +",                             // truncated expression
      "x <=",                            // truncated atom
      "E . x <= 1",                      // missing bound variable
      "x ^ 18446744073709551616 <= 1",   // exponent overflows unsigned long
      "x ^ 4000000000 <= 1",             // exponent beyond the parser cap
      std::string(5000, '(') + "x",      // unbounded paren nesting
      std::string(5000, '!') + "x <= 1", // unbounded negation nesting
      "1/0 <= x",                        // division by zero literal
  };
  for (const auto& query : malformed) {
    Request ask;
    ask.kind = RequestKind::kAsk;
    ask.query = query;
    auto a = session.run(ask);
    ASSERT_FALSE(a.is_ok()) << "kAsk accepted: " << query.substr(0, 40);
    EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument)
        << "kAsk on " << query.substr(0, 40) << ": "
        << a.status().to_string();

    Request vol = volume_request(query);
    auto v = session.run(vol);
    ASSERT_FALSE(v.is_ok()) << "kVolume accepted: " << query.substr(0, 40);
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument)
        << "kVolume on " << query.substr(0, 40) << ": "
        << v.status().to_string();

    // Forced strategies must report the same parse error, not run.
    for (VolumeStrategy s : {VolumeStrategy::kExactSweep,
                             VolumeStrategy::kMonteCarlo,
                             VolumeStrategy::kTrivialHalf}) {
      Request forced = volume_request(query);
      forced.strategy = s;
      auto f = session.run(forced);
      ASSERT_FALSE(f.is_ok());
      EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(SessionRunTest, ParserCapsStillAdmitDeepButReasonableInput) {
  ConstraintDatabase db;
  SessionOptions opts;
  opts.threads = 1;
  Session session(&db, opts);
  // 50 levels of nesting and a degree-20 monomial are fine.
  std::string nested = std::string(50, '(') + "x" + std::string(50, ')');
  Request req = volume_request(nested + " >= 0 & x <= 1 & y >= 0 & y <= 1");
  auto v = session.run(req);
  ASSERT_TRUE(v.is_ok()) << v.status().to_string();
  EXPECT_EQ(*v.value().volume.exact, Rational(1));

  Request ask;
  ask.kind = RequestKind::kAsk;
  ask.query = "E z. z^20 <= 1 & z >= 1";
  auto a = session.run(ask);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  EXPECT_TRUE(*a.value().truth);
}

TEST(SessionRunTest, BuilderRequestsCoverTheOldShimSurface) {
  // The per-operation shims are gone; the fluent builders express the
  // same calls through run() and move the same counters.
  ConstraintDatabase db;
  Session session(&db);
  auto v = session.run(Request::volume(kTriangle).vars({"x", "y"}));
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*v.value().volume.exact, Rational(1, 2));
  auto f = session.run(Request::rewrite("x >= 0 & x <= 1"));
  ASSERT_TRUE(f.is_ok());
  ASSERT_NE(f.value().formula, nullptr);
  auto t = session.run(Request::ask("E x. x >= 0 & x <= 1"));
  ASSERT_TRUE(t.is_ok());
  EXPECT_TRUE(*t.value().truth);
  EXPECT_EQ(session.metrics().counter_value("qe_rewrites_total"), 1u);
  EXPECT_EQ(session.metrics().counter_value("volume_calls_total"), 1u);
}

TEST(SessionRunTest, RunRejectsInvalidRequestsUpFront) {
  ConstraintDatabase db;
  Session session(&db);

  // Empty query.
  auto empty = session.run(Request::volume("").vars({"x"}));
  ASSERT_FALSE(empty.is_ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // Epsilon outside (0, 1) -- both ends and NaN.
  for (double bad : {0.0, 1.0, -0.5, 2.0,
                     std::numeric_limits<double>::quiet_NaN()}) {
    auto a = session.run(
        Request::volume(kTriangle).vars({"x", "y"}).epsilon(bad));
    ASSERT_FALSE(a.is_ok()) << "epsilon=" << bad;
    EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
  }

  // Delta outside (0, 1).
  for (double bad : {0.0, 1.0, -1.0}) {
    auto a = session.run(
        Request::volume(kTriangle).vars({"x", "y"}).delta(bad));
    ASSERT_FALSE(a.is_ok()) << "delta=" << bad;
    EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
  }

  // Volume kinds with no output variables.
  for (RequestKind kind : {RequestKind::kVolume, RequestKind::kMu,
                           RequestKind::kGrowthPolynomial}) {
    Request req;
    req.kind = kind;
    req.query = kTriangle;
    auto a = session.run(req);
    ASSERT_FALSE(a.is_ok()) << "kind=" << static_cast<int>(kind);
    EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
  }

  // Aggregate arity: exactly one output variable.
  Request agg = Request::aggregate(AggregateFn::kSum, "R(v)");
  agg.output_vars = {"v", "w"};
  auto a = session.run(agg);
  ASSERT_FALSE(a.is_ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);

  // Non-positive VC-dimension override.
  auto vc = session.run(
      Request::volume(kTriangle).vars({"x", "y"}).vc_dim(0.0));
  ASSERT_FALSE(vc.is_ok());
  EXPECT_EQ(vc.status().code(), StatusCode::kInvalidArgument);

  // submit() resolves invalid requests immediately, same code.
  serve::Ticket ticket = session.submit(Request::volume("").vars({"x"}));
  auto got = ticket.try_get();
  ASSERT_TRUE(got.has_value());  // already resolved, no executor needed
  ASSERT_FALSE(got->is_ok());
  EXPECT_EQ(got->status().code(), StatusCode::kInvalidArgument);

  // Nothing above reached an engine.
  EXPECT_EQ(session.metrics().counter_value("volume_calls_total"), 0u);
}

}  // namespace
}  // namespace cqa
