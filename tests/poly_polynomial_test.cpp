#include "cqa/poly/polynomial.h"

#include <gtest/gtest.h>

namespace cqa {
namespace {

Polynomial X() { return Polynomial::variable(0); }
Polynomial Y() { return Polynomial::variable(1); }
Polynomial C(std::int64_t n, std::int64_t d = 1) {
  return Polynomial::constant(Rational(n, d));
}

TEST(Polynomial, ZeroAndConstant) {
  Polynomial z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z.is_constant());
  EXPECT_EQ(z.total_degree(), -1);
  EXPECT_EQ(z.max_var(), -1);
  EXPECT_EQ(C(5).constant_term(), Rational(5));
  EXPECT_TRUE(C(5).is_constant());
  EXPECT_EQ(C(0), Polynomial());
}

TEST(Polynomial, Arithmetic) {
  Polynomial p = X() + Y();             // x + y
  Polynomial q = X() - Y();             // x - y
  Polynomial prod = p * q;              // x^2 - y^2
  EXPECT_EQ(prod, X() * X() - Y() * Y());
  EXPECT_EQ(p + q, C(2) * X());
  EXPECT_EQ(p - p, Polynomial());
  EXPECT_EQ((p * C(0)), Polynomial());
}

TEST(Polynomial, Degrees) {
  Polynomial p = X() * X() * Y() + X();  // x^2 y + x
  EXPECT_EQ(p.total_degree(), 3);
  EXPECT_EQ(p.degree_in(0), 2);
  EXPECT_EQ(p.degree_in(1), 1);
  EXPECT_EQ(p.degree_in(5), 0);
  EXPECT_EQ(p.max_var(), 1);
}

TEST(Polynomial, Pow) {
  Polynomial p = X() + C(1);
  Polynomial cube = p.pow(3);  // x^3 + 3x^2 + 3x + 1
  EXPECT_EQ(cube.eval({Rational(2)}), Rational(27));
  EXPECT_EQ(p.pow(0), C(1));
}

TEST(Polynomial, Derivative) {
  Polynomial p = X().pow(3) * Y() + X() * Y();  // x^3 y + x y
  Polynomial dx = p.derivative(0);              // 3 x^2 y + y
  EXPECT_EQ(dx, C(3) * X().pow(2) * Y() + Y());
  Polynomial dy = p.derivative(1);              // x^3 + x
  EXPECT_EQ(dy, X().pow(3) + X());
  EXPECT_EQ(C(7).derivative(0), Polynomial());
}

TEST(Polynomial, Eval) {
  Polynomial p = X().pow(2) + Y() * C(2) + C(1);
  EXPECT_EQ(p.eval({Rational(3), Rational(1, 2)}), Rational(11));
  EXPECT_DOUBLE_EQ(p.eval_double({3.0, 0.5}), 11.0);
}

TEST(Polynomial, SubstituteRational) {
  Polynomial p = X().pow(2) * Y() + Y();
  Polynomial sub = p.substitute(0, Rational(2));  // 4y + y = 5y
  EXPECT_EQ(sub, C(5) * Y());
  EXPECT_EQ(sub.degree_in(0), 0);
}

TEST(Polynomial, SubstitutePolynomial) {
  Polynomial p = X().pow(2);
  Polynomial sub = p.substitute(0, Y() + C(1));  // (y+1)^2
  EXPECT_EQ(sub, Y().pow(2) + C(2) * Y() + C(1));
}

TEST(Polynomial, Rename) {
  Polynomial p = X().pow(2) + X();
  Polynomial r = p.rename(0, 3);
  EXPECT_EQ(r.degree_in(0), 0);
  EXPECT_EQ(r.degree_in(3), 2);
  EXPECT_EQ(r.eval({Rational(), Rational(), Rational(), Rational(2)}),
            Rational(6));
}

TEST(Polynomial, CoefficientsIn) {
  Polynomial p = X().pow(2) * Y() + X() * C(3) + C(7);
  auto coeffs = p.coefficients_in(0);  // in x: [7, 3, y]
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_EQ(coeffs[0], C(7));
  EXPECT_EQ(coeffs[1], C(3));
  EXPECT_EQ(coeffs[2], Y());
}

TEST(Polynomial, IsLinear) {
  EXPECT_TRUE((X() + Y() * C(2) + C(1)).is_linear());
  EXPECT_TRUE(C(5).is_linear());
  EXPECT_FALSE((X() * Y()).is_linear());
  EXPECT_FALSE(X().pow(2).is_linear());
}

TEST(Polynomial, ToString) {
  Polynomial p = X().pow(2) * C(2) - Y() + C(-1, 2);
  std::string s = p.to_string();
  EXPECT_NE(s.find("2*x0^2"), std::string::npos);
  EXPECT_NE(s.find("x1"), std::string::npos);
  EXPECT_EQ(Polynomial().to_string(), "0");
  EXPECT_EQ((X() - X()).to_string(), "0");
}

}  // namespace
}  // namespace cqa
