// cqa::check generator, shrinker, and repro-format tests.

#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "cqa/check/generator.h"
#include "cqa/check/repro.h"
#include "cqa/check/shrinker.h"

namespace cqa {
namespace {

TEST(GeneratorTest, SameSeedSameFormula) {
  GenOptions options;
  options.quantifiers = 1;
  FormulaGen gen(options);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const GeneratedFormula a = gen.generate(seed);
    const GeneratedFormula b = gen.generate(seed);
    EXPECT_EQ(a.text(), b.text()) << "seed " << seed;
    EXPECT_EQ(a.core_text(), b.core_text()) << "seed " << seed;
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  FormulaGen gen(GenOptions{});
  std::set<std::string> texts;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    texts.insert(gen.generate(seed).core_text());
  }
  // Some collisions (trivial cores) are fine; wholesale collapse is not.
  EXPECT_GT(texts.size(), 50u);
}

TEST(GeneratorTest, RespectsDimensionAndOutputVars) {
  GenOptions options;
  options.dimension = 3;
  FormulaGen gen(options);
  const GeneratedFormula g = gen.generate(7);
  EXPECT_EQ(g.dimension, 3u);
  ASSERT_EQ(g.output_vars.size(), 3u);
  EXPECT_EQ(g.output_vars[0], "v0");
  EXPECT_EQ(g.output_vars[2], "v2");
  // Boxed formula is closed over by the box: free vars subset of 0..2.
  for (std::size_t v : g.boxed->free_vars()) EXPECT_LT(v, 3u);
}

TEST(GeneratorTest, QuantifiedCoreHasNoFreeQuantifierVars) {
  GenOptions options;
  options.quantifiers = 2;
  FormulaGen gen(options);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const GeneratedFormula g = gen.generate(seed);
    for (std::size_t v : g.core->free_vars()) {
      EXPECT_LT(v, options.dimension) << "seed " << seed;
    }
  }
}

TEST(GeneratorTest, TextRoundTripsThroughParser) {
  GenOptions options;
  options.quantifiers = 1;
  options.linear_only = false;
  FormulaGen gen(options);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const GeneratedFormula g = gen.generate(seed);
    VarTable vars;
    register_generator_vars(&vars, g.dimension);
    auto parsed = parse_formula(g.text(), &vars);
    ASSERT_TRUE(parsed.is_ok())
        << "seed " << seed << ": " << g.text() << " -- "
        << parsed.status().to_string();
    // Reprint of the reparse is identical: printing is canonical.
    EXPECT_EQ(print_generated(parsed.value(), g.dimension), g.text())
        << "seed " << seed;
  }
}

TEST(GeneratorTest, ConvexModeEmitsConjunctionOfHalfspaces) {
  GenOptions options;
  options.convex_only = true;
  FormulaGen gen(options);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const GeneratedFormula g = gen.generate(seed);
    std::function<void(const FormulaPtr&)> walk =
        [&](const FormulaPtr& f) {
          switch (f->kind()) {
            case Formula::Kind::kAnd:
              for (const auto& c : f->children()) walk(c);
              break;
            case Formula::Kind::kAtom:
            case Formula::Kind::kTrue:
            case Formula::Kind::kFalse:
              break;
            default:
              ADD_FAILURE() << "non-convex node in convex mode, seed "
                            << seed << ": " << g.core_text();
          }
        };
    walk(g.core);
  }
}

TEST(NodeCountTest, CountsNodesAndAtomTerms) {
  // (v0 + 1 <= 0) & true: AND node + atom node + 2 poly terms + true.
  auto atom = Formula::atom(
      Polynomial::variable(0) + Polynomial::constant(Rational(1)),
      RelOp::kLe);
  EXPECT_EQ(node_count(atom), 3u);
  EXPECT_EQ(node_count(Formula::make_true()), 1u);
}

// --- Shrinker ---------------------------------------------------------

TEST(ShrinkerTest, ResultIsNoLargerAndStillFails) {
  FormulaGen gen(GenOptions{});
  // Fake oracle: fails whenever the formula mentions variable 0.
  const StillFails mentions_v0 = [](const GeneratedFormula& g) {
    auto fv = g.core->free_vars();
    return fv.count(0) > 0;
  };
  std::size_t shrunk_strictly = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const GeneratedFormula g = gen.generate(seed);
    if (!mentions_v0(g)) continue;
    const GeneratedFormula small = shrink(g, mentions_v0);
    EXPECT_TRUE(mentions_v0(small)) << "seed " << seed;
    EXPECT_LE(node_count(small.core), node_count(g.core))
        << "seed " << seed;
    if (node_count(small.core) < node_count(g.core)) ++shrunk_strictly;
  }
  // Most multi-atom formulas must actually get smaller.
  EXPECT_GT(shrunk_strictly, 10u);
}

TEST(ShrinkerTest, MinimizesToSingleAtomWhenPossible) {
  // v0 <= 0 & (v1 >= 1 | v0 + v1 <= 2) & v1 <= 3, failing iff v0 occurs:
  // minimal failing core is one atom mentioning v0 with one term.
  VarTable vars;
  register_generator_vars(&vars, 2);
  auto core = parse_formula(
                  "v0 <= 0 & (v1 >= 1 | v0 + v1 <= 2) & v1 <= 3", &vars)
                  .value_or_die();
  const GeneratedFormula g = with_core(core, 2, 0);
  const StillFails mentions_v0 = [](const GeneratedFormula& c) {
    return c.core->free_vars().count(0) > 0;
  };
  const GeneratedFormula small = shrink(g, mentions_v0);
  EXPECT_LE(node_count(small.core), 3u) << small.core_text();
  EXPECT_TRUE(mentions_v0(small));
}

TEST(ShrinkerTest, ReturnsInputWhenNothingSmallerFails) {
  VarTable vars;
  register_generator_vars(&vars, 1);
  auto core = parse_formula("v0 <= 0", &vars).value_or_die();
  const GeneratedFormula g = with_core(core, 1, 0);
  const StillFails always = [](const GeneratedFormula&) { return true; };
  // true (1 node) still "fails" under the constant predicate, so the
  // shrinker bottoms out at a constant.
  const GeneratedFormula small = shrink(g, always);
  EXPECT_LE(node_count(small.core), node_count(g.core));
  const StillFails needs_atom = [](const GeneratedFormula& c) {
    return c.core->kind() == Formula::Kind::kAtom;
  };
  const GeneratedFormula same = shrink(g, needs_atom);
  EXPECT_EQ(same.core_text(), g.core_text());
}

// --- Repro files ------------------------------------------------------

TEST(ReproTest, RoundTripsThroughText) {
  Repro repro;
  repro.oracle = "scaling";
  repro.seed = 1234567890123ull;
  repro.dimension = 3;
  repro.formula = "v0 + v1 <= 1 & v2 >= 0";
  repro.detail = "vol mismatch";
  auto back = repro_from_text(repro_to_text(repro));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().oracle, repro.oracle);
  EXPECT_EQ(back.value().seed, repro.seed);
  EXPECT_EQ(back.value().dimension, repro.dimension);
  EXPECT_EQ(back.value().formula, repro.formula);
  EXPECT_EQ(back.value().detail, repro.detail);
}

TEST(ReproTest, FormulaReparsesIntoGeneratorIndices) {
  Repro repro;
  repro.oracle = "scaling";
  repro.seed = 9;
  repro.dimension = 2;
  repro.formula = "v0 + 2*v1 <= 1";
  auto g = repro_formula(repro);
  ASSERT_TRUE(g.is_ok());
  auto fv = g.value().core->free_vars();
  EXPECT_TRUE(fv.count(0));
  EXPECT_TRUE(fv.count(1));
  EXPECT_EQ(g.value().output_vars.size(), 2u);
}

TEST(ReproTest, RejectsMalformedInput) {
  EXPECT_FALSE(repro_from_text("").is_ok());
  EXPECT_FALSE(repro_from_text("oracle: x\nformula: v0 <= 1\n").is_ok());
  EXPECT_FALSE(
      repro_from_text("oracle: x\ndimension: 99\nformula: v0 <= 1\n")
          .is_ok());
  Repro bad;
  bad.oracle = "scaling";
  bad.dimension = 1;
  bad.formula = "v0 <=";  // malformed formula text
  EXPECT_FALSE(repro_formula(bad).is_ok());
}

}  // namespace
}  // namespace cqa
