// Strategy-selection tests for cqa::plan: the planner is a pure function
// from (FormulaStats, Budget) to a decision, so every regime of the cost
// model is checkable without running an engine.

#include "cqa/plan/planner.h"

#include <gtest/gtest.h>

#include "cqa/logic/parser.h"

namespace cqa {
namespace {

FormulaStats linear_stats(std::size_t cells) {
  FormulaStats s;
  s.dimension = 2;
  s.atoms = 4;
  s.quantifiers = 0;
  s.linear = true;
  s.quantifier_free = true;
  s.cell_estimate = cells;
  s.vc_dim = 4.0;
  return s;
}

FormulaStats nonlinear_stats() {
  FormulaStats s;
  s.dimension = 2;
  s.atoms = 2;
  s.quantifiers = 0;
  s.linear = false;
  s.quantifier_free = true;
  s.cell_estimate = 1;
  s.vc_dim = 4.0;
  return s;
}

TEST(PlannerTest, SmallLinearQueryPicksExact) {
  Budget b;
  b.epsilon = 0.01;
  b.delta = 0.05;
  PlanDecision d = plan_volume(linear_stats(/*cells=*/2), b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kAuto);
  EXPECT_EQ(d.expected_epsilon, 0.0);
  EXPECT_FALSE(d.degrade_preplanned);
}

TEST(PlannerTest, HugeCellCountTipsToMonteCarlo) {
  // Exact cost grows ~cells^2; MC cost is flat in the cell count. A
  // large enough decomposition makes sampling the cheaper certified
  // route even with no deadline.
  Budget b;
  b.epsilon = 0.05;
  b.delta = 0.05;
  PlanDecision d = plan_volume(linear_stats(/*cells=*/100000), b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kMonteCarlo);
  EXPECT_GT(d.mc_samples, 0u);
  EXPECT_LE(d.expected_epsilon, b.epsilon);
}

TEST(PlannerTest, NonlinearQueryCannotRunExact) {
  Budget b;
  b.epsilon = 0.05;
  b.delta = 0.05;
  PlanDecision d = plan_volume(nonlinear_stats(), b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kMonteCarlo);
  // The exact candidate must be recorded as infeasible, not just lose
  // on price.
  bool saw_exact = false;
  for (const PlannedStrategy& c : d.considered) {
    if (c.strategy == VolumeStrategy::kAuto) {
      saw_exact = true;
      EXPECT_FALSE(c.feasible);
    }
  }
  EXPECT_TRUE(saw_exact);
}

TEST(PlannerTest, TightDeadlineShrinksSample) {
  Budget b;
  b.epsilon = 0.001;  // Blumer bound in the hundreds of thousands
  b.delta = 0.05;
  b.deadline_ms = 2;
  PlanDecision d = plan_volume(nonlinear_stats(), b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kMonteCarlo);
  Budget no_deadline = b;
  no_deadline.deadline_ms = -1;
  PlanDecision full = plan_volume(nonlinear_stats(), no_deadline);
  EXPECT_LT(d.mc_samples, full.mc_samples);
  // The reduced sample cannot certify eps=0.001: degradation is
  // pre-planned and the Hoeffding width replaces epsilon.
  EXPECT_TRUE(d.degrade_preplanned);
  EXPECT_GT(d.expected_epsilon, b.epsilon);
  EXPECT_NEAR(d.expected_epsilon,
              hoeffding_epsilon(b.delta, d.mc_samples), 1e-12);
}

TEST(PlannerTest, ImpossibleDeadlineFallsToTrivialHalf) {
  FormulaStats s = nonlinear_stats();
  Budget b;
  b.epsilon = 0.01;
  b.delta = 0.05;
  b.deadline_ms = 0;  // nothing can run
  PlanDecision d = plan_volume(s, b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kTrivialHalf);
  EXPECT_EQ(d.expected_epsilon, 0.5);
  EXPECT_TRUE(d.degrade_preplanned);
}

TEST(PlannerTest, NoFeasibleStrategyWithoutDeadlineFallsToTrivialHalf) {
  // Quantified nonlinear: no exact decomposition, no membership test,
  // no convex cell. Even with no deadline the only answer is the last
  // rung, pre-marked degraded for a tight epsilon.
  FormulaStats s = nonlinear_stats();
  s.quantifier_free = false;
  s.quantifiers = 1;
  Budget b;
  b.epsilon = 0.01;
  b.delta = 0.05;  // deadline_ms stays -1: none
  PlanDecision d = plan_volume(s, b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kTrivialHalf);
  EXPECT_EQ(d.expected_epsilon, 0.5);
  EXPECT_TRUE(d.degrade_preplanned);
}

TEST(PlannerTest, LooseBudgetAcceptsTrivialHalf) {
  // With eps >= 1/2 Proposition 4 already meets the accuracy bar at
  // zero cost, even for a query nothing else could handle in time.
  FormulaStats s = nonlinear_stats();
  Budget b;
  b.epsilon = 0.5;
  b.delta = 0.05;
  b.deadline_ms = 0;
  PlanDecision d = plan_volume(s, b);
  EXPECT_EQ(d.chosen, VolumeStrategy::kTrivialHalf);
  EXPECT_FALSE(d.degrade_preplanned);
}

TEST(PlannerTest, ConvexCellEligibleForHitAndRun) {
  // Hit-and-run only qualifies for a single convex cell and only when
  // the budget tolerates its heuristic error.
  FormulaStats s = linear_stats(/*cells=*/1);
  Budget b;
  b.epsilon = 0.2;
  b.delta = 0.05;
  PlanDecision d = plan_volume(s, b);
  for (const PlannedStrategy& c : d.considered) {
    if (c.strategy == VolumeStrategy::kHitAndRun) {
      EXPECT_TRUE(c.feasible);
      EXPECT_TRUE(c.meets_accuracy);
    }
  }
  // Multi-cell unions disqualify it outright.
  PlanDecision multi = plan_volume(linear_stats(/*cells=*/3), b);
  for (const PlannedStrategy& c : multi.considered) {
    if (c.strategy == VolumeStrategy::kHitAndRun) {
      EXPECT_FALSE(c.feasible);
    }
  }
}

TEST(PlannerTest, DnfSizeEstimate) {
  VarTable vars;
  auto f = parse_formula("(x <= 1 | x >= 2) & (y <= 1 | y >= 2)", &vars);
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(dnf_size_estimate(f.value()), 4u);
  auto g = parse_formula("x <= 1 & y <= 1", &vars);
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(dnf_size_estimate(g.value()), 1u);
  // Negation mirrors And<->Or: !(a & b) is a 2-cell disjunction.
  auto h = parse_formula("!(x <= 1 & y <= 1)", &vars);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(dnf_size_estimate(h.value()), 2u);
}

TEST(PlannerTest, ExtractStatsReadsStructure) {
  VarTable vars;
  auto f = parse_formula("x^2 + y^2 <= 1 & x >= 0", &vars);
  ASSERT_TRUE(f.is_ok());
  FormulaStats s = extract_stats(f.value(), /*dimension=*/2,
                                 /*quantifiers=*/0);
  EXPECT_EQ(s.dimension, 2u);
  EXPECT_EQ(s.atoms, 2u);
  EXPECT_FALSE(s.linear);
  EXPECT_TRUE(s.quantifier_free);
  EXPECT_GE(s.vc_dim, 1.0);
  EXPECT_LE(s.vc_dim, 12.0);
}

TEST(PlannerTest, HoeffdingEpsilonShrinksWithSamples) {
  EXPECT_EQ(hoeffding_epsilon(0.05, 0), 0.5);
  const double e1 = hoeffding_epsilon(0.05, 1000);
  const double e2 = hoeffding_epsilon(0.05, 100000);
  EXPECT_GT(e1, e2);
  EXPECT_LT(e2, 0.01);
  EXPECT_NEAR(hoeffding_epsilon(0.05, 4000) * 2.0,
              hoeffding_epsilon(0.05, 1000), 1e-12);
}

TEST(PlannerTest, PlanToStringMentionsEveryCandidate) {
  Budget b;
  PlanDecision d = plan_volume(linear_stats(2), b);
  const std::string s = plan_to_string(d);
  EXPECT_NE(s.find("exact"), std::string::npos);
  EXPECT_NE(s.find("mc"), std::string::npos);
  EXPECT_NE(s.find("hit_and_run"), std::string::npos);
  EXPECT_NE(s.find("trivial_half"), std::string::npos);
}

}  // namespace
}  // namespace cqa
