// The runtime's headline invariant: the chunked Monte-Carlo estimate is
// a pure function of (seed, sample_size, chunk_size). Thread count and
// scheduling must not change a single bit of the result.

#include <gtest/gtest.h>

#include <map>

#include "cqa/approx/monte_carlo.h"
#include "cqa/core/constraint_database.h"
#include "cqa/logic/parser.h"
#include "cqa/runtime/parallel_sampler.h"
#include "cqa/runtime/session.h"
#include "cqa/runtime/thread_pool.h"

namespace cqa {
namespace {

TEST(ParallelSampler, BitwiseIdenticalAcrossThreadCounts) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));

  ParallelSampler sampler(&db, phi, {x, y}, /*sample_size=*/20000,
                          /*seed=*/42, /*chunk_size=*/256);
  const double serial = sampler.estimate({}, nullptr).value_or_die();
  EXPECT_NEAR(serial, 3.14159265 / 4.0, 0.02);

  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const double pooled = sampler.estimate({}, &pool).value_or_die();
    // Bitwise, not approximate: same hits, same division.
    EXPECT_EQ(serial, pooled) << "threads=" << threads;
  }
}

TEST(ParallelSampler, BitwiseIdenticalWithParameters) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= a", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));
  const std::size_t a = static_cast<std::size_t>(vars.find("a"));

  ParallelSampler sampler(&db, phi, {x, y}, 8000, 2718, 128);
  ThreadPool pool(8);
  for (int i = 1; i <= 9; i += 2) {
    const std::map<std::size_t, Rational> params = {{a, Rational(i, 10)}};
    const double serial = sampler.estimate(params, nullptr).value_or_die();
    const double pooled = sampler.estimate(params, &pool).value_or_die();
    EXPECT_EQ(serial, pooled) << "a=" << i << "/10";
    EXPECT_NEAR(serial, 3.14159265 * i / 40.0, 0.03);
  }
}

TEST(ParallelSampler, RaggedLastChunk) {
  // sample_size not divisible by chunk_size: the short tail chunk must
  // be handled identically everywhere.
  Database db;
  VarTable vars;
  auto phi = parse_formula("x <= 1/2", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  ParallelSampler sampler(&db, phi, {x}, 1000, 7, 64);  // 15 full + 40
  EXPECT_EQ(sampler.num_chunks(), 16u);
  ThreadPool pool(4);
  EXPECT_EQ(sampler.estimate({}, nullptr).value_or_die(),
            sampler.estimate({}, &pool).value_or_die());
}

TEST(ParallelSampler, SeedAndChunkSizeChangeTheSample) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));
  ParallelSampler s1(&db, phi, {x, y}, 4000, 1, 256);
  ParallelSampler s2(&db, phi, {x, y}, 4000, 2, 256);
  ParallelSampler s3(&db, phi, {x, y}, 4000, 1, 512);
  const double e1 = s1.estimate({}).value_or_die();
  const double e2 = s2.estimate({}).value_or_die();
  const double e3 = s3.estimate({}).value_or_die();
  EXPECT_NE(e1, e2);  // different seed, different sample
  EXPECT_NE(e1, e3);  // chunk layout is part of the sample's identity
}

TEST(McVolumeEstimator, ChunkSumsReproduceEstimate) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));
  McVolumeEstimator est(&db, phi, {x, y}, 5000, 99);
  const double whole = est.estimate({}).value_or_die();
  std::size_t hits = 0;
  for (std::size_t lo = 0; lo < est.sample_size(); lo += 777) {
    const std::size_t hi = std::min(est.sample_size(), lo + 777);
    hits += est.evaluate_chunk(lo, hi, {}).value_or_die();
  }
  EXPECT_EQ(whole, static_cast<double>(hits) /
                       static_cast<double>(est.sample_size()));
  EXPECT_EQ(est.element_vars().size(), 2u);
  EXPECT_TRUE(est.inlined()->is_quantifier_free());
}

TEST(Session, MonteCarloVolumeIndependentOfThreadCount) {
  auto run = [](std::size_t threads) {
    ConstraintDatabase db;
    SessionOptions opts;
    opts.threads = threads;
    Session session(&db, opts);
    auto a = session.run(Request::volume("x^2 + y^2 <= 1")
                             .vars({"x", "y"})
                             .strategy(VolumeStrategy::kMonteCarlo)
                             .epsilon(0.05)
                             .vc_dim(3.0)
                             .seed(1234));
    return *a.value_or_die().volume.estimate;
  };
  const double t1 = run(1);
  const double t2 = run(2);
  const double t8 = run(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_NEAR(t1, 3.14159265 / 4.0, 0.05);
}

TEST(Session, McPointsCounted) {
  ConstraintDatabase db;
  Session session(&db, SessionOptions{.threads = 2});
  ASSERT_TRUE(session.run(Request::volume("x^2 + y^2 <= 1")
                              .vars({"x", "y"})
                              .strategy(VolumeStrategy::kMonteCarlo)
                              .epsilon(0.1)
                              .delta(0.1)
                              .vc_dim(3.0))
                  .is_ok());
  EXPECT_GT(session.metrics().counter_value("mc_points_evaluated_total"),
            0u);
}

}  // namespace
}  // namespace cqa
