// Additional targeted coverage: interpolation/integration laws, Sum-term
// algebraic laws, simplest-rational edge cases, and API corners that the
// module suites exercise only indirectly.

#include <gtest/gtest.h>

#include "cqa/aggregate/sum_parser.h"
#include "cqa/approx/random.h"
#include "cqa/poly/interpolation.h"
#include "cqa/poly/univariate.h"

namespace cqa {
namespace {

class ExtraProperty : public ::testing::TestWithParam<std::uint64_t> {};

UPoly random_upoly(Xoshiro* rng, int max_deg) {
  std::vector<Rational> c;
  const int deg = 1 + static_cast<int>(rng->next() %
                                       static_cast<std::uint64_t>(max_deg));
  for (int i = 0; i <= deg; ++i) {
    c.emplace_back(static_cast<std::int64_t>(rng->next() % 11) - 5,
                   1 + static_cast<std::int64_t>(rng->next() % 3));
  }
  return UPoly(std::move(c));
}

TEST_P(ExtraProperty, IntegralAdditivity) {
  Xoshiro rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    UPoly p = random_upoly(&rng, 5);
    Rational a(static_cast<std::int64_t>(rng.next() % 9) - 4);
    Rational b = a + Rational(1 + static_cast<std::int64_t>(rng.next() % 5));
    Rational m = Rational::mid(a, b);
    // Chasles: integral over [a,b] = [a,m] + [m,b].
    EXPECT_EQ(p.integrate(a, b), p.integrate(a, m) + p.integrate(m, b));
    // Linearity in the integrand.
    UPoly q = random_upoly(&rng, 4);
    EXPECT_EQ((p + q).integrate(a, b),
              p.integrate(a, b) + q.integrate(a, b));
    // Reversal antisymmetry.
    EXPECT_EQ(p.integrate(b, a), -p.integrate(a, b));
  }
}

TEST_P(ExtraProperty, DerivativeOfAntiderivativeRoundTrip) {
  Xoshiro rng(GetParam() ^ 0x1);
  for (int i = 0; i < 20; ++i) {
    UPoly p = random_upoly(&rng, 6);
    EXPECT_EQ(p.antiderivative().derivative(), p);
    // Product rule spot check: (pq)' = p'q + pq'.
    UPoly q = random_upoly(&rng, 3);
    EXPECT_EQ((p * q).derivative(),
              p.derivative() * q + p * q.derivative());
  }
}

TEST_P(ExtraProperty, InterpolationReproducesAnyPolynomial) {
  Xoshiro rng(GetParam() ^ 0x2);
  for (int i = 0; i < 10; ++i) {
    UPoly p = random_upoly(&rng, 4);
    std::vector<std::pair<Rational, Rational>> pts;
    // degree+1 distinct nodes suffice; use a shifted arithmetic grid.
    Rational base(static_cast<std::int64_t>(rng.next() % 7) - 3, 2);
    for (int k = 0; k <= p.degree(); ++k) {
      Rational x = base + Rational(k);
      pts.emplace_back(x, p.eval(x));
    }
    EXPECT_EQ(interpolate(pts), p) << p.to_string();
  }
}

TEST_P(ExtraProperty, SumTermLinearity) {
  // Sum_rho(gamma1 "+" gamma2) == Sum_rho gamma1 + Sum_rho gamma2, where
  // the pointwise sum is encoded by a third deterministic formula.
  Database db;
  Xoshiro rng(GetParam() ^ 0x3);
  const std::int64_t a = 1 + static_cast<std::int64_t>(rng.next() % 5);
  const std::int64_t b = 1 + static_cast<std::int64_t>(rng.next() % 5);
  VarTable vars;
  std::string range = "w in end(y : (0 <= y & y <= 2) | y = 5)";
  auto t1 = parse_sum_term("sum[" + range + "](x : x = " +
                               std::to_string(a) + "*w)",
                           &vars)
                .value_or_die();
  auto t2 = parse_sum_term("sum[" + range + "](x : x = " +
                               std::to_string(b) + "*w)",
                           &vars)
                .value_or_die();
  auto t12 = parse_sum_term("sum[" + range + "](x : x = " +
                                std::to_string(a + b) + "*w)",
                            &vars)
                 .value_or_die();
  Rational lhs = t12->eval(db, {}).value_or_die();
  Rational rhs = t1->eval(db, {}).value_or_die() +
                 t2->eval(db, {}).value_or_die();
  EXPECT_EQ(lhs, rhs);
}

TEST_P(ExtraProperty, CountBounds) {
  // 0 <= guarded count <= unguarded count; avg lies between min and max.
  Database db;
  Xoshiro rng(GetParam() ^ 0x4);
  std::vector<RVec> tuples;
  const std::size_t n = 2 + rng.next() % 6;
  for (std::size_t i = 0; i < n; ++i) {
    tuples.push_back({Rational(static_cast<std::int64_t>(rng.next() % 50))});
  }
  CQA_CHECK(db.add_finite("U", 1, tuples).is_ok());
  VarTable vars;
  auto all = parse_sum_term("count[w in end(y : U(y))]", &vars)
                 .value_or_die();
  auto some = parse_sum_term("count[w in end(y : U(y)) | w > 20]", &vars)
                  .value_or_die();
  Rational call = all->eval(db, {}).value_or_die();
  Rational csome = some->eval(db, {}).value_or_die();
  EXPECT_GE(csome, Rational(0));
  EXPECT_LE(csome, call);
  // AVG within [min, max] of the distinct values.
  auto avg = parse_sum_term("avg[w in end(y : U(y))](x : x = w)", &vars)
                 .value_or_die();
  Rational mean = avg->eval(db, {}).value_or_die();
  Rational lo = tuples[0][0], hi = tuples[0][0];
  for (const auto& t : tuples) {
    lo = std::min(lo, t[0]);
    hi = std::max(hi, t[0]);
  }
  EXPECT_GE(mean, lo);
  EXPECT_LE(mean, hi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtraProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(SimplestIn, ClosedIntervalCases) {
  EXPECT_EQ(Rational::simplest_in(Rational(-1), Rational(1)), Rational(0));
  EXPECT_EQ(Rational::simplest_in(Rational(1, 3), Rational(1, 2)),
            Rational(1, 2));
  EXPECT_EQ(Rational::simplest_in(Rational(2), Rational(3)), Rational(2));
  EXPECT_EQ(Rational::simplest_in(Rational(-5, 2), Rational(-7, 3)),
            Rational(-5, 2));
  EXPECT_EQ(Rational::simplest_in(Rational(7, 5), Rational(7, 5)),
            Rational(7, 5));
}

TEST(SimplestIn, OpenVsClosedDiffer) {
  // Closed [1/2, 1/2] contains its endpoint; open (1/3, 1/2) cannot use
  // either endpoint.
  Rational open = Rational::simplest_in_open(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(open, Rational(1, 3));
  EXPECT_LT(open, Rational(1, 2));
  EXPECT_EQ(open, Rational(2, 5));
}

TEST(BigIntExtras, HashDistinguishesAndIsStable) {
  BigInt a = BigInt::parse("123456789123456789");
  BigInt b = BigInt::parse("123456789123456790");
  EXPECT_EQ(a.hash(), BigInt::parse("123456789123456789").hash());
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), (-a).hash());
}

TEST(PolynomialExtras, RenameRejectsCollision) {
  Polynomial p = Polynomial::variable(0) + Polynomial::variable(1);
  // Renaming onto an occupied slot is a programming error guarded by
  // CQA_CHECK; renaming to itself is a no-op.
  EXPECT_EQ(p.rename(0, 0), p);
  Polynomial q = Polynomial::variable(0).rename(0, 5);
  EXPECT_EQ(q.degree_in(5), 1);
  EXPECT_EQ(q.degree_in(0), 0);
}

TEST(UPolyExtras, IntervalEvaluationEnclosure) {
  UPoly p({Rational(-2), Rational(0), Rational(1)});  // x^2 - 2
  RationalInterval iv(Rational(1), Rational(2));
  RationalInterval img = p.eval_interval(iv);
  for (int i = 0; i <= 4; ++i) {
    Rational x = Rational(1) + Rational(i, 4);
    EXPECT_TRUE(img.contains(p.eval(x)));
  }
  // Definite sign away from the roots.
  EXPECT_EQ(p.eval_interval(RationalInterval(Rational(2), Rational(3)))
                .definite_sign(),
            1);
  EXPECT_EQ(p.eval_interval(RationalInterval(Rational(-1), Rational(1)))
                .definite_sign(),
            -1);
}

}  // namespace
}  // namespace cqa
