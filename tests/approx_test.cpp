#include <gtest/gtest.h>

#include <cmath>

#include "cqa/approx/ellipsoid.h"
#include "cqa/approx/gadgets.h"
#include "cqa/approx/hit_and_run.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/approx/random.h"
#include "cqa/logic/parser.h"
#include "cqa/volume/semilinear_volume.h"

namespace cqa {
namespace {

TEST(Random, Deterministic) {
  Xoshiro a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  double u = a.uniform();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(Random, UniformMoments) {
  Xoshiro rng(7);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double u = rng.uniform();
    sum += u;
    sumsq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0 / 3.0, 0.02);
}

TEST(Random, HaltonLowDiscrepancy) {
  // First few base-2/3 Halton values.
  auto p0 = halton_point(0, 2);
  EXPECT_NEAR(p0[0], 0.5, 1e-12);
  EXPECT_NEAR(p0[1], 1.0 / 3.0, 1e-12);
  auto p1 = halton_point(1, 2);
  EXPECT_NEAR(p1[0], 0.25, 1e-12);
  EXPECT_NEAR(p1[1], 2.0 / 3.0, 1e-12);
}

TEST(MonteCarlo, TriangleVolume) {
  Database db;
  VarTable vars;
  auto f = parse_formula("0 <= x & 0 <= y & x + y <= 1", &vars)
               .value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  auto v = mc_volume(db, f, {x, y}, {}, 0.05, 0.05, 3.0, 1234);
  EXPECT_NEAR(v.value_or_die(), 0.5, 0.05);
}

TEST(MonteCarlo, PolynomialDisk) {
  Database db;
  VarTable vars;
  auto f = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  // Quarter disk in [0,1]^2: pi/4.
  auto v = mc_volume(db, f, {x, y}, {}, 0.03, 0.05, 3.0, 99);
  EXPECT_NEAR(v.value_or_die(), M_PI / 4.0, 0.03);
}

TEST(MonteCarlo, UniformOverParameters) {
  // Theorem 4's point: ONE sample works for every parameter value.
  Database db;
  VarTable vars;
  auto f = parse_formula("0 <= y1 & y1 <= a & 0 <= y2 & y2 <= 1", &vars)
               .value_or_die();
  std::size_t a = static_cast<std::size_t>(vars.find("a"));
  std::size_t y1 = static_cast<std::size_t>(vars.find("y1"));
  std::size_t y2 = static_cast<std::size_t>(vars.find("y2"));
  McVolumeEstimator est(&db, f, {y1, y2},
                        blumer_sample_bound(0.05, 0.05, 3.0), 4321);
  double sup_err = 0;
  for (int num = 0; num <= 10; ++num) {
    Rational av(num, 10);
    double got = est.estimate({{a, av}}).value_or_die();
    sup_err = std::max(sup_err, std::fabs(got - av.to_double()));
  }
  EXPECT_LT(sup_err, 0.05);
}

TEST(MonteCarlo, HaltonConvergesFaster) {
  Database db;
  VarTable vars;
  auto f = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  double h = halton_volume(db, f, {x, y}, {}, 4096).value_or_die();
  EXPECT_NEAR(h, M_PI / 4.0, 0.01);
}

TEST(MonteCarlo, RejectsQuantified) {
  Database db;
  VarTable vars;
  auto f = parse_formula("E z. x < z & z < y", &vars).value_or_die();
  auto v = mc_volume(db, f, {0, 1}, {}, 0.1, 0.1, 2.0, 1);
  EXPECT_FALSE(v.is_ok());
}

TEST(Ellipsoid, UnitBallVolumes) {
  EXPECT_NEAR(unit_ball_volume(1), 2.0, 1e-12);
  EXPECT_NEAR(unit_ball_volume(2), M_PI, 1e-12);
  EXPECT_NEAR(unit_ball_volume(3), 4.0 * M_PI / 3.0, 1e-12);
}

TEST(Ellipsoid, MveeOfSquare) {
  std::vector<RVec> pts = {
      {Rational(-1), Rational(-1)},
      {Rational(1), Rational(-1)},
      {Rational(-1), Rational(1)},
      {Rational(1), Rational(1)},
  };
  Ellipsoid e = min_volume_enclosing_ellipsoid(pts).value_or_die();
  // MVEE of the square [-1,1]^2 is the disk of radius sqrt(2).
  EXPECT_NEAR(e.center[0], 0.0, 1e-4);
  EXPECT_NEAR(e.center[1], 0.0, 1e-4);
  EXPECT_NEAR(e.volume(), M_PI * 2.0, 0.05);
  for (const auto& p : pts) {
    EXPECT_TRUE(e.contains({p[0].to_double(), p[1].to_double()}, 1e-3));
  }
}

TEST(Ellipsoid, JohnSandwich) {
  // vol(E)/k^k <= vol(P) <= vol(E), paper's Remark constants.
  for (int trial = 0; trial < 3; ++trial) {
    Polyhedron p =
        trial == 0 ? Polyhedron::box(2, Rational(0), Rational(1))
        : trial == 1
            ? Polyhedron::simplex(2, Rational(2))
            : Polyhedron::box(3, Rational(-1), Rational(2));
    auto bounds = john_volume_bounds(p).value_or_die();
    double exact = polytope_volume(p).value_or_die().to_double();
    EXPECT_LE(bounds.lower, exact * 1.001) << trial;
    EXPECT_GE(bounds.upper * 1.001, exact) << trial;
  }
}

TEST(HitAndRun, CubeVolume) {
  Polyhedron cube = Polyhedron::box(3, Rational(0), Rational(2));
  auto r = hit_and_run_volume(cube, 4000, 2024).value_or_die();
  EXPECT_NEAR(r.volume, 8.0, 1.6);  // randomized: 20% tolerance
  EXPECT_GT(r.phases, 0u);
}

TEST(HitAndRun, SimplexVolume) {
  Polyhedron s = Polyhedron::simplex(3, Rational(1));
  auto r = hit_and_run_volume(s, 4000, 77).value_or_die();
  EXPECT_NEAR(r.volume, 1.0 / 6.0, 0.05);
}

TEST(Gadgets, AvgSeparation) {
  AvgSeparationGadget g(Rational(1, 4));
  // Equal cardinalities: AVG = 1/2 regardless of Delta.
  EXPECT_EQ(g.avg_for_cards(5, 5), Rational(1, 2));
  // Monotone decreasing in the ratio.
  EXPECT_GT(g.avg_for_cards(1, 10), g.avg_for_cards(10, 1));
  EXPECT_EQ(g.avg_for_cards(10, 10), g.avg_for_ratio(Rational(1)));
  // The ratio formula matches the cardinality formula.
  EXPECT_EQ(g.avg_for_cards(6, 2), g.avg_for_ratio(Rational(3)));
  // eps < (1 - Delta)/2 is separable at some finite ratio.
  double c = g.min_separable_ratio(0.1);
  EXPECT_GT(c, 1.0);
  // Sanity: at that ratio the gap really exceeds 2 eps.
  double gap = g.avg_for_ratio(Rational(1, 100)).to_double() -
               g.avg_for_ratio(Rational(100)).to_double();
  EXPECT_GT(gap, 0.2);
  // eps >= (1-Delta)/2 is not separable: gadget reports 0.
  EXPECT_EQ(g.min_separable_ratio(0.49), 0.0);
}

TEST(Gadgets, GoodInstanceVolumes) {
  // n = 4, B = {0, 2}: X = [0, 1/4) U [2/4, 3/4), vol 1/2.
  GoodInstance inst(4, 0b0101);
  EXPECT_EQ(inst.card_b(), 2u);
  EXPECT_EQ(inst.vol_x(), Rational(1, 2));
  EXPECT_EQ(inst.vol_y(), Rational(1, 2));
  // Runs merge: B = {0,1,2}: X = [0, 3/4).
  GoodInstance runs(4, 0b0111);
  EXPECT_EQ(runs.vol_x(), Rational(3, 4));
  EXPECT_EQ(runs.vol_y(), Rational(1, 4));
}

TEST(Gadgets, GoodInstanceVolumeTracksCardinality) {
  // For alternating B, VOL(X) = card(B)/n exactly.
  GoodInstance alt(8, 0b01010101);
  EXPECT_EQ(alt.vol_x(),
            Rational(static_cast<std::int64_t>(alt.card_b()), 8));
  // Lemma 2 thresholds.
  EXPECT_NEAR(GoodInstance::c1(0.1), 0.8 / 3.0, 1e-12);
  EXPECT_NEAR(GoodInstance::c2(0.1), 2.2 / 3.0, 1e-12);
}

TEST(Gadgets, TrivialHalfApproximation) {
  VarTable vars;
  auto mid = parse_formula("0 <= x & x <= 1/2", &vars).value_or_die();
  auto cells = formula_to_cells(mid, 1).value_or_die();
  EXPECT_EQ(trivial_half_approximation(cells, 1).value_or_die(),
            Rational(1, 2));
  auto empty = parse_formula("x < 0 & x > 1", &vars).value_or_die();
  EXPECT_EQ(trivial_half_approximation(
                formula_to_cells(empty, 1).value_or_die(), 1)
                .value_or_die(),
            Rational(0));
  auto full = parse_formula("x >= 0 - 5", &vars).value_or_die();
  EXPECT_EQ(trivial_half_approximation(
                formula_to_cells(full, 1).value_or_die(), 1)
                .value_or_die(),
            Rational(1));
  // Error is always <= 1/2 (Proposition 4).
  auto v = semilinear_volume(
               [&] {
                 std::vector<LinearCell> boxed;
                 for (const auto& c : cells) {
                   boxed.push_back(c.intersect_box(Rational(0), Rational(1)));
                 }
                 return boxed;
               }())
               .value_or_die();
  Rational approx = trivial_half_approximation(cells, 1).value_or_die();
  EXPECT_LE((approx - v).abs(), Rational(1, 2));
}

}  // namespace
}  // namespace cqa
