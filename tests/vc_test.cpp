#include <gtest/gtest.h>

#include <cmath>

#include "cqa/logic/parser.h"
#include "cqa/vc/blowup.h"
#include "cqa/vc/sample_bounds.h"
#include "cqa/vc/shattering.h"

namespace cqa {
namespace {

TEST(TraceFamily, ShatteringBasics) {
  TraceFamily f(3);
  // Family = all singletons + empty: shatters singletons but no pair.
  f.add_trace(0b000);
  f.add_trace(0b001);
  f.add_trace(0b010);
  f.add_trace(0b100);
  EXPECT_TRUE(f.shatters(0b001));
  EXPECT_TRUE(f.shatters(0b100));
  EXPECT_FALSE(f.shatters(0b011));
  EXPECT_EQ(f.vc_dimension(), 1);
}

TEST(TraceFamily, PowerSetShattersEverything) {
  TraceFamily f(4);
  for (std::uint64_t m = 0; m < 16; ++m) f.add_trace(m);
  EXPECT_EQ(f.vc_dimension(), 4);
  EXPECT_TRUE(f.shatters(0b1111));
}

TEST(TraceFamily, EmptyFamily) {
  TraceFamily f(3);
  EXPECT_EQ(f.vc_dimension(), -1);
  f.add_trace(0b101);
  EXPECT_EQ(f.vc_dimension(), 0);  // single set shatters only the empty set
}

TEST(TraceFamily, ThresholdFamilyHasVc1) {
  // Half-lines {x <= t}: traces over ground {1,2,3,4} are prefixes.
  TraceFamily f(4);
  for (int t = 0; t <= 4; ++t) {
    std::uint64_t m = 0;
    for (int i = 0; i < t; ++i) m |= 1ull << i;
    f.add_trace(m);
  }
  EXPECT_EQ(f.vc_dimension(), 1);
}

TEST(BuildTraces, IntervalFamilyOverDatabase) {
  // phi(a, b; x) = a <= x & x <= b: intervals have VC dimension 2.
  Database db;
  VarTable vars;
  auto phi = parse_formula("a <= x & x <= b", &vars).value_or_die();
  std::size_t a = static_cast<std::size_t>(vars.find("a"));
  std::size_t b = static_cast<std::size_t>(vars.find("b"));
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::vector<RVec> pool;
  for (int lo = 0; lo <= 5; ++lo) {
    for (int hi = lo; hi <= 5; ++hi) {
      pool.push_back({Rational(lo), Rational(hi)});
    }
  }
  std::vector<RVec> ground = {{Rational(1)}, {Rational(2)}, {Rational(3)},
                              {Rational(4)}};
  auto traces =
      build_traces(db, phi, {a, b}, {x}, pool, ground).value_or_die();
  EXPECT_EQ(traces.vc_dimension(), 2);
}

TEST(Prop5, VcDimensionAtLeastLogDbSize) {
  for (std::size_t k = 2; k <= 6; ++k) {
    Prop5Instance inst = make_prop5_instance(k);
    auto traces = build_traces(inst.db, inst.phi, {inst.param_var},
                               {inst.element_var}, inst.param_pool,
                               inst.ground_set)
                      .value_or_die();
    int vc = traces.vc_dimension();
    EXPECT_EQ(vc, static_cast<int>(k)) << "k=" << k;
    // The paper's claim: VCdim >= log |D|.
    double log_size = std::log2(static_cast<double>(inst.db_size));
    EXPECT_GE(static_cast<double>(vc) + 1e-9, log_size - 1.0) << "k=" << k;
  }
}

TEST(SampleBounds, BlumerMonotonicity) {
  std::size_t m1 = blumer_sample_bound(0.1, 0.1, 2);
  std::size_t m2 = blumer_sample_bound(0.05, 0.1, 2);
  std::size_t m3 = blumer_sample_bound(0.1, 0.01, 2);
  std::size_t m4 = blumer_sample_bound(0.1, 0.1, 8);
  EXPECT_GT(m2, m1);  // tighter eps -> more samples
  EXPECT_GE(m3, m1);  // tighter delta -> at least as many
  EXPECT_GT(m4, m1);  // higher dimension -> more samples
  // Bound formula check at a concrete point.
  double a = (4.0 / 0.1) * std::log2(2.0 / 0.1);
  double b = (8.0 * 2 / 0.1) * std::log2(13.0 / 0.1);
  EXPECT_EQ(m1, static_cast<std::size_t>(std::floor(std::max(a, b))) + 1);
}

TEST(SampleBounds, GoldbergJerrum) {
  // C = 16 k (p+q)(log2(8 e d p s)+1), increasing in every argument.
  double c = goldberg_jerrum_constant(2, 2, 3, 1, 10);
  EXPECT_GT(c, 0);
  EXPECT_GT(goldberg_jerrum_constant(3, 2, 3, 1, 10), c);
  EXPECT_GT(goldberg_jerrum_constant(2, 2, 4, 1, 10), c);
  EXPECT_GT(goldberg_jerrum_constant(2, 2, 3, 5, 10), c);
  EXPECT_GT(goldberg_jerrum_constant(2, 2, 3, 1, 100), c);
  // VCdim bound grows logarithmically in |D|.
  EXPECT_NEAR(vc_dimension_bound(10.0, 1024), 100.0, 1e-9);
}

TEST(Blowup, Section3ExampleIsInfeasible) {
  // The paper's headline: at eps = 1/10 the derandomized formula is
  // astronomically large.
  BlowupEstimate e = km_blowup_section3_example(100, 0.1);
  EXPECT_GT(e.atom_count, 1e9);
  EXPECT_GT(e.quantifiers, 1e6);
  EXPECT_GT(e.sample_size, 1000u);
}

TEST(Blowup, GrowsAsEpsilonShrinks) {
  BlowupEstimate coarse = km_blowup_section3_example(16, 0.25);
  BlowupEstimate fine = km_blowup_section3_example(16, 0.01);
  EXPECT_GT(fine.atom_count, coarse.atom_count);
  EXPECT_GT(fine.quantifiers, coarse.quantifiers);
  EXPECT_GT(fine.sample_size, coarse.sample_size);
}

TEST(Blowup, GrowsWithDatabase) {
  BlowupEstimate small = km_blowup_section3_example(8, 0.1);
  BlowupEstimate big = km_blowup_section3_example(512, 0.1);
  EXPECT_GT(big.atom_count, small.atom_count);
  // Quantifier prefix does not depend on the database (the paper's point
  // about uniformity failing for other reasons).
  EXPECT_EQ(big.quantifiers, small.quantifiers);
}

}  // namespace
}  // namespace cqa
