#include "cqa/constraint/fourier_motzkin.h"

#include <gtest/gtest.h>

#include "cqa/constraint/linear_atom.h"
#include "cqa/logic/parser.h"

namespace cqa {
namespace {

// Builds a constraint a.x cmp rhs over `dim` variables.
LinearConstraint lc(std::vector<std::int64_t> coeffs, std::int64_t rhs,
                    LinCmp cmp = LinCmp::kLe) {
  LinearConstraint c;
  for (auto v : coeffs) c.coeffs.emplace_back(v);
  c.rhs = Rational(rhs);
  c.cmp = cmp;
  return c;
}

TEST(LinearConstraint, FromPolynomial) {
  VarTable vars;
  auto p = parse_polynomial("2*x + 3*y - 6", &vars).value_or_die();
  auto c = to_linear_constraint(p, RelOp::kLe, 2).value_or_die();
  EXPECT_EQ(c.coeffs, (RVec{Rational(2), Rational(3)}));
  EXPECT_EQ(c.rhs, Rational(6));
  EXPECT_EQ(c.cmp, LinCmp::kLe);
  // Gt flips.
  auto g = to_linear_constraint(p, RelOp::kGt, 2).value_or_die();
  EXPECT_EQ(g.coeffs, (RVec{Rational(-2), Rational(-3)}));
  EXPECT_EQ(g.rhs, Rational(-6));
  EXPECT_EQ(g.cmp, LinCmp::kLt);
}

TEST(LinearConstraint, RejectsNonlinearAndNe) {
  VarTable vars;
  auto p = parse_polynomial("x*y", &vars).value_or_die();
  EXPECT_FALSE(to_linear_constraint(p, RelOp::kLe, 2).is_ok());
  auto q = parse_polynomial("x", &vars).value_or_die();
  EXPECT_FALSE(to_linear_constraint(q, RelOp::kNe, 2).is_ok());
}

TEST(LinearConstraint, SatisfiedBy) {
  auto c = lc({1, 1}, 1, LinCmp::kLt);  // x + y < 1
  EXPECT_TRUE(c.satisfied_by({Rational(0), Rational(0)}));
  EXPECT_FALSE(c.satisfied_by({Rational(1, 2), Rational(1, 2)}));  // = 1
  auto e = lc({1, -1}, 0, LinCmp::kEq);  // x = y
  EXPECT_TRUE(e.satisfied_by({Rational(3), Rational(3)}));
  EXPECT_FALSE(e.satisfied_by({Rational(3), Rational(4)}));
}

TEST(LinearConstraint, Normalized) {
  auto c = lc({2, 4}, 6);
  auto n = c.normalized();
  EXPECT_EQ(n.coeffs, (RVec{Rational(1), Rational(2)}));
  EXPECT_EQ(n.rhs, Rational(3));
  // Negative leading coefficient keeps direction (positive scaling only).
  auto d = lc({-2, 4}, 6).normalized();
  EXPECT_EQ(d.coeffs, (RVec{Rational(-1), Rational(2)}));
  EXPECT_EQ(d.rhs, Rational(3));
}

TEST(FourierMotzkin, EliminateBasic) {
  // 0 <= y, y <= x : eliminating y gives 0 <= x.
  std::vector<LinearConstraint> cs = {
      lc({0, -1}, 0),        // -y <= 0
      lc({-1, 1}, 0),        // y - x <= 0
  };
  auto out = fm_eliminate(cs, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].normalized().coeffs, (RVec{Rational(-1), Rational(0)}));
  EXPECT_EQ(out[0].rhs, Rational(0));
}

TEST(FourierMotzkin, StrictPropagation) {
  // y > 0 and y <= x: eliminate y -> x > 0.
  std::vector<LinearConstraint> cs = {
      lc({0, -1}, 0, LinCmp::kLt),  // -y < 0
      lc({-1, 1}, 0, LinCmp::kLe),  // y <= x
  };
  auto out = fm_eliminate(cs, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cmp, LinCmp::kLt);
}

TEST(FourierMotzkin, EqualityPivot) {
  // y = 2x, y <= 1, -y <= 0 : eliminate y -> 2x <= 1, -2x <= 0.
  std::vector<LinearConstraint> cs = {
      lc({-2, 1}, 0, LinCmp::kEq),  // y - 2x = 0
      lc({0, 1}, 1),                // y <= 1
      lc({0, -1}, 0),               // -y <= 0
  };
  auto out = fm_eliminate(cs, 1);
  bool has_upper = false, has_lower = false;
  for (const auto& c : out) {
    EXPECT_TRUE(c.coeffs[1].is_zero());
    if (c.coeffs[0].sign() > 0) has_upper = true;
    if (c.coeffs[0].sign() < 0) has_lower = true;
  }
  EXPECT_TRUE(has_upper);
  EXPECT_TRUE(has_lower);
}

TEST(FourierMotzkin, Feasibility) {
  // 0 < x < 1 feasible; 1 < x < 0 not.
  EXPECT_TRUE(fm_feasible({lc({-1}, 0, LinCmp::kLt), lc({1}, 1, LinCmp::kLt)},
                          1));
  EXPECT_FALSE(fm_feasible({lc({1}, 0, LinCmp::kLt), lc({-1}, -1, LinCmp::kLt)},
                           1));
  // x <= 0 and x >= 0 feasible (just x = 0)...
  EXPECT_TRUE(fm_feasible({lc({1}, 0), lc({-1}, 0)}, 1));
  // ... but x < 0 & x >= 0 is not.
  EXPECT_FALSE(fm_feasible({lc({1}, 0, LinCmp::kLt), lc({-1}, 0)}, 1));
  // Triangle in 2D.
  EXPECT_TRUE(fm_feasible(
      {lc({-1, 0}, 0), lc({0, -1}, 0), lc({1, 1}, 1)}, 2));
  // Contradictory equalities.
  EXPECT_FALSE(fm_feasible(
      {lc({1, 0}, 0, LinCmp::kEq), lc({1, 0}, 1, LinCmp::kEq)}, 2));
}

TEST(FourierMotzkin, SamplePoint) {
  // Open triangle: x > 0, y > 0, x + y < 1.
  std::vector<LinearConstraint> cs = {
      lc({-1, 0}, 0, LinCmp::kLt),
      lc({0, -1}, 0, LinCmp::kLt),
      lc({1, 1}, 1, LinCmp::kLt),
  };
  auto p = fm_sample_point(cs, 2);
  ASSERT_TRUE(p.has_value());
  for (const auto& c : cs) EXPECT_TRUE(c.satisfied_by(*p));

  // Single point x = y = 1/2.
  std::vector<LinearConstraint> eqs = {
      lc({2, 0}, 1, LinCmp::kEq),
      lc({0, 2}, 1, LinCmp::kEq),
  };
  auto q = fm_sample_point(eqs, 2);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], Rational(1, 2));
  EXPECT_EQ((*q)[1], Rational(1, 2));

  // Infeasible.
  EXPECT_FALSE(fm_sample_point({lc({1}, 0, LinCmp::kLt), lc({-1}, 0)}, 1)
                   .has_value());
}

TEST(FourierMotzkin, SamplePointUnbounded) {
  // Half-plane x >= 3.
  auto p = fm_sample_point({lc({-1, 0}, -3)}, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_GE((*p)[0], Rational(3));
}

TEST(FourierMotzkin, ProjectToAxis) {
  // Triangle 0 <= x, 0 <= y, x + y <= 1: x-range is [0, 1].
  std::vector<LinearConstraint> cs = {
      lc({-1, 0}, 0), lc({0, -1}, 0), lc({1, 1}, 1)};
  AxisInterval iv = fm_project_to_axis(cs, 0, 2);
  EXPECT_FALSE(iv.empty);
  ASSERT_TRUE(iv.lo.has_value());
  ASSERT_TRUE(iv.hi.has_value());
  EXPECT_EQ(*iv.lo, Rational(0));
  EXPECT_EQ(*iv.hi, Rational(1));
  EXPECT_FALSE(iv.lo_strict);
  EXPECT_FALSE(iv.hi_strict);
  // y-range of the strict upper half: y > x restricted to the triangle.
  cs.push_back(lc({1, -1}, 0, LinCmp::kLt));  // x - y < 0
  AxisInterval ivy = fm_project_to_axis(cs, 1, 2);
  EXPECT_EQ(*ivy.lo, Rational(0));
  EXPECT_TRUE(ivy.lo_strict);
  EXPECT_EQ(*ivy.hi, Rational(1));
}

TEST(FourierMotzkin, SimplifyDedupAndDominance) {
  std::vector<LinearConstraint> cs = {
      lc({2, 0}, 2),   // x <= 1 scaled
      lc({1, 0}, 1),   // x <= 1
      lc({1, 0}, 5),   // x <= 5 dominated
      lc({0, 0}, 1),   // 0 <= 1 trivially true
  };
  auto out = fm_simplify(cs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].normalized().rhs, Rational(1));
}

TEST(FourierMotzkin, StrictDominatesWeakAtSameRhs) {
  std::vector<LinearConstraint> cs = {
      lc({1}, 1, LinCmp::kLt),
      lc({1}, 1, LinCmp::kLe),
  };
  auto out = fm_simplify(cs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cmp, LinCmp::kLt);
}

}  // namespace
}  // namespace cqa
