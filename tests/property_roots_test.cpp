// Property-based tests for root isolation and algebraic numbers:
// polynomials with planted rational roots, random sign queries, and
// Sturm-count consistency, parameterized over seeds.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/poly/algebraic.h"
#include "cqa/poly/root_isolation.h"

namespace cqa {
namespace {

class RootsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RootsProperty, PlantedRationalRootsAreFound) {
  Xoshiro rng(GetParam());
  // Plant 1..5 distinct rational roots with random multiplicities.
  std::vector<Rational> roots;
  const std::size_t k = 1 + rng.next() % 5;
  while (roots.size() < k) {
    Rational r(static_cast<std::int64_t>(rng.next() % 21) - 10,
               1 + static_cast<std::int64_t>(rng.next() % 4));
    if (std::find(roots.begin(), roots.end(), r) == roots.end()) {
      roots.push_back(r);
    }
  }
  std::sort(roots.begin(), roots.end());
  UPoly p = UPoly::constant(Rational(1));
  for (const Rational& r : roots) {
    unsigned mult = 1 + static_cast<unsigned>(rng.next() % 2);
    for (unsigned m = 0; m < mult; ++m) {
      p = p * UPoly({-r, Rational(1)});
    }
  }
  auto isolated = isolate_real_roots(p);
  ASSERT_EQ(isolated.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(root_cmp(isolated[i], roots[i]), 0)
        << "root " << roots[i].to_string();
  }
  // Sturm agrees on the count of distinct roots.
  SturmSequence sturm(p);
  EXPECT_EQ(sturm.count_real_roots(), static_cast<int>(roots.size()));
}

TEST_P(RootsProperty, MixedRationalIrrationalOrdering) {
  Xoshiro rng(GetParam() ^ 0xf00);
  // p = (x^2 - c)(x - a) with c > 0 non-square: roots -sqrt c, a, sqrt c.
  std::int64_t c = 2 + static_cast<std::int64_t>(rng.next() % 7);
  if (c == 4) c = 5;  // keep it irrational
  Rational a(static_cast<std::int64_t>(rng.next() % 9) - 4);
  UPoly p = UPoly({Rational(-c), Rational(0), Rational(1)}) *
            UPoly({-a, Rational(1)});
  auto isolated = isolate_real_roots(p);
  ASSERT_EQ(isolated.size(), 3u);
  // Sorted ascending; exactly one is the rational a (unless a happens to
  // coincide with +-sqrt(c), impossible for non-square c).
  std::vector<AlgebraicNumber> nums;
  for (auto& r : isolated) nums.push_back(AlgebraicNumber::from_root(r));
  for (std::size_t i = 0; i + 1 < nums.size(); ++i) {
    EXPECT_LT(nums[i].cmp(nums[i + 1]), 0);
  }
  int rational_count = 0;
  for (auto& n : nums) {
    if (n.cmp(a) == 0) ++rational_count;
  }
  EXPECT_EQ(rational_count, 1);
}

TEST_P(RootsProperty, SignOfIsConsistentWithEvaluation) {
  Xoshiro rng(GetParam() ^ 0xbeef);
  // alpha = sqrt(c); query sign of random q at alpha and compare against
  // interval-refined numeric evaluation.
  std::int64_t c = 2 + static_cast<std::int64_t>(rng.next() % 10);
  std::int64_t s = static_cast<std::int64_t>(std::sqrt(static_cast<double>(c)));
  if (s * s == c) ++c;
  auto roots = isolate_real_roots(UPoly({Rational(-c), Rational(0),
                                         Rational(1)}));
  AlgebraicNumber alpha = AlgebraicNumber::from_root(roots[1]);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Rational> coeffs;
    for (int i = 0; i < 4; ++i) {
      coeffs.emplace_back(static_cast<std::int64_t>(rng.next() % 9) - 4);
    }
    UPoly q(coeffs);
    int sign = alpha.sign_of(q);
    double numeric = q.eval_double(std::sqrt(static_cast<double>(c)));
    if (std::fabs(numeric) > 1e-6) {
      EXPECT_EQ(sign, numeric > 0 ? 1 : -1)
          << q.to_string() << " at sqrt(" << c << ")";
    }
  }
  // The defining polynomial itself is always 0 at alpha.
  EXPECT_EQ(alpha.sign_of(UPoly({Rational(-c), Rational(0), Rational(1)})),
            0);
}

TEST_P(RootsProperty, SturmIntervalCountsPartition) {
  Xoshiro rng(GetParam() ^ 0xcafe);
  std::vector<Rational> coeffs;
  const std::size_t deg = 3 + rng.next() % 3;
  for (std::size_t i = 0; i <= deg; ++i) {
    coeffs.emplace_back(static_cast<std::int64_t>(rng.next() % 11) - 5);
  }
  UPoly p(coeffs);
  if (p.degree() < 1) return;
  SturmSequence sturm(p);
  const int total = sturm.count_real_roots();
  // Counts over a partition of (-B, B] sum to the total.
  Rational b = cauchy_root_bound(p);
  int sum = 0;
  Rational prev = -b;
  for (int i = 1; i <= 4; ++i) {
    Rational next = -b + (b + b) * Rational(i, 4);
    sum += sturm.count_roots(prev, next);
    prev = next;
  }
  EXPECT_EQ(sum, total) << p.to_string();
  // And isolation finds the same number of roots.
  EXPECT_EQ(static_cast<int>(isolate_real_roots(p).size()), total);
}

TEST_P(RootsProperty, SimplestRationalDetectsPlantedRoot) {
  Xoshiro rng(GetParam() ^ 0x5151);
  // A root with a modest denominator must be detected as exact after a
  // bounded number of refinements (continued-fraction detection).
  Rational r(static_cast<std::int64_t>(rng.next() % 39) - 19,
             1 + static_cast<std::int64_t>(rng.next() % 12));
  // Pair it with an irrational companion.
  UPoly p = UPoly({-r, Rational(1)}) *
            UPoly({Rational(-7), Rational(0), Rational(1)});
  auto isolated = isolate_real_roots(p);
  bool found_exact = false;
  for (auto root : isolated) {
    for (int i = 0; i < 64 && !root.is_exact(); ++i) refine_root(&root);
    if (root.is_exact() && root.lo == r) found_exact = true;
  }
  EXPECT_TRUE(found_exact) << "planted " << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RootsProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace cqa
