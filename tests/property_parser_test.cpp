// Print/parse round-trip property: random formulas survive a round trip
// through the printer with identical semantics and identical re-print.

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/logic/eval.h"
#include "cqa/logic/parser.h"
#include "cqa/logic/printer.h"

namespace cqa {
namespace {

class ParserProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Random formula over named variables a..d, with polynomial atoms,
// predicates, and quantifiers.
class Gen {
 public:
  explicit Gen(std::uint64_t seed, VarTable* vars) : rng_(seed), vars_(vars) {
    for (const char* n : {"a", "b", "c", "d"}) {
      ids_.push_back(vars_->index_of(n));
    }
  }

  Polynomial poly(int depth) {
    Polynomial p = Polynomial::constant(
        Rational(static_cast<std::int64_t>(rng_.next() % 9) - 4,
                 1 + static_cast<std::int64_t>(rng_.next() % 3)));
    const std::size_t terms = 1 + rng_.next() % 3;
    for (std::size_t t = 0; t < terms; ++t) {
      Polynomial mono = Polynomial::constant(
          Rational(static_cast<std::int64_t>(rng_.next() % 7) - 3));
      const std::size_t factors = 1 + rng_.next() % (depth > 0 ? 2 : 1);
      for (std::size_t f = 0; f < factors; ++f) {
        mono *= Polynomial::variable(ids_[rng_.next() % ids_.size()]);
      }
      p += mono;
    }
    return p;
  }

  FormulaPtr formula(int depth) {
    if (depth == 0 || rng_.next() % 4 == 0) {
      switch (rng_.next() % 3) {
        case 0:
          return Formula::atom(poly(depth),
                               static_cast<RelOp>(rng_.next() % 6));
        case 1:
          return Formula::predicate(
              "R", {poly(0), Polynomial::variable(ids_[0])});
        default:
          return Formula::atom(poly(depth), RelOp::kLe);
      }
    }
    switch (rng_.next() % 4) {
      case 0:
        return Formula::f_and(formula(depth - 1), formula(depth - 1));
      case 1:
        return Formula::f_or(formula(depth - 1), formula(depth - 1));
      case 2:
        return Formula::f_not(formula(depth - 1));
      default:
        return Formula::exists(ids_[rng_.next() % ids_.size()],
                               formula(depth - 1));
    }
  }

 private:
  Xoshiro rng_;
  VarTable* vars_;
  std::vector<std::size_t> ids_;
};

TEST_P(ParserProperty, PrintParseFixpoint) {
  VarTable vars;
  Gen gen(GetParam(), &vars);
  for (int i = 0; i < 10; ++i) {
    FormulaPtr f = gen.formula(3);
    std::string printed = to_string(f, vars);
    auto reparsed = parse_formula(printed, &vars);
    ASSERT_TRUE(reparsed.is_ok()) << printed;
    // Printing again is a fixpoint.
    EXPECT_EQ(to_string(reparsed.value(), vars), printed);
  }
}

TEST_P(ParserProperty, RoundTripPreservesSemantics) {
  VarTable vars;
  Gen gen(GetParam() ^ 0x99, &vars);
  Xoshiro rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    FormulaPtr f = gen.formula(2);
    if (!f->is_quantifier_free() || f->has_predicates()) continue;
    std::string printed = to_string(f, vars);
    auto g = parse_formula(printed, &vars);
    ASSERT_TRUE(g.is_ok()) << printed;
    const std::size_t dim =
        static_cast<std::size_t>(
            std::max(f->max_var(), g.value()->max_var())) +
        1;
    for (int trial = 0; trial < 10; ++trial) {
      RVec pt(dim);
      for (auto& x : pt) {
        x = Rational(static_cast<std::int64_t>(rng.next() % 11) - 5, 2);
      }
      EXPECT_EQ(eval_qf(f, pt).value_or_die(),
                eval_qf(g.value(), pt).value_or_die())
          << printed;
    }
  }
}

TEST_P(ParserProperty, StructuralCountsSurvive) {
  VarTable vars;
  Gen gen(GetParam() ^ 0x77, &vars);
  for (int i = 0; i < 10; ++i) {
    FormulaPtr f = gen.formula(3);
    auto g = parse_formula(to_string(f, vars), &vars);
    ASSERT_TRUE(g.is_ok());
    // The factories normalize both sides the same way, so atom and
    // quantifier counts agree.
    EXPECT_EQ(f->count_atoms(), g.value()->count_atoms());
    EXPECT_EQ(f->count_quantifiers(), g.value()->count_quantifiers());
    EXPECT_EQ(f->free_vars(), g.value()->free_vars());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cqa
