#include <gtest/gtest.h>

#include "cqa/geometry/affine.h"
#include "cqa/geometry/hull2d.h"
#include "cqa/geometry/polyhedron.h"
#include "cqa/geometry/polytope_volume.h"
#include "cqa/geometry/vertex_enum.h"
#include "cqa/logic/parser.h"

namespace cqa {
namespace {

RVec pt(std::vector<std::int64_t> v) {
  RVec out;
  for (auto x : v) out.emplace_back(x);
  return out;
}

TEST(Polyhedron, BoxBasics) {
  Polyhedron box = Polyhedron::box(2, Rational(0), Rational(1));
  EXPECT_FALSE(box.is_empty());
  EXPECT_TRUE(box.is_bounded());
  EXPECT_TRUE(box.contains(pt({0, 0})));
  EXPECT_TRUE(box.contains({Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(box.contains(pt({2, 0})));
}

TEST(Polyhedron, SimplexBasics) {
  Polyhedron s = Polyhedron::simplex(3, Rational(1));
  EXPECT_TRUE(s.is_bounded());
  EXPECT_TRUE(s.contains({Rational(1, 4), Rational(1, 4), Rational(1, 4)}));
  EXPECT_FALSE(s.contains({Rational(1, 2), Rational(1, 2), Rational(1, 2)}));
}

TEST(Polyhedron, Intersect) {
  Polyhedron a = Polyhedron::box(2, Rational(0), Rational(2));
  Polyhedron b = Polyhedron::box(2, Rational(1), Rational(3));
  Polyhedron c = a.intersect(b);
  EXPECT_TRUE(c.contains(pt({1, 1})));
  EXPECT_FALSE(c.contains(pt({0, 0})));
  EXPECT_EQ(polytope_volume(c).value_or_die(), Rational(1));
}

TEST(VertexEnum, UnitSquare) {
  Polyhedron box = Polyhedron::box(2, Rational(0), Rational(1));
  auto vs = enumerate_vertices(box);
  ASSERT_EQ(vs.size(), 4u);
  EXPECT_EQ(vs[0], pt({0, 0}));
  EXPECT_EQ(vs[3], pt({1, 1}));
  EXPECT_EQ(polytope_dimension(box), 2);
}

TEST(VertexEnum, Simplex3d) {
  Polyhedron s = Polyhedron::simplex(3, Rational(2));
  auto vs = enumerate_vertices(s);
  EXPECT_EQ(vs.size(), 4u);
}

TEST(VertexEnum, DegenerateSegment) {
  // x = y inside the unit square: a segment with 2 vertices, dim 1.
  VarTable vars;
  auto f = parse_formula("0 <= x & x <= 1 & 0 <= y & y <= 1 & x = y", &vars)
               .value_or_die();
  auto cells = formula_to_cells(f, 2).value_or_die();
  ASSERT_EQ(cells.size(), 1u);
  Polyhedron p(cells[0]);
  auto vs = enumerate_vertices(p);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(polytope_dimension(p), 1);
}

TEST(VertexEnum, EmptyPolyhedron) {
  VarTable vars;
  auto f = parse_formula("x <= 0 & x >= 1", &vars).value_or_die();
  // formula_to_cells drops infeasible cells; build directly instead.
  LinearCell cell(1);
  LinearConstraint c1;
  c1.coeffs = {Rational(1)};
  c1.rhs = Rational(0);
  c1.cmp = LinCmp::kLe;
  LinearConstraint c2;
  c2.coeffs = {Rational(-1)};
  c2.rhs = Rational(-1);
  c2.cmp = LinCmp::kLe;
  cell.add(c1);
  cell.add(c2);
  Polyhedron p(cell);
  EXPECT_TRUE(p.is_empty());
  EXPECT_TRUE(enumerate_vertices(p).empty());
  EXPECT_EQ(polytope_dimension(p), -1);
}

TEST(PolytopeVolume, Boxes) {
  EXPECT_EQ(polytope_volume(Polyhedron::box(1, Rational(0), Rational(1)))
                .value_or_die(),
            Rational(1));
  EXPECT_EQ(polytope_volume(Polyhedron::box(2, Rational(-1), Rational(1)))
                .value_or_die(),
            Rational(4));
  EXPECT_EQ(polytope_volume(Polyhedron::box(3, Rational(0), Rational(2)))
                .value_or_die(),
            Rational(8));
  EXPECT_EQ(polytope_volume(Polyhedron::box(4, Rational(0), Rational(1)))
                .value_or_die(),
            Rational(1));
}

TEST(PolytopeVolume, Simplices) {
  // Vol of standard simplex in R^n with side s is s^n / n!.
  EXPECT_EQ(polytope_volume(Polyhedron::simplex(2, Rational(1)))
                .value_or_die(),
            Rational(1, 2));
  EXPECT_EQ(polytope_volume(Polyhedron::simplex(3, Rational(1)))
                .value_or_die(),
            Rational(1, 6));
  EXPECT_EQ(polytope_volume(Polyhedron::simplex(4, Rational(1)))
                .value_or_die(),
            Rational(1, 24));
  EXPECT_EQ(polytope_volume(Polyhedron::simplex(3, Rational(2)))
                .value_or_die(),
            Rational(8, 6));
}

TEST(PolytopeVolume, DegenerateIsZero) {
  VarTable vars;
  auto f = parse_formula("0 <= x & x <= 1 & y = x", &vars).value_or_die();
  auto cells = formula_to_cells(f, 2).value_or_die();
  Polyhedron p(cells[0]);
  EXPECT_EQ(polytope_volume(p).value_or_die(), Rational(0));
}

TEST(PolytopeVolume, ImplicitEqualityIsZero) {
  // x <= 1/2 and x >= 1/2 without an explicit equality.
  LinearCell cell(2);
  LinearConstraint up;
  up.coeffs = {Rational(1), Rational(0)};
  up.rhs = Rational(1, 2);
  up.cmp = LinCmp::kLe;
  LinearConstraint dn;
  dn.coeffs = {Rational(-1), Rational(0)};
  dn.rhs = Rational(-1, 2);
  dn.cmp = LinCmp::kLe;
  cell.add(up);
  cell.add(dn);
  cell = cell.intersect_box(Rational(0), Rational(1));
  EXPECT_EQ(polytope_volume(Polyhedron(cell)).value_or_die(), Rational(0));
}

TEST(PolytopeVolume, UnboundedErrors) {
  LinearCell cell(2);
  LinearConstraint c;
  c.coeffs = {Rational(1), Rational(0)};
  c.rhs = Rational(0);
  c.cmp = LinCmp::kLe;
  cell.add(c);
  EXPECT_FALSE(polytope_volume(Polyhedron(cell)).is_ok());
}

TEST(PolytopeVolume, CrossPolytope2d) {
  // |x| + |y| <= 1 has area 2.
  VarTable vars;
  auto f = parse_formula(
               "x + y <= 1 & x - y <= 1 & 0 - x + y <= 1 & 0 - x - y <= 1",
               &vars)
               .value_or_die();
  auto cells = formula_to_cells(f, 2).value_or_die();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(polytope_volume(Polyhedron(cells[0])).value_or_die(), Rational(2));
}

TEST(PolytopeVolume, AgainstSimplexFormula) {
  // Simplex with vertices 0, 2e1, 3e2, 4e3: volume |det|/6 = 24/6 = 4.
  std::vector<RVec> verts = {pt({0, 0, 0}), pt({2, 0, 0}), pt({0, 3, 0}),
                             pt({0, 0, 4})};
  EXPECT_EQ(simplex_volume(verts), Rational(4));
  auto hull = Polyhedron::hull_of(verts).value_or_die();
  EXPECT_EQ(polytope_volume(hull).value_or_die(), Rational(4));
}

TEST(PolyhedronHull, SquareFromPoints) {
  std::vector<RVec> pts = {pt({0, 0}), pt({1, 0}), pt({0, 1}), pt({1, 1}),
                           pt({0, 0})};  // duplicate ok
  auto hull = Polyhedron::hull_of(pts).value_or_die();
  EXPECT_TRUE(hull.contains({Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(hull.contains({Rational(2), Rational(0)}));
  EXPECT_EQ(polytope_volume(hull).value_or_die(), Rational(1));
}

TEST(PolyhedronHull, InteriorPointsIgnored) {
  std::vector<RVec> pts = {pt({0, 0}), pt({4, 0}), pt({0, 4}),
                           pt({1, 1})};  // interior
  auto hull = Polyhedron::hull_of(pts).value_or_die();
  EXPECT_EQ(polytope_volume(hull).value_or_die(), Rational(8));
  auto vs = enumerate_vertices(hull);
  EXPECT_EQ(vs.size(), 3u);
}

TEST(PolyhedronHull, DegenerateRejected) {
  std::vector<RVec> pts = {pt({0, 0}), pt({1, 1}), pt({2, 2})};
  EXPECT_FALSE(Polyhedron::hull_of(pts).is_ok());
  // Single point OK.
  auto single = Polyhedron::hull_of({pt({3, 4})}).value_or_die();
  EXPECT_TRUE(single.contains(pt({3, 4})));
  EXPECT_FALSE(single.contains(pt({3, 5})));
}

TEST(Hull2d, MonotoneChain) {
  std::vector<Point2> pts = {
      {Rational(0), Rational(0)}, {Rational(2), Rational(0)},
      {Rational(2), Rational(2)}, {Rational(0), Rational(2)},
      {Rational(1), Rational(1)},  // interior
      {Rational(1), Rational(0)},  // on edge
  };
  auto hull = convex_hull(pts);
  ASSERT_EQ(hull.size(), 4u);
  EXPECT_EQ(polygon_area(hull), Rational(4));
  EXPECT_TRUE(convex_contains(hull, {Rational(1), Rational(1)}));
  EXPECT_TRUE(convex_contains(hull, {Rational(0), Rational(0)}));
  EXPECT_FALSE(convex_contains(hull, {Rational(3), Rational(0)}));
}

TEST(Hull2d, TriangulationSumsToArea) {
  std::vector<Point2> pts = {
      {Rational(0), Rational(0)}, {Rational(3), Rational(0)},
      {Rational(4), Rational(2)}, {Rational(2), Rational(4)},
      {Rational(0), Rational(3)},
  };
  auto hull = convex_hull(pts);
  ASSERT_EQ(hull.size(), 5u);
  Rational total;
  for (const auto& tri : fan_triangulate(hull)) {
    total += triangle_area(tri[0], tri[1], tri[2]);
  }
  EXPECT_EQ(total, polygon_area(hull));
}

TEST(Hull2d, CollinearDegenerate) {
  std::vector<Point2> pts = {
      {Rational(0), Rational(0)}, {Rational(1), Rational(1)},
      {Rational(2), Rational(2)},
  };
  auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 2u);  // just the segment endpoints
  EXPECT_EQ(polygon_area(hull), Rational(0));
}

TEST(Affine, PointsAndComposition) {
  AffineMap t = AffineMap::translation({Rational(1), Rational(2)});
  AffineMap s = AffineMap::scaling(2, Rational(3));
  RVec p = {Rational(1), Rational(1)};
  EXPECT_EQ(t.apply(p), (RVec{Rational(2), Rational(3)}));
  EXPECT_EQ(s.apply(p), (RVec{Rational(3), Rational(3)}));
  AffineMap st = s.compose(t);  // scale after translate
  EXPECT_EQ(st.apply(p), (RVec{Rational(6), Rational(9)}));
  EXPECT_EQ(st.determinant(), Rational(9));
}

TEST(Affine, Rotation2dIsOrthogonal) {
  AffineMap r = AffineMap::rotation2d(Rational(1, 2));
  EXPECT_EQ(r.determinant(), Rational(1));
  // Image of the unit square has the same volume.
  LinearCell square = LinearCell(2).intersect_box(Rational(0), Rational(1));
  LinearCell rotated = r.apply(square).value_or_die();
  EXPECT_EQ(polytope_volume(Polyhedron(rotated)).value_or_die(), Rational(1));
}

TEST(Affine, CellImageScalesVolume) {
  AffineMap s = AffineMap::scaling(2, Rational(2));
  LinearCell square = LinearCell(2).intersect_box(Rational(0), Rational(1));
  LinearCell img = s.apply(square).value_or_die();
  EXPECT_EQ(polytope_volume(Polyhedron(img)).value_or_die(), Rational(4));
  AffineMap sh = AffineMap::shear2d(Rational(5));
  LinearCell sheared = sh.apply(square).value_or_die();
  EXPECT_EQ(polytope_volume(Polyhedron(sheared)).value_or_die(), Rational(1));
}

TEST(Affine, CellImageContainsMappedPoints) {
  AffineMap r = AffineMap::rotation2d(Rational(1, 3));
  LinearCell square = LinearCell(2).intersect_box(Rational(0), Rational(1));
  LinearCell img = r.apply(square).value_or_die();
  for (int i = 0; i <= 2; ++i) {
    for (int j = 0; j <= 2; ++j) {
      RVec p = {Rational(i, 2), Rational(j, 2)};
      EXPECT_TRUE(img.contains(r.apply(p)));
    }
  }
  EXPECT_FALSE(img.contains(r.apply({Rational(2), Rational(0)})));
}

}  // namespace
}  // namespace cqa
