// Property tests for the END operator / 1-D decomposition: random
// interval unions round-trip through decompose_1d with exact membership.

#include <gtest/gtest.h>

#include <set>

#include "cqa/aggregate/endpoints.h"
#include "cqa/approx/random.h"
#include "cqa/volume/semilinear_volume.h"

namespace cqa {
namespace {

class EndpointsProperty : public ::testing::TestWithParam<std::uint64_t> {};

struct RandomPieces {
  FormulaPtr formula;                         // in variable 0
  std::vector<std::pair<Rational, Rational>> closed_intervals;
  std::vector<Rational> points;
};

RandomPieces random_pieces(std::uint64_t seed) {
  Xoshiro rng(seed);
  RandomPieces out;
  std::vector<FormulaPtr> parts;
  Polynomial y = Polynomial::variable(0);
  const std::size_t n_intervals = 1 + rng.next() % 3;
  const std::size_t n_points = rng.next() % 3;
  Rational cursor(static_cast<std::int64_t>(rng.next() % 5) - 10);
  for (std::size_t i = 0; i < n_intervals; ++i) {
    Rational lo = cursor + Rational(1 + static_cast<std::int64_t>(
                                            rng.next() % 4),
                                    2);
    Rational hi = lo + Rational(1 + static_cast<std::int64_t>(rng.next() % 6),
                                3);
    out.closed_intervals.emplace_back(lo, hi);
    parts.push_back(Formula::f_and(
        Formula::ge(y, Polynomial::constant(lo)),
        Formula::le(y, Polynomial::constant(hi))));
    cursor = hi;
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    cursor += Rational(1 + static_cast<std::int64_t>(rng.next() % 3));
    out.points.push_back(cursor);
    parts.push_back(Formula::eq(y, Polynomial::constant(cursor)));
  }
  out.formula = Formula::f_or(std::move(parts));
  return out;
}

TEST_P(EndpointsProperty, DecompositionMatchesConstruction) {
  Database db;
  RandomPieces rp = random_pieces(GetParam());
  auto decomp = decompose_1d(db, rp.formula, 0, {}).value_or_die();
  EXPECT_EQ(decomp.size(),
            rp.closed_intervals.size() + rp.points.size());
  std::size_t interval_pieces = 0, point_pieces = 0;
  for (const auto& piece : decomp) {
    ASSERT_FALSE(piece.lo_infinite);
    ASSERT_FALSE(piece.hi_infinite);
    if (piece.lo.cmp(piece.hi) == 0) {
      ++point_pieces;
    } else {
      ++interval_pieces;
      EXPECT_TRUE(piece.lo_closed);
      EXPECT_TRUE(piece.hi_closed);
    }
  }
  EXPECT_EQ(interval_pieces, rp.closed_intervals.size());
  EXPECT_EQ(point_pieces, rp.points.size());
}

TEST_P(EndpointsProperty, EndpointsAreExactlyTheConstructedOnes) {
  Database db;
  RandomPieces rp = random_pieces(GetParam() ^ 0x55);
  auto eps = rational_endpoints_1d(db, rp.formula, 0, {}).value_or_die();
  std::set<Rational> expect;
  for (const auto& [lo, hi] : rp.closed_intervals) {
    expect.insert(lo);
    expect.insert(hi);
  }
  for (const auto& p : rp.points) expect.insert(p);
  std::set<Rational> got(eps.begin(), eps.end());
  EXPECT_EQ(got, expect);
}

TEST_P(EndpointsProperty, MembershipConsistency) {
  // Every midpoint of a decomposed piece satisfies the formula; points
  // strictly between pieces do not.
  Database db;
  RandomPieces rp = random_pieces(GetParam() ^ 0x77);
  auto decomp = decompose_1d(db, rp.formula, 0, {}).value_or_die();
  for (std::size_t i = 0; i < decomp.size(); ++i) {
    const auto& piece = decomp[i];
    Rational mid = Rational::mid(piece.lo.rational_value(),
                                 piece.hi.rational_value());
    EXPECT_TRUE(db.holds(rp.formula, {{0, mid}}).value_or_die());
    if (i + 1 < decomp.size()) {
      Rational gap = Rational::mid(piece.hi.rational_value(),
                                   decomp[i + 1].lo.rational_value());
      EXPECT_FALSE(db.holds(rp.formula, {{0, gap}}).value_or_die());
    }
  }
}

TEST_P(EndpointsProperty, SafetyDetection) {
  // is_finite_1d is true iff the construction used no intervals.
  Database db;
  RandomPieces rp = random_pieces(GetParam() ^ 0x99);
  bool fin = is_finite_1d(db, rp.formula, 0, {}).value_or_die();
  EXPECT_EQ(fin, rp.closed_intervals.empty());
}

TEST_P(EndpointsProperty, TotalLengthMatchesVolumeEngine) {
  // Sum of decomposed interval lengths == 1-D semilinear volume.
  Database db;
  RandomPieces rp = random_pieces(GetParam() ^ 0xbb);
  auto decomp = decompose_1d(db, rp.formula, 0, {}).value_or_die();
  Rational total;
  for (const auto& piece : decomp) {
    total += piece.hi.rational_value() - piece.lo.rational_value();
  }
  auto cells = formula_to_cells(rp.formula, 1).value_or_die();
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndpointsProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace cqa
