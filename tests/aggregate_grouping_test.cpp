// Tests for the grouping construct and bag semantics (the paper's
// conclusion asks for grouping; footnote 2 notes SQL AVG is bag-based).

#include <gtest/gtest.h>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"

namespace cqa {
namespace {

ConstraintDatabase make_sales_db() {
  ConstraintDatabase db;
  // Sale(region, amount).
  CQA_CHECK(db.add_table("Sale", std::vector<std::vector<std::int64_t>>{
                                     {1, 100},
                                     {1, 200},
                                     {2, 50},
                                     {2, 150},
                                     {2, 250},
                                     {3, 999}})
                .is_ok());
  return db;
}

TEST(GroupBy, SumPerGroup) {
  ConstraintDatabase db = make_sales_db();
  AggregationEngine agg(&db);
  auto rows = agg.group_by(AggregateFn::kSum, "Sale(g, v)", "g", "v")
                  .value_or_die();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], std::make_pair(Rational(1), Rational(300)));
  EXPECT_EQ(rows[1], std::make_pair(Rational(2), Rational(450)));
  EXPECT_EQ(rows[2], std::make_pair(Rational(3), Rational(999)));
}

TEST(GroupBy, CountAvgMinMax) {
  ConstraintDatabase db = make_sales_db();
  AggregationEngine agg(&db);
  auto counts = agg.group_by(AggregateFn::kCount, "Sale(g, v)", "g", "v")
                    .value_or_die();
  EXPECT_EQ(counts[0].second, Rational(2));
  EXPECT_EQ(counts[1].second, Rational(3));
  auto avgs = agg.group_by(AggregateFn::kAvg, "Sale(g, v)", "g", "v")
                  .value_or_die();
  EXPECT_EQ(avgs[0].second, Rational(150));
  EXPECT_EQ(avgs[1].second, Rational(150));
  auto mins = agg.group_by(AggregateFn::kMin, "Sale(g, v)", "g", "v")
                  .value_or_die();
  EXPECT_EQ(mins[1].second, Rational(50));
  auto maxs = agg.group_by(AggregateFn::kMax, "Sale(g, v)", "g", "v")
                  .value_or_die();
  EXPECT_EQ(maxs[2].second, Rational(999));
}

TEST(GroupBy, WithSelectionPredicate) {
  ConstraintDatabase db = make_sales_db();
  AggregationEngine agg(&db);
  // Only large sales.
  auto rows =
      agg.group_by(AggregateFn::kCount, "Sale(g, v) & v >= 150", "g", "v")
          .value_or_die();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].second, Rational(1));
  EXPECT_EQ(rows[1].second, Rational(2));
  EXPECT_EQ(rows[2].second, Rational(1));
}

TEST(GroupBy, GroupsOverConstraintRelationRejectedWhenInfinite) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Strip", {"x", "y"},
                          "0 <= x & x <= 1 & 0 <= y & y <= 1")
                .is_ok());
  AggregationEngine agg(&db);
  // Infinitely many groups: must be refused.
  EXPECT_FALSE(
      agg.group_by(AggregateFn::kCount, "Strip(g, v)", "g", "v").is_ok());
}

TEST(GroupBy, EmptyQueryGivesNoRows) {
  ConstraintDatabase db = make_sales_db();
  AggregationEngine agg(&db);
  auto rows =
      agg.group_by(AggregateFn::kSum, "Sale(g, v) & v > 10000", "g", "v")
          .value_or_die();
  EXPECT_TRUE(rows.empty());
}

TEST(BagSemantics, DuplicatesSurvive) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_bag_table("M", std::vector<std::vector<std::int64_t>>{
                                      {5}, {5}, {7}})
                .is_ok());
  EXPECT_TRUE(db.db().is_bag("M"));
  EXPECT_EQ(db.db().tuples_of("M").value_or_die().size(), 3u);
  AggregationEngine agg(&db);
  EXPECT_EQ(agg.bag_aggregate(AggregateFn::kCount, "M", 0).value_or_die(),
            Rational(3));
  EXPECT_EQ(agg.bag_aggregate(AggregateFn::kSum, "M", 0).value_or_die(),
            Rational(17));
  EXPECT_EQ(agg.bag_aggregate(AggregateFn::kAvg, "M", 0).value_or_die(),
            Rational(17, 3));
}

TEST(BagSemantics, SetVsBagAvgDiffer) {
  // The paper's footnote: bag AVG weights duplicates; set AVG does not.
  ConstraintDatabase db;
  CQA_CHECK(db.add_bag_table("B", std::vector<std::vector<std::int64_t>>{
                                      {0}, {0}, {0}, {10}})
                .is_ok());
  AggregationEngine agg(&db);
  Rational bag = agg.bag_aggregate(AggregateFn::kAvg, "B", 0).value_or_die();
  EXPECT_EQ(bag, Rational(10, 4));
  // Set-semantics AVG over the same relation's *distinct* values.
  Rational set_avg =
      agg.aggregate(AggregateFn::kAvg, "B(v)", "v").value_or_die();
  EXPECT_EQ(set_avg, Rational(5));
}

TEST(BagSemantics, FilteredAggregation) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_bag_table("Sale", std::vector<std::vector<std::int64_t>>{
                                         {1, 100}, {1, 100}, {2, 300}})
                .is_ok());
  AggregationEngine agg(&db);
  // SUM(amount) WHERE region = 1 -- duplicates counted twice.
  Rational s = agg.bag_aggregate(AggregateFn::kSum, "Sale", 1, "r = 1",
                                 {"r", "a"})
                   .value_or_die();
  EXPECT_EQ(s, Rational(200));
  EXPECT_EQ(agg.bag_aggregate(AggregateFn::kMax, "Sale", 1).value_or_die(),
            Rational(300));
  EXPECT_EQ(agg.bag_aggregate(AggregateFn::kMin, "Sale", 1).value_or_die(),
            Rational(100));
  // Filter with a stray variable is rejected.
  EXPECT_FALSE(agg.bag_aggregate(AggregateFn::kSum, "Sale", 1, "r = q",
                                 {"r", "a"})
                   .is_ok());
}

TEST(BagSemantics, MembershipIgnoresMultiplicity) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_bag_table("M", std::vector<std::vector<std::int64_t>>{
                                      {5}, {5}})
                .is_ok());
  EXPECT_TRUE(db.contains("M", {Rational(5)}));
  EXPECT_FALSE(db.contains("M", {Rational(6)}));
}

}  // namespace
}  // namespace cqa
