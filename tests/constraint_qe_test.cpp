#include "cqa/constraint/qe.h"

#include <gtest/gtest.h>

#include "cqa/logic/eval.h"
#include "cqa/logic/parser.h"
#include "cqa/logic/printer.h"

namespace cqa {
namespace {

TEST(Cells, FormulaToCells) {
  VarTable vars;
  auto f = parse_formula("(0 <= x & x <= 1) | (2 <= x & x <= 3)", &vars)
               .value_or_die();
  auto cells = formula_to_cells(f, 1).value_or_die();
  EXPECT_EQ(cells.size(), 2u);
}

TEST(Cells, InfeasibleCellsDropped) {
  auto f = parse_formula("x < 0 & x > 1").value_or_die();
  auto cells = formula_to_cells(f, 1).value_or_die();
  EXPECT_TRUE(cells.empty());
}

TEST(Cells, DisequalitySplits) {
  VarTable vars;
  auto f = parse_formula("0 <= x & x <= 1 & x != 1/2", &vars).value_or_die();
  auto cells = formula_to_cells(f, 1).value_or_die();
  EXPECT_EQ(cells.size(), 2u);
}

TEST(Cells, RestrictVar) {
  VarTable vars;
  // Triangle 0 <= y <= x <= 1.
  auto f = parse_formula("0 <= y & y <= x & x <= 1", &vars).value_or_die();
  auto cells = formula_to_cells(f, 2).value_or_die();
  ASSERT_EQ(cells.size(), 1u);
  // Fix x = 1/2: section is 0 <= y <= 1/2.
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  LinearCell sec = cells[0].restrict_var(x, Rational(1, 2));
  AxisInterval iv = sec.project_to_axis(y);
  EXPECT_EQ(*iv.lo, Rational(0));
  EXPECT_EQ(*iv.hi, Rational(1, 2));
}

TEST(Cells, BoundedDetection) {
  VarTable vars;
  auto box = parse_formula("0 <= x & x <= 1 & 0 <= y & y <= 1", &vars)
                 .value_or_die();
  auto cells = formula_to_cells(box, 2).value_or_die();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].is_bounded());
  auto half = parse_formula("0 <= x & 0 <= y & y <= 1", &vars).value_or_die();
  auto cells2 = formula_to_cells(half, 2).value_or_die();
  ASSERT_EQ(cells2.size(), 1u);
  EXPECT_FALSE(cells2[0].is_bounded());
}

TEST(Cells, IntersectBox) {
  VarTable vars;
  auto f = parse_formula("x >= 1/2", &vars).value_or_die();
  auto cells = formula_to_cells(f, 1).value_or_die();
  LinearCell boxed = cells[0].intersect_box(Rational(0), Rational(1));
  EXPECT_TRUE(boxed.is_bounded());
  AxisInterval iv = boxed.project_to_axis(0);
  EXPECT_EQ(*iv.lo, Rational(1, 2));
  EXPECT_EQ(*iv.hi, Rational(1));
}

TEST(QE, ExistsProjectsTriangle) {
  VarTable vars;
  // E y. 0 <= y & y <= x & x <= 1 : equivalent to 0 <= x <= 1.
  auto f = parse_formula("E y. 0 <= y & y <= x & x <= 1", &vars)
               .value_or_die();
  auto qf = qe_linear(f).value_or_die();
  EXPECT_TRUE(qf->is_quantifier_free());
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  // Check pointwise equivalence on a grid.
  for (int i = -4; i <= 8; ++i) {
    Rational v(i, 4);
    RVec pt(static_cast<std::size_t>(qf->max_var()) + 1);
    if (x < pt.size()) pt[x] = v;
    bool expect = Rational(0) <= v && v <= Rational(1);
    EXPECT_EQ(eval_qf(qf, pt).value_or_die(), expect) << v.to_string();
  }
}

TEST(QE, ForallViaDuality) {
  // A x. x < y : false for all y... actually for any fixed y there are
  // x >= y, so the formula is unsatisfiable: QE gives false.
  auto f = parse_formula("A x. x < y").value_or_die();
  auto qf = qe_linear(f).value_or_die();
  EXPECT_EQ(qf->kind(), Formula::Kind::kFalse);
  // A x. (x < y | x >= y) is true.
  auto g = parse_formula("A x. (x < y | x >= y)").value_or_die();
  auto qg = qe_linear(g).value_or_die();
  EXPECT_EQ(qg->kind(), Formula::Kind::kTrue);
}

TEST(QE, SentenceDecisions) {
  EXPECT_TRUE(qe_decide_sentence(
                  parse_formula("E x. E y. x < y & y < 1 & 0 < x")
                      .value_or_die())
                  .value_or_die());
  EXPECT_FALSE(qe_decide_sentence(
                   parse_formula("E x. x < 0 & x > 0").value_or_die())
                   .value_or_die());
  // Dense order: A x. A z. (x < z -> E y. x < y & y < z), written
  // without ->.
  EXPECT_TRUE(qe_decide_sentence(
                  parse_formula("A x. A z. (x >= z | (E y. x < y & y < z))")
                      .value_or_die())
                  .value_or_die());
}

TEST(QE, CoupledQuantifiersThatDecideCannotHandle) {
  // E x. E y. x < y -- the decide() module rejects this as non-separable;
  // FM-based QE handles it exactly.
  EXPECT_TRUE(qe_decide_sentence(parse_formula("E x. E y. x < y")
                                     .value_or_die())
                  .value_or_die());
}

TEST(QE, EliminationKeepsStrictness) {
  VarTable vars;
  // E y. x < y & y < 1  ==  x < 1 (strict).
  auto f = parse_formula("E y. x < y & y < 1", &vars).value_or_die();
  auto qf = qe_linear(f).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  RVec at_one(static_cast<std::size_t>(std::max(qf->max_var(), 0)) + 1);
  if (x < at_one.size()) at_one[x] = Rational(1);
  EXPECT_FALSE(eval_qf(qf, at_one).value_or_die());
  RVec below(at_one.size());
  if (x < below.size()) below[x] = Rational(9, 10);
  EXPECT_TRUE(eval_qf(qf, below).value_or_die());
}

TEST(QE, RejectsNonlinearAndPredicates) {
  EXPECT_FALSE(qe_linear(parse_formula("E x. x*x < 1").value_or_die()).is_ok());
  EXPECT_FALSE(
      qe_linear(parse_formula("E x. U(x)").value_or_die()).is_ok());
}

TEST(QE, ArctanStyleNesting) {
  // Multi-level elimination: E y. E z. 0 <= z & z <= y & y <= x.
  VarTable vars;
  auto f = parse_formula("E y. E z. 0 <= z & z <= y & y <= x", &vars)
               .value_or_die();
  auto qf = qe_linear(f).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  RVec neg(static_cast<std::size_t>(std::max(qf->max_var(), static_cast<int>(x))) + 1);
  neg[x] = Rational(-1);
  EXPECT_FALSE(eval_qf(qf, neg).value_or_die());
  RVec pos(neg.size());
  pos[x] = Rational(5);
  EXPECT_TRUE(eval_qf(qf, pos).value_or_die());
  RVec zero(neg.size());
  EXPECT_TRUE(eval_qf(qf, zero).value_or_die());
}

}  // namespace
}  // namespace cqa
