#include "cqa/aggregate/sum_language.h"

#include <gtest/gtest.h>

#include "cqa/aggregate/sql_aggregates.h"
#include "cqa/logic/parser.h"

namespace cqa {
namespace {

RVec pt(std::vector<std::int64_t> v) {
  RVec out;
  for (auto x : v) out.emplace_back(x);
  return out;
}

TEST(DeterministicFormula, SolveUnique) {
  Database db;
  VarTable vars;
  // gamma(x; w): x = 2w + 1.
  auto g = parse_formula("x = 2*w + 1", &vars).value_or_die();
  DeterministicFormula gamma{g, static_cast<std::size_t>(vars.find("x"))};
  std::size_t w = static_cast<std::size_t>(vars.find("w"));
  auto r = gamma.solve(db, {{w, Rational(3)}}).value_or_die();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Rational(7));
}

TEST(DeterministicFormula, NoSolutionIsEmpty) {
  Database db;
  VarTable vars;
  auto g = parse_formula("x = w & x = w + 1", &vars).value_or_die();
  DeterministicFormula gamma{g, static_cast<std::size_t>(vars.find("x"))};
  std::size_t w = static_cast<std::size_t>(vars.find("w"));
  auto r = gamma.solve(db, {{w, Rational(0)}}).value_or_die();
  EXPECT_FALSE(r.has_value());
}

TEST(DeterministicFormula, NondeterministicRejected) {
  Database db;
  VarTable vars;
  auto g = parse_formula("x^2 = w", &vars).value_or_die();  // two roots
  DeterministicFormula gamma{g, static_cast<std::size_t>(vars.find("x"))};
  std::size_t w = static_cast<std::size_t>(vars.find("w"));
  EXPECT_FALSE(gamma.solve(db, {{w, Rational(4)}}).is_ok());
  // Interval of solutions also rejected.
  auto h = parse_formula("x >= w", &vars).value_or_die();
  DeterministicFormula gamma2{h, static_cast<std::size_t>(vars.find("x"))};
  EXPECT_FALSE(gamma2.solve(db, {{w, Rational(0)}}).is_ok());
}

TEST(RangeRestricted, EnumerateEndpointPairs) {
  Database db;
  VarTable vars;
  // phi2(y): 0 <= y <= 1  -> endpoints {0, 1}.
  auto range = parse_formula("0 <= y & y <= 1", &vars).value_or_die();
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  // Guard: w1 < w2 over endpoint pairs.
  auto guard = parse_formula("w1 < w2", &vars).value_or_die();
  RangeRestrictedExpr rho;
  rho.guard = guard;
  rho.range = range;
  rho.range_var = y;
  rho.w_vars = {static_cast<std::size_t>(vars.find("w1")),
                static_cast<std::size_t>(vars.find("w2"))};
  auto tuples = rho.enumerate(db, {}).value_or_die();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0], (RVec{Rational(0), Rational(1)}));
}

TEST(SumTerm, PaperExampleSumOfEndpoints) {
  // The paper's first example: the sum of all interval endpoints of
  // phi(D) with gamma(x, w) = (x = w) and rho(w) = (w = w)|END[w, phi(w)].
  Database db;
  VarTable vars;
  auto phi = parse_formula("(0 <= w & w <= 1) | (3 <= w & w <= 5)", &vars)
                 .value_or_die();
  std::size_t w = static_cast<std::size_t>(vars.find("w"));
  auto x = static_cast<std::size_t>(vars.size());  // fresh output var
  RangeRestrictedExpr rho;
  rho.guard = Formula::make_true();
  rho.range = phi;
  rho.range_var = w;
  rho.w_vars = {w};
  DeterministicFormula gamma{
      Formula::eq(Polynomial::variable(x), Polynomial::variable(w)), x};
  SumTermPtr term = SumTerm::sum(std::move(rho), std::move(gamma));
  // 0 + 1 + 3 + 5 = 9.
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(9));
}

TEST(SumTerm, TermAlgebra) {
  Database db;
  SumTermPtr c2 = SumTerm::constant(Rational(2));
  SumTermPtr c3 = SumTerm::constant(Rational(3));
  SumTermPtr v = SumTerm::variable(0);
  SumTermPtr expr = SumTerm::add(SumTerm::mul(c2, v), SumTerm::neg(c3));
  EXPECT_EQ(expr->eval(db, {{0, Rational(5)}}).value_or_die(), Rational(7));
  EXPECT_FALSE(expr->eval(db, {}).is_ok());  // unassigned variable
}

TEST(SumTerm, CompareTerms) {
  Database db;
  SumTermPtr a = SumTerm::constant(Rational(1, 3));
  SumTermPtr b = SumTerm::constant(Rational(1, 2));
  EXPECT_TRUE(compare_terms(db, a, RelOp::kLt, b, {}).value_or_die());
  EXPECT_FALSE(compare_terms(db, a, RelOp::kEq, b, {}).value_or_die());
}

TEST(SqlAggregates, OverFiniteRelation) {
  Database db;
  ASSERT_TRUE(
      db.add_finite("U", 1, {pt({1}), pt({2}), pt({3}), pt({10})}).is_ok());
  VarTable vars;
  auto phi = parse_formula("U(x) & x < 5", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  EXPECT_EQ(agg_count(db, phi, x, {}).value_or_die(), Rational(3));
  EXPECT_EQ(agg_sum(db, phi, x, {}).value_or_die(), Rational(6));
  EXPECT_EQ(agg_avg(db, phi, x, {}).value_or_die(), Rational(2));
  EXPECT_EQ(agg_min(db, phi, x, {}).value_or_die(), Rational(1));
  EXPECT_EQ(agg_max(db, phi, x, {}).value_or_die(), Rational(3));
}

TEST(SqlAggregates, EmptyOutput) {
  Database db;
  ASSERT_TRUE(db.add_finite("U", 1, {pt({1})}).is_ok());
  VarTable vars;
  auto phi = parse_formula("U(x) & x > 5", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  EXPECT_EQ(agg_count(db, phi, x, {}).value_or_die(), Rational(0));
  EXPECT_EQ(agg_sum(db, phi, x, {}).value_or_die(), Rational(0));  // TOTAL
  EXPECT_FALSE(agg_avg(db, phi, x, {}).is_ok());
  EXPECT_FALSE(agg_min(db, phi, x, {}).is_ok());
}

TEST(SqlAggregates, UnsafeQueryRejected) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("0 <= x & x <= 1", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  // Infinite output: aggregation must be refused (safety, Section 5).
  auto r = agg_sum(db, phi, x, {});
  EXPECT_FALSE(r.is_ok());
}

TEST(SqlAggregates, DerivedQueryOverConstraintRelation) {
  Database db;
  VarTable vars;
  // Triangle as an f.r. relation; count its "corner" x-coordinates via a
  // safe query: x is an endpoint-like value where the section degenerates.
  auto tri = parse_formula("0 <= x & 0 <= y & x + y <= 1", &vars)
                 .value_or_die();
  // Remap to slots 0, 1 for the relation definition.
  ASSERT_TRUE(db.add_constraint_relation("T", 2, tri).is_ok());
  // Safe query: the x-values where (x, 0) is in T and x is an integer in
  // {0, 1} -- just exercise membership through quantifiers:
  VarTable v2;
  auto phi = parse_formula("T(x, 0) & (x = 0 | x = 1)", &v2).value_or_die();
  std::size_t x = static_cast<std::size_t>(v2.find("x"));
  EXPECT_EQ(agg_count(db, phi, x, {}).value_or_die(), Rational(2));
  EXPECT_EQ(agg_avg(db, phi, x, {}).value_or_die(), Rational(1, 2));
}

TEST(SumTerm, CardinalityViaSum) {
  // Lemma 4: cardinality of a SAF output expressed as a Sum of 1s.
  Database db;
  ASSERT_TRUE(db.add_finite("U", 1, {pt({2}), pt({4}), pt({8})}).is_ok());
  VarTable vars;
  auto phi = parse_formula("U(w)", &vars).value_or_die();
  std::size_t w = static_cast<std::size_t>(vars.find("w"));
  std::size_t x = vars.size();
  RangeRestrictedExpr rho;
  rho.guard = Formula::make_true();
  rho.range = phi;
  rho.range_var = w;
  rho.w_vars = {w};
  DeterministicFormula one{
      Formula::eq(Polynomial::variable(x),
                  Polynomial::constant(Rational(1))),
      x};
  SumTermPtr card = SumTerm::sum(std::move(rho), std::move(one));
  EXPECT_EQ(card->eval(db, {}).value_or_die(), Rational(3));
}

}  // namespace
}  // namespace cqa
