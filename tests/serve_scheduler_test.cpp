// serve::Scheduler functional coverage: tickets resolve to what run()
// produces, queued duplicates coalesce into one computation, compatible
// Monte-Carlo requests batch without changing their answers, admission
// control sheds honestly, and deadlines are armed at submit time.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cqa/guard/fault.h"
#include "cqa/runtime/session.h"
#include "cqa/serve/scheduler.h"

namespace cqa {
namespace {

constexpr const char* kTriangle = "x >= 0 & y >= 0 & x + y <= 1";
constexpr const char* kDisk = "x^2 + y^2 <= 9/10 & 0 <= x & 0 <= y";
// Quantified FO+LIN whose membership formula requires a QE rewrite (it
// denotes the same triangle), so the fused-MC shared work is nontrivial.
constexpr const char* kQuantifiedTriangle =
    "E u. 0 <= u & u <= 1 & x + y <= u & x >= 0 & y >= 0";

SessionOptions serve_opts() {
  SessionOptions opts;
  opts.threads = 2;
  opts.serve_executors = 2;
  return opts;
}

TEST(ServeScheduler, SubmitResolvesLikeRun) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  Request req = Request::volume(kTriangle).vars({"x", "y"});
  serve::Ticket t = session.submit(req);
  ASSERT_TRUE(t.valid());
  auto a = t.wait();
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(a.value().volume.exact.has_value());
  EXPECT_EQ(*a.value().volume.exact, Rational(1, 2));

  auto direct = session.run(req);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(*direct.value().volume.exact, *a.value().volume.exact);
}

TEST(ServeScheduler, QueuedDuplicatesCoalesceIntoOneComputation) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();

  const int kDup = 8;
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < kDup; ++i) {
    tickets.push_back(
        session.submit(Request::volume(kTriangle).vars({"x", "y"})));
  }
  EXPECT_EQ(sched.queue_depth(), static_cast<std::size_t>(kDup));
  EXPECT_EQ(session.metrics().gauge_value("serve_queue_depth"), kDup);
  sched.resume();

  for (auto& t : tickets) {
    auto a = t.wait();
    ASSERT_TRUE(a.is_ok()) << a.status().to_string();
    EXPECT_EQ(*a.value().volume.exact, Rational(1, 2));
  }
  // One leader ran; the other kDup - 1 rode along.
  EXPECT_EQ(session.metrics().counter_value("volume_calls_total"), 1u);
  EXPECT_EQ(session.metrics().counter_value("serve_coalesced_total"),
            static_cast<std::uint64_t>(kDup - 1));
  EXPECT_EQ(session.metrics().counter_value("serve_submitted_total"),
            static_cast<std::uint64_t>(kDup));
  EXPECT_EQ(sched.queue_depth(), 0u);
  EXPECT_GE(session.metrics().gauge("serve_queue_depth")->peak(), kDup);
}

TEST(ServeScheduler, CallerCancelTokenDisablesCoalescing) {
  // Requests with caller-owned cancel tokens have distinct cancellation
  // identity: they must never share a leader's answer. One executor so
  // the two run back-to-back (no cache-level single-flight either).
  ConstraintDatabase db;
  SessionOptions opts = serve_opts();
  opts.serve_executors = 1;
  Session session(&db, opts);
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  CancelToken t1, t2;
  auto a = session.submit(
      Request::volume(kTriangle).vars({"x", "y"}).cancel(&t1));
  auto b = session.submit(
      Request::volume(kTriangle).vars({"x", "y"}).cancel(&t2));
  sched.resume();
  ASSERT_TRUE(a.wait().is_ok());
  ASSERT_TRUE(b.wait().is_ok());
  EXPECT_EQ(session.metrics().counter_value("serve_coalesced_total"), 0u);
  // Both ran; the second hit the volume cache rather than coalescing.
  EXPECT_EQ(session.metrics().counter_value("volume_calls_total"), 2u);
}

TEST(ServeScheduler, McBatchAnswersAreBitIdenticalToSoloRuns) {
  auto solo = [](std::uint64_t seed) {
    ConstraintDatabase db;
    Session session(&db, SessionOptions{.threads = 2});
    auto a = session.run(Request::volume(kDisk)
                             .vars({"x", "y"})
                             .strategy(VolumeStrategy::kMonteCarlo)
                             .epsilon(0.05)
                             .vc_dim(3.0)
                             .seed(seed));
    return *a.value_or_die().volume.estimate;
  };

  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  const std::vector<std::uint64_t> seeds = {7, 11, 13, 17};
  std::vector<serve::Ticket> tickets;
  for (std::uint64_t s : seeds) {
    tickets.push_back(session.submit(Request::volume(kDisk)
                                         .vars({"x", "y"})
                                         .strategy(VolumeStrategy::kMonteCarlo)
                                         .epsilon(0.05)
                                         .vc_dim(3.0)
                                         .seed(s)));
  }
  sched.resume();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    auto a = tickets[i].wait();
    ASSERT_TRUE(a.is_ok()) << a.status().to_string();
    EXPECT_EQ(*a.value().volume.estimate, solo(seeds[i]))
        << "seed " << seeds[i];
  }
  // The four distinct-seed requests fused into one pool dispatch.
  EXPECT_GE(session.metrics().counter_value("serve_mc_batched_total"),
            static_cast<std::uint64_t>(seeds.size() - 1));
}

TEST(ServeScheduler, McBatchCoalescesExactDuplicatesWithinTheBatch) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  auto mc = [&](std::uint64_t seed) {
    return Request::volume(kDisk)
        .vars({"x", "y"})
        .strategy(VolumeStrategy::kMonteCarlo)
        .epsilon(0.05)
        .vc_dim(3.0)
        .seed(seed)
        .build();
  };
  serve::Ticket a = session.submit(mc(7));
  serve::Ticket b = session.submit(mc(9));
  serve::Ticket dup = session.submit(mc(9));  // duplicate of b
  sched.resume();
  auto ra = a.wait();
  auto rb = b.wait();
  auto rdup = dup.wait();
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());
  ASSERT_TRUE(rdup.is_ok());
  EXPECT_NE(*ra.value().volume.estimate, *rb.value().volume.estimate);
  EXPECT_EQ(*rb.value().volume.estimate, *rdup.value().volume.estimate);
  EXPECT_EQ(session.metrics().counter_value("serve_coalesced_total"), 1u);
}

TEST(ServeScheduler, OverCapacityShedsVolumeToTrivialHalf) {
  ConstraintDatabase db;
  SessionOptions opts = serve_opts();
  opts.serve_queue_capacity = 2;
  Session session(&db, opts);
  serve::Scheduler& sched = session.scheduler();
  sched.pause();

  std::vector<serve::Ticket> queued;
  queued.push_back(
      session.submit(Request::volume(kTriangle).vars({"x", "y"})));
  queued.push_back(
      session.submit(Request::volume("x >= 0 & x <= 1 & y >= 0 & y <= 2")
                         .vars({"x", "y"})));

  // Queue full: a volume request is shed to the last rung, resolved
  // immediately with honest [0, 1] bars and the shed marker.
  serve::Ticket shed_vol =
      session.submit(Request::volume(kDisk).vars({"x", "y"}));
  auto sv = shed_vol.try_get();
  ASSERT_TRUE(sv.has_value());
  ASSERT_TRUE(sv->is_ok());
  EXPECT_EQ(sv->value().status, AnswerStatus::kDegraded);
  EXPECT_EQ(*sv->value().volume.estimate, 0.5);
  EXPECT_EQ(*sv->value().volume.lower, 0.0);
  EXPECT_EQ(*sv->value().volume.upper, 1.0);
  EXPECT_TRUE(sv->value().guard.shed);
  EXPECT_EQ(sv->value().guard.rung, guard::Rung::kTrivialHalf);

  // A kind the degradation ladder cannot serve gets the typed error.
  serve::Ticket shed_ask =
      session.submit(Request::ask("E x. x >= 0 & x <= 1"));
  auto sa = shed_ask.try_get();
  ASSERT_TRUE(sa.has_value());
  ASSERT_FALSE(sa->is_ok());
  EXPECT_EQ(sa->status().code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(session.metrics().counter_value("serve_shed_total"), 2u);
  sched.resume();
  for (auto& t : queued) {
    EXPECT_TRUE(t.wait().is_ok());
  }
}

TEST(ServeScheduler, DeadlineIsArmedAtSubmitSoQueueWaitCounts) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  serve::Ticket t =
      session.submit(Request::volume(kDisk)
                         .vars({"x", "y"})
                         .strategy(VolumeStrategy::kMonteCarlo)
                         .epsilon(0.01)
                         .deadline_ms(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sched.resume();
  auto a = t.wait();
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  // The budget was spent in the queue: the answer must be degraded
  // (partial or trivial half), never presented at full fidelity.
  EXPECT_EQ(a.value().status, AnswerStatus::kDegraded);
  EXPECT_TRUE(a.value().volume.degraded);
}

TEST(ServeScheduler, CancelBeforeExecutionResolvesCancelled) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  serve::Ticket t =
      session.submit(Request::volume(kTriangle).vars({"x", "y"}));
  t.cancel();
  sched.resume();
  auto a = t.wait();
  ASSERT_FALSE(a.is_ok());
  EXPECT_EQ(a.status().code(), StatusCode::kCancelled);
  // The cancelled request never reached an engine.
  EXPECT_EQ(session.metrics().counter_value("volume_calls_total"), 0u);
}

TEST(ServeScheduler, DestructionResolvesQueuedTickets) {
  std::vector<serve::Ticket> tickets;
  {
    ConstraintDatabase db;
    Session session(&db, serve_opts());
    session.scheduler().pause();
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(
          session.submit(Request::volume(kTriangle).vars({"x", "y"})));
    }
    // Session (and its scheduler) destroyed with work still queued.
  }
  for (auto& t : tickets) {
    auto a = t.wait();  // must not hang
    ASSERT_FALSE(a.is_ok());
    EXPECT_EQ(a.status().code(), StatusCode::kCancelled);
  }
}

TEST(ServeScheduler, AllPriorityLanesDrain) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  std::vector<serve::Ticket> tickets;
  const Priority prios[] = {Priority::kBatch, Priority::kInteractive,
                            Priority::kNormal, Priority::kBatch,
                            Priority::kInteractive};
  int i = 0;
  for (Priority p : prios) {
    // Distinct queries so nothing coalesces.
    tickets.push_back(session.submit(
        Request::volume("x >= 0 & x <= 1 & y >= 0 & y <= " +
                        std::to_string(i + 1))
            .vars({"x", "y"})
            .priority(p)));
    ++i;
  }
  sched.resume();
  for (std::size_t k = 0; k < tickets.size(); ++k) {
    auto a = tickets[k].wait();
    ASSERT_TRUE(a.is_ok()) << a.status().to_string();
    EXPECT_EQ(*a.value().volume.exact, Rational(static_cast<int>(k + 1)));
  }
  EXPECT_EQ(sched.queue_depth(), 0u);
}

TEST(ServeScheduler, FingerprintFieldInjectionDoesNotCoalesce) {
  // output_vars {"x,y"} and {"x", "y"} encode differently now that
  // fields are length-prefixed: the malformed request must keep its own
  // kInvalidArgument instead of receiving the other request's volume.
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  auto mc = [&](std::vector<std::string> vars) {
    return Request::volume(kDisk)
        .vars(std::move(vars))
        .strategy(VolumeStrategy::kMonteCarlo)
        .epsilon(0.05)
        .vc_dim(3.0)
        .build();
  };
  serve::Ticket bad = session.submit(mc({"x,y"}));
  serve::Ticket good = session.submit(mc({"x", "y"}));
  sched.resume();

  auto rb = bad.wait();
  ASSERT_FALSE(rb.is_ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kInvalidArgument);
  auto rg = good.wait();
  ASSERT_TRUE(rg.is_ok()) << rg.status().to_string();
  EXPECT_TRUE(rg.value().volume.estimate.has_value());
}

TEST(ServeScheduler, ExpiredBatchMemberDoesNotDegradeTheOthers) {
  // Two fused MC members with different budgets: the head's deadline
  // expiring during the shared membership rewrite degrades the head
  // only; the other member must still match its solo run bit for bit.
  auto mc = [](std::uint64_t seed) {
    return Request::volume(kQuantifiedTriangle)
        .vars({"x", "y"})
        .strategy(VolumeStrategy::kMonteCarlo)
        .epsilon(0.05)
        .vc_dim(3.0)
        .seed(seed)
        .build();
  };
  double solo = 0.0;
  {
    ConstraintDatabase db;
    Session session(&db, SessionOptions{.threads = 2});
    solo = *session.run(mc(11)).value_or_die().volume.estimate;
  }

  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  Request doomed_req = mc(7);
  doomed_req.budget.deadline_ms = 1;
  serve::Ticket doomed = session.submit(std::move(doomed_req));
  serve::Ticket healthy = session.submit(mc(11));
  // Let the head's (submit-armed) deadline expire while both sit queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sched.resume();

  auto rd = doomed.wait();
  ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();
  EXPECT_TRUE(rd.value().degraded());
  auto rh = healthy.wait();
  ASSERT_TRUE(rh.is_ok()) << rh.status().to_string();
  EXPECT_EQ(rh.value().status, AnswerStatus::kOk);
  ASSERT_TRUE(rh.value().volume.estimate.has_value());
  EXPECT_EQ(*rh.value().volume.estimate, solo);
}

TEST(ServeScheduler, BatchedMemberQuotaIsEnforcedAndReported) {
  // A quota that would trip this request solo must trip it when fused
  // into a batch too, and its guard report must say so -- without
  // dragging the roomy member down with it.
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  auto mc = [](std::uint64_t seed) {
    return Request::volume(kQuantifiedTriangle)
        .vars({"x", "y"})
        .strategy(VolumeStrategy::kMonteCarlo)
        .epsilon(0.05)
        .vc_dim(3.0)
        .seed(seed)
        .build();
  };
  guard::ResourceQuota tight = guard::ResourceQuota::unlimited();
  tight.max_qe_atoms = 1;  // any elimination trips
  Request capped_req = mc(3);
  capped_req.budget.quota = tight;
  serve::Ticket capped = session.submit(std::move(capped_req));
  serve::Ticket roomy = session.submit(mc(5));
  sched.resume();

  auto rc = capped.wait();
  ASSERT_TRUE(rc.is_ok()) << rc.status().to_string();
  EXPECT_TRUE(rc.value().degraded());
  EXPECT_TRUE(rc.value().guard.quota_tripped);
  EXPECT_EQ(rc.value().guard.tripped_quota, "qe_atoms");
  EXPECT_EQ(rc.value().guard.rung, guard::Rung::kTrivialHalf);
  auto rr = roomy.wait();
  ASSERT_TRUE(rr.is_ok()) << rr.status().to_string();
  EXPECT_EQ(rr.value().status, AnswerStatus::kOk);
  EXPECT_TRUE(rr.value().volume.estimate.has_value());
}

TEST(ServeScheduler, BatchSurvivesInjectedAllocationFailure) {
  // FaultSite::kBigIntAlloc firing inside the batch's shared membership
  // work must not escape the executor thread (std::terminate); every
  // member degrades to the honest last rung instead.
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();
  auto mc = [](std::uint64_t seed) {
    return Request::volume(kQuantifiedTriangle)
        .vars({"x", "y"})
        .strategy(VolumeStrategy::kMonteCarlo)
        .epsilon(0.05)
        .vc_dim(3.0)
        .seed(seed)
        .build();
  };
  serve::Ticket a = session.submit(mc(7));
  serve::Ticket b = session.submit(mc(9));

  guard::FaultPlan plan;
  plan.seed = 99;
  plan.rate[static_cast<std::size_t>(guard::FaultSite::kBigIntAlloc)] = 1.0;
  guard::FaultInjector injector(plan);
  {
    guard::ScopedFaultInjector scoped(&injector);
    sched.resume();
    for (serve::Ticket* t : {&a, &b}) {
      auto r = t->wait();
      ASSERT_TRUE(r.is_ok()) << r.status().to_string();
      EXPECT_TRUE(r.value().degraded());
      EXPECT_EQ(r.value().guard.rung, guard::Rung::kTrivialHalf);
      ASSERT_TRUE(r.value().volume.estimate.has_value());
      EXPECT_EQ(*r.value().volume.estimate, 0.5);
      EXPECT_EQ(r.value().volume.lower, 0.0);
      EXPECT_EQ(r.value().volume.upper, 1.0);
    }
  }
}

TEST(ServeScheduler, NonVolumeKindsFlowThroughSubmit) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_region("Box", {"s", "t"},
                            "0 <= s & s <= 1 & 0 <= t & t <= 1")
                  .is_ok());
  Session session(&db, serve_opts());
  serve::Ticket ask =
      session.submit(Request::ask("E x. E y. Box(x, y) & x + y <= 1"));
  serve::Ticket rw = session.submit(Request::rewrite("E u. Box(x, u)"));
  auto a = ask.wait();
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  EXPECT_TRUE(*a.value().truth);
  auto r = rw.wait();
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_TRUE(r.value().formula->is_quantifier_free());
}

}  // namespace
}  // namespace cqa
