#include <gtest/gtest.h>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"
#include "cqa/geometry/polytope_volume.h"

namespace cqa {
namespace {

ConstraintDatabase make_gis_db() {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Parcel", {"x", "y"},
                          "0 <= x & x <= 2 & 0 <= y & y <= 1")
                .is_ok());
  CQA_CHECK(db.add_region("Lake", {"x", "y"},
                          "1 <= x & x <= 3 & 0 <= y & y <= 1/2")
                .is_ok());
  CQA_CHECK(db.add_table("Reading",
                         std::vector<std::vector<std::int64_t>>{
                             {1, 10}, {2, 20}, {3, 30}})
                .is_ok());
  return db;
}

TEST(ConstraintDatabase, RegionsAndTables) {
  ConstraintDatabase db = make_gis_db();
  EXPECT_TRUE(db.contains("Parcel", {Rational(1), Rational(1, 2)}));
  EXPECT_FALSE(db.contains("Parcel", {Rational(3), Rational(0)}));
  EXPECT_TRUE(db.contains("Reading", {Rational(2), Rational(20)}));
  // Region with a stray variable is rejected.
  ConstraintDatabase bad;
  EXPECT_FALSE(bad.add_region("R", {"x"}, "x < y").is_ok());
}

TEST(ConstraintDatabase, HoldsWithNamedBindings) {
  ConstraintDatabase db = make_gis_db();
  auto f = db.parse("Parcel(px, py) & Lake(px, py)").value_or_die();
  EXPECT_TRUE(db.holds(f, {{"px", Rational(3, 2)}, {"py", Rational(1, 4)}})
                  .value_or_die());
  EXPECT_FALSE(db.holds(f, {{"px", Rational(1, 2)}, {"py", Rational(1, 4)}})
                   .value_or_die());
}

TEST(QueryEngine, CellsAndClosure) {
  ConstraintDatabase db = make_gis_db();
  QueryEngine q(&db);
  // Wet parcel area: intersection of the two regions.
  auto cells = q.cells("Parcel(x, y) & Lake(x, y)", {"x", "y"})
                   .value_or_die();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(polytope_volume(Polyhedron(cells[0])).value_or_die(),
            Rational(1, 2));
}

TEST(QueryEngine, QuantifiedQuery) {
  ConstraintDatabase db = make_gis_db();
  QueryEngine q(&db);
  // x-coordinates over which the parcel has some lake coverage.
  auto cells = q.cells("E y. Parcel(x, y) & Lake(x, y)", {"x"})
                   .value_or_die();
  ASSERT_GE(cells.size(), 1u);
  AxisInterval iv = cells[0].project_to_axis(0);
  EXPECT_EQ(*iv.lo, Rational(1));
  EXPECT_EQ(*iv.hi, Rational(2));
}

TEST(QueryEngine, Ask) {
  ConstraintDatabase db = make_gis_db();
  QueryEngine q(&db);
  EXPECT_TRUE(q.ask("E x. E y. Parcel(x, y) & Lake(x, y)").value_or_die());
  EXPECT_FALSE(
      q.ask("E x. E y. Parcel(x, y) & x > 5").value_or_die());
  EXPECT_FALSE(q.ask("Parcel(x, 0)").is_ok());  // free variable
}

TEST(QueryEngine, RewriteIsQuantifierFree) {
  ConstraintDatabase db = make_gis_db();
  QueryEngine q(&db);
  auto f = q.rewrite("E y. Parcel(x, y)").value_or_die();
  EXPECT_TRUE(f->is_quantifier_free());
  EXPECT_FALSE(f->has_predicates());
}

TEST(VolumeEngine, ExactStrategiesAgree) {
  ConstraintDatabase db = make_gis_db();
  VolumeEngine v(&db);
  const std::string q = "Parcel(x, y) | Lake(x, y)";
  // 2 + 1 - 0.5 = 2.5.
  VolumeOptions sweep;
  sweep.strategy = VolumeStrategy::kExactSweep;
  VolumeOptions incl;
  incl.strategy = VolumeStrategy::kInclusionExclusion;
  auto a = v.volume(q, {"x", "y"}).value_or_die();
  auto b = v.volume(q, {"x", "y"}, sweep).value_or_die();
  auto c = v.volume(q, {"x", "y"}, incl).value_or_die();
  EXPECT_EQ(*a.exact, Rational(5, 2));
  EXPECT_EQ(*b.exact, Rational(5, 2));
  EXPECT_EQ(*c.exact, Rational(5, 2));
}

TEST(VolumeEngine, MonteCarloWithinEpsilon) {
  ConstraintDatabase db;
  VolumeEngine v(&db);
  VolumeOptions mc;
  mc.strategy = VolumeStrategy::kMonteCarlo;
  mc.epsilon = 0.04;
  mc.vc_dim = 3.0;
  auto a = v.volume("x^2 + y^2 <= 1", {"x", "y"}, mc).value_or_die();
  EXPECT_NEAR(*a.estimate, 0.7853, 0.04);
  EXPECT_LT(*a.lower, *a.estimate);
  EXPECT_GT(*a.upper, *a.estimate);
}

TEST(VolumeEngine, EllipsoidBoundsSandwich) {
  ConstraintDatabase db = make_gis_db();
  VolumeEngine v(&db);
  VolumeOptions el;
  el.strategy = VolumeStrategy::kEllipsoidBounds;
  auto a = v.volume("Parcel(x, y)", {"x", "y"}, el).value_or_die();
  EXPECT_LE(*a.lower, 2.001);
  EXPECT_GE(*a.upper, 1.999);
}

TEST(VolumeEngine, TrivialHalf) {
  ConstraintDatabase db = make_gis_db();
  VolumeEngine v(&db);
  VolumeOptions t;
  t.strategy = VolumeStrategy::kTrivialHalf;
  // Parcel fills the whole unit box, so the operator detects volume 1.
  auto full = v.volume("Parcel(x, y)", {"x", "y"}, t).value_or_die();
  EXPECT_EQ(*full.estimate, 1.0);
  // A set with fractional VOL_I gets the 1/2 answer.
  auto frac =
      v.volume("Parcel(x, y) & x <= 1/3", {"x", "y"}, t).value_or_die();
  EXPECT_EQ(*frac.estimate, 0.5);
  // Measure-zero intersection with the unit box gets 0.
  auto zero = v.volume("Lake(x, y) & Parcel(x, y)", {"x", "y"}, t)
                  .value_or_die();
  EXPECT_EQ(*zero.estimate, 0.0);
}

TEST(VolumeEngine, ClipToUnitBox) {
  ConstraintDatabase db = make_gis_db();
  VolumeEngine v(&db);
  VolumeOptions opt;
  opt.clip_to_unit_box = true;
  auto a = v.volume("Parcel(x, y)", {"x", "y"}, opt).value_or_die();
  EXPECT_EQ(*a.exact, Rational(1));
}

TEST(VolumeEngine, MuAndGrowth) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Cone", {"x", "y"}, "0 <= y & y <= x").is_ok());
  CQA_CHECK(db.add_region("Box", {"x", "y"},
                          "0 <= x & x <= 1 & 0 <= y & y <= 1")
                .is_ok());
  VolumeEngine v(&db);
  EXPECT_EQ(v.mu("Cone(x, y)", {"x", "y"}).value_or_die(), Rational(1, 8));
  EXPECT_EQ(v.mu("Box(x, y)", {"x", "y"}).value_or_die(), Rational(0));
  UPoly g = v.growth_polynomial("Cone(x, y)", {"x", "y"}).value_or_die();
  EXPECT_EQ(g.degree(), 2);
  EXPECT_EQ(g.coeff(2), Rational(1, 2));
  // mu distributes through queries: the union of the cone with a bounded
  // set has the same mu.
  EXPECT_EQ(v.mu("Cone(x, y) | Box(x, y)", {"x", "y"}).value_or_die(),
            Rational(1, 8));
}

TEST(AggregationEngine, SqlOverTable) {
  ConstraintDatabase db = make_gis_db();
  AggregationEngine agg(&db);
  // Values v with Reading(k, v) for some k <= 2.
  const std::string q = "E k. Reading(k, v) & k <= 2";
  EXPECT_EQ(agg.aggregate(AggregateFn::kCount, q, "v").value_or_die(),
            Rational(2));
  EXPECT_EQ(agg.aggregate(AggregateFn::kSum, q, "v").value_or_die(),
            Rational(30));
  EXPECT_EQ(agg.aggregate(AggregateFn::kAvg, q, "v").value_or_die(),
            Rational(15));
  EXPECT_EQ(agg.aggregate(AggregateFn::kMax, q, "v").value_or_die(),
            Rational(20));
  auto vals = agg.output(q, "v").value_or_die();
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], Rational(10));
}

TEST(AggregationEngine, UnsafeRejected) {
  ConstraintDatabase db = make_gis_db();
  AggregationEngine agg(&db);
  // Infinite output: all x inside the parcel at y=0.
  EXPECT_FALSE(
      agg.aggregate(AggregateFn::kSum, "Parcel(w, 0)", "w").is_ok());
}

TEST(AggregationEngine, PolygonAreaBothWays) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Plot", {"x", "y"},
                          "0 <= x & 0 <= y & x + y <= 2")
                .is_ok());
  AggregationEngine agg(&db);
  EXPECT_EQ(agg.polygon_area_geometric("Plot").value_or_die(), Rational(2));
  EXPECT_EQ(agg.polygon_area_in_language("Plot").value_or_die(),
            Rational(2));
}

}  // namespace
}  // namespace cqa
