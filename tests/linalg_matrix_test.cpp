#include "cqa/linalg/matrix.h"

#include <random>

#include <gtest/gtest.h>

namespace cqa {
namespace {

Matrix mat2(std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t d) {
  return Matrix::from_rows({{Rational(a), Rational(b)},
                            {Rational(c), Rational(d)}});
}

TEST(VecOps, Basics) {
  RVec a{Rational(1), Rational(2)};
  RVec b{Rational(3), Rational(-1)};
  EXPECT_EQ(dot(a, b), Rational(1));
  EXPECT_EQ(vec_add(a, b), (RVec{Rational(4), Rational(1)}));
  EXPECT_EQ(vec_sub(a, b), (RVec{Rational(-2), Rational(3)}));
  EXPECT_EQ(vec_scale(Rational(2), a), (RVec{Rational(2), Rational(4)}));
  EXPECT_FALSE(vec_is_zero(a));
  EXPECT_TRUE(vec_is_zero(RVec{Rational(), Rational()}));
}

TEST(Matrix, Determinant) {
  EXPECT_EQ(mat2(1, 2, 3, 4).determinant(), Rational(-2));
  EXPECT_EQ(mat2(1, 2, 2, 4).determinant(), Rational(0));
  EXPECT_EQ(Matrix::identity(5).determinant(), Rational(1));
  Matrix m = Matrix::from_rows({
      {Rational(2), Rational(0), Rational(1)},
      {Rational(1), Rational(1), Rational(0)},
      {Rational(0), Rational(3), Rational(1)},
  });
  EXPECT_EQ(m.determinant(), Rational(5));
}

TEST(Matrix, Rank) {
  EXPECT_EQ(mat2(1, 2, 2, 4).rank(), 1u);
  EXPECT_EQ(mat2(1, 2, 3, 4).rank(), 2u);
  EXPECT_EQ(Matrix(3, 3).rank(), 0u);
  Matrix wide = Matrix::from_rows({
      {Rational(1), Rational(0), Rational(1)},
      {Rational(0), Rational(1), Rational(1)},
  });
  EXPECT_EQ(wide.rank(), 2u);
}

TEST(Matrix, Inverse) {
  Matrix m = mat2(1, 2, 3, 4);
  Matrix inv = m.inverse().value_or_die();
  Matrix prod = m * inv;
  EXPECT_EQ(prod.at(0, 0), Rational(1));
  EXPECT_EQ(prod.at(0, 1), Rational(0));
  EXPECT_EQ(prod.at(1, 0), Rational(0));
  EXPECT_EQ(prod.at(1, 1), Rational(1));
  EXPECT_FALSE(mat2(1, 2, 2, 4).inverse().is_ok());
  EXPECT_FALSE(Matrix(2, 3).inverse().is_ok());
}

TEST(Matrix, SolveSquare) {
  Matrix a = mat2(2, 1, 1, 3);
  RVec b{Rational(5), Rational(10)};
  RVec x = *solve_square(a, b);
  EXPECT_EQ(a.apply(x), b);
  EXPECT_EQ(x[0], Rational(1));
  EXPECT_EQ(x[1], Rational(3));
}

TEST(Matrix, SolveSingularConsistent) {
  Matrix a = mat2(1, 2, 2, 4);
  RVec b{Rational(3), Rational(6)};
  auto x = solve_any(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.apply(*x), b);
}

TEST(Matrix, SolveInconsistent) {
  Matrix a = mat2(1, 2, 2, 4);
  RVec b{Rational(3), Rational(7)};
  EXPECT_FALSE(solve_any(a, b).has_value());
}

TEST(Matrix, SolveRectangular) {
  // Overdetermined but consistent.
  Matrix a = Matrix::from_rows({
      {Rational(1), Rational(0)},
      {Rational(0), Rational(1)},
      {Rational(1), Rational(1)},
  });
  RVec b{Rational(2), Rational(3), Rational(5)};
  auto x = solve_any(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.apply(*x), b);
  // Overdetermined inconsistent.
  RVec bad{Rational(2), Rational(3), Rational(6)};
  EXPECT_FALSE(solve_any(a, bad).has_value());
}

TEST(Matrix, Nullspace) {
  Matrix a = mat2(1, 2, 2, 4);
  auto ns = a.nullspace();
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_TRUE(vec_is_zero(a.apply(ns[0])));
  EXPECT_FALSE(vec_is_zero(ns[0]));
  EXPECT_TRUE(Matrix::identity(3).nullspace().empty());
}

TEST(Matrix, TransposeMultiply) {
  Matrix a = Matrix::from_rows({{Rational(1), Rational(2), Rational(3)}});
  Matrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 1u);
  Matrix gram = a * at;  // 1x1 = 14
  EXPECT_EQ(gram.at(0, 0), Rational(14));
}

TEST(Matrix, AffineHullDim) {
  RVec p0{Rational(0), Rational(0)};
  RVec p1{Rational(1), Rational(0)};
  RVec p2{Rational(0), Rational(1)};
  RVec p3{Rational(1), Rational(1)};
  EXPECT_EQ(affine_hull_dim({}), -1);
  EXPECT_EQ(affine_hull_dim({p0}), 0);
  EXPECT_EQ(affine_hull_dim({p0, p1}), 1);
  EXPECT_EQ(affine_hull_dim({p0, p1, vec_scale(Rational(3), p1)}), 1);
  EXPECT_EQ(affine_hull_dim({p0, p1, p2}), 2);
  EXPECT_EQ(affine_hull_dim({p0, p1, p2, p3}), 2);
}

TEST(Matrix, InverseRandomizedRoundTrip) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 2 + rng() % 4;
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m.at(r, c) = Rational(static_cast<std::int64_t>(rng() % 21) - 10);
      }
    }
    if (m.determinant().is_zero()) continue;
    Matrix inv = m.inverse().value_or_die();
    Matrix prod = m * inv;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_EQ(prod.at(r, c), r == c ? Rational(1) : Rational(0));
      }
    }
    // det(M^-1) == 1/det(M)
    EXPECT_EQ(inv.determinant(), m.determinant().inverse());
  }
}

}  // namespace
}  // namespace cqa
