#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/metrics.h"
#include "cqa/runtime/session.h"

namespace cqa {
namespace {

TEST(ShardedLru, EvictsLeastRecentlyUsed) {
  ShardedLru<int> lru(3, 1, nullptr, nullptr, nullptr);
  lru.store("a", 1);
  lru.store("b", 2);
  lru.store("c", 3);
  ASSERT_TRUE(lru.lookup("a").has_value());  // touch: b is now LRU
  lru.store("d", 4);                         // evicts b
  EXPECT_FALSE(lru.lookup("b").has_value());
  EXPECT_EQ(lru.lookup("a").value(), 1);
  EXPECT_EQ(lru.lookup("c").value(), 3);
  EXPECT_EQ(lru.lookup("d").value(), 4);
  EXPECT_EQ(lru.stats().evictions, 1u);
}

TEST(ShardedLru, StoreOverwritesAndTouches) {
  ShardedLru<int> lru(2, 1, nullptr, nullptr, nullptr);
  lru.store("a", 1);
  lru.store("b", 2);
  lru.store("a", 10);  // overwrite, now MRU
  lru.store("c", 3);   // evicts b
  EXPECT_EQ(lru.lookup("a").value(), 10);
  EXPECT_FALSE(lru.lookup("b").has_value());
}

TEST(ShardedLru, ShardingBoundsTotalFootprint) {
  ShardedLru<int> lru(64, 8, nullptr, nullptr, nullptr);
  EXPECT_EQ(lru.shard_count(), 8u);
  EXPECT_EQ(lru.per_shard_capacity(), 8u);
  for (int i = 0; i < 1000; ++i) {
    lru.store("key" + std::to_string(i), i);
  }
  const CacheStats s = lru.stats();
  EXPECT_LE(s.entries, 64u);
  EXPECT_GE(s.evictions, 1000u - 64u);
}

TEST(EvalCache, CountsIntoMetricsRegistry) {
  MetricsRegistry metrics;
  EvalCache cache(EvalCacheOptions{4, 4, 1}, &metrics);
  EXPECT_FALSE(cache.lookup_volume("k").has_value());
  cache.store_volume("k", Rational(1, 3));
  EXPECT_EQ(cache.lookup_volume("k").value(), Rational(1, 3));
  EXPECT_EQ(metrics.counter_value("cache_hits_total"), 1u);
  EXPECT_EQ(metrics.counter_value("cache_misses_total"), 1u);
  // LRU bound produces evictions, visible in the registry.
  for (int i = 0; i < 16; ++i) {
    cache.store_volume("v" + std::to_string(i), Rational(i));
  }
  EXPECT_GE(metrics.counter_value("cache_evictions_total"), 1u);
}

TEST(FlightTable, FollowerWakesOnItsOwnTokenExpiry) {
  // A follower blocked behind a slow leader must not wait past its own
  // cancellation: Ticket::cancel never signals the flight cv, so the
  // periodic wait has to notice the tripped token and return kExpired.
  FlightTable flights;
  // Take the flight from another thread and never land it, simulating a
  // leader stuck mid-computation.
  std::thread leader([&] { flights.join("k", nullptr, nullptr); });
  leader.join();
  ASSERT_EQ(flights.in_flight(), 1u);

  CancelToken token;
  token.cancel();
  EXPECT_EQ(flights.join("k", nullptr, &token),
            FlightTable::JoinResult::kExpired);
  // Without a token the same joiner would still be a plain follower --
  // the flight is intact, not stolen.
  EXPECT_EQ(flights.in_flight(), 1u);
}

TEST(QueryEngine, CanonicalKeyIgnoresSpelling) {
  ConstraintDatabase db;
  QueryEngine engine(&db);
  auto a = engine.canonical_key("0 <= x & x <= 1");
  auto b = engine.canonical_key("(0<=x)   &   (x<=1)");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
  auto c = engine.canonical_key("0 <= x & x <= 2");
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(a.value(), c.value());
}

TEST(Session, RepeatedRewriteHitsCache) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_region("Parcel", {"x", "y"},
                            "0 <= x & x <= 2 & 0 <= y & y <= 1")
                  .is_ok());
  Session session(&db, SessionOptions{.threads = 1});
  const std::string query = "E y. Parcel(x, y)";
  auto first = session.run(Request::rewrite(query));
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(session.cache().rewrite_stats().hits, 0u);
  // Different spelling, same parse tree: still a hit.
  auto second = session.run(Request::rewrite("E y.   Parcel(x,y)"));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(session.cache().rewrite_stats().hits, 1u);
  EXPECT_EQ(session.metrics().counter_value("cache_hits_total"), 1u);
  EXPECT_EQ(session.metrics().counter_value("qe_rewrites_total"), 2u);
  // The cached formula is the same object, not a recomputation.
  EXPECT_EQ(first.value().formula.get(), second.value().formula.get());
}

TEST(Session, RepeatedExactVolumeHitsCache) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_region("Parcel", {"x", "y"},
                            "0 <= x & x <= 2 & 0 <= y & y <= 1")
                  .is_ok());
  Session session(&db, SessionOptions{.threads = 1});
  auto first = session.run(Request::volume("Parcel(x, y)").vars({"x", "y"}));
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(first.value().volume.exact.has_value());
  EXPECT_EQ(*first.value().volume.exact, Rational(2));
  EXPECT_EQ(session.cache().volume_stats().hits, 0u);
  auto second = session.run(Request::volume("Parcel(x,y)").vars({"x", "y"}));
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(second.value().volume.exact.has_value());
  EXPECT_EQ(*second.value().volume.exact, Rational(2));
  EXPECT_EQ(session.cache().volume_stats().hits, 1u);
}

TEST(Session, VolumeCacheKeySeparatesOutputVarsAndStrategy) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_region("Box", {"x", "y"},
                            "0 <= x & x <= 1 & 0 <= y & y <= 3")
                  .is_ok());
  Session session(&db, SessionOptions{.threads = 1});
  auto xy = session.run(Request::volume("Box(x, y)").vars({"x", "y"}));
  ASSERT_TRUE(xy.is_ok());
  EXPECT_EQ(*xy.value().volume.exact, Rational(3));
  // Same query text, different strategy: distinct entry, not a wrong hit.
  auto swept = session.run(Request::volume("Box(x, y)")
                               .vars({"x", "y"})
                               .strategy(VolumeStrategy::kExactSweep));
  ASSERT_TRUE(swept.is_ok());
  EXPECT_EQ(*swept.value().volume.exact, Rational(3));
  EXPECT_EQ(session.cache().volume_stats().hits, 0u);
  EXPECT_EQ(session.cache().volume_stats().entries, 2u);
}

TEST(Session, MetricsDumpContainsCounters) {
  ConstraintDatabase db;
  ASSERT_TRUE(db.add_region("Box", {"x"}, "0 <= x & x <= 1").is_ok());
  Session session(&db, SessionOptions{.threads = 1});
  ASSERT_TRUE(session.run(Request::volume("Box(x)").vars({"x"})).is_ok());
  const std::string dump = session.metrics_dump();
  EXPECT_NE(dump.find("volume_calls_total 1"), std::string::npos);
  EXPECT_NE(dump.find("qe_rewrites_total"), std::string::npos);
  EXPECT_NE(dump.find("volume_call_ns_count 1"), std::string::npos);
}

}  // namespace
}  // namespace cqa
