#include "cqa/approx/circuit.h"

#include <gtest/gtest.h>

namespace cqa {
namespace {

TEST(Circuit, EvalDeterministic) {
  Ac0Circuit c(4, 2, 3, 2);
  Xoshiro rng(5);
  c.randomize(&rng);
  std::vector<bool> input = {true, false, true, false};
  bool v1 = c.eval(input);
  bool v2 = c.eval(input);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.size(), 4u);  // 3 + top gate
}

TEST(Circuit, MutatePreservesShape) {
  Ac0Circuit c(6, 3, 4, 3);
  Xoshiro rng(9);
  c.randomize(&rng);
  for (int i = 0; i < 100; ++i) c.mutate(&rng);
  EXPECT_EQ(c.depth(), 3u);
  std::vector<bool> input(6, true);
  c.eval(input);  // must not crash
}

TEST(Circuit, AccuracyInRange) {
  Ac0Circuit c(8, 2, 4, 3);
  Xoshiro rng(11);
  c.randomize(&rng);
  double acc = separation_accuracy(c, 0.25, 0.75, 400, &rng);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Circuit, SmallWidthSeparationIsEasy) {
  // With very wide margins and tiny n, local search finds a decent
  // separator (e.g. an OR works when the reject class is all-zeros).
  Ac0Circuit best = optimize_separator(4, 2, 4, 4, 0.01, 0.99, 300, 31);
  Xoshiro rng(17);
  double acc = separation_accuracy(best, 0.01, 0.99, 500, &rng);
  EXPECT_GT(acc, 0.9);
}

TEST(Circuit, AccuracyDegradesWithWidth) {
  // The Lemma-3 behaviour: fixed-size constant-depth circuits separate
  // narrow popcount bands worse as n grows.
  Xoshiro rng(23);
  Ac0Circuit small_best = optimize_separator(8, 2, 6, 3, 0.4, 0.6, 400, 7);
  Ac0Circuit large_best = optimize_separator(64, 2, 6, 3, 0.4, 0.6, 400, 7);
  double small_acc = separation_accuracy(small_best, 0.4, 0.6, 2000, &rng);
  double large_acc = separation_accuracy(large_best, 0.4, 0.6, 2000, &rng);
  // Not a theorem at these sizes, but the trend must hold with margin.
  EXPECT_GT(small_acc, large_acc - 0.15);
  EXPECT_LT(large_acc, 0.95);
}

}  // namespace
}  // namespace cqa
