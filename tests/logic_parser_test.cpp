#include "cqa/logic/parser.h"

#include <gtest/gtest.h>

#include "cqa/logic/eval.h"
#include "cqa/logic/printer.h"

namespace cqa {
namespace {

TEST(Parser, SimpleAtom) {
  VarTable vars;
  auto f = parse_formula("x < 1", &vars);
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->kind(), Formula::Kind::kAtom);
  EXPECT_EQ(f.value()->op(), RelOp::kLt);
  EXPECT_EQ(vars.find("x"), 0);
}

TEST(Parser, AllOperators) {
  for (const char* s : {"x < 1", "x <= 1", "x = 1", "x != 1", "x > 1",
                        "x >= 1"}) {
    auto f = parse_formula(s);
    ASSERT_TRUE(f.is_ok()) << s;
    EXPECT_EQ(f.value()->kind(), Formula::Kind::kAtom) << s;
  }
}

TEST(Parser, PolynomialArithmetic) {
  VarTable vars;
  auto p = parse_polynomial("2*x^2 - 3*x*y + 1/2", &vars);
  ASSERT_TRUE(p.is_ok());
  Polynomial x = Polynomial::variable(vars.index_of("x"));
  Polynomial y = Polynomial::variable(vars.index_of("y"));
  Polynomial expect = x.pow(2) * Rational(2) - x * y * Rational(3) +
                      Polynomial::constant(Rational(1, 2));
  EXPECT_EQ(p.value(), expect);
}

TEST(Parser, DecimalAndRationalLiterals) {
  VarTable vars;
  auto p = parse_polynomial("0.25 + 3/4", &vars);
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value(), Polynomial::constant(Rational(1)));
}

TEST(Parser, Precedence) {
  // a | b & c parses as a | (b & c).
  auto f = parse_formula("x < 0 | x > 1 & x < 2");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->kind(), Formula::Kind::kOr);
  ASSERT_EQ(f.value()->children().size(), 2u);
  EXPECT_EQ(f.value()->children()[1]->kind(), Formula::Kind::kAnd);
}

TEST(Parser, Parentheses) {
  auto f = parse_formula("(x < 0 | x > 1) & x < 2");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->kind(), Formula::Kind::kAnd);
}

TEST(Parser, ParenthesizedExprAtom) {
  auto f = parse_formula("(x + 1) < y");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->kind(), Formula::Kind::kAtom);
}

TEST(Parser, Quantifiers) {
  VarTable vars;
  auto f = parse_formula("E y. x < y & y < 1", &vars);
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->kind(), Formula::Kind::kExists);
  // Quantifier scope extends right: body is the whole conjunction.
  EXPECT_EQ(f.value()->children()[0]->kind(), Formula::Kind::kAnd);
  auto g = parse_formula("A x. x^2 >= 0");
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value()->kind(), Formula::Kind::kForall);
  // Trivially true bodies fold through the quantifier.
  auto h = parse_formula("A x. x = x");
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h.value()->kind(), Formula::Kind::kTrue);
}

TEST(Parser, NestedQuantifiers) {
  auto f = parse_formula("E x. A y. x*y <= 0 | y > 0");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->count_quantifiers(), 2u);
}

TEST(Parser, Predicates) {
  VarTable vars;
  auto f = parse_formula("U(x) & U(y) & x < y", &vars);
  ASSERT_TRUE(f.is_ok());
  EXPECT_TRUE(f.value()->has_predicates());
  auto g = parse_formula("R(x, y + 1, 2*z)", &vars);
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value()->kind(), Formula::Kind::kPredicate);
  EXPECT_EQ(g.value()->args().size(), 3u);
}

TEST(Parser, PredicateVsQuantifierAmbiguity) {
  // "Edge(x, y)" must parse as a predicate, not "E dge...".
  auto f = parse_formula("Edge(x, y)");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->kind(), Formula::Kind::kPredicate);
  EXPECT_EQ(f.value()->pred_name(), "Edge");
}

TEST(Parser, TrueFalse) {
  EXPECT_EQ(parse_formula("true").value()->kind(), Formula::Kind::kTrue);
  EXPECT_EQ(parse_formula("false").value()->kind(), Formula::Kind::kFalse);
}

TEST(Parser, Negation) {
  auto f = parse_formula("!(x < 1)");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value()->op(), RelOp::kGe);  // folded
  auto g = parse_formula("!U(x)");
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value()->kind(), Formula::Kind::kNot);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(parse_formula("x <").is_ok());
  EXPECT_FALSE(parse_formula("x < 1 extra").is_ok());
  EXPECT_FALSE(parse_formula("(x < 1").is_ok());
  EXPECT_FALSE(parse_formula("E . x < 1").is_ok());
  EXPECT_FALSE(parse_formula("x ~ 1").is_ok());
  EXPECT_FALSE(parse_formula("").is_ok());
}

TEST(Parser, SharedVarTable) {
  VarTable vars;
  auto f1 = parse_formula("x < y", &vars);
  auto f2 = parse_formula("y < z", &vars);
  ASSERT_TRUE(f1.is_ok());
  ASSERT_TRUE(f2.is_ok());
  EXPECT_EQ(vars.find("x"), 0);
  EXPECT_EQ(vars.find("y"), 1);
  EXPECT_EQ(vars.find("z"), 2);
  // f2's "y" is the same variable index as f1's.
  EXPECT_TRUE(f2.value()->free_vars().count(1));
}

TEST(Parser, PrintParseRoundTrip) {
  VarTable vars;
  const char* inputs[] = {
      "x < 1 & y >= 0",
      "E z. x + z = y",
      "x^2 + y^2 <= 1",
      "!U(x) | x > 2",
  };
  for (const char* s : inputs) {
    auto f = parse_formula(s, &vars);
    ASSERT_TRUE(f.is_ok()) << s;
    std::string printed = to_string(f.value(), vars);
    auto g = parse_formula(printed, &vars);
    ASSERT_TRUE(g.is_ok()) << printed;
    EXPECT_EQ(printed, to_string(g.value(), vars)) << s;
  }
}

TEST(Eval, QuantifierFree) {
  VarTable vars;
  auto f = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  EXPECT_TRUE(eval_qf(f, {Rational(1, 2), Rational(1, 2)}).value_or_die());
  EXPECT_FALSE(eval_qf(f, {Rational(1), Rational(1)}).value_or_die());
  // Boundary: exactly on the circle.
  EXPECT_TRUE(eval_qf(f, {Rational(1), Rational(0)}).value_or_die());
  EXPECT_TRUE(eval_qf_double(f, {0.5, 0.5}).value_or_die());
  EXPECT_FALSE(eval_qf_double(f, {1.0, 1.0}).value_or_die());
}

TEST(Eval, PredicateNeedsOracle) {
  auto f = parse_formula("U(x)").value_or_die();
  EXPECT_FALSE(eval_qf(f, {Rational(0)}).is_ok());
}

class SetOracle : public PredicateOracle {
 public:
  bool contains(const std::string& name, const RVec& tuple) const override {
    return name == "U" && tuple.size() == 1 && tuple[0] == Rational(7);
  }
};

TEST(Eval, PredicateWithOracle) {
  VarTable vars;
  auto f = parse_formula("U(x + 1)", &vars).value_or_die();
  SetOracle oracle;
  EXPECT_TRUE(eval_qf(f, {Rational(6)}, &oracle).value_or_die());
  EXPECT_FALSE(eval_qf(f, {Rational(7)}, &oracle).value_or_die());
}

TEST(Eval, RejectsQuantified) {
  auto f = parse_formula("E x. x > 0").value_or_die();
  EXPECT_FALSE(eval_qf(f, {}).is_ok());
}

}  // namespace
}  // namespace cqa
