#include "cqa/poly/root_isolation.h"

#include <gtest/gtest.h>

#include "cqa/poly/algebraic.h"

namespace cqa {
namespace {

UPoly up(std::vector<std::int64_t> coeffs) {
  std::vector<Rational> c;
  for (auto v : coeffs) c.emplace_back(v);
  return UPoly(std::move(c));
}

TEST(RootIsolation, LinearExact) {
  auto roots = isolate_real_roots(up({-3, 2}));  // 2x - 3
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_TRUE(roots[0].is_exact());
  EXPECT_EQ(roots[0].lo, Rational(3, 2));
}

TEST(RootIsolation, ThreeIntegerRoots) {
  UPoly p = up({-1, 1}) * up({-2, 1}) * up({-3, 1});
  auto roots = isolate_real_roots(p);
  ASSERT_EQ(roots.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(root_cmp(roots[static_cast<std::size_t>(i)], Rational(i + 1)), 0);
  }
  // Sorted ascending.
  EXPECT_LT(root_cmp(roots[0], roots[1]), 0);
  EXPECT_LT(root_cmp(roots[1], roots[2]), 0);
}

TEST(RootIsolation, Sqrt2) {
  auto roots = isolate_real_roots(up({-2, 0, 1}));  // x^2 - 2
  ASSERT_EQ(roots.size(), 2u);
  // -sqrt2 then +sqrt2.
  EXPECT_LT(root_cmp(roots[0], Rational(0)), 0);
  EXPECT_GT(root_cmp(roots[1], Rational(0)), 0);
  IsolatedRoot r = roots[1];
  refine_root_to_width(&r, Rational(1, 1000000));
  double v = r.to_double();
  EXPECT_NEAR(v, 1.4142135623730951, 1e-5);
  EXPECT_GT(root_cmp(r, Rational(14142, 10000)), 0);
  EXPECT_LT(root_cmp(r, Rational(14143, 10000)), 0);
}

TEST(RootIsolation, RepeatedRoots) {
  UPoly p = up({-1, 1}) * up({-1, 1}) * up({2, 1});  // (x-1)^2 (x+2)
  auto roots = isolate_real_roots(p);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(root_cmp(roots[0], Rational(-2)), 0);
  EXPECT_EQ(root_cmp(roots[1], Rational(1)), 0);
}

TEST(RootIsolation, NoRealRoots) {
  EXPECT_TRUE(isolate_real_roots(up({1, 0, 1})).empty());
  EXPECT_TRUE(isolate_real_roots(up({5})).empty());
  EXPECT_TRUE(isolate_real_roots(UPoly()).empty());
}

TEST(RootIsolation, CloseRoots) {
  // Roots at 1/1000 and 2/1000.
  UPoly p = UPoly({Rational(-1, 1000), Rational(1)}) *
            UPoly({Rational(-2, 1000), Rational(1)});
  auto roots = isolate_real_roots(p);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(root_cmp(roots[0], Rational(1, 1000)), 0);
  EXPECT_EQ(root_cmp(roots[1], Rational(2, 1000)), 0);
}

TEST(RootIsolation, Wilkinsonish) {
  // prod (x - i), i = 1..8: stress bisection.
  UPoly p = UPoly::constant(Rational(1));
  for (int i = 1; i <= 8; ++i) p = p * up({-i, 1});
  auto roots = isolate_real_roots(p);
  ASSERT_EQ(roots.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(root_cmp(roots[static_cast<std::size_t>(i)], Rational(i + 1)), 0);
  }
}

TEST(RootIsolation, RootCmpAgainstRational) {
  auto roots = isolate_real_roots(up({-2, 0, 1}));  // +-sqrt2
  const IsolatedRoot& sqrt2 = roots[1];
  EXPECT_GT(root_cmp(sqrt2, Rational(1)), 0);
  EXPECT_LT(root_cmp(sqrt2, Rational(2)), 0);
  EXPECT_TRUE(root_greater_than(sqrt2, Rational(1)));
  EXPECT_FALSE(root_greater_than(sqrt2, Rational(3, 2)));
}

TEST(RootIsolation, RootCmpSameRootDifferentPolys) {
  // sqrt2 as root of x^2-2 and of (x^2-2)(x+5).
  auto r1 = isolate_real_roots(up({-2, 0, 1}));
  auto r2 = isolate_real_roots(up({-2, 0, 1}) * up({5, 1}));
  ASSERT_EQ(r2.size(), 3u);
  const IsolatedRoot& a = r1[1];
  const IsolatedRoot& b = r2[2];
  EXPECT_EQ(root_cmp(a, b), 0);
  EXPECT_LT(root_cmp(r2[0], a), 0);  // -5 < sqrt2
}

TEST(AlgebraicNumber, RationalCase) {
  AlgebraicNumber q = AlgebraicNumber::from_rational(Rational(3, 4));
  EXPECT_TRUE(q.is_rational());
  EXPECT_EQ(q.rational_value(), Rational(3, 4));
  EXPECT_EQ(q.cmp(Rational(1)), -1);
  EXPECT_EQ(q.cmp(Rational(3, 4)), 0);
  EXPECT_EQ(q.sign_of(up({0, 1})), 1);          // x at 3/4 > 0
  EXPECT_EQ(q.sign_of(UPoly({Rational(-3, 4), Rational(1)})), 0);
}

TEST(AlgebraicNumber, SignOfAtSqrt2) {
  auto roots = isolate_real_roots(up({-2, 0, 1}));
  AlgebraicNumber sqrt2 = AlgebraicNumber::from_root(roots[1]);
  // x^2 - 2 vanishes.
  EXPECT_EQ(sqrt2.sign_of(up({-2, 0, 1})), 0);
  // (x^2-2)(x+7) vanishes too.
  EXPECT_EQ(sqrt2.sign_of(up({-2, 0, 1}) * up({7, 1})), 0);
  // x - 1 > 0 at sqrt2.
  EXPECT_EQ(sqrt2.sign_of(up({-1, 1})), 1);
  // x - 2 < 0.
  EXPECT_EQ(sqrt2.sign_of(up({-2, 1})), -1);
  // x^2 - 3 < 0 (needs refinement, 2 < 3).
  EXPECT_EQ(sqrt2.sign_of(up({-3, 0, 1})), -1);
  // x^2 - 1 > 0.
  EXPECT_EQ(sqrt2.sign_of(up({-1, 0, 1})), 1);
  EXPECT_EQ(sqrt2.sign_of(UPoly()), 0);
}

TEST(AlgebraicNumber, Comparisons) {
  auto roots2 = isolate_real_roots(up({-2, 0, 1}));
  auto roots3 = isolate_real_roots(up({-3, 0, 1}));
  AlgebraicNumber s2 = AlgebraicNumber::from_root(roots2[1]);
  AlgebraicNumber s3 = AlgebraicNumber::from_root(roots3[1]);
  EXPECT_LT(s2, s3);
  EXPECT_EQ(s2.cmp(s2), 0);
  EXPECT_TRUE(s2 == AlgebraicNumber::from_root(roots2[1]));
  EXPECT_NEAR(s2.to_double(), 1.41421356, 1e-7);
  EXPECT_NEAR(s3.to_double(), 1.73205081, 1e-7);
  Rational below = s2.rational_below();
  Rational above = s2.rational_above();
  EXPECT_EQ(s2.cmp(below), 1);
  EXPECT_EQ(s2.cmp(above), -1);
}

}  // namespace
}  // namespace cqa
