#include "cqa/arith/rational.h"

#include <random>

#include <gtest/gtest.h>

#include "cqa/arith/interval.h"

namespace cqa {
namespace {

TEST(Rational, Normalization) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(1, -2));
  EXPECT_EQ(Rational(0, 7), Rational());
  EXPECT_EQ(Rational(0, -7).den(), BigInt(1));
  EXPECT_EQ(Rational(6, -3), Rational(-2));
  EXPECT_GT(Rational(3, 7).den(), BigInt(0));
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_EQ(Rational(3, 5).inverse(), Rational(5, 3));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 6).cmp(Rational(1, 3)), 0);
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), BigInt(3));
  EXPECT_EQ(Rational(7, 2).ceil(), BigInt(4));
  EXPECT_EQ(Rational(-7, 2).floor(), BigInt(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), BigInt(-3));
  EXPECT_EQ(Rational(4).floor(), BigInt(4));
  EXPECT_EQ(Rational(4).ceil(), BigInt(4));
}

TEST(Rational, Parsing) {
  EXPECT_EQ(Rational::parse("3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::parse("-3/4"), Rational(-3, 4));
  EXPECT_EQ(Rational::parse("3/-4"), Rational(-3, 4));
  EXPECT_EQ(Rational::parse("5"), Rational(5));
  EXPECT_EQ(Rational::parse("3.25"), Rational(13, 4));
  EXPECT_EQ(Rational::parse("-0.5"), Rational(-1, 2));
  EXPECT_EQ(Rational::parse("-.5"), Rational(-1, 2));
  EXPECT_FALSE(Rational::from_string("1/0").is_ok());
  EXPECT_FALSE(Rational::from_string("x").is_ok());
  EXPECT_FALSE(Rational::from_string("1.").is_ok());
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(1, 2).to_string(), "1/2");
  EXPECT_EQ(Rational(-3).to_string(), "-3");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

TEST(Rational, Pow) {
  EXPECT_EQ(Rational::pow(Rational(2, 3), 3), Rational(8, 27));
  EXPECT_EQ(Rational::pow(Rational(2, 3), -2), Rational(9, 4));
  EXPECT_EQ(Rational::pow(Rational(5), 0), Rational(1));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 3).to_double(), -1.0 / 3.0);
  // Huge numerator/denominator should still produce a finite sane value.
  Rational big(BigInt::pow(BigInt(7), 100), BigInt::pow(BigInt(7), 99));
  EXPECT_NEAR(big.to_double(), 7.0, 1e-9);
  Rational tiny(BigInt(1), BigInt::pow(BigInt(2), 200));
  EXPECT_NEAR(tiny.to_double(), 0.0, 1e-30);
}

TEST(Rational, FieldAxiomsRandomized) {
  std::mt19937_64 rng(7);
  auto rand_q = [&]() {
    std::int64_t n = static_cast<std::int64_t>(rng() % 2001) - 1000;
    std::int64_t d = static_cast<std::int64_t>(rng() % 1000) + 1;
    return Rational(n, d);
  };
  for (int i = 0; i < 200; ++i) {
    Rational a = rand_q(), b = rand_q(), c = rand_q();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational());
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Rational(1));
  }
}

TEST(RationalInterval, Basics) {
  RationalInterval iv(Rational(-1), Rational(2));
  EXPECT_TRUE(iv.contains_zero());
  EXPECT_EQ(iv.definite_sign(), 0);
  EXPECT_EQ(iv.width(), Rational(3));
  EXPECT_EQ(iv.mid(), Rational(1, 2));
  EXPECT_TRUE(iv.contains(Rational(0)));
  EXPECT_FALSE(iv.contains(Rational(3)));

  RationalInterval pos(Rational(1, 3), Rational(2));
  EXPECT_EQ(pos.definite_sign(), 1);
  RationalInterval neg(Rational(-2), Rational(-1, 3));
  EXPECT_EQ(neg.definite_sign(), -1);
}

TEST(RationalInterval, Arithmetic) {
  RationalInterval a(Rational(1), Rational(2));
  RationalInterval b(Rational(-3), Rational(4));
  RationalInterval s = a + b;
  EXPECT_EQ(s.lo(), Rational(-2));
  EXPECT_EQ(s.hi(), Rational(6));
  RationalInterval d = a - b;
  EXPECT_EQ(d.lo(), Rational(-3));
  EXPECT_EQ(d.hi(), Rational(5));
  RationalInterval p = a * b;
  EXPECT_EQ(p.lo(), Rational(-6));
  EXPECT_EQ(p.hi(), Rational(8));
  RationalInterval n = -a;
  EXPECT_EQ(n.lo(), Rational(-2));
  EXPECT_EQ(n.hi(), Rational(-1));
}

TEST(RationalInterval, MultiplicationEnclosureRandomized) {
  std::mt19937_64 rng(11);
  auto rand_q = [&]() {
    return Rational(static_cast<std::int64_t>(rng() % 41) - 20,
                    static_cast<std::int64_t>(rng() % 9) + 1);
  };
  for (int i = 0; i < 200; ++i) {
    Rational a = rand_q(), b = rand_q(), c = rand_q(), d = rand_q();
    RationalInterval x(std::min(a, b), std::max(a, b));
    RationalInterval y(std::min(c, d), std::max(c, d));
    RationalInterval p = x * y;
    // Products of endpoints and midpoints must lie inside.
    for (const Rational& u : {x.lo(), x.hi(), x.mid()}) {
      for (const Rational& v : {y.lo(), y.hi(), y.mid()}) {
        EXPECT_TRUE(p.contains(u * v));
      }
    }
  }
}

}  // namespace
}  // namespace cqa
