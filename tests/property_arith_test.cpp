// Property-based torture tests for the exact-arithmetic bedrock.

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/arith/rational.h"

namespace cqa {
namespace {

class ArithProperty : public ::testing::TestWithParam<std::uint64_t> {};

BigInt random_big(Xoshiro* rng, int max_limbs) {
  BigInt x;
  const int limbs = 1 + static_cast<int>(rng->next() %
                                         static_cast<std::uint64_t>(max_limbs));
  for (int i = 0; i < limbs; ++i) {
    x = x.shl(32) +
        BigInt(static_cast<std::int64_t>(rng->next() & 0xffffffffu));
  }
  if (rng->next() & 1) x = -x;
  return x;
}

TEST_P(ArithProperty, RingLaws) {
  Xoshiro rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_big(&rng, 5);
    BigInt b = random_big(&rng, 5);
    BigInt c = random_big(&rng, 3);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + (-a), BigInt(0));
  }
}

TEST_P(ArithProperty, DivModInvariant) {
  Xoshiro rng(GetParam() ^ 0x1);
  for (int i = 0; i < 100; ++i) {
    BigInt a = random_big(&rng, 6);
    BigInt b = random_big(&rng, 3);
    if (b.is_zero()) continue;
    auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    // Exactly divisible round-trips.
    BigInt prod = a * b;
    BigInt::DivMod dm = prod.divmod(b);
    EXPECT_EQ(dm.quot, a);
    EXPECT_TRUE(dm.rem.is_zero());
  }
}

TEST_P(ArithProperty, GcdLaws) {
  Xoshiro rng(GetParam() ^ 0x2);
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_big(&rng, 4);
    BigInt b = random_big(&rng, 4);
    BigInt g = BigInt::gcd(a, b);
    EXPECT_GE(g, BigInt(0));
    if (!g.is_zero()) {
      EXPECT_TRUE((a % g).is_zero());
      EXPECT_TRUE((b % g).is_zero());
      // gcd(a/g, b/g) == 1.
      EXPECT_EQ(BigInt::gcd(a / g, b / g), BigInt(1));
    }
    EXPECT_EQ(BigInt::gcd(a, b), BigInt::gcd(b, a));
    // gcd(ka, kb) = |k| gcd(a, b).
    BigInt k = random_big(&rng, 1);
    EXPECT_EQ(BigInt::gcd(a * k, b * k), g * k.abs());
  }
}

TEST_P(ArithProperty, ShiftsAreMultiplication) {
  Xoshiro rng(GetParam() ^ 0x3);
  for (int i = 0; i < 30; ++i) {
    BigInt a = random_big(&rng, 3);
    std::size_t bits = rng.next() % 90;
    EXPECT_EQ(a.shl(bits), a * BigInt::pow(BigInt(2), bits));
    // (a << bits) >> bits is the identity on the magnitude.
    EXPECT_EQ(a.shl(bits).shr(bits), a);
  }
}

TEST_P(ArithProperty, ToStringRoundTrip) {
  Xoshiro rng(GetParam() ^ 0x4);
  for (int i = 0; i < 30; ++i) {
    BigInt a = random_big(&rng, 5);
    EXPECT_EQ(BigInt::parse(a.to_string()), a);
  }
}

TEST_P(ArithProperty, RationalOrderCompatibility) {
  Xoshiro rng(GetParam() ^ 0x5);
  auto rand_q = [&]() {
    return Rational(static_cast<std::int64_t>(rng.next() % 401) - 200,
                    1 + static_cast<std::int64_t>(rng.next() % 50));
  };
  for (int i = 0; i < 60; ++i) {
    Rational a = rand_q(), b = rand_q(), c = rand_q();
    if (a < b) {
      EXPECT_LT(a + c, b + c);
      if (c.sign() > 0) EXPECT_LT(a * c, b * c);
      if (c.sign() < 0) EXPECT_GT(a * c, b * c);
    }
    // Double conversion preserves order for well-separated values.
    if ((a - b).abs() > Rational(1, 1000)) {
      EXPECT_EQ(a < b, a.to_double() < b.to_double());
    }
  }
}

TEST_P(ArithProperty, SimplestInOpenIsInsideAndMinimal) {
  Xoshiro rng(GetParam() ^ 0x6);
  for (int i = 0; i < 40; ++i) {
    Rational a(static_cast<std::int64_t>(rng.next() % 201) - 100,
               1 + static_cast<std::int64_t>(rng.next() % 20));
    Rational w(1 + static_cast<std::int64_t>(rng.next() % 30),
               1 + static_cast<std::int64_t>(rng.next() % 40));
    Rational b = a + w;
    Rational s = Rational::simplest_in_open(a, b);
    EXPECT_GT(s, a);
    EXPECT_LT(s, b);
    // Minimality: no rational with a smaller denominator lies inside.
    for (BigInt d(1); d < s.den(); d += BigInt(1)) {
      Rational dd(d);
      // Any p/d inside the interval would contradict minimality.
      BigInt lo_p = (a * dd).floor();
      BigInt hi_p = (b * dd).ceil();
      for (BigInt p = lo_p; p <= hi_p; p += BigInt(1)) {
        Rational cand(p, d);
        EXPECT_FALSE(a < cand && cand < b)
            << "simpler " << cand.to_string() << " in ("
            << a.to_string() << ", " << b.to_string() << ") than "
            << s.to_string();
      }
      if (d > BigInt(64)) break;  // keep the check bounded
    }
  }
}

TEST_P(ArithProperty, FloorCeilIdentities) {
  Xoshiro rng(GetParam() ^ 0x7);
  for (int i = 0; i < 60; ++i) {
    Rational q(static_cast<std::int64_t>(rng.next() % 801) - 400,
               1 + static_cast<std::int64_t>(rng.next() % 30));
    BigInt f = q.floor();
    BigInt c = q.ceil();
    EXPECT_LE(Rational(f), q);
    EXPECT_GT(Rational(f) + Rational(1), q);
    EXPECT_GE(Rational(c), q);
    EXPECT_LT(Rational(c) - Rational(1), q);
    if (q.is_integer()) {
      EXPECT_EQ(f, c);
    } else {
      EXPECT_EQ(c, f + BigInt(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cqa
