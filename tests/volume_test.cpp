#include "cqa/volume/semilinear_volume.h"

#include <gtest/gtest.h>

#include "cqa/constraint/qe.h"
#include "cqa/geometry/affine.h"
#include "cqa/logic/parser.h"
#include "cqa/logic/transform.h"
#include "cqa/volume/inclusion_exclusion.h"
#include "cqa/volume/variable_independence.h"

namespace cqa {
namespace {

std::vector<LinearCell> cells_of(const std::string& formula, std::size_t dim,
                                 VarTable* vars = nullptr) {
  VarTable local;
  auto f = parse_formula(formula, vars ? vars : &local).value_or_die();
  return formula_to_cells(f, dim).value_or_die();
}

TEST(SemilinearVolume, SingleBox) {
  auto cells = cells_of("0 <= x & x <= 1 & 0 <= y & y <= 1", 2);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(1));
}

TEST(SemilinearVolume, Triangle) {
  auto cells = cells_of("0 <= x & 0 <= y & x + y <= 1", 2);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(1, 2));
}

TEST(SemilinearVolume, DisjointUnionAdds) {
  auto cells = cells_of(
      "(0 <= x & x <= 1 & 0 <= y & y <= 1) | "
      "(2 <= x & x <= 3 & 0 <= y & y <= 2)",
      2);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(3));
}

TEST(SemilinearVolume, OverlappingUnion) {
  // [0,2]x[0,2] union [1,3]x[1,3]: 4 + 4 - 1 = 7.
  auto cells = cells_of(
      "(0 <= x & x <= 2 & 0 <= y & y <= 2) | "
      "(1 <= x & x <= 3 & 1 <= y & y <= 3)",
      2);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(7));
  // Sweep path must agree.
  EXPECT_EQ(semilinear_volume_sweep(cells).value_or_die(), Rational(7));
  // Inclusion-exclusion must agree.
  EXPECT_EQ(volume_inclusion_exclusion(cells).value_or_die(), Rational(7));
}

TEST(SemilinearVolume, OverlappingTriangles) {
  // Two overlapping triangles forming a non-convex region.
  auto cells = cells_of(
      "(0 <= x & 0 <= y & x + y <= 2) | "
      "(x <= 2 & y <= 2 & x + y >= 2 & 0 <= x & 0 <= y)",
      2);
  // The union is exactly the square [0,2]^2: 2 + 2 = 4, no overlap interior.
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(4));
  EXPECT_EQ(semilinear_volume_sweep(cells).value_or_die(), Rational(4));
}

TEST(SemilinearVolume, StrictVsWeakSameVolume) {
  auto open = cells_of("0 < x & x < 1 & 0 < y & y < 1", 2);
  auto closed = cells_of("0 <= x & x <= 1 & 0 <= y & y <= 1", 2);
  EXPECT_EQ(semilinear_volume(open).value_or_die(),
            semilinear_volume(closed).value_or_die());
}

TEST(SemilinearVolume, LowerDimensionalIsZero) {
  auto seg = cells_of("0 <= x & x <= 1 & y = x", 2);
  EXPECT_EQ(semilinear_volume(seg).value_or_die(), Rational(0));
  // Mixed: a square plus a segment sticking out adds nothing.
  auto mixed = cells_of(
      "(0 <= x & x <= 1 & 0 <= y & y <= 1) | (y = 0 & 1 <= x & x <= 5)", 2);
  EXPECT_EQ(semilinear_volume(mixed).value_or_die(), Rational(1));
}

TEST(SemilinearVolume, HoleViaDisequality) {
  // Unit square minus the diagonal line: same measure as the square.
  auto cells = cells_of("0 <= x & x <= 1 & 0 <= y & y <= 1 & x != y", 2);
  EXPECT_EQ(cells.size(), 2u);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(1));
}

TEST(SemilinearVolume, AnnulusSquare) {
  // [0,3]^2 minus (1,2)^2: area 9 - 1 = 8, nonconvex with a hole.
  auto cells = cells_of(
      "0 <= x & x <= 3 & 0 <= y & y <= 3 & "
      "(x <= 1 | x >= 2 | y <= 1 | y >= 2)",
      2);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(8));
  EXPECT_EQ(semilinear_volume_sweep(cells).value_or_die(), Rational(8));
}

TEST(SemilinearVolume, ThreeDOverlap) {
  // Two unit cubes overlapping in a 1/2-thick slab.
  auto cells = cells_of(
      "(0 <= x & x <= 1 & 0 <= y & y <= 1 & 0 <= z & z <= 1) | "
      "(1/2 <= x & x <= 3/2 & 0 <= y & y <= 1 & 0 <= z & z <= 1)",
      3);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(3, 2));
  EXPECT_EQ(volume_inclusion_exclusion(cells).value_or_die(), Rational(3, 2));
}

TEST(SemilinearVolume, RotatedSquareSweep) {
  // Rotate the unit square by an exact rational rotation; volume invariant.
  LinearCell square = LinearCell(2).intersect_box(Rational(0), Rational(1));
  AffineMap rot = AffineMap::rotation2d(Rational(1, 3));
  LinearCell rotated = rot.apply(square).value_or_die();
  EXPECT_EQ(semilinear_volume({rotated}).value_or_die(), Rational(1));
  EXPECT_EQ(semilinear_volume_sweep({rotated}).value_or_die(), Rational(1));
}

TEST(SemilinearVolume, AffineScalingLaw) {
  // Vol(T(S)) = |det T| Vol(S) for a sheared, scaled triangle union.
  auto cells = cells_of(
      "(0 <= x & 0 <= y & x + y <= 1) | "
      "(1 <= x & x <= 2 & 0 <= y & y <= 1/2)",
      2);
  Rational before = semilinear_volume(cells).value_or_die();
  EXPECT_EQ(before, Rational(1));
  Matrix a = Matrix::from_rows({{Rational(2), Rational(1)},
                                {Rational(0), Rational(3)}});
  AffineMap t(a, {Rational(5), Rational(-7)});
  std::vector<LinearCell> image;
  for (const auto& c : cells) image.push_back(t.apply(c).value_or_die());
  Rational after = semilinear_volume(image).value_or_die();
  EXPECT_EQ(after, t.determinant().abs() * before);
}

TEST(SemilinearVolume, UnboundedErrors) {
  auto cells = cells_of("x >= 0 & 0 <= y & y <= 1", 2);
  EXPECT_FALSE(semilinear_volume(cells).is_ok());
}

TEST(SemilinearVolume, EmptyIsZero) {
  EXPECT_EQ(semilinear_volume({}).value_or_die(), Rational(0));
  auto cells = cells_of("x < 0 & x > 1", 1);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(0));
}

TEST(SemilinearVolume, OneDimensionalUnion) {
  auto cells = cells_of(
      "(0 <= x & x <= 1) | (1/2 <= x & x <= 2) | (5 <= x & x <= 6)", 1);
  EXPECT_EQ(semilinear_volume(cells).value_or_die(), Rational(3));
}

TEST(FormulaVolume, DirectAndBoxed) {
  VarTable vars;
  auto f = parse_formula("0 <= x & x <= 2 & 0 <= y & y <= 2", &vars)
               .value_or_die();
  EXPECT_EQ(formula_volume(f, 2).value_or_die(), Rational(4));
  // VOL_I clips to the unit box.
  EXPECT_EQ(formula_volume_I(f, 2).value_or_die(), Rational(1));
  // VOL_I of an unbounded set is still defined.
  auto half = parse_formula("x >= 1/2", &vars).value_or_die();
  EXPECT_EQ(formula_volume_I(half, 2).value_or_die(), Rational(1, 2));
}

TEST(FormulaVolume, PaperSection3Example) {
  // The paper's running example: phi(x1,x2; y1,y2) over U with
  // x1 < y1 < x2, 0 <= y2 <= y1. VOL_I = (x2^2 - x1^2)/2 for
  // 0 <= x1 <= x2 <= 1. Take x1 = 1/4, x2 = 3/4.
  VarTable vars;
  auto f = parse_formula(
               "1/4 < y1 & y1 < 3/4 & 0 <= y2 & y2 <= y1", &vars)
               .value_or_die();
  Rational expect = (Rational(9, 16) - Rational(1, 16)) * Rational(1, 2);
  EXPECT_EQ(formula_volume_I(f, 2).value_or_die(), expect);
}

TEST(FormulaVolume, ThroughQuantifierElimination) {
  // E z binding: vol of the projection. S = {(x,y) : E z. x<=z<=y, 0<=x,
  // y<=1} == {(x,y) : 0 <= x <= y <= 1}, area 1/2.
  VarTable vars;
  auto f = parse_formula("E z. x <= z & z <= y & 0 <= x & y <= 1", &vars)
               .value_or_die();
  auto qf = qe_linear(f).value_or_die();
  // Variable indices: z=0? Depends on parse order; map via the table.
  // Free vars are x and y; build cells in terms of those two.
  std::size_t xi = static_cast<std::size_t>(vars.find("x"));
  std::size_t yi = static_cast<std::size_t>(vars.find("y"));
  // Remap x->0, y->1 for a clean 2-D volume.
  std::map<std::size_t, Polynomial> sub;
  sub.emplace(xi, Polynomial::variable(0));
  sub.emplace(yi, Polynomial::variable(1));
  auto remapped = substitute_vars(qf, sub);
  EXPECT_EQ(formula_volume(remapped, 2).value_or_die(), Rational(1, 2));
}

TEST(VariableIndependence, Detection) {
  auto boxes = cells_of(
      "(0 <= x & x <= 1 & 0 <= y & y <= 1) | (x >= 2 & x <= 3 & y >= 0 & "
      "y <= 1)",
      2);
  EXPECT_TRUE(is_variable_independent(boxes));
  auto tri = cells_of("0 <= x & 0 <= y & x + y <= 1", 2);
  EXPECT_FALSE(is_variable_independent(tri));
}

TEST(VariableIndependence, GridVolumeMatchesSweep) {
  auto boxes = cells_of(
      "(0 <= x & x <= 2 & 0 <= y & y <= 2) | "
      "(1 <= x & x <= 3 & 1 <= y & y <= 3) | "
      "(0 <= x & x <= 1/2 & 5/2 <= y & y <= 3)",
      2);
  ASSERT_TRUE(is_variable_independent(boxes));
  Rational grid = volume_variable_independent(boxes).value_or_die();
  Rational sweep = semilinear_volume(boxes).value_or_die();
  EXPECT_EQ(grid, sweep);
  EXPECT_EQ(grid, Rational(4) + Rational(4) - Rational(1) + Rational(1, 4));
}

TEST(VariableIndependence, RejectsNonVI) {
  auto tri = cells_of("0 <= x & 0 <= y & x + y <= 1", 2);
  EXPECT_FALSE(volume_variable_independent(tri).is_ok());
}

TEST(InclusionExclusion, MatchesSweepOnRandomBoxes) {
  auto cells = cells_of(
      "(0 <= x & x <= 2 & 0 <= y & y <= 1) | "
      "(1 <= x & x <= 3 & 0 <= y & y <= 2) | "
      "(0 <= x & x <= 1 & 1/2 <= y & y <= 3/2)",
      2);
  EXPECT_EQ(volume_inclusion_exclusion(cells).value_or_die(),
            semilinear_volume_sweep(cells).value_or_die());
}

TEST(InclusionExclusion, CellCap) {
  std::vector<LinearCell> many(
      25, LinearCell(1).intersect_box(Rational(0), Rational(1)));
  EXPECT_FALSE(volume_inclusion_exclusion(many, 20).is_ok());
}

TEST(VolumeStats, FastPathsAreTaken) {
  VolumeStats stats;
  auto single = cells_of("0 <= x & x <= 1 & 0 <= y & y <= 1", 2);
  semilinear_volume(single, &stats).value_or_die();
  EXPECT_EQ(stats.lasserre_calls, 1u);
  EXPECT_EQ(stats.sweep_calls, 0u);

  VolumeStats stats2;
  auto overlap = cells_of(
      "(0 <= x & x <= 2 & 0 <= y & y <= 2) | "
      "(1 <= x & x <= 3 & 1 <= y & y <= 3)",
      2);
  semilinear_volume(overlap, &stats2).value_or_die();
  EXPECT_GE(stats2.sweep_calls, 1u);
  EXPECT_GT(stats2.breakpoints, 0u);
}

}  // namespace
}  // namespace cqa
