#include "cqa/aggregate/database.h"

#include <gtest/gtest.h>

#include "cqa/aggregate/endpoints.h"
#include "cqa/logic/parser.h"

namespace cqa {
namespace {

RVec pt(std::vector<std::int64_t> v) {
  RVec out;
  for (auto x : v) out.emplace_back(x);
  return out;
}

TEST(Database, FiniteRelations) {
  Database db;
  ASSERT_TRUE(db.add_finite("U", 1, {pt({1}), pt({2}), pt({2})}).is_ok());
  EXPECT_TRUE(db.has_relation("U"));
  EXPECT_TRUE(db.is_finite("U"));
  EXPECT_EQ(db.arity_of("U").value_or_die(), 1u);
  EXPECT_EQ(db.tuples_of("U").value_or_die().size(), 2u);  // deduped
  EXPECT_TRUE(db.contains("U", pt({1})));
  EXPECT_FALSE(db.contains("U", pt({3})));
  EXPECT_FALSE(db.contains("U", pt({1, 2})));  // arity mismatch
  EXPECT_FALSE(db.add_finite("U", 1, {}).is_ok());  // duplicate
  EXPECT_FALSE(db.add_finite("V", 2, {pt({1})}).is_ok());  // arity
}

TEST(Database, ActiveDomain) {
  Database db;
  ASSERT_TRUE(db.add_finite("R", 2, {pt({1, 2}), pt({3, 1})}).is_ok());
  auto adom = db.active_domain();
  EXPECT_EQ(adom.size(), 3u);
  EXPECT_TRUE(adom.count(Rational(1)));
  EXPECT_TRUE(adom.count(Rational(3)));
}

TEST(Database, ConstraintRelations) {
  Database db;
  VarTable vars;
  // Disk of radius 1 -- truly polynomial.
  auto disk = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  ASSERT_TRUE(db.add_constraint_relation("Disk", 2, disk).is_ok());
  EXPECT_FALSE(db.is_finite("Disk"));
  EXPECT_TRUE(db.contains("Disk", {Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(db.contains("Disk", {Rational(1), Rational(1)}));
  EXPECT_FALSE(db.tuples_of("Disk").is_ok());
}

TEST(Database, InlinePredicates) {
  Database db;
  ASSERT_TRUE(db.add_finite("U", 1, {pt({1}), pt({2})}).is_ok());
  VarTable vars;
  auto f = parse_formula("U(x) & x > 1", &vars).value_or_die();
  auto g = db.inline_predicates(f).value_or_die();
  EXPECT_FALSE(g->has_predicates());
  // Semantics preserved.
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  EXPECT_TRUE(db.holds(f, {{x, Rational(2)}}).value_or_die());
  EXPECT_FALSE(db.holds(f, {{x, Rational(1)}}).value_or_die());
  EXPECT_FALSE(db.holds(f, {{x, Rational(3)}}).value_or_die());
  EXPECT_TRUE(eval_qf(g, {Rational(2)}).value_or_die());
}

TEST(Database, HoldsWithQuantifiers) {
  Database db;
  VarTable vars;
  auto seg = parse_formula("0 <= x & x <= 1 & y = 0", &vars).value_or_die();
  // Remap to slots 0,1.
  ASSERT_TRUE(db.add_constraint_relation("Seg", 2, seg).is_ok());
  // E p. E q. Seg(p, q) & p > t  -- linear with quantifiers.
  VarTable v2;
  auto f = parse_formula("E p. E q. Seg(p, q) & p > t", &v2).value_or_die();
  std::size_t t = static_cast<std::size_t>(v2.find("t"));
  EXPECT_TRUE(db.holds(f, {{t, Rational(1, 2)}}).value_or_die());
  EXPECT_FALSE(db.holds(f, {{t, Rational(1)}}).value_or_die());
}

TEST(Database, ActiveDomainQuantifiers) {
  Database db;
  ASSERT_TRUE(db.add_finite("U", 1, {pt({1}), pt({5}), pt({9})}).is_ok());
  // exists-adom x: U(x) & x > 4  -- via explicit construction.
  FormulaPtr body = Formula::f_and(
      Formula::predicate("U", {Polynomial::variable(0)}),
      Formula::gt(Polynomial::variable(0),
                  Polynomial::constant(Rational(4))));
  FormulaPtr f = Formula::exists(0, body, /*active_domain=*/true);
  EXPECT_TRUE(db.holds(f, {}).value_or_die());
  // forall-adom x: U(x) -> x > 4 is false (1 fails).
  FormulaPtr g = Formula::forall(
      0,
      Formula::f_or(Formula::f_not(Formula::predicate(
                        "U", {Polynomial::variable(0)})),
                    Formula::gt(Polynomial::variable(0),
                                Polynomial::constant(Rational(4)))),
      /*active_domain=*/true);
  EXPECT_FALSE(db.holds(g, {}).value_or_die());
}

TEST(Endpoints, FiniteRelationEndpoints) {
  Database db;
  ASSERT_TRUE(db.add_finite("U", 1, {pt({3}), pt({1}), pt({7})}).is_ok());
  VarTable vars;
  auto phi = parse_formula("U(y)", &vars).value_or_die();
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  auto eps = rational_endpoints_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0], Rational(1));
  EXPECT_EQ(eps[2], Rational(7));
  EXPECT_TRUE(is_finite_1d(db, phi, y, {}).value_or_die());
}

TEST(Endpoints, IntervalEndpoints) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("(0 <= y & y <= 1) | (2 < y & y < 3) | y = 5",
                           &vars)
                 .value_or_die();
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  auto decomp = decompose_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(decomp.size(), 3u);
  EXPECT_TRUE(decomp[0].lo_closed);
  EXPECT_TRUE(decomp[0].hi_closed);
  EXPECT_FALSE(decomp[1].lo_closed);
  EXPECT_FALSE(decomp[1].hi_closed);
  EXPECT_EQ(decomp[2].lo.cmp(decomp[2].hi), 0);
  auto eps = rational_endpoints_1d(db, phi, y, {}).value_or_die();
  // {0, 1, 2, 3, 5}.
  ASSERT_EQ(eps.size(), 5u);
  EXPECT_EQ(eps[4], Rational(5));
  EXPECT_FALSE(is_finite_1d(db, phi, y, {}).value_or_die());
}

TEST(Endpoints, UnboundedRays) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("y >= 2", &vars).value_or_die();
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  auto decomp = decompose_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(decomp.size(), 1u);
  EXPECT_FALSE(decomp[0].lo_infinite);
  EXPECT_TRUE(decomp[0].hi_infinite);
  auto eps = rational_endpoints_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0], Rational(2));
}

TEST(Endpoints, WholeLineAndEmpty) {
  Database db;
  VarTable vars;
  auto all = parse_formula("y = y | y != y", &vars).value_or_die();
  std::size_t y = 0;
  auto d1 = decompose_1d(db, all, y, {}).value_or_die();
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_TRUE(d1[0].lo_infinite);
  EXPECT_TRUE(d1[0].hi_infinite);
  auto none = parse_formula("y < 0 & y > 0", &vars).value_or_die();
  EXPECT_TRUE(decompose_1d(db, none, y, {}).value_or_die().empty());
  EXPECT_TRUE(is_finite_1d(db, none, y, {}).value_or_die());
}

TEST(Endpoints, ParameterizedEndpoints) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("a <= y & y <= a + 1", &vars).value_or_die();
  std::size_t a = static_cast<std::size_t>(vars.find("a"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  auto eps =
      rational_endpoints_1d(db, phi, y, {{a, Rational(5)}}).value_or_die();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0], Rational(5));
  EXPECT_EQ(eps[1], Rational(6));
}

TEST(Endpoints, SemialgebraicEndpoints) {
  Database db;
  VarTable vars;
  // y^2 <= 2: endpoints are +-sqrt(2), irrational.
  auto phi = parse_formula("y^2 <= 2", &vars).value_or_die();
  std::size_t y = 0;
  auto eps = endpoints_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_FALSE(eps[0].is_rational());
  EXPECT_LT(eps[0].cmp(eps[1]), 0);
  // Exact rational extraction refuses.
  auto rational = rational_endpoints_1d(db, phi, y, {});
  EXPECT_FALSE(rational.is_ok());
  EXPECT_EQ(rational.status().code(), StatusCode::kUnsupported);
}

TEST(Endpoints, QuantifiedLinearSource) {
  Database db;
  VarTable vars;
  // E z. y <= z & z <= 1 & y >= 0  ==  0 <= y <= 1.
  auto phi = parse_formula("E z. y <= z & z <= 1 & y >= 0", &vars)
                 .value_or_die();
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  auto eps = rational_endpoints_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0], Rational(0));
  EXPECT_EQ(eps[1], Rational(1));
}

TEST(Endpoints, IsolatedPointBetweenIntervals) {
  Database db;
  VarTable vars;
  // (y-1)^2 (y-3) >= 0 restricted to [0,4]: point {1} union [3,4].
  auto phi = parse_formula(
                 "(y - 1)*(y - 1)*(y - 3) >= 0 & 0 <= y & y <= 4", &vars)
                 .value_or_die();
  std::size_t y = 0;
  auto decomp = decompose_1d(db, phi, y, {}).value_or_die();
  ASSERT_EQ(decomp.size(), 2u);
  EXPECT_EQ(decomp[0].lo.cmp(decomp[0].hi), 0);  // the isolated point 1
  EXPECT_TRUE(decomp[0].lo.is_rational());
  EXPECT_EQ(decomp[0].lo.rational_value(), Rational(1));
}

}  // namespace
}  // namespace cqa
