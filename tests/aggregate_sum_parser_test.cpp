#include "cqa/aggregate/sum_parser.h"

#include <gtest/gtest.h>

namespace cqa {
namespace {

RVec pt(std::vector<std::int64_t> v) {
  RVec out;
  for (auto x : v) out.emplace_back(x);
  return out;
}

TEST(SumParser, PaperFirstExample) {
  // Sum of all interval endpoints of phi(D).
  Database db;
  VarTable vars;
  auto term = parse_sum_term(
                  "sum[w in end(y : (0 <= y & y <= 1) | (3 <= y & y <= 5))]"
                  "(x : x = w)",
                  &vars)
                  .value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(9));
}

TEST(SumParser, CountViaSumOfOnes) {
  Database db;
  CQA_CHECK(db.add_finite("U", 1, {pt({2}), pt({4}), pt({8})}).is_ok());
  VarTable vars;
  auto term = parse_sum_term("sum[w in end(y : U(y))](c : c = 1)", &vars)
                  .value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(3));
}

TEST(SumParser, GuardedPairs) {
  // Gaps between endpoint pairs with a < b: endpoints {0, 1}.
  Database db;
  VarTable vars;
  auto term = parse_sum_term(
                  "sum[a, b in end(y : 0 <= y & y <= 1) | a < b]"
                  "(v : v = b - a)",
                  &vars)
                  .value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(1));
}

TEST(SumParser, TermArithmetic) {
  Database db;
  VarTable vars;
  auto term = parse_sum_term(
                  "3 * sum[w in end(y : 0 <= y & y <= 2)](x : x = w) - 1/2",
                  &vars)
                  .value_or_die();
  // 3 * (0 + 2) - 1/2 = 11/2.
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(11, 2));
}

TEST(SumParser, NestedSums) {
  Database db;
  VarTable vars;
  // Outer sum of a constant times an inner sum: endpoints {0,1} each.
  auto term = parse_sum_term(
                  "sum[w in end(y : 0 <= y & y <= 1)](x : x = 1) * "
                  "sum[u in end(z : 0 <= z & z <= 3)](x2 : x2 = u)",
                  &vars)
                  .value_or_die();
  // 2 * (0 + 3) = 6.
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(6));
}

TEST(SumParser, FreeVariablesInTerm) {
  Database db;
  VarTable vars;
  auto term = parse_sum_term("2 * t + 1", &vars).value_or_die();
  const std::size_t t = static_cast<std::size_t>(vars.find("t"));
  EXPECT_EQ(term->eval(db, {{t, Rational(5)}}).value_or_die(), Rational(11));
  EXPECT_FALSE(term->eval(db, {}).is_ok());
}

TEST(SumParser, ParameterizedRange) {
  // END depends on a parameter bound at evaluation time.
  Database db;
  VarTable vars;
  auto term = parse_sum_term(
                  "sum[w in end(y : a <= y & y <= a + 1)](x : x = w)",
                  &vars)
                  .value_or_die();
  const std::size_t a = static_cast<std::size_t>(vars.find("a"));
  EXPECT_EQ(term->eval(db, {{a, Rational(10)}}).value_or_die(),
            Rational(21));  // 10 + 11
}

TEST(SumParser, Negation) {
  Database db;
  auto term =
      parse_sum_term("-sum[w in end(y : 0 <= y & y <= 4)](x : x = w)")
          .value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(-4));
}

TEST(SumParser, Errors) {
  EXPECT_FALSE(parse_sum_term("sum[w end(y : y = 0)](x : x = w)").is_ok());
  EXPECT_FALSE(parse_sum_term("sum[w in end(y : y = 0)](x : x = w) extra")
                   .is_ok());
  EXPECT_FALSE(parse_sum_term("sum[w in end(y : y = 0](x : x = w)").is_ok());
  EXPECT_FALSE(parse_sum_term("sum[in end(y : y = 0)](x : x = w)").is_ok());
  EXPECT_FALSE(parse_sum_term("1 +").is_ok());
  EXPECT_FALSE(parse_sum_term("").is_ok());
}

TEST(SumParser, CountKeyword) {
  Database db;
  CQA_CHECK(db.add_finite("U", 1, {pt({2}), pt({4}), pt({8})}).is_ok());
  auto term = parse_sum_term("count[w in end(y : U(y))]").value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(3));
  // Guarded count.
  auto term2 =
      parse_sum_term("count[w in end(y : U(y)) | w > 3]").value_or_die();
  EXPECT_EQ(term2->eval(db, {}).value_or_die(), Rational(2));
}

TEST(SumParser, AvgKeyword) {
  Database db;
  CQA_CHECK(db.add_finite("U", 1, {pt({1}), pt({2}), pt({6})}).is_ok());
  auto term =
      parse_sum_term("avg[w in end(y : U(y))](x : x = w)").value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(3));
  // AVG of an empty range is an error (division by zero count).
  auto empty = parse_sum_term("avg[w in end(y : U(y)) | w > 100](x : x = w)")
                   .value_or_die();
  EXPECT_FALSE(empty->eval(db, {}).is_ok());
}

TEST(SumParser, DivisionOperator) {
  Database db;
  auto term = parse_sum_term(
                  "sum[w in end(y : 0 <= y & y <= 6)](x : x = w) / "
                  "count[w2 in end(y2 : 0 <= y2 & y2 <= 6)]")
                  .value_or_die();
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(3));  // 6 / 2
  // Rational literal '1/2' still parses as a constant, not a division.
  auto lit = parse_sum_term("1/2 + 1/2").value_or_die();
  EXPECT_EQ(lit->eval(db, {}).value_or_die(), Rational(1));
  // Division by zero errors at evaluation.
  auto dz = parse_sum_term(
                "1 / sum[w in end(y : 0 <= y & y <= 1)](x : x = 0 - w + w)")
                .value_or_die();
  EXPECT_FALSE(dz->eval(db, {}).is_ok());
}

TEST(SumParser, UnsafeSumRejectedAtEval) {
  // gamma with an interval of solutions: determinism check fires.
  Database db;
  auto term = parse_sum_term(
                  "sum[w in end(y : 0 <= y & y <= 1)](x : x >= w)")
                  .value_or_die();
  EXPECT_FALSE(term->eval(db, {}).is_ok());
}


TEST(SumParser, MalformedInputIsStatusNotAbort) {
  // Every malformed spelling must come back as an invalid-argument
  // Status; none may trip an internal assertion.
  const char* kBad[] = {
      "",                                    // empty term
      "1 +",                                 // dangling operator
      "1 /",                                 // dangling division
      "(1 + 2",                              // unbalanced paren
      "sum",                                 // keyword with no body
      "sum[",                                // unterminated aggregate
      "sum[w",                               // missing 'in'
      "sum[w in",                            // missing end(...)
      "sum[w in end(",                       // unterminated end(...)
      "sum[w in end(y : U(y))",              // missing ']'
      "sum[w in end(y : U(y))]",             // sum without gamma
      "sum[w in end(y : U(y))](x",           // unterminated gamma
      "sum[w in end(y : U(y))](x : x = w",   // gamma missing ')'
      "count[w in end(y)]",                  // end(...) missing ':'
      "avg[in end(y : U(y))](x : x = 0)",    // missing range variable
      "3 @ 4",                               // stray token
  };
  for (const char* text : kBad) {
    auto r = parse_sum_term(text);
    EXPECT_FALSE(r.is_ok()) << "accepted: " << text;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "wrong code for: " << text;
  }
}

}  // namespace
}  // namespace cqa
