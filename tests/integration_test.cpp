// Cross-module integration property tests: end-to-end pipelines through
// the core facade, checking measure-theoretic and logical laws on
// randomized GIS-style databases.

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"
#include "cqa/volume/semilinear_volume.h"

namespace cqa {
namespace {

// Builds a database with two random bounded convex regions A and B.
ConstraintDatabase random_db(std::uint64_t seed) {
  Xoshiro rng(seed);
  ConstraintDatabase db;
  auto region = [&](const std::string& name) {
    // Random box plus a random half-plane cut, guaranteed nonempty.
    std::int64_t x0 = static_cast<std::int64_t>(rng.next() % 5);
    std::int64_t y0 = static_cast<std::int64_t>(rng.next() % 5);
    std::int64_t w = 1 + static_cast<std::int64_t>(rng.next() % 4);
    std::int64_t h = 1 + static_cast<std::int64_t>(rng.next() % 4);
    std::int64_t c = 1 + static_cast<std::int64_t>(rng.next() % 12);
    std::string f = std::to_string(x0) + " <= x & x <= " +
                    std::to_string(x0 + w) + " & " + std::to_string(y0) +
                    " <= y & y <= " + std::to_string(y0 + h) +
                    " & x + y <= " + std::to_string(c + x0 + y0);
    CQA_CHECK(db.add_region(name, {"x", "y"}, f).is_ok());
  };
  region("A");
  region("B");
  return db;
}

class IntegrationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntegrationProperty, Modularity) {
  // vol(A) + vol(B) == vol(A|B) + vol(A&B), end-to-end through the text
  // pipeline (parse -> inline -> QE -> cells -> exact volume).
  ConstraintDatabase db = random_db(GetParam());
  VolumeEngine vol(&db);
  auto va = *vol.volume("A(x, y)", {"x", "y"}).value_or_die().exact;
  auto vb = *vol.volume("B(x, y)", {"x", "y"}).value_or_die().exact;
  auto vu = *vol.volume("A(x, y) | B(x, y)", {"x", "y"})
                 .value_or_die()
                 .exact;
  auto vi = *vol.volume("A(x, y) & B(x, y)", {"x", "y"})
                 .value_or_die()
                 .exact;
  EXPECT_EQ(va + vb, vu + vi) << "seed " << GetParam();
}

TEST_P(IntegrationProperty, DifferenceDecomposition) {
  // vol(A) == vol(A & B) + vol(A & !B).
  ConstraintDatabase db = random_db(GetParam() ^ 0xAA);
  VolumeEngine vol(&db);
  auto va = *vol.volume("A(x, y)", {"x", "y"}).value_or_die().exact;
  auto vi = *vol.volume("A(x, y) & B(x, y)", {"x", "y"})
                 .value_or_die()
                 .exact;
  auto vd = *vol.volume("A(x, y) & !B(x, y)", {"x", "y"})
                 .value_or_die()
                 .exact;
  EXPECT_EQ(va, vi + vd) << "seed " << GetParam();
}

TEST_P(IntegrationProperty, AskConsistentWithVolume) {
  // The intersection is nonempty-with-interior iff its volume is > 0...
  // one direction always holds: positive volume implies a witness point.
  ConstraintDatabase db = random_db(GetParam() ^ 0xBB);
  QueryEngine q(&db);
  VolumeEngine vol(&db);
  auto vi = *vol.volume("A(x, y) & B(x, y)", {"x", "y"})
                 .value_or_die()
                 .exact;
  bool meets = q.ask("E x. E y. A(x, y) & B(x, y)").value_or_die();
  if (vi > Rational(0)) {
    EXPECT_TRUE(meets) << "seed " << GetParam();
  }
  if (!meets) {
    EXPECT_EQ(vi, Rational(0)) << "seed " << GetParam();
  }
}

TEST_P(IntegrationProperty, ProjectionConsistency) {
  // The x-extent of A computed by QE matches the 1-D measure of the
  // projection being at least as large as vol(A) / (y-extent).
  ConstraintDatabase db = random_db(GetParam() ^ 0xCC);
  QueryEngine q(&db);
  auto cells = q.cells("E y. A(x, y)", {"x"}).value_or_die();
  Rational proj_len = semilinear_volume(cells).value_or_die();
  VolumeEngine vol(&db);
  auto va = *vol.volume("A(x, y)", {"x", "y"}).value_or_die().exact;
  // A is contained in proj x [0, 9], so vol(A) <= 9 * proj_len.
  EXPECT_LE(va, Rational(9) * proj_len) << "seed " << GetParam();
  if (va > Rational(0)) {
    EXPECT_GT(proj_len, Rational(0));
  }
}

TEST_P(IntegrationProperty, MonteCarloBracketsExact) {
  ConstraintDatabase db = random_db(GetParam() ^ 0xDD);
  VolumeEngine vol(&db);
  VolumeOptions clip;
  clip.clip_to_unit_box = true;
  auto exact =
      *vol.volume("A(x, y)", {"x", "y"}, clip).value_or_die().exact;
  VolumeOptions mc;
  mc.strategy = VolumeStrategy::kMonteCarlo;
  mc.epsilon = 0.05;
  mc.vc_dim = 4.0;
  mc.seed = GetParam();
  auto est = vol.volume("A(x, y)", {"x", "y"}, mc).value_or_die();
  EXPECT_NEAR(*est.estimate, exact.to_double(), 0.05)
      << "seed " << GetParam();
}

TEST_P(IntegrationProperty, GroupByTotalsMatchUngrouped) {
  // Sum over groups == ungrouped sum.
  Xoshiro rng(GetParam() ^ 0xEE);
  ConstraintDatabase db;
  std::vector<std::vector<std::int64_t>> rows;
  for (int i = 0; i < 12; ++i) {
    rows.push_back({static_cast<std::int64_t>(rng.next() % 3),
                    static_cast<std::int64_t>(rng.next() % 100)});
  }
  CQA_CHECK(db.add_table("T", rows).is_ok());
  AggregationEngine agg(&db);
  auto grouped =
      agg.group_by(AggregateFn::kSum, "T(g, v)", "g", "v").value_or_die();
  Rational group_total;
  for (const auto& [g, s] : grouped) group_total += s;
  Rational flat = agg.aggregate(AggregateFn::kSum, "E g. T(g, v)", "v")
                      .value_or_die();
  // Distinct-value semantics: the flat SUM is over distinct v values; the
  // grouped sum counts v per group. They agree when no value collides
  // across or within groups; compare against a direct computation instead.
  Rational direct;
  {
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for (const auto& r : rows) seen.insert({r[0], r[1]});
    for (const auto& [g, v] : seen) direct += Rational(v);
  }
  EXPECT_EQ(group_total, direct) << "seed " << GetParam();
  // And the flat distinct-value sum is bounded by the grouped total.
  EXPECT_LE(flat, group_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cqa
