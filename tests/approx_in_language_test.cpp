#include <gtest/gtest.h>

#include <cmath>

#include "cqa/approx/monte_carlo.h"
#include "cqa/logic/parser.h"

namespace cqa {
namespace {

TEST(FromDouble, ExactDyadics) {
  EXPECT_EQ(Rational::from_double(0.5).value_or_die(), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(-0.75).value_or_die(), Rational(-3, 4));
  EXPECT_EQ(Rational::from_double(3.0).value_or_die(), Rational(3));
  EXPECT_EQ(Rational::from_double(0.0).value_or_die(), Rational(0));
  // Round-trips exactly for any finite double.
  for (double v : {0.1, 1.0 / 3.0, 1e-17, 12345.6789, -2.5e10}) {
    Rational q = Rational::from_double(v).value_or_die();
    EXPECT_DOUBLE_EQ(q.to_double(), v);
  }
  EXPECT_FALSE(Rational::from_double(std::nan("")).is_ok());
  EXPECT_FALSE(Rational::from_double(1.0 / 0.0).is_ok());
}

TEST(McInLanguage, TriangleVolume) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("0 <= x & 0 <= y & x + y <= 1", &vars)
                 .value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  Rational frac =
      mc_volume_in_language(&db, phi, {x, y}, {}, 400, 77).value_or_die();
  EXPECT_NEAR(frac.to_double(), 0.5, 0.08);
  // The sample relation was materialized in the database.
  EXPECT_TRUE(db.has_relation("McSample"));
  EXPECT_EQ(db.tuples_of("McSample").value_or_die().size(), 400u);
}

TEST(McInLanguage, PolynomialDiskExactCounting) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= 1", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  Rational frac =
      mc_volume_in_language(&db, phi, {x, y}, {}, 300, 13).value_or_die();
  EXPECT_NEAR(frac.to_double(), M_PI / 4.0, 0.1);
  // The fraction is an exact rational with denominator dividing M.
  EXPECT_TRUE((Rational(300) * frac).is_integer());
}

TEST(McInLanguage, ParameterizedFamily) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("0 <= x & x <= a & 0 <= y & y <= 1", &vars)
                 .value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  std::size_t y = static_cast<std::size_t>(vars.find("y"));
  std::size_t a = static_cast<std::size_t>(vars.find("a"));
  Rational frac = mc_volume_in_language(&db, phi, {x, y},
                                        {{a, Rational(1, 4)}}, 400, 5)
                      .value_or_die();
  EXPECT_NEAR(frac.to_double(), 0.25, 0.07);
  // Fresh relation names for repeated invocations.
  Rational frac2 = mc_volume_in_language(&db, phi, {x, y},
                                         {{a, Rational(3, 4)}}, 400, 6)
                       .value_or_die();
  EXPECT_NEAR(frac2.to_double(), 0.75, 0.07);
  EXPECT_TRUE(db.has_relation("McSample"));
  EXPECT_TRUE(db.has_relation("McSample0"));
}

TEST(McInLanguage, UnassignedParameterRejected) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("0 <= x & x <= a", &vars).value_or_die();
  std::size_t x = static_cast<std::size_t>(vars.find("x"));
  EXPECT_FALSE(mc_volume_in_language(&db, phi, {x}, {}, 50, 1).is_ok());
}

TEST(McInLanguage, AgreesWithDoubleEstimator) {
  // Same region, comparable estimates (different samplers, so only
  // statistical agreement).
  Database db;
  VarTable vars;
  auto phi = parse_formula("y <= x^2", &vars).value_or_die();
  std::size_t vx = static_cast<std::size_t>(vars.find("x"));
  std::size_t vy = static_cast<std::size_t>(vars.find("y"));
  Rational in_lang =
      mc_volume_in_language(&db, phi, {vx, vy}, {}, 500, 21).value_or_die();
  McVolumeEstimator est(&db, phi, {vx, vy}, 20000, 22);
  double fast = est.estimate({}).value_or_die();
  EXPECT_NEAR(in_lang.to_double(), fast, 0.08);
  EXPECT_NEAR(fast, 1.0 / 3.0, 0.02);
}

}  // namespace
}  // namespace cqa
