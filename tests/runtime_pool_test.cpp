#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cqa/guard/fault.h"
#include "cqa/runtime/thread_pool.h"

namespace cqa {
namespace {

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(1013);
  pool.parallel_for(0, seen.size(), 7,
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        seen[i].fetch_add(1);
                      }
                    });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 1,
                    [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 37) {
                            throw std::runtime_error("chunk failed");
                          }
                        }),
      std::runtime_error);
  // The pool is reusable after a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1,
                    [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 100, 10,
                        [&](std::size_t a, std::size_t b) {
                          total.fetch_add(static_cast<int>(b - a));
                        });
    }
  });
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, ParallelForFromSubmittedTask) {
  // A worker issuing its own parallel_for must not deadlock even when
  // every other worker is busy.
  ThreadPool pool(1);
  auto f = pool.submit([&pool] {
    std::atomic<int> n{0};
    pool.parallel_for(0, 64, 4,
                      [&](std::size_t lo, std::size_t hi) {
                        n.fetch_add(static_cast<int>(hi - lo));
                      });
    return n.load();
  });
  EXPECT_EQ(f.get(), 64);
}

TEST(ThreadPool, ManyConcurrentParallelFors) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.submit([&pool] {
      std::atomic<int> n{0};
      pool.parallel_for(0, 1000, 13,
                        [&](std::size_t lo, std::size_t hi) {
                          n.fetch_add(static_cast<int>(hi - lo));
                        });
      return n.load();
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), 1000);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, InjectedWorkerThrowDoesNotTerminateWorkers) {
  // kWorkerThrow at rate 1.0 makes every raw task throw *before* it
  // runs -- the exact failure that used to escape worker_loop and
  // std::terminate the process. The pool must capture it, count it,
  // and keep its workers alive.
  ThreadPool pool(2);
  {
    guard::FaultPlan plan;
    plan.rate[static_cast<std::size_t>(guard::FaultSite::kWorkerThrow)] =
        1.0;
    guard::FaultInjector injector(plan);
    guard::ScopedFaultInjector scope(&injector);
    // The injected throw preempts the packaged_task wrapper, so the
    // future's promise is abandoned: get() reports broken_promise
    // (a loud, typed failure) instead of blocking or crashing. get()
    // also synchronizes: the worker has processed the task before the
    // injector is uninstalled below.
    auto f = pool.submit([] { return 7; });
    EXPECT_THROW(f.get(), std::future_error);
    EXPECT_GT(injector.fired(guard::FaultSite::kWorkerThrow), 0u);
  }
  EXPECT_GT(pool.task_failures(), 0u);

  // The captured exception surfaces as a typed Status, exactly once.
  Status drained = pool.drain_error();
  EXPECT_FALSE(drained.is_ok());
  EXPECT_EQ(drained.code(), StatusCode::kInternal);
  EXPECT_NE(drained.message().find("worker task threw"),
            std::string::npos);
  EXPECT_TRUE(pool.drain_error().is_ok());

  // Workers survived: the pool still runs work with the injector gone.
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPool, DrainErrorEmptyIsOk) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.drain_error().is_ok());
  EXPECT_EQ(pool.task_failures(), 0u);
}

}  // namespace
}  // namespace cqa
