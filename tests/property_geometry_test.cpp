// Property tests for the polytope geometry layer: random hulls, vertex
// extremality, volume laws, containment sampling.

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/geometry/hull2d.h"
#include "cqa/geometry/polytope_volume.h"
#include "cqa/geometry/vertex_enum.h"

namespace cqa {
namespace {

class GeometryProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<RVec> random_points(Xoshiro* rng, std::size_t dim,
                                std::size_t count) {
  std::vector<RVec> pts;
  for (std::size_t i = 0; i < count; ++i) {
    RVec p(dim);
    for (auto& c : p) {
      c = Rational(static_cast<std::int64_t>(rng->next() % 21) - 10,
                   1 + static_cast<std::int64_t>(rng->next() % 3));
    }
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST_P(GeometryProperty, HullContainsGeneratorsAndMixtures) {
  Xoshiro rng(GetParam());
  for (std::size_t dim : {2u, 3u}) {
    auto pts = random_points(&rng, dim, dim + 4);
    auto hull = Polyhedron::hull_of(pts);
    if (!hull.is_ok()) continue;  // degenerate draw
    for (const auto& p : pts) {
      EXPECT_TRUE(hull.value().contains(p));
    }
    // Random convex combinations stay inside.
    for (int trial = 0; trial < 5; ++trial) {
      const RVec& a = pts[rng.next() % pts.size()];
      const RVec& b = pts[rng.next() % pts.size()];
      Rational t(static_cast<std::int64_t>(rng.next() % 5), 4);
      if (t > Rational(1)) t = Rational(1);
      RVec mix = vec_add(vec_scale(t, a),
                         vec_scale(Rational(1) - t, b));
      EXPECT_TRUE(hull.value().contains(mix));
    }
  }
}

TEST_P(GeometryProperty, VerticesAreExtreme) {
  Xoshiro rng(GetParam() ^ 0x10);
  auto pts = random_points(&rng, 2, 7);
  auto hull = Polyhedron::hull_of(pts);
  if (!hull.is_ok()) return;
  auto vertices = enumerate_vertices(hull.value());
  for (const auto& v : vertices) {
    // No vertex is the midpoint of two other vertices.
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      for (std::size_t j = i + 1; j < vertices.size(); ++j) {
        if (vertices[i] == v || vertices[j] == v) continue;
        RVec mid = vec_scale(Rational(1, 2),
                             vec_add(vertices[i], vertices[j]));
        EXPECT_NE(mid, v);
      }
    }
  }
}

TEST_P(GeometryProperty, HullVolumeMatches2dShoelace) {
  Xoshiro rng(GetParam() ^ 0x20);
  auto pts = random_points(&rng, 2, 6);
  auto hull = Polyhedron::hull_of(pts);
  if (!hull.is_ok()) return;
  // Lasserre volume vs 2-D shoelace on the ordered hull.
  std::vector<Point2> p2;
  for (const auto& p : pts) p2.push_back(Point2{p[0], p[1]});
  Rational shoelace = polygon_area(convex_hull(p2));
  EXPECT_EQ(polytope_volume(hull.value()).value_or_die(), shoelace);
}

TEST_P(GeometryProperty, VolumeMonotoneUnderConstraintAddition) {
  Xoshiro rng(GetParam() ^ 0x30);
  Polyhedron box = Polyhedron::box(2, Rational(-3), Rational(3));
  Rational before = polytope_volume(box).value_or_die();
  Polyhedron cut = box;
  LinearConstraint c;
  c.coeffs = {Rational(static_cast<std::int64_t>(rng.next() % 5) - 2),
              Rational(static_cast<std::int64_t>(rng.next() % 5) - 2)};
  c.rhs = Rational(static_cast<std::int64_t>(rng.next() % 9) - 4);
  c.cmp = LinCmp::kLe;
  cut.add_constraint(c);
  auto after = polytope_volume(cut);
  ASSERT_TRUE(after.is_ok());
  EXPECT_LE(after.value(), before);
}

TEST_P(GeometryProperty, SimplexVolumeMatchesHRep) {
  Xoshiro rng(GetParam() ^ 0x40);
  // Random nondegenerate simplex in 2-D/3-D: |det|/d! == Lasserre.
  for (std::size_t dim : {2u, 3u}) {
    auto pts = random_points(&rng, dim, dim + 1);
    if (affine_hull_dim(pts) != static_cast<int>(dim)) continue;
    Rational direct = simplex_volume(pts);
    auto hull = Polyhedron::hull_of(pts);
    ASSERT_TRUE(hull.is_ok());
    EXPECT_EQ(polytope_volume(hull.value()).value_or_die(), direct);
  }
}

TEST_P(GeometryProperty, ContainmentMatchesSampledMembership) {
  Xoshiro rng(GetParam() ^ 0x50);
  auto pts = random_points(&rng, 2, 6);
  auto hull = Polyhedron::hull_of(pts);
  if (!hull.is_ok()) return;
  std::vector<Point2> p2;
  for (const auto& p : pts) p2.push_back(Point2{p[0], p[1]});
  auto chain = convex_hull(p2);
  // H-rep membership agrees with the 2-D orientation test everywhere.
  for (int trial = 0; trial < 20; ++trial) {
    Point2 q{Rational(static_cast<std::int64_t>(rng.next() % 29) - 14, 2),
             Rational(static_cast<std::int64_t>(rng.next() % 29) - 14, 2)};
    EXPECT_EQ(hull.value().contains({q.x, q.y}),
              convex_contains(chain, q))
        << q.x.to_string() << "," << q.y.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace cqa
