#include "cqa/poly/univariate.h"

#include <gtest/gtest.h>

#include "cqa/poly/interpolation.h"

namespace cqa {
namespace {

UPoly up(std::vector<std::int64_t> coeffs) {
  std::vector<Rational> c;
  for (auto v : coeffs) c.emplace_back(v);
  return UPoly(std::move(c));
}

TEST(UPoly, Basics) {
  UPoly z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  UPoly p = up({1, 2, 3});  // 3x^2 + 2x + 1
  EXPECT_EQ(p.degree(), 2);
  EXPECT_EQ(p.lead(), Rational(3));
  EXPECT_EQ(p.coeff(0), Rational(1));
  EXPECT_EQ(p.coeff(7), Rational(0));
  EXPECT_EQ(p.eval(Rational(2)), Rational(17));
  EXPECT_DOUBLE_EQ(p.eval_double(2.0), 17.0);
  EXPECT_EQ(UPoly({Rational(0), Rational(0)}).degree(), -1);
}

TEST(UPoly, Arithmetic) {
  UPoly p = up({1, 1});   // x + 1
  UPoly q = up({-1, 1});  // x - 1
  EXPECT_EQ(p * q, up({-1, 0, 1}));
  EXPECT_EQ(p + q, up({0, 2}));
  EXPECT_EQ(p - p, UPoly());
  EXPECT_EQ(-p, up({-1, -1}));
  EXPECT_EQ(p * Rational(2), up({2, 2}));
}

TEST(UPoly, DivMod) {
  UPoly p = up({-1, 0, 0, 1});  // x^3 - 1
  UPoly d = up({-1, 1});        // x - 1
  UPoly::DivMod dm = p.divmod(d);
  EXPECT_EQ(dm.quot, up({1, 1, 1}));
  EXPECT_TRUE(dm.rem.is_zero());

  UPoly p2 = up({1, 0, 1});  // x^2 + 1
  auto [q, r] = p2.divmod(d);
  EXPECT_EQ(q * d + r, p2);
  EXPECT_LT(r.degree(), d.degree());
}

TEST(UPoly, Gcd) {
  UPoly a = up({-1, 0, 1});       // (x-1)(x+1)
  UPoly b = up({-1, 1}) * up({2, 1});  // (x-1)(x+2)
  EXPECT_EQ(UPoly::gcd(a, b), up({-1, 1}));
  EXPECT_EQ(UPoly::gcd(a, UPoly()), a.monic());
  EXPECT_EQ(UPoly::gcd(UPoly(), UPoly()), UPoly());
  // Coprime.
  EXPECT_EQ(UPoly::gcd(up({1, 1}), up({2, 1})).degree(), 0);
}

TEST(UPoly, SquareFreePart) {
  UPoly p = up({-1, 1});        // x-1
  UPoly sq = p * p * up({3, 1});  // (x-1)^2 (x+3)
  UPoly sf = sq.square_free_part();
  EXPECT_EQ(sf, (p * up({3, 1})).monic());
  EXPECT_EQ(up({5}).square_free_part(), up({1}));
}

TEST(UPoly, DerivativeAntiderivative) {
  UPoly p = up({1, 2, 3});  // 3x^2 + 2x + 1
  EXPECT_EQ(p.derivative(), up({2, 6}));
  UPoly anti = p.antiderivative();
  EXPECT_EQ(anti.derivative(), p);
  EXPECT_EQ(p.integrate(Rational(0), Rational(1)),
            Rational(1) + Rational(1) + Rational(1));  // x^3+x^2+x at 1
  EXPECT_EQ(p.integrate(Rational(1), Rational(1)), Rational(0));
  EXPECT_EQ(p.integrate(Rational(1), Rational(0)), Rational(-3));
}

TEST(UPoly, SignsAtInfinity) {
  EXPECT_EQ(up({0, 1}).sign_at_pos_inf(), 1);
  EXPECT_EQ(up({0, 1}).sign_at_neg_inf(), -1);
  EXPECT_EQ(up({0, 0, 1}).sign_at_neg_inf(), 1);
  EXPECT_EQ(up({0, 0, -1}).sign_at_neg_inf(), -1);
  EXPECT_EQ(UPoly().sign_at_pos_inf(), 0);
}

TEST(UPoly, Compose) {
  UPoly p = up({0, 0, 1});  // x^2
  UPoly g = up({1, 1});     // x+1
  EXPECT_EQ(p.compose(g), up({1, 2, 1}));
}

TEST(UPoly, FromToPolynomial) {
  Polynomial x1 = Polynomial::variable(1);
  Polynomial p = x1.pow(2) * Rational(3) + x1 - Polynomial::constant(Rational(2));
  UPoly u = UPoly::from_polynomial(p, 1);
  EXPECT_EQ(u, up({-2, 1, 3}));
  EXPECT_EQ(u.to_polynomial(1), p);
}

TEST(Sturm, CountRealRoots) {
  // (x-1)(x-2)(x-3)
  UPoly p = up({-1, 1}) * up({-2, 1}) * up({-3, 1});
  SturmSequence s(p);
  EXPECT_EQ(s.count_real_roots(), 3);
  EXPECT_EQ(s.count_roots(Rational(0), Rational(10)), 3);
  EXPECT_EQ(s.count_roots(Rational(1), Rational(2)), 1);   // (1,2] ∋ 2
  EXPECT_EQ(s.count_roots(Rational(0), Rational(1)), 1);   // (0,1] ∋ 1
  EXPECT_EQ(s.count_roots(Rational(3, 2), Rational(5, 2)), 1);
  EXPECT_EQ(s.count_roots_above(Rational(5, 2)), 1);
}

TEST(Sturm, NoRealRoots) {
  UPoly p = up({1, 0, 1});  // x^2 + 1
  SturmSequence s(p);
  EXPECT_EQ(s.count_real_roots(), 0);
}

TEST(Sturm, RepeatedRootsCountedOnce) {
  UPoly p = up({-1, 1});
  UPoly sq = p * p;  // (x-1)^2
  SturmSequence s(sq);
  EXPECT_EQ(s.count_real_roots(), 1);
}

TEST(Sturm, CauchyBound) {
  UPoly p = up({-6, 11, -6, 1});  // roots 1,2,3
  Rational b = cauchy_root_bound(p);
  EXPECT_GT(b, Rational(3));
  SturmSequence s(p);
  EXPECT_EQ(s.count_roots(-b, b), 3);
}

TEST(Interpolation, ExactQuadratic) {
  // y = x^2/2 through three points.
  std::vector<std::pair<Rational, Rational>> pts = {
      {Rational(0), Rational(0)},
      {Rational(1), Rational(1, 2)},
      {Rational(2), Rational(2)},
  };
  UPoly p = interpolate(pts);
  EXPECT_EQ(p, UPoly({Rational(0), Rational(0), Rational(1, 2)}));
}

TEST(Interpolation, DegreeLessThanPoints) {
  // Constant through 4 points.
  std::vector<std::pair<Rational, Rational>> pts;
  for (int i = 0; i < 4; ++i) pts.push_back({Rational(i), Rational(7)});
  EXPECT_EQ(interpolate(pts), UPoly::constant(Rational(7)));
}

TEST(Interpolation, SamplePoints) {
  auto pts = sample_points(Rational(0), Rational(1), 3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0], Rational(1, 4));
  EXPECT_EQ(pts[1], Rational(1, 2));
  EXPECT_EQ(pts[2], Rational(3, 4));
  for (const auto& p : pts) {
    EXPECT_GT(p, Rational(0));
    EXPECT_LT(p, Rational(1));
  }
}

TEST(Interpolation, RoundTripRandomCubic) {
  UPoly p = up({3, -2, 0, 5});
  std::vector<std::pair<Rational, Rational>> pts;
  for (int i = -2; i <= 1; ++i) pts.push_back({Rational(i), p.eval(Rational(i))});
  EXPECT_EQ(interpolate(pts), p);
}

}  // namespace
}  // namespace cqa
