// Survival tests for cqa::served under a hostile network: the
// hung-worker watchdog (SIGSTOP drill), the retrying client's edge
// semantics (timeout-while-waiting vs. expiry-mid-frame, clean-EOF
// auto-retry, the non-idempotent exclusion, connect timeouts), the
// in-process ChaosSocket seam, and the headline acceptance drill --
// mixed traffic through a seeded ChaosProxy with a SIGSTOP and a
// SIGKILL thrown in, where every reply must be correct, a typed
// retryable error, or certified degraded with the honest guard flag.
//
// Run with the 240s TSan timeout class: fleets fork, watchdog budgets
// are real wall-clock waits, and the chaos drill pushes dozens of
// round trips through a fault gauntlet.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cqa/runtime/session.h"
#include "cqa/served/chaos.h"
#include "cqa/served/client.h"
#include "cqa/served/server.h"
#include "cqa/served/wire.h"
#include "cqa/util/bincode.h"
#include "cqa/util/cancellation.h"
#include "gtest/gtest.h"

namespace cqa {
namespace {

std::string tmp_name(const char* stem) {
  return std::string("/tmp/cqa_survival_test.") + std::to_string(getpid()) +
         "." + stem;
}

served::Client must_connect(const std::string& sock,
                            served::ClientOptions copts = {}) {
  auto connected = served::Client::connect_unix(sock, copts);
  CQA_CHECK(connected.is_ok());
  return std::move(connected).take();
}

// A Monte-Carlo request expensive enough (~10^5 samples) to still be in
// flight when the test SIGSTOPs its shard.
Request slow_mc(std::uint64_t seed) {
  return Request::volume("x^2 + y^2 + x*y <= 4/5")
      .vars({"x", "y"})
      .strategy(VolumeStrategy::kMonteCarlo)
      .epsilon(0.001)
      .vc_dim(3.0)
      .seed(seed)
      .build();
}

// ------------------------------------------------------------- watchdog

TEST(ServedSurvival, WatchdogKillsSigstoppedWorkerAndRespawns) {
  served::ServedOptions options;
  options.workers = 2;
  options.unix_path = tmp_name("sigstop.sock");
  options.watchdog_budget_ms = 800;
  options.watchdog_interval_ms = 50;
  options.term_grace_ms = 100;
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  std::uint64_t hung_answers = 0;
  std::uint64_t seed = 1;
  const std::size_t victim = server.shard_of(slow_mc(seed));
  for (int attempt = 0; attempt < 3 && hung_answers == 0; ++attempt) {
    std::vector<Request> batch;
    while (batch.size() < 4) {
      Request r = slow_mc(seed++);
      if (server.shard_of(r) == victim) batch.push_back(std::move(r));
    }
    const pid_t old_pid = server.worker_pid(victim);
    std::atomic<std::uint64_t> hung{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::vector<std::thread> threads;
    for (const Request& r : batch) {
      threads.emplace_back([&, r] {
        served::Client client = must_connect(options.unix_path);
        auto a = client.call(r, /*timeout_ms=*/60000);
        if (!a.is_ok()) {
          if (a.status().code() == StatusCode::kDeadlineExceeded) {
            timed_out.fetch_add(1);
          }
          return;
        }
        if (a.value().guard.worker_hung) {
          hung.fetch_add(1);
          // Honest degradation: certified trivial-1/2, [0, 1] bars,
          // flagged degraded, and the flag names the watchdog path --
          // never worker_crashed, never a made-up answer.
          EXPECT_TRUE(a.value().degraded());
          EXPECT_LE(a.value().volume.lower.value_or(1.0), 0.0);
          EXPECT_GE(a.value().volume.upper.value_or(0.0), 1.0);
          EXPECT_FALSE(a.value().guard.shed);
          EXPECT_FALSE(a.value().guard.worker_crashed);
        }
      });
    }
    // Let the batch land in the victim's queue, then freeze the worker:
    // no corpse for the supervisor to see, only a flat heartbeat.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kill(old_pid, SIGSTOP);
    for (auto& th : threads) th.join();
    EXPECT_EQ(timed_out.load(), 0u) << "a client hung past the watchdog";
    hung_answers += hung.load();

    // The watchdog escalated (SIGTERM cannot wake a stopped process;
    // SIGKILL did) and the supervisor respawned the shard.
    for (int i = 0; i < 400 && server.worker_pid(victim) == old_pid; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_NE(server.worker_pid(victim), old_pid);
  }
  EXPECT_GT(hung_answers, 0u)
      << "the SIGSTOP never caught a request in flight";
  EXPECT_GE(server.stats().hung_kills, 1u);
  EXPECT_GE(server.stats().hung_degraded, hung_answers);
  EXPECT_GE(server.stats().respawns, 1u);

  // The healed shard serves again at full fidelity.
  served::Client client = must_connect(options.unix_path);
  auto healed = client.call(slow_mc(seed + 100), /*timeout_ms=*/60000);
  ASSERT_TRUE(healed.is_ok());

  server.stop();
  unlink(options.unix_path.c_str());
}

TEST(ServedSurvival, WatchdogSparesSlowButLiveWork) {
  // A budget far above the request latency: the watchdog must never
  // confuse slow with wedged.
  served::ServedOptions options;
  options.workers = 1;
  options.unix_path = tmp_name("spare.sock");
  options.watchdog_budget_ms = 120000;
  options.watchdog_interval_ms = 50;
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());
  served::Client client = must_connect(options.unix_path);
  auto a = client.call(slow_mc(3), /*timeout_ms=*/60000);
  ASSERT_TRUE(a.is_ok());
  EXPECT_FALSE(a.value().guard.worker_hung);
  EXPECT_EQ(server.stats().hung_kills, 0u);
  EXPECT_EQ(server.stats().respawns, 0u);
  server.stop();
  unlink(options.unix_path.c_str());
}

// ------------------------------------------------- client edge semantics

/// A scripted wire peer on a unix socket: accepts connections serially
/// and hands each raw fd to the test's handler.
class FakeServer {
 public:
  FakeServer(std::string path, std::function<void(int)> handler)
      : path_(std::move(path)), handler_(std::move(handler)) {
    unlink(path_.c_str());
    listener_ = socket(AF_UNIX, SOCK_STREAM, 0);
    CQA_CHECK(listener_ >= 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CQA_CHECK(path_.size() < sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    CQA_CHECK(bind(listener_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0);
    CQA_CHECK(listen(listener_, 8) == 0);
    thread_ = std::thread([this] {
      for (;;) {
        const int fd = accept(listener_, nullptr, nullptr);
        if (fd < 0) return;
        handler_(fd);
        close(fd);
      }
    });
  }
  ~FakeServer() {
    shutdown(listener_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    close(listener_);
    unlink(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::function<void(int)> handler_;
  int listener_ = -1;
  std::thread thread_;
};

std::string ask_answer(bool truth) {
  Answer a;
  a.kind = RequestKind::kAsk;
  a.truth = truth;
  return served::encode_answer(Result<Answer>(std::move(a)), nullptr);
}

Request ask_request() { return Request::ask("E x. x = 1").build(); }

TEST(ServedSurvival, TimeoutWhileWaitingKeepsConnectionDiscardsStaleAnswer) {
  FakeServer fake(tmp_name("stale.sock"), [](int fd) {
    // First request: answer far too late. Second: answer promptly.
    served::Frame f1;
    if (!served::read_frame(fd, &f1).is_ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    (void)served::write_frame(fd, served::MsgType::kAnswer, f1.id,
                              ask_answer(false));
    served::Frame f2;
    if (!served::read_frame(fd, &f2).is_ok()) return;
    (void)served::write_frame(fd, served::MsgType::kAnswer, f2.id,
                              ask_answer(true));
    served::Frame eof;
    (void)served::read_frame(fd, &eof);
  });
  served::Client client = must_connect(fake.path());

  // Expiry hits while *waiting*, with no frame bytes consumed: the call
  // fails typed, but the connection stays usable.
  auto late = client.call(ask_request(), /*timeout_ms=*/250);
  ASSERT_FALSE(late.is_ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(client.connected());

  // The next call reuses the connection; the stale id-1 answer (truth =
  // false) is discarded and the fresh id-2 answer (truth = true) lands.
  auto fresh = client.call(ask_request(), /*timeout_ms=*/5000);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value().truth, std::optional<bool>(true));
  EXPECT_EQ(client.retry_stats().reconnects, 0u);
}

TEST(ServedSurvival, ExpiryMidFramePoisonsConnectionNextCallReconnects) {
  std::atomic<int> conns{0};
  FakeServer fake(tmp_name("midframe.sock"), [&](int fd) {
    served::Frame f;
    if (!served::read_frame(fd, &f).is_ok()) return;
    if (conns.fetch_add(1) == 0) {
      // Answer a 100-byte frame... then stall after 4 body bytes. The
      // client's bounded read expires mid-frame: unsynchronized stream.
      std::string head;
      bincode::put_u32(&head, 100);
      bincode::put_u64(&head, 0);  // checksum never checked: body torn
      head += "abcd";
      (void)send(fd, head.data(), head.size(), MSG_NOSIGNAL);
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      return;
    }
    (void)served::write_frame(fd, served::MsgType::kAnswer, f.id,
                              ask_answer(true));
  });
  served::Client client = must_connect(fake.path());
  auto torn = client.call(ask_request(), /*timeout_ms=*/250);
  ASSERT_FALSE(torn.is_ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(client.connected()) << "mid-frame expiry must poison";

  auto fresh = client.call(ask_request(), /*timeout_ms=*/5000);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value().truth, std::optional<bool>(true));
  EXPECT_GE(client.retry_stats().reconnects, 1u);
}

TEST(ServedSurvival, CleanEofAutoRetriesIdempotentRequests) {
  std::atomic<int> conns{0};
  FakeServer fake(tmp_name("eof.sock"), [&](int fd) {
    served::Frame f;
    if (!served::read_frame(fd, &f).is_ok()) return;
    if (conns.fetch_add(1) == 0) {
      // Read the request, answer nothing, close: the client sees a
      // clean FIN before any answer byte. (Closing with the request
      // still unread would send RST -- a different failure.)
      return;
    }
    (void)served::write_frame(fd, served::MsgType::kAnswer, f.id,
                              ask_answer(true));
  });
  served::ClientOptions copts;
  copts.backoff_base_ms = 1;
  copts.backoff_cap_ms = 5;
  served::Client client = must_connect(fake.path(), copts);
  // One logical call: the first attempt dies on EOF, the retry
  // reconnects and succeeds -- invisible to the caller.
  auto a = client.call(ask_request(), /*timeout_ms=*/5000);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().truth, std::optional<bool>(true));
  EXPECT_GE(client.retry_stats().retries, 1u);
  EXPECT_GE(client.retry_stats().reconnects, 1u);
}

TEST(ServedSurvival, NonIdempotentRequestsNeverAutoRetry) {
  std::atomic<int> conns{0};
  FakeServer fake(tmp_name("nonidem.sock"), [&](int fd) {
    conns.fetch_add(1);
    served::Frame f;
    (void)served::read_frame(fd, &f);  // read the request, then drop
  });
  served::Client client = must_connect(fake.path());
  CancelToken token;
  Request r = Request::ask("E x. x = 1").cancel(&token).build();
  auto a = client.call(r, /*timeout_ms=*/5000);
  ASSERT_FALSE(a.is_ok());
  EXPECT_EQ(client.retry_stats().retries, 0u)
      << "a cancel-bearing request must not be silently re-issued";
  EXPECT_EQ(conns.load(), 1);
}

TEST(ServedSurvival, ConnectTcpTimesOutInsteadOfHanging) {
  // A listener that never accepts, with its backlog pre-filled: further
  // SYNs get no answer, the classic black-holed-host shape.
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)), 0);
  ASSERT_EQ(listen(listener, 1), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len);
  const std::uint16_t port = ntohs(bound.sin_port);
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    timeval tv{};
    tv.tv_usec = 50 * 1000;
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    (void)connect(fd, reinterpret_cast<sockaddr*>(&bound), sizeof(bound));
    fillers.push_back(fd);
  }

  served::ClientOptions copts;
  copts.connect_timeout_ms = 300;
  copts.max_attempts = 1;
  const auto t0 = std::chrono::steady_clock::now();
  auto client = served::Client::connect_tcp("127.0.0.1", port, copts);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5000) << "connect timeout did not bound the dial";

  for (int fd : fillers) close(fd);
  close(listener);
}

// ------------------------------------------------------ ChaosSocket seam

std::string raw_frame(const std::string& payload) {
  std::string body;
  bincode::put_u8(&body, served::kWireVersion);
  bincode::put_u8(&body,
                  static_cast<std::uint8_t>(served::MsgType::kPing));
  bincode::put_u64(&body, 9);
  body += payload;
  std::string buf;
  bincode::put_u32(&buf, static_cast<std::uint32_t>(body.size()));
  bincode::put_u64(&buf, served::frame_checksum(body));
  buf += body;
  return buf;
}

guard::FaultPlan one_site_plan(guard::FaultSite site) {
  guard::FaultPlan plan;
  plan.seed = 11;
  plan.rate[static_cast<std::size_t>(site)] = 1.0;
  return plan;
}

TEST(ChaosSocket, BitFlipIsDetectedNeverDecoded) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  guard::FaultInjector injector(
      one_site_plan(guard::FaultSite::kWireBitFlip));
  served::ChaosSocket chaos(fds[0], &injector);
  EXPECT_TRUE(chaos.send(raw_frame("some ping payload")).is_ok());
  close(fds[0]);  // EOF after the corrupt frame: reads cannot hang
  served::Frame frame;
  Status s = served::read_frame(fds[1], &frame);
  // The flip may land in the body (checksum mismatch) or the header
  // (bad length / truncation) -- either way a typed error, never a
  // silently decoded frame.
  ASSERT_FALSE(s.is_ok());
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument ||
              s.code() == StatusCode::kInternal)
      << s.to_string();
  EXPECT_EQ(injector.fired(guard::FaultSite::kWireBitFlip), 1u);
  close(fds[1]);
}

TEST(ChaosSocket, TornFrameIsMidFrameInternal) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  guard::FaultInjector injector(
      one_site_plan(guard::FaultSite::kWireTornFrame));
  served::ChaosSocket chaos(fds[0], &injector);
  EXPECT_FALSE(chaos.send(raw_frame("payload that gets cut")).is_ok());
  served::Frame frame;
  EXPECT_EQ(served::read_frame(fds[1], &frame).code(),
            StatusCode::kInternal);
  close(fds[0]);
  close(fds[1]);
}

TEST(ChaosSocket, DisconnectIsCleanEof) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  guard::FaultInjector injector(
      one_site_plan(guard::FaultSite::kWireDisconnect));
  served::ChaosSocket chaos(fds[0], &injector);
  EXPECT_FALSE(chaos.send(raw_frame("never sent")).is_ok());
  served::Frame frame;
  EXPECT_EQ(served::read_frame(fds[1], &frame).code(),
            StatusCode::kCancelled);
  close(fds[0]);
  close(fds[1]);
}

// ------------------------------------------------- the acceptance drill

TEST(ServedSurvival, ChaosProxyDrillProducesZeroDishonestAnswers) {
  served::ServedOptions options;
  options.workers = 3;
  options.unix_path = tmp_name("drill.sock");
  options.watchdog_budget_ms = 1000;
  options.watchdog_interval_ms = 50;
  options.term_grace_ms = 100;
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  served::ChaosOptions copt;
  copt.plan.seed = 42;
  auto rate = [&](guard::FaultSite s) -> double& {
    return copt.plan.rate[static_cast<std::size_t>(s)];
  };
  rate(guard::FaultSite::kWireTornFrame) = 0.02;
  rate(guard::FaultSite::kWireDisconnect) = 0.02;
  rate(guard::FaultSite::kWireBitFlip) = 0.02;
  rate(guard::FaultSite::kWireStalledWrite) = 0.05;
  rate(guard::FaultSite::kWireBlackhole) = 0.05;
  copt.stall_ms = 100;
  copt.upstream_unix = options.unix_path;
  served::ChaosProxy proxy(copt);
  ASSERT_TRUE(proxy.start().is_ok());
  ASSERT_NE(proxy.port(), 0);

  // The reference answer every full-fidelity reply must match exactly.
  const double kQuarter = 0.25;
  auto quarter_req = [](std::uint64_t seed) {
    return Request::volume("0 <= x & x <= 1/2 & 0 <= y & y <= 1/2")
        .vars({"x", "y"})
        .seed(seed)
        .build();
  };

  const int kThreads = 5;
  const int kCallsPerThread = 12;
  std::atomic<std::uint64_t> ok_exact{0};
  std::atomic<std::uint64_t> ok_degraded{0};
  std::atomic<std::uint64_t> typed_errors{0};
  std::atomic<std::uint64_t> dishonest{0};
  std::atomic<std::uint64_t> client_retries{0};
  std::atomic<std::uint64_t> client_reconnects{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      served::ClientOptions cl;
      cl.connect_timeout_ms = 1000;
      cl.backoff_base_ms = 5;
      cl.backoff_cap_ms = 50;
      cl.seed = 100 + static_cast<std::uint64_t>(t);
      auto connect = [&]() {
        return served::Client::connect_tcp("127.0.0.1", proxy.port(), cl);
      };
      auto client = connect();
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (!client.is_ok()) {
          client = connect();
          if (!client.is_ok()) {
            typed_errors.fetch_add(1);
            continue;
          }
        }
        const std::uint64_t seed =
            static_cast<std::uint64_t>(t) * 1000 + i;
        auto a =
            client.value().call(quarter_req(seed), /*timeout_ms=*/3000);
        if (!a.is_ok()) {
          // Any *typed* failure is honest; an untyped hang would have
          // tripped the timeout accounting below.
          typed_errors.fetch_add(1);
          if (a.status().code() == StatusCode::kDeadlineExceeded) {
            // Blackholed or stalled past the budget: re-dial rather
            // than burning every later call on a dead proxy pipe.
            client_retries.fetch_add(
                client.value().retry_stats().retries);
            client_reconnects.fetch_add(
                client.value().retry_stats().reconnects);
            client = connect();
          }
          continue;
        }
        const Answer& ans = a.value();
        if (ans.degraded()) {
          const bool flagged = ans.guard.shed || ans.guard.worker_crashed ||
                               ans.guard.worker_hung;
          const bool honest_bars =
              ans.volume.lower.value_or(1.0) <= 0.0 &&
              ans.volume.upper.value_or(0.0) >= 1.0;
          if (flagged && honest_bars) {
            ok_degraded.fetch_add(1);
          } else {
            dishonest.fetch_add(1);
          }
          continue;
        }
        if (ans.volume.value() == kQuarter) {
          ok_exact.fetch_add(1);
        } else {
          dishonest.fetch_add(1);  // corruption slipped through
        }
      }
      if (client.is_ok()) {
        client_retries.fetch_add(client.value().retry_stats().retries);
        client_reconnects.fetch_add(
            client.value().retry_stats().reconnects);
      }
    });
  }

  // Mid-drill, make the fleet itself hostile too: SIGKILL one shard,
  // SIGSTOP another. The watchdog and the crash sweep both fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  kill(server.worker_pid(0), SIGKILL);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  kill(server.worker_pid(1), SIGSTOP);

  for (auto& th : threads) th.join();

  EXPECT_EQ(dishonest.load(), 0u)
      << "a dishonest answer survived the gauntlet";
  EXPECT_GT(ok_exact.load(), 0u) << "the drill never succeeded at all";
  // The chaos actually fired, and containment actually ran.
  const served::ChaosStats cs = proxy.stats();
  EXPECT_GT(cs.torn + cs.disconnects + cs.bit_flips + cs.stalled +
                cs.blackholes,
            0u);
  const served::ServerStats ss = server.stats();
  EXPECT_GE(ss.respawns, 1u);

  proxy.stop();
  server.stop();
  unlink(options.unix_path.c_str());
}

}  // namespace
}  // namespace cqa
