// Concurrent serve-layer coverage, run under TSan in CI: racing
// submitters coalesce to exactly one underlying computation, cache-level
// single-flight stays sound under contention, cancel() never loses a
// wakeup, and shutdown races cleanly with in-flight submits.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cqa/runtime/session.h"
#include "cqa/serve/scheduler.h"

namespace cqa {
namespace {

constexpr const char* kTriangle = "x >= 0 & y >= 0 & x + y <= 1";
constexpr const char* kDisk = "x^2 + y^2 <= 9/10 & 0 <= x & 0 <= y";

SessionOptions serve_opts() {
  SessionOptions opts;
  opts.threads = 2;
  opts.serve_executors = 2;
  opts.serve_queue_capacity = 4096;
  return opts;
}

TEST(ServeConcurrency, RacingDuplicateSubmitsCoalesceToOneComputation) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  serve::Scheduler& sched = session.scheduler();
  sched.pause();  // admit everything first so one group forms

  const int kThreads = 4;
  const int kPerThread = 8;
  std::vector<std::vector<serve::Ticket>> tickets(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tickets[t].push_back(
            session.submit(Request::volume(kTriangle).vars({"x", "y"})));
      }
    });
  }
  for (auto& th : submitters) th.join();
  sched.resume();

  for (auto& row : tickets) {
    for (auto& t : row) {
      auto a = t.wait();
      ASSERT_TRUE(a.is_ok()) << a.status().to_string();
      EXPECT_EQ(*a.value().volume.exact, Rational(1, 2));
    }
  }
  // Exactly one underlying exact computation for N x M duplicates.
  EXPECT_EQ(session.metrics().counter_value("volume_calls_total"), 1u);
  EXPECT_EQ(session.metrics().counter_value("serve_coalesced_total"),
            static_cast<std::uint64_t>(kThreads * kPerThread - 1));
}

TEST(ServeConcurrency, LiveTrafficNearDuplicatesStaySoundUnderContention) {
  // Unpaused: duplicates race the executors, so some coalesce at the
  // queue, some single-flight through the EvalCache FlightTable, and
  // some just hit the cache. Whatever the interleaving, every answer
  // must be the same exact rational (TSan checks the locking).
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  const int kThreads = 4;
  const int kPerThread = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Vary deadline_ms so fingerprints differ: these are *near*
        // duplicates that exercise the flight table, not the queue.
        auto a = session
                     .submit(Request::volume(kTriangle)
                                 .vars({"x", "y"})
                                 .deadline_ms(10'000 + t * kPerThread + i))
                     .wait();
        if (!a.is_ok() || !a.value().volume.exact.has_value() ||
            *a.value().volume.exact != Rational(1, 2)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServeConcurrency, McSeedDeterminismHoldsWhenBatchedUnderLoad) {
  auto mc = [](std::uint64_t seed) {
    return Request::volume(kDisk)
        .vars({"x", "y"})
        .strategy(VolumeStrategy::kMonteCarlo)
        .epsilon(0.05)
        .vc_dim(3.0)
        .seed(seed)
        .build();
  };
  // Reference values from unbatched solo runs.
  std::vector<double> solo(4);
  for (std::uint64_t s = 0; s < 4; ++s) {
    ConstraintDatabase db;
    Session session(&db, SessionOptions{.threads = 2});
    solo[s] = *session.run(mc(s + 1)).value_or_die().volume.estimate;
  }

  ConstraintDatabase db;
  Session session(&db, serve_opts());
  const int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (std::uint64_t s = 0; s < 4; ++s) {
    workers.emplace_back([&, s] {
      for (int r = 0; r < kRounds; ++r) {
        auto a = session.submit(mc(s + 1)).wait();
        if (!a.is_ok() || *a.value().volume.estimate != solo[s]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeConcurrency, CancelRacingExecutionNeverLosesAWakeup) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  const int kRounds = 32;
  for (int i = 0; i < kRounds; ++i) {
    serve::Ticket ticket =
        session.submit(Request::volume(kDisk)
                           .vars({"x", "y"})
                           .strategy(VolumeStrategy::kMonteCarlo)
                           .epsilon(0.02));
    std::atomic<bool> waited{false};
    std::thread waiter([&] {
      auto a = ticket.wait();  // must return, whatever the race outcome
      // Cancelled before execution -> kCancelled; mid-execution -> a
      // degraded answer off the ladder. Both are fine; hanging is not.
      if (!a.is_ok()) {
        EXPECT_EQ(a.status().code(), StatusCode::kCancelled)
            << a.status().to_string();
      }
      waited.store(true, std::memory_order_release);
    });
    if (i % 2 == 0) std::this_thread::yield();
    ticket.cancel();
    waiter.join();
    EXPECT_TRUE(waited.load(std::memory_order_acquire));
  }
}

TEST(ServeConcurrency, ShutdownRacesSubmittersCleanly) {
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<serve::Ticket>> tickets(2);
    {
      ConstraintDatabase db;
      Session session(&db, serve_opts());
      session.scheduler();  // force scheduler creation before the race
      std::vector<std::thread> submitters;
      for (int t = 0; t < 2; ++t) {
        submitters.emplace_back([&, t] {
          for (int i = 0; i < 8; ++i) {
            tickets[t].push_back(session.submit(
                Request::volume(kTriangle).vars({"x", "y"})));
          }
        });
      }
      for (auto& th : submitters) th.join();
      // Session destroyed while some tickets may still be queued.
    }
    for (auto& row : tickets) {
      for (auto& t : row) {
        auto a = t.wait();  // resolved answer or kCancelled, never a hang
        if (!a.is_ok()) {
          EXPECT_EQ(a.status().code(), StatusCode::kCancelled);
        }
      }
    }
  }
}

TEST(ServeConcurrency, MixedSubmitAndRunShareTheCachesSafely) {
  ConstraintDatabase db;
  Session session(&db, serve_opts());
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto a = session.submit(
            Request::volume(kTriangle).vars({"x", "y"})).wait();
        if (!a.is_ok()) failures.fetch_add(1);
      }
    });
    workers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto a =
            session.run(Request::volume(kTriangle).vars({"x", "y"}));
        if (!a.is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace cqa
