// End-to-end tests for the sharded serving layer (cqa::served): a real
// forked fleet behind a unix socket, exercised through the wire client.
//
// The headline regression here is crash containment -- the ISSUE 6
// acceptance bar: kill -9 one worker mid-request and the damage must be
// exactly one shard. The victim's in-flight requests resolve honestly
// degraded (guard.worker_crashed = true, certified trivial-1/2 bars),
// the other shards keep answering at full fidelity, and the supervisor
// respawns the dead shard so the fleet heals itself.
//
// Run with the 240s TSan timeout class: the fleet forks, and the slow
// Monte-Carlo payloads used to pin a request in flight are deliberately
// expensive.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cqa/runtime/session.h"
#include "cqa/served/client.h"
#include "cqa/served/server.h"
#include "gtest/gtest.h"

namespace cqa {
namespace {

std::string tmp_name(const char* stem) {
  return std::string("/tmp/cqa_fleet_test.") + std::to_string(getpid()) +
         "." + stem;
}

served::ServedOptions fleet_options(const char* stem, std::size_t workers) {
  served::ServedOptions options;
  options.workers = workers;
  options.unix_path = tmp_name(stem);
  return options;
}

void cleanup(const served::ServedOptions& options) {
  unlink(options.unix_path.c_str());
  if (!options.cache_path.empty()) {
    unlink(options.cache_path.c_str());
    for (std::size_t i = 0; i < options.workers; ++i) {
      unlink((options.cache_path + ".volumes.shard" + std::to_string(i))
                 .c_str());
    }
  }
}

served::Client must_connect(const std::string& sock) {
  auto connected = served::Client::connect_unix(sock);
  CQA_CHECK(connected.is_ok());
  return std::move(connected).take();
}

// A Monte-Carlo request expensive enough (~10^5 samples) to still be in
// flight when the test aims a SIGKILL at its shard.
Request slow_mc(std::uint64_t seed) {
  return Request::volume("x^2 + y^2 + x*y <= 4/5")
      .vars({"x", "y"})
      .strategy(VolumeStrategy::kMonteCarlo)
      .epsilon(0.001)
      .vc_dim(3.0)
      .seed(seed)
      .build();
}

TEST(ServedFleet, MixedTrafficMatchesLocalSession) {
  served::ServedOptions options = fleet_options("mixed.sock", 3);
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());
  served::Client client = must_connect(options.unix_path);

  // An exact volume travels the wire bit-for-bit: same value a local
  // Session computes.
  Request quarter =
      Request::volume("0 <= x & x <= 1/2 & 0 <= y & y <= 1/2")
          .vars({"x", "y"})
          .build();
  auto remote = client.call(quarter);
  ASSERT_TRUE(remote.is_ok());
  ASSERT_TRUE(remote.value().volume.exact.has_value());
  ConstraintDatabase db;
  Session local(&db);
  auto local_answer = local.run(quarter);
  ASSERT_TRUE(local_answer.is_ok());
  EXPECT_EQ(remote.value().volume.value(), local_answer.value().volume.value());

  // Decisions round-trip too.
  auto yes = client.call(Request::ask("E x. x * x = 2").build());
  ASSERT_TRUE(yes.is_ok());
  EXPECT_TRUE(yes.value().truth.value_or(false));
  auto no = client.call(Request::ask("E x. x * x = -1").build());
  ASSERT_TRUE(no.is_ok());
  EXPECT_FALSE(no.value().truth.value_or(true));

  // Identical requests route to the same shard: the fingerprint router
  // is deterministic.
  EXPECT_EQ(server.shard_of(quarter), server.shard_of(quarter));

  // ping + stats work over the same connection; stats names every
  // shard with its live pid (what cqa_servedctl and CI parse).
  EXPECT_TRUE(client.ping().is_ok());
  auto stats = client.stats();
  ASSERT_TRUE(stats.is_ok());
  for (std::size_t i = 0; i < server.worker_count(); ++i) {
    const std::string line = "shard " + std::to_string(i) + " pid " +
                             std::to_string(server.worker_pid(i));
    EXPECT_NE(stats.value().find(line), std::string::npos)
        << "stats missing \"" << line << "\":\n"
        << stats.value();
  }

  server.stop();
  cleanup(options);
}

TEST(ServedFleet, Kill9CostsExactlyOneShard) {
  served::ServedOptions options = fleet_options("kill9.sock", 3);
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  // A few attempts in case a batch outraces the kill; each round kills
  // the (possibly respawned) current worker of the victim shard.
  std::uint64_t crashed_answers = 0;
  std::uint64_t seed = 1;
  const std::size_t victim = server.shard_of(slow_mc(seed));
  for (int attempt = 0; attempt < 5 && crashed_answers == 0; ++attempt) {
    // Gather 4 distinct slow requests that all route to the victim.
    std::vector<Request> batch;
    while (batch.size() < 4) {
      Request r = slow_mc(seed++);
      if (server.shard_of(r) == victim) batch.push_back(std::move(r));
    }
    const pid_t old_pid = server.worker_pid(victim);
    std::atomic<std::uint64_t> crashed{0};
    std::atomic<std::uint64_t> hung{0};
    std::vector<std::thread> threads;
    for (const Request& r : batch) {
      threads.emplace_back([&, r] {
        served::Client client = must_connect(options.unix_path);
        auto a = client.call(r, /*timeout_ms=*/60000);
        if (!a.is_ok()) {
          // Non-volume kinds would error; volumes must degrade instead.
          if (a.status().code() == StatusCode::kDeadlineExceeded) {
            hung.fetch_add(1);
          }
          return;
        }
        if (a.value().guard.worker_crashed) {
          crashed.fetch_add(1);
          // Honest degradation: certified trivial-1/2, bars [0,1],
          // flagged degraded -- never a made-up "real" answer.
          EXPECT_TRUE(a.value().degraded());
          EXPECT_LE(a.value().volume.lower.value_or(1.0), 0.0);
          EXPECT_GE(a.value().volume.upper.value_or(0.0), 1.0);
          EXPECT_FALSE(a.value().guard.shed);
        }
      });
    }
    // Let the batch land in the victim's queue, then kill -9.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kill(old_pid, SIGKILL);
    for (auto& th : threads) th.join();
    EXPECT_EQ(hung.load(), 0u) << "a client hung past the kill";
    crashed_answers += crashed.load();

    // The supervisor respawned the shard with a fresh process.
    for (int i = 0; i < 200 && server.worker_pid(victim) == old_pid; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_NE(server.worker_pid(victim), old_pid);
  }
  EXPECT_GT(crashed_answers, 0u)
      << "kill -9 never caught a request in flight";
  EXPECT_GE(server.stats().respawns, 1u);
  EXPECT_GE(server.stats().crash_degraded, crashed_answers);

  // The crash cost one shard only: every other shard still serves full
  // fidelity answers, and the respawned victim works again too.
  served::Client client = must_connect(options.unix_path);
  std::size_t other_shard_answers = 0;
  for (std::uint64_t s = 1000; s < 1100 && other_shard_answers < 2; ++s) {
    Request r = Request::volume("0 <= x & x <= 1 & 0 <= y & 2*y <= 1")
                    .vars({"x", "y"})
                    .seed(s)
                    .build();
    if (server.shard_of(r) == victim) continue;
    auto a = client.call(r);
    ASSERT_TRUE(a.is_ok());
    EXPECT_FALSE(a.value().degraded());
    EXPECT_FALSE(a.value().guard.worker_crashed);
    ++other_shard_answers;
  }
  EXPECT_EQ(other_shard_answers, 2u);
  auto healed = client.call(slow_mc(seed + 1));
  ASSERT_TRUE(healed.is_ok());

  server.stop();
  cleanup(options);
}

TEST(ServedFleet, DeadShardShedsAtAdmissionUntilRespawn) {
  served::ServedOptions options = fleet_options("dead.sock", 2);
  options.shard_capacity = 1;
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  // Flood one shard (capacity 1) with concurrent slow requests: at
  // most one is in flight at a time, so the overlap must shed at
  // admission with guard.shed = true -- the same honest ladder the
  // in-process scheduler uses.
  std::uint64_t seed = 1;
  const std::size_t shard = server.shard_of(slow_mc(seed));
  std::vector<Request> batch;
  while (batch.size() < 8) {
    Request r = slow_mc(seed++);
    if (server.shard_of(r) == shard) batch.push_back(std::move(r));
  }
  std::atomic<std::uint64_t> shed_seen{0};
  std::atomic<std::uint64_t> dishonest{0};
  std::vector<std::thread> threads;
  for (const Request& r : batch) {
    threads.emplace_back([&, r] {
      served::Client client = must_connect(options.unix_path);
      auto a = client.call(r, /*timeout_ms=*/60000);
      ASSERT_TRUE(a.is_ok());
      if (!a.value().guard.shed) return;
      shed_seen.fetch_add(1);
      const bool honest = a.value().degraded() &&
                          !a.value().guard.worker_crashed &&
                          a.value().volume.lower.value_or(1.0) <= 0.0 &&
                          a.value().volume.upper.value_or(0.0) >= 1.0;
      if (!honest) dishonest.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(shed_seen.load(), 1u);
  EXPECT_EQ(dishonest.load(), 0u);
  EXPECT_GE(server.stats().shed, shed_seen.load());

  server.stop();
  cleanup(options);
}

TEST(ServedFleet, DiskCacheSurvivesFullRestart) {
  served::ServedOptions options = fleet_options("warm.sock", 2);
  options.cache_path = tmp_name("warm.cache");
  Request mc = Request::volume("x^2 + y^2 <= 9/10")
                   .vars({"x", "y"})
                   .strategy(VolumeStrategy::kMonteCarlo)
                   .epsilon(0.05)
                   .vc_dim(3.0)
                   .seed(7)
                   .build();
  double first_estimate = 0.0;
  {
    served::Server server(options);
    ASSERT_TRUE(server.start().is_ok());
    served::Client client = must_connect(options.unix_path);
    auto a = client.call(mc);
    ASSERT_TRUE(a.is_ok());
    first_estimate = a.value().volume.value();
    // Second identical call: a router-level cache hit.
    auto b = client.call(mc);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(b.value().volume.value(), first_estimate);
    EXPECT_GE(server.stats().cache_hits, 1u);
    server.stop();
  }
  {
    // Brand-new fleet, same cache file: the answer comes from disk
    // without recomputation, byte-identical.
    served::Server server(options);
    ASSERT_TRUE(server.start().is_ok());
    served::Client client = must_connect(options.unix_path);
    auto a = client.call(mc);
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(a.value().volume.value(), first_estimate);
    EXPECT_GE(server.stats().cache_hits, 1u);
    EXPECT_GE(server.cache_stats().entries, 1u);
    server.stop();
  }
  cleanup(options);
}

TEST(ServedFleet, ShortLivedConnectionsAreReaped) {
  served::ServedOptions options = fleet_options("reap.sock", 1);
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  // Burn through many short-lived connections (each Client destructor
  // closes its socket). A long-running router must not accumulate one
  // thread + conn entry per dead connection until stop().
  for (int i = 0; i < 16; ++i) {
    served::Client client = must_connect(options.unix_path);
    EXPECT_TRUE(client.ping().is_ok());
  }

  // Reaping rides the accept path: fresh probes sweep finished readers.
  // Bound is 2, not 1: the live probe plus at most the previous probe
  // whose EOF the server has not processed yet.
  std::size_t live = server.worker_count() + 16;
  for (int i = 0; i < 200 && live > 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    served::Client probe = must_connect(options.unix_path);
    EXPECT_TRUE(probe.ping().is_ok());
    live = server.live_connections();
  }
  EXPECT_LE(live, 2u);

  server.stop();
  cleanup(options);
}

TEST(ServedFleet, TcpModeServesAndReportsPort) {
  served::ServedOptions options;
  options.workers = 2;
  options.tcp_port = 0;  // ephemeral
  served::Server server(options);
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_NE(server.port(), 0);
  auto connected = served::Client::connect_tcp("127.0.0.1", server.port());
  ASSERT_TRUE(connected.is_ok());
  served::Client client = std::move(connected).take();
  EXPECT_TRUE(client.ping().is_ok());
  auto a = client.call(Request::volume("0 <= x & x <= 1")
                           .vars({"x"})
                           .build());
  ASSERT_TRUE(a.is_ok());
  server.stop();
}

}  // namespace
}  // namespace cqa
