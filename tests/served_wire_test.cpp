// cqa::served wire + persistence units: frame codec (versioning,
// corruption), Request/Answer payload round trips, the platform-stable
// request fingerprint (golden bytes), the disk-backed result cache's
// corruption tolerance, the per-scrape-window queue-depth peak, and the
// EvalCache volume snapshot hooks.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cqa/logic/printer.h"
#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/metrics.h"
#include "cqa/serve/scheduler.h"
#include "cqa/served/disk_cache.h"
#include "cqa/served/wire.h"
#include "cqa/util/bincode.h"
#include "gtest/gtest.h"

namespace cqa {
namespace {

std::string hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

std::string temp_path(const char* stem) {
  return std::string("/tmp/cqa_wire_test.") + std::to_string(getpid()) +
         "." + stem;
}

// ---------------------------------------------------------------- frames

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) close(fds_[0]);
    if (fds_[1] >= 0) close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsEveryMessageType) {
  for (auto type :
       {served::MsgType::kRequest, served::MsgType::kAnswer,
        served::MsgType::kPing, served::MsgType::kPong,
        served::MsgType::kStats, served::MsgType::kStatsReply}) {
    ASSERT_TRUE(
        served::write_frame(fds_[0], type, 42, "payload bytes").is_ok());
    served::Frame frame;
    ASSERT_TRUE(served::read_frame(fds_[1], &frame).is_ok());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.id, 42u);
    EXPECT_EQ(frame.payload, "payload bytes");
  }
}

TEST_F(FramePair, RejectsVersionMismatchBeforePayload) {
  // Hand-craft a frame claiming wire version 99; the checksum is valid,
  // so the version check (not the corruption check) must reject it.
  std::string body;
  bincode::put_u8(&body, 99);
  bincode::put_u8(&body, 1);
  bincode::put_u64(&body, 7);
  std::string buf;
  bincode::put_u32(&buf, static_cast<std::uint32_t>(body.size()));
  bincode::put_u64(&buf, served::frame_checksum(body));
  buf += body;
  ASSERT_EQ(write(fds_[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  served::Frame frame;
  Status s = served::read_frame(fds_[1], &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST_F(FramePair, RejectsOversizedLengthPrefixWithoutAllocating) {
  std::string buf;
  bincode::put_u32(&buf, served::kMaxFrameBody + 1);
  bincode::put_u64(&buf, 0);  // checksum slot; length is checked first
  ASSERT_EQ(write(fds_[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  served::Frame frame;
  EXPECT_EQ(served::read_frame(fds_[1], &frame).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FramePair, FlippedBitFailsChecksumBeforeDecoding) {
  // A valid frame with one payload bit flipped in transit must surface
  // as corruption (kInvalidArgument), never as a decodable frame.
  std::string body;
  bincode::put_u8(&body, served::kWireVersion);
  bincode::put_u8(&body, static_cast<std::uint8_t>(served::MsgType::kPing));
  bincode::put_u64(&body, 7);
  body += "payload";
  std::string buf;
  bincode::put_u32(&buf, static_cast<std::uint32_t>(body.size()));
  bincode::put_u64(&buf, served::frame_checksum(body));
  buf += body;
  buf[buf.size() - 3] ^= 0x40;  // flip one bit inside "payload"
  ASSERT_EQ(write(fds_[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  served::Frame frame;
  Status s = served::read_frame(fds_[1], &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
}

TEST_F(FramePair, ReadDeadlineExpiresAsDeadlineExceeded) {
  // Nothing ever arrives: a bounded read must give up with
  // kDeadlineExceeded instead of blocking forever.
  served::Frame frame;
  Status s = served::read_frame(fds_[1], &frame, /*timeout_ms=*/50);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FramePair, ReadDeadlineExpiresMidFrameToo) {
  // Header arrives, body never does -- the stalled-write shape. The
  // bounded read must expire mid-frame rather than hang.
  std::string body;
  bincode::put_u8(&body, served::kWireVersion);
  bincode::put_u8(&body, static_cast<std::uint8_t>(served::MsgType::kPing));
  bincode::put_u64(&body, 7);
  body += "never fully sent";
  std::string buf;
  bincode::put_u32(&buf, static_cast<std::uint32_t>(body.size()));
  bincode::put_u64(&buf, served::frame_checksum(body));
  buf += body.substr(0, 4);  // stall mid-body
  ASSERT_EQ(write(fds_[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  served::Frame frame;
  Status s = served::read_frame(fds_[1], &frame, /*timeout_ms=*/50);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FramePair, CleanEofIsCancelledMidFrameIsInternal) {
  // Clean EOF on a frame boundary: the peer just went away.
  close(fds_[0]);
  fds_[0] = -1;
  served::Frame frame;
  EXPECT_EQ(served::read_frame(fds_[1], &frame).code(),
            StatusCode::kCancelled);
}

TEST_F(FramePair, TruncatedFrameIsInternal) {
  std::string buf;
  bincode::put_u32(&buf, 100);  // promises 100 bytes, delivers 3
  buf += "abc";
  ASSERT_EQ(write(fds_[0], buf.data(), buf.size()),
            static_cast<ssize_t>(buf.size()));
  close(fds_[0]);
  fds_[0] = -1;
  served::Frame frame;
  EXPECT_EQ(served::read_frame(fds_[1], &frame).code(),
            StatusCode::kInternal);
}

// --------------------------------------------------------------- request

Request full_request() {
  guard::ResourceQuota quota;
  quota.max_qe_atoms = 11;
  quota.max_fm_rows = 22;
  quota.max_sweep_sections = 33;
  quota.max_bigint_bits = 44;
  quota.max_resident_bytes = 55;
  return Request::volume("x^2 + y^2 <= 9/10")
      .vars({"x", "y"})
      .epsilon(0.03)
      .delta(0.04)
      .deadline_ms(77)
      .quota(quota)
      .strategy(VolumeStrategy::kMonteCarlo)
      .seed(99)
      .vc_dim(3.5)
      .max_mc_samples(1234)
      .priority(Priority::kBatch)
      .bind("r", Rational(9, 10))
      .build();
}

TEST(RequestCodec, RoundTripsEveryAnswerAffectingField) {
  const Request in = full_request();
  auto out = served::decode_request(served::encode_request(in));
  ASSERT_TRUE(out.is_ok());
  const Request& r = out.value();
  EXPECT_EQ(r.kind, in.kind);
  EXPECT_EQ(r.query, in.query);
  EXPECT_EQ(r.output_vars, in.output_vars);
  EXPECT_DOUBLE_EQ(r.budget.epsilon, in.budget.epsilon);
  EXPECT_DOUBLE_EQ(r.budget.delta, in.budget.delta);
  EXPECT_EQ(r.budget.deadline_ms, in.budget.deadline_ms);
  EXPECT_EQ(r.budget.quota.max_qe_atoms, 11u);
  EXPECT_EQ(r.budget.quota.max_resident_bytes, 55u);
  EXPECT_EQ(r.strategy, in.strategy);
  EXPECT_EQ(r.seed, in.seed);
  EXPECT_EQ(r.vc_dim, in.vc_dim);
  EXPECT_EQ(r.max_mc_samples, in.max_mc_samples);
  EXPECT_EQ(r.priority, in.priority);
  EXPECT_EQ(r.aggregate_fn, in.aggregate_fn);
  ASSERT_EQ(r.bindings.size(), 1u);
  EXPECT_EQ(r.bindings[0].first, "r");
  EXPECT_EQ(r.bindings[0].second, Rational(9, 10));
  // A cancel token cannot cross a process boundary.
  EXPECT_EQ(r.cancel, nullptr);
}

TEST(RequestCodec, RejectsGarbageAndTrailingBytes) {
  EXPECT_FALSE(served::decode_request("not a request").is_ok());
  std::string payload = served::encode_request(full_request());
  payload += "trailing";
  EXPECT_FALSE(served::decode_request(payload).is_ok());
}

// ---------------------------------------------------------------- answer

TEST(AnswerCodec, RoundTripsExactVolumeWithGuardReport) {
  Answer a;
  a.kind = RequestKind::kVolume;
  a.volume.exact = Rational(1, 4);
  a.volume.estimate = 0.25;
  a.volume.lower = 0.2;
  a.volume.upper = 0.3;
  a.volume.points_evaluated = 640;
  a.volume.points_requested = 1000;
  a.guard.usage.qe_atoms = 5;
  a.guard.quota_tripped = true;
  a.guard.tripped_quota = "max_fm_rows";
  a.guard.rung = guard::Rung::kMcPartial;
  a.guard.shed = true;
  a.guard.worker_crashed = true;
  a.guard.worker_hung = true;
  a.elapsed_ms = 1.5;
  const std::string payload =
      served::encode_answer(Result<Answer>(std::move(a)), nullptr);
  Result<Answer> out{Status::internal("undecoded")};
  ASSERT_TRUE(served::decode_answer(payload, nullptr, &out).is_ok());
  ASSERT_TRUE(out.is_ok());
  const Answer& b = out.value();
  EXPECT_EQ(b.kind, RequestKind::kVolume);
  ASSERT_TRUE(b.volume.exact.has_value());
  EXPECT_EQ(*b.volume.exact, Rational(1, 4));
  EXPECT_DOUBLE_EQ(b.volume.lower.value(), 0.2);
  EXPECT_DOUBLE_EQ(b.volume.upper.value(), 0.3);
  EXPECT_EQ(b.volume.points_evaluated, 640u);
  EXPECT_EQ(b.guard.usage.qe_atoms, 5u);
  EXPECT_TRUE(b.guard.quota_tripped);
  EXPECT_EQ(b.guard.tripped_quota, "max_fm_rows");
  EXPECT_EQ(b.guard.rung, guard::Rung::kMcPartial);
  EXPECT_TRUE(b.guard.shed);
  EXPECT_TRUE(b.guard.worker_crashed);
  EXPECT_TRUE(b.guard.worker_hung);
  EXPECT_DOUBLE_EQ(b.elapsed_ms, 1.5);
}

TEST(AnswerCodec, RoundTripsErrorStatus) {
  const std::string payload = served::encode_answer(
      Result<Answer>(Status::resource_exhausted("shard full")), nullptr);
  Result<Answer> out{Status::internal("undecoded")};
  ASSERT_TRUE(served::decode_answer(payload, nullptr, &out).is_ok());
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(out.status().message(), "shard full");
}

TEST(AnswerCodec, ReParsesRewriteFormulaInReceiversDatabase) {
  ConstraintDatabase sender;
  auto parsed = sender.parse("x >= 0 & x + 1 <= 2");
  ASSERT_TRUE(parsed.is_ok());
  Answer a;
  a.kind = RequestKind::kRewrite;
  a.formula = parsed.value();
  const std::string payload =
      served::encode_answer(Result<Answer>(std::move(a)), &sender.vars());

  ConstraintDatabase receiver;
  Result<Answer> out{Status::internal("undecoded")};
  ASSERT_TRUE(served::decode_answer(payload, &receiver, &out).is_ok());
  ASSERT_TRUE(out.is_ok());
  ASSERT_NE(out.value().formula, nullptr);
  EXPECT_EQ(to_string(out.value().formula, receiver.vars()),
            to_string(parsed.value(), sender.vars()));
}

TEST(AnswerCodec, RoundTripsTruthMuGrowthAggregate) {
  {
    Answer a;
    a.kind = RequestKind::kAsk;
    a.truth = true;
    const std::string payload =
        served::encode_answer(Result<Answer>(std::move(a)), nullptr);
    Result<Answer> out{Status::internal("undecoded")};
    ASSERT_TRUE(served::decode_answer(payload, nullptr, &out).is_ok());
    EXPECT_EQ(out.value().truth, std::optional<bool>(true));
  }
  {
    Answer a;
    a.kind = RequestKind::kMu;
    a.mu = Rational(5, 4);
    const std::string payload =
        served::encode_answer(Result<Answer>(std::move(a)), nullptr);
    Result<Answer> out{Status::internal("undecoded")};
    ASSERT_TRUE(served::decode_answer(payload, nullptr, &out).is_ok());
    ASSERT_TRUE(out.value().mu.has_value());
    EXPECT_EQ(*out.value().mu, Rational(5, 4));
  }
  {
    Answer a;
    a.kind = RequestKind::kGrowthPolynomial;
    a.growth = UPoly({Rational(1), Rational(0), Rational(2)});
    const std::string payload =
        served::encode_answer(Result<Answer>(std::move(a)), nullptr);
    Result<Answer> out{Status::internal("undecoded")};
    ASSERT_TRUE(served::decode_answer(payload, nullptr, &out).is_ok());
    ASSERT_TRUE(out.value().growth.has_value());
    EXPECT_EQ(*out.value().growth,
              UPoly({Rational(1), Rational(0), Rational(2)}));
  }
  {
    Answer a;
    a.kind = RequestKind::kAggregate;
    a.aggregate = Rational(10, 3);
    const std::string payload =
        served::encode_answer(Result<Answer>(std::move(a)), nullptr);
    Result<Answer> out{Status::internal("undecoded")};
    ASSERT_TRUE(served::decode_answer(payload, nullptr, &out).is_ok());
    ASSERT_TRUE(out.value().aggregate.has_value());
    EXPECT_EQ(*out.value().aggregate, Rational(10, 3));
  }
}

TEST(AnswerCodec, CacheableMeansFullFidelitySuccess) {
  Answer ok;
  ok.kind = RequestKind::kVolume;
  ok.volume.exact = Rational(1, 2);
  EXPECT_TRUE(served::answer_is_cacheable(
      served::encode_answer(Result<Answer>(std::move(ok)), nullptr)));

  Answer degraded;
  degraded.kind = RequestKind::kVolume;
  degraded.status = AnswerStatus::kDegraded;
  EXPECT_FALSE(served::answer_is_cacheable(
      served::encode_answer(Result<Answer>(std::move(degraded)), nullptr)));

  EXPECT_FALSE(served::answer_is_cacheable(served::encode_answer(
      Result<Answer>(Status::internal("boom")), nullptr)));
  EXPECT_FALSE(served::answer_is_cacheable(""));
}

// ----------------------------------------------------------- fingerprint

TEST(Fingerprint, GoldenBytesAreStableAcrossPlatformsAndSessions) {
  // The persistent cache and the shard router key on these exact bytes;
  // any change invalidates every cache on disk, so changing this golden
  // value must be a deliberate format bump.
  Request r = Request::volume("x <= 1/2")
                  .vars({"x"})
                  .epsilon(0.5)
                  .delta(0.25)
                  .deadline_ms(16)
                  .seed(3)
                  .build();
  EXPECT_EQ(hex(serve::request_fingerprint(r)), "0103080000000000000078203c3d20312f320100000000000000010000000000"
      "000078000000000000e03f000000000000d03f100000000000000000093d0000"
      "00000090d003000000000020a107000000000040420f00000000000000004000"
      "0000000300000000000000ff0000000000000000000000000000000000000000"
      "000000000000");
}

TEST(Fingerprint, CoversSeedQuotaAndBindings) {
  Request a = Request::volume("x <= 1/2").vars({"x"}).seed(1).build();
  Request b = Request::volume("x <= 1/2").vars({"x"}).seed(2).build();
  EXPECT_NE(serve::request_fingerprint(a), serve::request_fingerprint(b));

  Request c = Request::volume("x <= 1/2").vars({"x"}).seed(1).build();
  c.budget.quota.max_fm_rows = 7;
  EXPECT_NE(serve::request_fingerprint(a), serve::request_fingerprint(c));

  Request d = Request::volume("x <= 1/2").vars({"x"}).seed(1).build();
  d.bindings.emplace_back("y", Rational(1));
  EXPECT_NE(serve::request_fingerprint(a), serve::request_fingerprint(d));
}

TEST(Fingerprint, LengthPrefixingDefeatsConcatenationCollisions) {
  Request a = Request::volume("ab").vars({"c"}).build();
  Request b = Request::volume("a").vars({"bc"}).build();
  Request c = Request::volume("a").vars({"b", "c"}).build();
  EXPECT_NE(serve::request_fingerprint(a), serve::request_fingerprint(b));
  EXPECT_NE(serve::request_fingerprint(b), serve::request_fingerprint(c));
}

// ------------------------------------------------------------ disk cache

TEST(DiskCache, PersistsAcrossReopen) {
  const std::string path = temp_path("persist.cache");
  std::remove(path.c_str());
  {
    served::DiskCache cache(path);
    ASSERT_TRUE(cache.open().is_ok());
    cache.store("fp1", "answer one");
    cache.store("fp2", "answer two");
    cache.store("fp1", "answer one v2");  // last write wins
  }
  served::DiskCache cache(path);
  ASSERT_TRUE(cache.open().is_ok());
  EXPECT_EQ(cache.lookup("fp1").value_or(""), "answer one v2");
  EXPECT_EQ(cache.lookup("fp2").value_or(""), "answer two");
  EXPECT_EQ(cache.stats().loaded, 2u);
  std::remove(path.c_str());
}

TEST(DiskCache, DropsCorruptTailKeepsValidPrefix) {
  const std::string path = temp_path("corrupt.cache");
  std::remove(path.c_str());
  {
    served::DiskCache cache(path);
    ASSERT_TRUE(cache.open().is_ok());
    cache.store("good", "value");
  }
  {
    // Simulate a torn write: garbage appended after the valid records.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage that is not a record";
  }
  served::DiskCache cache(path);
  ASSERT_TRUE(cache.open().is_ok());
  EXPECT_EQ(cache.lookup("good").value_or(""), "value");
  EXPECT_GE(cache.stats().dropped_corrupt, 1u);
  // open() compacted the file: reopening is clean again.
  served::DiskCache again(path);
  ASSERT_TRUE(again.open().is_ok());
  EXPECT_EQ(again.stats().dropped_corrupt, 0u);
  EXPECT_EQ(again.lookup("good").value_or(""), "value");
  std::remove(path.c_str());
}

TEST(DiskCache, FlippedBitInvalidatesOnlyFromThatRecordOn) {
  const std::string path = temp_path("bitrot.cache");
  std::remove(path.c_str());
  {
    served::DiskCache cache(path);
    ASSERT_TRUE(cache.open().is_ok());
    cache.store("k1", "vvvvvvvv1");
    cache.store("k2", "vvvvvvvv2");
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size - 10);  // inside the last record's value/checksum
    f.put('X');
  }
  served::DiskCache cache(path);
  ASSERT_TRUE(cache.open().is_ok());
  EXPECT_TRUE(cache.lookup("k1").has_value());
  EXPECT_FALSE(cache.lookup("k2").has_value());
  EXPECT_GE(cache.stats().dropped_corrupt, 1u);
  std::remove(path.c_str());
}

TEST(DiskCache, BadHeaderStartsEmptyInsteadOfFailing) {
  const std::string path = temp_path("header.cache");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTTHEMAGICBYTES and then some";
  }
  served::DiskCache cache(path);
  ASSERT_TRUE(cache.open().is_ok());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GE(cache.stats().dropped_corrupt, 1u);
  std::remove(path.c_str());
}

TEST(DiskCache, RefusesNewKeysAtCapacityButUpdatesExisting) {
  const std::string path = temp_path("capacity.cache");
  std::remove(path.c_str());
  served::DiskCache cache(path, /*capacity=*/2);
  ASSERT_TRUE(cache.open().is_ok());
  cache.store("a", "1");
  cache.store("b", "2");
  cache.store("c", "3");  // refused
  cache.store("a", "1b");  // update is fine
  EXPECT_FALSE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.lookup("a").value_or(""), "1b");
  EXPECT_GE(cache.stats().rejected_full, 1u);
  std::remove(path.c_str());
}

// ----------------------------------------------------- gauge peak window

TEST(GaugePeak, TakePeakReadsAndResetsPerScrapeWindow) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("depth");
  g->set(3);
  g->set(9);
  g->set(2);
  // First scrape sees the peak of the window...
  EXPECT_EQ(g->take_peak(), 9);
  // ...the next window's peak restarts from the current value, so the
  // old spike does not linger and the peak >= value invariant holds.
  EXPECT_EQ(g->take_peak(), 2);
  g->set(5);
  EXPECT_EQ(g->take_peak(), 5);
}

// ------------------------------------------------------ volume snapshots

TEST(EvalCachePersistence, SnapshotAndRestoreRoundTripsVolumes) {
  EvalCache cache;
  cache.store_volume("q1", Rational(1, 3));
  cache.store_volume("q2", Rational(7, 2));
  const auto snapshot = cache.snapshot_volumes();
  EXPECT_EQ(snapshot.size(), 2u);

  EvalCache warm;
  warm.restore_volumes(snapshot);
  ASSERT_TRUE(warm.lookup_volume("q1").has_value());
  EXPECT_EQ(*warm.lookup_volume("q1"), Rational(1, 3));
  ASSERT_TRUE(warm.lookup_volume("q2").has_value());
  EXPECT_EQ(*warm.lookup_volume("q2"), Rational(7, 2));
}

}  // namespace
}  // namespace cqa
