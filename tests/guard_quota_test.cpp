// cqa::guard resource governance: WorkMeter semantics, quota-tripped
// engine stages, and Session's exact -> MC -> trivial-1/2 degradation
// ladder under tight quotas.

#include "cqa/guard/meter.h"

#include <gtest/gtest.h>

#include <string>

#include "cqa/arith/bigint.h"
#include "cqa/constraint/fourier_motzkin.h"
#include "cqa/guard/guard.h"
#include "cqa/runtime/session.h"

namespace cqa {
namespace {

constexpr const char* kTriangle = "x >= 0 & y >= 0 & x + y <= 1";
// Quantified FO+LIN whose QE rewrite denotes the same triangle:
// exists u in [x+y, 1] iff x + y <= 1 (with x, y >= 0).
constexpr const char* kQuantifiedTriangle =
    "E u. 0 <= u & u <= 1 & x + y <= u & x >= 0 & y >= 0";

Request volume_request(const std::string& query) {
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = query;
  req.output_vars = {"x", "y"};
  return req;
}

TEST(WorkMeter, CumulativeChargeTripsAtLimit) {
  guard::ResourceQuota q = guard::ResourceQuota::unlimited();
  q.max_qe_atoms = 10;
  guard::WorkMeter meter(q);
  EXPECT_TRUE(meter.charge_qe_atoms(10));  // exactly at the limit: fine
  EXPECT_FALSE(meter.tripped());
  EXPECT_TRUE(meter.check().is_ok());
  EXPECT_FALSE(meter.charge_qe_atoms(1));  // one over: trips
  EXPECT_TRUE(meter.tripped());
  EXPECT_EQ(meter.tripped_kind(), guard::QuotaKind::kQeAtoms);
  Status s = meter.check();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.to_string(), "ResourceExhausted: quota exceeded: qe_atoms");
  EXPECT_EQ(meter.usage().qe_atoms, 11u);
}

TEST(WorkMeter, FirstTripIsStickyAndAllChargesFailAfter) {
  guard::ResourceQuota q = guard::ResourceQuota::unlimited();
  q.max_sweep_sections = 1;
  q.max_fm_rows = 5;
  guard::WorkMeter meter(q);
  EXPECT_TRUE(meter.charge_sweep_section());
  EXPECT_FALSE(meter.charge_sweep_section());  // trips sweep_sections
  // A later over-limit charge on another axis does not overwrite the
  // first tripped kind, and every charge now reports out-of-quota.
  EXPECT_FALSE(meter.charge_fm_rows(100));
  EXPECT_EQ(meter.tripped_kind(), guard::QuotaKind::kSweepSections);
  EXPECT_FALSE(meter.charge_qe_atoms(0));
  // High-water accounting still records the peak for the report.
  EXPECT_EQ(meter.usage().fm_rows_peak, 100u);
}

TEST(WorkMeter, HighWaterChargesTrackPeakNotSum) {
  guard::WorkMeter meter(guard::ResourceQuota::unlimited());
  EXPECT_TRUE(meter.charge_fm_rows(40));
  EXPECT_TRUE(meter.charge_fm_rows(10));
  EXPECT_TRUE(meter.charge_bigint_bits(64));
  EXPECT_TRUE(meter.charge_bigint_bits(32));
  EXPECT_EQ(meter.usage().fm_rows_peak, 40u);
  EXPECT_EQ(meter.usage().bigint_bits_peak, 64u);
  EXPECT_FALSE(meter.tripped());  // unlimited never trips
}

TEST(WorkMeter, ThreadLocalScopeMetersBigIntArithmetic) {
  guard::ResourceQuota q = guard::ResourceQuota::unlimited();
  q.max_bigint_bits = 256;
  guard::WorkMeter meter(q);
  ASSERT_EQ(guard::current_thread_meter(), nullptr);
  {
    guard::MeterScope scope(&meter);
    ASSERT_EQ(guard::current_thread_meter(), &meter);
    // ~2^400 * ~2^400: operand bit estimate blows the 256-bit ceiling.
    BigInt big = BigInt::pow(BigInt(2), 400);
    BigInt product = big * big;
    // The op that trips still completes correctly (sticky governor, not
    // a hard allocator).
    EXPECT_EQ(product, BigInt::pow(BigInt(2), 800));
  }
  EXPECT_EQ(guard::current_thread_meter(), nullptr);  // scope restored
  EXPECT_TRUE(meter.tripped());
  EXPECT_EQ(meter.tripped_kind(), guard::QuotaKind::kBigIntBits);
  EXPECT_GT(meter.usage().bigint_bits_peak, 256u);
}

TEST(WorkMeter, MeterScopeNests) {
  guard::WorkMeter outer;
  guard::WorkMeter inner;
  guard::MeterScope a(&outer);
  {
    guard::MeterScope b(&inner);
    EXPECT_EQ(guard::current_thread_meter(), &inner);
  }
  EXPECT_EQ(guard::current_thread_meter(), &outer);
}

TEST(WorkMeter, NullptrConventionHelpers) {
  EXPECT_FALSE(guard::meter_tripped(nullptr));
  guard::charge_bigint_bits_tl(1u << 20);  // no meter bound: no-op
  guard::WorkMeter meter(guard::ResourceQuota::unlimited());
  EXPECT_FALSE(guard::meter_tripped(&meter));
}

TEST(FourierMotzkin, MeteredEliminationStopsOnRowQuota) {
  // 12 lower and 12 upper bounds on x0: elimination wants to produce
  // 144 combined rows; a 10-row ceiling must stop the pair loop early.
  std::vector<LinearConstraint> cs;
  for (int i = 1; i <= 12; ++i) {
    LinearConstraint lo;  // x0 >= i  <=>  -x0 <= -i
    lo.coeffs = {Rational(-1), Rational(0)};
    lo.rhs = Rational(-i);
    lo.cmp = LinCmp::kLe;
    cs.push_back(lo);
    LinearConstraint hi;  // x0 <= 100 + i
    hi.coeffs = {Rational(1), Rational(0)};
    hi.rhs = Rational(100 + i);
    hi.cmp = LinCmp::kLe;
    cs.push_back(hi);
  }
  guard::ResourceQuota q = guard::ResourceQuota::unlimited();
  q.max_fm_rows = 10;
  guard::WorkMeter meter(q);
  auto rows = fm_eliminate(cs, 0, &meter);
  EXPECT_TRUE(meter.tripped());
  EXPECT_EQ(meter.tripped_kind(), guard::QuotaKind::kFmRows);
  // Truncated output: strictly fewer rows than the full 144 product.
  EXPECT_LT(rows.size(), 144u);
  // Unmetered elimination on the same input does not trip anything.
  guard::WorkMeter unlimited;
  auto full = fm_eliminate(cs, 0, &unlimited);
  EXPECT_FALSE(unlimited.tripped());
  EXPECT_GE(unlimited.usage().fm_rows_peak, rows.size());
}

TEST(GuardReport, RendersUsageAndTrip) {
  guard::ResourceQuota q = guard::ResourceQuota::unlimited();
  q.max_qe_atoms = 1;
  guard::WorkMeter meter(q);
  meter.charge_qe_atoms(5);
  guard::GuardReport report = guard::make_report(meter);
  EXPECT_TRUE(report.quota_tripped);
  EXPECT_EQ(report.tripped_quota, "qe_atoms");
  EXPECT_EQ(report.usage.qe_atoms, 5u);
  const std::string s = report.to_string();
  EXPECT_NE(s.find("tripped=qe_atoms"), std::string::npos);
  EXPECT_NE(s.find("qe_atoms=5"), std::string::npos);
}

// --- Session: the degradation ladder under quotas --------------------

TEST(GuardSession, DeepQuantifierQueryDegradesUnderTightQuota) {
  // The acceptance scenario: a quantified (Karpinski-Macintyre-style)
  // query under a tight atom quota must return a degraded-but-sound
  // kOk answer, not an error and not an OOM.
  ConstraintDatabase db;
  Session session(&db);
  Request req = volume_request(kQuantifiedTriangle);
  req.budget.quota = guard::ResourceQuota::unlimited();
  req.budget.quota.max_qe_atoms = 1;  // any elimination trips
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  const Answer& ans = a.value();
  EXPECT_EQ(ans.status, AnswerStatus::kDegraded);
  EXPECT_TRUE(ans.degraded());
  EXPECT_TRUE(ans.guard.quota_tripped);
  EXPECT_EQ(ans.guard.tripped_quota, "qe_atoms");
  EXPECT_EQ(ans.guard.rung, guard::Rung::kTrivialHalf);
  // Sound (if useless) bars.
  ASSERT_TRUE(ans.volume.estimate.has_value());
  EXPECT_EQ(*ans.volume.estimate, 0.5);
  EXPECT_EQ(ans.volume.lower, 0.0);
  EXPECT_EQ(ans.volume.upper, 1.0);
  EXPECT_GE(session.metrics().counter_value("guard_quota_trip_total"), 1u);
  EXPECT_GE(session.metrics().counter_value("guard_quota_trip_qe_atoms_total"),
            1u);
  EXPECT_GE(session.metrics().counter_value(
                "guard_degradation_rung_trivial_half_total"),
            1u);
}

TEST(GuardSession, SameQueryWithQuotasOffCompletesExactly) {
  ConstraintDatabase db;
  Session session(&db);
  Request req = volume_request(kQuantifiedTriangle);
  req.budget.quota = guard::ResourceQuota::unlimited();
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().status, AnswerStatus::kOk);
  ASSERT_TRUE(a.value().volume.exact.has_value());
  EXPECT_EQ(*a.value().volume.exact, Rational(1, 2));
  EXPECT_FALSE(a.value().guard.quota_tripped);
  EXPECT_EQ(a.value().guard.rung, guard::Rung::kExact);
  // Accounting still happened: usage is populated even when nothing
  // trips.
  EXPECT_GT(a.value().guard.usage.qe_atoms, 0u);
}

TEST(GuardSession, DefaultQuotasDoNotPerturbNormalAnswers) {
  // The Budget default carries the safe service quotas; every ordinary
  // query must be far below them.
  ConstraintDatabase db;
  Session session(&db);
  auto a = session.run(volume_request(kTriangle));
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().status, AnswerStatus::kOk);
  ASSERT_TRUE(a.value().volume.exact.has_value());
  EXPECT_EQ(*a.value().volume.exact, Rational(1, 2));
  EXPECT_FALSE(a.value().guard.quota_tripped);
}

TEST(GuardSession, SweepQuotaTripFallsBackToMonteCarloWithValidBars) {
  // Exact sweep tripped mid-cell: the ladder's next rung is MC on the
  // quantifier-free formula, answering kOk + degraded with honest bars.
  ConstraintDatabase db;
  SessionOptions opts;
  opts.threads = 2;
  Session session(&db, opts);
  // Two *overlapping* cells: interior-disjoint unions take the
  // per-polytope sum fast path and never sweep, so the square must
  // straddle the triangle's hypotenuse to force the sweep (several
  // x-sections per breakpoint interval) where a one-section ceiling
  // trips mid-decomposition.
  Request req = volume_request(
      "(x >= 0 & y >= 0 & x + y <= 1) |"
      " (x >= 1/4 & x <= 3/4 & y >= 1/4 & y <= 3/4)");
  req.budget.epsilon = 0.05;
  req.budget.quota = guard::ResourceQuota::unlimited();
  req.budget.quota.max_sweep_sections = 1;  // trip after one section
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  const Answer& ans = a.value();
  EXPECT_EQ(ans.status, AnswerStatus::kDegraded);
  EXPECT_TRUE(ans.guard.quota_tripped);
  EXPECT_EQ(ans.guard.tripped_quota, "sweep_sections");
  EXPECT_EQ(ans.guard.rung, guard::Rung::kMonteCarlo);
  // The MC fallback actually sampled and its bars contain the truth
  // (1/2 + 1/4 - 1/8 overlap = 5/8) at the requested epsilon.
  EXPECT_GT(ans.volume.points_evaluated, 0u);
  ASSERT_TRUE(ans.volume.estimate.has_value());
  EXPECT_NEAR(*ans.volume.estimate, 0.625, 0.05);
  ASSERT_TRUE(ans.volume.lower.has_value());
  ASSERT_TRUE(ans.volume.upper.has_value());
  EXPECT_LE(*ans.volume.lower, *ans.volume.upper);
  EXPECT_LE(*ans.volume.upper - *ans.volume.lower, 2 * 0.05 + 1e-12);
}

TEST(GuardSession, RewriteRequestReportsTypedQuotaError) {
  // Non-volume kinds have no sound fallback: a tripped quota is a typed
  // kResourceExhausted error, never a wrong formula.
  ConstraintDatabase db;
  Session session(&db);
  Request req;
  req.kind = RequestKind::kRewrite;
  req.query = kQuantifiedTriangle;
  req.budget.quota = guard::ResourceQuota::unlimited();
  req.budget.quota.max_qe_atoms = 1;
  auto a = session.run(req);
  ASSERT_FALSE(a.is_ok());
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(session.metrics().counter_value("guard_quota_trip_total"), 1u);
}

TEST(GuardSession, CancelTokenAndQuotaRacing) {
  // Deadline expiry and quota trips race on the same request: whichever
  // fires, the answer must stay kOk + degraded with [0,1]-sound bars.
  ConstraintDatabase db;
  Session session(&db);
  for (int i = 0; i < 8; ++i) {
    Request req = volume_request(kQuantifiedTriangle);
    req.budget.deadline_ms = 0;  // token already expired at arm time
    req.budget.quota = guard::ResourceQuota::unlimited();
    req.budget.quota.max_qe_atoms = 1;
    req.seed = static_cast<std::uint64_t>(i + 1);
    auto a = session.run(req);
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(a.value().status, AnswerStatus::kDegraded);
    ASSERT_TRUE(a.value().volume.estimate.has_value());
    EXPECT_GE(*a.value().volume.estimate, 0.0);
    EXPECT_LE(*a.value().volume.estimate, 1.0);
    EXPECT_GE(a.value().volume.lower, 0.0);
    EXPECT_LE(a.value().volume.upper, 1.0);
    EXPECT_LE(a.value().volume.lower, a.value().volume.upper);
  }
}

}  // namespace
}  // namespace cqa
