#include "cqa/logic/decide.h"

#include <gtest/gtest.h>

#include "cqa/logic/parser.h"
#include "cqa/poly/root_isolation.h"

namespace cqa {
namespace {

bool decide_str(const std::string& s) {
  auto f = parse_formula(s).value_or_die();
  return decide_sentence(f).value_or_die();
}

TEST(Decide, QuantifierFreeGround) {
  EXPECT_TRUE(decide_str("1 < 2"));
  EXPECT_FALSE(decide_str("2 < 1"));
  EXPECT_TRUE(decide_str("1 < 2 & 3 > 2"));
  EXPECT_TRUE(decide_str("1 > 2 | 3 > 2"));
  EXPECT_TRUE(decide_str("!(1 > 2)"));
}

TEST(Decide, SimpleExistentials) {
  EXPECT_TRUE(decide_str("E x. x > 0"));
  EXPECT_TRUE(decide_str("E x. x^2 = 2"));
  EXPECT_FALSE(decide_str("E x. x^2 = 0 - 1"));
  EXPECT_FALSE(decide_str("E x. x^2 < 0"));
  EXPECT_TRUE(decide_str("E x. x^2 <= 0"));
  EXPECT_TRUE(decide_str("E x. x^3 - 2*x + 1 = 0"));
}

TEST(Decide, SimpleUniversals) {
  EXPECT_TRUE(decide_str("A x. x^2 >= 0"));
  EXPECT_FALSE(decide_str("A x. x^2 > 0"));
  EXPECT_TRUE(decide_str("A x. x^2 + 1 > 0"));
  EXPECT_TRUE(decide_str("A x. x^2 - 2*x + 1 >= 0"));  // (x-1)^2
  EXPECT_FALSE(decide_str("A x. x > 0"));
}

TEST(Decide, IntervalReasoning) {
  EXPECT_TRUE(decide_str("E x. 0 < x & x < 1 & x^2 < x"));
  EXPECT_FALSE(decide_str("E x. 0 < x & x < 1 & x^2 > x"));
  EXPECT_TRUE(decide_str("E x. x > 1 & x^2 > x"));
  // Dense order: between any two points there is a third.
  EXPECT_TRUE(decide_str("E x. 1 < x & x < 1.0000001"));
}

TEST(Decide, AlgebraicWitnessRequired) {
  // The ONLY witness is x = sqrt(2): needs the algebraic-point branch.
  EXPECT_TRUE(decide_str("E x. x^2 = 2 & x > 1 & x < 2"));
  EXPECT_FALSE(decide_str("E x. x^2 = 2 & x > 2"));
  // Double root witness.
  EXPECT_TRUE(decide_str("E x. x^2 - 2*x + 1 <= 0"));
}

TEST(Decide, NestedSeparableQuantifiers) {
  // A x exists y independent atoms.
  EXPECT_TRUE(decide_str("A x. E y. y^2 = 2 & (x^2 >= 0)"));
  EXPECT_TRUE(decide_str("E x. E y. x > 0 & y < 0"));
  EXPECT_FALSE(decide_str("E x. A y. y^2 >= 0 & x^2 < 0"));
}

TEST(Decide, CoupledLinearAtoms) {
  // Atoms coupling two quantified variables: x < y. The decide()
  // procedure processes the OUTER variable first; its atoms mention the
  // inner y, which is unassigned -> unsupported, reported as such.
  auto f = parse_formula("E x. E y. x < y").value_or_die();
  auto r = decide_sentence(f);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(Decide, InnerCoupledWithAssignedOuter) {
  // Free variable assigned, so the atom y > x becomes univariate in y.
  VarTable vars;
  auto f = parse_formula("E y. y > x & y < 1", &vars).value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  EXPECT_TRUE(decide(f, {{x, Rational(0)}}).value_or_die());
  EXPECT_FALSE(decide(f, {{x, Rational(2)}}).value_or_die());
  EXPECT_FALSE(decide(f, {{x, Rational(1)}}).value_or_die());
}

TEST(Decide, BoundVariableShadowsAssignment) {
  // Assigning the same index as a bound variable must not leak inside.
  VarTable vars;
  auto f = parse_formula("E y. y^2 = 2", &vars).value_or_die();
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));
  EXPECT_TRUE(decide(f, {{y, Rational(100)}}).value_or_die());
}

TEST(Decide, WithAssignment) {
  auto f = parse_formula("x^2 + y^2 <= 1").value_or_die();
  EXPECT_TRUE(decide(f, {{0, Rational(0)}, {1, Rational(1)}}).value_or_die());
  EXPECT_FALSE(decide(f, {{0, Rational(1)}, {1, Rational(1)}}).value_or_die());
  // Missing assignment -> error.
  EXPECT_FALSE(decide(f, {{0, Rational(0)}}).is_ok());
}

TEST(Decide, UnusedQuantifiedVariable) {
  EXPECT_TRUE(decide_str("E x. 1 < 2"));
  EXPECT_FALSE(decide_str("E x. 1 > 2"));
  EXPECT_TRUE(decide_str("A x. 1 < 2"));
}

TEST(Decide, PolynomialSignAnalysis) {
  // x^3 - x = x(x-1)(x+1): positive on (-1,0) and (1,inf).
  EXPECT_TRUE(decide_str("E x. x^3 - x > 0 & x < 0"));
  EXPECT_TRUE(decide_str("E x. x^3 - x > 0 & x > 1"));
  EXPECT_FALSE(decide_str("E x. x^3 - x > 0 & 0 < x & x < 1"));
  EXPECT_FALSE(decide_str("E x. x^3 - x > 0 & x < 0 - 1"));
}

TEST(Decide, RationalBetween) {
  auto roots = isolate_real_roots(
      UPoly({Rational(-2), Rational(0), Rational(1)}));  // +-sqrt2
  AlgebraicNumber lo = AlgebraicNumber::from_root(roots[0]);
  AlgebraicNumber hi = AlgebraicNumber::from_root(roots[1]);
  Rational mid = rational_between(lo, hi);
  EXPECT_GT(hi.cmp(mid), 0);
  EXPECT_LT(lo.cmp(mid), 0);
  // Between two rationals.
  Rational m2 = rational_between(AlgebraicNumber::from_rational(Rational(1)),
                                 AlgebraicNumber::from_rational(Rational(2)));
  EXPECT_GT(m2, Rational(1));
  EXPECT_LT(m2, Rational(2));
  // Between a rational and an adjacent algebraic.
  Rational m3 = rational_between(AlgebraicNumber::from_rational(Rational(14, 10)),
                                 hi);
  EXPECT_GT(m3, Rational(14, 10));
  EXPECT_EQ(hi.cmp(m3), 1);
}

TEST(Decide, TarskiStyleFacts) {
  // Intermediate value: x^5 + x - 1 has a root in (0, 1).
  EXPECT_TRUE(decide_str("E x. x^5 + x - 1 = 0 & 0 < x & x < 1"));
  // Discriminant fact: x^2 + bx + 1 has a real root iff |b| >= 2, check b=3.
  auto f = parse_formula("E x. x^2 + b*x + 1 = 0").value_or_die();
  VarTable vars;
  auto g = parse_formula("E x. x^2 + b*x + 1 = 0", &vars).value_or_die();
  std::size_t b = static_cast<std::size_t>(vars.find("b"));
  EXPECT_TRUE(decide(g, {{b, Rational(3)}}).value_or_die());
  EXPECT_FALSE(decide(g, {{b, Rational(1)}}).value_or_die());
  EXPECT_TRUE(decide(g, {{b, Rational(2)}}).value_or_die());  // double root
}

}  // namespace
}  // namespace cqa
