#include "cqa/aggregate/polygon_area.h"

#include <gtest/gtest.h>

#include "cqa/logic/parser.h"

namespace cqa {
namespace {

// Registers a convex polygon as a binary f.r. relation.
void add_polygon(Database* db, const std::string& name,
                 const std::string& formula) {
  VarTable vars;
  vars.index_of("x");  // slot 0
  vars.index_of("y");  // slot 1
  auto f = parse_formula(formula, &vars).value_or_die();
  CQA_CHECK(db->add_constraint_relation(name, 2, f).is_ok());
}

TEST(PolygonProgram, VertexFormula) {
  Database db;
  add_polygon(&db, "P", "0 <= x & x <= 1 & 0 <= y & y <= 1");
  PolygonProgram prog = build_polygon_program("P");
  // Corners are vertices.
  EXPECT_TRUE(
      db.holds(prog.vertex, {{0, Rational(0)}, {1, Rational(0)}})
          .value_or_die());
  EXPECT_TRUE(
      db.holds(prog.vertex, {{0, Rational(1)}, {1, Rational(1)}})
          .value_or_die());
  // Edge midpoints and interior points are not.
  EXPECT_FALSE(
      db.holds(prog.vertex, {{0, Rational(1, 2)}, {1, Rational(0)}})
          .value_or_die());
  EXPECT_FALSE(
      db.holds(prog.vertex, {{0, Rational(1, 2)}, {1, Rational(1, 2)}})
          .value_or_die());
  // Points outside are not.
  EXPECT_FALSE(
      db.holds(prog.vertex, {{0, Rational(2)}, {1, Rational(0)}})
          .value_or_die());
}

TEST(PolygonProgram, AdjacencyFormula) {
  Database db;
  add_polygon(&db, "P", "0 <= x & x <= 1 & 0 <= y & y <= 1");
  PolygonProgram prog = build_polygon_program("P");
  auto adj = [&](std::int64_t ax, std::int64_t ay, std::int64_t bx,
                 std::int64_t by) {
    return db
        .holds(prog.adjacent, {{0, Rational(ax)},
                               {1, Rational(ay)},
                               {2, Rational(bx)},
                               {3, Rational(by)}})
        .value_or_die();
  };
  EXPECT_TRUE(adj(0, 0, 1, 0));   // bottom edge
  EXPECT_TRUE(adj(0, 0, 0, 1));   // left edge
  EXPECT_FALSE(adj(0, 0, 1, 1));  // diagonal
  EXPECT_FALSE(adj(0, 0, 0, 0));  // not distinct
}

TEST(PolygonProgram, Psi2Endpoints) {
  Database db;
  add_polygon(&db, "P", "0 <= x & x <= 2 & 0 <= y & y <= 1");
  PolygonProgram prog = build_polygon_program("P");
  // Coordinates of vertices: {0, 1, 2}.
  for (std::int64_t u : {0, 1, 2}) {
    EXPECT_TRUE(db.holds(prog.psi2, {{6, Rational(u)}}).value_or_die()) << u;
  }
  EXPECT_FALSE(db.holds(prog.psi2, {{6, Rational(5)}}).value_or_die());
}

TEST(PolygonArea, Triangle) {
  Database db;
  add_polygon(&db, "P", "0 <= x & 0 <= y & x + y <= 1");
  EXPECT_EQ(convex_polygon_area_geometric(db, "P").value_or_die(),
            Rational(1, 2));
  EXPECT_EQ(convex_polygon_area_in_language(db, "P").value_or_die(),
            Rational(1, 2));
}

TEST(PolygonArea, Square) {
  Database db;
  add_polygon(&db, "P", "0 <= x & x <= 1 & 0 <= y & y <= 1");
  EXPECT_EQ(convex_polygon_area_geometric(db, "P").value_or_die(),
            Rational(1));
  EXPECT_EQ(convex_polygon_area_in_language(db, "P").value_or_die(),
            Rational(1));
}

TEST(PolygonArea, Pentagon) {
  Database db;
  // Convex pentagon: cut one corner off a 2x2 square.
  add_polygon(&db, "P",
              "0 <= x & x <= 2 & 0 <= y & y <= 2 & x + y <= 3");
  EXPECT_EQ(convex_polygon_area_geometric(db, "P").value_or_die(),
            Rational(7, 2));
  EXPECT_EQ(convex_polygon_area_in_language(db, "P").value_or_die(),
            Rational(7, 2));
}

TEST(PolygonArea, RejectsWrongArity) {
  Database db;
  VarTable vars;
  auto f = parse_formula("0 <= x & x <= 1", &vars).value_or_die();
  CQA_CHECK(db.add_constraint_relation("L", 1, f).is_ok());
  EXPECT_FALSE(convex_polygon_area_in_language(db, "L").is_ok());
}

}  // namespace
}  // namespace cqa
