// Allocation accounting for the two-tier BigInt.
//
// The refactor's core performance claim is that small-value workloads --
// in particular the Fourier-Motzkin pivot loop over small rational
// coefficients -- never touch the heap: every BigInt stays inline and
// every Rational fast path runs in __int128 registers. This suite pins
// that claim through the meter's heap-node counter (arena_acquire calls
// note_bigint_heap_node_tl), so a future edit that silently reintroduces
// allocation on the hot path fails a test instead of a benchmark.
//
// It also pins the arena pool's recycling behavior: steady-state heap
// arithmetic must hit the freelist rather than malloc, and ArenaScope
// must trim a scope's pooled surplus back down on exit.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cqa/arith/arena.h"
#include "cqa/arith/bigint.h"
#include "cqa/arith/rational.h"
#include "cqa/constraint/fourier_motzkin.h"
#include "cqa/constraint/linear_atom.h"
#include "cqa/guard/meter.h"

namespace cqa {
namespace {

// The bench_a8_arith FM pivot shape: n lower and n upper bounds on x0
// with small rational coefficients, so fm_eliminate's pair loop churns
// n^2 combination rows of small-value Rational arithmetic.
std::vector<LinearConstraint> fm_rows_small(std::size_t n) {
  std::vector<LinearConstraint> rows;
  for (std::size_t i = 0; i < n; ++i) {
    LinearConstraint lo;
    lo.coeffs = {Rational(-1), Rational(static_cast<std::int64_t>(i % 3)),
                 Rational(1, static_cast<std::int64_t>(i + 1))};
    lo.rhs = Rational(-static_cast<std::int64_t>(i), 7);
    lo.cmp = LinCmp::kLe;
    rows.push_back(std::move(lo));
    LinearConstraint hi;
    hi.coeffs = {Rational(1), Rational(1, static_cast<std::int64_t>(i + 2)),
                 Rational(static_cast<std::int64_t>(i % 5))};
    hi.rhs = Rational(static_cast<std::int64_t>(100 + i), 3);
    hi.cmp = LinCmp::kLe;
    rows.push_back(std::move(hi));
  }
  return rows;
}

TEST(ArithAlloc, SmallFmPivotPathIsAllocationFree) {
  guard::WorkMeter meter;
  {
    guard::MeterScope scope(&meter);
    auto rows = fm_rows_small(24);
    auto out = fm_eliminate(rows, 0, nullptr);
    ASSERT_FALSE(out.empty());
    auto simplified = fm_simplify(out);
    ASSERT_FALSE(simplified.empty());
  }
  // Not one BigInt heap node for the whole elimination: every value fit
  // inline and every Rational op took the __int128 fast path.
  EXPECT_EQ(meter.bigint_heap_nodes(), 0u);
}

TEST(ArithAlloc, SmallRationalChurnIsAllocationFree) {
  guard::WorkMeter meter;
  {
    guard::MeterScope scope(&meter);
    Rational acc(0);
    for (int i = 1; i <= 5000; ++i) {
      acc += Rational(1, i % 97 + 1);
      acc *= Rational(i % 13 + 1, i % 11 + 1);
      if (i % 7 == 0) acc = Rational(i % 1000, 3);  // keep magnitudes small
    }
    ASSERT_FALSE(acc.num().is_zero() && acc.den().is_zero());
  }
  EXPECT_EQ(meter.bigint_heap_nodes(), 0u);
}

TEST(ArithAlloc, HeapWorkloadIsCountedByTheMeter) {
  guard::WorkMeter meter;
  {
    guard::MeterScope scope(&meter);
    const BigInt big = BigInt::pow(BigInt(3), 200);  // ~317 bits
    const BigInt sq = big * big;
    ASSERT_GT(sq.bit_length(), 600u);
  }
  EXPECT_GT(meter.bigint_heap_nodes(), 0u);
}

TEST(ArithAlloc, PoolRecyclesNodesInSteadyState) {
  const BigInt big = BigInt::pow(BigInt(7), 100);
  // Warm the pool: the first iterations may allocate fresh nodes.
  for (int i = 0; i < 8; ++i) {
    BigInt t = big * big;
    ASSERT_FALSE(t.fits_int64());
  }
  const arith::ArenaStats before = arith::arena_stats();
  for (int i = 0; i < 64; ++i) {
    BigInt t = big + big;
    t *= big;
    ASSERT_FALSE(t.fits_int64());
  }
  const arith::ArenaStats after = arith::arena_stats();
  const std::uint64_t acquires = after.acquires - before.acquires;
  const std::uint64_t hits = after.pool_hits - before.pool_hits;
  ASSERT_GT(acquires, 0u);
  // Steady state: every node came from the freelist, none from malloc.
  EXPECT_EQ(hits, acquires);
  // Everything transient was returned.
  EXPECT_EQ(after.live, before.live);
}

TEST(ArithAlloc, ArenaScopeTrimsPooledSurplus) {
  const std::uint64_t pooled_before = arith::arena_stats().pooled;
  {
    arith::ArenaScope scope;
    // Churn many simultaneously-live heap values so the pool grows well
    // past its retained working set.
    std::vector<BigInt> v;
    const BigInt big = BigInt::pow(BigInt(5), 120);
    for (int i = 0; i < 300; ++i) v.push_back(big + BigInt(i));
    v.clear();  // releases 300 nodes into the pool
    EXPECT_GT(arith::arena_stats().pooled, pooled_before);
  }
  // Scope exit bulk-frees the surplus beyond baseline + retained set.
  const std::uint64_t pooled_after = arith::arena_stats().pooled;
  EXPECT_LE(pooled_after, pooled_before + 64 + 8);
}

}  // namespace
}  // namespace cqa
