// Differential oracle for the compiled MC membership kernel: on
// identical point sets, CompiledMembership must produce hit counts
// EXACTLY equal to the eval_qf_double tree walk (mc_count_hits) -- the
// bitwise-identity contract that lets the runtime swap kernels without
// perturbing a single sample. Driven by FormulaGen across FO+LIN and
// FO+POLY, plus targeted cases for the corners: empty/always-true
// cells, parameters, params shared with element vars, the mixed
// linear/non-linear fallback, and cancellation.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/approx/compiled_membership.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/approx/random.h"
#include "cqa/check/generator.h"
#include "cqa/logic/parser.h"
#include "cqa/util/cancellation.h"

namespace cqa {
namespace {

// CompiledMembership is move-only; take it out of the Result explicitly.
CompiledMembership must_compile(const FormulaPtr& f,
                                std::vector<std::size_t> element_vars) {
  auto r = CompiledMembership::compile(f, std::move(element_vars));
  if (!r.is_ok()) {
    ADD_FAILURE() << "compile failed: " << r.status().to_string();
    return CompiledMembership();
  }
  return std::move(r).take();
}

std::vector<std::vector<double>> draw_points(std::uint64_t seed,
                                             std::size_t count,
                                             std::size_t dim) {
  WitnessOperator w(seed);
  return w.draw_sample(count, dim);
}

// Both kernels on the same points; returns the common hit count after
// asserting exact equality.
std::size_t assert_equal_counts(
    const FormulaPtr& f, const std::vector<std::size_t>& element_vars,
    const std::map<std::size_t, Rational>& params,
    const std::vector<std::vector<double>>& pts) {
  auto interp =
      mc_count_hits(f, element_vars, params, pts.data(), pts.size());
  EXPECT_TRUE(interp.is_ok()) << interp.status().to_string();
  auto compiled = CompiledMembership::compile(f, element_vars);
  EXPECT_TRUE(compiled.is_ok()) << compiled.status().to_string();
  auto binding = compiled.value().bind(params);
  EXPECT_TRUE(binding.is_ok()) << binding.status().to_string();
  auto hits = compiled.value().count_hits(binding.value(), pts.data(),
                                          pts.size());
  EXPECT_TRUE(hits.is_ok()) << hits.status().to_string();
  EXPECT_EQ(interp.value(), hits.value());
  return hits.value();
}

// --- Generator-driven differential sweep (>= 500 seeded trials) -------

void sweep(bool linear_only, std::uint64_t seed_base, std::size_t trials) {
  std::size_t fallback_formulas = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    GenOptions opt;
    opt.dimension = 1 + t % 3;
    opt.max_depth = 2 + t % 3;
    opt.max_atoms = 3 + t % 5;
    opt.linear_only = linear_only;
    opt.allow_eq_atoms = (t % 4) == 0;  // include measure-zero slices
    FormulaGen gen(opt);
    GeneratedFormula g = gen.generate(seed_base + t);
    const std::vector<std::size_t> element_vars = [&] {
      std::vector<std::size_t> ev;
      for (std::size_t i = 0; i < g.dimension; ++i) ev.push_back(i);
      return ev;
    }();
    auto pts = draw_points(seed_base * 31 + t, 64 + (t % 3) * 37,
                           g.dimension);
    assert_equal_counts(g.boxed, element_vars, {}, pts);
    assert_equal_counts(g.core, element_vars, {}, pts);

    auto compiled = CompiledMembership::compile(g.core, element_vars);
    ASSERT_TRUE(compiled.is_ok());
    if (compiled.value().fallback_atom_count() > 0) ++fallback_formulas;
    if (linear_only) {
      EXPECT_EQ(compiled.value().fallback_atom_count(), 0u)
          << "FO+LIN formula lowered atoms to the interpreter fallback: "
          << g.text();
    }
  }
  if (!linear_only) {
    // The FO+POLY sweep must actually exercise the fallback path.
    EXPECT_GT(fallback_formulas, trials / 4);
  }
}

TEST(CompiledKernelDifferential, LinearSweep) { sweep(true, 1000, 300); }

TEST(CompiledKernelDifferential, PolySweep) { sweep(false, 9000, 300); }

// --- Corner cells -----------------------------------------------------

TEST(CompiledKernel, AlwaysTrueAndEmptyCells) {
  auto pts = draw_points(7, 130, 2);
  EXPECT_EQ(assert_equal_counts(Formula::make_true(), {0, 1}, {}, pts),
            pts.size());
  EXPECT_EQ(assert_equal_counts(Formula::make_false(), {0, 1}, {}, pts),
            0u);
  // An unsatisfiable conjunction that does not constant-fold.
  VarTable vars;
  auto contradiction =
      parse_formula("x <= 1/4 & x >= 3/4", &vars).value_or_die();
  EXPECT_EQ(assert_equal_counts(contradiction, {0}, {}, pts), 0u);
}

TEST(CompiledKernel, ZeroPointsAndZeroDimension) {
  VarTable vars;
  auto f = parse_formula("x <= 1/2", &vars).value_or_die();
  std::vector<std::vector<double>> none;
  auto compiled = must_compile(f, {0});
  auto b = compiled.bind({}).value_or_die();
  EXPECT_EQ(compiled.count_hits(b, none.data(), 0).value_or_die(), 0u);
  // No element variables at all: the formula is decided by params only.
  auto g = must_compile(f, {});
  auto pts1 = draw_points(3, 90, 0);
  auto bt = g.bind({{0, Rational(1, 4)}}).value_or_die();
  EXPECT_EQ(g.count_hits(bt, pts1.data(), pts1.size()).value_or_die(),
            pts1.size());
  auto bf = g.bind({{0, Rational(3, 4)}}).value_or_die();
  EXPECT_EQ(g.count_hits(bf, pts1.data(), pts1.size()).value_or_die(), 0u);
}

TEST(CompiledKernel, ParametersMatchInterpreter) {
  VarTable vars;
  auto f = parse_formula("x + 2*a <= 1 & y - a^2 >= 0", &vars)
               .value_or_die();
  const std::size_t x = static_cast<std::size_t>(vars.find("x"));
  const std::size_t y = static_cast<std::size_t>(vars.find("y"));
  const std::size_t a = static_cast<std::size_t>(vars.find("a"));
  auto pts = draw_points(11, 256, 2);
  for (int num = -3; num <= 3; ++num) {
    std::map<std::size_t, Rational> params{{a, Rational(num, 7)}};
    assert_equal_counts(f, {x, y}, params, pts);
  }
  // Unbound parameter: both paths treat a as 0.0.
  assert_equal_counts(f, {x, y}, {}, pts);
}

TEST(CompiledKernel, ParamSharedWithElementVarIsInert) {
  // A parameter on an element variable loses to the per-point
  // coordinate in both kernels: the counts with and without the shared
  // binding are identical.
  VarTable vars;
  auto f = parse_formula("x + y <= 1", &vars).value_or_die();
  auto pts = draw_points(13, 200, 2);
  const std::size_t with_shared =
      assert_equal_counts(f, {0, 1}, {{0, Rational(5)}}, pts);
  const std::size_t without = assert_equal_counts(f, {0, 1}, {}, pts);
  EXPECT_EQ(with_shared, without);
}

TEST(CompiledKernel, OutOfRangeParamIsInvalidArgument) {
  VarTable vars;
  auto f = parse_formula("x <= 1/2", &vars).value_or_die();
  auto pts = draw_points(17, 10, 1);
  const std::map<std::size_t, Rational> params{{9, Rational(1)}};
  auto interp = mc_count_hits(f, {0}, params, pts.data(), pts.size());
  ASSERT_FALSE(interp.is_ok());
  EXPECT_EQ(interp.status().code(), StatusCode::kInvalidArgument);
  auto compiled = must_compile(f, {0});
  auto binding = compiled.bind(params);
  ASSERT_FALSE(binding.is_ok());
  EXPECT_EQ(binding.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompiledKernel, MixedLinearAndFallbackAtoms) {
  VarTable vars;
  auto f = parse_formula(
               "(x + y <= 1 | x^2 + y^2 <= 1/2) & !(x*y >= 1/3)", &vars)
               .value_or_die();
  auto compiled = must_compile(f, {0, 1});
  EXPECT_GT(compiled.linear_atom_count(), 0u);
  EXPECT_GT(compiled.fallback_atom_count(), 0u);
  auto pts = draw_points(19, 333, 2);
  assert_equal_counts(f, {0, 1}, {}, pts);
}

TEST(CompiledKernel, QuantifiedFormulaRejectedLikeInterpreter) {
  VarTable vars;
  auto f =
      parse_formula("E q . x <= q & q <= 1/2", &vars).value_or_die();
  auto compiled = CompiledMembership::compile(f, {0});
  ASSERT_FALSE(compiled.is_ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnsupported);
  auto pts = draw_points(23, 4, 1);
  auto interp = mc_count_hits(f, {0}, {}, pts.data(), pts.size());
  ASSERT_FALSE(interp.is_ok());
  EXPECT_EQ(interp.status().code(), compiled.status().code());
}

// --- Streaming entry point -------------------------------------------

TEST(CompiledKernel, StreamMatchesMaterializedDraws) {
  // count_hits_stream must consume the PRNG in exactly Xoshiro::point
  // order: counting over streamed draws equals counting over the same
  // seed's materialized sample.
  VarTable vars;
  auto f =
      parse_formula("x^2 + y^2 <= 1 & x + y >= 1/4", &vars).value_or_die();
  auto compiled = must_compile(f, {0, 1});
  auto b = compiled.bind({}).value_or_die();
  for (std::uint64_t seed : {1u, 77u, 4096u}) {
    for (std::size_t count : {0u, 1u, 63u, 64u, 65u, 1000u}) {
      auto pts = draw_points(seed, count, 2);
      Xoshiro rng(seed);
      auto stream = compiled.count_hits_stream(b, &rng, count);
      auto aos = compiled.count_hits(b, pts.data(), count);
      ASSERT_TRUE(stream.is_ok() && aos.is_ok());
      EXPECT_EQ(stream.value(), aos.value())
          << "seed=" << seed << " count=" << count;
    }
  }
}

// --- Cancellation -----------------------------------------------------

TEST(CompiledKernel, CancelledTokenStopsAtFirstPoll) {
  VarTable vars;
  auto f = parse_formula("x <= 1/2", &vars).value_or_die();
  auto compiled = must_compile(f, {0});
  auto b = compiled.bind({}).value_or_die();
  auto pts = draw_points(29, 1000, 1);
  CancelToken token;
  token.cancel();
  auto r = compiled.count_hits(b, pts.data(), pts.size(), &token);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // Same outcome as the interpreter kernel on the same token.
  auto interp = mc_count_hits(f, {0}, {}, pts.data(), pts.size(), &token);
  ASSERT_FALSE(interp.is_ok());
  EXPECT_EQ(interp.status().code(), StatusCode::kCancelled);
}

TEST(CompiledKernel, UnexpiredTokenCompletes) {
  VarTable vars;
  auto f = parse_formula("x <= 1/2", &vars).value_or_die();
  auto compiled = must_compile(f, {0});
  auto b = compiled.bind({}).value_or_die();
  auto pts = draw_points(31, 3 * kCancelPollStride + 17, 1);
  CancelToken token;
  token.set_deadline_after_ms(60000);
  auto r = compiled.count_hits(b, pts.data(), pts.size(), &token);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(),
            mc_count_hits(f, {0}, {}, pts.data(), pts.size()).value());
}

// --- Estimator plumbing ----------------------------------------------

TEST(McVolumeEstimator, CompiledChunksMatchInterpreterOnSharedSample) {
  Database db;
  VarTable vars;
  auto phi = parse_formula("x^2 + y^2 <= a", &vars).value_or_die();
  const std::size_t a = static_cast<std::size_t>(vars.find("a"));
  const std::size_t sample_size = 5000;
  const std::uint64_t seed = 99;
  McVolumeEstimator est(&db, phi, {0, 1}, sample_size, seed);
  // The estimator's sample is WitnessOperator(seed) by construction.
  auto sample = draw_points(seed, sample_size, 2);
  for (int num = 1; num <= 5; num += 2) {
    const std::map<std::size_t, Rational> params{{a, Rational(num, 5)}};
    // Repeated calls with identical params exercise the cached Binding.
    for (int repeat = 0; repeat < 2; ++repeat) {
      auto chunked = est.evaluate_chunk(0, sample_size, params);
      auto ref = mc_count_hits(phi, {0, 1}, params, sample.data(),
                               sample_size);
      ASSERT_TRUE(chunked.is_ok() && ref.is_ok());
      EXPECT_EQ(chunked.value(), ref.value()) << "a=" << num << "/5";
    }
  }
  // Chunk splits still sum to the whole.
  const std::map<std::size_t, Rational> params{{a, Rational(1, 2)}};
  auto whole = est.evaluate_chunk(0, sample_size, params).value_or_die();
  std::size_t split = 0;
  for (std::size_t lo = 0; lo < sample_size; lo += 777) {
    const std::size_t hi = std::min(sample_size, lo + 777);
    split += est.evaluate_chunk(lo, hi, params).value_or_die();
  }
  EXPECT_EQ(whole, split);
  // begin == end is a legal empty chunk.
  EXPECT_EQ(est.evaluate_chunk(123, 123, params).value_or_die(), 0u);
}

}  // namespace
}  // namespace cqa
