// cqa::guard fault injection: deterministic plans, each hook site's
// containment contract, and the chaos runner end-to-end.

#include "cqa/guard/fault.h"

#include <gtest/gtest.h>

#include <new>
#include <string>

#include "cqa/arith/bigint.h"
#include "cqa/check/chaos.h"
#include "cqa/guard/guard.h"
#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/parallel_sampler.h"
#include "cqa/runtime/session.h"

namespace cqa {
namespace {

guard::FaultPlan single_site_plan(guard::FaultSite site, double rate) {
  guard::FaultPlan plan;
  plan.seed = 99;
  plan.rate[static_cast<std::size_t>(site)] = rate;
  return plan;
}

TEST(FaultPlan, RandomPlansAreDeterministicAndBounded) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const guard::FaultPlan a = guard::FaultPlan::random(seed);
    const guard::FaultPlan b = guard::FaultPlan::random(seed);
    EXPECT_EQ(a.seed, b.seed);
    int active = 0;
    for (std::size_t i = 0; i < guard::kNumFaultSites; ++i) {
      EXPECT_EQ(a.rate[i], b.rate[i]) << "seed " << seed << " site " << i;
      EXPECT_GE(a.rate[i], 0.0);
      EXPECT_LE(a.rate[i], 1.0);
      if (a.rate[i] > 0.0) ++active;
    }
    EXPECT_GE(active, 1) << "seed " << seed;
    EXPECT_LE(active, 3) << "seed " << seed;
    EXPECT_TRUE(a.any());
  }
  EXPECT_FALSE(guard::FaultPlan::none().any());
}

TEST(FaultInjector, FireSequenceIsDeterministicPerArrival) {
  const auto plan = single_site_plan(guard::FaultSite::kBigIntAlloc, 0.3);
  std::vector<bool> first;
  {
    guard::FaultInjector injector(plan);
    for (int i = 0; i < 200; ++i) {
      first.push_back(injector.should_fire(guard::FaultSite::kBigIntAlloc));
    }
    EXPECT_EQ(injector.checks(guard::FaultSite::kBigIntAlloc), 200u);
    EXPECT_GT(injector.fired(guard::FaultSite::kBigIntAlloc), 0u);
    EXPECT_LT(injector.fired(guard::FaultSite::kBigIntAlloc), 200u);
  }
  guard::FaultInjector replay(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(replay.should_fire(guard::FaultSite::kBigIntAlloc),
              first[static_cast<std::size_t>(i)])
        << "arrival " << i;
  }
}

TEST(FaultInjector, NoInjectorInstalledMeansNoFires) {
  ASSERT_EQ(guard::current_fault_injector(), nullptr);
  EXPECT_FALSE(guard::fault_fires(guard::FaultSite::kBigIntAlloc));
  EXPECT_FALSE(guard::fault_fires(guard::FaultSite::kWorkerThrow));
}

TEST(FaultInjector, ScopedInstallAndRestore) {
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kSlowChunk, 1.0));
  {
    guard::ScopedFaultInjector scope(&injector);
    EXPECT_EQ(guard::current_fault_injector(), &injector);
    EXPECT_TRUE(guard::fault_fires(guard::FaultSite::kSlowChunk));
    EXPECT_FALSE(guard::fault_fires(guard::FaultSite::kCachePoison));
  }
  EXPECT_EQ(guard::current_fault_injector(), nullptr);
}

TEST(FaultSites, BigIntAllocThrowsBadAlloc) {
  const BigInt a = BigInt::pow(BigInt(3), 50);  // built before injection
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kBigIntAlloc, 1.0));
  guard::ScopedFaultInjector scope(&injector);
  EXPECT_THROW({ BigInt b = a * a; (void)b; }, std::bad_alloc);
  EXPECT_GT(injector.fired(guard::FaultSite::kBigIntAlloc), 0u);
}

TEST(FaultSites, CachePoisonIsDetectedAndRecovered) {
  // Poison persists past the injector's lifetime; detection must be
  // always-on. A poisoned entry reads as a miss, the caller recomputes
  // and overwrites, and the failure is counted.
  MetricsRegistry metrics;
  EvalCache cache(EvalCacheOptions{}, &metrics);
  {
    guard::FaultInjector injector(
        single_site_plan(guard::FaultSite::kCachePoison, 1.0));
    guard::ScopedFaultInjector scope(&injector);
    cache.store_volume("vol:k", Rational(1, 3));
  }
  // Injector long gone: the read still catches the corruption.
  auto r = cache.lookup_volume("vol:k");
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(cache.stats().checksum_failures, 1u);
  EXPECT_EQ(metrics.counter_value("guard_cache_poison_detected_total"), 1u);
  // Recovery: an honest overwrite makes the entry readable again.
  cache.store_volume("vol:k", Rational(1, 3));
  auto ok = cache.lookup_volume("vol:k");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, Rational(1, 3));
  EXPECT_EQ(cache.stats().checksum_failures, 1u);  // no new failures
}

TEST(FaultSites, CleanCacheRoundTripsWithChecksumOn) {
  EvalCache cache;
  cache.store_volume("v", Rational(7, 2));
  auto r = cache.lookup_volume("v");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Rational(7, 2));
  EXPECT_EQ(cache.stats().checksum_failures, 0u);
}

TEST(FaultSites, SpuriousCancelYieldsTypedSamplerError) {
  // With no CancelToken passed, dropped chunks must surface as a typed
  // error -- never a partial estimate dressed up as a full one.
  ConstraintDatabase db;
  auto phi = db.parse("x >= 0 & x <= 1/2");  // interns x at index 0
  ASSERT_TRUE(phi.is_ok());
  ParallelSampler sampler(&db.db(), phi.value(), {0}, 4096, 1, 256);
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kSpuriousCancel, 1.0));
  guard::ScopedFaultInjector scope(&injector);
  auto est = sampler.estimate({}, nullptr);
  ASSERT_FALSE(est.is_ok());
  EXPECT_EQ(est.status().code(), StatusCode::kCancelled);
  EXPECT_GT(injector.fired(guard::FaultSite::kSpuriousCancel), 0u);
}

TEST(FaultSites, SlowChunkOnlyAddsLatency) {
  ConstraintDatabase db;
  auto phi = db.parse("x >= 0 & x <= 1/2");  // interns x at index 0
  ASSERT_TRUE(phi.is_ok());
  ParallelSampler sampler(&db.db(), phi.value(), {0}, 1024, 1, 256);
  auto clean = sampler.estimate({}, nullptr);
  ASSERT_TRUE(clean.is_ok());
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kSlowChunk, 1.0));
  guard::ScopedFaultInjector scope(&injector);
  auto slow = sampler.estimate({}, nullptr);
  ASSERT_TRUE(slow.is_ok());
  EXPECT_EQ(clean.value(), slow.value());  // same value, just later
  EXPECT_GT(injector.fired(guard::FaultSite::kSlowChunk), 0u);
}

TEST(FaultSites, CompileMembershipFaultSurfacesAsResourceExhausted) {
  // The membership plan is lowered in the sampler's constructor; an
  // injected compile failure must surface from estimate() as the typed
  // exhaustion the guard ladder degrades on -- not a crash, not kOk.
  ConstraintDatabase db;
  auto phi = db.parse("x >= 0 & x <= 1/2");
  ASSERT_TRUE(phi.is_ok());
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kCompileMembership, 1.0));
  guard::ScopedFaultInjector scope(&injector);
  ParallelSampler sampler(&db.db(), phi.value(), {0}, 4096, 1, 256);
  auto est = sampler.estimate({}, nullptr);
  ASSERT_FALSE(est.is_ok());
  EXPECT_EQ(est.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(injector.fired(guard::FaultSite::kCompileMembership), 0u);
}

TEST(FaultSites, TinyResidentQuotaTripsMembershipCompile) {
  // Same rung reached without injection: a resident-bytes quota too
  // small for the plan trips the meter during compilation.
  ConstraintDatabase db;
  auto phi = db.parse("x >= 0 & x <= 1/2");
  ASSERT_TRUE(phi.is_ok());
  guard::ResourceQuota quota;
  quota.max_resident_bytes = 1;  // any plan overflows this
  guard::WorkMeter meter(quota);
  ParallelSampler sampler(&db.db(), phi.value(), {0}, 4096, 1, 256,
                          &meter);
  auto est = sampler.estimate({}, nullptr);
  ASSERT_FALSE(est.is_ok());
  EXPECT_EQ(est.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(meter.tripped());
}

TEST(GuardSession, CompileMembershipFaultDegradesMonteCarloVolume) {
  // Exhaustion during membership-plan compilation walks the guard
  // ladder: the pinned-MC request lands on the trivial-1/2 rung as a
  // degraded kOk answer instead of erroring out.
  ConstraintDatabase db;
  Session session(&db);
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = "x >= 0 & y >= 0 & x + y <= 1";
  req.output_vars = {"x", "y"};
  req.strategy = VolumeStrategy::kMonteCarlo;
  req.max_mc_samples = 4096;
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kCompileMembership, 1.0));
  guard::ScopedFaultInjector scope(&injector);
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  EXPECT_EQ(a.value().status, AnswerStatus::kDegraded);
  ASSERT_TRUE(a.value().volume.estimate.has_value());
  EXPECT_EQ(*a.value().volume.estimate, 0.5);
  EXPECT_EQ(a.value().volume.lower, 0.0);
  EXPECT_EQ(a.value().volume.upper, 1.0);
  EXPECT_GT(injector.fired(guard::FaultSite::kCompileMembership), 0u);
}

TEST(GuardSession, InjectedAllocFailureDegradesVolumeToSoundAnswer) {
  // Every BigInt multiply throws bad_alloc: Session must convert the
  // exact path's collapse into a degraded kOk answer, not crash and not
  // return kUnknown-style garbage.
  ConstraintDatabase db;
  Session session(&db);
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = "x >= 0 & y >= 0 & x + y <= 1";
  req.output_vars = {"x", "y"};
  guard::FaultInjector injector(
      single_site_plan(guard::FaultSite::kBigIntAlloc, 1.0));
  guard::ScopedFaultInjector scope(&injector);
  auto a = session.run(req);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().status, AnswerStatus::kDegraded);
  ASSERT_TRUE(a.value().volume.estimate.has_value());
  EXPECT_GE(a.value().volume.lower, 0.0);
  EXPECT_LE(a.value().volume.upper, 1.0);
  EXPECT_LE(a.value().volume.lower, a.value().volume.upper);
}

TEST(ChaosRunner, SmokeRunIsSoundAndObservable) {
  ChaosOptions options;
  options.trials = 40;
  options.seed = 2026;
  MetricsRegistry metrics;
  const ChaosReport report = run_chaos(options, &metrics);
  EXPECT_EQ(report.trials, 40u);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front().oracle << ": "
      << report.violations.front().detail;
  EXPECT_LE(report.stat_misses, report.allowed_stat_misses);
  EXPECT_TRUE(report.ok());
  // Every injected fault is observable in the metrics registry.
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_EQ(metrics.counter_value("guard_fault_injected_total"),
            report.faults_injected);
  std::uint64_t by_site = 0;
  for (std::size_t i = 0; i < guard::kNumFaultSites; ++i) {
    by_site += metrics.counter_value(
        std::string("guard_fault_injected_") +
        guard::fault_site_name(static_cast<guard::FaultSite>(i)) +
        "_total");
  }
  EXPECT_EQ(by_site, report.faults_injected);
}

TEST(ChaosRunner, EmptyAndZeroTrialEdges) {
  // Zero trials: vacuously ok (the faults_injected > 0 gate only binds
  // when trials ran).
  ChaosOptions none;
  none.trials = 0;
  const ChaosReport empty = run_chaos(none);
  EXPECT_EQ(empty.trials, 0u);
  EXPECT_TRUE(empty.ok());
  // Unknown oracle names select nothing and report cleanly.
  ChaosOptions unknown;
  unknown.trials = 10;
  unknown.oracle_names = {"no_such_oracle"};
  EXPECT_EQ(run_chaos(unknown).trials, 0u);
}

}  // namespace
}  // namespace cqa
