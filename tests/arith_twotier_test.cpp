// The two-tier BigInt representation boundary.
//
// The canonical invariant -- heap iff the value does not fit int64 --
// concentrates all the danger at +/- 2^63: INT64_MIN negation must
// promote, INT64_MAX + 1 must carry into the first heap limb,
// subtraction and division must re-inline heap values that shrink back
// into range, and equality/hash must never depend on which side of the
// boundary an operand was computed on. This suite pins each edge
// explicitly and then drives a randomized differential check against
// __int128 arithmetic straddling the boundary, plus
// Karatsuba-vs-schoolbook around the limb threshold.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "cqa/approx/random.h"
#include "cqa/arith/bigint.h"

namespace cqa {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

BigInt from_i128_via_ops(__int128 v) {
  // Builds the value through public arithmetic only (shifts + adds), so
  // the result exercises the promote/canonicalize paths under test.
  const bool neg = v < 0;
  unsigned __int128 mag =
      neg ? static_cast<unsigned __int128>(0) - static_cast<unsigned __int128>(v)
          : static_cast<unsigned __int128>(v);
  BigInt out;
  for (int shift = 96; shift >= 0; shift -= 32) {
    out = out.shl(32) +
          BigInt(static_cast<std::int64_t>((mag >> shift) & 0xffffffffu));
  }
  return neg ? -out : out;
}

TEST(TwoTier, Int64BoundsStayInline) {
  EXPECT_TRUE(BigInt(kMax).fits_int64());
  EXPECT_TRUE(BigInt(kMin).fits_int64());
  EXPECT_EQ(BigInt(kMin).to_int64().value(), kMin);
  EXPECT_EQ(BigInt(kMax).to_int64().value(), kMax);
}

TEST(TwoTier, Int64MinNegationPromotes) {
  const BigInt m(kMin);
  const BigInt n = -m;  // 2^63: one past INT64_MAX
  EXPECT_FALSE(n.fits_int64());
  EXPECT_EQ(n.to_string(), "9223372036854775808");
  EXPECT_FALSE(n.to_int64().is_ok());
  // ... and negating back re-inlines to exactly INT64_MIN.
  const BigInt back = -n;
  EXPECT_TRUE(back.fits_int64());
  EXPECT_EQ(back, m);
  // abs takes the same edge.
  EXPECT_EQ(m.abs(), n);
  EXPECT_FALSE(m.abs().fits_int64());
}

TEST(TwoTier, CarryIntoFirstHeapLimb) {
  const BigInt a = BigInt(kMax) + BigInt(1);
  EXPECT_FALSE(a.fits_int64());
  EXPECT_EQ(a.to_string(), "9223372036854775808");
  const BigInt b = BigInt(kMin) - BigInt(1);
  EXPECT_FALSE(b.fits_int64());
  EXPECT_EQ(b.to_string(), "-9223372036854775809");
  // In-place compound ops hit the same promotion.
  BigInt c(kMax);
  c += BigInt(1);
  EXPECT_EQ(c, a);
  c -= BigInt(1);
  EXPECT_TRUE(c.fits_int64());
  EXPECT_EQ(c, BigInt(kMax));
}

TEST(TwoTier, ShrinkBackToInline) {
  const BigInt big = BigInt(kMax) + BigInt(5);  // heap
  EXPECT_FALSE(big.fits_int64());
  const BigInt small = big - BigInt(5);
  EXPECT_TRUE(small.fits_int64());
  EXPECT_EQ(small.int64_unchecked(), kMax);
  // Division shrink-back.
  const BigInt q = big / BigInt(1000);
  EXPECT_TRUE(q.fits_int64());
  // Shift shrink-back.
  EXPECT_TRUE(big.shr(1).fits_int64());
  // The negative boundary: -(2^63) - 1 + 1 == INT64_MIN re-inlines.
  const BigInt nb = BigInt(kMin) - BigInt(1) + BigInt(1);
  EXPECT_TRUE(nb.fits_int64());
  EXPECT_EQ(nb.int64_unchecked(), kMin);
}

TEST(TwoTier, EqualityAndHashAreRepresentationIndependent) {
  // The same value reached inline and via heap round-trips must compare
  // equal and hash identically (Rational::hash feeds cache checksums).
  const BigInt direct(kMax);
  const BigInt computed = (BigInt(kMax) + BigInt(7)) - BigInt(7);
  EXPECT_TRUE(computed.fits_int64());
  EXPECT_EQ(direct, computed);
  EXPECT_EQ(direct.hash(), computed.hash());

  const BigInt hmin = -( -BigInt(kMin) );  // through the heap and back
  EXPECT_EQ(hmin.hash(), BigInt(kMin).hash());
  EXPECT_EQ(hmin, BigInt(kMin));

  // Inline never equals heap (canonical form guarantees the semantics).
  EXPECT_NE(BigInt(kMax), BigInt(kMax) + BigInt(1));
}

TEST(TwoTier, DivmodAtTheOverflowCorner) {
  // INT64_MIN / -1 is the one hardware-division overflow: the quotient
  // is 2^63 and must land on the heap.
  const auto dm = BigInt(kMin).divmod(BigInt(-1));
  EXPECT_FALSE(dm.quot.fits_int64());
  EXPECT_EQ(dm.quot.to_string(), "9223372036854775808");
  EXPECT_TRUE(dm.rem.is_zero());
  // gcd(INT64_MIN, 0) = 2^63 exceeds INT64_MAX as well.
  const BigInt g = BigInt::gcd(BigInt(kMin), BigInt(0));
  EXPECT_FALSE(g.fits_int64());
  EXPECT_EQ(g.to_string(), "9223372036854775808");
}

TEST(TwoTier, RandomizedDifferentialAroundTheBoundary) {
  Xoshiro rng(20260808);
  auto random_near_boundary = [&]() -> __int128 {
    // Values within +/- 2^16 of {0, +/-2^31, +/-2^62, +/-2^63, +/-2^64}.
    static const __int128 centers[] = {
        0,
        __int128{1} << 31,
        __int128{1} << 62,
        __int128{1} << 63,
        __int128{1} << 64,
    };
    __int128 c = centers[rng.next() % 5];
    if (rng.next() & 1) c = -c;
    const std::int64_t jitter =
        static_cast<std::int64_t>(rng.next() % 131072) - 65536;
    return c + jitter;
  };
  for (int i = 0; i < 2000; ++i) {
    const __int128 x = random_near_boundary();
    const __int128 y = random_near_boundary();
    const BigInt bx = from_i128_via_ops(x);
    const BigInt by = from_i128_via_ops(y);
    // Construction canonicalizes: inline exactly when the value fits.
    EXPECT_EQ(bx.fits_int64(), x >= kMin && x <= kMax);
    ASSERT_EQ(bx, from_i128_via_ops(x));
    EXPECT_EQ(bx + by, from_i128_via_ops(x + y));
    EXPECT_EQ(bx - by, from_i128_via_ops(x - y));
    EXPECT_EQ(bx.cmp(by), x < y ? -1 : (x > y ? 1 : 0));
    // Products can exceed 128 bits only for the 2^64 centers; keep the
    // oracle exact by multiplying a boundary value with a small one.
    const std::int64_t s =
        static_cast<std::int64_t>(rng.next() % 65536) - 32768;
    EXPECT_EQ(bx * BigInt(s), from_i128_via_ops(x * s));
    if (s != 0) {
      const auto dm = bx.divmod(BigInt(s));
      EXPECT_EQ(dm.quot, from_i128_via_ops(x / s));
      EXPECT_EQ(dm.rem, from_i128_via_ops(x % s));
      EXPECT_EQ(dm.quot * BigInt(s) + dm.rem, bx);
    }
    // Compound ops agree with their binary forms.
    BigInt acc = bx;
    acc += by;
    EXPECT_EQ(acc, bx + by);
    acc -= by;
    EXPECT_EQ(acc, bx);
    acc *= BigInt(s);
    EXPECT_EQ(acc, bx * BigInt(s));
  }
}

TEST(TwoTier, KaratsubaMatchesSchoolbookAroundThreshold) {
  Xoshiro rng(777);
  auto rand_limbs = [&](std::size_t limbs) {
    BigInt x;
    for (std::size_t i = 0; i < limbs; ++i) {
      x = x.shl(32) +
          BigInt(static_cast<std::int64_t>(rng.next() & 0xffffffffu));
    }
    if (rng.next() & 1) x = -x;
    return x;
  };
  const std::size_t t = BigInt::kKaratsubaLimbs;
  // Straddle the threshold, including unbalanced splits and the
  // just-below/just-above pairs where the dispatch flips.
  const std::size_t sizes[] = {1, 2, t - 1, t, t + 1, 2 * t, 3 * t + 7};
  for (std::size_t na : sizes) {
    for (std::size_t nb : sizes) {
      const BigInt a = rand_limbs(na);
      const BigInt b = rand_limbs(nb);
      const BigInt fast = a * b;
      const BigInt oracle = BigInt::mul_schoolbook(a, b);
      ASSERT_EQ(fast, oracle)
          << "limbs " << na << " x " << nb << ": " << a.to_string() << " * "
          << b.to_string();
      EXPECT_EQ(fast.hash(), oracle.hash());
    }
  }
  // Squaring (perfectly balanced, maximal carry chains) right at 2*t.
  const BigInt s = rand_limbs(2 * t);
  EXPECT_EQ(s * s, BigInt::mul_schoolbook(s, s));
}

TEST(TwoTier, StringRoundTripAcrossTheBoundary) {
  const __int128 k2_63 = static_cast<__int128>(1) << 63;
  const struct {
    const char* text;
    __int128 value;
  } cases[] = {
      {"9223372036854775807", k2_63 - 1},    // INT64_MAX
      {"9223372036854775808", k2_63},        // 2^63
      {"-9223372036854775808", -k2_63},      // INT64_MIN
      {"-9223372036854775809", -k2_63 - 1},  // first negative heap value
      {"18446744073709551616", k2_63 * 2},   // 2^64
  };
  for (const auto& c : cases) {
    const BigInt v = BigInt::parse(c.text);
    EXPECT_EQ(v.to_string(), c.text);
    EXPECT_EQ(v, from_i128_via_ops(c.value));
    EXPECT_EQ(v.fits_int64(), c.value >= kMin && c.value <= kMax);
  }
}

}  // namespace
}  // namespace cqa
