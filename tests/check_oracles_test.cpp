// cqa::check oracle and runner tests: every metamorphic law holds over
// 200 seeded trials, fault injection is detected and shrunk, and the
// delta budget admits the right number of statistical misses.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "cqa/check/runner.h"

namespace cqa {
namespace {

// Runs one oracle for `trials` trials and returns its stats.
OracleStats run_one(const std::string& oracle, std::size_t trials,
                    std::uint64_t seed = 1,
                    const std::string& fault = "") {
  CheckOptions options;
  options.trials = trials;
  options.seed = seed;
  options.oracle_names = {oracle};
  options.fault_oracle = fault;
  const CheckReport report = run_checks(options);
  EXPECT_EQ(report.oracles.size(), 1u) << oracle;
  return report.oracles.empty() ? OracleStats{} : report.oracles[0];
}

class MetamorphicLaw200 : public ::testing::TestWithParam<const char*> {};

TEST_P(MetamorphicLaw200, HoldsOver200SeededTrials) {
  const OracleStats stats = run_one(GetParam(), 200);
  EXPECT_FALSE(stats.violated) << stats.first_detail;
  EXPECT_EQ(stats.failed, 0u) << stats.first_detail;
  EXPECT_EQ(stats.trials, 200u);
  // The law must actually be exercised, not skipped into vacuity.
  EXPECT_GT(stats.passed, 100u);
}

INSTANTIATE_TEST_SUITE_P(CheckOracles, MetamorphicLaw200,
                         ::testing::Values("translation_invariance",
                                           "union_additivity",
                                           "conjunction_monotonicity",
                                           "scaling",
                                           "complement_within_box"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(DifferentialOracleTest, ExactVsMcWithinDeltaBudget) {
  const OracleStats stats = run_one("exact_vs_mc", 300);
  EXPECT_TRUE(stats.statistical);
  EXPECT_FALSE(stats.violated) << stats.first_detail;
  EXPECT_LE(stats.failed, stats.allowed_failures);
}

TEST(DifferentialOracleTest, QeMembershipAgrees) {
  const OracleStats stats = run_one("qe_membership", 200);
  EXPECT_FALSE(stats.violated) << stats.first_detail;
  EXPECT_EQ(stats.failed, 0u) << stats.first_detail;
  EXPECT_GT(stats.passed, 100u);
}

TEST(DifferentialOracleTest, SerialVsParallelBitIdentical) {
  const OracleStats stats = run_one("serial_vs_parallel", 100);
  EXPECT_EQ(stats.failed, 0u) << stats.first_detail;
  EXPECT_GT(stats.passed, 50u);
}

TEST(DifferentialOracleTest, CacheInvisible) {
  const OracleStats stats = run_one("cache_hot_vs_cold", 100);
  EXPECT_EQ(stats.failed, 0u) << stats.first_detail;
  EXPECT_GT(stats.passed, 50u);
}

// --- Fault injection: the harness must catch a broken engine ----------

TEST(FaultInjectionTest, DeterministicOracleDetectsAndShrinks) {
  CheckOptions options;
  options.trials = 5;
  options.seed = 1;
  options.oracle_names = {"complement_within_box"};
  options.fault_oracle = "complement_within_box";
  const CheckReport report = run_checks(options);
  ASSERT_EQ(report.oracles.size(), 1u);
  const OracleStats& stats = report.oracles[0];
  EXPECT_TRUE(stats.violated);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(stats.failed, 0u);
  ASSERT_FALSE(stats.repros.empty());
  // Shrunken repro is no larger than the original seed's formula.
  FormulaGen gen{GenOptions{}};
  for (const Repro& repro : stats.repros) {
    auto shrunk = repro_formula(repro);
    ASSERT_TRUE(shrunk.is_ok());
    const GeneratedFormula original = gen.generate(repro.seed);
    EXPECT_LE(node_count(shrunk.value().core), node_count(original.core));
  }
}

TEST(FaultInjectionTest, EveryOracleDetectsItsFault) {
  for (const Oracle* oracle : all_oracles()) {
    const std::size_t trials = 8;
    const OracleStats stats =
        run_one(oracle->name(), trials, /*seed=*/1, oracle->name());
    // Skips are legitimate (degenerate formulas) but at least one
    // non-skipped trial must exist and every such trial must fail.
    EXPECT_GT(stats.failed, 0u) << oracle->name()
                                << " never detected its injected fault";
    EXPECT_EQ(stats.passed, 0u)
        << oracle->name() << " passed despite an injected fault: "
        << stats.first_detail;
  }
}

TEST(FaultInjectionTest, FaultInOneOracleLeavesOthersGreen) {
  CheckOptions options;
  options.trials = 5;
  options.oracle_names = {"scaling", "union_additivity"};
  options.fault_oracle = "scaling";
  const CheckReport report = run_checks(options);
  ASSERT_EQ(report.oracles.size(), 2u);
  EXPECT_TRUE(report.oracles[0].violated);
  EXPECT_FALSE(report.oracles[1].violated);
}

// --- Delta budget ------------------------------------------------------

TEST(DeltaBudgetTest, BinomialBound) {
  // mean + 3 sigma + 1: N=0 -> 0; small N dominated by the +1 slack.
  EXPECT_EQ(allowed_failures(0, 0.1), 0u);
  EXPECT_GE(allowed_failures(10, 0.1), 2u);
  // N=10000, delta=0.05: mean 500, sigma ~21.8 -> ~566.
  const std::size_t big = allowed_failures(10000, 0.05);
  EXPECT_GT(big, 500u);
  EXPECT_LT(big, 650u);
  // Monotone in N.
  EXPECT_LE(allowed_failures(100, 0.1), allowed_failures(1000, 0.1));
}

TEST(DeltaBudgetTest, StatisticalViolationOnlyBeyondBudget) {
  // Injected fault fails every trial: way beyond any delta budget.
  const OracleStats stats =
      run_one("exact_vs_mc", 20, /*seed=*/1, "exact_vs_mc");
  EXPECT_TRUE(stats.statistical);
  EXPECT_TRUE(stats.violated);
  EXPECT_GT(stats.failed, stats.allowed_failures);
}

// --- Runner plumbing ---------------------------------------------------

TEST(RunnerTest, MetricsLandInRegistry) {
  CheckOptions options;
  options.trials = 10;
  options.oracle_names = {"scaling"};
  MetricsRegistry metrics;
  run_checks(options, &metrics);
  const std::uint64_t pass = metrics.counter_value("check.scaling.pass");
  const std::uint64_t skip = metrics.counter_value("check.scaling.skip");
  EXPECT_EQ(pass + skip, 10u);
  // Oracle sessions' own runtime counters were absorbed alongside.
  EXPECT_FALSE(metrics.dump().empty());
}

TEST(RunnerTest, ReproFileRoundTripsThroughReplay) {
  CheckOptions options;
  options.trials = 3;
  options.oracle_names = {"complement_within_box"};
  options.fault_oracle = "complement_within_box";
  options.repro_dir = ::testing::TempDir();
  const CheckReport report = run_checks(options);
  ASSERT_FALSE(report.oracles[0].repros.empty());
  const std::string path = options.repro_dir + "/complement_within_box-" +
                           std::to_string(report.oracles[0].repros[0].seed) +
                           ".cqa";
  auto loaded = read_repro_file(path);
  ASSERT_TRUE(loaded.is_ok()) << path;
  // Without the injected fault the repro no longer reproduces -- which
  // is itself the assertion that replay runs the real oracle.
  auto replayed = replay_repro(loaded.value());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ(replayed.value().status, TrialStatus::kPass);
  std::remove(path.c_str());
}

TEST(RunnerTest, UnknownOracleNamesAreIgnored) {
  CheckOptions options;
  options.trials = 1;
  options.oracle_names = {"no_such_oracle"};
  const CheckReport report = run_checks(options);
  EXPECT_TRUE(report.oracles.empty());
  EXPECT_TRUE(report.ok());
}

TEST(RunnerTest, FindOracleCoversRegistry) {
  EXPECT_EQ(find_oracle("no_such_oracle"), nullptr);
  for (const Oracle* oracle : all_oracles()) {
    EXPECT_EQ(find_oracle(oracle->name()), oracle);
  }
}

}  // namespace
}  // namespace cqa
