#include "cqa/logic/formula.h"

#include <gtest/gtest.h>

#include "cqa/logic/parser.h"
#include "cqa/logic/printer.h"
#include "cqa/logic/transform.h"

namespace cqa {
namespace {

Polynomial X() { return Polynomial::variable(0); }
Polynomial Y() { return Polynomial::variable(1); }
Polynomial C(std::int64_t v) { return Polynomial::constant(Rational(v)); }

TEST(Formula, ConstantsFold) {
  EXPECT_EQ(Formula::atom(C(1), RelOp::kGt)->kind(), Formula::Kind::kTrue);
  EXPECT_EQ(Formula::atom(C(1), RelOp::kLt)->kind(), Formula::Kind::kFalse);
  EXPECT_EQ(Formula::atom(Polynomial(), RelOp::kEq)->kind(),
            Formula::Kind::kTrue);
  EXPECT_EQ(Formula::f_and(Formula::make_true(), Formula::make_false())->kind(),
            Formula::Kind::kFalse);
  EXPECT_EQ(Formula::f_or(Formula::make_true(), Formula::make_false())->kind(),
            Formula::Kind::kTrue);
  EXPECT_EQ(Formula::f_and({})->kind(), Formula::Kind::kTrue);
  EXPECT_EQ(Formula::f_or({})->kind(), Formula::Kind::kFalse);
}

TEST(Formula, NotFoldsAtoms) {
  FormulaPtr a = Formula::lt(X(), C(1));  // x - 1 < 0
  FormulaPtr na = Formula::f_not(a);
  EXPECT_EQ(na->kind(), Formula::Kind::kAtom);
  EXPECT_EQ(na->op(), RelOp::kGe);
  FormulaPtr nna = Formula::f_not(na);
  EXPECT_EQ(nna->op(), RelOp::kLt);
  EXPECT_EQ(nna->poly(), a->poly());
}

TEST(Formula, AndOrFlatten) {
  FormulaPtr a = Formula::lt(X(), C(1));
  FormulaPtr b = Formula::gt(X(), C(0));
  FormulaPtr c = Formula::lt(Y(), C(2));
  FormulaPtr f = Formula::f_and(Formula::f_and(a, b), c);
  EXPECT_EQ(f->children().size(), 3u);
  FormulaPtr g = Formula::f_or(Formula::f_or(a, b), c);
  EXPECT_EQ(g->children().size(), 3u);
}

TEST(Formula, FreeVarsAndQuantifiers) {
  // E y. x < y & y < z
  FormulaPtr body = Formula::f_and(Formula::lt(X(), Y()),
                                   Formula::lt(Y(), Polynomial::variable(2)));
  FormulaPtr f = Formula::exists(1, body);
  auto fv = f->free_vars();
  EXPECT_EQ(fv.size(), 2u);
  EXPECT_TRUE(fv.count(0));
  EXPECT_TRUE(fv.count(2));
  EXPECT_FALSE(fv.count(1));
  EXPECT_FALSE(f->is_quantifier_free());
  EXPECT_TRUE(body->is_quantifier_free());
  EXPECT_EQ(f->count_quantifiers(), 1u);
  EXPECT_EQ(f->count_atoms(), 2u);
  EXPECT_EQ(f->max_var(), 2);
}

TEST(Formula, IsLinear) {
  EXPECT_TRUE(Formula::lt(X() + Y(), C(1))->is_linear());
  EXPECT_FALSE(Formula::lt(X() * Y(), C(1))->is_linear());
  FormulaPtr p = Formula::predicate("S", {X() * X()});
  EXPECT_FALSE(p->is_linear());
  EXPECT_TRUE(p->has_predicates());
  EXPECT_FALSE(Formula::lt(X(), C(1))->has_predicates());
}

TEST(Transform, NnfPushesNegation) {
  // !(x < 1 & y > 0) -> x >= 1 | y <= 0
  FormulaPtr f = Formula::f_not(
      Formula::f_and(Formula::lt(X(), C(1)), Formula::gt(Y(), C(0))));
  FormulaPtr n = to_nnf(f);
  EXPECT_EQ(n->kind(), Formula::Kind::kOr);
  EXPECT_EQ(n->children()[0]->op(), RelOp::kGe);
  EXPECT_EQ(n->children()[1]->op(), RelOp::kLe);
}

TEST(Transform, NnfQuantifierDuality) {
  // !(E x. x > 0) -> A x. x <= 0
  FormulaPtr f = Formula::f_not(Formula::exists(0, Formula::gt(X(), C(0))));
  FormulaPtr n = to_nnf(f);
  EXPECT_EQ(n->kind(), Formula::Kind::kForall);
  EXPECT_EQ(n->children()[0]->op(), RelOp::kLe);
}

TEST(Transform, SubstituteVarConstant) {
  FormulaPtr f = Formula::lt(X() + Y(), C(3));
  FormulaPtr g = substitute_var(f, 0, Rational(1));
  EXPECT_EQ(g->kind(), Formula::Kind::kAtom);
  EXPECT_EQ(g->poly().degree_in(0), 0);
  // y + 1 - 3 < 0, i.e. y - 2 < 0.
  EXPECT_EQ(g->poly(), Y() - C(2));
}

TEST(Transform, SubstituteVarsCaptureAvoidance) {
  // f = E y. y > x. Substituting x := y must NOT capture.
  FormulaPtr f = Formula::exists(1, Formula::gt(Y(), X()));
  std::map<std::size_t, Polynomial> sub;
  sub.emplace(0u, Y());
  FormulaPtr g = substitute_vars(f, sub);
  // Result: E w. w > y, with w a fresh variable != 1.
  EXPECT_EQ(g->kind(), Formula::Kind::kExists);
  EXPECT_NE(g->var(), 1u);
  auto fv = g->free_vars();
  EXPECT_TRUE(fv.count(1));
  EXPECT_EQ(fv.size(), 1u);
}

TEST(Transform, SubstitutePredicate) {
  // f = S(x+1) & x > 0; def of S(v0) = v0 < 2.
  FormulaPtr f = Formula::f_and(Formula::predicate("S", {X() + C(1)}),
                                Formula::gt(X(), C(0)));
  FormulaPtr def = Formula::lt(X(), C(2));  // v0 < 2 (v0 is var 0)
  FormulaPtr g = substitute_predicate(f, "S", 1, def);
  EXPECT_FALSE(g->has_predicates());
  // g should be (x+1 < 2) & (x > 0) == (x - 1 < 0) & ...
  EXPECT_EQ(g->kind(), Formula::Kind::kAnd);
  EXPECT_EQ(g->children()[0]->poly(), X() - C(1));
}

TEST(Transform, DnfBasics) {
  // (a | b) & c -> ac | bc
  FormulaPtr a = Formula::lt(X(), C(0));
  FormulaPtr b = Formula::gt(X(), C(5));
  FormulaPtr c = Formula::lt(Y(), C(1));
  auto dnf = to_dnf(Formula::f_and(Formula::f_or(a, b), c));
  ASSERT_TRUE(dnf.is_ok());
  EXPECT_EQ(dnf.value().size(), 2u);
  EXPECT_EQ(dnf.value()[0].size(), 2u);
  EXPECT_EQ(dnf.value()[1].size(), 2u);
}

TEST(Transform, DnfOfTrueFalse) {
  auto t = to_dnf(Formula::make_true());
  ASSERT_TRUE(t.is_ok());
  ASSERT_EQ(t.value().size(), 1u);
  EXPECT_TRUE(t.value()[0].empty());
  auto f = to_dnf(Formula::make_false());
  ASSERT_TRUE(f.is_ok());
  EXPECT_TRUE(f.value().empty());
}

TEST(Transform, DnfNegationFolded) {
  // !(x < 1 | y = 0) -> x >= 1 & y != 0 : one cell, two literals.
  FormulaPtr f = Formula::f_not(
      Formula::f_or(Formula::lt(X(), C(1)), Formula::eq(Y(), C(0))));
  auto dnf = to_dnf(f);
  ASSERT_TRUE(dnf.is_ok());
  ASSERT_EQ(dnf.value().size(), 1u);
  EXPECT_EQ(dnf.value()[0].size(), 2u);
}

TEST(Transform, DnfRejectsQuantified) {
  FormulaPtr f = Formula::exists(0, Formula::gt(X(), C(0)));
  EXPECT_FALSE(to_dnf(f).is_ok());
}

TEST(Transform, FromDnfRoundTrip) {
  FormulaPtr f = Formula::f_or(
      Formula::f_and(Formula::gt(X(), C(0)), Formula::lt(X(), C(1))),
      Formula::eq(Y(), C(2)));
  auto dnf = to_dnf(f);
  ASSERT_TRUE(dnf.is_ok());
  FormulaPtr g = from_dnf(dnf.value());
  // Same atoms count and same DNF shape after re-normalizing.
  auto dnf2 = to_dnf(g);
  ASSERT_TRUE(dnf2.is_ok());
  EXPECT_EQ(dnf.value().size(), dnf2.value().size());
}

TEST(Printer, RendersReadably) {
  VarTable vars;
  auto f = parse_formula("E y. x < y & y < 1", &vars);
  ASSERT_TRUE(f.is_ok());
  std::string s = to_string(f.value(), vars);
  EXPECT_NE(s.find("E y."), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

}  // namespace
}  // namespace cqa
