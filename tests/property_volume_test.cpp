// Property-based tests for the volume engines: randomized workloads,
// parameterized over seeds (TEST_P), checking the measure-theoretic laws
// the implementation must satisfy exactly.

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/geometry/affine.h"
#include "cqa/volume/inclusion_exclusion.h"
#include "cqa/volume/semilinear_volume.h"

namespace cqa {
namespace {

// Random generator of small rational boxes and half-plane-cut cells.
class CellGen {
 public:
  explicit CellGen(std::uint64_t seed) : rng_(seed) {}

  Rational small_rational(int num_range, int den_max) {
    std::int64_t n = static_cast<std::int64_t>(rng_.next() %
                                               (2 * num_range + 1)) -
                     num_range;
    std::int64_t d = 1 + static_cast<std::int64_t>(rng_.next() %
                                                   static_cast<std::uint64_t>(
                                                       den_max));
    return Rational(n, d);
  }

  LinearCell box(std::size_t dim) {
    LinearCell cell(dim);
    for (std::size_t v = 0; v < dim; ++v) {
      Rational lo = small_rational(6, 3);
      Rational w = small_rational(4, 3).abs() + Rational(1, 3);
      LinearConstraint a;
      a.coeffs.assign(dim, Rational());
      a.coeffs[v] = Rational(-1);
      a.rhs = -lo;
      a.cmp = LinCmp::kLe;
      LinearConstraint b;
      b.coeffs.assign(dim, Rational());
      b.coeffs[v] = Rational(1);
      b.rhs = lo + w;
      b.cmp = LinCmp::kLe;
      cell.add(std::move(a));
      cell.add(std::move(b));
    }
    return cell;
  }

  // A box with up to two random half-plane cuts: still convex, bounded.
  LinearCell cut_cell(std::size_t dim) {
    LinearCell cell = box(dim);
    const std::size_t cuts = rng_.next() % 3;
    for (std::size_t c = 0; c < cuts; ++c) {
      LinearConstraint h;
      h.coeffs.assign(dim, Rational());
      bool nonzero = false;
      for (std::size_t v = 0; v < dim; ++v) {
        h.coeffs[v] = small_rational(2, 2);
        if (!h.coeffs[v].is_zero()) nonzero = true;
      }
      if (!nonzero) continue;
      h.rhs = small_rational(8, 2);
      h.cmp = LinCmp::kLe;
      cell.add(std::move(h));
    }
    return cell;
  }

  std::vector<LinearCell> cell_union(std::size_t dim, std::size_t count) {
    std::vector<LinearCell> out;
    for (std::size_t i = 0; i < count; ++i) out.push_back(cut_cell(dim));
    return out;
  }

  Xoshiro& rng() { return rng_; }

 private:
  Xoshiro rng_;
};

class VolumeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VolumeProperty, SweepMatchesInclusionExclusion) {
  CellGen gen(GetParam());
  for (std::size_t dim : {1u, 2u}) {
    auto cells = gen.cell_union(dim, 1 + gen.rng().next() % 4);
    auto sweep = semilinear_volume_sweep(cells);
    auto incl = volume_inclusion_exclusion(cells);
    ASSERT_TRUE(sweep.is_ok());
    ASSERT_TRUE(incl.is_ok());
    EXPECT_EQ(sweep.value(), incl.value()) << "dim=" << dim;
    // And the auto strategy agrees with both.
    EXPECT_EQ(semilinear_volume(cells).value_or_die(), sweep.value());
  }
}

TEST_P(VolumeProperty, UnionBounds) {
  CellGen gen(GetParam() ^ 0x1111);
  auto a = gen.cell_union(2, 2);
  auto b = gen.cell_union(2, 2);
  Rational va = semilinear_volume(a).value_or_die();
  Rational vb = semilinear_volume(b).value_or_die();
  std::vector<LinearCell> both = a;
  both.insert(both.end(), b.begin(), b.end());
  Rational vu = semilinear_volume(both).value_or_die();
  // max(va, vb) <= vol(A u B) <= va + vb.
  EXPECT_GE(vu, std::max(va, vb));
  EXPECT_LE(vu, va + vb);
}

TEST_P(VolumeProperty, MonotoneUnderIntersection) {
  CellGen gen(GetParam() ^ 0x2222);
  LinearCell cell = gen.cut_cell(2);
  Rational whole = semilinear_volume({cell}).value_or_die();
  // Intersecting with anything cannot increase volume.
  LinearCell smaller = cell;
  LinearConstraint cut;
  cut.coeffs = {Rational(1), Rational(1)};
  cut.rhs = gen.small_rational(6, 2);
  cut.cmp = LinCmp::kLe;
  smaller.add(std::move(cut));
  Rational part = semilinear_volume({smaller}).value_or_die();
  EXPECT_LE(part, whole);
  EXPECT_GE(part, Rational(0));
}

TEST_P(VolumeProperty, AffineTransformationLaw) {
  CellGen gen(GetParam() ^ 0x3333);
  auto cells = gen.cell_union(2, 2);
  Rational before = semilinear_volume(cells).value_or_die();
  // Random invertible rational map.
  Matrix m(2, 2);
  do {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) {
        m.at(r, c) = gen.small_rational(3, 2);
      }
    }
  } while (m.determinant().is_zero());
  AffineMap t(m, {gen.small_rational(5, 2), gen.small_rational(5, 2)});
  std::vector<LinearCell> image;
  for (const auto& c : cells) image.push_back(t.apply(c).value_or_die());
  Rational after = semilinear_volume(image).value_or_die();
  EXPECT_EQ(after, t.determinant().abs() * before);
}

TEST_P(VolumeProperty, TranslationInvariance) {
  CellGen gen(GetParam() ^ 0x4444);
  auto cells = gen.cell_union(2, 3);
  Rational before = semilinear_volume(cells).value_or_die();
  AffineMap t = AffineMap::translation(
      {gen.small_rational(10, 3), gen.small_rational(10, 3)});
  std::vector<LinearCell> image;
  for (const auto& c : cells) image.push_back(t.apply(c).value_or_die());
  EXPECT_EQ(semilinear_volume(image).value_or_die(), before);
}

TEST_P(VolumeProperty, ComplementWithinBox) {
  CellGen gen(GetParam() ^ 0x5555);
  // vol(box) = vol(box & S) + vol(box & !S) for a random convex S.
  LinearCell box = LinearCell(2).intersect_box(Rational(-2), Rational(2));
  Rational box_vol = semilinear_volume({box}).value_or_die();
  LinearCell s = gen.cut_cell(2);
  // box & S.
  LinearCell inter = box;
  for (const auto& c : s.constraints()) inter.add(c);
  Rational in_vol = semilinear_volume({inter}).value_or_die();
  // box & !S: complement of a conjunction is a union of negated atoms.
  std::vector<LinearCell> outside;
  for (const auto& c : s.constraints()) {
    LinearCell piece = box;
    LinearConstraint neg;
    neg.coeffs = vec_scale(Rational(-1), c.coeffs);
    neg.rhs = -c.rhs;
    neg.cmp = c.cmp == LinCmp::kLe ? LinCmp::kLt : LinCmp::kLe;
    CQA_CHECK(c.cmp != LinCmp::kEq);
    piece.add(std::move(neg));
    outside.push_back(std::move(piece));
  }
  Rational out_vol = semilinear_volume(outside).value_or_die();
  EXPECT_EQ(in_vol + out_vol, box_vol);
}

TEST_P(VolumeProperty, ScalingPowerLaw) {
  CellGen gen(GetParam() ^ 0x6666);
  for (std::size_t dim : {1u, 2u, 3u}) {
    LinearCell cell = gen.box(dim);
    Rational v1 = semilinear_volume({cell}).value_or_die();
    AffineMap s = AffineMap::scaling(dim, Rational(3, 2));
    Rational v2 =
        semilinear_volume({s.apply(cell).value_or_die()}).value_or_die();
    EXPECT_EQ(v2, Rational::pow(Rational(3, 2),
                                static_cast<std::int64_t>(dim)) *
                      v1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolumeProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace cqa
