// Mixed FO+LIN / FO+POLY fragment tests: the seams between the exact
// linear pipeline and the polynomial sample-point machinery.

#include <gtest/gtest.h>

#include "cqa/aggregate/endpoints.h"
#include "cqa/aggregate/sql_aggregates.h"
#include "cqa/aggregate/sum_parser.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/logic/decide.h"
#include "cqa/logic/parser.h"

namespace cqa {
namespace {

TEST(MixedFragment, PolynomialRegionLinearQuery) {
  // A polynomial-defined region queried with linear machinery where the
  // query itself stays linear after grounding.
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Disk", {"x", "y"}, "x^2 + y^2 <= 1").is_ok());
  // Pointwise membership through the polynomial path.
  EXPECT_TRUE(db.contains("Disk", {Rational(3, 5), Rational(4, 5)}));
  EXPECT_FALSE(db.contains("Disk", {Rational(4, 5), Rational(4, 5)}));
  // Sentences mixing the region with linear side conditions: the decide()
  // separable path handles one quantified variable per atom after the
  // other is fixed by an equality pivot... here both appear in one atom,
  // so route through holds() which substitutes and decides.
  auto f = db.parse("Disk(a, 0) & a > 1/2").value_or_die();
  EXPECT_TRUE(db.holds(f, {{"a", Rational(3, 4)}}).value_or_die());
  EXPECT_FALSE(db.holds(f, {{"a", Rational(1, 4)}}).value_or_die());
}

TEST(MixedFragment, QuantifiedPolynomialSentences) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Parab", {"x", "y"}, "y >= x^2").is_ok());
  QueryEngine q(&db);
  // E x: (x, 1) in Parab, i.e. 1 >= x^2: true.
  EXPECT_TRUE(q.ask("E x. Parab(x, 1)").value_or_die());
  // E x: (x, -1) in Parab: -1 >= x^2 is impossible.
  EXPECT_FALSE(q.ask("E x. Parab(x, 0 - 1)").value_or_die());
  // A x: (x, x^2) on the boundary is in the region.
  EXPECT_TRUE(q.ask("A x. Parab(x, x^2)").value_or_die());
  // A x: (x, x^2 - 1) is NOT always inside.
  EXPECT_FALSE(q.ask("A x. Parab(x, x^2 - 1)").value_or_die());
}

TEST(MixedFragment, EndOverPolynomialRegionSection) {
  // END on a section of a polynomial region: endpoints of
  // { y : y >= y^2 } = [0, 1].
  ConstraintDatabase db;
  auto phi = db.parse("y >= y^2").value_or_die();
  const std::size_t y = db.var("y");
  auto eps = rational_endpoints_1d(db.db(), phi, y, {}).value_or_die();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0], Rational(0));
  EXPECT_EQ(eps[1], Rational(1));
}

TEST(MixedFragment, SumOverPolynomialEndpoints) {
  // The Sum syntax over a polynomial END source with rational roots.
  Database db;
  auto term = parse_sum_term(
                  "sum[w in end(y : y*y <= 4*y - 3)](x : x = w)")
                  .value_or_die();
  // y^2 - 4y + 3 <= 0 on [1, 3]: endpoints 1 and 3.
  EXPECT_EQ(term->eval(db, {}).value_or_die(), Rational(4));
}

TEST(MixedFragment, IrrationalEndpointsRefusedExactly) {
  Database db;
  auto term = parse_sum_term("sum[w in end(y : y*y <= 2)](x : x = w)")
                  .value_or_die();
  auto r = term->eval(db, {});
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(MixedFragment, DecideHandlesParameterizedQuadratics) {
  // For which t does x^2 + t x + 1 = 0 have a root in (0, 1)? Needs
  // t <= -2 (both roots positive, product 1, sum -t); smaller root in
  // (0,1) iff t < -2.
  VarTable vars;
  auto f = parse_formula("E x. x^2 + t*x + 1 = 0 & 0 < x & x < 1", &vars)
               .value_or_die();
  std::size_t t = static_cast<std::size_t>(vars.find("t"));
  EXPECT_TRUE(decide(f, {{t, Rational(-3)}}).value_or_die());
  EXPECT_FALSE(decide(f, {{t, Rational(-2)}}).value_or_die());  // root = 1
  EXPECT_FALSE(decide(f, {{t, Rational(0)}}).value_or_die());
  EXPECT_FALSE(decide(f, {{t, Rational(5)}}).value_or_die());
}

TEST(MixedFragment, LinearEngineRejectsNonlinearGracefully) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Disk", {"x", "y"}, "x^2 + y^2 <= 1").is_ok());
  QueryEngine q(&db);
  // cells() needs linear QE; a quantified polynomial query must error
  // with kUnsupported, not crash or mis-answer.
  auto cells = q.cells("E y. Disk(x, y)", {"x"});
  EXPECT_FALSE(cells.is_ok());
  EXPECT_EQ(cells.status().code(), StatusCode::kUnsupported);
  // Quantifier-free polynomial queries pass through rewrite() unchanged.
  auto qf = q.rewrite("Disk(x, y)");
  ASSERT_TRUE(qf.is_ok());
  EXPECT_TRUE(qf.value()->is_quantifier_free());
}

TEST(MixedFragment, SafeAggregateOverPolynomialQuery) {
  // COUNT of the rational roots of a polynomial via the SAF pipeline.
  ConstraintDatabase db;
  // (x-1)(x-2)(x+3) = 0.
  auto phi = db.parse("(x - 1)*(x - 2)*(x + 3) = 0").value_or_die();
  const std::size_t x = db.var("x");
  auto vals = saf_output(db.db(), phi, x, {}).value_or_die();
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_EQ(vals[0], Rational(-3));
  EXPECT_EQ(vals[2], Rational(2));
}

}  // namespace
}  // namespace cqa
