#include "cqa/arith/bigint.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace cqa {
namespace {

TEST(BigInt, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z, BigInt(0));
  EXPECT_EQ(-z, z);
}

TEST(BigInt, SmallArithmetic) {
  EXPECT_EQ(BigInt(2) + BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(2) - BigInt(3), BigInt(-1));
  EXPECT_EQ(BigInt(-2) * BigInt(3), BigInt(-6));
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
}

TEST(BigInt, Int64Boundaries) {
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  BigInt mn(kMin), mx(kMax);
  EXPECT_EQ(mn.to_string(), "-9223372036854775808");
  EXPECT_EQ(mx.to_string(), "9223372036854775807");
  EXPECT_EQ(mn.to_int64().value_or_die(), kMin);
  EXPECT_EQ(mx.to_int64().value_or_die(), kMax);
  EXPECT_FALSE((mx + BigInt(1)).to_int64().is_ok());
  EXPECT_FALSE((mn - BigInt(1)).to_int64().is_ok());
}

TEST(BigInt, ParseRoundTrip) {
  for (const char* s :
       {"0", "1", "-1", "123456789012345678901234567890",
        "-98765432109876543210987654321", "4294967296", "18446744073709551616"}) {
    EXPECT_EQ(BigInt::parse(s).to_string(), s);
  }
}

TEST(BigInt, ParseErrors) {
  EXPECT_FALSE(BigInt::from_string("").is_ok());
  EXPECT_FALSE(BigInt::from_string("-").is_ok());
  EXPECT_FALSE(BigInt::from_string("12a3").is_ok());
  EXPECT_FALSE(BigInt::from_string("1.5").is_ok());
}

TEST(BigInt, LargeMultiplication) {
  BigInt a = BigInt::parse("123456789012345678901234567890");
  BigInt b = BigInt::parse("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_string(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigInt, PowAndBitLength) {
  EXPECT_EQ(BigInt::pow(BigInt(2), 100).to_string(),
            "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::pow(BigInt(10), 30).bit_length(), 100u);
  EXPECT_EQ(BigInt::pow(BigInt(3), 0), BigInt(1));
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
}

TEST(BigInt, Shifts) {
  BigInt one(1);
  EXPECT_EQ(one.shl(100), BigInt::pow(BigInt(2), 100));
  EXPECT_EQ(one.shl(100).shr(100), one);
  EXPECT_EQ(BigInt(-5).shl(3), BigInt(-40));
  EXPECT_EQ(BigInt(7).shr(10), BigInt(0));
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)), BigInt(0));
  BigInt big = BigInt::pow(BigInt(2), 200);
  EXPECT_EQ(BigInt::gcd(big, big * BigInt(3)), big);
}

TEST(BigInt, DivisionIdentityRandomized) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 500; ++iter) {
    // Build random magnitudes of varying limb counts.
    auto rand_big = [&](int limbs) {
      BigInt x;
      for (int i = 0; i < limbs; ++i) {
        x = x.shl(32) + BigInt(static_cast<std::int64_t>(rng() & 0xffffffffu));
      }
      if (rng() & 1) x = -x;
      return x;
    };
    BigInt a = rand_big(1 + static_cast<int>(rng() % 6));
    BigInt b = rand_big(1 + static_cast<int>(rng() % 4));
    if (b.is_zero()) continue;
    auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    if (!r.is_zero()) EXPECT_EQ(r.sign(), a.sign());
  }
}

TEST(BigInt, KnuthD6AddBackCase) {
  // Exercise divisors whose top limb forces the qhat clamp.
  BigInt a = BigInt::parse("340282366920938463463374607431768211455");  // 2^128-1
  BigInt b = BigInt::parse("18446744073709551615");                      // 2^64-1
  auto [q, r] = a.divmod(b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_EQ(q.to_string(), "18446744073709551617");
  EXPECT_EQ(r, BigInt(0));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::parse("10000000000000000000000"), BigInt(1));
  EXPECT_LE(BigInt(4), BigInt(4));
  EXPECT_EQ(BigInt(4).cmp(BigInt(4)), 0);
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(123).to_double(), 123.0);
  EXPECT_DOUBLE_EQ(BigInt(-456).to_double(), -456.0);
  EXPECT_NEAR(BigInt::pow(BigInt(10), 20).to_double(), 1e20, 1e6);
}

}  // namespace
}  // namespace cqa
