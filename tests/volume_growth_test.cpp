#include "cqa/volume/growth.h"

#include <gtest/gtest.h>

#include "cqa/logic/parser.h"
#include "cqa/volume/semilinear_volume.h"

namespace cqa {
namespace {

std::vector<LinearCell> cells_of(const std::string& formula,
                                 std::size_t dim) {
  VarTable vars;
  auto f = parse_formula(formula, &vars).value_or_die();
  return formula_to_cells(f, dim).value_or_die();
}

TEST(Growth, BoundedSetConstantGrowth) {
  auto cells = cells_of("0 <= x & x <= 1 & 0 <= y & y <= 1", 2);
  auto g = volume_growth(cells).value_or_die();
  // V(r) = 1 for r beyond the threshold.
  EXPECT_EQ(g.poly.degree(), 0);
  EXPECT_EQ(g.poly.coeff(0), Rational(1));
  EXPECT_EQ(mu_operator(cells).value_or_die(), Rational(0));
}

TEST(Growth, HalfPlane) {
  auto cells = cells_of("x >= 0", 2);
  auto g = volume_growth(cells).value_or_die();
  // V(r) = r * 2r = 2 r^2; mu = 2/4 = 1/2.
  EXPECT_EQ(g.poly.degree(), 2);
  EXPECT_EQ(g.poly.coeff(2), Rational(2));
  EXPECT_EQ(mu_operator(cells).value_or_die(), Rational(1, 2));
}

TEST(Growth, FullSpaceAndQuadrant) {
  std::vector<LinearCell> all = {LinearCell(2)};
  EXPECT_EQ(mu_operator(all).value_or_die(), Rational(1));
  auto quad = cells_of("x >= 0 & y >= 0", 2);
  EXPECT_EQ(mu_operator(quad).value_or_die(), Rational(1, 4));
}

TEST(Growth, StripHasLinearGrowth) {
  // 0 <= y <= 1 strip: V(r) = 2r for r > 1; mu = 0 (degree 1 < 2).
  auto cells = cells_of("0 <= y & y <= 1", 2);
  auto g = volume_growth(cells).value_or_die();
  EXPECT_EQ(g.poly.degree(), 1);
  EXPECT_EQ(g.poly.coeff(1), Rational(2));
  EXPECT_EQ(mu_operator(cells).value_or_die(), Rational(0));
}

TEST(Growth, ConeInPlane) {
  // {0 <= y <= x}: a 45-degree cone, V(r) = r^2/2 + ... for large r;
  // mu = (1/2 r^2 + r^2?) -- compute: region in [-r,r]^2 with 0<=y<=x is
  // triangle (0,0),(r,0),(r,r): area r^2/2. mu = (1/2)/4 = 1/8.
  auto cells = cells_of("0 <= y & y <= x", 2);
  EXPECT_EQ(mu_operator(cells).value_or_die(), Rational(1, 8));
}

TEST(Growth, PaperClaimMuZeroOnBounded) {
  // The paper: "mu(X) = 0 for any bounded set X; thus this operator
  // cannot be used to deal with volumes." Check on several bounded sets
  // with different volumes -- mu cannot distinguish them.
  for (const char* s : {
           "0 <= x & x <= 1 & 0 <= y & y <= 1",
           "0 <= x & x <= 3 & 0 <= y & y <= 3",
           "0 <= x & 0 <= y & x + y <= 1",
       }) {
    auto cells = cells_of(s, 2);
    EXPECT_EQ(mu_operator(cells).value_or_die(), Rational(0)) << s;
  }
}

TEST(Growth, UnionOfConeAndBox) {
  // Union of the cone {0<=y<=x} and a bounded box: same mu as the cone.
  auto cells = cells_of("(0 <= y & y <= x) | "
                        "(-3 <= x & x <= -1 & 0 <= y & y <= 1)",
                        2);
  EXPECT_EQ(mu_operator(cells).value_or_die(), Rational(1, 8));
}

}  // namespace
}  // namespace cqa
