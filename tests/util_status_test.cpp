#include "cqa/util/status.h"

#include <gtest/gtest.h>

namespace cqa {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::ok().is_ok());
  EXPECT_EQ(Status::ok().to_string(), "OK");
  Status s = Status::invalid("bad arg");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.to_string(), "InvalidArgument: bad arg");
  EXPECT_EQ(Status::not_implemented("x").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(Status, ResourceExhausted) {
  Status s = Status::resource_exhausted("quota exceeded: qe_atoms");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "quota exceeded: qe_atoms");
  EXPECT_EQ(s.to_string(), "ResourceExhausted: quota exceeded: qe_atoms");
  // Distinct from the expiry codes it degrades alongside.
  EXPECT_NE(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.code(), StatusCode::kCancelled);
}

TEST(Status, ResourceExhaustedThroughResult) {
  Result<int> r = Status::resource_exhausted("out of sweep sections");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.status().message(), "out of sweep sections");
}

TEST(ResultT, ValueAndStatus) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or_die(), 42);
  Result<int> bad = Status::invalid("nope");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(ResultT, MoveTake) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "hello");
}

TEST(ResultT, OkStatusIntoResultBecomesInternalError) {
  // Constructing a Result from an OK status is a programming error that
  // degrades to an internal error rather than UB.
  Result<int> weird = Status::ok();
  EXPECT_FALSE(weird.is_ok());
  EXPECT_EQ(weird.status().code(), StatusCode::kInternal);
}

Status helper_returns_error() { return Status::invalid("inner"); }

Status uses_return_if_error() {
  CQA_RETURN_IF_ERROR(helper_returns_error());
  return Status::ok();
}

Status uses_return_if_error_ok() {
  CQA_RETURN_IF_ERROR(Status::ok());
  return Status::internal("reached");
}

TEST(Macros, ReturnIfError) {
  EXPECT_EQ(uses_return_if_error().message(), "inner");
  EXPECT_EQ(uses_return_if_error_ok().message(), "reached");
}

Result<int> assign_or_return_demo(bool fail) {
  Result<int> source = fail ? Result<int>(Status::invalid("boom"))
                            : Result<int>(7);
  CQA_ASSIGN_OR_RETURN(int v, std::move(source));
  return v * 2;
}

TEST(Macros, AssignOrReturn) {
  EXPECT_EQ(assign_or_return_demo(false).value_or_die(), 14);
  EXPECT_FALSE(assign_or_return_demo(true).is_ok());
}

}  // namespace
}  // namespace cqa
