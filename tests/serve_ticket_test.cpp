// serve::Ticket edge semantics: wait-after-cancel, repeated wait,
// try_get before publish, unawaited destruction, and the then()
// completion callback. Every path must resolve -- a stranded waiter or
// a lost callback is the bug these tests exist to catch. Run under TSan
// in CI alongside the scheduler concurrency suite.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cqa/runtime/session.h"
#include "cqa/serve/scheduler.h"
#include "gtest/gtest.h"

namespace cqa {
namespace {

SessionOptions small_opts() {
  SessionOptions opts;
  opts.threads = 2;
  opts.serve_executors = 2;
  return opts;
}

Request cheap_volume(std::uint64_t seed = 1) {
  return Request::volume("0 <= x & x <= 1 & 0 <= y & y <= 1")
      .vars({"x", "y"})
      .seed(seed)
      .build();
}

// then() callbacks run on the publishing thread after the waiter wakes,
// so give them a bounded grace period before asserting.
void spin_until(const std::atomic<int>& counter, int want) {
  for (int i = 0; i < 2000 && counter.load() < want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(TicketEdge, WaitAfterCancelAlwaysResolves) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  // Pause the queue so cancel() definitely lands before execution.
  session.scheduler().pause();
  serve::Ticket t = session.submit(cheap_volume());
  t.cancel();
  session.scheduler().resume();
  Result<Answer> a = t.wait();
  // A queued cancel resolves kCancelled; a raced one may still produce
  // an answer. Either way wait() returned -- nobody is stranded.
  if (!a.is_ok()) {
    EXPECT_EQ(a.status().code(), StatusCode::kCancelled);
  }
  // Cancelling an already-resolved ticket is a no-op.
  t.cancel();
  EXPECT_EQ(t.wait().is_ok(), a.is_ok());
}

TEST(TicketEdge, DoubleWaitReturnsTheSameAnswer) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  serve::Ticket t = session.submit(cheap_volume());
  Result<Answer> first = t.wait();
  Result<Answer> second = t.wait();
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().volume.exact, second.value().volume.exact);
}

TEST(TicketEdge, TryGetBeforePublishIsNulloptNotBlocking) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  session.scheduler().pause();
  serve::Ticket t = session.submit(cheap_volume());
  EXPECT_FALSE(t.try_get().has_value());
  session.scheduler().resume();
  Result<Answer> a = t.wait();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(t.try_get().has_value());
  EXPECT_TRUE(t.try_get()->is_ok());
}

TEST(TicketEdge, UnawaitedTicketsDoNotLeakOrHangShutdown) {
  ConstraintDatabase db;
  {
    Session session(&db, small_opts());
    for (std::uint64_t i = 0; i < 32; ++i) {
      session.submit(cheap_volume(i));  // ticket dropped on the floor
    }
    // Session teardown must drain/resolve everything without a waiter.
  }
  SUCCEED();
}

TEST(TicketEdge, ThenFiresExactlyOnceOnPublish) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  std::atomic<int> calls{0};
  std::atomic<bool> ok{false};
  serve::Ticket t = session.submit(cheap_volume());
  t.then([&](const Result<Answer>& a) {
    calls.fetch_add(1);
    ok.store(a.is_ok());
  });
  ASSERT_TRUE(t.wait().is_ok());
  spin_until(calls, 1);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(ok.load());
}

TEST(TicketEdge, ThenAfterResolutionRunsInline) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  serve::Ticket t = session.submit(cheap_volume());
  ASSERT_TRUE(t.wait().is_ok());
  int calls = 0;
  t.then([&](const Result<Answer>& a) {
    ++calls;
    EXPECT_TRUE(a.is_ok());
  });
  EXPECT_EQ(calls, 1);  // synchronous: already-resolved tickets call back
}

TEST(TicketEdge, LastThenWinsWhileUnresolved) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  session.scheduler().pause();
  serve::Ticket t = session.submit(cheap_volume());
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  t.then([&](const Result<Answer>&) { first.fetch_add(1); });
  t.then([&](const Result<Answer>&) { second.fetch_add(1); });
  session.scheduler().resume();
  ASSERT_TRUE(t.wait().is_ok());
  spin_until(second, 1);
  EXPECT_EQ(first.load(), 0);
  EXPECT_EQ(second.load(), 1);
}

TEST(TicketEdge, ThenFromManyThreadsEachTicketFiresOnce) {
  ConstraintDatabase db;
  Session session(&db, small_opts());
  constexpr int kTickets = 64;
  std::atomic<int> fired{0};
  std::vector<serve::Ticket> tickets;
  tickets.reserve(kTickets);
  for (int i = 0; i < kTickets; ++i) {
    tickets.push_back(session.submit(cheap_volume(i % 4)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kTickets; i += 4) {
        tickets[i].then(
            [&](const Result<Answer>&) { fired.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& ticket : tickets) ticket.wait();
  spin_until(fired, kTickets);
  EXPECT_EQ(fired.load(), kTickets);
}

TEST(TicketEdge, EmptyTicketIsInvalidAndInert) {
  serve::Ticket t;
  EXPECT_FALSE(t.valid());
  t.cancel();                            // no-op, no crash
  t.then([](const Result<Answer>&) {});  // no-op, no crash
  // try_get on an empty ticket reports the error eagerly rather than
  // pretending an answer is pending.
  auto r = t.try_get();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->is_ok());
}

}  // namespace
}  // namespace cqa
