// Property-based tests for quantifier elimination: random FO+LIN
// formulas, QE'd and checked pointwise against independent evaluation.

#include <gtest/gtest.h>

#include "cqa/approx/random.h"
#include "cqa/constraint/qe.h"
#include "cqa/logic/decide.h"
#include "cqa/logic/eval.h"
#include "cqa/logic/printer.h"
#include "cqa/logic/transform.h"

namespace cqa {
namespace {

// Random linear formulas over variables 0..nvars-1 with small rational
// coefficients; quantifiers bind the high variable indices.
class FormulaGen {
 public:
  explicit FormulaGen(std::uint64_t seed) : rng_(seed) {}

  Polynomial linear_poly(std::size_t nvars) {
    Polynomial p = Polynomial::constant(small());
    for (std::size_t v = 0; v < nvars; ++v) {
      if (rng_.next() % 2) p += Polynomial::variable(v) * small();
    }
    return p;
  }

  FormulaPtr atom(std::size_t nvars) {
    static const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                                 RelOp::kGt, RelOp::kGe, RelOp::kNe};
    return Formula::atom(linear_poly(nvars), kOps[rng_.next() % 6]);
  }

  FormulaPtr qf_formula(std::size_t nvars, int depth) {
    if (depth == 0 || rng_.next() % 3 == 0) return atom(nvars);
    switch (rng_.next() % 3) {
      case 0:
        return Formula::f_and(qf_formula(nvars, depth - 1),
                              qf_formula(nvars, depth - 1));
      case 1:
        return Formula::f_or(qf_formula(nvars, depth - 1),
                             qf_formula(nvars, depth - 1));
      default:
        return Formula::f_not(qf_formula(nvars, depth - 1));
    }
  }

  Rational small() {
    return Rational(static_cast<std::int64_t>(rng_.next() % 7) - 3,
                    1 + static_cast<std::int64_t>(rng_.next() % 2));
  }

  Xoshiro& rng() { return rng_; }

 private:
  Xoshiro rng_;
};

class QeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QeProperty, ExistsMatchesPointwiseCheck) {
  FormulaGen gen(GetParam());
  // Formula over free vars {0,1} and one bound var {2}.
  FormulaPtr body = gen.qf_formula(3, 2);
  FormulaPtr quantified = Formula::exists(2, body);
  auto qf = qe_linear(quantified);
  ASSERT_TRUE(qf.is_ok()) << to_string(quantified);
  EXPECT_TRUE(qf.value()->is_quantifier_free());
  // Pointwise check on a grid: Exists z.body(a, b, z) must match the QE
  // result at (a, b). Ground truth via one more QE on the substituted
  // sentence's cells -- but independently through fm feasibility of each
  // DNF cell of body(a,b,z).
  for (int a = -2; a <= 2; ++a) {
    for (int b = -2; b <= 2; ++b) {
      std::map<std::size_t, Polynomial> sub;
      sub.emplace(0u, Polynomial::constant(Rational(a)));
      sub.emplace(1u, Polynomial::constant(Rational(b)));
      FormulaPtr grounded = substitute_vars(body, sub);
      // Independent witness search: cells of grounded over z.
      std::size_t zvar = 0;
      {
        auto fv = grounded->free_vars();
        if (!fv.empty()) zvar = *fv.begin();
      }
      std::map<std::size_t, Polynomial> remap;
      remap.emplace(zvar, Polynomial::variable(0));
      auto cells = formula_to_cells(substitute_vars(grounded, remap), 1);
      ASSERT_TRUE(cells.is_ok());
      bool truth = !cells.value().empty();
      RVec pt = {Rational(a), Rational(b)};
      if (qf.value()->max_var() >= static_cast<int>(pt.size())) {
        pt.resize(static_cast<std::size_t>(qf.value()->max_var()) + 1);
        pt[0] = Rational(a);
        pt[1] = Rational(b);
      }
      auto got = eval_qf(qf.value(), pt);
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value(), truth)
          << "a=" << a << " b=" << b << " formula " << to_string(quantified);
    }
  }
}

TEST_P(QeProperty, ForallIsDualOfExists) {
  FormulaGen gen(GetParam() ^ 0xabc);
  FormulaPtr body = gen.qf_formula(2, 2);
  FormulaPtr fa = Formula::forall(1, body);
  FormulaPtr dual =
      Formula::f_not(Formula::exists(1, Formula::f_not(body)));
  auto qf1 = qe_linear(fa);
  auto qf2 = qe_linear(dual);
  ASSERT_TRUE(qf1.is_ok());
  ASSERT_TRUE(qf2.is_ok());
  for (int a = -3; a <= 3; ++a) {
    RVec pt(static_cast<std::size_t>(
                std::max({qf1.value()->max_var(), qf2.value()->max_var(),
                          0})) +
            1);
    pt[0] = Rational(a, 2);
    EXPECT_EQ(eval_qf(qf1.value(), pt).value_or_die(),
              eval_qf(qf2.value(), pt).value_or_die())
        << "a=" << a;
  }
}

TEST_P(QeProperty, SentenceDecisionMatchesDecideOnSeparable) {
  FormulaGen gen(GetParam() ^ 0xdef);
  // Single-variable sentences: both engines always apply.
  FormulaPtr body = gen.qf_formula(1, 2);
  FormulaPtr sentence = Formula::exists(0, body);
  auto via_qe = qe_decide_sentence(sentence);
  auto via_decide = decide_sentence(sentence);
  ASSERT_TRUE(via_qe.is_ok());
  ASSERT_TRUE(via_decide.is_ok());
  EXPECT_EQ(via_qe.value(), via_decide.value()) << to_string(sentence);
}

TEST_P(QeProperty, FeasibilityMatchesSamplePoint) {
  FormulaGen gen(GetParam() ^ 0x777);
  FormulaPtr f = gen.qf_formula(3, 2);
  auto cells = formula_to_cells(f, 3);
  ASSERT_TRUE(cells.is_ok());
  for (const auto& cell : cells.value()) {
    // Every surviving cell is feasible, so it must yield a sample point
    // that satisfies all constraints (including strict ones).
    auto p = cell.sample_point();
    ASSERT_TRUE(p.has_value()) << cell.to_string();
    EXPECT_TRUE(cell.contains(*p)) << cell.to_string();
    // And the point satisfies the original formula.
    EXPECT_TRUE(eval_qf(f, *p).value_or_die()) << cell.to_string();
  }
}

TEST_P(QeProperty, DnfEquivalentToOriginal) {
  FormulaGen gen(GetParam() ^ 0x999);
  FormulaPtr f = gen.qf_formula(2, 3);
  auto dnf = to_dnf(f);
  ASSERT_TRUE(dnf.is_ok());
  FormulaPtr g = from_dnf(dnf.value());
  Xoshiro& rng = gen.rng();
  for (int i = 0; i < 25; ++i) {
    RVec pt = {Rational(static_cast<std::int64_t>(rng.next() % 13) - 6, 2),
               Rational(static_cast<std::int64_t>(rng.next() % 13) - 6, 2)};
    EXPECT_EQ(eval_qf(f, pt).value_or_die(),
              eval_qf(g, pt).value_or_die());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QeProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace cqa
