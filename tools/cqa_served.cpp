// cqa_served: the standalone sharded serving binary.
//
//   cqa_served --workers 4 --unix /tmp/cqa.sock --cache /var/tmp/cqa.cache
//   cqa_served --workers 4 --tcp 7411
//
// Forks one worker process per shard, routes requests by fingerprint,
// sheds honestly at admission, survives worker death by respawning the
// shard, and persists full-fidelity answers across restarts when
// --cache is given. Health-check and inspect with cqa_servedctl.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cqa/served/server.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workers N] [--unix PATH | --tcp PORT] [--host ADDR]\n"
      "          [--cache FILE] [--cache-capacity N] [--shard-capacity N]\n"
      "          [--threads N] [--executors N] [--watchdog-ms MS]\n"
      "          [--watchdog-interval-ms MS] [--term-grace-ms MS]\n"
      "\n"
      "  --workers N         worker processes / shards (default 4)\n"
      "  --unix PATH         listen on a unix-domain socket\n"
      "  --tcp PORT          listen on TCP (default; 0 = ephemeral)\n"
      "  --host ADDR         TCP bind address (default 127.0.0.1)\n"
      "  --cache FILE        persistent result cache file\n"
      "  --cache-capacity N  max cached answers (default 4096)\n"
      "  --shard-capacity N  per-shard in-flight cap (default 256)\n"
      "  --threads N         pool threads per worker (default 2)\n"
      "  --executors N       serve executors per worker (default 2)\n"
      "  --watchdog-ms MS    hung-worker kill budget (default 10000;\n"
      "                      0 disarms -- must exceed the slowest\n"
      "                      single request you expect to serve)\n"
      "  --watchdog-interval-ms MS  heartbeat/poll cadence (default 100)\n"
      "  --term-grace-ms MS  SIGTERM->SIGKILL escalation grace (default 500)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  cqa::served::ServedOptions options;
  // The daemon arms the watchdog by default: an operator running a
  // fleet wants wedged shards respawned. (The library default stays 0
  // so embedded servers never kill a deliberately slow worker.)
  options.watchdog_budget_ms = 10000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--unix") {
      options.unix_path = next();
    } else if (arg == "--tcp") {
      options.tcp_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--host") {
      options.tcp_host = next();
    } else if (arg == "--cache") {
      options.cache_path = next();
    } else if (arg == "--cache-capacity") {
      options.cache_capacity = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--shard-capacity") {
      options.shard_capacity = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--threads") {
      options.session.threads = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--executors") {
      options.session.serve_executors =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--watchdog-ms") {
      options.watchdog_budget_ms = std::atoll(next());
    } else if (arg == "--watchdog-interval-ms") {
      options.watchdog_interval_ms = std::atoll(next());
    } else if (arg == "--term-grace-ms") {
      options.term_grace_ms = std::atoll(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  signal(SIGPIPE, SIG_IGN);

  cqa::served::Server server(options);
  cqa::Status started = server.start();
  if (!started.is_ok()) {
    std::fprintf(stderr, "cqa_served: %s\n", started.to_string().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::printf("cqa_served: listening on unix:%s\n",
                options.unix_path.c_str());
  } else {
    std::printf("cqa_served: listening on tcp:%s:%u\n",
                options.tcp_host.c_str(), server.port());
  }
  std::printf("cqa_served: router pid %d, %zu workers:",
              static_cast<int>(getpid()), server.worker_count());
  for (std::size_t i = 0; i < server.worker_count(); ++i) {
    std::printf(" %d", static_cast<int>(server.worker_pid(i)));
  }
  std::printf("\n");
  std::fflush(stdout);

  while (!g_stop.load()) {
    usleep(100 * 1000);
  }
  std::printf("cqa_served: shutting down\n");
  server.stop();
  const cqa::served::ServerStats s = server.stats();
  std::printf(
      "cqa_served: served %llu answers (%llu requests, %llu shed, "
      "%llu crash-degraded, %llu respawns, %llu cache hits, "
      "%llu hung kills, %llu hung-degraded)\n",
      static_cast<unsigned long long>(s.answers),
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.crash_degraded),
      static_cast<unsigned long long>(s.respawns),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.hung_kills),
      static_cast<unsigned long long>(s.hung_degraded));
  return 0;
}
