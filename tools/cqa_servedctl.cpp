// cqa_servedctl: operator CLI for a running cqa_served fleet.
//
//   cqa_servedctl --unix /tmp/cqa.sock ping
//   cqa_servedctl --tcp 7411 stats
//
// `ping` round-trips a token through the router (exit 0 on success);
// `stats` prints the router counters plus each shard's pid, in-flight
// gauge, per-scrape-window queue-depth peak, and metrics registry. CI
// and humans share this one health-check path: the served-smoke job
// parses `shard N pid P` lines out of `stats` to aim its kill -9.
// `soak` drains N known-answer volume requests through the retrying
// client (exit 0 only if every reply was honest and the fleet actually
// answered): point it through cqa_chaosproxy for a survival drill.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cqa/served/client.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--unix PATH | --tcp PORT] [--host ADDR] "
               "ping|stats|soak\n"
               "  soak options: [--n N] [--seed N] [--timeout-ms MS]\n",
               argv0);
}

// One honest-or-bust request: the quarter box has exact volume 1/4, so
// every full-fidelity answer is checkable bit-for-bit. Returns 0 for
// honest success, 1 for honest degraded, 2 for typed error, 3 for a
// DISHONEST answer.
int soak_one(cqa::served::Client& client, std::uint64_t seed,
             std::int64_t timeout_ms) {
  cqa::Request r =
      cqa::Request::volume("0 <= x & x <= 1/2 & 0 <= y & y <= 1/2")
          .vars({"x", "y"})
          .seed(seed)
          .build();
  auto a = client.call(r, timeout_ms);
  if (!a.is_ok()) return 2;
  const cqa::Answer& ans = a.value();
  if (ans.degraded()) {
    const bool flagged = ans.guard.shed || ans.guard.worker_crashed ||
                         ans.guard.worker_hung;
    const bool honest_bars = ans.volume.lower.value_or(1.0) <= 0.0 &&
                             ans.volume.upper.value_or(0.0) >= 1.0;
    return (flagged && honest_bars) ? 1 : 3;
  }
  return ans.volume.value() == 0.25 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string command;
  std::uint64_t soak_n = 100;
  std::uint64_t soak_seed = 1;
  std::int64_t soak_timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      unix_path = next();
    } else if (arg == "--tcp") {
      port = std::atoi(next());
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--n") {
      soak_n = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      soak_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--timeout-ms") {
      soak_timeout_ms = std::atoll(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (command.empty() && arg[0] != '-') {
      command = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if ((unix_path.empty() && port < 0) || command.empty()) {
    usage(argv[0]);
    return 2;
  }

  auto connected =
      unix_path.empty()
          ? cqa::served::Client::connect_tcp(
                host, static_cast<std::uint16_t>(port))
          : cqa::served::Client::connect_unix(unix_path);
  if (!connected.is_ok()) {
    std::fprintf(stderr, "cqa_servedctl: %s\n",
                 connected.status().to_string().c_str());
    return 1;
  }
  cqa::served::Client client = std::move(connected).take();

  if (command == "ping") {
    cqa::Status s = client.ping();
    if (!s.is_ok()) {
      std::fprintf(stderr, "cqa_servedctl: ping failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "stats") {
    auto stats = client.stats();
    if (!stats.is_ok()) {
      std::fprintf(stderr, "cqa_servedctl: stats failed: %s\n",
                   stats.status().to_string().c_str());
      return 1;
    }
    std::fputs(stats.value().c_str(), stdout);
    return 0;
  }
  if (command == "soak") {
    std::uint64_t exact = 0, degraded = 0, errors = 0, dishonest = 0;
    std::uint64_t retries = 0, reconnects = 0;
    for (std::uint64_t i = 0; i < soak_n; ++i) {
      switch (soak_one(client, soak_seed + i, soak_timeout_ms)) {
        case 0: ++exact; break;
        case 1: ++degraded; break;
        case 3: ++dishonest; break;
        default: {
          ++errors;
          // A dead pipe (blackholed proxy leg, poisoned stream the
          // retry budget could not heal) fails every later call too:
          // re-dial once per failure and keep draining.
          retries += client.retry_stats().retries;
          reconnects += client.retry_stats().reconnects;
          auto again = unix_path.empty()
                           ? cqa::served::Client::connect_tcp(
                                 host, static_cast<std::uint16_t>(port))
                           : cqa::served::Client::connect_unix(unix_path);
          if (again.is_ok()) client = std::move(again).take();
          break;
        }
      }
    }
    retries += client.retry_stats().retries;
    reconnects += client.retry_stats().reconnects;
    std::printf(
        "soak: %llu requests: %llu exact, %llu degraded, %llu errors, "
        "%llu dishonest (%llu retries, %llu reconnects)\n",
        static_cast<unsigned long long>(soak_n),
        static_cast<unsigned long long>(exact),
        static_cast<unsigned long long>(degraded),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(dishonest),
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(reconnects));
    if (dishonest > 0) {
      std::fprintf(stderr, "cqa_servedctl: DISHONEST answers under soak\n");
      return 1;
    }
    if (exact + degraded == 0) {
      std::fprintf(stderr, "cqa_servedctl: soak never drained an answer\n");
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  usage(argv[0]);
  return 2;
}
