// cqa_servedctl: operator CLI for a running cqa_served fleet.
//
//   cqa_servedctl --unix /tmp/cqa.sock ping
//   cqa_servedctl --tcp 7411 stats
//
// `ping` round-trips a token through the router (exit 0 on success);
// `stats` prints the router counters plus each shard's pid, in-flight
// gauge, per-scrape-window queue-depth peak, and metrics registry. CI
// and humans share this one health-check path: the served-smoke job
// parses `shard N pid P` lines out of `stats` to aim its kill -9.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cqa/served/client.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--unix PATH | --tcp PORT] [--host ADDR] "
               "ping|stats\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string command;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      unix_path = next();
    } else if (arg == "--tcp") {
      port = std::atoi(next());
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (command.empty() && arg[0] != '-') {
      command = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if ((unix_path.empty() && port < 0) || command.empty()) {
    usage(argv[0]);
    return 2;
  }

  auto connected =
      unix_path.empty()
          ? cqa::served::Client::connect_tcp(
                host, static_cast<std::uint16_t>(port))
          : cqa::served::Client::connect_unix(unix_path);
  if (!connected.is_ok()) {
    std::fprintf(stderr, "cqa_servedctl: %s\n",
                 connected.status().to_string().c_str());
    return 1;
  }
  cqa::served::Client client = std::move(connected).take();

  if (command == "ping") {
    cqa::Status s = client.ping();
    if (!s.is_ok()) {
      std::fprintf(stderr, "cqa_servedctl: ping failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "stats") {
    auto stats = client.stats();
    if (!stats.is_ok()) {
      std::fprintf(stderr, "cqa_servedctl: stats failed: %s\n",
                   stats.status().to_string().c_str());
      return 1;
    }
    std::fputs(stats.value().c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  usage(argv[0]);
  return 2;
}
