// cqa_check: the differential/metamorphic checking driver.
//
//   cqa_check --trials 10000 --seed 42
//   cqa_check --oracle scaling --trials 500
//   cqa_check --fault exact_vs_mc --repro-dir /tmp/repros
//   cqa_check --replay /tmp/repros/scaling-17.cqa
//   cqa_check --chaos --trials 300 --seed 7
//   cqa_check --list
//
// --chaos reruns the oracles under random seeded guard::FaultPlans:
// trials must pass, skip, fail *loudly* (typed error while faults
// fired), or land within the statistical delta budget -- a silently
// wrong value, or a run that injected no faults at all, fails.
//
// Exit code 0 when every oracle holds (statistical failures within the
// delta budget), 1 on any violation or replayed failure, 2 on usage
// errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cqa/check/chaos.h"
#include "cqa/check/runner.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--seed S] [--oracle NAME]...\n"
               "          [--fault NAME] [--repro-dir DIR] [--no-shrink]\n"
               "          [--dimension K] [--epsilon E] [--delta D]\n"
               "          [--chaos] [--metrics] [--list]\n"
               "          [--replay FILE.cqa]...\n",
               argv0);
  return 2;
}

int list_oracles() {
  for (const cqa::Oracle* oracle : cqa::all_oracles()) {
    std::printf("%-26s %s\n", oracle->name(),
                oracle->statistical() ? "statistical (delta-budgeted)"
                                      : "deterministic");
  }
  return 0;
}

int replay(const std::vector<std::string>& paths, double epsilon,
           double delta) {
  int worst = 0;
  for (const auto& path : paths) {
    auto repro = cqa::read_repro_file(path);
    if (!repro.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   repro.status().to_string().c_str());
      worst = 2;
      continue;
    }
    auto result = cqa::replay_repro(repro.value(), epsilon, delta);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   result.status().to_string().c_str());
      worst = 2;
      continue;
    }
    switch (result.value().status) {
      case cqa::TrialStatus::kFail:
        std::printf("%s: FAIL (%s) -- %s\n", path.c_str(),
                    repro.value().oracle.c_str(),
                    result.value().detail.c_str());
        if (worst < 1) worst = 1;
        break;
      case cqa::TrialStatus::kSkip:
        std::printf("%s: SKIP -- %s\n", path.c_str(),
                    result.value().detail.c_str());
        break;
      case cqa::TrialStatus::kPass:
        std::printf("%s: PASS (no longer reproduces)\n", path.c_str());
        break;
    }
  }
  return worst;
}

int run_chaos_mode(const cqa::CheckOptions& options, bool dump_metrics) {
  cqa::ChaosOptions chaos;
  chaos.trials = options.trials;
  chaos.seed = options.seed;
  chaos.oracle_names = options.oracle_names;
  chaos.gen = options.gen;
  chaos.epsilon = options.epsilon;
  chaos.delta = options.delta;

  cqa::MetricsRegistry metrics;
  const cqa::ChaosReport report = cqa::run_chaos(chaos, &metrics);

  std::printf(
      "chaos: trials=%zu pass=%zu skip=%zu contained=%zu "
      "stat_misses=%zu (allowed=%zu) faults_injected=%llu\n",
      report.trials, report.passed, report.skipped, report.contained,
      report.stat_misses, report.allowed_stat_misses,
      static_cast<unsigned long long>(report.faults_injected));
  for (std::size_t i = 0; i < cqa::guard::kNumFaultSites; ++i) {
    std::printf("    %-16s fired=%llu\n",
                cqa::guard::fault_site_name(
                    static_cast<cqa::guard::FaultSite>(i)),
                static_cast<unsigned long long>(report.faults_by_site[i]));
  }
  for (const auto& v : report.violations) {
    std::printf("UNSOUND %s seed=%llu [%s]\n    %s\n", v.oracle.c_str(),
                static_cast<unsigned long long>(v.formula_seed),
                v.plan.c_str(), v.detail.c_str());
  }
  if (dump_metrics) {
    std::fputs(metrics.dump().c_str(), stdout);
  }
  if (!report.ok()) {
    std::fprintf(stderr, "cqa_check: chaos violation\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cqa::CheckOptions options;
  std::vector<std::string> replay_paths;
  bool dump_metrics = false;
  bool chaos_mode = false;

  auto need_value = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_oracles();
    if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--chaos") {
      chaos_mode = true;
    } else if (arg == "--trials" && need_value(i)) {
      options.trials = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && need_value(i)) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--oracle" && need_value(i)) {
      options.oracle_names.push_back(argv[++i]);
    } else if (arg == "--fault" && need_value(i)) {
      options.fault_oracle = argv[++i];
    } else if (arg == "--repro-dir" && need_value(i)) {
      options.repro_dir = argv[++i];
    } else if (arg == "--dimension" && need_value(i)) {
      options.gen.dimension = std::strtoull(argv[++i], nullptr, 10);
      if (options.gen.dimension == 0 || options.gen.dimension > 8) {
        std::fprintf(stderr, "--dimension must be in 1..8\n");
        return 2;
      }
    } else if (arg == "--epsilon" && need_value(i)) {
      options.epsilon = std::strtod(argv[++i], nullptr);
    } else if (arg == "--delta" && need_value(i)) {
      options.delta = std::strtod(argv[++i], nullptr);
    } else if (arg == "--replay" && need_value(i)) {
      replay_paths.push_back(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  for (const auto& name : options.oracle_names) {
    if (cqa::find_oracle(name) == nullptr) {
      std::fprintf(stderr, "unknown oracle: %s (see --list)\n",
                   name.c_str());
      return 2;
    }
  }
  if (!options.fault_oracle.empty() &&
      cqa::find_oracle(options.fault_oracle) == nullptr) {
    std::fprintf(stderr, "unknown --fault oracle: %s (see --list)\n",
                 options.fault_oracle.c_str());
    return 2;
  }
  if (!replay_paths.empty()) {
    return replay(replay_paths, options.epsilon, options.delta);
  }
  if (chaos_mode) {
    return run_chaos_mode(options, dump_metrics);
  }

  cqa::MetricsRegistry metrics;
  const cqa::CheckReport report = cqa::run_checks(options, &metrics);

  for (const auto& o : report.oracles) {
    std::printf("%-26s %s  trials=%zu pass=%zu fail=%zu skip=%zu",
                o.name.c_str(), o.violated ? "VIOLATED" : "ok      ",
                o.trials, o.passed, o.failed, o.skipped);
    if (o.statistical) {
      std::printf(" allowed=%zu", o.allowed_failures);
    }
    std::printf("\n");
    if (o.violated && !o.first_detail.empty()) {
      std::printf("    first failure: %s\n", o.first_detail.c_str());
    }
    for (const auto& repro : o.repros) {
      std::printf("    repro: seed=%llu dim=%zu  %s\n",
                  static_cast<unsigned long long>(repro.seed),
                  repro.dimension, repro.formula.c_str());
    }
  }
  if (dump_metrics) {
    std::fputs(metrics.dump().c_str(), stdout);
  }
  if (!report.ok()) {
    std::fprintf(stderr, "cqa_check: oracle violation\n");
    return 1;
  }
  return 0;
}
