// cqa_chaosproxy: a seeded wire-chaos man-in-the-middle for cqa_served.
//
//   cqa_served --tcp 7411 &
//   cqa_chaosproxy --listen 7412 --upstream-port 7411 \
//       --seed 7 --rate 0.2 &
//   cqa_servedctl --tcp 7412 ping     # through the gauntlet
//
// Forwards every connection to the upstream server while injecting
// deterministic faults per forwarded chunk: torn frames, stalled
// writes, abrupt disconnects, bit flips (caught by the frame checksum),
// and black-holed connections. The same --seed replays the same fault
// schedule, so a drill that found a bug is a repro, not an anecdote.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cqa/served/chaos.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--listen PORT | --listen-unix PATH]\n"
      "          [--upstream-port PORT | --upstream-unix PATH]\n"
      "          [--upstream-host ADDR] [--seed N] [--rate R]\n"
      "          [--torn R] [--stall R] [--disconnect R] [--bitflip R]\n"
      "          [--blackhole R] [--stall-ms MS]\n"
      "\n"
      "  --listen PORT        listen on TCP (default; 0 = ephemeral)\n"
      "  --listen-unix PATH   listen on a unix-domain socket\n"
      "  --upstream-port PORT forward to 127.0.0.1:PORT (see --upstream-host)\n"
      "  --upstream-unix PATH forward to a unix-domain socket\n"
      "  --upstream-host ADDR upstream TCP host (default 127.0.0.1)\n"
      "  --seed N             fault schedule seed (default 1)\n"
      "  --rate R             one rate for all five wire faults\n"
      "  --torn/--stall/--disconnect/--bitflip/--blackhole R\n"
      "                       per-site rates (override --rate)\n"
      "  --stall-ms MS        stalled-write nap (default 200)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  cqa::served::ChaosOptions options;
  options.plan.seed = 1;
  using cqa::guard::FaultSite;
  auto rate_slot = [&](FaultSite s) -> double& {
    return options.plan.rate[static_cast<std::size_t>(s)];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      options.listen_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--listen-unix") {
      options.listen_unix = next();
    } else if (arg == "--upstream-port") {
      options.upstream_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--upstream-unix") {
      options.upstream_unix = next();
    } else if (arg == "--upstream-host") {
      options.upstream_host = next();
    } else if (arg == "--seed") {
      options.plan.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--rate") {
      const double r = std::atof(next());
      rate_slot(FaultSite::kWireTornFrame) = r;
      rate_slot(FaultSite::kWireStalledWrite) = r;
      rate_slot(FaultSite::kWireDisconnect) = r;
      rate_slot(FaultSite::kWireBitFlip) = r;
      rate_slot(FaultSite::kWireBlackhole) = r;
    } else if (arg == "--torn") {
      rate_slot(FaultSite::kWireTornFrame) = std::atof(next());
    } else if (arg == "--stall") {
      rate_slot(FaultSite::kWireStalledWrite) = std::atof(next());
    } else if (arg == "--disconnect") {
      rate_slot(FaultSite::kWireDisconnect) = std::atof(next());
    } else if (arg == "--bitflip") {
      rate_slot(FaultSite::kWireBitFlip) = std::atof(next());
    } else if (arg == "--blackhole") {
      rate_slot(FaultSite::kWireBlackhole) = std::atof(next());
    } else if (arg == "--stall-ms") {
      options.stall_ms = std::atoll(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (options.upstream_unix.empty() && options.upstream_port == 0) {
    std::fprintf(stderr, "cqa_chaosproxy: need --upstream-port or "
                         "--upstream-unix\n");
    usage(argv[0]);
    return 2;
  }

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  signal(SIGPIPE, SIG_IGN);

  cqa::served::ChaosProxy proxy(options);
  cqa::Status started = proxy.start();
  if (!started.is_ok()) {
    std::fprintf(stderr, "cqa_chaosproxy: %s\n",
                 started.to_string().c_str());
    return 1;
  }
  if (!options.listen_unix.empty()) {
    std::printf("cqa_chaosproxy: listening on unix:%s\n",
                options.listen_unix.c_str());
  } else {
    std::printf("cqa_chaosproxy: listening on tcp:%s:%u\n",
                options.listen_host.c_str(), proxy.port());
  }
  std::printf("cqa_chaosproxy: seed %llu\n",
              static_cast<unsigned long long>(options.plan.seed));
  std::fflush(stdout);

  while (!g_stop.load()) {
    usleep(100 * 1000);
  }
  proxy.stop();
  const cqa::served::ChaosStats s = proxy.stats();
  std::printf(
      "cqa_chaosproxy: %llu connections, %llu chunks, faults: "
      "%llu torn, %llu stalled, %llu disconnects, %llu bit-flips, "
      "%llu blackholes\n",
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.chunks),
      static_cast<unsigned long long>(s.torn),
      static_cast<unsigned long long>(s.stalled),
      static_cast<unsigned long long>(s.disconnects),
      static_cast<unsigned long long>(s.bit_flips),
      static_cast<unsigned long long>(s.blackholes));
  return 0;
}
