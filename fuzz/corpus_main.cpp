// Plain-main driver replaying a seed corpus through a libFuzzer
// harness, for toolchains without -fsanitize=fuzzer (GCC). Each
// argument is a corpus file or a directory of corpus files.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  LLVMFuzzerTestOneInput(data.data(), data.size());
  std::printf("ok %s (%zu bytes)\n", path.c_str(), data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int rc = 0;
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    if (std::filesystem::is_directory(argv[i], ec)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(argv[i])) {
        if (!entry.is_regular_file()) continue;
        rc |= run_file(entry.path().string());
        ++files;
      }
    } else {
      rc |= run_file(argv[i]);
      ++files;
    }
  }
  if (files == 0) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 1;
  }
  return rc;
}
