// libFuzzer target for the cqa::served wire codecs -- the layer that
// faces a hostile network. Contract: arbitrary bytes fed to
// decode_request / decode_answer / read_frame yield a typed Status,
// never a crash, hang, or runaway allocation. The first input byte
// selects the surface under attack; the rest is the payload.

#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "cqa/core/constraint_database.h"
#include "cqa/served/wire.h"

namespace {

// Frame reads happen over a real socketpair so the length-prefix and
// checksum paths in read_frame (partial reads included) are exercised,
// not just the body codecs.
void fuzz_read_frame(const std::string& bytes) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  // Write side first, then EOF: a kernel socket buffer comfortably
  // holds our <=4096-byte inputs, so the blocking write cannot wedge.
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        send(fds[0], bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  cqa::served::Frame frame;
  // Bounded read: even a pathological input must resolve in one pass.
  (void)cqa::served::read_frame(fds[1], &frame, /*timeout_ms=*/1000);
  close(fds[1]);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0 || size > 4096) return 0;
  const std::uint8_t mode = data[0] % 4;
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  switch (mode) {
    case 0: {
      (void)cqa::served::decode_request(payload);
      break;
    }
    case 1: {
      // Thin-router path: no database, formula-bearing answers must
      // still decode (with a null formula) or fail typed.
      cqa::Result<cqa::Answer> out{cqa::Status::internal("undecoded")};
      (void)cqa::served::decode_answer(payload, nullptr, &out);
      break;
    }
    case 2: {
      // Full path: the receiver re-parses any rewrite formula into its
      // own database; hostile formula text must fail typed too.
      cqa::ConstraintDatabase db;
      cqa::Result<cqa::Answer> out{cqa::Status::internal("undecoded")};
      (void)cqa::served::decode_answer(payload, &db, &out);
      break;
    }
    default: {
      fuzz_read_frame(payload);
      break;
    }
  }
  return 0;
}
