// libFuzzer target for the FO+POLY formula parser.
//
// The parser must return Status::invalid on malformed input -- never
// crash, abort, overflow the stack, or hang. Findings from this target
// motivated the kMaxExponent and kMaxParseDepth caps in parser.cpp.
//
// Build (needs Clang): cmake -DCQA_BUILD_FUZZERS=ON, target fuzz_parser.
// Run: ./fuzz_parser fuzz/corpus/parser -max_total_time=300

#include <cstddef>
#include <cstdint>
#include <string>

#include "cqa/logic/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Cap input size: parse time is linear, but huge inputs slow the
  // fuzzer down without exploring new grammar productions.
  if (size > 4096) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  cqa::VarTable vars;
  auto parsed = cqa::parse_formula(text, &vars);
  if (parsed.is_ok() && parsed.value() == nullptr) {
    __builtin_trap();  // ok-with-null violates the parser contract
  }
  return 0;
}
