// libFuzzer target for the SUM-language term parser (Section 5's
// aggregate sublanguage). Same contract as fuzz_parser: malformed
// input yields Status::invalid, never a crash or hang.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cqa/aggregate/sum_parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 4096) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  cqa::VarTable vars;
  auto parsed = cqa::parse_sum_term(text, &vars);
  if (parsed.is_ok() && parsed.value() == nullptr) {
    __builtin_trap();
  }
  return 0;
}
