// Lowner-John ellipsoid machinery (the Section-4 Remark).
//
// The paper: for convex outputs, a relative (c1, c2)-approximation of the
// volume is obtainable via Lowner-John ellipsoids [18], with
// c1 = (k^k + 1)/(2 k^k) - eps and c2 = (k^k + 1)/2 + eps. We realize the
// underlying construction: Khachiyan's algorithm for the minimum-volume
// enclosing ellipsoid (MVEE) of the polytope's vertices, plus the John
// sandwich vol(E)/k^k <= vol(P) <= vol(E).

#ifndef CQA_APPROX_ELLIPSOID_H_
#define CQA_APPROX_ELLIPSOID_H_

#include <vector>

#include "cqa/geometry/polyhedron.h"

namespace cqa {

/// Ellipsoid { x : (x - c)^T A (x - c) <= 1 } in double precision.
struct Ellipsoid {
  std::vector<std::vector<double>> a;  // positive definite
  std::vector<double> center;

  std::size_t dim() const { return center.size(); }
  /// Euclidean volume (unit-ball volume / sqrt(det A)).
  double volume() const;
  /// Membership with tolerance.
  bool contains(const std::vector<double>& x, double tol = 1e-9) const;
};

/// Khachiyan's MVEE of a point set (must affinely span R^d).
Result<Ellipsoid> min_volume_enclosing_ellipsoid(
    const std::vector<RVec>& points, double tol = 1e-7,
    std::size_t max_iter = 10000);

/// Volume sandwich from the John ellipsoid of a bounded full-dimensional
/// polytope: lower <= vol(P) <= upper with upper/lower <= k^k (1 + o(1)).
struct JohnVolumeBounds {
  double lower = 0;
  double upper = 0;
  double ellipsoid_volume = 0;
};
Result<JohnVolumeBounds> john_volume_bounds(const Polyhedron& p,
                                            double tol = 1e-7);

/// Volume of the d-dimensional Euclidean unit ball.
double unit_ball_volume(std::size_t dim);

}  // namespace cqa

#endif  // CQA_APPROX_ELLIPSOID_H_
