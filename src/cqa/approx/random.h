// Seeded randomness for the approximation engines.
//
// xoshiro256++ (public-domain algorithm by Blackman & Vigna), plus Halton
// low-discrepancy sequences for the deterministic-grid comparisons, plus
// the paper's witness operator W (Abiteboul-Vianu) realized as a uniform
// sampler.

#ifndef CQA_APPROX_RANDOM_H_
#define CQA_APPROX_RANDOM_H_

#include <cstdint>
#include <vector>

namespace cqa {

/// xoshiro256++ PRNG; deterministic given a seed.
class Xoshiro {
 public:
  explicit Xoshiro(std::uint64_t seed);
  std::uint64_t next();
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform point in [0,1)^dim.
  std::vector<double> point(std::size_t dim);
  /// Standard normal (Box-Muller).
  double normal();

 private:
  std::uint64_t s_[4];
};

/// Halton low-discrepancy sequence point (index >= 0) in [0,1)^dim.
std::vector<double> halton_point(std::size_t index, std::size_t dim);

/// Counter-based stream seeding: a splitmix64-style mix of (seed,
/// stream). Chunk c of a partitioned Monte-Carlo sample draws from
/// Xoshiro(stream_seed(seed, c)), so the sample depends only on (seed,
/// chunk layout) -- never on which thread evaluates which chunk.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream);

/// The witness operator W: for Theorem 4's use, W draws uniform sample
/// points from I^m. Seeded, so derandomizable in tests.
class WitnessOperator {
 public:
  explicit WitnessOperator(std::uint64_t seed) : rng_(seed) {}
  /// One witness: a uniform point of [0,1)^m.
  std::vector<double> draw(std::size_t m) { return rng_.point(m); }
  /// An M-point sample (the "M-sample" of Section 3).
  std::vector<std::vector<double>> draw_sample(std::size_t count,
                                               std::size_t m);

 private:
  Xoshiro rng_;
};

}  // namespace cqa

#endif  // CQA_APPROX_RANDOM_H_
