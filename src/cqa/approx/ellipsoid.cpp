#include "cqa/approx/ellipsoid.h"

#include <algorithm>
#include <cmath>

#include "cqa/geometry/vertex_enum.h"

namespace cqa {

namespace {

using DMat = std::vector<std::vector<double>>;

DMat dmat(std::size_t n) { return DMat(n, std::vector<double>(n, 0.0)); }

// In-place Gauss-Jordan inverse; returns false if (near) singular.
bool invert(DMat m, DMat* out) {
  const std::size_t n = m.size();
  DMat inv = dmat(n);
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t piv = c;
    for (std::size_t r = c + 1; r < n; ++r) {
      if (std::fabs(m[r][c]) > std::fabs(m[piv][c])) piv = r;
    }
    if (std::fabs(m[piv][c]) < 1e-14) return false;
    std::swap(m[piv], m[c]);
    std::swap(inv[piv], inv[c]);
    const double f = 1.0 / m[c][c];
    for (std::size_t k = 0; k < n; ++k) {
      m[c][k] *= f;
      inv[c][k] *= f;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == c || m[r][c] == 0.0) continue;
      const double g = m[r][c];
      for (std::size_t k = 0; k < n; ++k) {
        m[r][k] -= g * m[c][k];
        inv[r][k] -= g * inv[c][k];
      }
    }
  }
  *out = std::move(inv);
  return true;
}

double determinant(DMat m) {
  const std::size_t n = m.size();
  double det = 1.0;
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t piv = c;
    for (std::size_t r = c + 1; r < n; ++r) {
      if (std::fabs(m[r][c]) > std::fabs(m[piv][c])) piv = r;
    }
    if (std::fabs(m[piv][c]) < 1e-300) return 0.0;
    if (piv != c) {
      std::swap(m[piv], m[c]);
      det = -det;
    }
    det *= m[c][c];
    for (std::size_t r = c + 1; r < n; ++r) {
      const double f = m[r][c] / m[c][c];
      for (std::size_t k = c; k < n; ++k) m[r][k] -= f * m[c][k];
    }
  }
  return det;
}

}  // namespace

double unit_ball_volume(std::size_t dim) {
  const double d = static_cast<double>(dim);
  return std::pow(M_PI, d / 2.0) / std::tgamma(d / 2.0 + 1.0);
}

double Ellipsoid::volume() const {
  const double det = determinant(a);
  if (det <= 0) return 0;
  return unit_ball_volume(dim()) / std::sqrt(det);
}

bool Ellipsoid::contains(const std::vector<double>& x, double tol) const {
  const std::size_t d = dim();
  double q = 0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      q += (x[i] - center[i]) * a[i][j] * (x[j] - center[j]);
    }
  }
  return q <= 1.0 + tol;
}

Result<Ellipsoid> min_volume_enclosing_ellipsoid(
    const std::vector<RVec>& points, double tol, std::size_t max_iter) {
  if (points.empty()) return Status::invalid("MVEE of no points");
  const std::size_t d = points[0].size();
  const std::size_t n = points.size();
  if (n < d + 1) {
    return Status::invalid("MVEE needs at least d+1 points");
  }
  // Doubles of the lifted points q_i = (p_i, 1).
  std::vector<std::vector<double>> q(n, std::vector<double>(d + 1, 1.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) q[i][j] = points[i][j].to_double();
  }
  std::vector<double> u(n, 1.0 / static_cast<double>(n));
  const double dd1 = static_cast<double>(d + 1);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    // M = sum u_i q_i q_i^T.
    DMat m = dmat(d + 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t r = 0; r <= d; ++r) {
        for (std::size_t c = 0; c <= d; ++c) {
          m[r][c] += u[i] * q[i][r] * q[i][c];
        }
      }
    }
    DMat minv;
    if (!invert(std::move(m), &minv)) {
      return Status::invalid("MVEE: degenerate point set");
    }
    // w_i = q_i^T M^-1 q_i; pick the largest.
    double wmax = -1;
    std::size_t jmax = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double w = 0;
      for (std::size_t r = 0; r <= d; ++r) {
        double t = 0;
        for (std::size_t c = 0; c <= d; ++c) t += minv[r][c] * q[i][c];
        w += q[i][r] * t;
      }
      if (w > wmax) {
        wmax = w;
        jmax = i;
      }
    }
    if (wmax - dd1 < tol * dd1) break;
    const double step = (wmax - dd1) / (dd1 * (wmax - 1.0));
    for (auto& ui : u) ui *= (1.0 - step);
    u[jmax] += step;
  }
  // Center and shape matrix.
  Ellipsoid e;
  e.center.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      e.center[j] += u[i] * q[i][j];
    }
  }
  DMat cov = dmat(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        cov[r][c] += u[i] * q[i][r] * q[i][c];
      }
    }
  }
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      cov[r][c] -= e.center[r] * e.center[c];
      cov[r][c] *= static_cast<double>(d);
    }
  }
  DMat shape;
  if (!invert(std::move(cov), &shape)) {
    return Status::invalid("MVEE: singular covariance");
  }
  e.a = std::move(shape);
  return e;
}

Result<JohnVolumeBounds> john_volume_bounds(const Polyhedron& p, double tol) {
  auto vertices = enumerate_vertices(p);
  if (vertices.empty()) {
    return Status::invalid("john_volume_bounds: empty or unbounded polytope");
  }
  auto mvee = min_volume_enclosing_ellipsoid(vertices, tol);
  if (!mvee.is_ok()) return mvee.status();
  const double ve = mvee.value().volume();
  const double k = static_cast<double>(p.dim());
  JohnVolumeBounds out;
  out.ellipsoid_volume = ve;
  out.upper = ve;
  out.lower = ve / std::pow(k, k);
  return out;
}

}  // namespace cqa
