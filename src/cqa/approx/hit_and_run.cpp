#include "cqa/approx/hit_and_run.h"

#include <algorithm>
#include <cmath>

#include "cqa/approx/ellipsoid.h"
#include "cqa/approx/random.h"
#include "cqa/geometry/vertex_enum.h"

namespace cqa {

namespace {

struct DoubleBody {
  // a[i] . x <= b[i], with the origin shifted to an interior point.
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::size_t dim;

  bool contains(const std::vector<double>& x) const {
    for (std::size_t i = 0; i < a.size(); ++i) {
      double s = 0;
      for (std::size_t j = 0; j < dim; ++j) s += a[i][j] * x[j];
      if (s > b[i] + 1e-12) return false;
    }
    return true;
  }
};

double norm(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

Result<HitAndRunResult> hit_and_run_volume(const Polyhedron& p,
                                           std::size_t samples_per_phase,
                                           std::uint64_t seed) {
  const std::size_t d = p.dim();
  auto vertices = enumerate_vertices(p);
  if (vertices.empty()) {
    return Status::invalid("hit_and_run_volume: empty or unbounded body");
  }
  // Interior point: vertex centroid.
  std::vector<double> center(d, 0.0);
  for (const auto& v : vertices) {
    for (std::size_t j = 0; j < d; ++j) center[j] += v[j].to_double();
  }
  for (auto& c : center) c /= static_cast<double>(vertices.size());

  DoubleBody body;
  body.dim = d;
  for (const auto& c : fm_simplify(p.constraints())) {
    if (c.is_constant()) continue;
    std::vector<double> row(d);
    double rhs = c.rhs.to_double();
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = c.coeffs[j].to_double();
      rhs -= row[j] * center[j];  // shift origin to the centroid
    }
    if (c.cmp == LinCmp::kEq) {
      return Status::invalid("hit_and_run_volume: degenerate body");
    }
    body.a.push_back(std::move(row));
    body.b.push_back(rhs);
  }
  // Inner radius: distance from origin to the nearest facet.
  double r0 = 1e300;
  for (std::size_t i = 0; i < body.a.size(); ++i) {
    double nn = norm(body.a[i]);
    if (nn < 1e-14) continue;
    r0 = std::min(r0, body.b[i] / nn);
  }
  if (!(r0 > 0) || r0 > 1e200) {
    return Status::invalid("hit_and_run_volume: could not inscribe a ball");
  }
  // Outer radius: farthest vertex.
  double rmax = 0;
  for (const auto& v : vertices) {
    double s = 0;
    for (std::size_t j = 0; j < d; ++j) {
      double t = v[j].to_double() - center[j];
      s += t * t;
    }
    rmax = std::max(rmax, std::sqrt(s));
  }

  // Phase radii r_i = r0 * 2^(i/d) until covering rmax.
  std::vector<double> radii{r0};
  while (radii.back() < rmax) {
    radii.push_back(radii.back() * std::pow(2.0, 1.0 / static_cast<double>(d)));
  }
  const std::size_t phases = radii.size() - 1;

  Xoshiro rng(seed);
  auto chord_sample = [&](std::vector<double>* x, double radius) {
    // One hit-and-run step within body intersect B(radius).
    std::vector<double> u(d);
    double nn = 0;
    do {
      for (auto& ui : u) ui = rng.normal();
      nn = norm(u);
    } while (nn < 1e-12);
    for (auto& ui : u) ui /= nn;
    double tlo = -1e300, thi = 1e300;
    for (std::size_t i = 0; i < body.a.size(); ++i) {
      double au = 0, ax = 0;
      for (std::size_t j = 0; j < d; ++j) {
        au += body.a[i][j] * u[j];
        ax += body.a[i][j] * (*x)[j];
      }
      const double slack = body.b[i] - ax;
      if (std::fabs(au) < 1e-14) continue;
      const double t = slack / au;
      if (au > 0) {
        thi = std::min(thi, t);
      } else {
        tlo = std::max(tlo, t);
      }
    }
    // Ball constraint |x + t u| <= radius.
    double xx = 0, xu = 0;
    for (std::size_t j = 0; j < d; ++j) {
      xx += (*x)[j] * (*x)[j];
      xu += (*x)[j] * u[j];
    }
    const double disc = xu * xu - (xx - radius * radius);
    if (disc >= 0) {
      const double root = std::sqrt(disc);
      tlo = std::max(tlo, -xu - root);
      thi = std::min(thi, -xu + root);
    }
    if (thi < tlo) return;  // numerical corner; keep the point
    const double t = rng.uniform(tlo, thi);
    for (std::size_t j = 0; j < d; ++j) (*x)[j] += t * u[j];
  };

  // Telescoping: vol(K) = vol(B(r0)) * prod vol(K_{i+1}) / vol(K_i),
  // estimated by sampling K_{i+1} and counting the fraction inside K_i.
  double log_volume = std::log(unit_ball_volume(d)) +
                      static_cast<double>(d) * std::log(r0);
  // Ascending radii keep the persistent chain point inside each phase's
  // ball (each K_i is contained in the next).
  std::vector<double> x(d, 0.0);
  const std::size_t burn = 32 + 4 * d;
  for (std::size_t i = 0; i < phases; ++i) {
    const double r_outer = radii[i + 1];
    const double r_inner = radii[i];
    std::size_t hits = 0;
    for (std::size_t s = 0; s < samples_per_phase; ++s) {
      for (std::size_t bsteps = 0; bsteps < (s == 0 ? burn : 4); ++bsteps) {
        chord_sample(&x, r_outer);
      }
      if (norm(x) <= r_inner) ++hits;
    }
    const double ratio =
        std::max(1e-9, static_cast<double>(hits) /
                           static_cast<double>(samples_per_phase));
    log_volume -= std::log(ratio);  // vol(K_{i+1}) = vol(K_i) / ratio
  }
  HitAndRunResult out;
  out.volume = std::exp(log_volume);
  out.phases = phases;
  out.samples_per_phase = samples_per_phase;
  return out;
}

}  // namespace cqa
