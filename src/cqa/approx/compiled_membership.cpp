#include "cqa/approx/compiled_membership.h"

#include <algorithm>
#include <bit>
#include <string>

#include "cqa/guard/fault.h"

namespace cqa {

// -------------------------------------------------------------------------
// Lowering

Result<std::uint32_t> CompiledMembership::lower(
    const FormulaPtr& f,
    const std::map<std::size_t, std::uint32_t>& var_col) {
  using Kind = Formula::Kind;
  Node n;
  switch (f->kind()) {
    case Kind::kTrue:
      n.op = Node::Op::kTrue;
      break;
    case Kind::kFalse:
      n.op = Node::Op::kFalse;
      break;
    case Kind::kAtom: {
      const Polynomial& p = f->poly();
      const bool holds[3] = {op_holds(f->op(), -1), op_holds(f->op(), 0),
                             op_holds(f->op(), 1)};
      if (p.is_linear()) {
        LinAtom a;
        a.term_begin = static_cast<std::uint32_t>(lin_terms_.size());
        // The map iterates monomials lexicographically, which places the
        // constant term (empty monomial) first; folding it into c0 and
        // appending the remaining terms in iteration order reproduces
        // Polynomial::eval_double's exact summation order.
        for (const auto& [m, c] : p.terms()) {
          std::size_t var = 0;
          bool has_var = false;
          for (std::size_t i = 0; i < m.size(); ++i) {
            if (m[i] != 0) {
              var = i;
              has_var = true;
            }
          }
          if (!has_var) {
            a.c0 = c.to_double();
            continue;
          }
          LinTerm t;
          t.base_coeff = c.to_double();
          auto it = var_col.find(var);
          if (it != var_col.end()) {
            t.col = it->second;
            t.param_var = -1;
          } else {
            t.col = static_cast<std::uint32_t>(element_vars_.size());
            t.param_var = static_cast<std::int64_t>(var);
          }
          lin_terms_.push_back(t);
        }
        a.term_end = static_cast<std::uint32_t>(lin_terms_.size());
        a.holds[0] = holds[0];
        a.holds[1] = holds[1];
        a.holds[2] = holds[2];
        n.op = Node::Op::kLin;
        n.a = static_cast<std::uint32_t>(lin_atoms_.size());
        lin_atoms_.push_back(a);
      } else {
        PolyAtom a;
        a.atom = f;
        a.holds[0] = holds[0];
        a.holds[1] = holds[1];
        a.holds[2] = holds[2];
        n.op = Node::Op::kPoly;
        n.a = static_cast<std::uint32_t>(poly_atoms_.size());
        poly_atoms_.push_back(std::move(a));
      }
      break;
    }
    case Kind::kPredicate:
      // Same error the interpreter raises per point, surfaced once at
      // compile time (inlined formulas are predicate-free).
      return Status::invalid("predicate " + f->pred_name() +
                             " evaluated without an oracle");
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::uint32_t> kids;
      kids.reserve(f->children().size());
      for (const FormulaPtr& c : f->children()) {
        auto r = lower(c, var_col);
        if (!r.is_ok()) return r.status();
        kids.push_back(r.value());
      }
      n.op = f->kind() == Kind::kNot
                 ? Node::Op::kNot
                 : (f->kind() == Kind::kAnd ? Node::Op::kAnd : Node::Op::kOr);
      n.a = static_cast<std::uint32_t>(child_ids_.size());
      child_ids_.insert(child_ids_.end(), kids.begin(), kids.end());
      n.b = static_cast<std::uint32_t>(child_ids_.size());
      break;
    }
    case Kind::kExists:
    case Kind::kForall:
      return Status::unsupported(
          "Monte-Carlo membership requires a quantifier-free query "
          "(run linear QE first)");
  }
  nodes_.push_back(n);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

Result<CompiledMembership> CompiledMembership::compile(
    const FormulaPtr& inlined, std::vector<std::size_t> element_vars,
    guard::WorkMeter* meter) {
  if (!inlined->is_quantifier_free()) {
    return Status::unsupported(
        "Monte-Carlo membership requires a quantifier-free query "
        "(run linear QE first)");
  }
  CompiledMembership cm;
  cm.element_vars_ = std::move(element_vars);
  int mv = inlined->max_var();
  for (std::size_t v : cm.element_vars_) {
    mv = std::max(mv, static_cast<int>(v));
  }
  cm.point_size_ = static_cast<std::size_t>(mv + 1);
  // Element coordinates own columns 0..dim-1; when element_vars repeats
  // a variable the later slot wins, matching the interpreter's per-point
  // rebinding loop (last write wins).
  std::map<std::size_t, std::uint32_t> var_col;
  for (std::size_t j = 0; j < cm.element_vars_.size(); ++j) {
    var_col[cm.element_vars_[j]] = static_cast<std::uint32_t>(j);
  }
  auto root = cm.lower(inlined, var_col);
  if (!root.is_ok()) return root.status();
  cm.root_ = root.value();

  // Guard hooks: plan compilation is metered work. The chaos fault
  // models an exhausted compile; both surface as kResourceExhausted so
  // the session degrades down the ladder instead of erroring out.
  if (guard::fault_fires(guard::FaultSite::kCompileMembership)) {
    return Status::resource_exhausted("injected compile-membership fault");
  }
  if (meter != nullptr) {
    const std::size_t bytes =
        cm.lin_atoms_.size() * sizeof(LinAtom) +
        cm.lin_terms_.size() * sizeof(LinTerm) +
        cm.poly_atoms_.size() * sizeof(PolyAtom) +
        cm.nodes_.size() * sizeof(Node) +
        cm.child_ids_.size() * sizeof(std::uint32_t) +
        (cm.element_vars_.size() + 1) * kBlockPoints * sizeof(double);
    // The MC rung is the ladder's fallback for an already-tripped meter
    // (sampling is O(1)-memory per point), so a pre-existing trip must
    // not veto compilation; only a trip *caused by this charge* -- the
    // plan itself blowing the resident-bytes quota -- fails compile.
    const bool tripped_before = meter->tripped();
    meter->charge_resident_bytes(bytes);
    if (!tripped_before) CQA_RETURN_IF_ERROR(meter->check());
  }
  return cm;
}

// -------------------------------------------------------------------------
// Binding

Result<CompiledMembership::Binding> CompiledMembership::bind(
    const std::map<std::size_t, Rational>& params) const {
  for (const auto& [v, val] : params) {
    (void)val;
    if (v >= point_size_) {
      return Status::invalid("mc membership: parameter index x" +
                             std::to_string(v) +
                             " outside the formula's variable range");
    }
  }
  Binding b;
  b.coeff.resize(lin_terms_.size());
  for (std::size_t k = 0; k < lin_terms_.size(); ++k) {
    const LinTerm& t = lin_terms_[k];
    if (t.param_var < 0) {
      b.coeff[k] = t.base_coeff;
      continue;
    }
    // Non-element variable: the interpreter sees params[var] in the
    // point scratch (0.0 when unbound), multiplied as `coeff * x`. The
    // same product lands here once, and the ones column carries it
    // through the lane loop (x * 1.0 == x for every double).
    auto it = params.find(static_cast<std::size_t>(t.param_var));
    const double x = it == params.end() ? 0.0 : it->second.to_double();
    double c = t.base_coeff;
    c *= x;
    b.coeff[k] = c;
  }
  b.point.assign(point_size_, 0.0);
  for (const auto& [v, val] : params) {
    b.point[v] = val.to_double();
  }
  return b;
}

// -------------------------------------------------------------------------
// Evaluation

struct CompiledMembership::Scratch {
  std::vector<double> cols;   // (dim + 1) columns x kBlockPoints; last = 1.0
  std::vector<double> acc;    // one linear-atom accumulator per lane
  std::vector<double> point;  // fallback point, template-initialized
  std::size_t cols_dim = static_cast<std::size_t>(-1);

  void ensure(std::size_t dim, std::size_t point_size) {
    if (cols_dim != dim) {
      cols.assign((dim + 1) * kBlockPoints, 0.0);
      std::fill(cols.begin() + static_cast<std::ptrdiff_t>(dim * kBlockPoints),
                cols.end(), 1.0);
      cols_dim = dim;
    }
    if (acc.size() < kBlockPoints) acc.resize(kBlockPoints);
    if (point.size() != point_size) point.resize(point_size, 0.0);
  }
};

namespace {
inline int double_sign(double v) {
  // The interpreter's convention: NaN fails both compares -> sign 0.
  return v < 0 ? -1 : (v > 0 ? 1 : 0);
}
}  // namespace

std::uint64_t CompiledMembership::eval_mask(std::uint32_t node,
                                            std::uint64_t active,
                                            const Binding& binding,
                                            Scratch* scratch,
                                            std::size_t npts) const {
  if (active == 0) return 0;
  const Node& n = nodes_[node];
  switch (n.op) {
    case Node::Op::kTrue:
      return active;
    case Node::Op::kFalse:
      return 0;
    case Node::Op::kLin: {
      const LinAtom& a = lin_atoms_[n.a];
      double* acc = scratch->acc.data();
      for (std::size_t i = 0; i < npts; ++i) acc[i] = a.c0;
      for (std::uint32_t k = a.term_begin; k < a.term_end; ++k) {
        const double c = binding.coeff[k];
        const double* col = scratch->cols.data() +
                            static_cast<std::size_t>(lin_terms_[k].col) *
                                kBlockPoints;
        for (std::size_t i = 0; i < npts; ++i) {
          double t = c;
          t *= col[i];
          acc[i] += t;
        }
      }
      std::uint64_t m = 0;
      for (std::size_t i = 0; i < npts; ++i) {
        m |= static_cast<std::uint64_t>(a.holds[double_sign(acc[i]) + 1])
             << i;
      }
      return m & active;
    }
    case Node::Op::kPoly: {
      // Interpreter fallback, restricted to the lanes still live: fill
      // the point scratch (params pre-bound by the template) and walk
      // the polynomial exactly as eval_qf_double would.
      const PolyAtom& a = poly_atoms_[n.a];
      const Polynomial& p = a.atom->poly();
      double* pt = scratch->point.data();
      const double* cols = scratch->cols.data();
      std::uint64_t m = 0;
      std::uint64_t rest = active;
      while (rest != 0) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(rest));
        rest &= rest - 1;
        for (std::size_t j = 0; j < element_vars_.size(); ++j) {
          pt[element_vars_[j]] = cols[j * kBlockPoints + i];
        }
        const double v = p.eval_double(scratch->point);
        if (a.holds[double_sign(v) + 1]) {
          m |= std::uint64_t{1} << i;
        }
      }
      return m;
    }
    case Node::Op::kNot:
      return active &
             ~eval_mask(child_ids_[n.a], active, binding, scratch, npts);
    case Node::Op::kAnd: {
      // Lanes falsified by an earlier child are dead for the rest of the
      // conjunction: block-level short-circuit, pointwise identical to
      // the interpreter's early return.
      std::uint64_t m = active;
      for (std::uint32_t k = n.a; k < n.b && m != 0; ++k) {
        m = eval_mask(child_ids_[k], m, binding, scratch, npts);
      }
      return m;
    }
    case Node::Op::kOr: {
      std::uint64_t acc = 0;
      std::uint64_t rem = active;
      for (std::uint32_t k = n.a; k < n.b && rem != 0; ++k) {
        acc |= eval_mask(child_ids_[k], rem, binding, scratch, npts);
        rem = active & ~acc;
      }
      return acc;
    }
  }
  return 0;
}

Result<std::size_t> CompiledMembership::count_blocks(
    const Binding& binding, const std::vector<double>* aos_points,
    Xoshiro* rng, std::size_t count, const CancelToken* cancel) const {
  const std::size_t dim = element_vars_.size();
  // Per-thread reusable buffers: workers touch no shared mutable state
  // and a chunk allocates nothing once its thread's scratch is warm.
  static thread_local Scratch s;
  s.ensure(dim, point_size_);
  if (!poly_atoms_.empty()) {
    // The fallback template's non-element slots are never written during
    // the run, so one assign per call (re)binds the parameters.
    s.point.assign(binding.point.begin(), binding.point.end());
  }
  static_assert(kCancelPollStride % CompiledMembership::kBlockPoints == 0,
                "poll stride must land on block boundaries");
  std::size_t hits = 0;
  for (std::size_t base = 0; base < count; base += kBlockPoints) {
    // Poll at the exact point indices the interpreter kernel polls.
    if (cancel != nullptr && base % kCancelPollStride == 0) {
      CQA_RETURN_IF_ERROR(cancel->check());
    }
    const std::size_t npts = std::min(kBlockPoints, count - base);
    if (aos_points != nullptr) {
      for (std::size_t i = 0; i < npts; ++i) {
        const std::vector<double>& y = aos_points[base + i];
        for (std::size_t j = 0; j < dim; ++j) {
          s.cols[j * kBlockPoints + i] = y[j];
        }
      }
    } else {
      // Same draw sequence as Xoshiro::point per point: coordinates in
      // index order, points consecutively.
      for (std::size_t i = 0; i < npts; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          s.cols[j * kBlockPoints + i] = rng->uniform();
        }
      }
    }
    const std::uint64_t full =
        npts == kBlockPoints ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << npts) - 1);
    hits += static_cast<std::size_t>(
        std::popcount(eval_mask(root_, full, binding, &s, npts)));
  }
  return hits;
}

Result<std::size_t> CompiledMembership::count_hits(
    const Binding& binding, const std::vector<double>* points,
    std::size_t count, const CancelToken* cancel) const {
  return count_blocks(binding, points, nullptr, count, cancel);
}

Result<std::size_t> CompiledMembership::count_hits_stream(
    const Binding& binding, Xoshiro* rng, std::size_t count,
    const CancelToken* cancel) const {
  return count_blocks(binding, nullptr, rng, count, cancel);
}

}  // namespace cqa
