// Theorem 4: Monte-Carlo volume approximation in FO+POLY+SUM+W.
//
// Draw one M-point sample with M from the Blumer bound (d from
// Goldberg-Jerrum or supplied); the fraction of the sample falling in
// phi(a, D) eps-approximates VOL_I(phi(a, D)) *simultaneously for all
// parameters a* with probability >= 1 - delta. The counting is exactly
// the FO+POLY+SUM expressible part; W supplies the sample.

#ifndef CQA_APPROX_MONTE_CARLO_H_
#define CQA_APPROX_MONTE_CARLO_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/approx/compiled_membership.h"
#include "cqa/approx/random.h"
#include "cqa/util/cancellation.h"
#include "cqa/vc/sample_bounds.h"

namespace cqa {

/// A reusable Theorem-4 estimator: one sample, many parameter queries.
/// Membership runs on the CompiledMembership batch kernel, lowered once
/// in the constructor; repeated estimate()/evaluate_chunk() calls with
/// identical params reuse one cached parameter Binding instead of
/// re-walking the params map.
class McVolumeEstimator {
 public:
  /// Draws the sample. `phi` is the query; `element_vars` are the volume
  /// variables y (the sample lives in [0,1]^|y|); `sample_size` from
  /// blumer_sample_bound (or any M the caller wants).
  McVolumeEstimator(const Database* db, FormulaPtr phi,
                    std::vector<std::size_t> element_vars,
                    std::size_t sample_size, std::uint64_t seed);

  /// Estimated VOL_I(phi(params, D)): hit fraction of the sample.
  /// Membership is evaluated in double precision (boundary sets have
  /// measure zero, so this does not bias the estimate). An expired
  /// `cancel` token surfaces kCancelled / kDeadlineExceeded.
  Result<double> estimate(const std::map<std::size_t, Rational>& params,
                          const CancelToken* cancel = nullptr) const;

  /// Hit count over sample indices [begin, end) -- the unit of parallel
  /// work for cqa::runtime. Summing over any chunking of
  /// [0, sample_size) reproduces estimate()'s hit count exactly.
  Result<std::size_t> evaluate_chunk(
      std::size_t begin, std::size_t end,
      const std::map<std::size_t, Rational>& params,
      const CancelToken* cancel = nullptr) const;

  /// The query with predicates inlined (membership formula).
  const FormulaPtr& inlined() const { return inlined_; }
  /// The volume variables y (sample coordinates bind to these).
  const std::vector<std::size_t>& element_vars() const {
    return element_vars_;
  }

  std::size_t sample_size() const { return sample_.size(); }

 private:
  // Cached params -> Binding fold; snapshot under bind_mu_ so concurrent
  // evaluate_chunk callers share one immutable binding.
  Result<std::shared_ptr<const CompiledMembership::Binding>> binding_for(
      const std::map<std::size_t, Rational>& params) const;

  const Database* db_;
  FormulaPtr inlined_;  // phi with predicates inlined
  std::vector<std::size_t> element_vars_;
  std::vector<std::vector<double>> sample_;
  Status compile_status_;  // surfaced from estimate()/evaluate_chunk()
  CompiledMembership compiled_;
  mutable std::mutex bind_mu_;
  mutable std::map<std::size_t, Rational> bound_params_;
  mutable std::shared_ptr<const CompiledMembership::Binding> bound_;
};

/// Reference membership-counting kernel: how many of the `count` points
/// at `points` (each a |element_vars|-vector in [0,1)^m) satisfy the
/// quantifier-free `inlined` formula with `params` bound, via the
/// eval_qf_double tree walk. This is the ground truth the compiled
/// kernel is differentially tested against (the hot paths themselves run
/// CompiledMembership). The loop polls `cancel` every kCancelPollStride
/// points. A params key outside the formula's variable range is a
/// kInvalidArgument, matching CompiledMembership::bind.
Result<std::size_t> mc_count_hits(
    const FormulaPtr& inlined, const std::vector<std::size_t>& element_vars,
    const std::map<std::size_t, Rational>& params,
    const std::vector<double>* points, std::size_t count,
    const CancelToken* cancel = nullptr);

/// One-shot helper: estimate VOL_I(phi(params, D)) with the sample size
/// implied by (epsilon, delta, vc_dim).
Result<double> mc_volume(const Database& db, const FormulaPtr& phi,
                         const std::vector<std::size_t>& element_vars,
                         const std::map<std::size_t, Rational>& params,
                         double epsilon, double delta, double vc_dim,
                         std::uint64_t seed);

/// Deterministic low-discrepancy variant (Halton), for the grid-vs-random
/// comparison benches.
Result<double> halton_volume(const Database& db, const FormulaPtr& phi,
                             const std::vector<std::size_t>& element_vars,
                             const std::map<std::size_t, Rational>& params,
                             std::size_t points);

/// Theorem 4 expressed THROUGH the language: W draws the M-sample, the
/// sample is materialized as a finite relation in `db` (name chosen
/// fresh), and the hit count is computed by the language's own safe
/// aggregation over `Sample(y...) & phi(y...)` -- exact rational
/// arithmetic end to end (sample coordinates are exact dyadic rationals).
/// Mutates db (adds the sample relation). Use modest M; every membership
/// test runs through the exact evaluator.
Result<Rational> mc_volume_in_language(
    Database* db, const FormulaPtr& phi,
    const std::vector<std::size_t>& element_vars,
    const std::map<std::size_t, Rational>& params, std::size_t sample_size,
    std::uint64_t seed);

}  // namespace cqa

#endif  // CQA_APPROX_MONTE_CARLO_H_
