#include "cqa/approx/monte_carlo.h"

#include <algorithm>

#include "cqa/aggregate/sql_aggregates.h"
#include "cqa/logic/transform.h"

namespace cqa {

McVolumeEstimator::McVolumeEstimator(const Database* db, FormulaPtr phi,
                                     std::vector<std::size_t> element_vars,
                                     std::size_t sample_size,
                                     std::uint64_t seed)
    : db_(db), element_vars_(std::move(element_vars)) {
  auto inlined = db->inline_predicates(phi);
  CQA_CHECK(inlined.is_ok());
  inlined_ = inlined.value();
  WitnessOperator w(seed);
  sample_ = w.draw_sample(sample_size, element_vars_.size());
  auto compiled = CompiledMembership::compile(inlined_, element_vars_);
  compile_status_ = compiled.status();
  if (compiled.is_ok()) compiled_ = std::move(compiled).take();
}

Result<std::size_t> mc_count_hits(
    const FormulaPtr& inlined, const std::vector<std::size_t>& element_vars,
    const std::map<std::size_t, Rational>& params,
    const std::vector<double>* points, std::size_t count,
    const CancelToken* cancel) {
  if (!inlined->is_quantifier_free()) {
    return Status::unsupported(
        "Monte-Carlo membership requires a quantifier-free query "
        "(run linear QE first)");
  }
  int mv = inlined->max_var();
  for (std::size_t v : element_vars) {
    mv = std::max(mv, static_cast<int>(v));
  }
  std::vector<double> point(static_cast<std::size_t>(mv + 1), 0.0);
  for (const auto& [v, val] : params) {
    if (v >= point.size()) {
      return Status::invalid("mc membership: parameter index x" +
                             std::to_string(v) +
                             " outside the formula's variable range");
    }
    point[v] = val.to_double();
  }
  std::size_t hits = 0;
  for (std::size_t p = 0; p < count; ++p) {
    if (cancel != nullptr && p % kCancelPollStride == 0) {
      CQA_RETURN_IF_ERROR(cancel->check());
    }
    const std::vector<double>& y = points[p];
    for (std::size_t i = 0; i < element_vars.size(); ++i) {
      point[element_vars[i]] = y[i];
    }
    auto r = eval_qf_double(inlined, point);
    if (!r.is_ok()) return r.status();
    if (r.value()) ++hits;
  }
  return hits;
}

Result<std::shared_ptr<const CompiledMembership::Binding>>
McVolumeEstimator::binding_for(
    const std::map<std::size_t, Rational>& params) const {
  std::lock_guard<std::mutex> lock(bind_mu_);
  if (bound_ == nullptr || bound_params_ != params) {
    auto b = compiled_.bind(params);
    if (!b.is_ok()) return b.status();
    bound_ = std::make_shared<const CompiledMembership::Binding>(
        std::move(b).take());
    bound_params_ = params;
  }
  return bound_;
}

Result<std::size_t> McVolumeEstimator::evaluate_chunk(
    std::size_t begin, std::size_t end,
    const std::map<std::size_t, Rational>& params,
    const CancelToken* cancel) const {
  if (begin > end || end > sample_.size()) {
    return Status::out_of_range("evaluate_chunk: bad sample range");
  }
  CQA_RETURN_IF_ERROR(compile_status_);
  auto binding = binding_for(params);
  if (!binding.is_ok()) return binding.status();
  return compiled_.count_hits(*binding.value(), sample_.data() + begin,
                              end - begin, cancel);
}

Result<double> McVolumeEstimator::estimate(
    const std::map<std::size_t, Rational>& params,
    const CancelToken* cancel) const {
  auto hits = evaluate_chunk(0, sample_.size(), params, cancel);
  if (!hits.is_ok()) return hits.status();
  if (sample_.empty()) return 0.0;
  return static_cast<double>(hits.value()) /
         static_cast<double>(sample_.size());
}

Result<double> mc_volume(const Database& db, const FormulaPtr& phi,
                         const std::vector<std::size_t>& element_vars,
                         const std::map<std::size_t, Rational>& params,
                         double epsilon, double delta, double vc_dim,
                         std::uint64_t seed) {
  const std::size_t m = blumer_sample_bound(epsilon, delta, vc_dim);
  McVolumeEstimator est(&db, phi, element_vars, m, seed);
  return est.estimate(params);
}

Result<Rational> mc_volume_in_language(
    Database* db, const FormulaPtr& phi,
    const std::vector<std::size_t>& element_vars,
    const std::map<std::size_t, Rational>& params, std::size_t sample_size,
    std::uint64_t seed) {
  const std::size_t m = element_vars.size();
  if (m == 0 || sample_size == 0) {
    return Status::invalid("mc_volume_in_language: empty sample or tuple");
  }
  // W: draw the M-sample and materialize it as a finite relation whose
  // coordinates are the exact dyadic rationals of the drawn doubles.
  WitnessOperator w(seed);
  std::vector<RVec> tuples;
  tuples.reserve(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) {
    std::vector<double> pt = w.draw(m);
    RVec row;
    row.reserve(m);
    for (double x : pt) {
      auto q = Rational::from_double(x);
      if (!q.is_ok()) return q.status();
      row.push_back(std::move(q).take());
    }
    tuples.push_back(std::move(row));
  }
  std::string name = "McSample";
  for (int suffix = 0; db->has_relation(name); ++suffix) {
    name = "McSample" + std::to_string(suffix);
  }
  CQA_RETURN_IF_ERROR(db->add_finite(name, m, std::move(tuples)));

  // The count is the language's own safe aggregation: COUNT over the
  // sample relation filtered by phi (parameters substituted, element
  // variables remapped onto the relation's slots).
  std::map<std::size_t, Polynomial> sub;
  for (const auto& [v, val] : params) {
    sub.emplace(v, Polynomial::constant(val));
  }
  FormulaPtr grounded = substitute_vars(phi, sub);
  std::map<std::size_t, Polynomial> remap;
  for (std::size_t i = 0; i < m; ++i) {
    remap.emplace(element_vars[i], Polynomial::variable(i));
  }
  FormulaPtr filter = substitute_vars(grounded, remap);
  for (std::size_t v : filter->free_vars()) {
    if (v >= m) {
      return Status::invalid(
          "mc_volume_in_language: unassigned free variable x" +
          std::to_string(v));
    }
  }
  auto hits = bag_count(*db, name, 0, filter);
  if (!hits.is_ok()) return hits.status();
  return hits.value() / Rational(static_cast<std::int64_t>(sample_size));
}

Result<double> halton_volume(const Database& db, const FormulaPtr& phi,
                             const std::vector<std::size_t>& element_vars,
                             const std::map<std::size_t, Rational>& params,
                             std::size_t points) {
  auto inlined = db.inline_predicates(phi);
  if (!inlined.is_ok()) return inlined.status();
  if (!inlined.value()->is_quantifier_free()) {
    return Status::unsupported("Halton membership requires a quantifier-free "
                               "query");
  }
  int mv = inlined.value()->max_var();
  for (std::size_t v : element_vars) mv = std::max(mv, static_cast<int>(v));
  std::vector<double> point(static_cast<std::size_t>(mv + 1), 0.0);
  for (const auto& [v, val] : params) {
    if (v < point.size()) point[v] = val.to_double();
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<double> y = halton_point(i, element_vars.size());
    for (std::size_t j = 0; j < element_vars.size(); ++j) {
      point[element_vars[j]] = y[j];
    }
    auto r = eval_qf_double(inlined.value(), point);
    if (!r.is_ok()) return r.status();
    if (r.value()) ++hits;
  }
  if (points == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(points);
}

}  // namespace cqa
