// Constant-depth boolean circuits (the engine behind Lemma 3).
//
// Lemma 3 converts a hypothetical (c1, c2)-good sentence into a family of
// non-uniform AC0 circuits that would separate cardinalities -- which AC0
// cannot do. The lower bound itself is classical and non-constructive; the
// bench built on this module *illustrates* the behaviour: constant-depth
// polynomial-size circuits, even optimized by randomized local search,
// fail to (c1, c2)-separate popcounts as the input width grows.

#ifndef CQA_APPROX_CIRCUIT_H_
#define CQA_APPROX_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "cqa/approx/random.h"

namespace cqa {

/// A layered AND/OR circuit over n input literals (x_i and their
/// negations). Layer 0 gates read literals; deeper layers read the
/// previous layer. Gate types alternate per layer.
class Ac0Circuit {
 public:
  /// depth >= 1 layers of `width` gates each, fan-in `fanin`.
  /// Layer parity: even layers are OR, odd layers are AND (the top gate is
  /// the last layer's gate 0).
  Ac0Circuit(std::size_t inputs, std::size_t depth, std::size_t width,
             std::size_t fanin);

  /// Randomizes all wires.
  void randomize(Xoshiro* rng);
  /// Rewires one random connection (local-search move).
  void mutate(Xoshiro* rng);

  bool eval(const std::vector<bool>& input) const;

  std::size_t inputs() const { return inputs_; }
  std::size_t depth() const { return layers_.size(); }
  std::size_t size() const;  // total gate count

 private:
  struct Gate {
    std::vector<std::uint32_t> wires;  // indices into the previous layer
                                       // (or literal ids at layer 0)
  };
  std::size_t inputs_;
  std::size_t fanin_;
  std::vector<std::vector<Gate>> layers_;
};

/// The Lemma-3 separation task: inputs with popcount > c2 n must accept,
/// popcount < c1 n must reject (the middle band is unconstrained).
/// Returns the circuit's accuracy on `trials` random instances from the
/// two constrained classes.
double separation_accuracy(const Ac0Circuit& circuit, double c1, double c2,
                           std::size_t trials, Xoshiro* rng);

/// Randomized local search: best circuit found for the separation task.
Ac0Circuit optimize_separator(std::size_t inputs, std::size_t depth,
                              std::size_t width, std::size_t fanin,
                              double c1, double c2, std::size_t iterations,
                              std::uint64_t seed);

}  // namespace cqa

#endif  // CQA_APPROX_CIRCUIT_H_
