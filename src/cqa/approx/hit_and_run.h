// Dyer-Frieze-Kannan-style randomized convex volume estimation.
//
// The paper's introduction motivates approximation by [15]: exact convex
// volume is #P-hard [14], but a randomized polynomial-time algorithm
// approximates it. We implement the classic multiphase Monte-Carlo scheme:
// telescope vol(K) through K_i = K intersect B(r_i) with geometrically
// growing radii, estimating each ratio by hit-and-run sampling.

#ifndef CQA_APPROX_HIT_AND_RUN_H_
#define CQA_APPROX_HIT_AND_RUN_H_

#include <cstdint>

#include "cqa/geometry/polyhedron.h"

namespace cqa {

/// Result of a multiphase volume estimation.
struct HitAndRunResult {
  double volume = 0;
  std::size_t phases = 0;
  std::size_t samples_per_phase = 0;
};

/// Estimates the volume of a bounded full-dimensional polytope.
/// Randomized; accuracy improves with samples_per_phase.
Result<HitAndRunResult> hit_and_run_volume(const Polyhedron& p,
                                           std::size_t samples_per_phase,
                                           std::uint64_t seed);

}  // namespace cqa

#endif  // CQA_APPROX_HIT_AND_RUN_H_
