#include "cqa/approx/circuit.h"

#include <algorithm>

#include "cqa/util/status.h"

namespace cqa {

Ac0Circuit::Ac0Circuit(std::size_t inputs, std::size_t depth,
                       std::size_t width, std::size_t fanin)
    : inputs_(inputs), fanin_(fanin) {
  CQA_CHECK(depth >= 1 && width >= 1 && fanin >= 1);
  layers_.resize(depth);
  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t w = (l + 1 == depth) ? 1 : width;
    layers_[l].assign(w, Gate{std::vector<std::uint32_t>(fanin, 0)});
  }
}

void Ac0Circuit::randomize(Xoshiro* rng) {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t prev =
        l == 0 ? 2 * inputs_ : layers_[l - 1].size();
    for (auto& gate : layers_[l]) {
      for (auto& w : gate.wires) {
        w = static_cast<std::uint32_t>(rng->next() % prev);
      }
    }
  }
}

void Ac0Circuit::mutate(Xoshiro* rng) {
  const std::size_t l = rng->next() % layers_.size();
  const std::size_t prev = l == 0 ? 2 * inputs_ : layers_[l - 1].size();
  auto& gate = layers_[l][rng->next() % layers_[l].size()];
  gate.wires[rng->next() % gate.wires.size()] =
      static_cast<std::uint32_t>(rng->next() % prev);
}

bool Ac0Circuit::eval(const std::vector<bool>& input) const {
  CQA_DCHECK(input.size() == inputs_);
  std::vector<bool> prev, cur;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool is_and = (l % 2) == 1;
    cur.assign(layers_[l].size(), is_and);
    for (std::size_t g = 0; g < layers_[l].size(); ++g) {
      bool acc = is_and;
      for (std::uint32_t w : layers_[l][g].wires) {
        bool v;
        if (l == 0) {
          const std::size_t idx = w / 2;
          v = input[idx] ^ (w % 2 == 1);
        } else {
          v = prev[w];
        }
        if (is_and) {
          acc = acc && v;
          if (!acc) break;
        } else {
          acc = acc || v;
          if (acc) break;
        }
      }
      cur[g] = acc;
    }
    prev = cur;
  }
  return prev[0];
}

std::size_t Ac0Circuit::size() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.size();
  return n;
}

namespace {

std::vector<bool> random_with_popcount(std::size_t n, std::size_t ones,
                                       Xoshiro* rng) {
  std::vector<bool> out(n, false);
  // Reservoir-style selection of `ones` positions.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < ones; ++i) {
    std::size_t j = i + rng->next() % (n - i);
    std::swap(idx[i], idx[j]);
    out[idx[i]] = true;
  }
  return out;
}

}  // namespace

double separation_accuracy(const Ac0Circuit& circuit, double c1, double c2,
                           std::size_t trials, Xoshiro* rng) {
  const std::size_t n = circuit.inputs();
  const std::size_t lo_max = static_cast<std::size_t>(c1 * n);
  const std::size_t hi_min =
      std::min(n, static_cast<std::size_t>(c2 * n) + 1);
  std::size_t correct = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const bool want_accept = (t % 2) == 0;
    std::size_t ones;
    if (want_accept) {
      ones = hi_min + (hi_min < n ? rng->next() % (n - hi_min + 1) : 0);
    } else {
      ones = lo_max > 0 ? rng->next() % lo_max : 0;
    }
    std::vector<bool> input = random_with_popcount(n, ones, rng);
    if (circuit.eval(input) == want_accept) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

Ac0Circuit optimize_separator(std::size_t inputs, std::size_t depth,
                              std::size_t width, std::size_t fanin,
                              double c1, double c2, std::size_t iterations,
                              std::uint64_t seed) {
  Xoshiro rng(seed);
  Ac0Circuit best(inputs, depth, width, fanin);
  best.randomize(&rng);
  double best_acc = separation_accuracy(best, c1, c2, 200, &rng);
  Ac0Circuit cur = best;
  double cur_acc = best_acc;
  for (std::size_t it = 0; it < iterations; ++it) {
    Ac0Circuit cand = cur;
    cand.mutate(&rng);
    double acc = separation_accuracy(cand, c1, c2, 200, &rng);
    if (acc >= cur_acc) {
      cur = std::move(cand);
      cur_acc = acc;
      if (acc > best_acc) {
        best = cur;
        best_acc = acc;
      }
    }
  }
  return best;
}

}  // namespace cqa
