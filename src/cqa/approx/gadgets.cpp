#include "cqa/approx/gadgets.h"

#include <cmath>

#include "cqa/volume/semilinear_volume.h"

namespace cqa {

AvgSeparationGadget::AvgSeparationGadget(Rational delta)
    : delta_(std::move(delta)) {
  CQA_CHECK(delta_ > Rational(0) && delta_ < Rational(1));
}

Rational AvgSeparationGadget::avg_for_cards(std::size_t n1,
                                            std::size_t n2) const {
  CQA_CHECK(n1 + n2 > 0);
  const Rational rn1(static_cast<std::int64_t>(n1));
  const Rational rn2(static_cast<std::int64_t>(n2));
  // Sum over U1': Delta * n1 / 2. Sum over U2': n2 (1 - Delta) + Delta n2/2.
  Rational total = delta_ * rn1 * Rational(1, 2) + rn2 * (Rational(1) - delta_) +
                   delta_ * rn2 * Rational(1, 2);
  return total / (rn1 + rn2);
}

Rational AvgSeparationGadget::avg_for_ratio(const Rational& rho) const {
  // (n2 + Delta (n1 - n2)/2) / (n1 + n2) with n1 = rho n2.
  return (Rational(1) + delta_ * (rho - Rational(1)) * Rational(1, 2)) /
         (rho + Rational(1));
}

double AvgSeparationGadget::min_separable_ratio(double eps) const {
  const double d = delta_.to_double();
  // avg(rho) = (1 + d (rho - 1)/2) / (rho + 1): decreasing in rho.
  auto avg = [&](double rho) {
    return (1.0 + d * (rho - 1.0) / 2.0) / (rho + 1.0);
  };
  // Binary search the least c > 1 with avg(1/c) - avg(c) > 2 eps.
  const double limit = avg(0.0) - avg(1e12);  // ~ (1 - d/2) - d/2 = 1 - d
  if (limit <= 2.0 * eps) return 0.0;
  double lo = 1.0, hi = 1e12;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = std::sqrt(lo * hi);
    if (avg(1.0 / mid) - avg(mid) > 2.0 * eps) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

GoodInstance::GoodInstance(std::size_t n, std::uint64_t b_mask)
    : n_(n), mask_(b_mask) {
  CQA_CHECK(n_ >= 2 && n_ <= 64);
  if (n_ < 64) mask_ &= (1ull << n_) - 1;
  CQA_CHECK(mask_ != 0);  // B nonempty
  CQA_CHECK(mask_ != (n_ == 64 ? ~0ull : (1ull << n_) - 1));  // proper
}

std::size_t GoodInstance::card_b() const {
  return static_cast<std::size_t>(__builtin_popcountll(mask_));
}

namespace {

std::vector<LinearCell> intervals_for(std::size_t n, std::uint64_t in_set) {
  // For each a with bit set: interval [a/n, next/n) where next is the
  // least unset index above a (or n).
  std::vector<LinearCell> out;
  for (std::size_t a = 0; a < n; ++a) {
    if (!(in_set & (1ull << a))) continue;
    std::size_t next = a + 1;
    while (next < n && (in_set & (1ull << next))) ++next;
    // Merge: only emit for the first element of a run.
    if (a > 0 && (in_set & (1ull << (a - 1)))) continue;
    LinearCell cell(1);
    LinearConstraint lo;
    lo.coeffs = {Rational(-1)};
    lo.rhs = -Rational(static_cast<std::int64_t>(a),
                       static_cast<std::int64_t>(n));
    lo.cmp = LinCmp::kLe;
    LinearConstraint hi;
    hi.coeffs = {Rational(1)};
    hi.rhs = Rational(static_cast<std::int64_t>(next),
                      static_cast<std::int64_t>(n));
    hi.cmp = LinCmp::kLt;
    cell.add(std::move(lo));
    cell.add(std::move(hi));
    out.push_back(std::move(cell));
  }
  return out;
}

}  // namespace

std::vector<LinearCell> GoodInstance::set_x() const {
  return intervals_for(n_, mask_);
}

std::vector<LinearCell> GoodInstance::set_y() const {
  std::uint64_t complement =
      (n_ == 64 ? ~0ull : (1ull << n_) - 1) & ~mask_;
  return intervals_for(n_, complement);
}

Rational GoodInstance::vol_x() const {
  return semilinear_volume(set_x()).value_or_die();
}

Rational GoodInstance::vol_y() const {
  return semilinear_volume(set_y()).value_or_die();
}

Result<Rational> trivial_half_approximation(
    const std::vector<LinearCell>& cells, std::size_t dim) {
  std::vector<LinearCell> boxed;
  boxed.reserve(cells.size());
  for (const auto& c : cells) {
    CQA_CHECK(c.dim() == dim);
    boxed.push_back(c.intersect_box(Rational(0), Rational(1)));
  }
  auto v = semilinear_volume(boxed);
  if (!v.is_ok()) return v;
  if (v.value().is_zero()) return Rational(0);
  if (v.value() == Rational(1)) return Rational(1);
  return Rational(1, 2);
}

}  // namespace cqa
