// Executable proof gadgets from Section 4's impossibility arguments.
//
// The theorems are impossibility results; their *reductions* are concrete
// constructions we can run:
//  - Theorem 1: finite sets translate into intervals (0, Delta) and
//    (1 - Delta, 1) so that AVG of the union is a function of the
//    cardinality ratio -- an eps-approximate AVG would then decide a
//    (c1, c2)-separating sentence.
//  - Theorem 2 (Lemma 2): "good instances" (A an initial segment of N, B
//    a proper subset) map to unions of intervals X and Y whose volumes
//    encode card(B)/card(A) -- an eps-approximate VOL_I would decide a
//    (c1, c2)-good sentence.
//  - Proposition 4: the trivial half-approximation that IS definable.

#ifndef CQA_APPROX_GADGETS_H_
#define CQA_APPROX_GADGETS_H_

#include <cstdint>
#include <vector>

#include "cqa/constraint/linear_cell.h"

namespace cqa {

/// Theorem 1's translation gadget.
class AvgSeparationGadget {
 public:
  /// Delta in (0, 1); smaller Delta gives a wider AVG spread.
  explicit AvgSeparationGadget(Rational delta);

  /// U1 (n1 elements) maps order-isomorphically onto
  /// { Delta i/(n1+1) : 1 <= i <= n1 } in (0, Delta); U2 (n2 elements)
  /// onto { 1 - Delta + Delta j/(n2+1) } in (1 - Delta, 1). The exact
  /// AVG of the union depends only on (n1, n2):
  ///   AVG = (n2 + Delta (n1 - n2) / 2) / (n1 + n2),
  /// a strictly monotone function of the ratio n1/n2.
  Rational avg_for_cards(std::size_t n1, std::size_t n2) const;

  /// AVG as a function of the real ratio rho = n1/n2.
  Rational avg_for_ratio(const Rational& rho) const;

  /// Smallest c > 1 such that an eps-approximate AVG oracle separates
  /// card(U1) > c card(U2) from card(U2) > c card(U1): the least c with
  /// avg(1/c) - avg(c) > 2 eps. Returns 0 if no such c exists (eps too
  /// large for this Delta).
  double min_separable_ratio(double eps) const;

  const Rational& delta() const { return delta_; }

 private:
  Rational delta_;
};

/// Theorem 2's good instance: A = {0..n-1}, B a nonempty proper subset.
class GoodInstance {
 public:
  GoodInstance(std::size_t n, std::uint64_t b_mask);

  std::size_t n() const { return n_; }
  std::size_t card_b() const;

  /// X: union over b in B of [b/n, next/n) where next is the least
  /// element of A-B above b (or n). Y: the same with B and A-B swapped.
  std::vector<LinearCell> set_x() const;
  std::vector<LinearCell> set_y() const;

  /// Exact volumes (computed from the interval structure).
  Rational vol_x() const;
  Rational vol_y() const;

  /// The decision an eps-approximate VOL_I oracle enables: with
  /// c1 = (1 - 2 eps)/3 and c2 = (2 + 2 eps)/3, approximate volumes of X
  /// and Y classify card(B) < c1 n vs card(B) > c2 n (Lemma 2).
  static double c1(double eps) { return (1.0 - 2.0 * eps) / 3.0; }
  static double c2(double eps) { return (2.0 + 2.0 * eps) / 3.0; }

 private:
  std::size_t n_;
  std::uint64_t mask_;
};

/// Proposition 4: the trivial eps >= 1/2 approximation. Returns 0 for
/// measure-zero sets, 1 for sets of full measure in [0,1]^dim, and 1/2
/// otherwise -- all three cases FO+LIN-distinguishable.
Result<Rational> trivial_half_approximation(
    const std::vector<LinearCell>& cells, std::size_t dim);

}  // namespace cqa

#endif  // CQA_APPROX_GADGETS_H_
