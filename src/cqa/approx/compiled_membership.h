// Compiled batch membership kernel for the Monte-Carlo hit test.
//
// The per-sample path used to be a Formula tree walk (eval_qf_double):
// one virtual-free but pointer-chasing recursion per point, plus a map
// walk over `params` and a freshly allocated point vector per chunk.
// CompiledMembership lowers a quantifier-free inlined formula ONCE into
// a flat plan:
//
//  * a structure-of-arrays table of *linear* atoms -- per atom a constant
//    and an ordered run of (coefficient, column) terms -- evaluated over
//    SoA point blocks of kBlockPoints with a tight, vectorizable inner
//    loop (column-major: one coefficient broadcast against a whole
//    block column per step);
//  * a short-circuit boolean cell program over 64-bit lane masks: an AND
//    node stops evaluating children once no lane is still live, an OR
//    node once every lane is decided -- block-level short-circuiting
//    with pointwise-identical semantics to the tree walk;
//  * non-linear (FO+POLY) atoms fall back per-atom to the interpreter
//    (Polynomial::eval_double) inside the same block loop, evaluated
//    only on the lanes that are still live.
//
// Bitwise-identity contract: for every point, the kernel performs the
// exact floating-point operations eval_qf_double performs, in the same
// order (terms in the polynomial's monomial order, `acc += coeff * x`
// per term), so hit counts are EXACTLY equal to the tree walk -- not
// just statistically close. The build compiles with -ffp-contract=off
// so neither path is silently FMA-contracted differently. The
// differential suite in tests/approx_compiled_kernel_test.cpp gates
// this contract.
//
// Parameter binding is hoisted out of the per-chunk loop: bind() folds
// `params` into a Binding once (per-term products precomputed, the
// fallback point template pre-filled), so repeated chunk evaluations
// with the same parameters never re-walk the map. A parameter index
// outside the formula's variable range is a kInvalidArgument instead of
// the silent drop the old kernel performed.

#ifndef CQA_APPROX_COMPILED_MEMBERSHIP_H_
#define CQA_APPROX_COMPILED_MEMBERSHIP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cqa/approx/random.h"
#include "cqa/guard/meter.h"
#include "cqa/logic/formula.h"
#include "cqa/util/cancellation.h"

namespace cqa {

/// Cancellation poll period of the membership hot loops, in points.
/// Shared with the reference interpreter kernel (mc_count_hits) so the
/// compiled and interpreted paths observe expiry at the same stride.
inline constexpr std::size_t kCancelPollStride = 256;

class CompiledMembership {
 public:
  /// Points per SoA block; one bit per point in the lane masks.
  static constexpr std::size_t kBlockPoints = 64;

  /// Parameters folded into evaluable form: per-term coefficients with
  /// parameter products precomputed, plus the pre-filled point template
  /// the non-linear fallback atoms evaluate against. Immutable once
  /// built; safe to share across worker threads.
  class Binding {
   public:
    Binding() = default;

   private:
    friend class CompiledMembership;
    std::vector<double> coeff;  // per LinTerm, params already multiplied
    std::vector<double> point;  // fallback template: params bound, rest 0
  };

  CompiledMembership() = default;
  CompiledMembership(CompiledMembership&&) = default;
  CompiledMembership& operator=(CompiledMembership&&) = default;

  /// Lowers `inlined` (a predicate-inlined formula) for sampling over
  /// `element_vars` coordinates. Fails with kUnsupported on quantified
  /// input and kInvalidArgument on predicates (mirroring the
  /// interpreter's runtime errors, surfaced early). Charges `meter`
  /// (nullptr = unmetered) for the plan footprint; a tripped quota or
  /// the kCompileMembership chaos fault aborts compilation with
  /// kResourceExhausted, which the session degrades down the guard
  /// ladder like any other exhaustion.
  static Result<CompiledMembership> compile(
      const FormulaPtr& inlined, std::vector<std::size_t> element_vars,
      guard::WorkMeter* meter = nullptr);

  /// Folds `params` into a reusable Binding. kInvalidArgument when a
  /// parameter index lies outside the formula's variable range (the old
  /// kernel silently dropped it). A parameter on an element variable is
  /// legal and inert: per-point coordinates overwrite it, exactly as
  /// the interpreter's point-scratch rebinding behaves.
  Result<Binding> bind(const std::map<std::size_t, Rational>& params) const;

  /// Hit count over `count` array-of-struct points (each a
  /// |element_vars|-vector), identical semantics to mc_count_hits on
  /// the same points. Polls `cancel` every kCancelPollStride points.
  Result<std::size_t> count_hits(const Binding& binding,
                                 const std::vector<double>* points,
                                 std::size_t count,
                                 const CancelToken* cancel = nullptr) const;

  /// Streaming variant: draws `count` points from `rng` (same draw
  /// order as WitnessOperator/Xoshiro::point, so chunk streams are
  /// bitwise reproducible) directly into SoA block scratch -- no
  /// per-point or per-chunk heap allocation.
  Result<std::size_t> count_hits_stream(
      const Binding& binding, Xoshiro* rng, std::size_t count,
      const CancelToken* cancel = nullptr) const;

  std::size_t dimension() const { return element_vars_.size(); }
  /// Atoms lowered to the SoA linear table / interpreter fallback --
  /// exposed so tests can pin which path a formula exercises.
  std::size_t linear_atom_count() const { return lin_atoms_.size(); }
  std::size_t fallback_atom_count() const { return poly_atoms_.size(); }

 private:
  // One lowered linear atom: value_i = c0 + sum_k coeff[k] * col_k[i],
  // terms [term_begin, term_end) in the polynomial's monomial order.
  // holds[sign + 1] is op_holds(op, sign) precomputed, so the lane loop
  // is a table lookup with the interpreter's exact sign convention
  // (NaN compares false both ways -> sign 0).
  struct LinAtom {
    double c0 = 0.0;
    std::uint32_t term_begin = 0;
    std::uint32_t term_end = 0;
    bool holds[3] = {false, false, false};
  };
  // One linear-atom term. `col` indexes the SoA scratch: columns
  // 0..dim-1 are element coordinates, column dim is all-ones (parameter
  // and unbound-variable terms multiply against it so their
  // bind-time-folded products keep their place in the summation order).
  struct LinTerm {
    double base_coeff = 0.0;
    std::uint32_t col = 0;
    // >= 0: non-element variable -- bind() folds params[var] (or the
    // interpreter's implicit 0.0) into the bound coefficient. -1:
    // element term, bound coefficient == base_coeff.
    std::int64_t param_var = -1;
  };
  // One fallback atom kept on the interpreter: the atom node pins the
  // Polynomial (and the shared formula tree) alive.
  struct PolyAtom {
    FormulaPtr atom;
    bool holds[3] = {false, false, false};
  };
  // Flattened boolean cell program node.
  struct Node {
    enum class Op : std::uint8_t {
      kTrue, kFalse, kLin, kPoly, kNot, kAnd, kOr,
    };
    Op op = Op::kTrue;
    std::uint32_t a = 0;  // kLin/kPoly: atom index; kNot/kAnd/kOr: child lo
    std::uint32_t b = 0;  // kNot/kAnd/kOr: child hi (range into child_ids_)
  };

  struct Scratch;  // thread-local SoA buffers, defined in the .cpp

  Result<std::uint32_t> lower(
      const FormulaPtr& f,
      const std::map<std::size_t, std::uint32_t>& var_col);
  std::uint64_t eval_mask(std::uint32_t node, std::uint64_t active,
                          const Binding& binding, Scratch* scratch,
                          std::size_t npts) const;
  Result<std::size_t> count_blocks(const Binding& binding,
                                   const std::vector<double>* aos_points,
                                   Xoshiro* rng, std::size_t count,
                                   const CancelToken* cancel) const;

  std::vector<std::size_t> element_vars_;
  std::size_t point_size_ = 0;  // max_var + 1 over formula and elements
  std::vector<LinAtom> lin_atoms_;
  std::vector<LinTerm> lin_terms_;
  std::vector<PolyAtom> poly_atoms_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> child_ids_;
  std::uint32_t root_ = 0;
};

}  // namespace cqa

#endif  // CQA_APPROX_COMPILED_MEMBERSHIP_H_
