#include "cqa/approx/random.h"

#include <cmath>

namespace cqa {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
// splitmix64 for seeding.
std::uint64_t splitmix(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Xoshiro::Xoshiro(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix(&sm);
}

std::uint64_t Xoshiro::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::vector<double> Xoshiro::point(std::size_t dim) {
  std::vector<double> p(dim);
  for (auto& x : p) x = uniform();
  return p;
}

double Xoshiro::normal() {
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

std::vector<double> halton_point(std::size_t index, std::size_t dim) {
  static const int kPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                23, 29, 31, 37, 41, 43, 47, 53};
  std::vector<double> p(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const int base = kPrimes[d % 16];
    double f = 1.0, r = 0.0;
    std::size_t i = index + 1;
    while (i > 0) {
      f /= base;
      r += f * static_cast<double>(i % static_cast<std::size_t>(base));
      i /= static_cast<std::size_t>(base);
    }
    p[d] = r;
  }
  return p;
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + (stream + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<std::vector<double>> WitnessOperator::draw_sample(
    std::size_t count, std::size_t m) {
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng_.point(m));
  return out;
}

}  // namespace cqa
