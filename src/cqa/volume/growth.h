// Volume growth at infinity and the Chomicki-Kuper mu operator.
//
// The paper's introduction contrasts its operators with the measure
// operator mu of [Chomicki-Kuper, PODS'95], under which FO+LIN is closed
// but which satisfies mu(X) = 0 for every bounded X. We realize mu for
// semi-linear sets as the normalized leading behaviour of the growth
// function V(r) = Vol(S cap [-r, r]^n), which is eventually a polynomial
// in r (polyhedral sets are conical at infinity).

#ifndef CQA_VOLUME_GROWTH_H_
#define CQA_VOLUME_GROWTH_H_

#include <vector>

#include "cqa/constraint/linear_cell.h"
#include "cqa/poly/univariate.h"

namespace cqa {

/// The eventual growth polynomial of V(r) = Vol(S cap [-r, r]^dim),
/// valid for r >= threshold.
struct GrowthPolynomial {
  UPoly poly;
  Rational threshold;
};

/// Computes the growth polynomial of the union of cells (which may be
/// unbounded). Exact: samples V at dim+1 points beyond every arrangement
/// vertex and interpolates.
Result<GrowthPolynomial> volume_growth(const std::vector<LinearCell>& cells);

/// The Chomicki-Kuper style density at infinity:
/// mu(S) = lim_{r->inf} Vol(S cap [-r, r]^n) / (2r)^n, in [0, 1].
/// Zero for every bounded set, 1 for all of R^n.
Result<Rational> mu_operator(const std::vector<LinearCell>& cells);

}  // namespace cqa

#endif  // CQA_VOLUME_GROWTH_H_
