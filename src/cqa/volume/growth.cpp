#include "cqa/volume/growth.h"

#include <algorithm>

#include "cqa/geometry/vertex_enum.h"
#include "cqa/poly/interpolation.h"
#include "cqa/volume/semilinear_volume.h"

namespace cqa {

Result<GrowthPolynomial> volume_growth(const std::vector<LinearCell>& cells) {
  if (cells.empty()) {
    return GrowthPolynomial{UPoly(), Rational(0)};
  }
  const std::size_t dim = cells[0].dim();
  // Every structural change of S cap [-r,r]^n happens while a box facet
  // still interacts with the bounded part of the arrangement: beyond the
  // largest |coordinate| of any arrangement vertex, the combinatorics of
  // the intersection pattern is constant and V(r) is one polynomial.
  Rational threshold(1);
  {
    // Pool all constraints without simplification: dominance pruning is
    // only sound within one conjunction, not across cells of a union.
    std::vector<LinearConstraint> planes;
    for (const auto& cell : cells) {
      for (const auto& c : cell.constraints()) planes.push_back(c.closure());
    }
    const std::size_t m = planes.size();
    if (m >= dim) {
      std::vector<std::size_t> comb(dim);
      for (std::size_t i = 0; i < dim; ++i) comb[i] = i;
      auto advance = [&]() -> bool {
        std::size_t i = dim;
        while (i-- > 0) {
          if (comb[i] < m - dim + i) {
            ++comb[i];
            for (std::size_t j = i + 1; j < dim; ++j) {
              comb[j] = comb[j - 1] + 1;
            }
            return true;
          }
        }
        return false;
      };
      bool more = true;
      while (more) {
        Matrix a(dim, dim);
        RVec b(dim);
        for (std::size_t r = 0; r < dim; ++r) {
          for (std::size_t c = 0; c < dim; ++c) {
            a.at(r, c) = planes[comb[r]].coeffs[c];
          }
          b[r] = planes[comb[r]].rhs;
        }
        if (!a.determinant().is_zero()) {
          const auto solution = solve_square(a, b);
          for (const Rational& x : *solution) {
            Rational ax = x.abs() + Rational(1);
            if (ax > threshold) threshold = ax;
          }
        }
        more = advance();
      }
    }
    // Also clear every single hyperplane's axis intercepts.
    for (const auto& p : planes) {
      for (std::size_t v = 0; v < dim; ++v) {
        if (!p.coeffs[v].is_zero()) {
          Rational ax = (p.rhs / p.coeffs[v]).abs() + Rational(1);
          if (ax > threshold) threshold = ax;
        }
      }
    }
  }
  // Sample V(r) at dim+1 points beyond the threshold and interpolate
  // (degree of V is at most dim).
  std::vector<std::pair<Rational, Rational>> samples;
  for (std::size_t k = 0; k <= dim; ++k) {
    Rational r = threshold + Rational(static_cast<std::int64_t>(k + 1));
    std::vector<LinearCell> boxed;
    boxed.reserve(cells.size());
    for (const auto& cell : cells) {
      boxed.push_back(cell.intersect_box(-r, r));
    }
    auto v = semilinear_volume(boxed);
    if (!v.is_ok()) return v.status();
    samples.emplace_back(r, v.value());
  }
  return GrowthPolynomial{interpolate(samples), threshold};
}

Result<Rational> mu_operator(const std::vector<LinearCell>& cells) {
  auto growth = volume_growth(cells);
  if (!growth.is_ok()) return growth.status();
  if (cells.empty()) return Rational(0);
  const std::size_t dim = cells[0].dim();
  const UPoly& p = growth.value().poly;
  if (p.degree() < static_cast<int>(dim)) return Rational(0);
  // V(r) ~ c r^dim; mu = c / 2^dim.
  return p.coeff(dim) / Rational(BigInt::pow(BigInt(2), dim));
}

}  // namespace cqa
