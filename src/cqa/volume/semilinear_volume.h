// Exact volume of arbitrary semi-linear sets (the Theorem 3 engine).
//
// The paper proves FO+POLY+SUM can express VOL of any semi-linear
// database; the proof is an algorithm, and this module implements it:
//
//   VOL(S) = Integral g(t) dt,   g(t) = VOL_{n-1}(S cap {x_0 = t}).
//
// For semi-linear S the section-volume g is piecewise polynomial of degree
// <= n-1 whose breakpoints lie among the x_0-coordinates of the vertices
// of the arrangement spanned by all cell constraints. We enumerate those
// vertices exactly, interpolate g on each open breakpoint interval from n
// exact rational samples (recursing into dimension n-1), and integrate the
// interpolants exactly. Unions and overlaps cost nothing extra: the
// recursion bottoms out in 1-D interval merging.

#ifndef CQA_VOLUME_SEMILINEAR_VOLUME_H_
#define CQA_VOLUME_SEMILINEAR_VOLUME_H_

#include <vector>

#include "cqa/constraint/linear_cell.h"
#include "cqa/geometry/polytope_volume.h"
#include "cqa/guard/meter.h"
#include "cqa/logic/formula.h"
#include "cqa/util/cancellation.h"

namespace cqa {

/// Statistics of one exact-volume computation (for the benches).
struct VolumeStats {
  std::size_t sweep_calls = 0;        // recursive sweep invocations
  std::size_t lasserre_calls = 0;     // single-polytope fast paths taken
  std::size_t breakpoints = 0;        // total breakpoints enumerated
  std::size_t sections_evaluated = 0; // recursive section evaluations
};

/// Exact volume of the union of the cells. All cells must share the same
/// ambient dimension and be bounded (error otherwise). Overlaps are fine.
/// An expired `cancel` token aborts the sweep between section
/// evaluations with kCancelled / kDeadlineExceeded; a tripped `meter`
/// quota (sections evaluated, resident-bytes estimate) aborts the same
/// way with kResourceExhausted, so a blowing-up sweep stops within one
/// section of the limit instead of running the whole arrangement.
Result<Rational> semilinear_volume(const std::vector<LinearCell>& cells,
                                   VolumeStats* stats = nullptr,
                                   const CancelToken* cancel = nullptr,
                                   guard::WorkMeter* meter = nullptr);

/// Forces the sweep path even where a fast path applies (for ablations).
Result<Rational> semilinear_volume_sweep(const std::vector<LinearCell>& cells,
                                         VolumeStats* stats = nullptr,
                                         const CancelToken* cancel = nullptr,
                                         guard::WorkMeter* meter = nullptr);

/// VOL(phi(D)) for a quantifier-free, predicate-free FO+LIN formula with
/// free variables 0..dim-1. The denotation must be bounded.
Result<Rational> formula_volume(const FormulaPtr& f, std::size_t dim);

/// VOL_I: volume of the denotation intersected with [0,1]^dim (always
/// defined; the paper's bounded operator).
Result<Rational> formula_volume_I(const FormulaPtr& f, std::size_t dim);

/// Drops coordinate `var` from a cell whose constraints do not mention it
/// (shifting higher variable indices down by one).
LinearCell drop_var(const LinearCell& cell, std::size_t var);

/// Full-dimensionality test: the cell's interior (all constraints made
/// strict) is nonempty. Lower-dimensional cells have measure zero.
bool is_full_dimensional(const LinearCell& cell);

}  // namespace cqa

#endif  // CQA_VOLUME_SEMILINEAR_VOLUME_H_
