#include "cqa/volume/semilinear_volume.h"

#include <algorithm>

#include "cqa/guard/fault.h"
#include "cqa/poly/interpolation.h"
#include "cqa/poly/univariate.h"

namespace cqa {

LinearCell drop_var(const LinearCell& cell, std::size_t var) {
  CQA_CHECK(var < cell.dim());
  LinearCell out(cell.dim() - 1);
  for (const auto& c : cell.constraints()) {
    CQA_CHECK(c.coeffs[var].is_zero());
    LinearConstraint nc;
    nc.cmp = c.cmp;
    nc.rhs = c.rhs;
    nc.coeffs.reserve(cell.dim() - 1);
    for (std::size_t k = 0; k < cell.dim(); ++k) {
      if (k != var) nc.coeffs.push_back(c.coeffs[k]);
    }
    out.add(std::move(nc));
  }
  return out;
}

bool is_full_dimensional(const LinearCell& cell) {
  std::vector<LinearConstraint> strict;
  strict.reserve(cell.constraints().size());
  for (const auto& c : cell.constraints()) {
    if (c.cmp == LinCmp::kEq) {
      if (!c.is_constant()) return false;
      if (!c.constant_truth()) return false;
      continue;
    }
    LinearConstraint s = c;
    s.cmp = LinCmp::kLt;
    strict.push_back(std::move(s));
  }
  return fm_feasible(strict, cell.dim());
}

namespace {

// Merged total length of the union of 1-D cells.
Result<Rational> interval_union_length(const std::vector<LinearCell>& cells) {
  std::vector<std::pair<Rational, Rational>> intervals;
  for (const auto& cell : cells) {
    AxisInterval iv = cell.project_to_axis(0);
    if (iv.empty) continue;
    if (!iv.lo || !iv.hi) {
      return Status::invalid("semilinear_volume: unbounded 1-D cell");
    }
    if (*iv.lo < *iv.hi) intervals.emplace_back(*iv.lo, *iv.hi);
  }
  std::sort(intervals.begin(), intervals.end());
  Rational total;
  std::size_t i = 0;
  while (i < intervals.size()) {
    Rational lo = intervals[i].first;
    Rational hi = intervals[i].second;
    std::size_t j = i + 1;
    while (j < intervals.size() && intervals[j].first <= hi) {
      hi = std::max(hi, intervals[j].second);
      ++j;
    }
    total += hi - lo;
    i = j;
  }
  return total;
}

// x_0-coordinates of the vertices of the hyperplane arrangement spanned by
// all constraints of all cells, sorted and deduplicated.
std::vector<Rational> arrangement_breakpoints(
    const std::vector<LinearCell>& cells, std::size_t dim) {
  // NOTE: no fm_simplify here -- dominance pruning is only sound within a
  // single conjunction, and these constraints come from different cells of
  // a union.
  std::vector<LinearConstraint> planes;
  for (const auto& cell : cells) {
    for (const auto& c : cell.constraints()) planes.push_back(c.closure());
  }
  // Hyperplanes: dedupe up to sign of the normalized row.
  {
    std::vector<LinearConstraint> uniq;
    for (const auto& c : planes) {
      LinearConstraint n = c.normalized();
      n.cmp = LinCmp::kEq;
      LinearConstraint neg = n;
      neg.coeffs = vec_scale(Rational(-1), n.coeffs);
      neg.rhs = -n.rhs;
      bool seen = false;
      for (const auto& u : uniq) {
        if (u.coeffs == n.coeffs && u.rhs == n.rhs) seen = true;
        if (u.coeffs == neg.coeffs && u.rhs == neg.rhs) seen = true;
        if (seen) break;
      }
      if (!seen && !n.is_constant()) uniq.push_back(std::move(n));
    }
    planes = std::move(uniq);
  }
  const std::size_t m = planes.size();
  std::vector<Rational> xs;
  if (m < dim) return xs;
  std::vector<std::size_t> comb(dim);
  for (std::size_t i = 0; i < dim; ++i) comb[i] = i;
  auto advance = [&]() -> bool {
    std::size_t i = dim;
    while (i-- > 0) {
      if (comb[i] < m - dim + i) {
        ++comb[i];
        for (std::size_t j = i + 1; j < dim; ++j) comb[j] = comb[j - 1] + 1;
        return true;
      }
    }
    return false;
  };
  bool more = true;
  while (more) {
    Matrix a(dim, dim);
    RVec b(dim);
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        a.at(r, c) = planes[comb[r]].coeffs[c];
      }
      b[r] = planes[comb[r]].rhs;
    }
    if (!a.determinant().is_zero()) {
      xs.push_back((*solve_square(a, b))[0]);
    }
    more = advance();
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

Result<Rational> volume_union(std::vector<LinearCell> cells, std::size_t dim,
                              VolumeStats* stats, bool force_sweep,
                              const CancelToken* cancel,
                              guard::WorkMeter* meter);

// One section evaluation: volume of { y : (t, y) in union of cells }.
Result<Rational> section_volume(const std::vector<LinearCell>& cells,
                                const Rational& t, std::size_t dim,
                                VolumeStats* stats, bool force_sweep,
                                const CancelToken* cancel,
                                guard::WorkMeter* meter) {
  std::vector<LinearCell> sections;
  for (const auto& cell : cells) {
    LinearCell restricted = cell.restrict_var(0, t);
    if (!fm_feasible(restricted.constraints(), dim)) continue;
    sections.push_back(drop_var(restricted, 0));
  }
  if (stats) ++stats->sections_evaluated;
  if (meter != nullptr && !meter->charge_sweep_section()) {
    return meter->check();
  }
  return volume_union(std::move(sections), dim - 1, stats, force_sweep,
                      cancel, meter);
}

Result<Rational> sweep(const std::vector<LinearCell>& cells, std::size_t dim,
                       VolumeStats* stats, bool force_sweep,
                       const CancelToken* cancel, guard::WorkMeter* meter) {
  if (stats) ++stats->sweep_calls;
  if (dim == 1) return interval_union_length(cells);

  std::vector<Rational> bps = arrangement_breakpoints(cells, dim);
  if (stats) stats->breakpoints += bps.size();
  if (meter != nullptr) {
    // Breakpoint enumeration is C(m, dim) determinant solves; account the
    // materialized breakpoint list before interpolating over it.
    meter->charge_resident_bytes(bps.size() * 32);
    CQA_RETURN_IF_ERROR(meter->check());
  }
  if (bps.size() < 2) {
    // Bounded full-dimensional cells must produce at least two distinct
    // breakpoints; none means the union is empty or degenerate.
    return Rational(0);
  }
  Rational total;
  for (std::size_t i = 0; i + 1 < bps.size(); ++i) {
    const Rational& a = bps[i];
    const Rational& b = bps[i + 1];
    // Section volume g(t) restricted to (a, b) is a polynomial of degree
    // <= dim-1: interpolate from dim exact samples.
    std::vector<std::pair<Rational, Rational>> samples;
    for (const Rational& t : sample_points(a, b, dim)) {
      if (cancel != nullptr) {
        CQA_RETURN_IF_ERROR(cancel->check());
      }
      auto g = section_volume(cells, t, dim, stats, force_sweep, cancel,
                              meter);
      if (!g.is_ok()) return g;
      samples.emplace_back(t, g.value());
    }
    UPoly g = interpolate(samples);
    total += g.integrate(a, b);
  }
  return total;
}

Result<Rational> volume_union(std::vector<LinearCell> cells, std::size_t dim,
                              VolumeStats* stats, bool force_sweep,
                              const CancelToken* cancel,
                              guard::WorkMeter* meter) {
  if (cancel != nullptr) {
    CQA_RETURN_IF_ERROR(cancel->check());
  }
  if (guard::fault_fires(guard::FaultSite::kSpuriousCancel)) {
    return Status::cancelled("injected spurious cancellation (sweep)");
  }
  if (meter != nullptr) {
    CQA_RETURN_IF_ERROR(meter->check());
  }
  // Keep only feasible, full-dimensional cells (others have measure 0).
  std::vector<LinearCell> live;
  for (auto& cell : cells) {
    CQA_CHECK(cell.dim() == dim);
    if (!is_full_dimensional(cell)) continue;
    live.push_back(std::move(cell));
  }
  if (live.empty()) return Rational(0);
  if (dim == 0) return Rational(1);
  for (const auto& cell : live) {
    if (!cell.is_bounded()) {
      return Status::invalid(
          "semilinear_volume: unbounded cell (use VOL_I or bound the set)");
    }
  }
  if (!force_sweep) {
    if (live.size() == 1) {
      if (stats) ++stats->lasserre_calls;
      return polytope_volume(Polyhedron(live[0]));
    }
    // Pairwise interior-disjoint cells sum exactly (shared boundaries have
    // measure zero).
    bool disjoint = true;
    for (std::size_t i = 0; i < live.size() && disjoint; ++i) {
      for (std::size_t j = i + 1; j < live.size() && disjoint; ++j) {
        std::vector<LinearConstraint> both;
        for (const auto& c : live[i].constraints()) {
          LinearConstraint s = c.closure();
          s.cmp = LinCmp::kLt;
          both.push_back(std::move(s));
        }
        for (const auto& c : live[j].constraints()) {
          LinearConstraint s = c.closure();
          s.cmp = LinCmp::kLt;
          both.push_back(std::move(s));
        }
        if (fm_feasible(both, dim)) disjoint = false;
      }
    }
    if (disjoint) {
      Rational total;
      for (const auto& cell : live) {
        if (stats) ++stats->lasserre_calls;
        auto v = polytope_volume(Polyhedron(cell));
        if (!v.is_ok()) return v;
        total += v.value();
      }
      return total;
    }
  }
  return sweep(live, dim, stats, force_sweep, cancel, meter);
}

}  // namespace

Result<Rational> semilinear_volume(const std::vector<LinearCell>& cells,
                                   VolumeStats* stats,
                                   const CancelToken* cancel,
                                   guard::WorkMeter* meter) {
  if (cells.empty()) return Rational(0);
  return volume_union(cells, cells[0].dim(), stats, /*force_sweep=*/false,
                      cancel, meter);
}

Result<Rational> semilinear_volume_sweep(const std::vector<LinearCell>& cells,
                                         VolumeStats* stats,
                                         const CancelToken* cancel,
                                         guard::WorkMeter* meter) {
  if (cells.empty()) return Rational(0);
  return volume_union(cells, cells[0].dim(), stats, /*force_sweep=*/true,
                      cancel, meter);
}

Result<Rational> formula_volume(const FormulaPtr& f, std::size_t dim) {
  auto cells = formula_to_cells(f, dim);
  if (!cells.is_ok()) return cells.status();
  return semilinear_volume(cells.value());
}

Result<Rational> formula_volume_I(const FormulaPtr& f, std::size_t dim) {
  auto cells = formula_to_cells(f, dim);
  if (!cells.is_ok()) return cells.status();
  std::vector<LinearCell> boxed;
  boxed.reserve(cells.value().size());
  for (const auto& cell : cells.value()) {
    boxed.push_back(cell.intersect_box(Rational(0), Rational(1)));
  }
  return semilinear_volume(boxed);
}

}  // namespace cqa
