#include "cqa/volume/variable_independence.h"

#include <algorithm>

namespace cqa {

bool is_variable_independent(const std::vector<LinearCell>& cells) {
  for (const auto& cell : cells) {
    for (const auto& c : cell.constraints()) {
      int mentioned = 0;
      for (const auto& coef : c.coeffs) {
        if (!coef.is_zero()) ++mentioned;
      }
      if (mentioned > 1) return false;
    }
  }
  return true;
}

Result<Rational> volume_variable_independent(
    const std::vector<LinearCell>& cells) {
  if (!is_variable_independent(cells)) {
    return Status::invalid("cells are not variable-independent");
  }
  std::vector<LinearCell> live;
  for (const auto& cell : cells) {
    if (cell.is_feasible()) live.push_back(cell);
  }
  if (live.empty()) return Rational(0);
  const std::size_t dim = live[0].dim();
  // Per-axis breakpoints from each cell's (box) bounds.
  std::vector<std::vector<Rational>> axis_points(dim);
  for (const auto& cell : live) {
    if (!cell.is_bounded()) {
      return Status::invalid("variable-independent volume: unbounded cell");
    }
    for (std::size_t v = 0; v < dim; ++v) {
      AxisInterval iv = cell.project_to_axis(v);
      if (iv.empty) continue;
      axis_points[v].push_back(*iv.lo);
      axis_points[v].push_back(*iv.hi);
    }
  }
  for (auto& pts : axis_points) {
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    if (pts.size() < 2) return Rational(0);
  }
  // Walk the grid; count each full-dim grid box whose midpoint is inside.
  std::vector<std::size_t> idx(dim, 0);
  Rational total;
  for (;;) {
    RVec mid(dim);
    Rational vol(1);
    for (std::size_t v = 0; v < dim; ++v) {
      const Rational& lo = axis_points[v][idx[v]];
      const Rational& hi = axis_points[v][idx[v] + 1];
      mid[v] = Rational::mid(lo, hi);
      vol *= hi - lo;
    }
    bool inside = false;
    for (const auto& cell : live) {
      if (cell.contains(mid)) {
        inside = true;
        break;
      }
    }
    if (inside) total += vol;
    // Advance the multi-index.
    std::size_t v = 0;
    for (; v < dim; ++v) {
      if (idx[v] + 2 < axis_points[v].size()) {
        ++idx[v];
        for (std::size_t w = 0; w < v; ++w) idx[w] = 0;
        break;
      }
    }
    if (v == dim) break;
  }
  return total;
}

}  // namespace cqa
