#include "cqa/volume/inclusion_exclusion.h"

#include "cqa/geometry/polytope_volume.h"

namespace cqa {

Result<Rational> volume_inclusion_exclusion(
    const std::vector<LinearCell>& cells, std::size_t max_cells) {
  if (cells.empty()) return Rational(0);
  const std::size_t k = cells.size();
  if (k > max_cells) {
    return Status::out_of_range(
        "inclusion-exclusion: too many cells (2^k terms)");
  }
  const std::size_t dim = cells[0].dim();
  Rational total;
  for (std::size_t mask = 1; mask < (1u << k); ++mask) {
    LinearCell inter(dim);
    int bits = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (!(mask & (1u << i))) continue;
      ++bits;
      CQA_CHECK(cells[i].dim() == dim);
      for (const auto& c : cells[i].constraints()) inter.add(c);
    }
    if (!inter.is_feasible()) continue;
    auto v = polytope_volume(Polyhedron(inter));
    if (!v.is_ok()) return v;
    if (bits % 2 == 1) {
      total += v.value();
    } else {
      total -= v.value();
    }
  }
  return total;
}

}  // namespace cqa
