// The variable-independence baseline (Chomicki-Goldin-Kuper, PODS'96).
//
// The paper's introduction cites [11]: FO+POLY can express exact volume
// for sets satisfying "variable independence" -- no interaction between
// coordinates in the constraint representation. The implementable
// (syntactic) criterion: every constraint mentions at most one variable,
// i.e. every cell is an axis-aligned box. This module detects that shape
// and computes union volume by the per-axis grid decomposition such sets
// admit -- the fast path the paper says is "too restrictive" in general
// (bench E8 measures both sides of that trade).

#ifndef CQA_VOLUME_VARIABLE_INDEPENDENCE_H_
#define CQA_VOLUME_VARIABLE_INDEPENDENCE_H_

#include <vector>

#include "cqa/constraint/linear_cell.h"

namespace cqa {

/// True iff every constraint of every cell mentions at most one variable
/// (so every cell is an axis-aligned box).
bool is_variable_independent(const std::vector<LinearCell>& cells);

/// Exact union volume for variable-independent cells via the grid
/// decomposition: per-axis breakpoints from all box bounds form a grid;
/// each grid cell is inside the union iff its midpoint is.
/// Errors if the input is not variable-independent or unbounded.
Result<Rational> volume_variable_independent(
    const std::vector<LinearCell>& cells);

}  // namespace cqa

#endif  // CQA_VOLUME_VARIABLE_INDEPENDENCE_H_
