// Union volume by inclusion-exclusion over cell subsets.
//
// Vol(U C_i) = sum over nonempty J of (-1)^{|J|+1} Vol(intersection of J),
// with each term a single convex polytope (Lasserre). Exponential in the
// number of cells -- kept as the ablation baseline against the Theorem-3
// sweep (bench E2).

#ifndef CQA_VOLUME_INCLUSION_EXCLUSION_H_
#define CQA_VOLUME_INCLUSION_EXCLUSION_H_

#include <vector>

#include "cqa/constraint/linear_cell.h"

namespace cqa {

/// Exact union volume via inclusion-exclusion. All cells bounded, same
/// ambient dimension. Errors beyond `max_cells` (2^k terms).
Result<Rational> volume_inclusion_exclusion(
    const std::vector<LinearCell>& cells, std::size_t max_cells = 20);

}  // namespace cqa

#endif  // CQA_VOLUME_INCLUSION_EXCLUSION_H_
