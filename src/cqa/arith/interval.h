// Rational interval arithmetic.
//
// Used for exact sign determination of polynomials at algebraic points:
// refine the isolating interval until the polynomial's interval image
// excludes zero (or zero is certified by gcd arguments in cqa/poly).

#ifndef CQA_ARITH_INTERVAL_H_
#define CQA_ARITH_INTERVAL_H_

#include <string>

#include "cqa/arith/rational.h"

namespace cqa {

/// Closed interval [lo, hi] with exact rational endpoints.
class RationalInterval {
 public:
  /// Degenerate interval [0,0].
  RationalInterval() = default;
  /// Point interval [v,v].
  explicit RationalInterval(Rational v) : lo_(v), hi_(std::move(v)) {}
  /// [lo, hi]; aborts if lo > hi.
  RationalInterval(Rational lo, Rational hi)
      : lo_(std::move(lo)), hi_(std::move(hi)) {
    CQA_CHECK(lo_ <= hi_);
  }

  const Rational& lo() const { return lo_; }
  const Rational& hi() const { return hi_; }
  Rational width() const { return hi_ - lo_; }
  Rational mid() const { return Rational::mid(lo_, hi_); }

  bool contains(const Rational& v) const { return lo_ <= v && v <= hi_; }
  bool contains_zero() const {
    return lo_.sign() <= 0 && hi_.sign() >= 0;
  }
  /// -1 if hi < 0, +1 if lo > 0, 0 if the interval straddles zero.
  int definite_sign() const {
    if (hi_.sign() < 0) return -1;
    if (lo_.sign() > 0) return 1;
    return 0;
  }

  RationalInterval operator+(const RationalInterval& o) const {
    return {lo_ + o.lo_, hi_ + o.hi_};
  }
  RationalInterval operator-(const RationalInterval& o) const {
    return {lo_ - o.hi_, hi_ - o.lo_};
  }
  RationalInterval operator*(const RationalInterval& o) const;
  RationalInterval operator-() const { return {-hi_, -lo_}; }

  std::string to_string() const {
    return "[" + lo_.to_string() + ", " + hi_.to_string() + "]";
  }

 private:
  Rational lo_;
  Rational hi_;
};

}  // namespace cqa

#endif  // CQA_ARITH_INTERVAL_H_
