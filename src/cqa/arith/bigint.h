// Arbitrary-precision signed integers.
//
// BigInt is the numeric bedrock of the library: Fourier-Motzkin pivoting,
// exact polytope volumes and Lagrange interpolation all blow past 64 bits
// quickly -- but the values that *dominate* those workloads are small.
// Representation is therefore two-tier:
//
//   * inline: any value fitting a signed 64-bit word lives directly in
//     the object (no allocation, single-branch overflow-checked add /
//     sub / mul, hardware division);
//   * heap: past 64 bits the value spills to a pooled sign-magnitude
//     limb vector (32-bit little-endian limbs; see cqa/arith/arena.h),
//     with schoolbook multiplication below kKaratsubaLimbs limbs and
//     Karatsuba above.
//
// The representation is canonical: a value is on the heap if and only if
// it does not fit int64. Arithmetic that shrinks a heap value back into
// range (subtraction, division, shifts) re-inlines it, so fits_int64()
// and to_int64() are O(1) tag checks and equality never compares across
// representations.

#ifndef CQA_ARITH_BIGINT_H_
#define CQA_ARITH_BIGINT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "cqa/arith/arena.h"
#include "cqa/util/status.h"

namespace cqa {

/// Arbitrary-precision signed integer with value semantics.
///
/// All arithmetic is exact. Division truncates toward zero (C semantics);
/// divmod, floor-division and gcd are provided separately.
class BigInt {
 public:
  /// Zero.
  BigInt() noexcept = default;
  /// From a machine integer. Never allocates.
  // NOLINTNEXTLINE(google-explicit-constructor): numeric literal ergonomics.
  BigInt(std::int64_t v) noexcept : small_(v) {}

  BigInt(const BigInt& o);
  BigInt(BigInt&& o) noexcept : small_(o.small_), rep_(o.rep_) {
    o.small_ = 0;
    o.rep_ = nullptr;
  }
  BigInt& operator=(const BigInt& o);
  BigInt& operator=(BigInt&& o) noexcept;
  ~BigInt() { release_rep(); }

  /// Parses a base-10 integer with optional leading '-'.
  static Result<BigInt> from_string(const std::string& s);
  /// Parses or aborts; for literals in tests and examples.
  static BigInt parse(const std::string& s) {
    return from_string(s).value_or_die();
  }

  /// True iff the value is zero.
  bool is_zero() const noexcept { return rep_ == nullptr && small_ == 0; }
  /// True iff the value is strictly negative.
  bool is_negative() const noexcept {
    return rep_ != nullptr ? rep_->negative : small_ < 0;
  }
  /// -1, 0, or +1.
  int sign() const noexcept {
    if (rep_ != nullptr) return rep_->negative ? -1 : 1;
    return small_ == 0 ? 0 : (small_ < 0 ? -1 : 1);
  }

  /// Number of significant bits of |*this| (0 for zero).
  std::size_t bit_length() const noexcept;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated quotient. Aborts on division by zero.
  BigInt operator/(const BigInt& o) const;
  /// Remainder with sign of the dividend. Aborts on division by zero.
  BigInt operator%(const BigInt& o) const;

  /// Compound operators are genuinely in-place: the inline fast path
  /// never allocates, and heap operands reuse existing limb capacity
  /// where the algorithm permits (add/sub) or recycle through the arena
  /// pool (mul/div).
  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o);
  BigInt& operator/=(const BigInt& o);

  /// Truncated quotient and remainder in one pass. Defined just below
  /// the class (it holds BigInt members, so it needs the complete type).
  struct DivMod;
  /// Postcondition: *this == quot * o + rem, |rem| < |o|,
  /// sign(rem) in {0, sign(*this)}. Aborts on division by zero.
  DivMod divmod(const BigInt& o) const;

  /// Left shift by whole bits.
  BigInt shl(std::size_t bits) const;
  /// Arithmetic-magnitude right shift by whole bits (shifts |x|, keeps sign;
  /// result is 0 when the magnitude underflows).
  BigInt shr(std::size_t bits) const;

  bool operator==(const BigInt& o) const noexcept {
    if (rep_ == nullptr && o.rep_ == nullptr) return small_ == o.small_;
    if (rep_ == nullptr || o.rep_ == nullptr) return false;  // canonical form
    return rep_->negative == o.rep_->negative && rep_->limbs == o.rep_->limbs;
  }
  bool operator!=(const BigInt& o) const noexcept { return !(*this == o); }
  bool operator<(const BigInt& o) const noexcept { return cmp(o) < 0; }
  bool operator<=(const BigInt& o) const noexcept { return cmp(o) <= 0; }
  bool operator>(const BigInt& o) const noexcept { return cmp(o) > 0; }
  bool operator>=(const BigInt& o) const noexcept { return cmp(o) >= 0; }

  /// Three-way comparison: -1, 0, +1.
  int cmp(const BigInt& o) const noexcept;

  /// Greatest common divisor (always >= 0).
  static BigInt gcd(const BigInt& a, const BigInt& b);
  /// |a*b| / gcd(|a|,|b|); 0 if either is 0.
  static BigInt lcm(const BigInt& a, const BigInt& b);
  /// Exponentiation by squaring; e >= 0.
  static BigInt pow(const BigInt& base, std::uint64_t e);

  /// Base-10 rendering.
  std::string to_string() const;

  /// Nearest double (may overflow to +/-inf for huge values).
  double to_double() const;

  /// Exact conversion when the value fits in int64; error otherwise.
  Result<std::int64_t> to_int64() const;

  /// True iff the value fits in int64. O(1): the representation is
  /// canonical, so this is exactly the inline-tag check.
  bool fits_int64() const noexcept { return rep_ == nullptr; }

  /// The inline value. Requires fits_int64(); the checked form is
  /// to_int64().
  std::int64_t int64_unchecked() const noexcept {
    CQA_DCHECK(rep_ == nullptr);
    return small_;
  }

  /// Hash suitable for unordered containers. Defined over the canonical
  /// (sign, limbs) view, so it is representation-independent and stable
  /// across the inline/heap boundary.
  std::size_t hash() const noexcept;

  /// Multiplication switches from schoolbook to Karatsuba when both
  /// operands have at least this many 32-bit limbs.
  static constexpr std::size_t kKaratsubaLimbs = 32;

  /// Schoolbook multiply regardless of size: the differential oracle for
  /// Karatsuba in tests and benches. Unmetered.
  static BigInt mul_schoolbook(const BigInt& a, const BigInt& b);

  /// Exact conversion from a 128-bit intermediate; canonicalizes (stays
  /// inline when the value fits int64). The escape hatch for callers
  /// doing their own __int128 fast-path arithmetic (Rational).
  static BigInt from_i128(__int128 v);

 private:
  // Number of 32-bit limbs in |value| (what the guard meter charges).
  std::size_t limb_count() const noexcept;

  // Returns rep_ to the pool (if any) and clears the tag.
  void release_rep() noexcept {
    if (rep_ != nullptr) {
      arith::arena_release(rep_);
      rep_ = nullptr;
    }
  }

  // Takes ownership of `rep` (trimmed limbs, magnitude sign in
  // `negative`), canonicalizes -- re-inlining values that fit int64 --
  // and assigns to *this.
  void adopt_mag(bool negative, arith::LimbRep* rep);

  // adopt_mag as a constructor.
  static BigInt from_mag(bool negative, arith::LimbRep* rep);
  // Canonicalizing constructor from a 128-bit magnitude.
  static BigInt from_u128(bool negative, unsigned __int128 mag);

  // Shared signed-addition core: *this +/- o, in place.
  void add_assign(const BigInt& o, bool negate_o);

  std::int64_t small_ = 0;        // the value iff rep_ == nullptr
  arith::LimbRep* rep_ = nullptr; // else sign-magnitude limbs, |v| > int64
};

struct BigInt::DivMod {
  BigInt quot;
  BigInt rem;
};

inline BigInt operator+(std::int64_t a, const BigInt& b) {
  return BigInt(a) + b;
}
inline BigInt operator*(std::int64_t a, const BigInt& b) {
  return BigInt(a) * b;
}

}  // namespace cqa

#endif  // CQA_ARITH_BIGINT_H_
