// Arbitrary-precision signed integers.
//
// BigInt is the numeric bedrock of the library: Fourier-Motzkin pivoting,
// exact polytope volumes and Lagrange interpolation all blow past 64 bits
// quickly. Representation: sign-magnitude with 32-bit little-endian limbs.

#ifndef CQA_ARITH_BIGINT_H_
#define CQA_ARITH_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/util/status.h"

namespace cqa {

/// Arbitrary-precision signed integer with value semantics.
///
/// All arithmetic is exact. Division truncates toward zero (C semantics);
/// divmod, floor-division and gcd are provided separately.
class BigInt {
 public:
  /// Zero.
  BigInt() : negative_(false) {}
  /// From a machine integer.
  // NOLINTNEXTLINE(google-explicit-constructor): numeric literal ergonomics.
  BigInt(std::int64_t v);

  /// Parses a base-10 integer with optional leading '-'.
  static Result<BigInt> from_string(const std::string& s);
  /// Parses or aborts; for literals in tests and examples.
  static BigInt parse(const std::string& s) {
    return from_string(s).value_or_die();
  }

  /// True iff the value is zero.
  bool is_zero() const { return limbs_.empty(); }
  /// True iff the value is strictly negative.
  bool is_negative() const { return negative_; }
  /// -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  /// Number of significant bits of |*this| (0 for zero).
  std::size_t bit_length() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated quotient. Aborts on division by zero.
  BigInt operator/(const BigInt& o) const;
  /// Remainder with sign of the dividend. Aborts on division by zero.
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }

  /// Truncated quotient and remainder in one pass.
  /// Postcondition: *this == q * o + r, |r| < |o|, sign(r) in {0, sign(*this)}.
  void divmod(const BigInt& o, BigInt* q, BigInt* r) const;

  /// Left shift by whole bits.
  BigInt shl(std::size_t bits) const;
  /// Arithmetic-magnitude right shift by whole bits (shifts |x|, keeps sign;
  /// result is 0 when the magnitude underflows).
  BigInt shr(std::size_t bits) const;

  bool operator==(const BigInt& o) const {
    return negative_ == o.negative_ && limbs_ == o.limbs_;
  }
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const { return cmp(o) < 0; }
  bool operator<=(const BigInt& o) const { return cmp(o) <= 0; }
  bool operator>(const BigInt& o) const { return cmp(o) > 0; }
  bool operator>=(const BigInt& o) const { return cmp(o) >= 0; }

  /// Three-way comparison: -1, 0, +1.
  int cmp(const BigInt& o) const;

  /// Greatest common divisor (always >= 0).
  static BigInt gcd(const BigInt& a, const BigInt& b);
  /// |a*b| / gcd(|a|,|b|); 0 if either is 0.
  static BigInt lcm(const BigInt& a, const BigInt& b);
  /// Exponentiation by squaring; e >= 0.
  static BigInt pow(const BigInt& base, std::uint64_t e);

  /// Base-10 rendering.
  std::string to_string() const;

  /// Nearest double (may overflow to +/-inf for huge values).
  double to_double() const;

  /// Exact conversion when the value fits in int64; error otherwise.
  Result<std::int64_t> to_int64() const;

  /// True iff the value fits in int64.
  bool fits_int64() const { return to_int64().is_ok(); }

  /// Hash suitable for unordered containers.
  std::size_t hash() const;

 private:
  static int cmp_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  // Knuth Algorithm D on magnitudes; q and r may alias nothing.
  static void divmod_mag(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b,
                         std::vector<std::uint32_t>* q,
                         std::vector<std::uint32_t>* r);
  static void trim(std::vector<std::uint32_t>* v);
  void normalize() {
    trim(&limbs_);
    if (limbs_.empty()) negative_ = false;
  }

  bool negative_;
  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

inline BigInt operator+(std::int64_t a, const BigInt& b) {
  return BigInt(a) + b;
}
inline BigInt operator*(std::int64_t a, const BigInt& b) {
  return BigInt(a) * b;
}

}  // namespace cqa

#endif  // CQA_ARITH_BIGINT_H_
