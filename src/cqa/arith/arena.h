// Thread-local pool of BigInt heap representations.
//
// The two-tier BigInt stores anything that fits 64 bits inline and only
// reaches for a heap node (sign + limb vector) past overflow. Those heap
// nodes are the allocation hot spot of the exact pipeline: Fourier-Motzkin
// pivoting and the semilinear sweep churn through short-lived multi-limb
// intermediates (cross products of near-64-bit rationals) at a rate where
// malloc/free dominates. The pool recycles nodes -- and, crucially, the
// limb-vector capacity inside them -- on a per-thread freelist, so steady
// state heap arithmetic runs with zero allocator traffic.
//
// ArenaScope gives the per-elimination lifetime the pivot loops want:
// constructing one marks the freelist baseline, destroying it bulk-frees
// whatever surplus the scope churned (beyond a small retained working
// set), so a pathological elimination cannot pin its peak footprint for
// the life of the thread.
//
// Layering: cqa_arith is the bottom of the library stack, so this header
// depends on nothing but the standard library. Counters are plain (the
// pool is thread-local; no cross-thread readers).

#ifndef CQA_ARITH_ARENA_H_
#define CQA_ARITH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqa {
namespace arith {

/// Heap representation of one out-of-line BigInt value: sign-magnitude,
/// 32-bit little-endian limbs, no trailing zeros. Only BigInt mutates
/// these; the pool owns recycling.
struct LimbRep {
  bool negative = false;
  std::vector<std::uint32_t> limbs;
  LimbRep* next_free = nullptr;
};

/// Per-thread pool counters (monotonic except live/pooled).
struct ArenaStats {
  std::uint64_t acquires = 0;    // nodes handed out
  std::uint64_t pool_hits = 0;   // ... of which came from the freelist
  std::uint64_t releases = 0;    // nodes returned
  std::uint64_t live = 0;        // currently handed out
  std::uint64_t pooled = 0;      // currently on the freelist
};

/// Hands out a node (freelist first, `new` on miss). The returned node
/// has unspecified limb contents but retained capacity; callers must
/// overwrite. Never returns nullptr.
LimbRep* arena_acquire();

/// Returns a node to the current thread's freelist (or frees it when the
/// list is at capacity). The node must have come from arena_acquire on
/// any thread; cross-thread release is allowed and simply pools on the
/// releasing thread.
void arena_release(LimbRep* rep);

/// Snapshot of the calling thread's pool counters.
ArenaStats arena_stats();

/// RAII per-elimination lifetime: remembers the freelist size at entry
/// and, at exit, bulk-frees pooled surplus beyond max(entry size,
/// retained working set). Nests.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  std::uint64_t baseline_;
};

}  // namespace arith
}  // namespace cqa

#endif  // CQA_ARITH_ARENA_H_
