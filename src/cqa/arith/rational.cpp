#include "cqa/arith/rational.h"

#include <cmath>
#include <utility>

namespace cqa {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  CQA_CHECK(!den_.is_zero());
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

Result<Rational> Rational::from_string(const std::string& s) {
  auto slash = s.find('/');
  if (slash != std::string::npos) {
    auto n = BigInt::from_string(s.substr(0, slash));
    if (!n.is_ok()) return n.status();
    auto d = BigInt::from_string(s.substr(slash + 1));
    if (!d.is_ok()) return d.status();
    if (d.value().is_zero()) return Status::invalid("zero denominator: " + s);
    return Rational(std::move(n).take(), std::move(d).take());
  }
  auto dot = s.find('.');
  if (dot != std::string::npos) {
    std::string intpart = s.substr(0, dot);
    std::string frac = s.substr(dot + 1);
    if (frac.empty()) return Status::invalid("bad decimal literal: " + s);
    bool neg = !intpart.empty() && intpart[0] == '-';
    if (intpart.empty() || intpart == "-" || intpart == "+") intpart += "0";
    auto ip = BigInt::from_string(intpart);
    if (!ip.is_ok()) return ip.status();
    auto fp = BigInt::from_string(frac);
    if (!fp.is_ok()) return fp.status();
    if (fp.value().is_negative()) return Status::invalid("bad decimal: " + s);
    BigInt scale = BigInt::pow(BigInt(10), frac.size());
    BigInt whole = ip.value().abs() * scale + fp.value();
    if (neg) whole = -whole;
    return Rational(std::move(whole), std::move(scale));
  }
  auto n = BigInt::from_string(s);
  if (!n.is_ok()) return n.status();
  return Rational(std::move(n).take());
}

Result<Rational> Rational::from_double(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return Status::invalid("from_double: non-finite value");
  }
  if (v == 0.0) return Rational();
  // Decompose v = mantissa * 2^exp with mantissa a 53-bit integer.
  int exp = 0;
  double frac = std::frexp(v, &exp);  // |frac| in [0.5, 1)
  std::int64_t mantissa =
      static_cast<std::int64_t>(frac * 9007199254740992.0);  // * 2^53
  exp -= 53;
  BigInt num(mantissa);
  if (exp >= 0) {
    return Rational(num.shl(static_cast<std::size_t>(exp)));
  }
  return Rational(std::move(num),
                  BigInt(1).shl(static_cast<std::size_t>(-exp)));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::inverse() const {
  CQA_CHECK(!is_zero());
  return Rational(den_, num_);
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  CQA_CHECK(!o.is_zero());
  return Rational(num_ * o.den_, den_ * o.num_);
}

int Rational::cmp(const Rational& o) const {
  return (num_ * o.den_).cmp(o.num_ * den_);
}

BigInt Rational::floor() const {
  BigInt q, r;
  num_.divmod(den_, &q, &r);
  if (r.is_negative()) q -= BigInt(1);
  return q;
}

BigInt Rational::ceil() const {
  BigInt q, r;
  num_.divmod(den_, &q, &r);
  if (r.sign() > 0) q += BigInt(1);
  return q;
}

Rational Rational::pow(const Rational& base, std::int64_t e) {
  if (e < 0) {
    return pow(base.inverse(), -e);
  }
  return Rational(BigInt::pow(base.num_, static_cast<std::uint64_t>(e)),
                  BigInt::pow(base.den_, static_cast<std::uint64_t>(e)));
}

Rational Rational::mid(const Rational& a, const Rational& b) {
  return (a + b) * Rational(1, 2);
}

Rational Rational::simplest_in(const Rational& lo, const Rational& hi) {
  CQA_CHECK(lo <= hi);
  if (lo.sign() <= 0 && hi.sign() >= 0) return Rational();
  if (hi.sign() < 0) return -simplest_in(-hi, -lo);
  // 0 < lo <= hi.
  BigInt ceil_lo = lo.ceil();
  if (Rational(ceil_lo) <= hi) return Rational(ceil_lo);
  // Same integer part; recurse on the fractional inverses.
  BigInt a = lo.floor();
  Rational fl = lo - Rational(a);
  Rational fh = hi - Rational(a);
  // fl, fh in (0, 1): simplest in [lo, hi] = a + 1 / simplest_in(1/fh, 1/fl).
  Rational inner = simplest_in(fh.inverse(), fl.inverse());
  return Rational(a) + inner.inverse();
}

Rational Rational::simplest_in_open(const Rational& lo, const Rational& hi) {
  CQA_CHECK(lo < hi);
  if (lo.sign() < 0 && hi.sign() > 0) return Rational();
  if (hi.sign() <= 0) return -simplest_in_open(-hi, -lo);
  // 0 <= lo < hi.
  BigInt n = lo.floor() + BigInt(1);  // smallest integer strictly above lo
  if (Rational(n) < hi) return Rational(n);
  BigInt a = lo.floor();
  Rational fl = lo - Rational(a);  // in [0, 1)
  Rational fh = hi - Rational(a);  // in (fl, 1]
  if (fl.is_zero()) {
    // Simplest in (0, fh) is 1/m for the smallest m with 1/m < fh.
    BigInt m = fh.inverse().floor() + BigInt(1);
    return Rational(a) + Rational(BigInt(1), std::move(m));
  }
  // x in (lo, hi) iff 1/(x - a) in (1/fh, 1/fl).
  return Rational(a) + simplest_in_open(fh.inverse(), fl.inverse()).inverse();
}

const Rational& Rational::zero() {
  static const Rational kZero;
  return kZero;
}

const Rational& Rational::one() {
  static const Rational kOne(1);
  return kOne;
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

double Rational::to_double() const {
  // Scale so both parts fit a double's mantissa reasonably.
  const std::size_t nb = num_.bit_length();
  const std::size_t db = den_.bit_length();
  if (nb <= 52 && db <= 52) return num_.to_double() / den_.to_double();
  // Shift the larger operand down, tracking the exponent.
  BigInt n = num_, d = den_;
  int exp = 0;
  while (n.bit_length() > 64) {
    n = n.shr(32);
    exp += 32;
  }
  while (d.bit_length() > 64) {
    d = d.shr(32);
    exp -= 32;
  }
  double base = n.to_double() / d.to_double();
  while (exp >= 32) {
    base *= 4294967296.0;
    exp -= 32;
  }
  while (exp <= -32) {
    base /= 4294967296.0;
    exp += 32;
  }
  while (exp > 0) {
    base *= 2.0;
    --exp;
  }
  while (exp < 0) {
    base /= 2.0;
    ++exp;
  }
  return base;
}

std::size_t Rational::hash() const {
  return num_.hash() * 1000003u ^ den_.hash();
}

}  // namespace cqa
