#include "cqa/arith/rational.h"

#include <cmath>
#include <new>
#include <utility>

#include "cqa/guard/fault.h"
#include "cqa/guard/meter.h"

namespace cqa {

namespace {

inline std::uint64_t abs_u64(std::int64_t v) {
  return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
               : static_cast<std::uint64_t>(v);
}

inline std::uint64_t gcd_u64(std::uint64_t x, std::uint64_t y) {
  while (y != 0) {
    const std::uint64_t t = x % y;
    x = y;
    y = t;
  }
  return x;
}

// 32-bit limbs of |v|, for meter charges equivalent to BigInt's own.
inline std::size_t small_limbs(std::int64_t v) {
  const std::uint64_t m = abs_u64(v);
  if (m == 0) return 0;
  return (m >> 32) != 0 ? 2 : 1;
}

// The hooks a BigInt multiply would run, charged once per fast-path
// Rational op: the bit estimate of the widest product feeds the
// high-water bigint-bits quota, and chaos runs can inject an allocation
// failure exactly as they could on the BigInt path.
inline void small_op_hooks(std::int64_t x, std::int64_t y) {
  guard::charge_bigint_bits_tl(32 * (small_limbs(x) + small_limbs(y)));
  if (guard::fault_fires(guard::FaultSite::kBigIntAlloc)) {
    throw std::bad_alloc();
  }
}

}  // namespace

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  CQA_CHECK(!den_.is_zero());
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

Result<Rational> Rational::from_string(const std::string& s) {
  auto slash = s.find('/');
  if (slash != std::string::npos) {
    auto n = BigInt::from_string(s.substr(0, slash));
    if (!n.is_ok()) return n.status();
    auto d = BigInt::from_string(s.substr(slash + 1));
    if (!d.is_ok()) return d.status();
    if (d.value().is_zero()) return Status::invalid("zero denominator: " + s);
    return Rational(std::move(n).take(), std::move(d).take());
  }
  auto dot = s.find('.');
  if (dot != std::string::npos) {
    std::string intpart = s.substr(0, dot);
    std::string frac = s.substr(dot + 1);
    if (frac.empty()) return Status::invalid("bad decimal literal: " + s);
    bool neg = !intpart.empty() && intpart[0] == '-';
    if (intpart.empty() || intpart == "-" || intpart == "+") intpart += "0";
    auto ip = BigInt::from_string(intpart);
    if (!ip.is_ok()) return ip.status();
    auto fp = BigInt::from_string(frac);
    if (!fp.is_ok()) return fp.status();
    if (fp.value().is_negative()) return Status::invalid("bad decimal: " + s);
    BigInt scale = BigInt::pow(BigInt(10), frac.size());
    BigInt whole = ip.value().abs() * scale + fp.value();
    if (neg) whole = -whole;
    return Rational(std::move(whole), std::move(scale));
  }
  auto n = BigInt::from_string(s);
  if (!n.is_ok()) return n.status();
  return Rational(std::move(n).take());
}

Result<Rational> Rational::from_double(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return Status::invalid("from_double: non-finite value");
  }
  if (v == 0.0) return Rational();
  // Decompose v = mantissa * 2^exp with mantissa a 53-bit integer.
  int exp = 0;
  double frac = std::frexp(v, &exp);  // |frac| in [0.5, 1)
  std::int64_t mantissa =
      static_cast<std::int64_t>(frac * 9007199254740992.0);  // * 2^53
  exp -= 53;
  BigInt num(mantissa);
  if (exp >= 0) {
    return Rational(num.shl(static_cast<std::size_t>(exp)));
  }
  return Rational(std::move(num),
                  BigInt(1).shl(static_cast<std::size_t>(-exp)));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::inverse() const {
  CQA_CHECK(!is_zero());
  // Already in lowest terms; only the sign needs to move to the numerator.
  Rational out;
  if (num_.is_negative()) {
    out.num_ = -den_;
    out.den_ = -num_;
  } else {
    out.num_ = den_;
    out.den_ = num_;
  }
  return out;
}

// Knuth TAOCP 4.5.1: for a/b +/- c/d in lowest terms, let g = gcd(b, d),
// t = a*(d/g) +/- c*(b/g), g2 = gcd(t, g); the result is
// (t/g2) / ((b/g)*(d/g2)). Intermediates stay near the reduced size of
// the result instead of the b*d cross-multiply, which keeps small-value
// chains entirely in BigInt's inline representation.
void Rational::add_assign(const Rational& o, bool negate_o) {
  if (this == &o) {
    const Rational copy = o;
    add_assign(copy, negate_o);
    return;
  }
  if (num_.fits_int64() && den_.fits_int64() && o.num_.fits_int64() &&
      o.den_.fits_int64()) {
    // All-inline path in raw machine arithmetic. Cross products of
    // int64 numerators with int64 cofactors fit __int128 (each factor's
    // magnitude is <= 2^63, and b/g, d/g <= 2^63 - 1, so |t| < 2^127).
    const std::int64_t a = num_.int64_unchecked();
    const std::int64_t b = den_.int64_unchecked();    // >= 1
    const std::int64_t c0 = o.num_.int64_unchecked();
    const std::int64_t d = o.den_.int64_unchecked();  // >= 1
    small_op_hooks(a, d);
    const std::int64_t g = static_cast<std::int64_t>(
        gcd_u64(static_cast<std::uint64_t>(b), static_cast<std::uint64_t>(d)));
    const std::int64_t bg = b / g;
    const __int128 c = negate_o ? -static_cast<__int128>(c0)
                                : static_cast<__int128>(c0);
    const __int128 t = static_cast<__int128>(a) * (d / g) + c * bg;
    if (t == 0) {
      num_ = BigInt(0);
      den_ = BigInt(1);
      return;
    }
    std::int64_t g2 = 1;
    if (g != 1) {
      const unsigned __int128 mag = t < 0
          ? static_cast<unsigned __int128>(0) - static_cast<unsigned __int128>(t)
          : static_cast<unsigned __int128>(t);
      g2 = static_cast<std::int64_t>(gcd_u64(
          static_cast<std::uint64_t>(mag % static_cast<std::uint64_t>(g)),
          static_cast<std::uint64_t>(g)));
    }
    num_ = BigInt::from_i128(t / g2);
    den_ = BigInt::from_i128(static_cast<__int128>(bg) * (d / g2));
    return;
  }
  const BigInt g = BigInt::gcd(den_, o.den_);
  const BigInt bg = den_ / g;
  num_ *= o.den_ / g;
  {
    BigInt cross = o.num_ * bg;
    if (negate_o) {
      num_ -= cross;
    } else {
      num_ += cross;
    }
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  const BigInt g2 = BigInt::gcd(num_, g);
  if (g2 != BigInt(1)) num_ /= g2;
  den_ = bg * (o.den_ / g2);
}

Rational& Rational::operator+=(const Rational& o) {
  add_assign(o, /*negate_o=*/false);
  return *this;
}

Rational& Rational::operator-=(const Rational& o) {
  add_assign(o, /*negate_o=*/true);
  return *this;
}

// Knuth 4.5.1 again: (a/b)*(c/d) = ((a/g1)*(c/g2)) / ((b/g2)*(d/g1))
// with g1 = gcd(a, d), g2 = gcd(c, b); the result is already reduced.
Rational& Rational::operator*=(const Rational& o) {
  if (this == &o) {
    // Squaring: gcd(n, d) = 1 implies gcd(n^2, d^2) = 1.
    num_ *= num_;
    den_ *= den_;
    return *this;
  }
  if (num_.fits_int64() && den_.fits_int64() && o.num_.fits_int64() &&
      o.den_.fits_int64()) {
    const std::int64_t a = num_.int64_unchecked();
    const std::int64_t b = den_.int64_unchecked();    // >= 1
    const std::int64_t c = o.num_.int64_unchecked();
    const std::int64_t d = o.den_.int64_unchecked();  // >= 1
    small_op_hooks(a, c);
    // g1, g2 <= the (positive, < 2^63) denominators, so they fit int64.
    const std::int64_t g1 =
        static_cast<std::int64_t>(gcd_u64(abs_u64(a), abs_u64(d)));
    const std::int64_t g2 =
        static_cast<std::int64_t>(gcd_u64(abs_u64(c), abs_u64(b)));
    const __int128 n = a == 0 || c == 0
                           ? __int128{0}
                           : static_cast<__int128>(a / g1) * (c / g2);
    if (n == 0) {
      num_ = BigInt(0);
      den_ = BigInt(1);
      return *this;
    }
    num_ = BigInt::from_i128(n);
    den_ = BigInt::from_i128(static_cast<__int128>(b / g2) * (d / g1));
    return *this;
  }
  const BigInt g1 = BigInt::gcd(num_, o.den_);
  const BigInt g2 = BigInt::gcd(o.num_, den_);
  BigInt on = o.num_;
  BigInt od = o.den_;
  if (g1 != BigInt(1)) {
    num_ /= g1;
    od /= g1;
  }
  if (g2 != BigInt(1)) {
    den_ /= g2;
    on /= g2;
  }
  num_ *= on;
  den_ *= od;
  if (num_.is_zero()) den_ = BigInt(1);
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  CQA_CHECK(!o.is_zero());
  if (this == &o) {
    num_ = BigInt(1);
    den_ = BigInt(1);
    return *this;
  }
  return *this *= o.inverse();
}

Rational Rational::operator+(const Rational& o) const {
  Rational out = *this;
  out.add_assign(o, /*negate_o=*/false);
  return out;
}

Rational Rational::operator-(const Rational& o) const {
  Rational out = *this;
  out.add_assign(o, /*negate_o=*/true);
  return out;
}

Rational Rational::operator*(const Rational& o) const {
  Rational out = *this;
  out *= o;
  return out;
}

Rational Rational::operator/(const Rational& o) const {
  Rational out = *this;
  out /= o;
  return out;
}

int Rational::cmp(const Rational& o) const {
  // All-inline fast path: int64 cross products fit __int128 exactly, so
  // no BigInt intermediates (which could spill to the heap) are needed.
  if (num_.fits_int64() && den_.fits_int64() && o.num_.fits_int64() &&
      o.den_.fits_int64()) {
    const __int128 l = static_cast<__int128>(num_.int64_unchecked()) *
                       o.den_.int64_unchecked();
    const __int128 r = static_cast<__int128>(o.num_.int64_unchecked()) *
                       den_.int64_unchecked();
    return l < r ? -1 : (l > r ? 1 : 0);
  }
  return (num_ * o.den_).cmp(o.num_ * den_);
}

BigInt Rational::floor() const {
  BigInt::DivMod dm = num_.divmod(den_);
  if (dm.rem.is_negative()) dm.quot -= BigInt(1);
  return std::move(dm.quot);
}

BigInt Rational::ceil() const {
  BigInt::DivMod dm = num_.divmod(den_);
  if (dm.rem.sign() > 0) dm.quot += BigInt(1);
  return std::move(dm.quot);
}

Rational Rational::pow(const Rational& base, std::int64_t e) {
  if (e < 0) {
    return pow(base.inverse(), -e);
  }
  return Rational(BigInt::pow(base.num_, static_cast<std::uint64_t>(e)),
                  BigInt::pow(base.den_, static_cast<std::uint64_t>(e)));
}

Rational Rational::mid(const Rational& a, const Rational& b) {
  return (a + b) * Rational(1, 2);
}

Rational Rational::simplest_in(const Rational& lo, const Rational& hi) {
  CQA_CHECK(lo <= hi);
  if (lo.sign() <= 0 && hi.sign() >= 0) return Rational();
  if (hi.sign() < 0) return -simplest_in(-hi, -lo);
  // 0 < lo <= hi.
  BigInt ceil_lo = lo.ceil();
  if (Rational(ceil_lo) <= hi) return Rational(ceil_lo);
  // Same integer part; recurse on the fractional inverses.
  BigInt a = lo.floor();
  Rational fl = lo - Rational(a);
  Rational fh = hi - Rational(a);
  // fl, fh in (0, 1): simplest in [lo, hi] = a + 1 / simplest_in(1/fh, 1/fl).
  Rational inner = simplest_in(fh.inverse(), fl.inverse());
  return Rational(a) + inner.inverse();
}

Rational Rational::simplest_in_open(const Rational& lo, const Rational& hi) {
  CQA_CHECK(lo < hi);
  if (lo.sign() < 0 && hi.sign() > 0) return Rational();
  if (hi.sign() <= 0) return -simplest_in_open(-hi, -lo);
  // 0 <= lo < hi.
  BigInt n = lo.floor() + BigInt(1);  // smallest integer strictly above lo
  if (Rational(n) < hi) return Rational(n);
  BigInt a = lo.floor();
  Rational fl = lo - Rational(a);  // in [0, 1)
  Rational fh = hi - Rational(a);  // in (fl, 1]
  if (fl.is_zero()) {
    // Simplest in (0, fh) is 1/m for the smallest m with 1/m < fh.
    BigInt m = fh.inverse().floor() + BigInt(1);
    return Rational(a) + Rational(BigInt(1), std::move(m));
  }
  // x in (lo, hi) iff 1/(x - a) in (1/fh, 1/fl).
  return Rational(a) + simplest_in_open(fh.inverse(), fl.inverse()).inverse();
}

const Rational& Rational::zero() {
  static const Rational kZero;
  return kZero;
}

const Rational& Rational::one() {
  static const Rational kOne(1);
  return kOne;
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

double Rational::to_double() const {
  // Scale so both parts fit a double's mantissa reasonably.
  const std::size_t nb = num_.bit_length();
  const std::size_t db = den_.bit_length();
  if (nb <= 52 && db <= 52) return num_.to_double() / den_.to_double();
  // Shift the larger operand down, tracking the exponent.
  BigInt n = num_, d = den_;
  int exp = 0;
  while (n.bit_length() > 64) {
    n = n.shr(32);
    exp += 32;
  }
  while (d.bit_length() > 64) {
    d = d.shr(32);
    exp -= 32;
  }
  double base = n.to_double() / d.to_double();
  while (exp >= 32) {
    base *= 4294967296.0;
    exp -= 32;
  }
  while (exp <= -32) {
    base /= 4294967296.0;
    exp += 32;
  }
  while (exp > 0) {
    base *= 2.0;
    --exp;
  }
  while (exp < 0) {
    base /= 2.0;
    ++exp;
  }
  return base;
}

std::size_t Rational::hash() const {
  return num_.hash() * 1000003u ^ den_.hash();
}

}  // namespace cqa
