#include "cqa/arith/interval.h"

#include <algorithm>

namespace cqa {

RationalInterval RationalInterval::operator*(
    const RationalInterval& o) const {
  const Rational a = lo_ * o.lo_;
  const Rational b = lo_ * o.hi_;
  const Rational c = hi_ * o.lo_;
  const Rational d = hi_ * o.hi_;
  Rational lo = std::min(std::min(a, b), std::min(c, d));
  Rational hi = std::max(std::max(a, b), std::max(c, d));
  return {std::move(lo), std::move(hi)};
}

}  // namespace cqa
