// Exact rational numbers over BigInt.

#ifndef CQA_ARITH_RATIONAL_H_
#define CQA_ARITH_RATIONAL_H_

#include <cstdint>
#include <string>

#include "cqa/arith/bigint.h"
#include "cqa/util/status.h"

namespace cqa {

/// Exact rational number, always kept in lowest terms with a positive
/// denominator. The value type of the whole library.
///
/// Construction rules: machine-integer constructors are implicit (numeric
/// literal ergonomics -- `Rational(1, 2)`, `r + 3`); the BigInt
/// constructor is explicit because a BigInt may carry heap limbs, so that
/// conversion can allocate and should be visible at the call site.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value. Never allocates.
  // NOLINTNEXTLINE(google-explicit-constructor): numeric ergonomics.
  Rational(std::int64_t v) : num_(v), den_(1) {}
  /// Integer value; explicit -- copying a heap BigInt allocates.
  explicit Rational(BigInt v) : num_(std::move(v)), den_(1) {}
  /// num/den, normalized. Aborts if den == 0.
  Rational(BigInt num, BigInt den);
  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "p", "-p", "p/q", or a decimal like "3.25" / "-0.5".
  static Result<Rational> from_string(const std::string& s);

  /// Exact value of a finite double (every finite double is a dyadic
  /// rational). Errors on NaN / infinity.
  static Result<Rational> from_double(double v);
  /// Parses or aborts; for literals in tests and examples.
  static Rational parse(const std::string& s) {
    return from_string(s).value_or_die();
  }

  /// Numerator / denominator by value (den() > 0, both in lowest terms).
  /// Value-returning on purpose: Rational's internals re-normalize in
  /// place, so handing out references would pin representation details.
  /// Copies of inline values are free; heap values recycle pool nodes.
  BigInt num() const { return num_; }
  BigInt den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_integer() const { return den_ == BigInt(1); }
  int sign() const { return num_.sign(); }

  Rational operator-() const;
  Rational abs() const { return sign() < 0 ? -*this : *this; }
  /// Multiplicative inverse. Aborts on zero.
  Rational inverse() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Aborts on division by zero.
  Rational operator/(const Rational& o) const;

  /// Compound operators are genuinely in-place: small-value operands run
  /// entirely in the inline BigInt representation (no allocation), and
  /// the gcd-splitting identities (Knuth 4.5.1) keep intermediates the
  /// minimal size instead of cross-multiplying then reducing.
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const { return cmp(o) < 0; }
  bool operator<=(const Rational& o) const { return cmp(o) <= 0; }
  bool operator>(const Rational& o) const { return cmp(o) > 0; }
  bool operator>=(const Rational& o) const { return cmp(o) >= 0; }

  /// Three-way comparison: -1, 0, +1.
  int cmp(const Rational& o) const;

  /// Largest integer <= *this.
  BigInt floor() const;
  /// Smallest integer >= *this.
  BigInt ceil() const;

  /// Integer power; negative exponents invert (abort on zero base).
  static Rational pow(const Rational& base, std::int64_t e);

  /// Midpoint (a+b)/2.
  static Rational mid(const Rational& a, const Rational& b);

  /// The rational with the smallest denominator (then smallest |numerator|)
  /// in the closed interval [lo, hi] (continued-fraction / Stern-Brocot
  /// construction). Requires lo <= hi.
  static Rational simplest_in(const Rational& lo, const Rational& hi);

  /// As simplest_in, but over the open interval (lo, hi). Requires lo < hi.
  static Rational simplest_in_open(const Rational& lo, const Rational& hi);

  static const Rational& zero();
  static const Rational& one();

  /// "p" if integer else "p/q".
  std::string to_string() const;
  /// Nearest double.
  double to_double() const;

  /// Hash suitable for unordered containers.
  std::size_t hash() const;

 private:
  void normalize();
  // Shared signed-addition core: *this +/- o, in place, gcd identities.
  void add_assign(const Rational& o, bool negate_o);

  BigInt num_;
  BigInt den_;  // > 0
};

inline Rational operator+(std::int64_t a, const Rational& b) {
  return Rational(a) + b;
}
inline Rational operator-(std::int64_t a, const Rational& b) {
  return Rational(a) - b;
}
inline Rational operator*(std::int64_t a, const Rational& b) {
  return Rational(a) * b;
}

}  // namespace cqa

#endif  // CQA_ARITH_RATIONAL_H_
