#include "cqa/arith/arena.h"

#include "cqa/guard/meter.h"

namespace cqa {
namespace arith {

namespace {

// Freelist ceiling: past this many pooled nodes, release frees outright.
// 256 nodes comfortably covers the deepest pivot expressions seen in the
// FM and sweep workloads while bounding idle-thread retention.
constexpr std::uint64_t kMaxPooled = 256;

// ArenaScope exit keeps at most this many nodes beyond its baseline so
// back-to-back eliminations still hit the pool warm.
constexpr std::uint64_t kRetainAcrossScopes = 64;

// Nodes whose vectors grew huge (Karatsuba intermediates, Lagrange
// coefficient blowups) are shrunk on release so one pathological value
// does not pin megabytes inside the freelist.
constexpr std::size_t kMaxPooledLimbCapacity = 4096;

struct Pool {
  LimbRep* head = nullptr;
  ArenaStats stats;

  ~Pool() {
    while (head != nullptr) {
      LimbRep* next = head->next_free;
      delete head;
      head = next;
    }
  }
};

Pool& thread_pool() {
  static thread_local Pool pool;
  return pool;
}

}  // namespace

LimbRep* arena_acquire() {
  Pool& pool = thread_pool();
  ++pool.stats.acquires;
  ++pool.stats.live;
  guard::note_bigint_heap_node_tl();
  if (pool.head != nullptr) {
    LimbRep* rep = pool.head;
    pool.head = rep->next_free;
    rep->next_free = nullptr;
    --pool.stats.pooled;
    ++pool.stats.pool_hits;
    return rep;
  }
  return new LimbRep();
}

void arena_release(LimbRep* rep) {
  Pool& pool = thread_pool();
  ++pool.stats.releases;
  --pool.stats.live;
  if (pool.stats.pooled >= kMaxPooled) {
    delete rep;
    return;
  }
  if (rep->limbs.capacity() > kMaxPooledLimbCapacity) {
    rep->limbs = std::vector<std::uint32_t>();
  }
  rep->negative = false;
  rep->next_free = pool.head;
  pool.head = rep;
  ++pool.stats.pooled;
}

ArenaStats arena_stats() { return thread_pool().stats; }

ArenaScope::ArenaScope() : baseline_(thread_pool().stats.pooled) {}

ArenaScope::~ArenaScope() {
  Pool& pool = thread_pool();
  const std::uint64_t keep = baseline_ + kRetainAcrossScopes;
  while (pool.stats.pooled > keep && pool.head != nullptr) {
    LimbRep* next = pool.head->next_free;
    delete pool.head;
    pool.head = next;
    --pool.stats.pooled;
  }
}

}  // namespace arith
}  // namespace cqa
