#include "cqa/arith/bigint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>

#include "cqa/guard/fault.h"
#include "cqa/guard/meter.h"

namespace cqa {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::int64_t v) : negative_(v < 0) {
  // Avoid UB on INT64_MIN by working in uint64.
  std::uint64_t mag =
      v < 0 ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
}

Result<BigInt> BigInt::from_string(const std::string& s) {
  std::size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) return Status::invalid("empty integer literal: " + s);
  BigInt out;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::invalid("bad digit in integer literal: " + s);
    }
    out = out * BigInt(10) + BigInt(s[i] - '0');
  }
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

void BigInt::trim(std::vector<std::uint32_t>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& lo = a.size() < b.size() ? a : b;
  const auto& hi = a.size() < b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(hi.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    std::uint64_t s = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    out.push_back(static_cast<std::uint32_t>(s & 0xffffffffu));
    carry = s >> 32;
  }
  if (carry) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  CQA_DCHECK(cmp_mag(a, b) >= 0);
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a[i]) -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0) -
                     borrow;
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(d));
  }
  trim(&out);
  return out;
}

std::vector<std::uint32_t> BigInt::mul_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(&out);
  return out;
}

void BigInt::divmod_mag(const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b,
                        std::vector<std::uint32_t>* q,
                        std::vector<std::uint32_t>* r) {
  CQA_CHECK(!b.empty());
  q->clear();
  r->clear();
  if (cmp_mag(a, b) < 0) {
    *r = a;
    return;
  }
  if (b.size() == 1) {
    // Short division.
    std::uint64_t d = b[0];
    q->assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      (*q)[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    trim(q);
    if (rem) r->push_back(static_cast<std::uint32_t>(rem));
    return;
  }

  // Knuth Algorithm D. Normalize so the top limb of the divisor has its
  // high bit set.
  int shift = 0;
  {
    std::uint32_t top = b.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl_mag = [](const std::vector<std::uint32_t>& v,
                    int s) -> std::vector<std::uint32_t> {
    if (s == 0) return v;
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << s;
      out[i + 1] |= static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(v[i]) >> (32 - s)) & 0xffffffffu);
    }
    trim(&out);
    return out;
  };
  std::vector<std::uint32_t> u = shl_mag(a, shift);
  std::vector<std::uint32_t> v = shl_mag(b, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() >= n ? u.size() - n : 0;
  u.resize(u.size() + 1, 0);  // room for the virtual top limb
  q->assign(m + 1, 0);

  const std::uint64_t vn1 = v[n - 1];
  const std::uint64_t vn2 = v[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t num = (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat, rhat;
    if (u[j + n] == vn1) {
      // qhat would be >= base; clamp (Knuth D3). The multiply-subtract
      // add-back step corrects any remaining overestimate.
      qhat = kBase - 1;
      rhat = num - qhat * vn1;
    } else {
      qhat = num / vn1;
      rhat = num % vn1;
    }
    while (rhat < kBase && qhat * vn2 > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vn1;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large; add back.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t s = static_cast<std::uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<std::uint32_t>(s & 0xffffffffu);
        c2 = s >> 32;
      }
      t += static_cast<std::int64_t>(c2);
      t &= static_cast<std::int64_t>(0xffffffffll);
    }
    u[j + n] = static_cast<std::uint32_t>(t);
    (*q)[j] = static_cast<std::uint32_t>(qhat);
  }
  trim(q);
  // Remainder = u[0..n) >> shift.
  u.resize(n);
  if (shift) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t hi = (i + 1 < n) ? u[i + 1] : 0;
      u[i] = (u[i] >> shift) |
             static_cast<std::uint32_t>(
                 (static_cast<std::uint64_t>(hi) << (32 - shift)) & 0xffffffffu);
    }
  }
  trim(&u);
  *r = std::move(u);
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  if (negative_ == o.negative_) {
    out.limbs_ = add_mag(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else {
    int c = cmp_mag(limbs_, o.limbs_);
    if (c == 0) return BigInt();
    if (c > 0) {
      out.limbs_ = sub_mag(limbs_, o.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = sub_mag(o.limbs_, limbs_);
      out.negative_ = o.negative_;
    }
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  // Guard hooks on the two allocating hot ops (multiply, divmod): the
  // thread meter records the would-be result bit-length *before* the
  // allocation so a Karpinski-Macintyre coefficient blowup trips the
  // quota ahead of the OOM, and chaos runs can inject an allocation
  // failure here. Both are one TLS/atomic load when off.
  guard::charge_bigint_bits_tl(32 * (limbs_.size() + o.limbs_.size()));
  if (guard::fault_fires(guard::FaultSite::kBigIntAlloc)) {
    throw std::bad_alloc();
  }
  BigInt out;
  out.limbs_ = mul_mag(limbs_, o.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != o.negative_);
  return out;
}

void BigInt::divmod(const BigInt& o, BigInt* q, BigInt* r) const {
  CQA_CHECK(!o.is_zero());
  guard::charge_bigint_bits_tl(32 * limbs_.size());
  if (guard::fault_fires(guard::FaultSite::kBigIntAlloc)) {
    throw std::bad_alloc();
  }
  std::vector<std::uint32_t> qm, rm;
  divmod_mag(limbs_, o.limbs_, &qm, &rm);
  q->limbs_ = std::move(qm);
  q->negative_ = !q->limbs_.empty() && (negative_ != o.negative_);
  r->limbs_ = std::move(rm);
  r->negative_ = !r->limbs_.empty() && negative_;
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  divmod(o, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  divmod(o, &q, &r);
  return r;
}

BigInt BigInt::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  BigInt out;
  std::size_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v & 0xffffffffu);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.negative_ = negative_;
  out.normalize();
  return out;
}

BigInt BigInt::shr(std::size_t bits) const {
  if (is_zero()) return *this;
  std::size_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift),
                    limbs_.end());
  if (bit_shift) {
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
      std::uint32_t hi = (i + 1 < out.limbs_.size()) ? out.limbs_[i + 1] : 0;
      out.limbs_[i] =
          (out.limbs_[i] >> bit_shift) |
          static_cast<std::uint32_t>(
              (static_cast<std::uint64_t>(hi) << (32 - bit_shift)) &
              0xffffffffu);
    }
  }
  out.negative_ = negative_;
  out.normalize();
  return out;
}

int BigInt::cmp(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_ ? -1 : 1;
  int c = cmp_mag(limbs_, o.limbs_);
  return negative_ ? -c : c;
}

BigInt BigInt::gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt g = gcd(a, b);
  return (a.abs() / g) * b.abs();
}

BigInt BigInt::pow(const BigInt& base, std::uint64_t e) {
  BigInt result(1);
  BigInt b = base;
  while (e) {
    if (e & 1) result *= b;
    b *= b;
    e >>= 1;
  }
  return result;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^9.
  std::vector<std::uint32_t> mag = limbs_;
  const std::uint64_t kChunk = 1000000000ull;
  std::string digits;
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    trim(&mag);
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::to_double() const {
  double out = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

Result<std::int64_t> BigInt::to_int64() const {
  if (limbs_.size() > 2) return Status::out_of_range("BigInt exceeds int64");
  std::uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > 0x8000000000000000ull) {
      return Status::out_of_range("BigInt exceeds int64");
    }
    return static_cast<std::int64_t>(~mag + 1);
  }
  if (mag > 0x7fffffffffffffffull) {
    return Status::out_of_range("BigInt exceeds int64");
  }
  return static_cast<std::int64_t>(mag);
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (std::uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace cqa
