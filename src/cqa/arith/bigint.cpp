#include "cqa/arith/bigint.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <new>
#include <vector>

#include "cqa/guard/fault.h"
#include "cqa/guard/meter.h"

namespace cqa {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;
using Limbs = std::vector<u32>;

constexpr u64 kBase = u64{1} << 32;
constexpr u64 kSmallMagCapPos = (u64{1} << 63) - 1;  // INT64_MAX
constexpr u64 kSmallMagCapNeg = u64{1} << 63;        // |INT64_MIN|

inline u64 abs_u64(i64 v) {
  // Two's complement negate in unsigned space; safe on INT64_MIN.
  return v < 0 ? ~static_cast<u64>(v) + 1 : static_cast<u64>(v);
}

// Read-only view of a trimmed little-endian magnitude. Small values view
// a caller-provided 2-limb buffer; heap values view their limb vector.
struct MagView {
  const u32* p = nullptr;
  std::size_t n = 0;
  u32 operator[](std::size_t i) const { return p[i]; }
  bool empty() const { return n == 0; }
};

inline MagView view_of(const Limbs& v) { return {v.data(), v.size()}; }

// Fills buf with |v|'s limbs and returns a view over it.
inline MagView small_view(i64 v, u32 buf[2]) {
  u64 m = abs_u64(v);
  std::size_t n = 0;
  while (m != 0) {
    buf[n++] = static_cast<u32>(m);
    m >>= 32;
  }
  return {buf, n};
}

inline void trim(Limbs* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

// Drops trailing zero limbs from a view (sub-spans inside Karatsuba).
inline MagView trimmed(MagView v) {
  while (v.n > 0 && v.p[v.n - 1] == 0) --v.n;
  return v;
}

int cmp_mag(MagView a, MagView b) {
  if (a.n != b.n) return a.n < b.n ? -1 : 1;
  for (std::size_t i = a.n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// out = a + b. out must not alias a or b.
void add_mag_into(MagView a, MagView b, Limbs* out) {
  const MagView& lo = a.n < b.n ? a : b;
  const MagView& hi = a.n < b.n ? b : a;
  out->clear();
  out->reserve(hi.n + 1);
  u64 carry = 0;
  for (std::size_t i = 0; i < hi.n; ++i) {
    u64 s = carry + hi[i] + (i < lo.n ? lo[i] : 0);
    out->push_back(static_cast<u32>(s));
    carry = s >> 32;
  }
  if (carry != 0) out->push_back(static_cast<u32>(carry));
}

// *a += b. b must not alias a's storage.
void add_mag_inplace(Limbs* a, MagView b) {
  if (b.n > a->size()) a->resize(b.n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    u64 s = carry + (*a)[i] + (i < b.n ? b[i] : 0);
    (*a)[i] = static_cast<u32>(s);
    carry = s >> 32;
    if (carry == 0 && i >= b.n) break;  // no more incoming limbs or carry
  }
  if (carry != 0) a->push_back(static_cast<u32>(carry));
}

// *a -= b; requires |a| >= |b|. b must not alias a's storage.
void sub_mag_inplace(Limbs* a, MagView b) {
  CQA_DCHECK(cmp_mag(view_of(*a), b) >= 0);
  i64 borrow = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    i64 d = static_cast<i64>((*a)[i]) -
            (i < b.n ? static_cast<i64>(b[i]) : 0) - borrow;
    if (d < 0) {
      d += static_cast<i64>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<u32>(d);
    if (borrow == 0 && i >= b.n) break;
  }
  trim(a);
}

// *a = b - *a; requires |b| >= |a|. b must not alias a's storage.
void rsub_mag_inplace(Limbs* a, MagView b) {
  CQA_DCHECK(cmp_mag(b, view_of(*a)) >= 0);
  a->resize(b.n, 0);
  i64 borrow = 0;
  for (std::size_t i = 0; i < b.n; ++i) {
    i64 d = static_cast<i64>(b[i]) - static_cast<i64>((*a)[i]) - borrow;
    if (d < 0) {
      d += static_cast<i64>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<u32>(d);
  }
  trim(a);
}

// out = a - b; requires |a| >= |b|. out must not alias a or b.
void sub_mag_into(MagView a, MagView b, Limbs* out) {
  out->assign(a.p, a.p + a.n);
  sub_mag_inplace(out, b);
}

// Schoolbook out = a * b, on 64-bit super-limbs: the 32-bit views are
// read in pairs and multiplied via unsigned __int128, quartering the
// multiply count of a 32x32 kernel. The row carry lands exactly one
// super-limb past the row (acc[i + bn] is untouched before row i writes
// it), so no extra propagation pass is needed. A thread-local
// accumulator keeps leaf calls allocation-free. out must not alias a/b.
void mul_mag_school_into(MagView a, MagView b, Limbs* out) {
  if (a.empty() || b.empty()) {
    out->clear();
    return;
  }
  const std::size_t an = (a.n + 1) / 2;
  const std::size_t bn = (b.n + 1) / 2;
  auto limb64 = [](MagView v, std::size_t i) -> u64 {
    const u64 lo = v.p[2 * i];
    const u64 hi = (2 * i + 1 < v.n) ? v.p[2 * i + 1] : 0;
    return lo | (hi << 32);
  };
  static thread_local std::vector<u64> acc;
  acc.assign(an + bn, 0);
  for (std::size_t i = 0; i < an; ++i) {
    const u64 ai = limb64(a, i);
    u64 carry = 0;
    for (std::size_t j = 0; j < bn; ++j) {
      const u128 cur =
          static_cast<u128>(ai) * limb64(b, j) + acc[i + j] + carry;
      acc[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    acc[i + bn] = carry;
  }
  out->resize(a.n + b.n);
  for (std::size_t i = 0; i < out->size(); ++i) {
    const u64 w = acc[i / 2];
    (*out)[i] = static_cast<u32>((i & 1) != 0 ? (w >> 32) : w);
  }
  trim(out);
}

void mul_mag_into(MagView a, MagView b, Limbs* out);

// out += v << (32 * off). out must already be large enough for the
// aligned add except for a possible final carry limb.
void add_mag_at(Limbs* out, MagView v, std::size_t off) {
  if (out->size() < off + v.n) out->resize(off + v.n, 0);
  u64 carry = 0;
  std::size_t i = 0;
  for (; i < v.n; ++i) {
    u64 s = carry + (*out)[off + i] + v[i];
    (*out)[off + i] = static_cast<u32>(s);
    carry = s >> 32;
  }
  while (carry != 0) {
    if (off + i == out->size()) {
      out->push_back(static_cast<u32>(carry));
      break;
    }
    u64 s = carry + (*out)[off + i];
    (*out)[off + i] = static_cast<u32>(s);
    carry = s >> 32;
    ++i;
  }
}

// RAII scratch vector borrowed from the limb arena. Karatsuba churns
// five temporaries per internal recursion node; borrowing them keeps the
// recursion allocation-free once the pool's capacities are warm.
struct Scratch {
  arith::LimbRep* rep;
  Scratch() : rep(arith::arena_acquire()) { rep->limbs.clear(); }
  ~Scratch() { arith::arena_release(rep); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Limbs* operator->() const { return &rep->limbs; }
  Limbs& operator*() const { return rep->limbs; }
};

// Karatsuba out = a * b for operands both >= kKaratsubaLimbs limbs.
// Split at half the larger operand: a = a1*B^k + a0, b likewise, then
// a*b = z2*B^2k + (z1 - z0 - z2)*B^k + z0 with z0 = a0*b0, z2 = a1*b1,
// z1 = (a0+a1)*(b0+b1). Three recursive multiplies of ~half size.
void mul_mag_karatsuba_into(MagView a, MagView b, Limbs* out) {
  const std::size_t k = (std::max(a.n, b.n) + 1) / 2;
  const MagView a0 = trimmed({a.p, std::min(k, a.n)});
  const MagView a1 = a.n > k ? MagView{a.p + k, a.n - k} : MagView{};
  const MagView b0 = trimmed({b.p, std::min(k, b.n)});
  const MagView b1 = b.n > k ? MagView{b.p + k, b.n - k} : MagView{};

  Scratch z0, z2, sa, sb, z1;
  mul_mag_into(a0, b0, &*z0);
  mul_mag_into(a1, b1, &*z2);
  add_mag_into(a0, a1, &*sa);
  add_mag_into(b0, b1, &*sb);
  mul_mag_into(view_of(*sa), view_of(*sb), &*z1);
  // z1 = z1 - z0 - z2 >= 0 (the cross terms).
  sub_mag_inplace(&*z1, view_of(*z0));
  sub_mag_inplace(&*z1, view_of(*z2));

  out->assign(a.n + b.n, 0);
  std::copy(z0->begin(), z0->end(), out->begin());
  add_mag_at(out, view_of(*z1), k);
  add_mag_at(out, view_of(*z2), 2 * k);
  trim(out);
}

void mul_mag_into(MagView a, MagView b, Limbs* out) {
  if (a.empty() || b.empty()) {
    out->clear();
    return;
  }
  if (std::min(a.n, b.n) >= BigInt::kKaratsubaLimbs) {
    mul_mag_karatsuba_into(a, b, out);
  } else {
    mul_mag_school_into(a, b, out);
  }
}

// Knuth Algorithm D on magnitudes. q and r must not alias a or b.
void divmod_mag(MagView a, MagView b, Limbs* q, Limbs* r) {
  CQA_CHECK(!b.empty());
  q->clear();
  r->clear();
  if (cmp_mag(a, b) < 0) {
    r->assign(a.p, a.p + a.n);
    return;
  }
  if (b.n == 1) {
    // Short division.
    const u64 d = b[0];
    q->assign(a.n, 0);
    u64 rem = 0;
    for (std::size_t i = a.n; i-- > 0;) {
      u64 cur = (rem << 32) | a[i];
      (*q)[i] = static_cast<u32>(cur / d);
      rem = cur % d;
    }
    trim(q);
    if (rem != 0) r->push_back(static_cast<u32>(rem));
    return;
  }

  // Normalize so the top limb of the divisor has its high bit set.
  int shift = 0;
  {
    u32 top = b[b.n - 1];
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl_mag = [](MagView v, int s) -> Limbs {
    Limbs out(v.n + (s != 0 ? 1 : 0), 0);
    if (s == 0) {
      out.assign(v.p, v.p + v.n);
      return out;
    }
    for (std::size_t i = 0; i < v.n; ++i) {
      out[i] |= v[i] << s;
      out[i + 1] |= static_cast<u32>(static_cast<u64>(v[i]) >> (32 - s));
    }
    trim(&out);
    return out;
  };
  Limbs u = shl_mag(a, shift);
  Limbs v = shl_mag(b, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() >= n ? u.size() - n : 0;
  u.resize(u.size() + 1, 0);  // room for the virtual top limb
  q->assign(m + 1, 0);

  const u64 vn1 = v[n - 1];
  const u64 vn2 = v[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    u64 num = (static_cast<u64>(u[j + n]) << 32) | u[j + n - 1];
    u64 qhat, rhat;
    if (u[j + n] == vn1) {
      // qhat would be >= base; clamp (Knuth D3). The multiply-subtract
      // add-back step corrects any remaining overestimate.
      qhat = kBase - 1;
      rhat = num - qhat * vn1;
    } else {
      qhat = num / vn1;
      rhat = num % vn1;
    }
    while (rhat < kBase && qhat * vn2 > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vn1;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    i64 borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u64 p = qhat * v[i] + carry;
      carry = p >> 32;
      i64 t = static_cast<i64>(u[i + j]) -
              static_cast<i64>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<i64>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<u32>(t);
    }
    i64 t = static_cast<i64>(u[j + n]) - static_cast<i64>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large; add back.
      t += static_cast<i64>(kBase);
      --qhat;
      u64 c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u64 s = static_cast<u64>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<u32>(s);
        c2 = s >> 32;
      }
      t += static_cast<i64>(c2);
      t &= static_cast<i64>(0xffffffffll);
    }
    u[j + n] = static_cast<u32>(t);
    (*q)[j] = static_cast<u32>(qhat);
  }
  trim(q);
  // Remainder = u[0..n) >> shift.
  u.resize(n);
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      u32 hi = (i + 1 < n) ? u[i + 1] : 0;
      u[i] = (u[i] >> shift) |
             static_cast<u32>((static_cast<u64>(hi) << (32 - shift)) &
                              0xffffffffu);
    }
  }
  trim(&u);
  *r = std::move(u);
}

}  // namespace

// ---------------------------------------------------------------------------
// Representation management.

BigInt::BigInt(const BigInt& o) : small_(o.small_) {
  if (o.rep_ != nullptr) {
    rep_ = arith::arena_acquire();
    rep_->negative = o.rep_->negative;
    rep_->limbs = o.rep_->limbs;  // assign into retained capacity
  }
}

BigInt& BigInt::operator=(const BigInt& o) {
  if (this == &o) return *this;
  small_ = o.small_;
  if (o.rep_ != nullptr) {
    if (rep_ == nullptr) rep_ = arith::arena_acquire();
    rep_->negative = o.rep_->negative;
    rep_->limbs = o.rep_->limbs;
  } else {
    release_rep();
  }
  return *this;
}

BigInt& BigInt::operator=(BigInt&& o) noexcept {
  if (this == &o) return *this;
  std::swap(small_, o.small_);
  std::swap(rep_, o.rep_);
  return *this;
}

void BigInt::adopt_mag(bool negative, arith::LimbRep* rep) {
  Limbs& limbs = rep->limbs;
  trim(&limbs);
  if (limbs.size() <= 2) {
    u64 mag = limbs.empty() ? 0 : limbs[0];
    if (limbs.size() == 2) mag |= static_cast<u64>(limbs[1]) << 32;
    const u64 cap = negative ? kSmallMagCapNeg : kSmallMagCapPos;
    if (mag <= cap) {
      release_rep();
      arith::arena_release(rep);
      small_ = negative ? static_cast<i64>(~mag + 1) : static_cast<i64>(mag);
      return;
    }
  }
  release_rep();
  rep->negative = negative;  // limbs nonempty here: |v| > int64 range
  rep_ = rep;
  small_ = 0;
}

BigInt BigInt::from_mag(bool negative, arith::LimbRep* rep) {
  BigInt out;
  out.adopt_mag(negative, rep);
  return out;
}

BigInt BigInt::from_u128(bool negative, u128 mag) {
  const u128 cap = negative ? static_cast<u128>(kSmallMagCapNeg)
                            : static_cast<u128>(kSmallMagCapPos);
  if (mag <= cap) {
    const u64 m = static_cast<u64>(mag);
    return BigInt(negative ? static_cast<i64>(~m + 1) : static_cast<i64>(m));
  }
  arith::LimbRep* rep = arith::arena_acquire();
  rep->limbs.clear();
  u128 m = mag;
  while (m != 0) {
    rep->limbs.push_back(static_cast<u32>(m));
    m >>= 32;
  }
  BigInt out;
  out.adopt_mag(negative, rep);
  return out;
}

BigInt BigInt::from_i128(i128 v) {
  const bool neg = v < 0;
  const u128 mag = neg ? u128{0} - static_cast<u128>(v) : static_cast<u128>(v);
  return from_u128(neg, mag);
}

std::size_t BigInt::limb_count() const noexcept {
  if (rep_ != nullptr) return rep_->limbs.size();
  const u64 mag = abs_u64(small_);
  if (mag == 0) return 0;
  return (mag >> 32) != 0 ? 2 : 1;
}

// ---------------------------------------------------------------------------
// Parsing and rendering.

Result<BigInt> BigInt::from_string(const std::string& s) {
  std::size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) return Status::invalid("empty integer literal: " + s);
  BigInt out;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::invalid("bad digit in integer literal: " + s);
    }
    out *= BigInt(10);
    out += BigInt(s[i] - '0');
  }
  if (neg) out = -out;
  return out;
}

std::string BigInt::to_string() const {
  if (rep_ == nullptr) return std::to_string(small_);
  // Repeated division by 10^9 on a limb copy.
  Limbs mag = rep_->limbs;
  const u64 kChunk = 1000000000ull;
  std::string digits;
  while (!mag.empty()) {
    u64 rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      u64 cur = (rem << 32) | mag[i];
      mag[i] = static_cast<u32>(cur / kChunk);
      rem = cur % kChunk;
    }
    trim(&mag);
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (rep_->negative) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::to_double() const {
  if (rep_ == nullptr) return static_cast<double>(small_);
  double out = 0;
  for (std::size_t i = rep_->limbs.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(rep_->limbs[i]);
  }
  return rep_->negative ? -out : out;
}

Result<std::int64_t> BigInt::to_int64() const {
  if (rep_ != nullptr) return Status::out_of_range("BigInt exceeds int64");
  return small_;
}

std::size_t BigInt::bit_length() const noexcept {
  if (rep_ == nullptr) {
    return static_cast<std::size_t>(std::bit_width(abs_u64(small_)));
  }
  const Limbs& limbs = rep_->limbs;
  return (limbs.size() - 1) * 32 +
         static_cast<std::size_t>(std::bit_width(limbs.back()));
}

std::size_t BigInt::hash() const noexcept {
  u32 buf[2];
  const MagView m = rep_ != nullptr ? view_of(rep_->limbs)
                                    : small_view(small_, buf);
  std::size_t h = is_negative() ? 0x9e3779b97f4a7c15ull : 0;
  for (std::size_t i = 0; i < m.n; ++i) {
    h ^= m[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Sign manipulation and comparison.

BigInt BigInt::operator-() const {
  if (rep_ == nullptr) {
    if (small_ == std::numeric_limits<i64>::min()) {
      return from_u128(false, static_cast<u128>(kSmallMagCapNeg));
    }
    return BigInt(-small_);
  }
  BigInt out = *this;
  // A positive heap magnitude of exactly 2^63 re-inlines to INT64_MIN.
  arith::LimbRep* rep = out.rep_;
  out.rep_ = nullptr;
  out.adopt_mag(!rep->negative, rep);
  return out;
}

BigInt BigInt::abs() const {
  if (rep_ == nullptr) {
    if (small_ == std::numeric_limits<i64>::min()) {
      return from_u128(false, static_cast<u128>(kSmallMagCapNeg));
    }
    return BigInt(small_ < 0 ? -small_ : small_);
  }
  BigInt out = *this;
  out.rep_->negative = false;  // heap magnitudes stay heap when positive
  return out;
}

int BigInt::cmp(const BigInt& o) const noexcept {
  if (rep_ == nullptr && o.rep_ == nullptr) {
    return small_ < o.small_ ? -1 : (small_ > o.small_ ? 1 : 0);
  }
  if (rep_ == nullptr) return o.rep_->negative ? 1 : -1;  // |o| is larger
  if (o.rep_ == nullptr) return rep_->negative ? -1 : 1;
  if (rep_->negative != o.rep_->negative) return rep_->negative ? -1 : 1;
  const int c = cmp_mag(view_of(rep_->limbs), view_of(o.rep_->limbs));
  return rep_->negative ? -c : c;
}

// ---------------------------------------------------------------------------
// Addition / subtraction.

BigInt BigInt::operator+(const BigInt& o) const {
  if (rep_ == nullptr && o.rep_ == nullptr) {
    i64 r;
    if (!__builtin_add_overflow(small_, o.small_, &r)) return BigInt(r);
    return from_i128(static_cast<i128>(small_) + o.small_);
  }
  BigInt out = *this;
  out.add_assign(o, /*negate_o=*/false);
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (rep_ == nullptr && o.rep_ == nullptr) {
    i64 r;
    if (!__builtin_sub_overflow(small_, o.small_, &r)) return BigInt(r);
    return from_i128(static_cast<i128>(small_) - o.small_);
  }
  BigInt out = *this;
  out.add_assign(o, /*negate_o=*/true);
  return out;
}

BigInt& BigInt::operator+=(const BigInt& o) {
  add_assign(o, /*negate_o=*/false);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& o) {
  add_assign(o, /*negate_o=*/true);
  return *this;
}

void BigInt::add_assign(const BigInt& o, bool negate_o) {
  if (rep_ == nullptr && o.rep_ == nullptr) {
    i64 r;
    const bool overflow =
        negate_o ? __builtin_sub_overflow(small_, o.small_, &r)
                 : __builtin_add_overflow(small_, o.small_, &r);
    if (!overflow) {
      small_ = r;
      return;
    }
    const i128 s = negate_o ? static_cast<i128>(small_) - o.small_
                            : static_cast<i128>(small_) + o.small_;
    *this = from_i128(s);
    return;
  }
  if (this == &o) {
    // Self add/sub: x += x doubles, x -= x zeroes. Divert to copies.
    const BigInt copy = o;
    add_assign(copy, negate_o);
    return;
  }
  if (rep_ == nullptr) {
    // Small += heap: promote *this first so the in-place path applies.
    arith::LimbRep* rep = arith::arena_acquire();
    u32 buf[2];
    const MagView m = small_view(small_, buf);
    rep->limbs.assign(m.p, m.p + m.n);
    rep->negative = small_ < 0;
    rep_ = rep;
    small_ = 0;
  }
  u32 obuf[2];
  const MagView om = o.rep_ != nullptr ? view_of(o.rep_->limbs)
                                       : small_view(o.small_, obuf);
  const bool oneg = (o.is_negative() && !o.is_zero()) ^ negate_o;
  bool myneg = rep_->negative;
  Limbs& limbs = rep_->limbs;
  if (myneg == oneg || om.empty()) {
    add_mag_inplace(&limbs, om);
    // Magnitude grew; still out of int64 range, no re-inline check needed.
    return;
  }
  const int c = cmp_mag(view_of(limbs), om);
  if (c == 0) {
    release_rep();
    small_ = 0;
    return;
  }
  if (c > 0) {
    sub_mag_inplace(&limbs, om);
  } else {
    rsub_mag_inplace(&limbs, om);
    myneg = oneg;
  }
  // Subtraction can shrink back into int64 range: re-canonicalize.
  arith::LimbRep* rep = rep_;
  rep_ = nullptr;
  adopt_mag(myneg, rep);
}

// ---------------------------------------------------------------------------
// Multiplication.

BigInt BigInt::operator*(const BigInt& o) const {
  // Guard hooks on the two allocating hot ops (multiply, divmod): the
  // thread meter records the would-be result bit-length *before* the
  // allocation so a Karpinski-Macintyre coefficient blowup trips the
  // quota ahead of the OOM, and chaos runs can inject an allocation
  // failure here. Both are one TLS/atomic load when off.
  guard::charge_bigint_bits_tl(32 * (limb_count() + o.limb_count()));
  if (guard::fault_fires(guard::FaultSite::kBigIntAlloc)) {
    throw std::bad_alloc();
  }
  if (rep_ == nullptr && o.rep_ == nullptr) {
    i64 r;
    if (!__builtin_mul_overflow(small_, o.small_, &r)) return BigInt(r);
    return from_i128(static_cast<i128>(small_) * o.small_);
  }
  u32 abuf[2], bbuf[2];
  const MagView am =
      rep_ != nullptr ? view_of(rep_->limbs) : small_view(small_, abuf);
  const MagView bm = o.rep_ != nullptr ? view_of(o.rep_->limbs)
                                       : small_view(o.small_, bbuf);
  arith::LimbRep* rep = arith::arena_acquire();
  mul_mag_into(am, bm, &rep->limbs);
  return from_mag(is_negative() != o.is_negative() && !rep->limbs.empty(),
                  rep);
}

BigInt& BigInt::operator*=(const BigInt& o) {
  if (rep_ == nullptr && o.rep_ == nullptr) {
    guard::charge_bigint_bits_tl(32 * (limb_count() + o.limb_count()));
    if (guard::fault_fires(guard::FaultSite::kBigIntAlloc)) {
      throw std::bad_alloc();
    }
    i64 r;
    if (!__builtin_mul_overflow(small_, o.small_, &r)) {
      small_ = r;
      return *this;
    }
    *this = from_i128(static_cast<i128>(small_) * o.small_);
    return *this;
  }
  // Heap multiply cannot run in place; the result node and the released
  // operand node both recycle through the arena.
  return *this = *this * o;
}

BigInt BigInt::mul_schoolbook(const BigInt& a, const BigInt& b) {
  u32 abuf[2], bbuf[2];
  const MagView am = a.rep_ != nullptr ? view_of(a.rep_->limbs)
                                       : small_view(a.small_, abuf);
  const MagView bm = b.rep_ != nullptr ? view_of(b.rep_->limbs)
                                       : small_view(b.small_, bbuf);
  arith::LimbRep* rep = arith::arena_acquire();
  mul_mag_school_into(am, bm, &rep->limbs);
  return from_mag(a.is_negative() != b.is_negative() && !rep->limbs.empty(),
                  rep);
}

// ---------------------------------------------------------------------------
// Division.

BigInt::DivMod BigInt::divmod(const BigInt& o) const {
  CQA_CHECK(!o.is_zero());
  guard::charge_bigint_bits_tl(32 * limb_count());
  if (guard::fault_fires(guard::FaultSite::kBigIntAlloc)) {
    throw std::bad_alloc();
  }
  DivMod out;
  if (rep_ == nullptr && o.rep_ == nullptr) {
    if (small_ == std::numeric_limits<i64>::min() && o.small_ == -1) {
      // The one quotient that overflows hardware division: |INT64_MIN|.
      out.quot = from_u128(false, static_cast<u128>(kSmallMagCapNeg));
      return out;
    }
    out.quot = BigInt(small_ / o.small_);
    out.rem = BigInt(small_ % o.small_);
    return out;
  }
  u32 abuf[2], bbuf[2];
  const MagView am =
      rep_ != nullptr ? view_of(rep_->limbs) : small_view(small_, abuf);
  const MagView bm = o.rep_ != nullptr ? view_of(o.rep_->limbs)
                                       : small_view(o.small_, bbuf);
  arith::LimbRep* qrep = arith::arena_acquire();
  arith::LimbRep* rrep = arith::arena_acquire();
  divmod_mag(am, bm, &qrep->limbs, &rrep->limbs);
  const bool qneg =
      !qrep->limbs.empty() && (is_negative() != o.is_negative());
  const bool rneg = !rrep->limbs.empty() && is_negative();
  out.quot = from_mag(qneg, qrep);
  out.rem = from_mag(rneg, rrep);
  return out;
}

BigInt BigInt::operator/(const BigInt& o) const { return divmod(o).quot; }

BigInt BigInt::operator%(const BigInt& o) const { return divmod(o).rem; }

BigInt& BigInt::operator/=(const BigInt& o) {
  return *this = divmod(o).quot;
}

// ---------------------------------------------------------------------------
// Shifts.

BigInt BigInt::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  if (rep_ == nullptr && bits < 64) {
    // |small| <= 2^63, so the widest result is 2^126: u128 holds it.
    return from_u128(small_ < 0, static_cast<u128>(abs_u64(small_)) << bits);
  }
  u32 buf[2];
  const MagView m =
      rep_ != nullptr ? view_of(rep_->limbs) : small_view(small_, buf);
  const std::size_t limb_shift = bits / 32;
  const int bit_shift = static_cast<int>(bits % 32);
  arith::LimbRep* rep = arith::arena_acquire();
  Limbs& out = rep->limbs;
  out.assign(m.n + limb_shift + 1, 0);
  for (std::size_t i = 0; i < m.n; ++i) {
    const u64 v = static_cast<u64>(m[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<u32>(v);
    out[i + limb_shift + 1] |= static_cast<u32>(v >> 32);
  }
  return from_mag(is_negative(), rep);
}

BigInt BigInt::shr(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  if (rep_ == nullptr) {
    const u64 res = bits >= 64 ? 0 : abs_u64(small_) >> bits;
    return from_u128(small_ < 0 && res != 0, static_cast<u128>(res));
  }
  const Limbs& limbs = rep_->limbs;
  const std::size_t limb_shift = bits / 32;
  const int bit_shift = static_cast<int>(bits % 32);
  if (limb_shift >= limbs.size()) return BigInt();
  arith::LimbRep* rep = arith::arena_acquire();
  Limbs& out = rep->limbs;
  out.assign(limbs.begin() + static_cast<std::ptrdiff_t>(limb_shift),
             limbs.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const u32 hi = (i + 1 < out.size()) ? out[i + 1] : 0;
      out[i] = (out[i] >> bit_shift) |
               static_cast<u32>((static_cast<u64>(hi) << (32 - bit_shift)) &
                                0xffffffffu);
    }
  }
  trim(&out);
  return from_mag(rep_->negative && !out.empty(), rep);
}

// ---------------------------------------------------------------------------
// Number theory.

BigInt BigInt::gcd(const BigInt& a, const BigInt& b) {
  if (a.rep_ == nullptr && b.rep_ == nullptr) {
    u64 x = abs_u64(a.small_);
    u64 y = abs_u64(b.small_);
    while (y != 0) {
      const u64 t = x % y;
      x = y;
      y = t;
    }
    // gcd(INT64_MIN, 0) = 2^63 exceeds INT64_MAX; from_u128 promotes.
    return from_u128(false, static_cast<u128>(x));
  }
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt g = gcd(a, b);
  return (a.abs() / g) * b.abs();
}

BigInt BigInt::pow(const BigInt& base, std::uint64_t e) {
  BigInt result(1);
  BigInt b = base;
  while (e != 0) {
    if (e & 1) result *= b;
    b *= b;
    e >>= 1;
  }
  return result;
}

}  // namespace cqa
