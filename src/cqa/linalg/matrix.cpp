#include "cqa/linalg/matrix.h"

#include <algorithm>
#include <sstream>

namespace cqa {

Rational dot(const RVec& a, const RVec& b) {
  CQA_DCHECK(a.size() == b.size());
  Rational out;
  for (std::size_t i = 0; i < a.size(); ++i) out += a[i] * b[i];
  return out;
}

RVec vec_add(const RVec& a, const RVec& b) {
  CQA_DCHECK(a.size() == b.size());
  RVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

RVec vec_sub(const RVec& a, const RVec& b) {
  CQA_DCHECK(a.size() == b.size());
  RVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

RVec vec_scale(const Rational& c, const RVec& a) {
  RVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = c * a[i];
  return out;
}

bool vec_is_zero(const RVec& a) {
  for (const auto& x : a) {
    if (!x.is_zero()) return false;
  }
  return true;
}

Matrix Matrix::from_rows(const std::vector<RVec>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    CQA_CHECK(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Rational(1);
  return m;
}

RVec Matrix::row(std::size_t r) const {
  RVec out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = at(r, c);
  return out;
}

RVec Matrix::col(std::size_t c) const {
  RVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) m.at(c, r) = at(r, c);
  }
  return m;
}

Matrix Matrix::operator*(const Matrix& o) const {
  CQA_CHECK(cols_ == o.rows_);
  Matrix m(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Rational& v = at(r, k);
      if (v.is_zero()) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) {
        m.at(r, c) += v * o.at(k, c);
      }
    }
  }
  return m;
}

RVec Matrix::apply(const RVec& v) const {
  CQA_CHECK(v.size() == cols_);
  RVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Rational s;
    for (std::size_t c = 0; c < cols_; ++c) s += at(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

namespace {

// Row-echelon elimination in place; returns pivot column per pivot row.
std::vector<std::size_t> eliminate(Matrix* m) {
  std::vector<std::size_t> pivots;
  std::size_t pr = 0;
  for (std::size_t c = 0; c < m->cols() && pr < m->rows(); ++c) {
    std::size_t sel = pr;
    while (sel < m->rows() && m->at(sel, c).is_zero()) ++sel;
    if (sel == m->rows()) continue;
    if (sel != pr) {
      for (std::size_t k = 0; k < m->cols(); ++k) {
        std::swap(m->at(sel, k), m->at(pr, k));
      }
    }
    const Rational inv = m->at(pr, c).inverse();
    for (std::size_t k = c; k < m->cols(); ++k) m->at(pr, k) *= inv;
    for (std::size_t r = 0; r < m->rows(); ++r) {
      if (r == pr || m->at(r, c).is_zero()) continue;
      const Rational f = m->at(r, c);
      for (std::size_t k = c; k < m->cols(); ++k) {
        m->at(r, k) -= f * m->at(pr, k);
      }
    }
    pivots.push_back(c);
    ++pr;
  }
  return pivots;
}

}  // namespace

std::size_t Matrix::rank() const {
  Matrix m = *this;
  return eliminate(&m).size();
}

Rational Matrix::determinant() const {
  CQA_CHECK(rows_ == cols_);
  Matrix m = *this;
  Rational det(1);
  for (std::size_t c = 0; c < cols_; ++c) {
    std::size_t sel = c;
    while (sel < rows_ && m.at(sel, c).is_zero()) ++sel;
    if (sel == rows_) return Rational();
    if (sel != c) {
      for (std::size_t k = 0; k < cols_; ++k) {
        std::swap(m.at(sel, k), m.at(c, k));
      }
      det = -det;
    }
    det *= m.at(c, c);
    const Rational inv = m.at(c, c).inverse();
    for (std::size_t r = c + 1; r < rows_; ++r) {
      if (m.at(r, c).is_zero()) continue;
      const Rational f = m.at(r, c) * inv;
      for (std::size_t k = c; k < cols_; ++k) {
        m.at(r, k) -= f * m.at(c, k);
      }
    }
  }
  return det;
}

Result<Matrix> Matrix::inverse() const {
  if (rows_ != cols_) return Status::invalid("inverse of non-square matrix");
  // Augment with identity and eliminate.
  Matrix aug(rows_, 2 * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, cols_ + r) = Rational(1);
  }
  std::vector<std::size_t> pivots = eliminate(&aug);
  if (pivots.size() != rows_ || (rows_ > 0 && pivots.back() >= cols_)) {
    return Status::invalid("singular matrix");
  }
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    if (pivots[i] != i) return Status::invalid("singular matrix");
  }
  Matrix inv(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) inv.at(r, c) = aug.at(r, cols_ + c);
  }
  return inv;
}

std::vector<RVec> Matrix::nullspace() const {
  Matrix m = *this;
  std::vector<std::size_t> pivots = eliminate(&m);
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t c : pivots) is_pivot[c] = true;
  std::vector<RVec> basis;
  for (std::size_t fc = 0; fc < cols_; ++fc) {
    if (is_pivot[fc]) continue;
    RVec v(cols_);
    v[fc] = Rational(1);
    for (std::size_t pr = 0; pr < pivots.size(); ++pr) {
      v[pivots[pr]] = -m.at(pr, fc);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << at(r, c).to_string();
    }
    os << "]\n";
  }
  return os.str();
}

std::optional<RVec> solve_square(const Matrix& a, const RVec& b) {
  CQA_CHECK(a.rows() == a.cols());
  return solve_any(a, b);
}

std::optional<RVec> solve_any(const Matrix& a, const RVec& b) {
  CQA_CHECK(a.rows() == b.size());
  Matrix aug(a.rows(), a.cols() + 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) aug.at(r, c) = a.at(r, c);
    aug.at(r, a.cols()) = b[r];
  }
  std::vector<std::size_t> pivots = eliminate(&aug);
  // Inconsistent iff some pivot sits in the augmented column.
  if (!pivots.empty() && pivots.back() == a.cols()) return std::nullopt;
  RVec x(a.cols());
  for (std::size_t pr = 0; pr < pivots.size(); ++pr) {
    x[pivots[pr]] = aug.at(pr, a.cols());
  }
  return x;
}

std::size_t rank_of(const std::vector<RVec>& vectors) {
  if (vectors.empty()) return 0;
  return Matrix::from_rows(vectors).rank();
}

int affine_hull_dim(const std::vector<RVec>& points) {
  if (points.empty()) return -1;
  std::vector<RVec> diffs;
  for (std::size_t i = 1; i < points.size(); ++i) {
    diffs.push_back(vec_sub(points[i], points[0]));
  }
  return static_cast<int>(rank_of(diffs));
}

}  // namespace cqa
