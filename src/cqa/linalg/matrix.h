// Dense exact linear algebra over Rational.
//
// Sized for the paper's workloads: vertex enumeration solves n x n systems,
// interpolation solves Vandermonde-like systems, affine-hull dimension is a
// rank computation. Everything is fraction-free-safe because Rational
// normalizes after each operation.

#ifndef CQA_LINALG_MATRIX_H_
#define CQA_LINALG_MATRIX_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cqa/arith/rational.h"
#include "cqa/util/status.h"

namespace cqa {

/// Exact rational vector.
using RVec = std::vector<Rational>;

/// a . b (sizes must match).
Rational dot(const RVec& a, const RVec& b);
/// a + b.
RVec vec_add(const RVec& a, const RVec& b);
/// a - b.
RVec vec_sub(const RVec& a, const RVec& b);
/// c * a.
RVec vec_scale(const Rational& c, const RVec& a);
/// True iff every entry is zero.
bool vec_is_zero(const RVec& a);

/// Dense matrix of Rationals, row-major.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  /// From nested initializer data; all rows must have equal length.
  static Matrix from_rows(const std::vector<RVec>& rows);
  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Rational& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Rational& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  RVec row(std::size_t r) const;
  RVec col(std::size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& o) const;
  RVec apply(const RVec& v) const;

  /// Rank via Gaussian elimination.
  std::size_t rank() const;
  /// Determinant; aborts unless square.
  Rational determinant() const;
  /// Inverse, or error if singular / non-square.
  Result<Matrix> inverse() const;

  /// Basis of the (right) nullspace, one RVec per basis vector.
  std::vector<RVec> nullspace() const;

  std::string to_string() const;

 private:
  std::size_t rows_, cols_;
  std::vector<Rational> data_;
};

/// Solves A x = b for square nonsingular A; nullopt if singular (or any
/// consistent solution does not exist). A must be square.
std::optional<RVec> solve_square(const Matrix& a, const RVec& b);

/// Solves the (possibly rectangular) system A x = b. Returns one solution
/// if consistent, nullopt otherwise.
std::optional<RVec> solve_any(const Matrix& a, const RVec& b);

/// Rank of the set of vectors (as rows).
std::size_t rank_of(const std::vector<RVec>& vectors);

/// Dimension of the affine hull of the given points (-1 for empty input,
/// 0 for a single point, etc.).
int affine_hull_dim(const std::vector<RVec>& points);

}  // namespace cqa

#endif  // CQA_LINALG_MATRIX_H_
