// Resource governance for the exact query path.
//
// Section 3 of the paper (the Karpinski-Macintyre example) shows exact
// quantifier elimination can blow up to >= 10^9 atomic subformulae. In a
// service that is an OOM / latency bomb, not a theorem, so every exact
// stage -- QE recursion, Fourier-Motzkin eliminations, the semilinear
// sweep, and BigInt arithmetic -- charges a per-session WorkMeter and
// stops early (Status::resource_exhausted) once a ResourceQuota trips.
// The planner then treats the trip exactly like deadline expiry and
// degrades exact -> MC -> Hoeffding-shrunk partial -> trivial-1/2
// instead of aborting.
//
// Design constraints this header answers:
//  * cqa_arith is the bottom of the library stack, so the meter must be
//    header-only (no cqa_guard link dependency from BigInt).
//  * BigInt operators cannot take a meter parameter or return Status, so
//    hot arithmetic reads a thread-local meter slot (MeterScope) and the
//    trip is *sticky*: the op that trips still completes correctly and
//    the enclosing loop (QE cell, FM row, sweep section) notices at its
//    next poll point and unwinds with a typed error.
//  * Quotas are estimates of work/footprint, not a hardening allocator:
//    they bound growth to within one unit of work of the limit.
//
// All counters use relaxed atomics: the meter is a governor, not a
// synchronization point, and exact totals one-op stale are fine.

#ifndef CQA_GUARD_METER_H_
#define CQA_GUARD_METER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "cqa/util/status.h"

namespace cqa {
namespace guard {

/// Which quota a WorkMeter charge is accounted against.
enum class QuotaKind : int {
  kQeAtoms = 0,      // cumulative atoms materialized across QE rewriting
  kFmRows,           // constraints produced by a single FM elimination
  kSweepSections,    // cumulative section evaluations in the exact sweep
  kBigIntBits,       // peak bit-length of any BigInt operand/result
  kResidentBytes,    // cumulative resident-footprint estimate
};

inline constexpr int kNumQuotaKinds = 5;

inline const char* quota_kind_name(QuotaKind k) {
  switch (k) {
    case QuotaKind::kQeAtoms: return "qe_atoms";
    case QuotaKind::kFmRows: return "fm_rows";
    case QuotaKind::kSweepSections: return "sweep_sections";
    case QuotaKind::kBigIntBits: return "bigint_bits";
    case QuotaKind::kResidentBytes: return "resident_bytes";
  }
  return "unknown";
}

/// Per-request resource ceilings. 0 means "unlimited" for that axis.
///
/// The defaults are safe-by-default service limits: generous enough
/// that every workload in tests/ and bench/ runs to completion, tight
/// enough that a Karpinski-Macintyre blowup trips long before the
/// process OOMs (10^9 atoms would exceed max_qe_atoms by ~250x).
struct ResourceQuota {
  std::size_t max_qe_atoms = 4'000'000;
  std::size_t max_fm_rows = 250'000;  // per single elimination
  std::size_t max_sweep_sections = 500'000;
  std::size_t max_bigint_bits = 1'000'000;
  std::size_t max_resident_bytes = std::size_t{1} << 30;  // 1 GiB estimate

  /// No ceilings at all ("quotas off").
  static ResourceQuota unlimited() {
    ResourceQuota q;
    q.max_qe_atoms = 0;
    q.max_fm_rows = 0;
    q.max_sweep_sections = 0;
    q.max_bigint_bits = 0;
    q.max_resident_bytes = 0;
    return q;
  }

  std::size_t limit(QuotaKind k) const {
    switch (k) {
      case QuotaKind::kQeAtoms: return max_qe_atoms;
      case QuotaKind::kFmRows: return max_fm_rows;
      case QuotaKind::kSweepSections: return max_sweep_sections;
      case QuotaKind::kBigIntBits: return max_bigint_bits;
      case QuotaKind::kResidentBytes: return max_resident_bytes;
    }
    return 0;
  }
};

/// Snapshot of what a meter has accounted, for Answer reporting.
struct GuardUsage {
  std::uint64_t qe_atoms = 0;
  std::uint64_t fm_rows_peak = 0;
  std::uint64_t sweep_sections = 0;
  std::uint64_t bigint_bits_peak = 0;
  std::uint64_t resident_bytes = 0;
};

/// Per-session accounting handle. Thread-safe; charge_* return false
/// once the corresponding quota (or any earlier one) has tripped, and
/// the *first* tripped quota is recorded sticky so the caller can report
/// which ceiling ended the exact attempt.
class WorkMeter {
 public:
  WorkMeter() = default;
  explicit WorkMeter(const ResourceQuota& quota) : quota_(quota) {}
  WorkMeter(const WorkMeter&) = delete;
  WorkMeter& operator=(const WorkMeter&) = delete;

  const ResourceQuota& quota() const { return quota_; }

  /// Cumulative charges. Return true while within quota.
  bool charge_qe_atoms(std::size_t n) {
    const std::uint64_t total =
        qe_atoms_.fetch_add(n, std::memory_order_relaxed) + n;
    return within(QuotaKind::kQeAtoms, total);
  }
  bool charge_resident_bytes(std::size_t n) {
    const std::uint64_t total =
        resident_bytes_.fetch_add(n, std::memory_order_relaxed) + n;
    return within(QuotaKind::kResidentBytes, total);
  }
  bool charge_sweep_section() {
    const std::uint64_t total =
        sweep_sections_.fetch_add(1, std::memory_order_relaxed) + 1;
    return within(QuotaKind::kSweepSections, total);
  }

  /// High-water charges: `n` is the current size, not a delta.
  bool charge_fm_rows(std::size_t n) {
    raise_peak(fm_rows_peak_, n);
    return within(QuotaKind::kFmRows, n);
  }
  bool charge_bigint_bits(std::size_t bits) {
    raise_peak(bigint_bits_peak_, bits);
    return within(QuotaKind::kBigIntBits, bits);
  }

  /// Observability-only counter (no quota): BigInt heap-node acquisitions
  /// from the limb arena while this meter was bound. Lets tests pin "this
  /// path runs allocation-free" -- the small-value FM pivot contract.
  /// Deliberately not part of GuardUsage: GuardUsage is wire-serialized.
  void note_bigint_heap_node() {
    bigint_heap_nodes_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t bigint_heap_nodes() const {
    return bigint_heap_nodes_.load(std::memory_order_relaxed);
  }

  bool tripped() const {
    return tripped_.load(std::memory_order_relaxed) >= 0;
  }

  /// Which quota tripped first; meaningless unless tripped().
  QuotaKind tripped_kind() const {
    return static_cast<QuotaKind>(tripped_.load(std::memory_order_relaxed));
  }

  /// OK while within quota; kResourceExhausted naming the first tripped
  /// quota otherwise. Poll at loop boundaries like CancelToken::check().
  Status check() const {
    if (!tripped()) return Status::ok();
    return Status::resource_exhausted(std::string("quota exceeded: ") +
                                      quota_kind_name(tripped_kind()));
  }

  GuardUsage usage() const {
    GuardUsage u;
    u.qe_atoms = qe_atoms_.load(std::memory_order_relaxed);
    u.fm_rows_peak = fm_rows_peak_.load(std::memory_order_relaxed);
    u.sweep_sections = sweep_sections_.load(std::memory_order_relaxed);
    u.bigint_bits_peak = bigint_bits_peak_.load(std::memory_order_relaxed);
    u.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
    return u;
  }

 private:
  bool within(QuotaKind k, std::uint64_t total) {
    const std::size_t limit = quota_.limit(k);
    if (limit != 0 && total > limit) trip(k);
    return !tripped();
  }

  void trip(QuotaKind k) {
    int expected = -1;  // record only the first tripped quota
    tripped_.compare_exchange_strong(expected, static_cast<int>(k),
                                     std::memory_order_relaxed);
  }

  static void raise_peak(std::atomic<std::uint64_t>& peak, std::uint64_t v) {
    std::uint64_t cur = peak.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  ResourceQuota quota_;
  std::atomic<std::uint64_t> qe_atoms_{0};
  std::atomic<std::uint64_t> fm_rows_peak_{0};
  std::atomic<std::uint64_t> sweep_sections_{0};
  std::atomic<std::uint64_t> bigint_bits_peak_{0};
  std::atomic<std::uint64_t> resident_bytes_{0};
  std::atomic<std::uint64_t> bigint_heap_nodes_{0};
  std::atomic<int> tripped_{-1};
};

/// Thread-local meter slot for code that cannot take a meter parameter
/// (BigInt operators deep in cqa_arith). A function-local thread_local
/// keeps this header-only and the read is one TLS load + null check.
inline WorkMeter*& thread_meter_slot() {
  static thread_local WorkMeter* slot = nullptr;
  return slot;
}

inline WorkMeter* current_thread_meter() { return thread_meter_slot(); }

/// RAII binding of a meter to the current thread; nests (restores the
/// previous binding on destruction). Session binds its meter for the
/// duration of run() so single-threaded exact arithmetic is metered.
class MeterScope {
 public:
  explicit MeterScope(WorkMeter* meter) : previous_(thread_meter_slot()) {
    thread_meter_slot() = meter;
  }
  ~MeterScope() { thread_meter_slot() = previous_; }
  MeterScope(const MeterScope&) = delete;
  MeterScope& operator=(const MeterScope&) = delete;

 private:
  WorkMeter* previous_;
};

/// BigInt hook: charge the current thread's meter (if any) with an
/// operand/result bit-length. Never throws, never fails the operation --
/// the sticky trip is observed by the enclosing engine loop.
inline void charge_bigint_bits_tl(std::size_t bits) {
  WorkMeter* m = current_thread_meter();
  if (m != nullptr) m->charge_bigint_bits(bits);
}

/// Arena hook: count a BigInt heap-node acquisition against the current
/// thread's meter (if any). Pure observability; never trips a quota.
inline void note_bigint_heap_node_tl() {
  WorkMeter* m = current_thread_meter();
  if (m != nullptr) m->note_bigint_heap_node();
}

/// "expired()"-style shorthand for the nullptr-means-unmetered calling
/// convention used by fm_eliminate / sweep loops.
inline bool meter_tripped(const WorkMeter* m) {
  return m != nullptr && m->tripped();
}

}  // namespace guard
}  // namespace cqa

#endif  // CQA_GUARD_METER_H_
