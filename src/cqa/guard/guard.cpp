#include "cqa/guard/guard.h"

#include <cstdio>

namespace cqa {
namespace guard {

FaultPlan FaultPlan::random(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  // 1..3 active sites, rate drawn from a menu spanning "rare" to
  // "always": rare rates exercise recovery mid-computation, rate 1.0
  // exercises the first hook on the path.
  static constexpr double kRates[] = {0.01, 0.05, 0.2, 1.0};
  const std::uint64_t h0 = fault_mix(seed ^ 0xc4a05u);
  const std::size_t active = 1 + static_cast<std::size_t>(h0 % 3);
  for (std::size_t pick = 0; pick < active; ++pick) {
    const std::uint64_t h = fault_mix(seed ^ (0x9e37u + pick * 0x85ebca6bULL));
    const std::size_t site =
        static_cast<std::size_t>(h % kNumEngineFaultSites);
    plan.rate[site] = kRates[(h >> 8) % (sizeof(kRates) / sizeof(kRates[0]))];
  }
  return plan;
}

const char* rung_name(Rung r) {
  switch (r) {
    case Rung::kNone: return "none";
    case Rung::kExact: return "exact";
    case Rung::kMonteCarlo: return "mc";
    case Rung::kMcPartial: return "mc_partial";
    case Rung::kTrivialHalf: return "trivial_half";
  }
  return "unknown";
}

std::string GuardReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "rung=%s tripped=%s%s%s%s qe_atoms=%llu fm_rows_peak=%llu "
                "sweep_sections=%llu bigint_bits_peak=%llu resident_bytes=%llu",
                rung_name(rung),
                quota_tripped ? tripped_quota.c_str() : "none",
                shed ? " shed=1" : "",
                worker_crashed ? " worker_crashed=1" : "",
                worker_hung ? " worker_hung=1" : "",
                static_cast<unsigned long long>(usage.qe_atoms),
                static_cast<unsigned long long>(usage.fm_rows_peak),
                static_cast<unsigned long long>(usage.sweep_sections),
                static_cast<unsigned long long>(usage.bigint_bits_peak),
                static_cast<unsigned long long>(usage.resident_bytes));
  return buf;
}

GuardReport make_report(const WorkMeter& meter) {
  GuardReport report;
  report.usage = meter.usage();
  report.quota_tripped = meter.tripped();
  if (report.quota_tripped) {
    report.tripped_quota = quota_kind_name(meter.tripped_kind());
  }
  return report;
}

std::string plan_to_string(const FaultPlan& plan) {
  std::string out = "seed=" + std::to_string(plan.seed);
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    if (plan.rate[i] <= 0.0) continue;
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%g",
                  fault_site_name(static_cast<FaultSite>(i)), plan.rate[i]);
    out += buf;
  }
  if (!plan.any()) out += " (no faults)";
  return out;
}

}  // namespace guard
}  // namespace cqa
