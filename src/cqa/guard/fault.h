// Deterministic fault injection for chaos-hardening the query path.
//
// A FaultPlan is a seeded set of per-site firing rates; a FaultInjector
// turns the plan into a deterministic fire/no-fire sequence (hash of
// seed, site, and a per-site arrival counter -- no global RNG state, so
// a plan replays bit-identically given the same arrival order per
// site). Faults are injected *below* the oracle layer:
//
//   kBigIntAlloc     BigInt multiply/divmod throws std::bad_alloc
//   kCachePoison     EvalCache stores a corrupted checksum (reads are
//                    checksum-verified, so poison must be *detected*)
//   kSpuriousCancel  sampler chunks / sweep sections act as if the
//                    CancelToken fired
//   kSlowChunk       a sampler chunk sleeps ~1ms (latency, not error)
//   kWorkerThrow     a ThreadPool worker task throws before running
//   kCompileMembership  CompiledMembership::compile aborts with
//                    kResourceExhausted (models quota trips during MC
//                    plan lowering; sessions must degrade, not error)
//
// The wire sites extend the same deterministic SplitMix64 discipline to
// the network boundary. They have no hooks inside the engines; the
// served::ChaosProxy / ChaosSocket layer owns a private FaultInjector
// and consults them per forwarded chunk, so a chaos schedule over the
// wire replays exactly like an in-process FaultPlan:
//
//   kWireTornFrame     a frame is truncated mid-body, then the
//                      connection closes (client must see a typed
//                      retryable error, never a half answer)
//   kWireStalledWrite  a forwarded chunk stalls (latency; exercises
//                      per-attempt deadlines carved from the budget)
//   kWireDisconnect    the connection drops abruptly on a frame
//                      boundary (connection-level failure: safe retry)
//   kWireBitFlip       one bit of a forwarded chunk flips (must be
//                      caught by the frame checksum, never decoded)
//   kWireBlackhole     a connection accepts but never forwards a byte
//                      (models a black-holed host; connect/call
//                      timeouts must fire)
//
// Hook sites call fault_fires(site), which is a single relaxed atomic
// load + null check when no injector is installed -- zero-cost-when-off
// in the sense that production binaries pay one predictable branch.
//
// Header-only for the same layering reason as meter.h: cqa_arith and
// cqa_runtime both contain hook sites and sit below any guard library.

#ifndef CQA_GUARD_FAULT_H_
#define CQA_GUARD_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cqa {
namespace guard {

enum class FaultSite : int {
  kBigIntAlloc = 0,
  kCachePoison,
  kSpuriousCancel,
  kSlowChunk,
  kWorkerThrow,
  kCompileMembership,
  // Wire sites (served::ChaosProxy / ChaosSocket only; no engine hooks).
  kWireTornFrame,
  kWireStalledWrite,
  kWireDisconnect,
  kWireBitFlip,
  kWireBlackhole,
};

/// Sites with hooks inside the engines -- the ones FaultPlan::random
/// draws from for in-process chaos trials. The wire sites past this
/// index only fire inside the chaos proxy layer.
inline constexpr std::size_t kNumEngineFaultSites = 6;
inline constexpr std::size_t kNumFaultSites = 11;

inline const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kBigIntAlloc: return "bigint_alloc";
    case FaultSite::kCachePoison: return "cache_poison";
    case FaultSite::kSpuriousCancel: return "spurious_cancel";
    case FaultSite::kSlowChunk: return "slow_chunk";
    case FaultSite::kWorkerThrow: return "worker_throw";
    case FaultSite::kCompileMembership: return "compile_membership";
    case FaultSite::kWireTornFrame: return "wire_torn_frame";
    case FaultSite::kWireStalledWrite: return "wire_stalled_write";
    case FaultSite::kWireDisconnect: return "wire_disconnect";
    case FaultSite::kWireBitFlip: return "wire_bit_flip";
    case FaultSite::kWireBlackhole: return "wire_blackhole";
  }
  return "unknown";
}

/// Seeded per-site firing rates in [0, 1].
struct FaultPlan {
  std::uint64_t seed = 0;
  double rate[kNumFaultSites] = {};

  bool any() const {
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
      if (rate[i] > 0.0) return true;
    }
    return false;
  }

  static FaultPlan none() { return FaultPlan{}; }

  /// Deterministic random plan for chaos runs: picks 1..3 active
  /// *engine* sites (wire sites have no in-process hooks) and a rate
  /// per site from {0.01, 0.05, 0.2, 1.0}. Defined in guard.cpp (not
  /// needed by hot-path hook sites).
  static FaultPlan random(std::uint64_t seed);
};

/// SplitMix64 -- the same finalizer family the sampler streams use;
/// good avalanche, no state beyond the input.
inline std::uint64_t fault_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Turns a FaultPlan into a deterministic fire sequence and counts both
/// checks and fires per site (chaos asserts every fired fault is
/// observable). Thread-safe; arrival order across threads decides which
/// check fires, but the *number* of fires for a given number of checks
/// per site is deterministic only per-site-arrival -- chaos treats fire
/// counts as observations, not expectations.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  bool should_fire(FaultSite site) {
    const auto i = static_cast<std::size_t>(site);
    const std::uint64_t n = checks_[i].fetch_add(1, std::memory_order_relaxed);
    const double r = plan_.rate[i];
    if (r <= 0.0) return false;
    bool fire = r >= 1.0;
    if (!fire) {
      const std::uint64_t h =
          fault_mix(plan_.seed ^ (0x5177u + i * 0x9e3779b9u) ^ (n * 0xff51afd7ULL));
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 < r;
    }
    if (fire) fired_[i].fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

  std::uint64_t fired(FaultSite site) const {
    return fired_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t checks(FaultSite site) const {
    return checks_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t fired_total() const {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
      t += fired_[i].load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> checks_[kNumFaultSites] = {};
  std::atomic<std::uint64_t> fired_[kNumFaultSites] = {};
};

/// Global injector slot. One injector at a time, installed only by the
/// chaos harness / tests; hook sites tolerate concurrent uninstall only
/// in the sense that the chaos runner joins all engine work before
/// swapping injectors (same discipline as MetricsRegistry absorption).
inline std::atomic<FaultInjector*>& fault_injector_slot() {
  static std::atomic<FaultInjector*> slot{nullptr};
  return slot;
}

inline void install_fault_injector(FaultInjector* injector) {
  fault_injector_slot().store(injector, std::memory_order_release);
}

inline FaultInjector* current_fault_injector() {
  return fault_injector_slot().load(std::memory_order_acquire);
}

/// The hook every site calls. No injector installed = one atomic load.
inline bool fault_fires(FaultSite site) {
  FaultInjector* f = current_fault_injector();
  return f != nullptr && f->should_fire(site);
}

/// RAII install/uninstall for one chaos trial.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector) {
    install_fault_injector(injector);
  }
  ~ScopedFaultInjector() { install_fault_injector(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
};

}  // namespace guard
}  // namespace cqa

#endif  // CQA_GUARD_FAULT_H_
