// cqa::guard umbrella: resource-governance report types plus the
// non-hot-path pieces of fault injection (random plan construction,
// plan rendering). Hot-path hooks live header-only in meter.h/fault.h.

#ifndef CQA_GUARD_GUARD_H_
#define CQA_GUARD_GUARD_H_

#include <string>

#include "cqa/guard/fault.h"
#include "cqa/guard/meter.h"

namespace cqa {
namespace guard {

/// Degradation rung that ultimately served a volume query. Mirrors the
/// planner ladder: exact sweep, full Monte-Carlo, Hoeffding-shrunk
/// partial Monte-Carlo, trivial [0,1] bars with estimate 1/2.
enum class Rung : int {
  kNone = 0,     // non-volume request (rewrite / cells / ask)
  kExact,
  kMonteCarlo,
  kMcPartial,
  kTrivialHalf,
};

const char* rung_name(Rung r);

/// What was metered, what (if anything) tripped, and which rung served
/// the query. Attached to every Session Answer.
struct GuardReport {
  GuardUsage usage;
  bool quota_tripped = false;
  std::string tripped_quota;  // quota_kind_name(..), "" when none
  Rung rung = Rung::kNone;
  /// True when the serving layer shed this request at admission (queue
  /// over capacity): the answer is the last rung, computed without
  /// running any engine.
  bool shed = false;
  /// True when the worker process executing this request died (crash,
  /// OOM kill, kill -9) and the sharded front degraded the in-flight
  /// request honestly instead of leaving the caller hung. The answer is
  /// the last rung; the crash cost one shard, not the service.
  bool worker_crashed = false;
  /// True when the watchdog declared the worker wedged (frozen
  /// heartbeat or stalled in-flight progress past the budget), killed
  /// it (SIGTERM, timed wait, SIGKILL), and resolved this in-flight
  /// request honestly before respawning the shard. Same last-rung
  /// contract as worker_crashed; the flag names the escalation path.
  bool worker_hung = false;

  std::string to_string() const;
};

/// Builds the report skeleton (usage + trip info) from a meter.
GuardReport make_report(const WorkMeter& meter);

/// Renders a FaultPlan for logs: "seed=7 bigint_alloc=0.05 ...".
std::string plan_to_string(const FaultPlan& plan);

}  // namespace guard
}  // namespace cqa

#endif  // CQA_GUARD_GUARD_H_
