#include "cqa/plan/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "cqa/vc/sample_bounds.h"

namespace cqa {

namespace {

// Saturating helpers so pathological formulas cannot overflow the
// estimates.
std::size_t sat_add(std::size_t a, std::size_t b, std::size_t cap) {
  return (a > cap - b) ? cap : a + b;
}

std::size_t sat_mul(std::size_t a, std::size_t b, std::size_t cap) {
  if (a == 0 || b == 0) return 0;
  if (a > cap / b) return cap;
  return a * b;
}

std::size_t dnf_rec(const FormulaPtr& f, std::size_t cap) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kAtom:
    case Formula::Kind::kPredicate:
      return 1;
    case Formula::Kind::kNot:
      // NNF pushes the negation to the atoms; a negated conjunction
      // becomes a disjunction, so mirror And<->Or through the Not.
      switch (f->children()[0]->kind()) {
        case Formula::Kind::kAnd: {
          std::size_t total = 0;
          for (const auto& c : f->children()[0]->children()) {
            total = sat_add(total, dnf_rec(Formula::f_not(c), cap), cap);
          }
          return std::max<std::size_t>(1, total);
        }
        case Formula::Kind::kOr: {
          std::size_t total = 1;
          for (const auto& c : f->children()[0]->children()) {
            total = sat_mul(total, dnf_rec(Formula::f_not(c), cap), cap);
          }
          return total;
        }
        default:
          return dnf_rec(f->children()[0], cap);
      }
    case Formula::Kind::kAnd: {
      std::size_t total = 1;
      for (const auto& c : f->children()) {
        total = sat_mul(total, dnf_rec(c, cap), cap);
      }
      return total;
    }
    case Formula::Kind::kOr: {
      std::size_t total = 0;
      for (const auto& c : f->children()) {
        total = sat_add(total, dnf_rec(c, cap), cap);
      }
      return std::max<std::size_t>(1, total);
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return dnf_rec(f->children()[0], cap);
  }
  return 1;
}

}  // namespace

std::size_t dnf_size_estimate(const FormulaPtr& f, std::size_t cap) {
  if (f == nullptr) return 1;
  return std::max<std::size_t>(1, dnf_rec(f, cap));
}

FormulaStats extract_stats(const FormulaPtr& analysis,
                           std::size_t dimension, std::size_t quantifiers,
                           const CostModel& model) {
  FormulaStats s;
  s.dimension = dimension;
  s.quantifiers = quantifiers;
  if (analysis == nullptr) return s;
  s.atoms = analysis->count_atoms();
  s.linear = analysis->is_linear();
  s.quantifier_free = analysis->is_quantifier_free();
  s.cell_estimate = dnf_size_estimate(analysis);
  // Proposition 6's route: the Goldberg-Jerrum constant for the query,
  // capped so the Blumer bound stays in serving range. (The raw C is a
  // worst-case learning-theory constant in the hundreds; the cap is the
  // pragmatic knob, and the bench validates the resulting sample sizes.)
  const double c = goldberg_jerrum_constant(
      std::max<std::size_t>(1, dimension), /*p=*/2,
      /*q=*/quantifiers, /*degree=*/s.linear ? 1 : 2,
      std::max<std::size_t>(1, s.atoms));
  const double pragmatic =
      static_cast<double>(dimension) + 1.0 +
      std::log2(static_cast<double>(s.atoms) + 1.0);
  s.vc_dim = std::min({c, pragmatic, model.vc_dim_cap});
  s.vc_dim = std::max(s.vc_dim, 1.0);
  return s;
}

double hoeffding_epsilon(double delta, std::size_t n) {
  if (n == 0) return 0.5;
  const double d = std::min(std::max(delta, 1e-12), 0.999);
  const double e = std::sqrt(std::log(2.0 / d) / (2.0 * static_cast<double>(n)));
  return std::min(e, 0.5);
}

const char* strategy_name(VolumeStrategy s) {
  switch (s) {
    case VolumeStrategy::kAuto: return "exact";
    case VolumeStrategy::kExactSweep: return "exact_sweep";
    case VolumeStrategy::kInclusionExclusion: return "inclusion_exclusion";
    case VolumeStrategy::kVariableIndependent: return "variable_independent";
    case VolumeStrategy::kMonteCarlo: return "mc";
    case VolumeStrategy::kEllipsoidBounds: return "ellipsoid";
    case VolumeStrategy::kTrivialHalf: return "trivial_half";
    case VolumeStrategy::kHitAndRun: return "hit_and_run";
  }
  return "unknown";
}

namespace {

double exact_cost_ns(const FormulaStats& s, const CostModel& m) {
  const double cells = static_cast<double>(s.cell_estimate);
  const double dim = static_cast<double>(std::max<std::size_t>(1, s.dimension));
  // The sweep recurses per section and enumerates arrangement vertices:
  // superlinear in the cell count, exponential-ish in dimension. cells^2
  // * dim gets the ordering right across the bench workload.
  return m.decompose_cell_ns * cells + m.exact_cell_ns * cells * cells * dim;
}

double mc_cost_ns(const FormulaStats& s, const CostModel& m,
                  std::size_t samples) {
  return m.mc_point_ns * static_cast<double>(samples) *
         static_cast<double>(s.atoms + 1);
}

double har_cost_ns(const FormulaStats& s, const CostModel& m,
                   std::size_t samples_per_phase) {
  const double dim = static_cast<double>(std::max<std::size_t>(2, s.dimension));
  // phases ~ dim * log(radius ratio); model with dim + 2.
  return m.har_sample_ns * static_cast<double>(samples_per_phase) *
         (dim + 2.0) * dim;
}

std::string ns_note(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "~%.2f ms", ns / 1e6);
  return buf;
}

}  // namespace

PlanDecision plan_volume(const FormulaStats& stats, const Budget& budget,
                         const CostModel& model) {
  PlanDecision d;
  d.stats = stats;
  d.budget = budget;

  const double deadline_ns =
      budget.has_deadline()
          ? static_cast<double>(budget.deadline_ms) * 1e6 *
                model.deadline_safety
          : std::numeric_limits<double>::infinity();

  const std::size_t blumer =
      blumer_sample_bound(std::min(std::max(budget.epsilon, 1e-6), 0.999),
                          std::min(std::max(budget.delta, 1e-9), 0.999),
                          stats.vc_dim);

  // --- Price every candidate -----------------------------------------
  PlannedStrategy exact;
  exact.strategy = VolumeStrategy::kAuto;
  exact.feasible = stats.linear;
  exact.err = 0.0;
  exact.meets_accuracy = exact.feasible;
  exact.predicted_ns = exact_cost_ns(stats, model);
  exact.note = exact.feasible ? ns_note(exact.predicted_ns)
                              : "nonlinear: no exact cell decomposition";

  PlannedStrategy mc;
  mc.strategy = VolumeStrategy::kMonteCarlo;
  mc.feasible = stats.quantifier_free;
  mc.err = budget.epsilon;
  mc.meets_accuracy = mc.feasible;
  mc.predicted_ns = mc_cost_ns(stats, model, blumer);
  mc.note = mc.feasible
                ? "M=" + std::to_string(blumer) + " " +
                      ns_note(mc.predicted_ns)
                : "quantified after inlining: no membership test";

  PlannedStrategy har;
  har.strategy = VolumeStrategy::kHitAndRun;
  constexpr std::size_t kHarSamples = 4000;
  har.feasible =
      stats.linear && stats.cell_estimate == 1 && stats.dimension >= 2;
  // Hit-and-run carries no (eps, delta) certificate; treat its error as
  // a mixing-limited heuristic so it only wins under loose budgets.
  har.err = 0.1;
  har.meets_accuracy = har.feasible && har.err <= budget.epsilon;
  har.predicted_ns = har_cost_ns(stats, model, kHarSamples);
  har.note = har.feasible ? ns_note(har.predicted_ns)
                          : "needs a single convex cell";

  PlannedStrategy trivial;
  trivial.strategy = VolumeStrategy::kTrivialHalf;
  trivial.feasible = true;  // the constant answer needs no decomposition
  trivial.err = 0.5;
  trivial.meets_accuracy = budget.epsilon >= 0.5;
  trivial.predicted_ns = 0.0;
  trivial.note = "constant 1/2, bars [0,1]";

  d.considered = {exact, mc, har, trivial};

  // --- Pick the cheapest candidate that honors the budget -------------
  const PlannedStrategy* best = nullptr;
  for (const PlannedStrategy& c : d.considered) {
    if (!c.feasible || !c.meets_accuracy) continue;
    if (c.predicted_ns > deadline_ns) continue;
    if (best == nullptr || c.predicted_ns < best->predicted_ns) best = &c;
  }
  if (best != nullptr) {
    d.chosen = best->strategy;
    d.expected_epsilon = best->err;
    if (best->strategy == VolumeStrategy::kMonteCarlo) {
      d.mc_samples = blumer;
    }
    d.rationale = std::string("cheapest within budget: ") +
                  strategy_name(d.chosen) + " (" + best->note + ")";
    return d;
  }

  // --- Degradation ladder ---------------------------------------------
  // Nothing meets (epsilon, deadline). Shrink Monte-Carlo to the sample
  // size the deadline affords; its Hoeffding error replaces epsilon.
  if (mc.feasible && budget.has_deadline()) {
    const double per_point_ns =
        model.mc_point_ns * static_cast<double>(stats.atoms + 1);
    const std::size_t affordable = static_cast<std::size_t>(
        std::max(0.0, deadline_ns / std::max(per_point_ns, 1.0)));
    const std::size_t m = std::min(blumer, affordable);
    if (m >= model.min_mc_samples) {
      d.chosen = VolumeStrategy::kMonteCarlo;
      d.mc_samples = m;
      d.expected_epsilon = hoeffding_epsilon(budget.delta, m);
      d.degrade_preplanned = d.expected_epsilon > budget.epsilon;
      d.rationale = "deadline-reduced MC: M=" + std::to_string(m) +
                    " (Blumer wanted " + std::to_string(blumer) + ")";
      return d;
    }
  }
  // (With no deadline a feasible MC always wins the main loop -- it
  // meets epsilon by construction and deadline_ns is infinite -- so the
  // only way to reach here deadline-free is with MC infeasible too.)

  // Last rung: Proposition 4's trivial half-approximation.
  d.chosen = VolumeStrategy::kTrivialHalf;
  d.expected_epsilon = 0.5;
  d.degrade_preplanned = budget.epsilon < 0.5;
  d.rationale = budget.has_deadline()
                    ? "deadline too tight for any sampling: trivial 1/2"
                    : "no feasible strategy for this query: trivial 1/2";
  return d;
}

std::string plan_to_string(const PlanDecision& d) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "plan: dim=%zu atoms=%zu cells~%zu vc=%.1f linear=%d "
                "qf=%d eps=%.3g delta=%.3g deadline_ms=%lld\n",
                d.stats.dimension, d.stats.atoms, d.stats.cell_estimate,
                d.stats.vc_dim, d.stats.linear ? 1 : 0,
                d.stats.quantifier_free ? 1 : 0, d.budget.epsilon,
                d.budget.delta,
                static_cast<long long>(d.budget.deadline_ms));
  out += line;
  for (const PlannedStrategy& c : d.considered) {
    std::snprintf(line, sizeof(line),
                  "  %-22s feasible=%d meets_eps=%d cost=%.3fms err=%.3g"
                  "  %s\n",
                  strategy_name(c.strategy), c.feasible ? 1 : 0,
                  c.meets_accuracy ? 1 : 0, c.predicted_ns / 1e6, c.err,
                  c.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  -> %s (expected_eps=%.3g%s)  %s\n",
                strategy_name(d.chosen), d.expected_epsilon,
                d.degrade_preplanned ? ", DEGRADED" : "",
                d.rationale.c_str());
  out += line;
  return out;
}

}  // namespace cqa
