// Cost-based adaptive volume planner: pick the paper's strategy per
// query under an accuracy/latency budget.
//
// The paper exposes three regimes with wildly different cost/accuracy
// profiles: exact FO+POLY+SUM volume for semi-linear sets (Theorem 3),
// (eps, delta) Monte-Carlo with VC-dimension sample bounds (Theorem 4),
// and the trivial half-approximation (Proposition 4); the convex-only
// hit-and-run estimator [15] sits between them. The planner extracts
// cheap structural statistics from the query (dimension, atom count, a
// DNF cell-count estimate, a capped Goldberg-Jerrum VC bound), prices
// each strategy with a calibrated cost model, and selects the cheapest
// one whose guaranteed error fits Budget.epsilon and whose predicted
// wall-clock fits Budget.deadline_ms.
//
// When nothing fits the deadline the plan degrades instead of failing:
// Monte-Carlo shrinks its sample to what the deadline affords (error
// bars widen by the Hoeffding bound, the answer is marked Degraded),
// and the last rung is Proposition 4's constant 1/2 with bars [0, 1].
// The planner is pure (stats in, decision out), so strategy selection
// is unit-testable without running any engine.

#ifndef CQA_PLAN_PLANNER_H_
#define CQA_PLAN_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/core/volume_engine.h"
#include "cqa/guard/meter.h"
#include "cqa/logic/formula.h"

namespace cqa {

/// Per-request accuracy/latency budget.
struct Budget {
  double epsilon = 0.05;        // target absolute volume error
  double delta = 0.05;          // failure probability (MC strategies)
  std::int64_t deadline_ms = -1;  // wall-clock cap; < 0 = none
  /// Resource ceilings for the exact pipeline (QE atoms, FM rows, sweep
  /// sections, BigInt bits, resident bytes). Defaults are safe service
  /// limits; guard::ResourceQuota::unlimited() turns metering into pure
  /// accounting. A tripped quota is treated like deadline expiry: the
  /// answer degrades down the ladder instead of erroring.
  guard::ResourceQuota quota;

  bool has_deadline() const { return deadline_ms >= 0; }
};

/// Structural statistics of one query, extracted before any engine runs.
struct FormulaStats {
  std::size_t dimension = 0;      // |output_vars|
  std::size_t atoms = 0;          // atomic subformulas after rewrite/inline
  std::size_t quantifiers = 0;    // in the parsed query (pre-QE)
  bool linear = false;            // FO+LIN after inlining (exact eligible)
  bool quantifier_free = false;   // membership-testable (MC eligible)
  std::size_t cell_estimate = 1;  // DNF-size estimate of the cell count
  double vc_dim = 4.0;            // capped Goldberg-Jerrum bound
};

/// Calibration constants of the cost model (nanoseconds). Defaults were
/// fitted on the bench_a3_planner workload; they only need to get the
/// *ordering* right, not absolute times.
struct CostModel {
  double exact_cell_ns = 60000.0;   // sweep work per cell^2 * dim unit
  double decompose_cell_ns = 25000.0;  // formula -> cells, per cell
  double mc_point_ns = 60.0;        // membership test per point per atom
  double har_sample_ns = 9000.0;    // hit-and-run per sample per dim
  double deadline_safety = 0.8;     // fraction of the deadline to plan for
  std::size_t min_mc_samples = 64;  // below this, MC is pointless
  double vc_dim_cap = 12.0;         // cap on the GJ bound fed to Blumer
};

/// One costed strategy candidate.
struct PlannedStrategy {
  VolumeStrategy strategy = VolumeStrategy::kAuto;
  bool feasible = false;        // can run on this query at all
  bool meets_accuracy = false;  // guaranteed error <= budget.epsilon
  double predicted_ns = 0.0;    // cost-model wall-clock estimate
  double err = 0.0;             // guaranteed error half-width
  std::string note;             // why infeasible / cost summary
};

/// The planner's verdict for one request.
struct PlanDecision {
  FormulaStats stats;
  Budget budget;
  std::vector<PlannedStrategy> considered;  // all candidates, priced
  VolumeStrategy chosen = VolumeStrategy::kAuto;
  std::size_t mc_samples = 0;       // sample size if an MC strategy chose
  double expected_epsilon = 0.0;    // error half-width of the chosen plan
  bool degrade_preplanned = false;  // plan already misses budget.epsilon
  std::string rationale;            // one-line human-readable summary
};

/// Upper estimate of the DNF cell count of a quantifier-free formula
/// (And = product, Or = sum, capped at `cap` to stay O(|f|)).
std::size_t dnf_size_estimate(const FormulaPtr& f, std::size_t cap = 100000);

/// Extracts planner statistics. `analysis` is the best formula available
/// for structure (the QE rewrite when it exists, else the inlined parse);
/// `quantifiers` should count the pre-rewrite query's quantifiers.
FormulaStats extract_stats(const FormulaPtr& analysis,
                           std::size_t dimension, std::size_t quantifiers,
                           const CostModel& model = {});

/// Two-sided Hoeffding error half-width for n Bernoulli samples at
/// confidence 1 - delta: sqrt(ln(2/delta) / 2n). Returns 0.5 for n == 0.
double hoeffding_epsilon(double delta, std::size_t n);

/// The last rung of the degradation ladder: Proposition 4's constant 1/2
/// with hard bars [0, 1]. Needs no decomposition, so it is always
/// available -- when a deadline expires before any work runs, when a
/// quota trips inside QE, or when the serving layer sheds at admission.
inline VolumeAnswer trivial_half_volume(bool degraded) {
  VolumeAnswer a;
  a.estimate = 0.5;
  a.lower = 0.0;
  a.upper = 1.0;
  a.degraded = degraded;
  return a;
}

/// The planner: pure function from stats + budget to a decision.
PlanDecision plan_volume(const FormulaStats& stats, const Budget& budget,
                         const CostModel& model = {});

/// Short lowercase tag for metrics/logs ("exact", "mc", "hit_and_run",
/// "trivial_half", ...).
const char* strategy_name(VolumeStrategy s);

/// Multi-line debug rendering of a decision (for logs and benches).
std::string plan_to_string(const PlanDecision& d);

}  // namespace cqa

#endif  // CQA_PLAN_PLANNER_H_
