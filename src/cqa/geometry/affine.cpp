#include "cqa/geometry/affine.h"

namespace cqa {

AffineMap AffineMap::scaling(std::size_t dim, const Rational& s) {
  Matrix a(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) a.at(i, i) = s;
  return AffineMap(std::move(a), RVec(dim));
}

AffineMap AffineMap::shear2d(const Rational& s) {
  Matrix a = Matrix::identity(2);
  a.at(0, 1) = s;
  return AffineMap(std::move(a), RVec(2));
}

AffineMap AffineMap::rotation2d(const Rational& t) {
  const Rational t2 = t * t;
  const Rational den = Rational(1) + t2;
  Matrix a(2, 2);
  a.at(0, 0) = (Rational(1) - t2) / den;
  a.at(0, 1) = -(Rational(2) * t) / den;
  a.at(1, 0) = (Rational(2) * t) / den;
  a.at(1, 1) = (Rational(1) - t2) / den;
  return AffineMap(std::move(a), RVec(2));
}

RVec AffineMap::apply(const RVec& x) const {
  return vec_add(a_.apply(x), b_);
}

Result<LinearCell> AffineMap::apply(const LinearCell& cell) const {
  CQA_CHECK(cell.dim() == dim());
  auto inv = a_.inverse();
  if (!inv.is_ok()) {
    return Status::invalid("AffineMap::apply: singular linear part");
  }
  // y = A x + b  =>  x = A^-1 (y - b). Constraint c.x <= r becomes
  // (c A^-1) y <= r + (c A^-1) b.
  LinearCell out(cell.dim());
  const Matrix& ai = inv.value();
  for (const auto& c : cell.constraints()) {
    LinearConstraint nc;
    nc.cmp = c.cmp;
    nc.coeffs.assign(dim(), Rational());
    for (std::size_t j = 0; j < dim(); ++j) {
      Rational s;
      for (std::size_t k = 0; k < dim(); ++k) {
        s += c.coeffs[k] * ai.at(k, j);
      }
      nc.coeffs[j] = s;
    }
    nc.rhs = c.rhs + dot(nc.coeffs, b_);
    out.add(std::move(nc));
  }
  return out;
}

AffineMap AffineMap::compose(const AffineMap& other) const {
  // (this o other)(x) = A (A' x + b') + b.
  return AffineMap(a_ * other.a_, vec_add(a_.apply(other.b_), b_));
}

}  // namespace cqa
