// Closed convex polyhedra in H-representation over Q.
//
// A Polyhedron is the topological closure of a LinearCell: volume is
// insensitive to boundaries, so the geometry layer works with closed cells
// (constraints <= and =) only.

#ifndef CQA_GEOMETRY_POLYHEDRON_H_
#define CQA_GEOMETRY_POLYHEDRON_H_

#include <optional>
#include <string>
#include <vector>

#include "cqa/constraint/linear_cell.h"

namespace cqa {

/// Closed convex polyhedron { x in R^dim : A x <= b, E x = f }.
class Polyhedron {
 public:
  /// From a cell (strict inequalities are relaxed to weak ones).
  explicit Polyhedron(const LinearCell& cell);
  /// Ambient dimension with no constraints (= all of R^dim).
  explicit Polyhedron(std::size_t dim) : cell_(dim) {}

  /// Axis-aligned box [lo, hi]^dim.
  static Polyhedron box(std::size_t dim, const Rational& lo,
                        const Rational& hi);
  /// Standard simplex { x >= 0, sum x_i <= s }.
  static Polyhedron simplex(std::size_t dim, const Rational& s);
  /// Convex hull of the given points (dim inferred; exact).
  /// Works in any dimension via a facet-enumeration over point subsets;
  /// intended for small inputs (tests, examples).
  static Result<Polyhedron> hull_of(const std::vector<RVec>& points);

  std::size_t dim() const { return cell_.dim(); }
  const LinearCell& cell() const { return cell_; }
  const std::vector<LinearConstraint>& constraints() const {
    return cell_.constraints();
  }

  bool is_empty() const { return !cell_.is_feasible(); }
  bool is_bounded() const { return cell_.is_bounded(); }
  bool contains(const RVec& p) const { return cell_.contains(p); }

  /// Adds a (closed) constraint.
  void add_constraint(LinearConstraint c) { cell_.add(c.closure()); }

  /// Intersection.
  Polyhedron intersect(const Polyhedron& o) const;

  /// Some point of the polyhedron, if nonempty.
  std::optional<RVec> any_point() const { return cell_.sample_point(); }

  std::string to_string() const { return cell_.to_string(); }

 private:
  LinearCell cell_;
};

}  // namespace cqa

#endif  // CQA_GEOMETRY_POLYHEDRON_H_
