// Exact affine maps and their action on points and cells.
//
// Used by the property tests (Vol(T(S)) = |det T| Vol(S)) and by the
// variable-independence ablation (rotations/shears defeat the product
// fast path without changing volume).

#ifndef CQA_GEOMETRY_AFFINE_H_
#define CQA_GEOMETRY_AFFINE_H_

#include "cqa/constraint/linear_cell.h"
#include "cqa/linalg/matrix.h"

namespace cqa {

/// x -> A x + b with A square and invertible (checked on use).
class AffineMap {
 public:
  AffineMap(Matrix a, RVec b) : a_(std::move(a)), b_(std::move(b)) {
    CQA_CHECK(a_.rows() == a_.cols());
    CQA_CHECK(a_.rows() == b_.size());
  }

  static AffineMap identity(std::size_t dim) {
    return AffineMap(Matrix::identity(dim), RVec(dim));
  }
  static AffineMap translation(RVec b) {
    std::size_t dim = b.size();
    return AffineMap(Matrix::identity(dim), std::move(b));
  }
  static AffineMap scaling(std::size_t dim, const Rational& s);
  /// 2-D shear (x, y) -> (x + s y, y).
  static AffineMap shear2d(const Rational& s);
  /// Exact rational "rotation" by a Pythagorean angle:
  /// (x, y) -> ((c x - s y), (s x + c y)) with c = (1-t^2)/(1+t^2),
  /// s = 2t/(1+t^2) -- an exact orthogonal map with determinant 1.
  static AffineMap rotation2d(const Rational& t);

  std::size_t dim() const { return b_.size(); }
  const Matrix& linear() const { return a_; }
  const RVec& offset() const { return b_; }
  Rational determinant() const { return a_.determinant(); }

  RVec apply(const RVec& x) const;

  /// Image of a cell: { A x + b : x in cell }. Requires invertible A.
  Result<LinearCell> apply(const LinearCell& cell) const;

  /// Composition: this after other.
  AffineMap compose(const AffineMap& other) const;

 private:
  Matrix a_;
  RVec b_;
};

}  // namespace cqa

#endif  // CQA_GEOMETRY_AFFINE_H_
