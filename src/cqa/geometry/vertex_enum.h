// Exact vertex enumeration for bounded polyhedra.
//
// Brute-force over constraint subsets: every vertex of a polytope in R^n
// is the unique solution of n linearly independent active constraints.
// O(C(m, n)) -- fine at the paper's scale, and exact.

#ifndef CQA_GEOMETRY_VERTEX_ENUM_H_
#define CQA_GEOMETRY_VERTEX_ENUM_H_

#include <vector>

#include "cqa/geometry/polyhedron.h"

namespace cqa {

/// All vertices of the polyhedron, deduplicated, in lexicographic order.
/// For unbounded or empty polyhedra returns the (possibly empty) set of
/// basic feasible points that are genuine vertices.
std::vector<RVec> enumerate_vertices(const Polyhedron& p);

/// Dimension of the polyhedron (affine hull of its points): -1 if empty.
/// Requires boundedness for exactness (vertices span a bounded polytope).
int polytope_dimension(const Polyhedron& p);

}  // namespace cqa

#endif  // CQA_GEOMETRY_VERTEX_ENUM_H_
