#include "cqa/geometry/hull2d.h"

#include <algorithm>
#include <array>

#include "cqa/util/status.h"

namespace cqa {

Rational cross(const Point2& a, const Point2& b, const Point2& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

std::vector<Point2> convex_hull(std::vector<Point2> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n <= 2) return points;
  std::vector<Point2> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           cross(hull[k - 2], hull[k - 1], points[i]).sign() <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           cross(hull[k - 2], hull[k - 1], points[i]).sign() <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return hull;
}

Rational polygon_area(const std::vector<Point2>& polygon) {
  Rational twice;
  const std::size_t n = polygon.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point2& a = polygon[i];
    const Point2& b = polygon[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice.abs() * Rational(1, 2);
}

Rational triangle_area(const Point2& a, const Point2& b, const Point2& c) {
  return cross(a, b, c).abs() * Rational(1, 2);
}

bool convex_contains(const std::vector<Point2>& hull, const Point2& q) {
  const std::size_t n = hull.size();
  if (n == 0) return false;
  if (n == 1) return hull[0] == q;
  if (n == 2) {
    // On the segment?
    if (cross(hull[0], hull[1], q).sign() != 0) return false;
    return std::min(hull[0].x, hull[1].x) <= q.x &&
           q.x <= std::max(hull[0].x, hull[1].x) &&
           std::min(hull[0].y, hull[1].y) <= q.y &&
           q.y <= std::max(hull[0].y, hull[1].y);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (cross(hull[i], hull[(i + 1) % n], q).sign() < 0) return false;
  }
  return true;
}

std::vector<std::array<Point2, 3>> fan_triangulate(
    const std::vector<Point2>& hull) {
  std::vector<std::array<Point2, 3>> out;
  if (hull.size() < 3) return out;
  for (std::size_t i = 1; i + 1 < hull.size(); ++i) {
    out.push_back({hull[0], hull[i], hull[i + 1]});
  }
  return out;
}

}  // namespace cqa
