#include "cqa/geometry/polyhedron.h"

#include <algorithm>

namespace cqa {

Polyhedron::Polyhedron(const LinearCell& cell) : cell_(cell.closure()) {}

Polyhedron Polyhedron::box(std::size_t dim, const Rational& lo,
                           const Rational& hi) {
  LinearCell cell(dim);
  Polyhedron p(cell.intersect_box(lo, hi));
  return p;
}

Polyhedron Polyhedron::simplex(std::size_t dim, const Rational& s) {
  LinearCell cell(dim);
  for (std::size_t v = 0; v < dim; ++v) {
    LinearConstraint c;
    c.coeffs.assign(dim, Rational());
    c.coeffs[v] = Rational(-1);
    c.rhs = Rational(0);
    c.cmp = LinCmp::kLe;
    cell.add(std::move(c));
  }
  LinearConstraint sum;
  sum.coeffs.assign(dim, Rational(1));
  sum.rhs = s;
  sum.cmp = LinCmp::kLe;
  cell.add(std::move(sum));
  return Polyhedron(cell);
}

Result<Polyhedron> Polyhedron::hull_of(const std::vector<RVec>& points) {
  if (points.empty()) return Status::invalid("hull of no points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) return Status::invalid("hull: mixed dimensions");
  }
  const int aff = affine_hull_dim(points);
  if (aff == 0) {
    // Single point: x = p.
    LinearCell cell(dim);
    for (std::size_t v = 0; v < dim; ++v) {
      LinearConstraint c;
      c.coeffs.assign(dim, Rational());
      c.coeffs[v] = Rational(1);
      c.rhs = points[0][v];
      c.cmp = LinCmp::kEq;
      cell.add(std::move(c));
    }
    return Polyhedron(cell);
  }
  if (aff < static_cast<int>(dim)) {
    return Status::unsupported(
        "hull_of: points are not full-dimensional (affine hull dim " +
        std::to_string(aff) + " < " + std::to_string(dim) + ")");
  }
  // Enumerate dim-subsets, fit the hyperplane through them, keep it if all
  // points lie (weakly) on one side.
  LinearCell cell(dim);
  std::vector<std::size_t> idx(dim);
  // Iterative combination enumeration.
  std::vector<std::size_t> comb(dim);
  for (std::size_t i = 0; i < dim; ++i) comb[i] = i;
  const std::size_t n = points.size();
  auto advance = [&]() -> bool {
    std::size_t i = dim;
    while (i-- > 0) {
      if (comb[i] < n - dim + i) {
        ++comb[i];
        for (std::size_t j = i + 1; j < dim; ++j) comb[j] = comb[j - 1] + 1;
        return true;
      }
    }
    return false;
  };
  std::vector<LinearConstraint> facets;
  bool more = true;
  while (more) {
    // Hyperplane a.x = b through points[comb[*]]: nullspace of [p | 1].
    Matrix m(dim, dim + 1);
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) m.at(r, c) = points[comb[r]][c];
      m.at(r, dim) = Rational(1);
    }
    auto ns = m.nullspace();
    if (ns.size() == 1) {
      RVec a(ns[0].begin(), ns[0].begin() + static_cast<std::ptrdiff_t>(dim));
      Rational b = -ns[0][dim];
      if (!vec_is_zero(a)) {
        int lo = 0, hi = 0;
        for (const auto& p : points) {
          int s = (dot(a, p) - b).sign();
          if (s < 0) lo = 1;
          if (s > 0) hi = 1;
          if (lo && hi) break;
        }
        if (!(lo && hi)) {
          LinearConstraint c;
          if (hi) {
            // all points have a.x >= b: flip to -a.x <= -b
            c.coeffs = vec_scale(Rational(-1), a);
            c.rhs = -b;
          } else {
            c.coeffs = a;
            c.rhs = b;
          }
          c.cmp = LinCmp::kLe;
          facets.push_back(std::move(c));
        }
      }
    }
    more = advance();
  }
  for (auto& f : fm_simplify(facets)) cell.add(std::move(f));
  return Polyhedron(cell);
}

Polyhedron Polyhedron::intersect(const Polyhedron& o) const {
  CQA_CHECK(dim() == o.dim());
  Polyhedron out = *this;
  for (const auto& c : o.constraints()) out.add_constraint(c);
  return out;
}

}  // namespace cqa
