#include "cqa/geometry/polytope_volume.h"

#include <algorithm>

namespace cqa {

namespace {

// Substitutes x_j = (rhs - sum_{k != j} a_k x_k) / a_j (from the facet
// equality a.x = rhs) into constraint c, then drops slot j.
LinearConstraint substitute_and_drop(const LinearConstraint& c,
                                     const RVec& a, const Rational& rhs,
                                     std::size_t j) {
  const Rational inv = a[j].inverse();
  LinearConstraint out;
  out.cmp = c.cmp;
  const Rational f = c.coeffs[j] * inv;
  out.rhs = c.rhs - f * rhs;
  out.coeffs.reserve(c.coeffs.size() - 1);
  for (std::size_t k = 0; k < c.coeffs.size(); ++k) {
    if (k == j) continue;
    out.coeffs.push_back(c.coeffs[k] - f * a[k]);
  }
  return out;
}

Result<Rational> volume_rec(std::vector<LinearConstraint> cs,
                            std::size_t dim) {
  cs = fm_simplify(cs);
  if (dim == 0) {
    for (const auto& c : cs) {
      if (!c.constant_truth()) return Rational(0);
    }
    return Rational(1);
  }
  if (!fm_feasible(cs, dim)) return Rational(0);
  // Explicit equalities make the body lower-dimensional.
  for (const auto& c : cs) {
    if (c.cmp == LinCmp::kEq && !c.is_constant()) return Rational(0);
  }
  if (dim == 1) {
    AxisInterval iv = fm_project_to_axis(cs, 0, 1);
    if (iv.empty) return Rational(0);
    if (!iv.lo || !iv.hi) {
      return Status::invalid("polytope_volume: unbounded body");
    }
    return *iv.hi - *iv.lo;
  }
  // Boundedness check (once per level; projections of bounded are bounded,
  // but redundant-direction unboundedness must be caught at the top).
  for (std::size_t v = 0; v < dim; ++v) {
    AxisInterval iv = fm_project_to_axis(cs, v, dim);
    if (iv.empty) return Rational(0);
    if (!iv.lo || !iv.hi) {
      return Status::invalid("polytope_volume: unbounded body");
    }
  }
  auto p = fm_sample_point(cs, dim);
  if (!p.has_value()) return Rational(0);

  Rational total;
  for (const auto& c : cs) {
    if (c.is_constant()) continue;
    // Signed height of the sample point under this facet's hyperplane.
    Rational lhs;
    for (std::size_t k = 0; k < dim; ++k) lhs += c.coeffs[k] * (*p)[k];
    const Rational height = c.rhs - lhs;  // >= 0 since p in P
    if (height.is_zero()) continue;       // facet through p contributes 0
    // Project the facet along a coordinate with nonzero normal component.
    std::size_t j = 0;
    Rational best;
    for (std::size_t k = 0; k < dim; ++k) {
      Rational a = c.coeffs[k].abs();
      if (a > best) {
        best = a;
        j = k;
      }
    }
    if (best.is_zero()) continue;
    std::vector<LinearConstraint> facet;
    facet.reserve(cs.size() - 1);
    for (const auto& other : cs) {
      if (&other == &c) continue;
      facet.push_back(substitute_and_drop(other, c.coeffs, c.rhs, j));
    }
    auto sub = volume_rec(std::move(facet), dim - 1);
    if (!sub.is_ok()) return sub;
    total += height * sub.value() / c.coeffs[j].abs();
  }
  return total / Rational(static_cast<std::int64_t>(dim));
}

}  // namespace

Result<Rational> polytope_volume(const Polyhedron& p) {
  return volume_rec(p.constraints(), p.dim());
}

Rational simplex_volume(const std::vector<RVec>& vertices) {
  CQA_CHECK(!vertices.empty());
  const std::size_t dim = vertices[0].size();
  CQA_CHECK(vertices.size() == dim + 1);
  Matrix m(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      m.at(r, c) = vertices[r + 1][c] - vertices[0][c];
    }
  }
  Rational det = m.determinant().abs();
  BigInt fact(1);
  for (std::size_t k = 2; k <= dim; ++k) {
    fact *= BigInt(static_cast<std::int64_t>(k));
  }
  return det / Rational(fact);
}

}  // namespace cqa
