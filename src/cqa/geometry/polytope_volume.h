// Exact volume of a single convex polytope (Lasserre recursion).
//
// Kept fully rational: instead of the usual Vol(F_i)/||a_i|| (irrational
// norm) the recursion projects each facet along a coordinate axis j with
// a_ij != 0, using Vol_{n-1}(F_i)/||a_i|| = Vol_{n-1}(proj_j F_i)/|a_ij|.
// Serves as the single-cell fast path and as an independent oracle for the
// Theorem-3 sweep engine in cqa/volume.

#ifndef CQA_GEOMETRY_POLYTOPE_VOLUME_H_
#define CQA_GEOMETRY_POLYTOPE_VOLUME_H_

#include "cqa/geometry/polyhedron.h"

namespace cqa {

/// Exact n-volume of a bounded polyhedron. Errors on unbounded input.
/// Lower-dimensional (degenerate) polytopes have volume 0.
Result<Rational> polytope_volume(const Polyhedron& p);

/// Exact volume of the simplex with the given dim+1 vertices
/// (|det| / dim!).
Rational simplex_volume(const std::vector<RVec>& vertices);

}  // namespace cqa

#endif  // CQA_GEOMETRY_POLYTOPE_VOLUME_H_
