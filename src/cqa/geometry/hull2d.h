// Exact 2-D convex geometry: hulls, orientation, polygon area.
//
// Backs the paper's Section-5 worked example (the convex-polygon area
// program in FO+POLY+SUM): vertices, adjacency, fan triangulation, and
// the shoelace formula, all over exact rationals.

#ifndef CQA_GEOMETRY_HULL2D_H_
#define CQA_GEOMETRY_HULL2D_H_

#include <array>
#include <vector>

#include "cqa/linalg/matrix.h"

namespace cqa {

/// Exact 2-D point.
struct Point2 {
  Rational x, y;
  bool operator==(const Point2& o) const { return x == o.x && y == o.y; }
  bool operator<(const Point2& o) const {
    return x != o.x ? x < o.x : y < o.y;
  }
};

/// Twice the signed area of triangle (a, b, c); > 0 for counterclockwise.
Rational cross(const Point2& a, const Point2& b, const Point2& c);

/// Convex hull (Andrew monotone chain), counterclockwise, no collinear
/// points on edges, starting from the lexicographically smallest vertex.
std::vector<Point2> convex_hull(std::vector<Point2> points);

/// Exact area of a simple polygon given in order (shoelace; sign dropped).
Rational polygon_area(const std::vector<Point2>& polygon);

/// Exact area of one triangle.
Rational triangle_area(const Point2& a, const Point2& b, const Point2& c);

/// True iff q lies inside or on the convex polygon (vertices CCW).
bool convex_contains(const std::vector<Point2>& hull, const Point2& q);

/// Fan triangulation of a convex polygon (vertices in CCW order):
/// triangles (v0, v_i, v_{i+1}).
std::vector<std::array<Point2, 3>> fan_triangulate(
    const std::vector<Point2>& hull);

}  // namespace cqa

#endif  // CQA_GEOMETRY_HULL2D_H_
