#include "cqa/geometry/vertex_enum.h"

#include <algorithm>

namespace cqa {

std::vector<RVec> enumerate_vertices(const Polyhedron& p) {
  const std::size_t dim = p.dim();
  const auto& cs = fm_simplify(p.constraints());
  const std::size_t m = cs.size();
  std::vector<RVec> vertices;
  if (m < dim) return vertices;

  std::vector<std::size_t> comb(dim);
  for (std::size_t i = 0; i < dim; ++i) comb[i] = i;
  auto advance = [&]() -> bool {
    std::size_t i = dim;
    while (i-- > 0) {
      if (comb[i] < m - dim + i) {
        ++comb[i];
        for (std::size_t j = i + 1; j < dim; ++j) comb[j] = comb[j - 1] + 1;
        return true;
      }
    }
    return false;
  };

  bool more = true;
  while (more) {
    Matrix a(dim, dim);
    RVec b(dim);
    for (std::size_t r = 0; r < dim; ++r) {
      const auto& c = cs[comb[r]];
      for (std::size_t j = 0; j < dim; ++j) a.at(r, j) = c.coeffs[j];
      b[r] = c.rhs;
    }
    if (!a.determinant().is_zero()) {
      RVec x = *solve_square(a, b);
      // Feasible w.r.t. the closed constraint system?
      bool feasible = true;
      for (const auto& c : cs) {
        if (!c.closure().satisfied_by(x)) {
          feasible = false;
          break;
        }
      }
      if (feasible) vertices.push_back(std::move(x));
    }
    more = advance();
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  return vertices;
}

int polytope_dimension(const Polyhedron& p) {
  auto vs = enumerate_vertices(p);
  if (vs.empty()) {
    // Could be empty polyhedron or one without vertices; distinguish.
    return p.is_empty() ? -1 : static_cast<int>(p.dim());
  }
  return affine_hull_dim(vs);
}

}  // namespace cqa
