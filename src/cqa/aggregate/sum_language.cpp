#include "cqa/aggregate/sum_language.h"

#include <algorithm>

namespace cqa {

Result<std::optional<Rational>> DeterministicFormula::solve(
    const Database& db,
    const std::map<std::size_t, Rational>& params) const {
  auto decomp = decompose_1d(db, formula, out_var, params);
  if (!decomp.is_ok()) return decomp.status();
  const auto& pieces = decomp.value();
  if (pieces.empty()) return std::optional<Rational>();
  if (pieces.size() > 1) {
    return Status::invalid("gamma is not deterministic: multiple solutions");
  }
  const Interval1D& iv = pieces[0];
  if (iv.lo_infinite || iv.hi_infinite || iv.lo.cmp(iv.hi) != 0) {
    return Status::invalid("gamma is not deterministic: solution interval");
  }
  if (!iv.lo.is_rational() && !iv.lo.try_make_rational()) {
    return Status::unsupported("gamma has an irrational solution: " +
                               iv.lo.to_string());
  }
  return std::optional<Rational>(iv.lo.rational_value());
}

namespace {

struct EnumState {
  const RangeRestrictedExpr* expr;
  const Database* db;
  const std::vector<Rational>* domain;
  std::map<std::size_t, Rational> assignment;
  RVec tuple;
  std::vector<RVec> out;
  std::size_t guard_evals = 0;
  static constexpr std::size_t kMaxGuardEvals = 500000;
};

Status enumerate_rec(EnumState* st, std::size_t depth) {
  const std::size_t k = st->expr->w_vars.size();
  // Apply every pushdown filter whose last variable is the one just
  // assigned (all its variables are then bound).
  if (depth > 0) {
    const std::size_t just = st->expr->w_vars[depth - 1];
    for (const auto& [vars, filter] : st->expr->pushdown) {
      if (vars.empty() || vars.back() != just) continue;
      if (++st->guard_evals > EnumState::kMaxGuardEvals) {
        return Status::out_of_range("range-restricted enumeration too large");
      }
      auto ok = st->db->holds(filter, st->assignment);
      if (!ok.is_ok()) return ok.status();
      if (!ok.value()) return Status::ok();  // prune this branch
    }
  }
  if (depth == k) {
    if (++st->guard_evals > EnumState::kMaxGuardEvals) {
      return Status::out_of_range("range-restricted enumeration too large");
    }
    auto ok = st->db->holds(st->expr->guard, st->assignment);
    if (!ok.is_ok()) return ok.status();
    if (ok.value()) st->out.push_back(st->tuple);
    return Status::ok();
  }
  for (const Rational& v : *st->domain) {
    st->tuple[depth] = v;
    st->assignment[st->expr->w_vars[depth]] = v;
    CQA_RETURN_IF_ERROR(enumerate_rec(st, depth + 1));
  }
  st->assignment.erase(st->expr->w_vars[depth]);
  return Status::ok();
}

}  // namespace

Result<std::vector<RVec>> RangeRestrictedExpr::enumerate(
    const Database& db,
    const std::map<std::size_t, Rational>& params) const {
  for (const auto& [vars, filter] : pushdown) {
    // Pushdown groups must list their variables in enumeration order.
    for (std::size_t i = 1; i < vars.size(); ++i) {
      if (std::find(w_vars.begin(), w_vars.end(), vars[i - 1]) >=
          std::find(w_vars.begin(), w_vars.end(), vars[i])) {
        return Status::invalid(
            "pushdown group lists variables out of enumeration order");
      }
    }
  }
  auto eps = rational_endpoints_1d(db, range, range_var, params);
  if (!eps.is_ok()) return eps.status();
  EnumState st;
  st.expr = this;
  st.db = &db;
  st.domain = &eps.value();
  st.assignment = params;
  st.tuple.assign(w_vars.size(), Rational());
  if (st.domain->empty() && !w_vars.empty()) return std::vector<RVec>{};
  CQA_RETURN_IF_ERROR(enumerate_rec(&st, 0));
  return std::move(st.out);
}

SumTermPtr SumTerm::constant(Rational c) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kConst;
  t->const_ = std::move(c);
  return t;
}

SumTermPtr SumTerm::variable(std::size_t v) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kVar;
  t->var_ = v;
  return t;
}

SumTermPtr SumTerm::add(SumTermPtr a, SumTermPtr b) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kAdd;
  t->lhs_ = std::move(a);
  t->rhs_ = std::move(b);
  return t;
}

SumTermPtr SumTerm::mul(SumTermPtr a, SumTermPtr b) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kMul;
  t->lhs_ = std::move(a);
  t->rhs_ = std::move(b);
  return t;
}

SumTermPtr SumTerm::neg(SumTermPtr a) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kNeg;
  t->lhs_ = std::move(a);
  return t;
}

SumTermPtr SumTerm::div(SumTermPtr a, SumTermPtr b) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kDiv;
  t->lhs_ = std::move(a);
  t->rhs_ = std::move(b);
  return t;
}

SumTermPtr SumTerm::sum(RangeRestrictedExpr range, DeterministicFormula body) {
  auto t = std::shared_ptr<SumTerm>(new SumTerm());
  t->kind_ = Kind::kSum;
  t->range_ = std::move(range);
  t->body_ = std::move(body);
  return t;
}

SumTermPtr SumTerm::count(RangeRestrictedExpr range) {
  // COUNT = Sum over the range of the deterministic constant 1, with a
  // fresh output variable above everything the range mentions.
  std::size_t fresh = range.range_var + 1;
  for (std::size_t v : range.w_vars) fresh = std::max(fresh, v + 1);
  if (range.guard) {
    fresh = std::max(fresh,
                     static_cast<std::size_t>(range.guard->max_var() + 1));
  }
  if (range.range) {
    fresh = std::max(fresh,
                     static_cast<std::size_t>(range.range->max_var() + 1));
  }
  DeterministicFormula one{
      Formula::eq(Polynomial::variable(fresh),
                  Polynomial::constant(Rational(1))),
      fresh};
  return sum(std::move(range), std::move(one));
}

SumTermPtr SumTerm::avg(RangeRestrictedExpr range, DeterministicFormula body) {
  RangeRestrictedExpr range_copy = range;
  return div(sum(std::move(range), std::move(body)),
             count(std::move(range_copy)));
}

Result<Rational> SumTerm::eval(
    const Database& db,
    const std::map<std::size_t, Rational>& params) const {
  switch (kind_) {
    case Kind::kConst:
      return const_;
    case Kind::kVar: {
      auto it = params.find(var_);
      if (it == params.end()) {
        return Status::invalid("term variable x" + std::to_string(var_) +
                               " unassigned");
      }
      return it->second;
    }
    case Kind::kAdd: {
      auto a = lhs_->eval(db, params);
      if (!a.is_ok()) return a;
      auto b = rhs_->eval(db, params);
      if (!b.is_ok()) return b;
      return a.value() + b.value();
    }
    case Kind::kMul: {
      auto a = lhs_->eval(db, params);
      if (!a.is_ok()) return a;
      auto b = rhs_->eval(db, params);
      if (!b.is_ok()) return b;
      return a.value() * b.value();
    }
    case Kind::kNeg: {
      auto a = lhs_->eval(db, params);
      if (!a.is_ok()) return a;
      return -a.value();
    }
    case Kind::kDiv: {
      auto a = lhs_->eval(db, params);
      if (!a.is_ok()) return a;
      auto b = rhs_->eval(db, params);
      if (!b.is_ok()) return b;
      if (b.value().is_zero()) {
        return Status::invalid("term division by zero (e.g. AVG over an "
                               "empty range)");
      }
      return a.value() / b.value();
    }
    case Kind::kSum: {
      auto tuples = range_->enumerate(db, params);
      if (!tuples.is_ok()) return tuples.status();
      Rational total;
      for (const RVec& w : tuples.value()) {
        std::map<std::size_t, Rational> inner = params;
        for (std::size_t i = 0; i < w.size(); ++i) {
          inner[range_->w_vars[i]] = w[i];
        }
        auto v = body_->solve(db, inner);
        if (!v.is_ok()) return v.status();
        if (v.value().has_value()) total += *v.value();
      }
      return total;
    }
  }
  return Status::internal("unreachable");
}

Result<bool> compare_terms(const Database& db, const SumTermPtr& t1, RelOp op,
                           const SumTermPtr& t2,
                           const std::map<std::size_t, Rational>& params) {
  auto a = t1->eval(db, params);
  if (!a.is_ok()) return a.status();
  auto b = t2->eval(db, params);
  if (!b.is_ok()) return b.status();
  return op_holds(op, (a.value() - b.value()).sign());
}

}  // namespace cqa
