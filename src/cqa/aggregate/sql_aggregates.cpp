#include "cqa/aggregate/sql_aggregates.h"

#include <algorithm>

#include "cqa/aggregate/endpoints.h"

namespace cqa {

Result<std::vector<Rational>> saf_output(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params) {
  auto decomp = decompose_1d(db, phi, var, params);
  if (!decomp.is_ok()) return decomp.status();
  std::vector<Rational> out;
  for (const auto& iv : decomp.value()) {
    if (iv.lo_infinite || iv.hi_infinite || iv.lo.cmp(iv.hi) != 0) {
      return Status::invalid(
          "query output is infinite: aggregation is unsafe (not SAF)");
    }
    if (!iv.lo.is_rational() && !iv.lo.try_make_rational()) {
      return Status::unsupported("query output has an irrational value");
    }
    out.push_back(iv.lo.rational_value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<Rational> agg_count(const Database& db, const FormulaPtr& phi,
                           std::size_t var,
                           const std::map<std::size_t, Rational>& params) {
  auto out = saf_output(db, phi, var, params);
  if (!out.is_ok()) return out.status();
  return Rational(static_cast<std::int64_t>(out.value().size()));
}

Result<Rational> agg_sum(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params) {
  auto out = saf_output(db, phi, var, params);
  if (!out.is_ok()) return out.status();
  Rational total;
  for (const auto& v : out.value()) total += v;
  return total;
}

Result<Rational> agg_avg(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params) {
  auto out = saf_output(db, phi, var, params);
  if (!out.is_ok()) return out.status();
  if (out.value().empty()) {
    return Status::invalid("AVG of an empty output");
  }
  Rational total;
  for (const auto& v : out.value()) total += v;
  return total / Rational(static_cast<std::int64_t>(out.value().size()));
}

Result<Rational> agg_min(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params) {
  auto out = saf_output(db, phi, var, params);
  if (!out.is_ok()) return out.status();
  if (out.value().empty()) return Status::invalid("MIN of an empty output");
  return out.value().front();
}

Result<Rational> agg_max(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params) {
  auto out = saf_output(db, phi, var, params);
  if (!out.is_ok()) return out.status();
  if (out.value().empty()) return Status::invalid("MAX of an empty output");
  return out.value().back();
}

Result<std::vector<Rational>> bag_column(const Database& db,
                                         const std::string& relation,
                                         std::size_t column,
                                         const FormulaPtr& filter) {
  auto tuples = db.tuples_of(relation);
  if (!tuples.is_ok()) return tuples.status();
  auto arity = db.arity_of(relation);
  if (!arity.is_ok()) return arity.status();
  if (column >= arity.value()) {
    return Status::invalid("bag aggregate column out of range");
  }
  std::vector<Rational> out;
  for (const RVec& t : tuples.value()) {
    if (filter != nullptr) {
      std::map<std::size_t, Rational> assignment;
      for (std::size_t i = 0; i < t.size(); ++i) assignment[i] = t[i];
      auto keep = db.holds(filter, assignment);
      if (!keep.is_ok()) return keep.status();
      if (!keep.value()) continue;
    }
    out.push_back(t[column]);
  }
  return out;
}

Result<Rational> bag_count(const Database& db, const std::string& relation,
                           std::size_t column, const FormulaPtr& filter) {
  auto col = bag_column(db, relation, column, filter);
  if (!col.is_ok()) return col.status();
  return Rational(static_cast<std::int64_t>(col.value().size()));
}

Result<Rational> bag_sum(const Database& db, const std::string& relation,
                         std::size_t column, const FormulaPtr& filter) {
  auto col = bag_column(db, relation, column, filter);
  if (!col.is_ok()) return col.status();
  Rational total;
  for (const auto& v : col.value()) total += v;
  return total;
}

Result<Rational> bag_avg(const Database& db, const std::string& relation,
                         std::size_t column, const FormulaPtr& filter) {
  auto col = bag_column(db, relation, column, filter);
  if (!col.is_ok()) return col.status();
  if (col.value().empty()) return Status::invalid("bag AVG of empty");
  Rational total;
  for (const auto& v : col.value()) total += v;
  return total / Rational(static_cast<std::int64_t>(col.value().size()));
}

}  // namespace cqa
