#include "cqa/aggregate/polygon_area.h"

#include "cqa/geometry/hull2d.h"
#include "cqa/geometry/polyhedron.h"
#include "cqa/geometry/vertex_enum.h"
#include "cqa/logic/transform.h"

namespace cqa {

namespace {

Polynomial V(std::size_t i) { return Polynomial::variable(i); }
Polynomial C(std::int64_t c) { return Polynomial::constant(Rational(c)); }

// Instantiates a two-slot template (free variables 0, 1) at variables
// (a, b); bound variables are renamed fresh by substitute_vars.
FormulaPtr at2(const FormulaPtr& tmpl, std::size_t a, std::size_t b) {
  std::map<std::size_t, Polynomial> sub;
  sub.emplace(0u, V(a));
  sub.emplace(1u, V(b));
  return substitute_vars(tmpl, sub);
}

// Four-slot template instantiation (free variables 0..3).
FormulaPtr at4(const FormulaPtr& tmpl, std::size_t a, std::size_t b,
               std::size_t c, std::size_t d) {
  std::map<std::size_t, Polynomial> sub;
  sub.emplace(0u, V(a));
  sub.emplace(1u, V(b));
  sub.emplace(2u, V(c));
  sub.emplace(3u, V(d));
  return substitute_vars(tmpl, sub);
}

// Template: vertex(x0, x1) -- extreme point of pred. An extreme point of a
// closed convex set is one that is not the midpoint of two distinct points
// of the set.
FormulaPtr vertex_template(const std::string& pred) {
  const std::size_t u1 = 8, v1 = 9, u2 = 10, v2 = 11;
  FormulaPtr interior_witness = Formula::exists(
      u1,
      Formula::exists(
          v1,
          Formula::exists(
              u2, Formula::exists(
                      v2,
                      Formula::f_and(
                          {Formula::predicate(pred, {V(u1), V(v1)}),
                           Formula::predicate(pred, {V(u2), V(v2)}),
                           Formula::f_or(Formula::ne(V(u1), V(u2)),
                                         Formula::ne(V(v1), V(v2))),
                           Formula::eq(C(2) * V(0), V(u1) + V(u2)),
                           Formula::eq(C(2) * V(1), V(v1) + V(v2))})))));
  return Formula::f_and(Formula::predicate(pred, {V(0), V(1)}),
                        Formula::f_not(std::move(interior_witness)));
}

// Template: adjacent((x0,x1), (x2,x3)) -- distinct vertices such that the
// whole polygon lies (weakly) on one side of the line through them.
FormulaPtr adjacent_template(const std::string& pred,
                             const FormulaPtr& vertex_tmpl) {
  const std::size_t p = 8, q = 9;
  // cross((a1,a2),(b1,b2),(p,q)) = (b1-a1)(q-a2) - (b2-a2)(p-a1).
  Polynomial cross = (V(2) - V(0)) * (V(q) - V(1)) -
                     (V(3) - V(1)) * (V(p) - V(0));
  auto side = [&](bool nonneg) {
    FormulaPtr sign_ok = nonneg ? Formula::ge(cross, C(0))
                                : Formula::le(cross, C(0));
    return Formula::forall(
        p, Formula::forall(
               q, Formula::f_or(
                      Formula::f_not(Formula::predicate(pred, {V(p), V(q)})),
                      sign_ok)));
  };
  return Formula::f_and(
      {at2(vertex_tmpl, 0, 1), at2(vertex_tmpl, 2, 3),
       Formula::f_or(Formula::ne(V(0), V(2)), Formula::ne(V(1), V(3))),
       Formula::f_or(side(true), side(false))});
}

// lexicographic (a1,a2) <= (b1,b2) over variable indices.
FormulaPtr lex_le(std::size_t a1, std::size_t a2, std::size_t b1,
                  std::size_t b2) {
  return Formula::f_or(
      Formula::lt(V(a1), V(b1)),
      Formula::f_and(Formula::eq(V(a1), V(b1)), Formula::le(V(a2), V(b2))));
}

FormulaPtr lex_lt(std::size_t a1, std::size_t a2, std::size_t b1,
                  std::size_t b2) {
  return Formula::f_or(
      Formula::lt(V(a1), V(b1)),
      Formula::f_and(Formula::eq(V(a1), V(b1)), Formula::lt(V(a2), V(b2))));
}

}  // namespace

PolygonProgram build_polygon_program(const std::string& pred,
                                     bool optimized) {
  PolygonProgram prog;
  FormulaPtr vertex_tmpl = vertex_template(pred);
  FormulaPtr adj_tmpl = adjacent_template(pred, vertex_tmpl);
  prog.vertex = at2(vertex_tmpl, 0, 1);

  // psi2(u): u (variable 6) is a coordinate of some vertex.
  {
    const std::size_t a = 8, b = 9;
    prog.psi2 = Formula::exists(
        a, Formula::exists(
               b, Formula::f_and(
                      at2(vertex_tmpl, a, b),
                      Formula::f_or(Formula::eq(V(6), V(a)),
                                    Formula::eq(V(6), V(b))))));
  }

  prog.adjacent = at4(adj_tmpl, 0, 1, 2, 3);

  // psi1(x, y, z) with x=(0,1), y=(2,3), z=(4,5).
  {
    const std::size_t w1 = 8, w2 = 9;
    FormulaPtr lex_min = Formula::forall(
        w1, Formula::forall(
                w2, Formula::f_or(Formula::f_not(at2(vertex_tmpl, w1, w2)),
                                  lex_le(0, 1, w1, w2))));
    FormulaPtr adj_xy = at4(adj_tmpl, 0, 1, 2, 3);
    FormulaPtr adj_yz = at4(adj_tmpl, 2, 3, 4, 5);
    FormulaPtr adj_xz = at4(adj_tmpl, 0, 1, 4, 5);
    // Paper disjunct (a): y-z is an edge away from x.
    FormulaPtr far_edge = Formula::f_and(
        {adj_yz, lex_lt(2, 3, 4, 5), Formula::f_not(adj_xy),
         Formula::f_not(adj_xz)});
    // Paper disjunct (b): x-y-z consecutive, x-z not an edge.
    FormulaPtr fan_edge = Formula::f_and(
        {adj_xy, adj_yz, Formula::f_not(adj_xz)});
    // Completion for the 3-gon (see header).
    FormulaPtr whole_triangle = Formula::f_and(
        {adj_xy, adj_yz, adj_xz, lex_lt(2, 3, 4, 5)});
    prog.psi1 = Formula::f_and(
        {at2(vertex_tmpl, 0, 1), at2(vertex_tmpl, 2, 3),
         at2(vertex_tmpl, 4, 5), lex_min,
         Formula::f_or({far_edge, fan_edge, whole_triangle})});
  }

  // gamma(v; x, y, z): 2v = |cross(x, y, z)| as a deterministic formula.
  DeterministicFormula gamma;
  {
    Polynomial cross = (V(2) - V(0)) * (V(5) - V(1)) -
                       (V(3) - V(1)) * (V(4) - V(0));
    FormulaPtr pos = Formula::f_and(Formula::eq(C(2) * V(7), cross),
                                    Formula::ge(cross, C(0)));
    FormulaPtr neg = Formula::f_and(Formula::eq(C(2) * V(7), -cross),
                                    Formula::le(cross, C(0)));
    gamma.formula = Formula::f_or(std::move(pos), std::move(neg));
    gamma.out_var = 7;
  }

  RangeRestrictedExpr rho;
  // The guard splits psi1 into its conjuncts: the vertex and
  // lexicographic-minimality conditions go into pushdown filters (checked
  // as soon as each coordinate pair is bound -- and, crucially, the linear
  // ones compile once through the database's query cache), while the main
  // guard keeps only the triangulation disjunction.
  if (!optimized) {
    rho.guard = prog.psi1;
    rho.range = prog.psi2;
    rho.range_var = 6;
    rho.w_vars = {0, 1, 2, 3, 4, 5};
    DeterministicFormula gamma_naive;
    {
      Polynomial cross = (V(2) - V(0)) * (V(5) - V(1)) -
                         (V(3) - V(1)) * (V(4) - V(0));
      FormulaPtr pos = Formula::f_and(Formula::eq(C(2) * V(7), cross),
                                      Formula::ge(cross, C(0)));
      FormulaPtr neg = Formula::f_and(Formula::eq(C(2) * V(7), -cross),
                                      Formula::le(cross, C(0)));
      gamma_naive.formula = Formula::f_or(std::move(pos), std::move(neg));
      gamma_naive.out_var = 7;
    }
    prog.area_term = SumTerm::sum(std::move(rho), std::move(gamma_naive));
    return prog;
  }
  {
    FormulaPtr adj_xy = at4(adj_tmpl, 0, 1, 2, 3);
    FormulaPtr adj_yz = at4(adj_tmpl, 2, 3, 4, 5);
    FormulaPtr adj_xz = at4(adj_tmpl, 0, 1, 4, 5);
    FormulaPtr far_edge = Formula::f_and(
        {adj_yz, lex_lt(2, 3, 4, 5), Formula::f_not(adj_xy),
         Formula::f_not(adj_xz)});
    FormulaPtr fan_edge =
        Formula::f_and({adj_xy, adj_yz, Formula::f_not(adj_xz)});
    FormulaPtr whole_triangle = Formula::f_and(
        {adj_xy, adj_yz, adj_xz, lex_lt(2, 3, 4, 5)});
    rho.guard = Formula::f_or({far_edge, fan_edge, whole_triangle});
  }
  rho.range = prog.psi2;
  rho.range_var = 6;
  rho.w_vars = {0, 1, 2, 3, 4, 5};
  {
    const std::size_t w1 = 8, w2 = 9;
    FormulaPtr lex_min = Formula::forall(
        w1, Formula::forall(
                w2, Formula::f_or(Formula::f_not(at2(vertex_tmpl, w1, w2)),
                                  lex_le(0, 1, w1, w2))));
    rho.pushdown.push_back({{0, 1}, at2(vertex_tmpl, 0, 1)});
    rho.pushdown.push_back({{0, 1}, lex_min});
    rho.pushdown.push_back({{2, 3}, at2(vertex_tmpl, 2, 3)});
    rho.pushdown.push_back({{4, 5}, at2(vertex_tmpl, 4, 5)});
  }

  prog.area_term = SumTerm::sum(std::move(rho), std::move(gamma));
  return prog;
}

Result<Rational> convex_polygon_area_in_language(const Database& db,
                                                 const std::string& pred) {
  auto arity = db.arity_of(pred);
  if (!arity.is_ok()) return arity.status();
  if (arity.value() != 2) {
    return Status::invalid("polygon predicate must be binary: " + pred);
  }
  PolygonProgram prog = build_polygon_program(pred);
  return prog.area_term->eval(db, {});
}

Result<Rational> convex_polygon_area_geometric(const Database& db,
                                               const std::string& pred) {
  auto def = db.definition_of(pred);
  if (!def.is_ok()) return def.status();
  auto cells = formula_to_cells(def.value(), 2);
  if (!cells.is_ok()) return cells.status();
  std::vector<Point2> points;
  for (const auto& cell : cells.value()) {
    Polyhedron p(cell);
    for (auto& v : enumerate_vertices(p)) {
      points.push_back(Point2{v[0], v[1]});
    }
  }
  return polygon_area(convex_hull(std::move(points)));
}

}  // namespace cqa
