// The Section-5 worked example: area of a convex polygon, computed two
// ways -- (a) *inside* FO+POLY+SUM, following the paper's program
// literally (vertex formula, adjacency formula, lexicographic fan
// selection psi1, coordinate endpoints psi2 / END, triangle-area gamma,
// and the Sum term-former), and (b) by direct exact geometry (convex hull
// + shoelace) as the oracle the in-language result is checked against.

#ifndef CQA_AGGREGATE_POLYGON_AREA_H_
#define CQA_AGGREGATE_POLYGON_AREA_H_

#include <string>

#include "cqa/aggregate/database.h"
#include "cqa/aggregate/sum_language.h"

namespace cqa {

/// The FO+POLY+SUM program of Section 5 for the area of the convex
/// polygon stored as the binary predicate `pred` (a closed convex
/// semi-linear set). Returns the exact area.
///
/// One completion of the paper's program: its psi1 produces no triangle
/// when the polygon IS a triangle (every vertex pair is adjacent, so both
/// of the paper's disjuncts fail); we add the third disjunct
/// "nu(x,y) & nu(y,z) & nu(z,x) & y <lex z" covering that case.
Result<Rational> convex_polygon_area_in_language(const Database& db,
                                                 const std::string& pred);

/// Direct geometric oracle: cells -> vertices -> hull -> shoelace.
Result<Rational> convex_polygon_area_geometric(const Database& db,
                                               const std::string& pred);

/// The program's building blocks, exposed for tests and benches.
/// Variable layout: x = (0,1), y = (2,3), z = (4,5), endpoint u = 6,
/// gamma output v = 7; quantified variables start at 8.
struct PolygonProgram {
  /// vertex(a, b): (a,b) is an extreme point of pred.
  FormulaPtr vertex;
  /// psi2(u): u is a coordinate of some vertex (the END source).
  FormulaPtr psi2;
  /// nu(x, y): x and y are adjacent vertices.
  FormulaPtr adjacent;
  /// psi1(x, y, z): the fan-triangulation selection formula.
  FormulaPtr psi1;
  /// The full area term.
  SumTermPtr area_term;
};

/// Builds the program for the given predicate name.
///
/// `optimized` controls the evaluation plan (semantics identical):
///  - true (default): the guard's vertex / lexicographic-minimality
///    conjuncts become pushdown filters (checked as soon as each
///    coordinate pair binds, and compiled once through the database's
///    linear-query cache), leaving only the triangulation disjunction in
///    the final guard;
///  - false: the paper's psi1 is evaluated whole, per candidate tuple,
///    with no pushdown -- the naive plan, kept for the ablation bench.
PolygonProgram build_polygon_program(const std::string& pred,
                                     bool optimized = true);

}  // namespace cqa

#endif  // CQA_AGGREGATE_POLYGON_AREA_H_
