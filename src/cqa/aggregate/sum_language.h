// The FO+POLY+SUM term language (Section 5 of the paper).
//
// Terms are built from constants, variables, + and *, plus the summation
// term-former
//
//     [ Sum_{rho(w, z)} gamma ](z)
//
// where rho(w, z) = (phi1(w, z) | END[y, phi2(y, z)]) is a range-restricted
// expression -- every w_i must be an endpoint of the intervals composing
// phi2(D, z) and satisfy phi1 -- and gamma(x, w) is a *deterministic*
// formula (at most one x per w). The value is the sum of the bag
// { gamma(w) : w in rho(D, z) }.
//
// Formulas of the extended language may compare terms (t1 op t2).

#ifndef CQA_AGGREGATE_SUM_LANGUAGE_H_
#define CQA_AGGREGATE_SUM_LANGUAGE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/aggregate/endpoints.h"

namespace cqa {

/// gamma(x, w): a formula with a distinguished output variable that has at
/// most one solution x for each parameter tuple w. (The paper notes
/// determinism is decidable; we verify it dynamically at each evaluation,
/// which suffices for exactness.)
struct DeterministicFormula {
  FormulaPtr formula;
  std::size_t out_var;

  /// The unique x with D |= gamma(x, w), or nullopt if none.
  /// Errors if more than one x satisfies gamma (not deterministic), or if
  /// the unique solution is irrational (exactness would be lost).
  Result<std::optional<Rational>> solve(
      const Database& db,
      const std::map<std::size_t, Rational>& params) const;
};

/// rho(w, z) = phi1(w, z) | END[y, phi2(y, z)].
struct RangeRestrictedExpr {
  /// Guard phi1 over the w variables (+ parameters z).
  FormulaPtr guard;
  /// The END source phi2(y, z).
  FormulaPtr range;
  /// y in END[y, phi2].
  std::size_t range_var;
  /// The w variables, in tuple order.
  std::vector<std::size_t> w_vars;
  /// Additional conjunctive guards, each over a subset of the w variables
  /// (listed in enumeration order). Semantically the guard of rho is
  /// `guard AND all pushdown formulas`; operationally each pushdown filter
  /// is checked as soon as its last variable is assigned, pruning the
  /// enumeration early (classic predicate pushdown).
  std::vector<std::pair<std::vector<std::size_t>, FormulaPtr>> pushdown;

  /// Enumerates rho(D, z): all w tuples over the END endpoint set that
  /// satisfy the guard. Finite by construction (the paper's point).
  Result<std::vector<RVec>> enumerate(
      const Database& db,
      const std::map<std::size_t, Rational>& params) const;
};

class SumTerm;
/// Shared immutable term handle.
using SumTermPtr = std::shared_ptr<const SumTerm>;

/// A term of FO+POLY+SUM.
class SumTerm {
 public:
  enum class Kind { kConst, kVar, kAdd, kMul, kNeg, kDiv, kSum };

  static SumTermPtr constant(Rational c);
  static SumTermPtr variable(std::size_t v);
  static SumTermPtr add(SumTermPtr a, SumTermPtr b);
  static SumTermPtr mul(SumTermPtr a, SumTermPtr b);
  static SumTermPtr neg(SumTermPtr a);
  /// Exact division; evaluation errors if the divisor is 0.
  static SumTermPtr div(SumTermPtr a, SumTermPtr b);
  /// The summation term-former.
  static SumTermPtr sum(RangeRestrictedExpr range, DeterministicFormula body);
  /// COUNT as a Sum of ones over the range (Lemma 4).
  static SumTermPtr count(RangeRestrictedExpr range);
  /// AVG = Sum / Count over the same range (Lemma 4); evaluation errors on
  /// an empty range.
  static SumTermPtr avg(RangeRestrictedExpr range, DeterministicFormula body);

  Kind kind() const { return kind_; }

  /// Exact evaluation under an assignment of the term's free variables.
  Result<Rational> eval(const Database& db,
                        const std::map<std::size_t, Rational>& params) const;

 private:
  SumTerm() = default;

  Kind kind_ = Kind::kConst;
  Rational const_;
  std::size_t var_ = 0;
  SumTermPtr lhs_, rhs_;
  std::optional<RangeRestrictedExpr> range_;
  std::optional<DeterministicFormula> body_;
};

/// Term-comparison formula of the extended language: t1 op t2, evaluated
/// exactly under an assignment.
Result<bool> compare_terms(const Database& db, const SumTermPtr& t1, RelOp op,
                           const SumTermPtr& t2,
                           const std::map<std::size_t, Rational>& params);

}  // namespace cqa

#endif  // CQA_AGGREGATE_SUM_LANGUAGE_H_
