// The END operator of FO+POLY+SUM.
//
// END[y, phi(y, z)](u, z) holds iff u is an endpoint of the intervals that
// compose phi(D, z). O-minimality guarantees the 1-D set is a finite union
// of points and intervals, so the endpoint set is finite -- this is the
// language's range-restriction device (Section 5 of the paper).

#ifndef CQA_AGGREGATE_ENDPOINTS_H_
#define CQA_AGGREGATE_ENDPOINTS_H_

#include <map>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/poly/algebraic.h"

namespace cqa {

/// Structure of a 1-D definable set: maximal intervals and isolated points.
struct Interval1D {
  /// Endpoint values; for an isolated point lo == hi. Unbounded pieces use
  /// the `lo_infinite` / `hi_infinite` flags (endpoint value then unused).
  AlgebraicNumber lo = AlgebraicNumber::from_rational(Rational(0));
  AlgebraicNumber hi = AlgebraicNumber::from_rational(Rational(0));
  bool lo_infinite = false;
  bool hi_infinite = false;
  bool lo_closed = false;
  bool hi_closed = false;
};

/// Decomposes { y : D |= phi(y, params) } into maximal intervals.
/// `var` is y; every other free variable of phi must appear in `params`.
/// Works for any FO+LIN formula and for FO+POLY formulas the decision
/// procedure supports (separable quantification).
Result<std::vector<Interval1D>> decompose_1d(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params);

/// END[y, phi]: the finite endpoint set (deduplicated, ascending).
/// Endpoints of unbounded rays are not endpoints (there are none).
Result<std::vector<AlgebraicNumber>> endpoints_1d(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params);

/// Exact rational endpoints; errors (kUnsupported) if any endpoint is
/// irrational. Semi-linear inputs always succeed.
Result<std::vector<Rational>> rational_endpoints_1d(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params);

/// True iff the 1-D definable set is finite (only isolated points): the
/// SAF safety test of Section 5.
Result<bool> is_finite_1d(const Database& db, const FormulaPtr& phi,
                          std::size_t var,
                          const std::map<std::size_t, Rational>& params);

}  // namespace cqa

#endif  // CQA_AGGREGATE_ENDPOINTS_H_
