#include "cqa/aggregate/database.h"

#include <algorithm>

#include "cqa/constraint/qe.h"
#include "cqa/logic/decide.h"
#include "cqa/logic/transform.h"

namespace cqa {

Status Database::add_finite(const std::string& name, std::size_t arity,
                            std::vector<RVec> tuples) {
  if (relations_.count(name)) {
    return Status::invalid("relation already exists: " + name);
  }
  for (const auto& t : tuples) {
    if (t.size() != arity) {
      return Status::invalid("tuple arity mismatch in relation " + name);
    }
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  Relation r;
  r.arity = arity;
  r.finite = true;
  r.tuples = std::move(tuples);
  relations_.emplace(name, std::move(r));
  return Status::ok();
}

Status Database::add_finite_bag(const std::string& name, std::size_t arity,
                                std::vector<RVec> tuples) {
  if (relations_.count(name)) {
    return Status::invalid("relation already exists: " + name);
  }
  for (const auto& t : tuples) {
    if (t.size() != arity) {
      return Status::invalid("tuple arity mismatch in relation " + name);
    }
  }
  std::sort(tuples.begin(), tuples.end());
  Relation r;
  r.arity = arity;
  r.finite = true;
  r.bag = true;
  r.tuples = std::move(tuples);
  relations_.emplace(name, std::move(r));
  return Status::ok();
}

bool Database::is_bag(const std::string& name) const {
  auto r = find(name);
  return r.is_ok() && r.value()->bag;
}

Status Database::add_constraint_relation(const std::string& name,
                                         std::size_t arity,
                                         FormulaPtr definition) {
  if (relations_.count(name)) {
    return Status::invalid("relation already exists: " + name);
  }
  if (definition->has_predicates()) {
    return Status::invalid("f.r. definition must be predicate-free: " + name);
  }
  for (std::size_t v : definition->free_vars()) {
    if (v >= arity) {
      return Status::invalid("f.r. definition of " + name +
                             " uses variable beyond its arity");
    }
  }
  Relation r;
  r.arity = arity;
  r.finite = false;
  r.definition = std::move(definition);
  relations_.emplace(name, std::move(r));
  return Status::ok();
}

bool Database::has_relation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<const Database::Relation*> Database::find(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::invalid("unknown relation: " + name);
  }
  return &it->second;
}

Result<std::size_t> Database::arity_of(const std::string& name) const {
  auto r = find(name);
  if (!r.is_ok()) return r.status();
  return r.value()->arity;
}

bool Database::is_finite(const std::string& name) const {
  auto r = find(name);
  return r.is_ok() && r.value()->finite;
}

Result<std::vector<RVec>> Database::tuples_of(const std::string& name) const {
  auto r = find(name);
  if (!r.is_ok()) return r.status();
  if (!r.value()->finite) {
    return Status::invalid("relation is finitely representable, not finite: " +
                           name);
  }
  return r.value()->tuples;
}

Result<FormulaPtr> Database::definition_of(const std::string& name) const {
  auto r = find(name);
  if (!r.is_ok()) return r.status();
  const Relation& rel = *r.value();
  if (!rel.finite) return rel.definition;
  // Finite relation as a disjunction of pointwise equalities.
  std::vector<FormulaPtr> rows;
  rows.reserve(rel.tuples.size());
  for (const auto& t : rel.tuples) {
    std::vector<FormulaPtr> eqs;
    eqs.reserve(rel.arity);
    for (std::size_t i = 0; i < rel.arity; ++i) {
      eqs.push_back(Formula::eq(Polynomial::variable(i),
                                Polynomial::constant(t[i])));
    }
    rows.push_back(Formula::f_and(std::move(eqs)));
  }
  return Formula::f_or(std::move(rows));
}

std::set<Rational> Database::active_domain() const {
  std::set<Rational> out;
  for (const auto& [name, rel] : relations_) {
    if (!rel.finite) continue;
    for (const auto& t : rel.tuples) {
      for (const auto& v : t) out.insert(v);
    }
  }
  return out;
}

bool Database::contains(const std::string& name, const RVec& tuple) const {
  auto r = find(name);
  if (!r.is_ok()) return false;
  const Relation& rel = *r.value();
  if (tuple.size() != rel.arity) return false;
  if (rel.finite) {
    return std::binary_search(rel.tuples.begin(), rel.tuples.end(), tuple);
  }
  std::map<std::size_t, Rational> assignment;
  for (std::size_t i = 0; i < tuple.size(); ++i) assignment.emplace(i, tuple[i]);
  auto h = holds(rel.definition, assignment);
  return h.is_ok() && h.value();
}

Result<FormulaPtr> Database::inline_predicates(const FormulaPtr& f) const {
  FormulaPtr cur = f;
  // Iterate until no predicate remains (definitions are predicate-free, so
  // one pass per relation suffices).
  for (const auto& [name, rel] : relations_) {
    auto def = definition_of(name);
    if (!def.is_ok()) return def.status();
    cur = substitute_predicate(cur, name, rel.arity, def.value());
  }
  if (cur->has_predicates()) {
    return Status::invalid("formula references an unknown relation");
  }
  return cur;
}

Result<FormulaPtr> Database::expand_active_domain(const FormulaPtr& f) const {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
    case Kind::kPredicate:
      return f;
    case Kind::kNot: {
      auto sub = expand_active_domain(f->children()[0]);
      if (!sub.is_ok()) return sub;
      return Formula::f_not(sub.value());
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      for (const auto& c : f->children()) {
        auto sub = expand_active_domain(c);
        if (!sub.is_ok()) return sub;
        kids.push_back(sub.value());
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists:
    case Kind::kForall: {
      auto body = expand_active_domain(f->children()[0]);
      if (!body.is_ok()) return body;
      if (!f->active_domain()) {
        return f->kind() == Kind::kExists
                   ? Formula::exists(f->var(), body.value())
                   : Formula::forall(f->var(), body.value());
      }
      // Active-domain quantifier: finite expansion over adom(D).
      std::vector<FormulaPtr> parts;
      for (const Rational& a : active_domain()) {
        parts.push_back(substitute_var(body.value(), f->var(), a));
      }
      return f->kind() == Kind::kExists ? Formula::f_or(std::move(parts))
                                        : Formula::f_and(std::move(parts));
    }
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

namespace {

// Decides a closed predicate-free formula by short-circuiting through its
// boolean structure: every subformula is itself closed, so quantified
// subtrees get their own (small) QE / decision calls instead of one
// monolithic DNF over the whole conjunction.
Result<bool> decide_closed(const FormulaPtr& g) {
  using Kind = Formula::Kind;
  switch (g->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return eval_qf(g, {});
    case Kind::kPredicate:
      return Status::internal("decide_closed: predicate not inlined");
    case Kind::kNot: {
      auto r = decide_closed(g->children()[0]);
      if (!r.is_ok()) return r;
      return !r.value();
    }
    case Kind::kAnd: {
      for (const auto& c : g->children()) {
        auto r = decide_closed(c);
        if (!r.is_ok()) return r;
        if (!r.value()) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const auto& c : g->children()) {
        auto r = decide_closed(c);
        if (!r.is_ok()) return r;
        if (r.value()) return true;
      }
      return false;
    }
    case Kind::kExists:
    case Kind::kForall: {
      if (g->is_linear()) return qe_decide_sentence(g);
      return decide_sentence(g);
    }
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

}  // namespace

Result<bool> Database::holds(
    const FormulaPtr& f,
    const std::map<std::size_t, Rational>& assignment) const {
  // Fast path: linear formulas compile once (inline + symbolic QE) and
  // evaluate per assignment.
  auto it = compiled_.find(f.get());
  if (it == compiled_.end()) {
    FormulaPtr qf;  // nullptr = not compilable
    auto ad = expand_active_domain(f);
    if (ad.is_ok()) {
      auto inlined = inline_predicates(ad.value());
      if (inlined.is_ok() && inlined.value()->is_linear()) {
        auto r = qe_linear(inlined.value());
        if (r.is_ok()) qf = r.value();
      }
    }
    it = compiled_.emplace(f.get(), std::move(qf)).first;
    // Hold a reference to the key formula so the pointer stays valid.
    compiled_keys_.push_back(f);
  }
  if (it->second != nullptr) {
    const FormulaPtr& qf = it->second;
    const int mv = qf->max_var();
    RVec point(static_cast<std::size_t>(mv + 1));
    for (std::size_t v : qf->free_vars()) {
      auto a = assignment.find(v);
      if (a == assignment.end()) {
        return Status::invalid("holds: unassigned free variable x" +
                               std::to_string(v));
      }
      point[v] = a->second;
    }
    return eval_qf(qf, point);
  }

  // General path: substitute the assignment first -- this often
  // linearizes atoms (e.g. the convexity/adjacency tests of the Section-5
  // program become linear in the remaining quantified variables) -- then
  // decide the closed result with boolean short-circuiting.
  std::map<std::size_t, Polynomial> sub;
  for (const auto& [v, val] : assignment) {
    sub.emplace(v, Polynomial::constant(val));
  }
  FormulaPtr g = substitute_vars(f, sub);
  auto ad = expand_active_domain(g);
  if (!ad.is_ok()) return ad.status();
  auto inlined = inline_predicates(ad.value());
  if (!inlined.is_ok()) return inlined.status();
  g = inlined.value();
  if (!g->free_vars().empty()) {
    return Status::invalid("holds: unassigned free variable");
  }
  return decide_closed(g);
}

std::vector<std::string> Database::relation_names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

}  // namespace cqa
