// Classical SQL aggregation through FO+POLY+SUM (Lemma 4 of the paper):
// COUNT, SUM, AVG, MIN, MAX, TOTAL over the finite outputs of safe
// (semi-algebraic-to-finite, SAF) queries.

#ifndef CQA_AGGREGATE_SQL_AGGREGATES_H_
#define CQA_AGGREGATE_SQL_AGGREGATES_H_

#include <map>
#include <vector>

#include "cqa/aggregate/database.h"

namespace cqa {

/// The finite output { x : D |= phi(x, params) }, or an error if the
/// output is infinite (the query is not SAF at these parameters).
Result<std::vector<Rational>> saf_output(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params);

/// COUNT: cardinality of the SAF output.
Result<Rational> agg_count(const Database& db, const FormulaPtr& phi,
                           std::size_t var,
                           const std::map<std::size_t, Rational>& params);
/// SUM of the output values (0 for empty, SQL TOTAL semantics).
Result<Rational> agg_sum(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params);
/// AVG; error on empty output (SQL AVG of nothing is NULL).
Result<Rational> agg_avg(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params);
/// MIN / MAX; error on empty output.
Result<Rational> agg_min(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params);
Result<Rational> agg_max(const Database& db, const FormulaPtr& phi,
                         std::size_t var,
                         const std::map<std::size_t, Rational>& params);

// ---- Bag-semantics aggregation (the paper's footnote 2) ----------------
//
// These aggregate over one column of a finite relation with multiplicity,
// keeping duplicate tuples distinct. An optional filter formula over the
// tuple slots (variables 0..arity-1) restricts the bag SQL-WHERE style.

/// The filtered column as a multiset (in relation order).
Result<std::vector<Rational>> bag_column(const Database& db,
                                         const std::string& relation,
                                         std::size_t column,
                                         const FormulaPtr& filter = nullptr);

/// COUNT with multiplicity.
Result<Rational> bag_count(const Database& db, const std::string& relation,
                           std::size_t column,
                           const FormulaPtr& filter = nullptr);
/// SUM with multiplicity (0 on empty: SQL TOTAL).
Result<Rational> bag_sum(const Database& db, const std::string& relation,
                         std::size_t column,
                         const FormulaPtr& filter = nullptr);
/// Bag AVG; error on empty.
Result<Rational> bag_avg(const Database& db, const std::string& relation,
                         std::size_t column,
                         const FormulaPtr& filter = nullptr);

}  // namespace cqa

#endif  // CQA_AGGREGATE_SQL_AGGREGATES_H_
