// Constraint databases: finite and finitely-representable instances.
//
// A Database interprets schema predicates either as finite sets of rational
// tuples or as finitely-representable (f.r.) sets given by constraint
// formulas -- exactly the two instance classes of the paper (Section 2).

#ifndef CQA_AGGREGATE_DATABASE_H_
#define CQA_AGGREGATE_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cqa/logic/eval.h"
#include "cqa/logic/formula.h"

namespace cqa {

/// A named-relation database over the reals.
class Database : public PredicateOracle {
 public:
  /// Registers a finite relation (set semantics; duplicates collapse).
  Status add_finite(const std::string& name, std::size_t arity,
                    std::vector<RVec> tuples);
  /// Registers a finite relation with *bag* semantics: duplicate tuples
  /// keep their multiplicity (the paper's footnote 2 -- SQL aggregates are
  /// typically bag-based). Membership tests ignore multiplicity.
  Status add_finite_bag(const std::string& name, std::size_t arity,
                        std::vector<RVec> tuples);
  /// True iff the relation was registered with bag semantics.
  bool is_bag(const std::string& name) const;
  /// Registers an f.r. relation defined by a constraint formula whose free
  /// variables 0..arity-1 are the argument slots. The formula must be
  /// predicate-free (constraints only).
  Status add_constraint_relation(const std::string& name, std::size_t arity,
                                 FormulaPtr definition);

  bool has_relation(const std::string& name) const;
  /// Arity, or error for unknown relation.
  Result<std::size_t> arity_of(const std::string& name) const;
  bool is_finite(const std::string& name) const;

  /// Tuples of a finite relation (error for f.r. or unknown).
  Result<std::vector<RVec>> tuples_of(const std::string& name) const;
  /// Defining formula of an f.r. relation (finite relations are converted
  /// to explicit disjunctions of equalities).
  Result<FormulaPtr> definition_of(const std::string& name) const;

  /// Active domain: all rationals appearing in finite relations.
  std::set<Rational> active_domain() const;

  /// Exact membership test. F.r. relations with quantifiers go through
  /// linear QE or the polynomial decision procedure.
  bool contains(const std::string& name, const RVec& tuple) const override;

  /// Lemma 1's move: replaces every schema predicate in f by its
  /// definition (finite relations inline as disjunctions of equalities).
  Result<FormulaPtr> inline_predicates(const FormulaPtr& f) const;

  /// Decides a formula (possibly with quantifiers and predicates) under an
  /// assignment of all its free variables: substitute, inline, then run
  /// linear QE when the result is linear or the polynomial sample-point
  /// procedure otherwise. Active-domain quantifiers range over
  /// active_domain().
  Result<bool> holds(const FormulaPtr& f,
                     const std::map<std::size_t, Rational>& assignment) const;

  /// Expands active-domain quantifiers into finite conjunctions /
  /// disjunctions over active_domain().
  Result<FormulaPtr> expand_active_domain(const FormulaPtr& f) const;

  /// Names of all relations.
  std::vector<std::string> relation_names() const;

 private:
  struct Relation {
    std::size_t arity = 0;
    bool finite = true;
    bool bag = false;
    std::vector<RVec> tuples;  // finite only; sorted (duplicates iff bag)
    FormulaPtr definition;     // f.r. only
  };

  Result<const Relation*> find(const std::string& name) const;

  std::map<std::string, Relation> relations_;
  // Compiled-query cache: linear formulas are inlined + quantifier-
  // eliminated once and re-evaluated cheaply per assignment. nullptr
  // marks formulas that cannot be compiled (nonlinear). Keyed by node
  // identity; single-threaded use assumed (as is the whole library).
  mutable std::map<const Formula*, FormulaPtr> compiled_;
  mutable std::vector<FormulaPtr> compiled_keys_;
};

}  // namespace cqa

#endif  // CQA_AGGREGATE_DATABASE_H_
