// Text syntax for FO+POLY+SUM terms -- the "more streamlined and natural
// syntax" the paper's conclusion asks for.
//
// Grammar (formulas use the cqa/logic parser's syntax):
//
//   term    := factor (('+' | '-') factor)*
//   factor  := atom (('*' | '/') atom)*
//   atom    := number | ident | '-' atom | '(' term ')' | agg
//   agg     := ('sum' | 'avg') range '(' ident ':' formula ')'
//            | 'count' range
//   range   := '[' ident (',' ident)*
//                  'in' 'end' '(' ident ':' formula ')'
//                  ('|' formula)? ']'
//
// The sum construct reads: sum over tuples (w...) drawn from the END
// endpoints of { y : formula(y) }, filtered by the optional guard, of the
// unique value v with gamma(v, w...). Examples:
//
//   sum[w in end(y : (0 <= y & y <= 1) | (3 <= y & y <= 5))](x : x = w)
//   sum[a, b in end(y : Cover(y)) | a < b](v : v = b - a)
//   count[w in end(y : U(y))]
//   avg[w in end(y : U(y))](x : x = 2*w)
//   3 * sum[w in end(y : U(y))](c : c = 1) - 1/2

#ifndef CQA_AGGREGATE_SUM_PARSER_H_
#define CQA_AGGREGATE_SUM_PARSER_H_

#include <string>

#include "cqa/aggregate/sum_language.h"
#include "cqa/logic/parser.h"

namespace cqa {

/// Parses a FO+POLY+SUM term; variable names resolve through *vars.
Result<SumTermPtr> parse_sum_term(const std::string& text, VarTable* vars);

/// Throwaway-table convenience (terms without free variables).
Result<SumTermPtr> parse_sum_term(const std::string& text);

}  // namespace cqa

#endif  // CQA_AGGREGATE_SUM_PARSER_H_
