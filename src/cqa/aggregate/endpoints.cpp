#include "cqa/aggregate/endpoints.h"

#include <algorithm>

#include "cqa/constraint/qe.h"
#include "cqa/logic/decide.h"
#include "cqa/logic/transform.h"
#include "cqa/poly/root_isolation.h"
#include "cqa/poly/univariate.h"

namespace cqa {

namespace {

using Kind = Formula::Kind;

// Collects the atoms (by node) mentioning `var`; they must be univariate
// in var (separability, as in cqa/logic/decide.cpp).
Status collect_var_atoms(const FormulaPtr& f, std::size_t var,
                         std::map<const Formula*, UPoly>* out) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return Status::ok();
    case Kind::kAtom: {
      if (f->poly().degree_in(var) <= 0) return Status::ok();
      for (const auto& [m, c] : f->poly().terms()) {
        for (std::size_t i = 0; i < m.size(); ++i) {
          if (m[i] > 0 && i != var) {
            return Status::unsupported(
                "END: atom couples the range variable with a quantified "
                "variable (non-separable); use a linear formula instead");
          }
        }
      }
      out->emplace(f.get(), UPoly::from_polynomial(f->poly(), var));
      return Status::ok();
    }
    case Kind::kPredicate:
      return Status::internal("predicates must be inlined before END");
    default:
      for (const auto& c : f->children()) {
        CQA_RETURN_IF_ERROR(collect_var_atoms(c, var, out));
      }
      return Status::ok();
  }
}

FormulaPtr replace_atoms(const FormulaPtr& f,
                         const std::map<const Formula*, bool>& truths) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kPredicate:
      return f;
    case Kind::kAtom: {
      auto it = truths.find(f.get());
      if (it == truths.end()) return f;
      return it->second ? Formula::make_true() : Formula::make_false();
    }
    case Kind::kNot:
      return Formula::f_not(replace_atoms(f->children()[0], truths));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      for (const auto& c : f->children()) {
        kids.push_back(replace_atoms(c, truths));
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists:
    case Kind::kForall: {
      FormulaPtr body = replace_atoms(f->children()[0], truths);
      return f->kind() == Kind::kExists
                 ? Formula::exists(f->var(), std::move(body),
                                   f->active_domain())
                 : Formula::forall(f->var(), std::move(body),
                                   f->active_domain());
    }
  }
  CQA_CHECK(false);
  return nullptr;
}

// Decides a predicate-free sentence (qf / linear / polynomial paths).
Result<bool> decide_ground(const FormulaPtr& g) {
  if (g->is_quantifier_free()) return eval_qf(g, {});
  if (g->is_linear()) return qe_decide_sentence(g);
  return decide_sentence(g);
}

// Truth of g (one free variable `var`) at a rational point.
Result<bool> truth_at(const FormulaPtr& g, std::size_t var,
                      const Rational& value) {
  return decide_ground(substitute_var(g, var, value));
}

// Truth of g at an algebraic point: substitute exact truth values for the
// univariate var-atoms, then decide the var-free remainder.
Result<bool> truth_at_algebraic(const FormulaPtr& g, std::size_t var,
                                const std::map<const Formula*, UPoly>& atoms,
                                const AlgebraicNumber& alpha) {
  if (alpha.is_rational()) return truth_at(g, var, alpha.rational_value());
  std::map<const Formula*, bool> truths;
  for (const auto& [node, up] : atoms) {
    truths[node] = op_holds(node->op(), alpha.sign_of(up));
  }
  return decide_ground(replace_atoms(g, truths));
}

}  // namespace

Result<std::vector<Interval1D>> decompose_1d(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params) {
  // Substitute parameters, expand adom quantifiers, inline predicates.
  std::map<std::size_t, Rational> full = params;
  full.erase(var);
  // Route through Database::holds-style preprocessing: substitute + inline.
  std::map<std::size_t, Polynomial> sub;
  for (const auto& [v, val] : full) sub.emplace(v, Polynomial::constant(val));
  FormulaPtr g = substitute_vars(phi, sub);
  {
    auto ad = db.expand_active_domain(g);
    if (!ad.is_ok()) return ad.status();
    auto inlined = db.inline_predicates(ad.value());
    if (!inlined.is_ok()) return inlined.status();
    g = inlined.value();
  }
  for (std::size_t v : g->free_vars()) {
    if (v != var) {
      return Status::invalid("decompose_1d: unassigned free variable x" +
                             std::to_string(v));
    }
  }
  // Linear formulas: quantifier-eliminate first, making all atoms
  // univariate in var.
  if (g->is_linear() && !g->is_quantifier_free()) {
    auto qf = qe_linear(g);
    if (!qf.is_ok()) return qf.status();
    g = qf.value();
  }
  std::map<const Formula*, UPoly> atoms;
  CQA_RETURN_IF_ERROR(collect_var_atoms(g, var, &atoms));

  // Breakpoints: all distinct roots of the var-atoms.
  std::vector<AlgebraicNumber> roots;
  for (const auto& [node, up] : atoms) {
    for (auto& r : isolate_real_roots(up)) {
      roots.push_back(AlgebraicNumber::from_root(std::move(r)));
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const AlgebraicNumber& a, const AlgebraicNumber& b) {
              return a.cmp(b) < 0;
            });
  roots.erase(std::unique(roots.begin(), roots.end(),
                          [](const AlgebraicNumber& a,
                             const AlgebraicNumber& b) { return a.cmp(b) == 0; }),
              roots.end());

  // Elementary regions in order: low ray, point, gap, point, ..., high ray.
  struct Region {
    bool is_point;
    // For points: the root index. For gaps: between root i-1 and i
    // (i == 0: low ray; i == roots.size(): high ray).
    std::size_t idx;
    bool member = false;
  };
  std::vector<Region> regions;
  for (std::size_t i = 0; i <= roots.size(); ++i) {
    regions.push_back(Region{false, i});
    if (i < roots.size()) regions.push_back(Region{true, i});
  }
  for (auto& reg : regions) {
    Result<bool> r = false;
    if (reg.is_point) {
      r = truth_at_algebraic(g, var, atoms, roots[reg.idx]);
    } else if (roots.empty()) {
      r = truth_at(g, var, Rational(0));
    } else if (reg.idx == 0) {
      r = truth_at(g, var, roots.front().rational_below() - Rational(1));
    } else if (reg.idx == roots.size()) {
      r = truth_at(g, var, roots.back().rational_above() + Rational(1));
    } else {
      r = truth_at(g, var,
                   rational_between(roots[reg.idx - 1], roots[reg.idx]));
    }
    if (!r.is_ok()) return r.status();
    reg.member = r.value();
  }

  // Stitch contiguous member regions into maximal intervals.
  std::vector<Interval1D> out;
  std::size_t i = 0;
  while (i < regions.size()) {
    if (!regions[i].member) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < regions.size() && regions[j + 1].member) ++j;
    Interval1D iv;
    const Region& first = regions[i];
    const Region& last = regions[j];
    if (first.is_point) {
      iv.lo = roots[first.idx];
      iv.lo_closed = true;
    } else if (first.idx == 0) {
      iv.lo_infinite = true;
    } else {
      iv.lo = roots[first.idx - 1];
      iv.lo_closed = false;
    }
    if (last.is_point) {
      iv.hi = roots[last.idx];
      iv.hi_closed = true;
    } else if (last.idx == roots.size()) {
      iv.hi_infinite = true;
    } else {
      iv.hi = roots[last.idx];
      iv.hi_closed = false;
    }
    out.push_back(std::move(iv));
    i = j + 1;
  }
  return out;
}

Result<std::vector<AlgebraicNumber>> endpoints_1d(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params) {
  auto decomp = decompose_1d(db, phi, var, params);
  if (!decomp.is_ok()) return decomp.status();
  std::vector<AlgebraicNumber> out;
  for (const auto& iv : decomp.value()) {
    if (!iv.lo_infinite) out.push_back(iv.lo);
    if (!iv.hi_infinite) out.push_back(iv.hi);
  }
  std::sort(out.begin(), out.end(),
            [](const AlgebraicNumber& a, const AlgebraicNumber& b) {
              return a.cmp(b) < 0;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const AlgebraicNumber& a, const AlgebraicNumber& b) {
                          return a.cmp(b) == 0;
                        }),
            out.end());
  return out;
}

Result<std::vector<Rational>> rational_endpoints_1d(
    const Database& db, const FormulaPtr& phi, std::size_t var,
    const std::map<std::size_t, Rational>& params) {
  auto eps = endpoints_1d(db, phi, var, params);
  if (!eps.is_ok()) return eps.status();
  std::vector<Rational> out;
  out.reserve(eps.value().size());
  for (const auto& a : eps.value()) {
    if (!a.is_rational() && !a.try_make_rational()) {
      return Status::unsupported(
          "END produced an irrational endpoint (" + a.to_string() +
          "); exact summation is supported for semi-linear inputs");
    }
    out.push_back(a.rational_value());
  }
  return out;
}

Result<bool> is_finite_1d(const Database& db, const FormulaPtr& phi,
                          std::size_t var,
                          const std::map<std::size_t, Rational>& params) {
  auto decomp = decompose_1d(db, phi, var, params);
  if (!decomp.is_ok()) return decomp.status();
  for (const auto& iv : decomp.value()) {
    if (iv.lo_infinite || iv.hi_infinite) return false;
    if (iv.lo.cmp(iv.hi) != 0) return false;
  }
  return true;
}

}  // namespace cqa
