#include "cqa/aggregate/sum_parser.h"

#include <cctype>

namespace cqa {

namespace {

class SumParser {
 public:
  SumParser(const std::string& text, VarTable* vars)
      : text_(text), vars_(vars) {}

  Result<SumTermPtr> parse() {
    auto t = term();
    if (!t.is_ok()) return t;
    skip_ws();
    if (pos_ != text_.size()) {
      return Status::invalid("trailing input in sum term: " +
                             text_.substr(pos_));
    }
    return t;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_keyword(const char* kw) {
    skip_ws();
    std::size_t len = std::string(kw).size();
    if (text_.compare(pos_, len, kw) != 0) return false;
    std::size_t after = pos_ + len;
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    return true;
  }

  bool eat_keyword(const char* kw) {
    if (!at_keyword(kw)) return false;
    pos_ += std::string(kw).size();
    return true;
  }

  Status err(const std::string& msg) {
    return Status::invalid(msg + " at offset " + std::to_string(pos_) +
                           " of sum term");
  }

  std::string ident() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      out.push_back(text_[pos_++]);
    }
    return out;
  }

  // Captures a balanced-paren substring ending at the given delimiter
  // character that sits at nesting depth 0 relative to the capture start.
  Result<std::string> capture_until(char delim) {
    skip_ws();
    std::size_t start = pos_;
    int depth = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '(' || c == '[') {
        ++depth;
      } else if (c == ')' || c == ']') {
        if (depth == 0) {
          if (c == delim) return text_.substr(start, pos_ - start);
          return err("unbalanced parentheses");
        }
        --depth;
      } else if (depth == 0 && c == delim) {
        return text_.substr(start, pos_ - start);
      }
      ++pos_;
    }
    return err(std::string("expected '") + delim + "'");
  }

  Result<SumTermPtr> term() {
    auto lhs = factor();
    if (!lhs.is_ok()) return lhs;
    SumTermPtr out = lhs.value();
    for (;;) {
      if (eat('+')) {
        auto rhs = factor();
        if (!rhs.is_ok()) return rhs;
        out = SumTerm::add(out, rhs.value());
      } else if (eat('-')) {
        auto rhs = factor();
        if (!rhs.is_ok()) return rhs;
        out = SumTerm::add(out, SumTerm::neg(rhs.value()));
      } else {
        return out;
      }
    }
  }

  Result<SumTermPtr> factor() {
    auto lhs = atom();
    if (!lhs.is_ok()) return lhs;
    SumTermPtr out = lhs.value();
    for (;;) {
      if (eat('*')) {
        auto rhs = atom();
        if (!rhs.is_ok()) return rhs;
        out = SumTerm::mul(out, rhs.value());
      } else if (peek_is_division()) {
        if (!eat('/')) return err("expected '/'");
        auto rhs = atom();
        if (!rhs.is_ok()) return rhs;
        out = SumTerm::div(out, rhs.value());
      } else {
        return out;
      }
    }
  }

  // '/' directly after a number was already folded into the rational
  // literal, so any '/' seen here is term division.
  bool peek_is_division() {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == '/';
  }

  Result<SumTermPtr> atom() {
    // Fuzzing guard: '('- and '-'-nesting recurse through atom(), so a
    // pathological input must hit a bounded error, not the stack limit.
    struct DepthGuard {
      explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
      ~DepthGuard() { --*depth_; }
      int* depth_;
    } guard(&depth_);
    if (depth_ > 200) return err("sum term nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of sum term");
    if (eat('-')) {
      auto sub = atom();
      if (!sub.is_ok()) return sub;
      return SumTerm::neg(sub.value());
    }
    if (eat('(')) {
      auto sub = term();
      if (!sub.is_ok()) return sub;
      if (!eat(')')) return err("expected ')'");
      return sub;
    }
    char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return number();
    }
    if (at_keyword("sum")) return aggregate_construct(Agg::kSum);
    if (at_keyword("count")) return aggregate_construct(Agg::kCount);
    if (at_keyword("avg")) return aggregate_construct(Agg::kAvg);
    // Plain variable reference.
    std::string name = ident();
    if (name.empty()) return err("expected term");
    return SumTerm::variable(vars_->index_of(name));
  }

  Result<SumTermPtr> number() {
    std::string tok;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      tok.push_back(text_[pos_++]);
    }
    // Optional '/denominator'.
    std::size_t save = pos_;
    if (eat('/')) {
      skip_ws();
      std::string den;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        den.push_back(text_[pos_++]);
      }
      if (!den.empty()) tok += "/" + den;
      else pos_ = save;
    }
    auto r = Rational::from_string(tok);
    if (!r.is_ok()) return r.status();
    return SumTerm::constant(r.value());
  }

  enum class Agg { kSum, kCount, kAvg };

  Result<SumTermPtr> aggregate_construct(Agg agg) {
    // atom() dispatched here off at_keyword, so the keyword must still
    // be next; report malformed input instead of asserting.
    bool ate = false;
    switch (agg) {
      case Agg::kSum: ate = eat_keyword("sum"); break;
      case Agg::kCount: ate = eat_keyword("count"); break;
      case Agg::kAvg: ate = eat_keyword("avg"); break;
    }
    if (!ate) return err("expected aggregate keyword");
    if (!eat('[')) return err("expected '[' after aggregate keyword");
    // w variables.
    std::vector<std::size_t> wvars;
    for (;;) {
      std::string w = ident();
      if (w.empty()) return err("expected range variable");
      wvars.push_back(vars_->index_of(w));
      if (!eat(',')) break;
    }
    if (!eat_keyword("in")) return err("expected 'in'");
    if (!eat_keyword("end")) return err("expected 'end'");
    if (!eat('(')) return err("expected '(' after end");
    std::string range_name = ident();
    if (range_name.empty()) return err("expected END variable");
    const std::size_t range_var = vars_->index_of(range_name);
    if (!eat(':')) return err("expected ':' in end(...)");
    auto range_text = capture_until(')');
    if (!range_text.is_ok()) return range_text.status();
    if (!eat(')')) return err("expected ')' closing end(...)");
    auto range_formula = parse_formula(range_text.value(), vars_);
    if (!range_formula.is_ok()) return range_formula.status();
    // Optional guard.
    FormulaPtr guard = Formula::make_true();
    if (eat('|')) {
      auto guard_text = capture_until(']');
      if (!guard_text.is_ok()) return guard_text.status();
      auto g = parse_formula(guard_text.value(), vars_);
      if (!g.is_ok()) return g.status();
      guard = g.value();
    }
    if (!eat(']')) return err("expected ']'");

    RangeRestrictedExpr rho;
    rho.guard = std::move(guard);
    rho.range = range_formula.value();
    rho.range_var = range_var;
    rho.w_vars = std::move(wvars);

    if (agg == Agg::kCount) return SumTerm::count(std::move(rho));

    // gamma: (v : formula).
    if (!eat('(')) return err("expected '(' starting gamma");
    std::string out_name = ident();
    if (out_name.empty()) return err("expected gamma output variable");
    const std::size_t out_var = vars_->index_of(out_name);
    if (!eat(':')) return err("expected ':' in gamma");
    auto gamma_text = capture_until(')');
    if (!gamma_text.is_ok()) return gamma_text.status();
    if (!eat(')')) return err("expected ')' closing gamma");
    auto gamma_formula = parse_formula(gamma_text.value(), vars_);
    if (!gamma_formula.is_ok()) return gamma_formula.status();
    DeterministicFormula gamma{gamma_formula.value(), out_var};
    if (agg == Agg::kAvg) {
      return SumTerm::avg(std::move(rho), std::move(gamma));
    }
    return SumTerm::sum(std::move(rho), std::move(gamma));
  }

  const std::string& text_;
  VarTable* vars_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<SumTermPtr> parse_sum_term(const std::string& text, VarTable* vars) {
  return SumParser(text, vars).parse();
}

Result<SumTermPtr> parse_sum_term(const std::string& text) {
  VarTable vars;
  return parse_sum_term(text, &vars);
}

}  // namespace cqa
