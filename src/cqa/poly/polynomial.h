// Sparse multivariate polynomials over the rationals.
//
// These are the terms of FO+POLY atoms: every atomic constraint in the
// paper's languages is p(x1..xn) op 0 with p a polynomial over Q. The
// representation is a sorted map from exponent vectors to coefficients.

#ifndef CQA_POLY_POLYNOMIAL_H_
#define CQA_POLY_POLYNOMIAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cqa/arith/rational.h"
#include "cqa/linalg/matrix.h"
#include "cqa/util/status.h"

namespace cqa {

/// Exponent vector; index = variable id, value = exponent. May be shorter
/// than the ambient variable count (missing entries are exponent 0).
using Monomial = std::vector<unsigned>;

/// Sparse multivariate polynomial with rational coefficients.
///
/// Variables are identified by index 0,1,2,... The polynomial does not
/// carry an ambient dimension; operations align variable indices.
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;

  /// The constant polynomial c.
  static Polynomial constant(Rational c);
  /// The variable x_i.
  static Polynomial variable(std::size_t i);
  /// Builds from (monomial, coefficient) pairs; zero coefficients dropped.
  static Polynomial from_terms(
      std::vector<std::pair<Monomial, Rational>> terms);

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Constant term (coefficient of the empty monomial).
  Rational constant_term() const;

  /// Largest variable index used, or -1 if constant.
  int max_var() const;
  /// Total degree (max sum of exponents); -1 for the zero polynomial.
  int total_degree() const;
  /// Degree in variable i (0 if i unused); -1 for the zero polynomial.
  int degree_in(std::size_t i) const;
  /// Number of terms.
  std::size_t num_terms() const { return terms_.size(); }

  Polynomial operator-() const;
  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial operator*(const Rational& c) const;
  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }
  Polynomial& operator-=(const Polynomial& o) { return *this = *this - o; }
  Polynomial& operator*=(const Polynomial& o) { return *this = *this * o; }

  bool operator==(const Polynomial& o) const { return terms_ == o.terms_; }
  bool operator!=(const Polynomial& o) const { return !(*this == o); }

  /// Integer power, e >= 0.
  Polynomial pow(unsigned e) const;

  /// Partial derivative with respect to x_i.
  Polynomial derivative(std::size_t i) const;

  /// Evaluates at a full rational point (point.size() > max_var()).
  Rational eval(const RVec& point) const;

  /// Evaluates at a double point (fast path for Monte-Carlo sampling).
  double eval_double(const std::vector<double>& point) const;

  /// Substitutes x_i := value, producing a polynomial without x_i.
  Polynomial substitute(std::size_t i, const Rational& value) const;

  /// Substitutes x_i := p (polynomial composition in one slot).
  Polynomial substitute(std::size_t i, const Polynomial& p) const;

  /// Renames variable i -> j (j must be unused unless j == i).
  Polynomial rename(std::size_t i, std::size_t j) const;

  /// Views the polynomial as univariate in x_i: returns coefficients
  /// c_0..c_d (polynomials not involving x_i) with *this = sum c_k x_i^k.
  std::vector<Polynomial> coefficients_in(std::size_t i) const;

  /// True iff total degree <= 1 (affine).
  bool is_linear() const { return total_degree() <= 1; }

  /// Iteration over (monomial, coefficient) pairs.
  const std::map<Monomial, Rational>& terms() const { return terms_; }

  /// Human-readable rendering, e.g. "2*x0^2*x1 - 1/2".
  std::string to_string() const;
  /// Rendering with variable names supplied by the caller.
  std::string to_string(const std::vector<std::string>& var_names) const;

 private:
  void add_term(Monomial m, Rational c);
  static void trim_monomial(Monomial* m);

  std::map<Monomial, Rational> terms_;
};

inline Polynomial operator*(const Rational& c, const Polynomial& p) {
  return p * c;
}

}  // namespace cqa

#endif  // CQA_POLY_POLYNOMIAL_H_
