// Real algebraic numbers with exact sign determination.
//
// An AlgebraicNumber is a root of a square-free rational polynomial,
// pinned down by an isolating interval. The key operation for the decision
// procedure is sign_of(q): the exact sign of another polynomial at this
// number, decided by gcd arguments plus interval refinement.

#ifndef CQA_POLY_ALGEBRAIC_H_
#define CQA_POLY_ALGEBRAIC_H_

#include <string>

#include "cqa/arith/rational.h"
#include "cqa/poly/root_isolation.h"
#include "cqa/poly/univariate.h"

namespace cqa {

/// A real algebraic number.
class AlgebraicNumber {
 public:
  /// The rational q viewed as an algebraic number.
  static AlgebraicNumber from_rational(const Rational& q);
  /// From an isolated root.
  static AlgebraicNumber from_root(IsolatedRoot root);

  /// True iff the number is (known to be) rational.
  bool is_rational() const { return root_.is_exact(); }
  /// The exact rational value; aborts unless is_rational().
  const Rational& rational_value() const {
    CQA_CHECK(root_.is_exact());
    return root_.lo;
  }

  /// Current isolating bounds (lo == hi when rational).
  const Rational& lo() const { return root_.lo; }
  const Rational& hi() const { return root_.hi; }

  /// Exact sign of q evaluated at this number: -1, 0, or +1.
  int sign_of(const UPoly& q) const;

  /// Exact comparison with a rational.
  int cmp(const Rational& q) const { return root_cmp(root_, q); }
  /// Exact comparison with another algebraic number.
  int cmp(const AlgebraicNumber& o) const { return root_cmp(root_, o.root_); }

  bool operator<(const AlgebraicNumber& o) const { return cmp(o) < 0; }
  bool operator==(const AlgebraicNumber& o) const { return cmp(o) == 0; }

  /// Shrinks the isolating interval below the given width.
  void refine_to_width(const Rational& w) {
    refine_root_to_width(&root_, w);
  }

  /// Attempts to certify the number rational by refining up to
  /// `max_refinements` times (each refinement tries the simplest rational
  /// in the interval; a rational root with denominator q is certain to be
  /// detected once the interval is narrower than 1/q^2). Returns
  /// is_rational() afterwards; irrational numbers simply stay interval-
  /// represented.
  bool try_make_rational(int max_refinements = 64) const {
    for (int i = 0; i < max_refinements && !root_.is_exact(); ++i) {
      refine_root(&root_);
    }
    return root_.is_exact();
  }

  /// A rational strictly smaller / larger than this number.
  Rational rational_below() const;
  Rational rational_above() const;

  double to_double() const;
  std::string to_string() const;

 private:
  explicit AlgebraicNumber(IsolatedRoot root) : root_(std::move(root)) {}

  mutable IsolatedRoot root_;
};

}  // namespace cqa

#endif  // CQA_POLY_ALGEBRAIC_H_
