#include "cqa/poly/root_isolation.h"

#include <algorithm>

namespace cqa {

namespace {

// Recursively isolates roots of sf in the open interval (a, b), where
// sf(a) != 0 != sf(b). `sturm` is the Sturm chain of sf.
void isolate_rec(const UPoly& sf, const SturmSequence& sturm,
                 const Rational& a, const Rational& b,
                 std::vector<IsolatedRoot>* out) {
  const int count = sturm.count_roots(a, b);  // (a, b] == (a, b): b not a root
  if (count == 0) return;
  if (count == 1) {
    out->push_back(IsolatedRoot{sf, a, b});
    return;
  }
  Rational m = Rational::mid(a, b);
  if (sf.eval(m).is_zero()) {
    // Shrink around m until (m-eps, m+eps) contains only the root m, then
    // recurse on the two outer pieces.
    Rational eps = (b - a) * Rational(1, 4);
    while (sturm.count_roots(m - eps, m + eps) != 1 ||
           sf.eval(m - eps).is_zero() || sf.eval(m + eps).is_zero()) {
      eps = eps * Rational(1, 2);
    }
    out->push_back(IsolatedRoot{sf, m, m});
    isolate_rec(sf, sturm, a, m - eps, out);
    isolate_rec(sf, sturm, m + eps, b, out);
    return;
  }
  isolate_rec(sf, sturm, a, m, out);
  isolate_rec(sf, sturm, m, b, out);
}

}  // namespace

std::vector<IsolatedRoot> isolate_real_roots(const UPoly& p) {
  if (p.degree() <= 0) return {};
  UPoly sf = p.square_free_part();
  if (sf.degree() == 1) {
    // Root is -c0/c1, exactly.
    Rational r = -sf.coeff(0) / sf.coeff(1);
    return {IsolatedRoot{sf, r, r}};
  }
  SturmSequence sturm(sf);
  Rational bound = cauchy_root_bound(sf);
  std::vector<IsolatedRoot> out;
  isolate_rec(sf, sturm, -bound, bound, &out);
  // One cheap rational-root detection pass (refine_root retries on every
  // later refinement, so undetected rational roots still converge).
  for (auto& r : out) {
    if (!r.is_exact()) refine_root(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const IsolatedRoot& x, const IsolatedRoot& y) {
              // Isolating intervals of distinct roots are disjoint, so
              // comparing left endpoints is a correct order; exact roots
              // compare by value.
              if (x.lo != y.lo) return x.lo < y.lo;
              return x.hi < y.hi;
            });
  return out;
}

void refine_root(IsolatedRoot* r) {
  if (r->is_exact()) return;
  // Rational-root detection: the simplest rational in the interval is a
  // cheap candidate; if the (unique) root in the interval is rational with
  // denominator q, it becomes the simplest candidate once the interval is
  // narrower than 1/q^2, so repeated refinement eventually detects every
  // rational root exactly.
  Rational simple = Rational::simplest_in_open(r->lo, r->hi);
  if (r->poly.eval(simple).is_zero()) {
    r->lo = simple;
    r->hi = simple;
    return;
  }
  Rational m = Rational::mid(r->lo, r->hi);
  Rational vm = r->poly.eval(m);
  if (vm.is_zero()) {
    r->lo = m;
    r->hi = m;
    return;
  }
  // Root lies on the side where the sign differs from sign at m... we use
  // Sturm-free logic: p is square-free with exactly one root in (lo, hi),
  // so p(lo) and p(hi) have opposite signs and we can bisect by sign.
  Rational vlo = r->poly.eval(r->lo);
  CQA_DCHECK(!vlo.is_zero());
  if (vlo.sign() * vm.sign() < 0) {
    r->hi = m;
  } else {
    r->lo = m;
  }
}

void refine_root_to_width(IsolatedRoot* r, const Rational& w) {
  while (!r->is_exact() && r->width() >= w) refine_root(r);
}

int root_cmp(const IsolatedRoot& r, const Rational& a) {
  if (r.is_exact()) return r.lo.cmp(a);
  if (a <= r.lo) return 1;   // root > lo >= a (root strictly inside)
  if (a >= r.hi) return -1;  // root < hi <= a
  if (r.poly.eval(a).is_zero()) return 0;  // a is the unique root inside
  // Count roots of poly in (lo, a]: 1 iff root <= a, i.e. root < a here.
  SturmSequence sturm(r.poly);
  return sturm.count_roots(r.lo, a) == 1 ? -1 : 1;
}

bool root_greater_than(const IsolatedRoot& r, const Rational& a) {
  return root_cmp(r, a) > 0;
}

int root_cmp(const IsolatedRoot& a, const IsolatedRoot& b) {
  if (a.is_exact()) return -root_cmp(b, a.lo);
  if (b.is_exact()) return root_cmp(a, b.lo);
  IsolatedRoot x = a, y = b;
  for (;;) {
    if (x.hi <= y.lo) {
      // Possibly equal only if both equal the shared endpoint; endpoints
      // are non-roots for non-exact intervals, so strictly less.
      if (x.is_exact() && y.is_exact()) return x.lo.cmp(y.lo);
      return -1;
    }
    if (y.hi <= x.lo) {
      if (x.is_exact() && y.is_exact()) return x.lo.cmp(y.lo);
      return 1;
    }
    // Intervals overlap: test equality via gcd of the defining polynomials.
    UPoly g = UPoly::gcd(x.poly, y.poly);
    if (g.degree() >= 1) {
      Rational lo = std::max(x.lo, y.lo);
      Rational hi = std::min(x.hi, y.hi);
      SturmSequence sg(g);
      if (lo < hi && sg.count_roots(lo, hi) >= 1) {
        // A common root inside both isolating intervals must be both roots.
        return 0;
      }
      if (g.eval(lo).is_zero() &&
          root_cmp(x, lo) == 0 && root_cmp(y, lo) == 0) {
        return 0;
      }
    }
    refine_root(&x);
    refine_root(&y);
    if (x.is_exact()) return -root_cmp(y, x.lo);
    if (y.is_exact()) return root_cmp(x, y.lo);
  }
}

}  // namespace cqa
