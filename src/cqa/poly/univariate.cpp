#include "cqa/poly/univariate.h"

#include <algorithm>
#include <sstream>

namespace cqa {

UPoly UPoly::from_polynomial(const Polynomial& p, std::size_t var) {
  std::vector<Rational> coeffs;
  for (const auto& [m, c] : p.terms()) {
    unsigned e = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      CQA_CHECK(i == var);
      e = m[i];
    }
    if (coeffs.size() <= e) coeffs.resize(e + 1);
    coeffs[e] += c;
  }
  return UPoly(std::move(coeffs));
}

UPoly UPoly::operator-() const {
  std::vector<Rational> c(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) c[i] = -coeffs_[i];
  return UPoly(std::move(c));
}

UPoly UPoly::operator+(const UPoly& o) const {
  std::vector<Rational> c(std::max(coeffs_.size(), o.coeffs_.size()));
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i < coeffs_.size()) c[i] += coeffs_[i];
    if (i < o.coeffs_.size()) c[i] += o.coeffs_[i];
  }
  return UPoly(std::move(c));
}

UPoly UPoly::operator-(const UPoly& o) const { return *this + (-o); }

UPoly UPoly::operator*(const UPoly& o) const {
  if (is_zero() || o.is_zero()) return UPoly();
  std::vector<Rational> c(coeffs_.size() + o.coeffs_.size() - 1);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].is_zero()) continue;
    for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
      c[i + j] += coeffs_[i] * o.coeffs_[j];
    }
  }
  return UPoly(std::move(c));
}

UPoly UPoly::operator*(const Rational& c) const {
  std::vector<Rational> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i] = coeffs_[i] * c;
  return UPoly(std::move(out));
}

UPoly::DivMod UPoly::divmod(const UPoly& d) const {
  CQA_CHECK(!d.is_zero());
  std::vector<Rational> rem = coeffs_;
  std::vector<Rational> quot;
  const int dd = d.degree();
  int rd = static_cast<int>(rem.size()) - 1;
  if (rd >= dd) quot.assign(static_cast<std::size_t>(rd - dd) + 1, Rational());
  const Rational lead_inv = d.lead().inverse();
  while (rd >= dd) {
    while (rd >= 0 && rem[static_cast<std::size_t>(rd)].is_zero()) --rd;
    if (rd < dd) break;
    Rational f = rem[static_cast<std::size_t>(rd)] * lead_inv;
    quot[static_cast<std::size_t>(rd - dd)] = f;
    for (int i = 0; i <= dd; ++i) {
      rem[static_cast<std::size_t>(rd - dd + i)] -=
          f * d.coeffs_[static_cast<std::size_t>(i)];
    }
    --rd;
  }
  return {UPoly(std::move(quot)), UPoly(std::move(rem))};
}

Rational UPoly::eval(const Rational& x) const {
  Rational out;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    out = out * x + coeffs_[i];
  }
  return out;
}

RationalInterval UPoly::eval_interval(const RationalInterval& iv) const {
  RationalInterval out;  // [0, 0]
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    out = out * iv + RationalInterval(coeffs_[i]);
  }
  return out;
}

double UPoly::eval_double(double x) const {
  double out = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    out = out * x + coeffs_[i].to_double();
  }
  return out;
}

int UPoly::sign_at_pos_inf() const {
  return is_zero() ? 0 : lead().sign();
}

int UPoly::sign_at_neg_inf() const {
  if (is_zero()) return 0;
  int s = lead().sign();
  return degree() % 2 == 0 ? s : -s;
}

UPoly UPoly::derivative() const {
  if (coeffs_.size() <= 1) return UPoly();
  std::vector<Rational> c(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    c[i - 1] = coeffs_[i] * Rational(static_cast<std::int64_t>(i));
  }
  return UPoly(std::move(c));
}

UPoly UPoly::antiderivative() const {
  if (is_zero()) return UPoly();
  std::vector<Rational> c(coeffs_.size() + 1);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    c[i + 1] = coeffs_[i] / Rational(static_cast<std::int64_t>(i + 1));
  }
  return UPoly(std::move(c));
}

Rational UPoly::integrate(const Rational& a, const Rational& b) const {
  UPoly f = antiderivative();
  return f.eval(b) - f.eval(a);
}

UPoly UPoly::monic() const {
  if (is_zero()) return UPoly();
  return *this * lead().inverse();
}

UPoly UPoly::gcd(const UPoly& a, const UPoly& b) {
  UPoly x = a, y = b;
  while (!y.is_zero()) {
    UPoly r = x.divmod(y).rem;
    x = y;
    y = std::move(r);
  }
  return x.monic();
}

UPoly UPoly::square_free_part() const {
  if (degree() <= 0) return monic();
  UPoly g = gcd(*this, derivative());
  if (g.degree() <= 0) return monic();
  DivMod dm = divmod(g);
  CQA_DCHECK(dm.rem.is_zero());
  return dm.quot.monic();
}

UPoly UPoly::compose(const UPoly& g) const {
  UPoly out;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    out = out * g + constant(coeffs_[i]);
  }
  return out;
}

Polynomial UPoly::to_polynomial(std::size_t var) const {
  Polynomial out;
  Polynomial x = Polynomial::variable(var);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].is_zero()) continue;
    out += x.pow(static_cast<unsigned>(i)) * coeffs_[i];
  }
  return out;
}

std::string UPoly::to_string(const std::string& var) const {
  if (is_zero()) return "0";
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    const Rational& c = coeffs_[i];
    if (c.is_zero()) continue;
    Rational a = c;
    if (first) {
      if (a.sign() < 0) {
        os << "-";
        a = -a;
      }
      first = false;
    } else {
      os << (a.sign() < 0 ? " - " : " + ");
      a = a.abs();
    }
    if (i == 0) {
      os << a.to_string();
    } else {
      if (a != Rational(1)) os << a.to_string() << "*";
      os << var;
      if (i > 1) os << "^" << i;
    }
  }
  return os.str();
}

SturmSequence::SturmSequence(const UPoly& p) {
  UPoly sf = p.square_free_part();
  if (sf.is_zero() || sf.degree() == 0) {
    chain_.push_back(sf);
    return;
  }
  chain_.push_back(sf);
  chain_.push_back(sf.derivative());
  while (chain_.back().degree() > 0) {
    UPoly r = chain_[chain_.size() - 2].divmod(chain_.back()).rem;
    if (r.is_zero()) break;
    chain_.push_back(-r);
  }
}

int SturmSequence::variations(const std::vector<int>& signs) {
  int v = 0;
  int prev = 0;
  for (int s : signs) {
    if (s == 0) continue;
    if (prev != 0 && s != prev) ++v;
    prev = s;
  }
  return v;
}

int SturmSequence::variations_at(const Rational& x) const {
  std::vector<int> signs;
  signs.reserve(chain_.size());
  for (const UPoly& p : chain_) signs.push_back(p.eval(x).sign());
  return variations(signs);
}

int SturmSequence::variations_at_neg_inf() const {
  std::vector<int> signs;
  signs.reserve(chain_.size());
  for (const UPoly& p : chain_) signs.push_back(p.sign_at_neg_inf());
  return variations(signs);
}

int SturmSequence::variations_at_pos_inf() const {
  std::vector<int> signs;
  signs.reserve(chain_.size());
  for (const UPoly& p : chain_) signs.push_back(p.sign_at_pos_inf());
  return variations(signs);
}

int SturmSequence::count_roots(const Rational& a, const Rational& b) const {
  CQA_CHECK(a <= b);
  return variations_at(a) - variations_at(b);
}

int SturmSequence::count_real_roots() const {
  return variations_at_neg_inf() - variations_at_pos_inf();
}

int SturmSequence::count_roots_above(const Rational& a) const {
  return variations_at(a) - variations_at_pos_inf();
}

Rational cauchy_root_bound(const UPoly& p) {
  if (p.degree() <= 0) return Rational(1);
  Rational max_ratio;
  const Rational lead_abs = p.lead().abs();
  for (int i = 0; i < p.degree(); ++i) {
    Rational r = p.coeff(static_cast<std::size_t>(i)).abs() / lead_abs;
    if (r > max_ratio) max_ratio = r;
  }
  return Rational(1) + max_ratio;
}

}  // namespace cqa
