#include "cqa/poly/interpolation.h"

#include "cqa/util/status.h"

namespace cqa {

UPoly interpolate(const std::vector<std::pair<Rational, Rational>>& points) {
  const std::size_t n = points.size();
  CQA_CHECK(n > 0);
  // Newton divided differences.
  std::vector<Rational> coef(n);
  {
    std::vector<Rational> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = points[i].second;
    coef[0] = col[0];
    for (std::size_t level = 1; level < n; ++level) {
      for (std::size_t i = 0; i + level < n; ++i) {
        const Rational dx = points[i + level].first - points[i].first;
        CQA_CHECK(!dx.is_zero());
        col[i] = (col[i + 1] - col[i]) / dx;
      }
      coef[level] = col[0];
    }
  }
  // Expand Newton form: sum coef[k] * prod_{j<k} (x - x_j).
  UPoly result;
  UPoly basis = UPoly::constant(Rational(1));
  for (std::size_t k = 0; k < n; ++k) {
    result = result + basis * coef[k];
    basis = basis * UPoly({-points[k].first, Rational(1)});
  }
  return result;
}

std::vector<Rational> sample_points(const Rational& a, const Rational& b,
                                    std::size_t count) {
  CQA_CHECK(a < b);
  CQA_CHECK(count > 0);
  std::vector<Rational> out;
  out.reserve(count);
  const Rational step = (b - a) / Rational(static_cast<std::int64_t>(count) + 1);
  for (std::size_t i = 1; i <= count; ++i) {
    out.push_back(a + step * Rational(static_cast<std::int64_t>(i)));
  }
  return out;
}

}  // namespace cqa
