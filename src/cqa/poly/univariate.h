// Dense univariate polynomials over Q and Sturm-sequence machinery.
//
// This is the engine behind END (interval endpoints of one-dimensional
// definable sets, Section 5 of the paper) and behind the sample-point
// decision procedure for FO+POLY quantifiers.

#ifndef CQA_POLY_UNIVARIATE_H_
#define CQA_POLY_UNIVARIATE_H_

#include <string>
#include <vector>

#include "cqa/arith/interval.h"
#include "cqa/arith/rational.h"
#include "cqa/poly/polynomial.h"
#include "cqa/util/status.h"

namespace cqa {

/// Dense univariate polynomial, coefficients low-degree-first, normalized
/// (no trailing zeros; the zero polynomial has an empty vector).
class UPoly {
 public:
  /// The zero polynomial.
  UPoly() = default;
  /// From coefficients c0, c1, ... (c0 + c1 x + ...).
  explicit UPoly(std::vector<Rational> coeffs) : coeffs_(std::move(coeffs)) {
    normalize();
  }
  /// Constant polynomial.
  static UPoly constant(Rational c) { return UPoly({std::move(c)}); }
  /// The monomial x.
  static UPoly x() { return UPoly({Rational(0), Rational(1)}); }

  /// Converts a multivariate polynomial that uses at most variable `var`
  /// into a UPoly in that variable. Aborts if other variables appear.
  static UPoly from_polynomial(const Polynomial& p, std::size_t var);

  bool is_zero() const { return coeffs_.empty(); }
  /// -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<Rational>& coeffs() const { return coeffs_; }
  /// Leading coefficient; aborts on zero polynomial.
  const Rational& lead() const {
    CQA_CHECK(!coeffs_.empty());
    return coeffs_.back();
  }
  /// Coefficient of x^k (0 beyond degree).
  Rational coeff(std::size_t k) const {
    return k < coeffs_.size() ? coeffs_[k] : Rational();
  }

  UPoly operator-() const;
  UPoly operator+(const UPoly& o) const;
  UPoly operator-(const UPoly& o) const;
  UPoly operator*(const UPoly& o) const;
  UPoly operator*(const Rational& c) const;
  bool operator==(const UPoly& o) const { return coeffs_ == o.coeffs_; }
  bool operator!=(const UPoly& o) const { return !(*this == o); }

  /// Quotient and remainder of polynomial division in one pass. Defined
  /// below the class (it holds UPoly members).
  struct DivMod;
  /// Polynomial division: *this = quot * d + rem with deg rem < deg d.
  /// Aborts if d is zero.
  DivMod divmod(const UPoly& d) const;

  /// Horner evaluation.
  Rational eval(const Rational& x) const;
  double eval_double(double x) const;
  /// Interval Horner evaluation: a rational interval guaranteed to contain
  /// { p(x) : x in iv }. Used for cheap exact sign determination at
  /// algebraic points before falling back to Sturm refinement.
  RationalInterval eval_interval(const RationalInterval& iv) const;

  /// Sign of the polynomial at +infinity (0 for zero polynomial).
  int sign_at_pos_inf() const;
  /// Sign at -infinity.
  int sign_at_neg_inf() const;

  UPoly derivative() const;
  /// Exact antiderivative with zero constant term.
  UPoly antiderivative() const;
  /// Exact definite integral over [a, b].
  Rational integrate(const Rational& a, const Rational& b) const;

  /// Scales to a monic polynomial (leading coefficient 1); zero stays zero.
  UPoly monic() const;

  /// gcd, returned monic (gcd(0,0) == 0).
  static UPoly gcd(const UPoly& a, const UPoly& b);

  /// The square-free part p / gcd(p, p'), monic. Same real roots as p.
  UPoly square_free_part() const;

  /// Composition: this(g(x)).
  UPoly compose(const UPoly& g) const;

  /// Back to a (univariate) multivariate polynomial in variable `var`.
  Polynomial to_polynomial(std::size_t var) const;

  std::string to_string(const std::string& var = "x") const;

 private:
  void normalize() {
    while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
  }

  std::vector<Rational> coeffs_;
};

struct UPoly::DivMod {
  UPoly quot;
  UPoly rem;
};

/// Sturm sequence of a polynomial: p, p', then negated remainders.
class SturmSequence {
 public:
  /// Builds the canonical Sturm chain of p (p need not be square-free;
  /// the chain then counts distinct roots of the square-free part).
  explicit SturmSequence(const UPoly& p);

  /// Number of sign variations of the chain evaluated at x.
  int variations_at(const Rational& x) const;
  /// Variations at -infinity / +infinity.
  int variations_at_neg_inf() const;
  int variations_at_pos_inf() const;

  /// Number of distinct real roots in the half-open interval (a, b].
  int count_roots(const Rational& a, const Rational& b) const;
  /// Number of distinct real roots on all of R.
  int count_real_roots() const;
  /// Number of distinct real roots in (a, +inf).
  int count_roots_above(const Rational& a) const;

  const std::vector<UPoly>& chain() const { return chain_; }

 private:
  static int variations(const std::vector<int>& signs);

  std::vector<UPoly> chain_;
};

/// Cauchy bound: all real roots of p lie in (-B, B).
Rational cauchy_root_bound(const UPoly& p);

}  // namespace cqa

#endif  // CQA_POLY_UNIVARIATE_H_
