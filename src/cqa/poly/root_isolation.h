// Exact isolation of the real roots of a univariate rational polynomial.
//
// Sturm-based bisection. Each root is returned either as an exact rational
// value or as an open interval with rational, non-root endpoints containing
// exactly one root of the (square-free part of the) polynomial.

#ifndef CQA_POLY_ROOT_ISOLATION_H_
#define CQA_POLY_ROOT_ISOLATION_H_

#include <vector>

#include "cqa/arith/rational.h"
#include "cqa/poly/univariate.h"

namespace cqa {

/// One isolated real root of a square-free polynomial.
struct IsolatedRoot {
  /// Square-free polynomial this is a root of.
  UPoly poly;
  /// Isolating bounds. lo == hi means the root is exactly this rational.
  /// Otherwise poly has exactly one root in the open interval (lo, hi) and
  /// poly(lo) != 0 != poly(hi).
  Rational lo;
  Rational hi;

  bool is_exact() const { return lo == hi; }
  Rational width() const { return hi - lo; }
  /// A representative rational approximation (the midpoint).
  Rational approx() const { return Rational::mid(lo, hi); }
  double to_double() const { return approx().to_double(); }
};

/// Isolates all distinct real roots of p, in increasing order.
/// Returns an empty vector for constants (including the zero polynomial,
/// whose "roots are everything" case callers must special-case).
std::vector<IsolatedRoot> isolate_real_roots(const UPoly& p);

/// Halves the width of a non-exact root's interval (no-op for exact roots).
/// May discover the root is exactly rational and collapse the interval.
void refine_root(IsolatedRoot* r);

/// Refines until width < w (or the root collapses to an exact rational).
void refine_root_to_width(IsolatedRoot* r, const Rational& w);

/// True iff a < root (exact comparison).
bool root_greater_than(const IsolatedRoot& r, const Rational& a);
/// Exact three-way comparison of the root against a rational.
int root_cmp(const IsolatedRoot& r, const Rational& a);
/// Exact three-way comparison of two isolated roots (possibly of different
/// polynomials).
int root_cmp(const IsolatedRoot& a, const IsolatedRoot& b);

}  // namespace cqa

#endif  // CQA_POLY_ROOT_ISOLATION_H_
