// Exact polynomial interpolation.
//
// Theorem 3's volume sweep evaluates the section-volume function g(t) at
// rational sample points and reconstructs it exactly on each breakpoint
// interval; Newton divided differences over Q make that reconstruction
// exact.

#ifndef CQA_POLY_INTERPOLATION_H_
#define CQA_POLY_INTERPOLATION_H_

#include <utility>
#include <vector>

#include "cqa/arith/rational.h"
#include "cqa/poly/univariate.h"

namespace cqa {

/// The unique polynomial of degree < points.size() through the given
/// (x, y) pairs (x values must be distinct). Exact (Newton form expanded).
UPoly interpolate(const std::vector<std::pair<Rational, Rational>>& points);

/// Generates `count` distinct rational sample points strictly inside
/// (a, b), evenly spaced.
std::vector<Rational> sample_points(const Rational& a, const Rational& b,
                                    std::size_t count);

}  // namespace cqa

#endif  // CQA_POLY_INTERPOLATION_H_
