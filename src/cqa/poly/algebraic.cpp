#include "cqa/poly/algebraic.h"

#include <algorithm>

namespace cqa {

AlgebraicNumber AlgebraicNumber::from_rational(const Rational& q) {
  // Defining polynomial x - q.
  UPoly p({-q, Rational(1)});
  return AlgebraicNumber(IsolatedRoot{std::move(p), q, q});
}

AlgebraicNumber AlgebraicNumber::from_root(IsolatedRoot root) {
  return AlgebraicNumber(std::move(root));
}

int AlgebraicNumber::sign_of(const UPoly& q) const {
  if (q.is_zero()) return 0;
  if (root_.is_exact()) return q.eval(root_.lo).sign();
  // Fast path: interval Horner; a definite sign over the whole isolating
  // interval is the sign at the root, no gcd or Sturm work needed.
  {
    int s = q.eval_interval(RationalInterval(root_.lo, root_.hi))
                .definite_sign();
    if (s != 0) return s;
  }
  // Zero test: q(alpha) == 0 iff gcd(p, q) vanishes at alpha, i.e. the gcd
  // has a root inside the isolating interval (that root must be alpha,
  // since it is also a root of p and p has exactly one root there).
  UPoly g = UPoly::gcd(root_.poly, q);
  if (g.degree() >= 1) {
    SturmSequence sg(g);
    if (sg.count_roots(root_.lo, root_.hi) >= 1 ||
        (g.eval(root_.lo).is_zero() && root_cmp(root_, root_.lo) == 0)) {
      return 0;
    }
  }
  // q(alpha) != 0: refine until no root of q lies strictly inside the
  // interval, then the sign at the midpoint is the sign at alpha.
  SturmSequence sq(q);
  for (;;) {
    if (root_.is_exact()) return q.eval(root_.lo).sign();
    // Roots of q in (lo, hi): count in (lo, hi] minus right endpoint.
    int inside = sq.count_roots(root_.lo, root_.hi);
    if (q.eval(root_.hi).is_zero()) inside -= 1;
    if (inside == 0) {
      Rational m = Rational::mid(root_.lo, root_.hi);
      int s = q.eval(m).sign();
      CQA_DCHECK(s != 0);
      return s;
    }
    refine_root(&root_);
  }
}

Rational AlgebraicNumber::rational_below() const {
  if (root_.is_exact()) return root_.lo - Rational(1);
  return root_.lo;  // endpoints are non-roots, strictly below alpha
}

Rational AlgebraicNumber::rational_above() const {
  if (root_.is_exact()) return root_.lo + Rational(1);
  return root_.hi;
}

double AlgebraicNumber::to_double() const {
  if (root_.is_exact()) return root_.lo.to_double();
  IsolatedRoot copy = root_;
  refine_root_to_width(&copy, Rational(1, 1000000000));
  return copy.approx().to_double();
}

std::string AlgebraicNumber::to_string() const {
  if (root_.is_exact()) return root_.lo.to_string();
  return "root of (" + root_.poly.to_string() + ") in (" +
         root_.lo.to_string() + ", " + root_.hi.to_string() + ")";
}

}  // namespace cqa
