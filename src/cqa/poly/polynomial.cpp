#include "cqa/poly/polynomial.h"

#include <algorithm>
#include <sstream>

namespace cqa {

void Polynomial::trim_monomial(Monomial* m) {
  while (!m->empty() && m->back() == 0) m->pop_back();
}

void Polynomial::add_term(Monomial m, Rational c) {
  if (c.is_zero()) return;
  trim_monomial(&m);
  auto it = terms_.find(m);
  if (it == terms_.end()) {
    terms_.emplace(std::move(m), std::move(c));
  } else {
    it->second += c;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

Polynomial Polynomial::constant(Rational c) {
  Polynomial p;
  p.add_term({}, std::move(c));
  return p;
}

Polynomial Polynomial::variable(std::size_t i) {
  Polynomial p;
  Monomial m(i + 1, 0);
  m[i] = 1;
  p.add_term(std::move(m), Rational(1));
  return p;
}

Polynomial Polynomial::from_terms(
    std::vector<std::pair<Monomial, Rational>> terms) {
  Polynomial p;
  for (auto& [m, c] : terms) p.add_term(std::move(m), std::move(c));
  return p;
}

bool Polynomial::is_constant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.empty());
}

Rational Polynomial::constant_term() const {
  auto it = terms_.find({});
  return it == terms_.end() ? Rational() : it->second;
}

int Polynomial::max_var() const {
  int mv = -1;
  for (const auto& [m, c] : terms_) {
    if (!m.empty()) mv = std::max(mv, static_cast<int>(m.size()) - 1);
  }
  return mv;
}

int Polynomial::total_degree() const {
  if (terms_.empty()) return -1;
  int deg = 0;
  for (const auto& [m, c] : terms_) {
    int d = 0;
    for (unsigned e : m) d += static_cast<int>(e);
    deg = std::max(deg, d);
  }
  return deg;
}

int Polynomial::degree_in(std::size_t i) const {
  if (terms_.empty()) return -1;
  int deg = 0;
  for (const auto& [m, c] : terms_) {
    if (i < m.size()) deg = std::max(deg, static_cast<int>(m[i]));
  }
  return deg;
}

Polynomial Polynomial::operator-() const {
  Polynomial p;
  for (const auto& [m, c] : terms_) p.terms_.emplace(m, -c);
  return p;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  Polynomial p = *this;
  for (const auto& [m, c] : o.terms_) p.add_term(m, c);
  return p;
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  Polynomial p = *this;
  for (const auto& [m, c] : o.terms_) p.add_term(m, -c);
  return p;
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  Polynomial p;
  for (const auto& [m1, c1] : terms_) {
    for (const auto& [m2, c2] : o.terms_) {
      Monomial m(std::max(m1.size(), m2.size()), 0);
      for (std::size_t i = 0; i < m1.size(); ++i) m[i] += m1[i];
      for (std::size_t i = 0; i < m2.size(); ++i) m[i] += m2[i];
      p.add_term(std::move(m), c1 * c2);
    }
  }
  return p;
}

Polynomial Polynomial::operator*(const Rational& c) const {
  if (c.is_zero()) return Polynomial();
  Polynomial p;
  for (const auto& [m, coef] : terms_) p.terms_.emplace(m, coef * c);
  return p;
}

Polynomial Polynomial::pow(unsigned e) const {
  Polynomial result = constant(Rational(1));
  Polynomial base = *this;
  while (e) {
    if (e & 1) result *= base;
    base *= base;
    e >>= 1;
  }
  return result;
}

Polynomial Polynomial::derivative(std::size_t i) const {
  Polynomial p;
  for (const auto& [m, c] : terms_) {
    if (i >= m.size() || m[i] == 0) continue;
    Monomial dm = m;
    Rational dc = c * Rational(static_cast<std::int64_t>(m[i]));
    --dm[i];
    p.add_term(std::move(dm), std::move(dc));
  }
  return p;
}

Rational Polynomial::eval(const RVec& point) const {
  Rational out;
  for (const auto& [m, c] : terms_) {
    Rational term = c;
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      CQA_CHECK(i < point.size());
      term *= Rational::pow(point[i], m[i]);
    }
    out += term;
  }
  return out;
}

double Polynomial::eval_double(const std::vector<double>& point) const {
  double out = 0;
  for (const auto& [m, c] : terms_) {
    double term = c.to_double();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      double x = point[i];
      for (unsigned e = 0; e < m[i]; ++e) term *= x;
    }
    out += term;
  }
  return out;
}

Polynomial Polynomial::substitute(std::size_t i, const Rational& value) const {
  Polynomial p;
  for (const auto& [m, c] : terms_) {
    if (i >= m.size() || m[i] == 0) {
      p.add_term(m, c);
      continue;
    }
    Monomial nm = m;
    nm[i] = 0;
    p.add_term(std::move(nm), c * Rational::pow(value, m[i]));
  }
  return p;
}

Polynomial Polynomial::substitute(std::size_t i, const Polynomial& sub) const {
  Polynomial out;
  for (const auto& [m, c] : terms_) {
    Polynomial term = constant(c);
    Monomial rest = m;
    unsigned e = 0;
    if (i < rest.size()) {
      e = rest[i];
      rest[i] = 0;
    }
    trim_monomial(&rest);
    Polynomial mono;
    mono.add_term(rest, Rational(1));
    term *= mono;
    if (e) term *= sub.pow(e);
    out += term;
  }
  return out;
}

Polynomial Polynomial::rename(std::size_t i, std::size_t j) const {
  if (i == j) return *this;
  CQA_CHECK(degree_in(j) <= 0);
  Polynomial p;
  for (const auto& [m, c] : terms_) {
    Monomial nm = m;
    unsigned e = 0;
    if (i < nm.size()) {
      e = nm[i];
      nm[i] = 0;
    }
    if (e) {
      if (nm.size() <= j) nm.resize(j + 1, 0);
      nm[j] = e;
    }
    p.add_term(std::move(nm), c);
  }
  return p;
}

std::vector<Polynomial> Polynomial::coefficients_in(std::size_t i) const {
  int d = std::max(degree_in(i), 0);
  std::vector<Polynomial> coeffs(static_cast<std::size_t>(d) + 1);
  for (const auto& [m, c] : terms_) {
    unsigned e = i < m.size() ? m[i] : 0;
    Monomial rest = m;
    if (i < rest.size()) rest[i] = 0;
    coeffs[e].add_term(std::move(rest), c);
  }
  return coeffs;
}

std::string Polynomial::to_string() const { return to_string({}); }

std::string Polynomial::to_string(
    const std::vector<std::string>& var_names) const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  // Iterate in reverse so higher-degree monomials print first.
  for (auto it = terms_.rbegin(); it != terms_.rend(); ++it) {
    const auto& [m, c] = *it;
    Rational coef = c;
    if (first) {
      if (coef.sign() < 0) {
        os << "-";
        coef = -coef;
      }
      first = false;
    } else {
      os << (coef.sign() < 0 ? " - " : " + ");
      coef = coef.abs();
    }
    bool has_vars = false;
    for (unsigned e : m) {
      if (e) has_vars = true;
    }
    if (!has_vars) {
      os << coef.to_string();
      continue;
    }
    bool printed = false;
    if (coef != Rational(1)) {
      os << coef.to_string();
      printed = true;
    }
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      if (printed) os << "*";
      if (i < var_names.size()) {
        os << var_names[i];
      } else {
        os << "x" << i;
      }
      if (m[i] > 1) os << "^" << m[i];
      printed = true;
    }
  }
  return os.str();
}

}  // namespace cqa
