#include "cqa/runtime/request.h"

namespace cqa {

namespace {

bool is_volume_kind(RequestKind k) {
  return k == RequestKind::kVolume || k == RequestKind::kMu ||
         k == RequestKind::kGrowthPolynomial;
}

}  // namespace

Status validate_request(const Request& request) {
  if (request.query.empty()) {
    return Status::invalid("request has an empty query");
  }
  if (!(request.budget.epsilon > 0.0 && request.budget.epsilon < 1.0)) {
    return Status::invalid(
        "budget.epsilon must lie in (0, 1), got " +
        std::to_string(request.budget.epsilon));
  }
  if (!(request.budget.delta > 0.0 && request.budget.delta < 1.0)) {
    return Status::invalid("budget.delta must lie in (0, 1), got " +
                           std::to_string(request.budget.delta));
  }
  if (is_volume_kind(request.kind) && request.output_vars.empty()) {
    return Status::invalid(
        "volume-kind requests need at least one output variable");
  }
  if (request.kind == RequestKind::kAggregate &&
      request.output_vars.size() != 1) {
    return Status::invalid(
        "aggregate requests take exactly one output variable");
  }
  if (request.vc_dim && !(*request.vc_dim > 0.0)) {
    return Status::invalid("vc_dim override must be positive");
  }
  return Status::ok();
}

}  // namespace cqa
