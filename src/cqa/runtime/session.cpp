#include "cqa/runtime/session.h"

#include <algorithm>

#include "cqa/runtime/parallel_sampler.h"
#include "cqa/vc/sample_bounds.h"

namespace cqa {

Session::Session(const ConstraintDatabase* db, const SessionOptions& options)
    : db_(db),
      options_(options),
      cache_(EvalCacheOptions{options.rewrite_cache_capacity,
                                options.volume_cache_capacity,
                                options.cache_shards},
             &metrics_),
      pool_(options.threads),
      rewrite_adapter_(&cache_),
      volume_adapter_(&cache_),
      queries_(db),
      volumes_(db),
      aggregates_(db),
      qe_rewrites_total_(metrics_.counter("qe_rewrites_total")),
      volume_calls_total_(metrics_.counter("volume_calls_total")),
      mc_points_evaluated_total_(
          metrics_.counter("mc_points_evaluated_total")),
      aggregate_calls_total_(metrics_.counter("aggregate_calls_total")),
      rewrite_call_ns_(metrics_.histogram("rewrite_call_ns")),
      volume_call_ns_(metrics_.histogram("volume_call_ns")),
      ask_call_ns_(metrics_.histogram("ask_call_ns")),
      aggregate_call_ns_(metrics_.histogram("aggregate_call_ns")) {
  queries_.set_cache(&rewrite_adapter_);
  volumes_.set_cache(&volume_adapter_);
  // The volume engine's internal pipeline shares the same rewrite cache.
  volumes_.queries().set_cache(&rewrite_adapter_);
}

Result<FormulaPtr> Session::rewrite(const std::string& query) {
  ScopedTimer timer(rewrite_call_ns_);
  qe_rewrites_total_->inc();
  return queries_.rewrite(query);
}

Result<std::vector<LinearCell>> Session::cells(
    const std::string& query, const std::vector<std::string>& output_vars) {
  ScopedTimer timer(rewrite_call_ns_);
  qe_rewrites_total_->inc();
  return queries_.cells(query, output_vars);
}

Result<bool> Session::ask(const std::string& sentence) {
  ScopedTimer timer(ask_call_ns_);
  return queries_.ask(sentence);
}

Result<VolumeAnswer> Session::monte_carlo_volume(
    const std::string& query, const std::vector<std::string>& output_vars,
    const VolumeOptions& options) {
  // Same query plumbing as VolumeEngine's Monte-Carlo path, but the
  // estimate runs chunked on the pool.
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
  if (!parsed.is_ok()) return parsed.status();
  std::vector<std::size_t> element_vars;
  for (const auto& name : output_vars) {
    int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(name);
    if (idx < 0) return Status::invalid("unknown output variable: " + name);
    element_vars.push_back(static_cast<std::size_t>(idx));
  }
  for (std::size_t v : parsed.value()->free_vars()) {
    if (std::find(element_vars.begin(), element_vars.end(), v) ==
        element_vars.end()) {
      return Status::invalid(
          "query has a free variable that is not an output: " +
          db_->vars().name_of(v));
    }
  }
  const std::size_t m =
      blumer_sample_bound(options.epsilon, options.delta, options.vc_dim);
  ParallelSampler sampler(&db_->db(), parsed.value(), element_vars, m,
                          options.seed, options_.mc_chunk_size);
  auto est = sampler.estimate({}, &pool_);
  if (!est.is_ok()) return est.status();
  mc_points_evaluated_total_->inc(m);
  VolumeAnswer answer;
  answer.estimate = est.value();
  answer.lower = est.value() - options.epsilon;
  answer.upper = est.value() + options.epsilon;
  return answer;
}

Result<VolumeAnswer> Session::volume(
    const std::string& query, const std::vector<std::string>& output_vars,
    const VolumeOptions& options) {
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc();
  if (options.strategy == VolumeStrategy::kMonteCarlo) {
    return monte_carlo_volume(query, output_vars, options);
  }
  return volumes_.volume(query, output_vars, options);
}

Result<Rational> Session::mu(const std::string& query,
                             const std::vector<std::string>& output_vars) {
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc();
  return volumes_.mu(query, output_vars);
}

Result<UPoly> Session::growth_polynomial(
    const std::string& query, const std::vector<std::string>& output_vars) {
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc();
  return volumes_.growth_polynomial(query, output_vars);
}

Result<Rational> Session::aggregate(
    AggregateFn fn, const std::string& query, const std::string& output_var,
    const std::vector<std::pair<std::string, Rational>>& bindings) {
  ScopedTimer timer(aggregate_call_ns_);
  aggregate_calls_total_->inc();
  return aggregates_.aggregate(fn, query, output_var, bindings);
}

}  // namespace cqa
