#include "cqa/runtime/session.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <new>

#include "cqa/runtime/parallel_sampler.h"
#include "cqa/serve/scheduler.h"
#include "cqa/vc/sample_bounds.h"

namespace cqa {

namespace {

bool is_expiry(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kCancelled;
}

// A tripped resource quota degrades a volume answer exactly like
// deadline expiry: down the ladder, never an error to the caller.
bool is_degradable(const Status& s) {
  return is_expiry(s) || s.code() == StatusCode::kResourceExhausted;
}

// Which degradation rung a finished volume answer represents.
guard::Rung rung_of(const VolumeAnswer& v) {
  if (v.exact) return guard::Rung::kExact;
  if (v.degraded) {
    return v.points_evaluated > 0 ? guard::Rung::kMcPartial
                                  : guard::Rung::kTrivialHalf;
  }
  return guard::Rung::kMonteCarlo;
}

}  // namespace

Session::Session(const ConstraintDatabase* db, const SessionOptions& options)
    : db_(db),
      options_(options),
      cache_(EvalCacheOptions{options.rewrite_cache_capacity,
                                options.volume_cache_capacity,
                                options.cache_shards},
             &metrics_),
      pool_(options.threads),
      rewrite_adapter_(&cache_),
      volume_adapter_(&cache_),
      queries_(db),
      volumes_(db),
      aggregates_(db),
      qe_rewrites_total_(metrics_.counter("qe_rewrites_total")),
      volume_calls_total_(metrics_.counter("volume_calls_total")),
      mc_points_evaluated_total_(
          metrics_.counter("mc_points_evaluated_total")),
      aggregate_calls_total_(metrics_.counter("aggregate_calls_total")),
      planner_decisions_total_(metrics_.counter("planner_decisions_total")),
      planner_degraded_total_(metrics_.counter("planner_degraded_total")),
      guard_quota_trip_total_(metrics_.counter("guard_quota_trip_total")),
      rewrite_call_ns_(metrics_.histogram("rewrite_call_ns")),
      volume_call_ns_(metrics_.histogram("volume_call_ns")),
      ask_call_ns_(metrics_.histogram("ask_call_ns")),
      aggregate_call_ns_(metrics_.histogram("aggregate_call_ns")),
      planner_plan_ns_(metrics_.histogram("planner_plan_ns")) {
  queries_.set_cache(&rewrite_adapter_);
  volumes_.set_cache(&volume_adapter_);
  // The volume engine's internal pipeline shares the same rewrite cache.
  volumes_.queries().set_cache(&rewrite_adapter_);
}

// Out of line for the unique_ptr<serve::Scheduler> member; the
// scheduler (declared last) is destroyed before the pool and caches
// its executors use.
Session::~Session() = default;

serve::Scheduler& Session::scheduler() {
  std::call_once(scheduler_once_, [&] {
    serve::SchedulerOptions so;
    so.executors = options_.serve_executors;
    so.queue_capacity = options_.serve_queue_capacity;
    so.promote_within_ms = options_.serve_promote_within_ms;
    so.max_mc_batch = options_.serve_max_mc_batch;
    scheduler_ = std::make_unique<serve::Scheduler>(this, so);
  });
  return *scheduler_;
}

serve::Ticket Session::submit(Request request) {
  return scheduler().submit(std::move(request));
}

Result<Answer> Session::run(const Request& request) {
  if (Status v = validate_request(request); !v.is_ok()) return v;

  // One meter per request, scoped to the calling thread for the BigInt
  // thread-local hook (the exact pipeline is single-threaded; MC workers
  // run unmetered, which is safe because sampling is O(1) per point).
  guard::WorkMeter meter(request.budget.quota);
  guard::MeterScope meter_scope(&meter);
  const auto start = std::chrono::steady_clock::now();

  Result<Answer> result = [&]() -> Result<Answer> {
    try {
      return run_impl(request, &meter);
    } catch (const std::bad_alloc&) {
      // Allocation failure -- real, or injected at the BigInt layer by
      // FaultSite::kBigIntAlloc. Volume requests still own a sound
      // answer (the last rung); everything else gets a typed error.
      if (request.kind == RequestKind::kVolume) {
        Answer a;
        a.kind = RequestKind::kVolume;
        a.status = AnswerStatus::kDegraded;
        a.volume = trivial_half_volume(true);
        a.guard.rung = guard::Rung::kTrivialHalf;
        planner_degraded_total_->inc();
        return a;
      }
      return Status::resource_exhausted(
          "allocation failure during query evaluation");
    } catch (const std::exception& e) {
      return Status::internal(std::string("query evaluation threw: ") +
                              e.what());
    }
  }();

  if (result.is_ok()) {
    Answer& answer = result.value();
    const guard::Rung rung = answer.guard.rung;
    answer.guard = guard::make_report(meter);
    answer.guard.rung = rung;
    answer.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    record_guard(answer.guard);
  } else {
    record_guard(guard::make_report(meter));
  }
  return result;
}

Result<Answer> Session::run_impl(const Request& request,
                                 guard::WorkMeter* meter) {
  // The caller's token governs when provided (the serve layer arms its
  // deadline at submit time so queue wait counts); otherwise a local
  // token carries the budget deadline for this call only.
  CancelToken local_token;
  CancelToken* token =
      request.cancel != nullptr ? request.cancel : &local_token;
  if (request.budget.has_deadline() && !token->has_deadline()) {
    token->set_deadline_after_ms(request.budget.deadline_ms);
  }

  Answer answer;
  answer.kind = request.kind;

  switch (request.kind) {
    case RequestKind::kAsk: {
      ScopedTimer timer(ask_call_ns_);
      RewriteOptions rw;
      rw.cancel = token;
      rw.meter = meter;
      auto r = queries_.ask(request.query, rw);
      if (!r.is_ok()) return r.status();
      answer.truth = r.value();
      break;
    }
    case RequestKind::kRewrite: {
      ScopedTimer timer(rewrite_call_ns_);
      qe_rewrites_total_->inc();
      RewriteOptions rw;
      rw.cancel = token;
      rw.meter = meter;
      auto r = queries_.rewrite(request.query, rw);
      if (!r.is_ok()) return r.status();
      answer.formula = r.value();
      break;
    }
    case RequestKind::kCells: {
      ScopedTimer timer(rewrite_call_ns_);
      qe_rewrites_total_->inc();
      RewriteOptions rw;
      rw.cancel = token;
      rw.meter = meter;
      auto r = queries_.cells(request.query, request.output_vars, rw);
      if (!r.is_ok()) return r.status();
      answer.cells = r.value();
      break;
    }
    case RequestKind::kVolume: {
      auto r = run_volume(request, token, meter);
      if (!r.is_ok()) return r.status();
      answer = std::move(r.value());
      break;
    }
    case RequestKind::kMu: {
      ScopedTimer timer(volume_call_ns_);
      volume_calls_total_->inc();
      auto r = volumes_.mu(request.query, request.output_vars);
      if (!r.is_ok()) return r.status();
      answer.mu = r.value();
      break;
    }
    case RequestKind::kGrowthPolynomial: {
      ScopedTimer timer(volume_call_ns_);
      volume_calls_total_->inc();
      auto r = volumes_.growth_polynomial(request.query,
                                          request.output_vars);
      if (!r.is_ok()) return r.status();
      answer.growth = r.value();
      break;
    }
    case RequestKind::kAggregate: {
      ScopedTimer timer(aggregate_call_ns_);
      aggregate_calls_total_->inc();
      auto r = aggregates_.aggregate(request.aggregate_fn, request.query,
                                     request.output_vars[0],
                                     request.bindings);
      if (!r.is_ok()) return r.status();
      answer.aggregate = r.value();
      break;
    }
  }

  return answer;
}

Result<Answer> Session::run_volume(const Request& request,
                                   CancelToken* token,
                                   guard::WorkMeter* meter) {
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc();

  if (request.strategy) {
    // Planner bypass: the caller pinned a strategy; the budget still
    // arms the deadline and MC sample sizing. A tripped quota degrades
    // to the last rung (expiry keeps its pre-guard error contract for
    // pinned strategies).
    Answer answer;
    answer.kind = RequestKind::kVolume;
    auto v = forced_volume(request, *request.strategy, token, meter);
    if (!v.is_ok()) {
      if (v.status().code() != StatusCode::kResourceExhausted) {
        return v.status();
      }
      answer.volume = trivial_half_volume(true);
    } else {
      answer.volume = v.value();
    }
    answer.guard.rung = rung_of(answer.volume);
    if (answer.volume.degraded) {
      answer.status = AnswerStatus::kDegraded;
      planner_degraded_total_->inc();
    }
    return answer;
  }
  return run_planned_volume(request, token, meter);
}

Result<Answer> Session::run_planned_volume(const Request& request,
                                           CancelToken* token,
                                           guard::WorkMeter* meter) {
  // --- Stats: cheap structure first, the cached rewrite if available --
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(request.query);
  if (!parsed.is_ok()) return parsed.status();
  const std::size_t quantifiers = parsed.value()->count_quantifiers();

  auto expanded = db_->db().expand_active_domain(parsed.value());
  if (!expanded.is_ok()) return expanded.status();
  auto inlined = db_->db().inline_predicates(expanded.value());
  if (!inlined.is_ok()) return inlined.status();
  FormulaPtr analysis = inlined.value();

  if (!analysis->is_quantifier_free() && analysis->is_linear()) {
    // Quantified FO+LIN: the QE rewrite is what exact evaluation runs
    // anyway and it is memoized, so analyze the eliminated form. A
    // deadline or quota firing inside QE falls straight to the last
    // rung -- for a quota, MC is no rescue here because mc_count_hits
    // needs a quantifier-free formula and QE is exactly what tripped.
    RewriteOptions rw;
    rw.cancel = token;
    rw.meter = meter;
    auto rewritten = volumes_.queries().rewrite(request.query, rw);
    if (rewritten.is_ok()) {
      analysis = rewritten.value();
    } else if (is_degradable(rewritten.status())) {
      Answer degraded;
      degraded.kind = RequestKind::kVolume;
      degraded.status = AnswerStatus::kDegraded;
      degraded.volume = trivial_half_volume(true);
      degraded.guard.rung = guard::Rung::kTrivialHalf;
      planner_degraded_total_->inc();
      return degraded;
    } else {
      return rewritten.status();
    }
  }

  FormulaStats stats =
      extract_stats(analysis, request.output_vars.size(), quantifiers,
                    options_.cost_model);
  if (request.vc_dim) stats.vc_dim = *request.vc_dim;

  PlanDecision decision;
  {
    ScopedTimer plan_timer(planner_plan_ns_);
    decision = plan_volume(stats, request.budget, options_.cost_model);
  }
  record_plan(decision);

  Answer answer;
  answer.kind = RequestKind::kVolume;
  answer.plan = decision;

  switch (decision.chosen) {
    case VolumeStrategy::kMonteCarlo: {
      // Sample the analysis formula: for quantified FO+LIN it is the QE
      // rewrite, and MC membership only accepts quantifier-free input.
      // A quota trip here (e.g. during membership plan compilation)
      // degrades to the last rung like any other exhaustion.
      auto v = pooled_monte_carlo(request, analysis, decision.mc_samples,
                                  decision.expected_epsilon, token, meter);
      if (v.is_ok()) {
        answer.volume = v.value();
      } else if (is_degradable(v.status())) {
        answer.volume = trivial_half_volume(true);
      } else {
        return v.status();
      }
      break;
    }
    case VolumeStrategy::kTrivialHalf: {
      answer.volume = trivial_half_volume(decision.degrade_preplanned);
      break;
    }
    default: {
      // Exact strategies (and hit-and-run) run in the engine under the
      // shared token and meter. Expiry mid-decomposition cannot salvage
      // a partial exact answer, so it degrades to the last rung; a
      // tripped quota first falls one rung to Monte-Carlo on the
      // (quantifier-free) analysis formula -- sampling is O(1)-memory
      // per point, so it runs fine where the exact sweep could not --
      // and only reaches trivial-1/2 if sampling fails too.
      auto v = forced_volume(request, decision.chosen, token, meter);
      if (v.is_ok()) {
        answer.volume = v.value();
      } else if (v.status().code() == StatusCode::kResourceExhausted &&
                 analysis->is_quantifier_free()) {
        const std::size_t m = blumer_sample_bound(
            request.budget.epsilon, request.budget.delta, stats.vc_dim);
        auto mc = pooled_monte_carlo(request, analysis, m,
                                     request.budget.epsilon, token, meter);
        if (mc.is_ok()) {
          answer.volume = mc.value();
          answer.guard.rung = rung_of(answer.volume);
          answer.volume.degraded = true;  // carries no exact guarantee
        } else if (is_degradable(mc.status())) {
          answer.volume = trivial_half_volume(true);
        } else {
          return mc.status();
        }
      } else if (is_degradable(v.status())) {
        answer.volume = trivial_half_volume(true);
      } else {
        return v.status();
      }
      break;
    }
  }

  if (answer.guard.rung == guard::Rung::kNone) {
    answer.guard.rung = rung_of(answer.volume);
  }
  if (answer.volume.degraded || decision.degrade_preplanned) {
    answer.status = AnswerStatus::kDegraded;
    planner_degraded_total_->inc();
  }
  return answer;
}

Result<VolumeAnswer> Session::forced_volume(const Request& request,
                                            VolumeStrategy strategy,
                                            CancelToken* token,
                                            guard::WorkMeter* meter) {
  VolumeOptions defaults;
  const double vc_dim = request.vc_dim.value_or(defaults.vc_dim);
  if (strategy == VolumeStrategy::kMonteCarlo) {
    auto membership = mc_membership_formula(request.query, token, meter);
    if (!membership.is_ok()) {
      // Expiry or a quota trip inside the QE rewrite degrades to the
      // last rung, the same as expiry inside the sampling itself.
      if (is_degradable(membership.status())) {
        return trivial_half_volume(true);
      }
      return membership.status();
    }
    std::size_t m = blumer_sample_bound(request.budget.epsilon,
                                        request.budget.delta, vc_dim);
    if (request.max_mc_samples > 0) {
      m = std::min(m, request.max_mc_samples);
    }
    return pooled_monte_carlo(request, membership.value(), m,
                              request.budget.epsilon, token, meter);
  }
  VolumeOptions vo;
  vo.strategy = strategy;
  vo.epsilon = request.budget.epsilon;
  vo.delta = request.budget.delta;
  vo.seed = request.seed;
  vo.vc_dim = vc_dim;
  if (request.max_mc_samples > 0) vo.max_mc_samples = request.max_mc_samples;
  vo.cancel = token;
  vo.meter = meter;
  return volumes_.volume(request.query, request.output_vars, vo);
}

Result<FormulaPtr> Session::mc_membership_formula(const std::string& query,
                                                  const CancelToken* token,
                                                  guard::WorkMeter* meter) {
  RewriteOptions rw;
  rw.cancel = token;
  rw.meter = meter;
  // rewrite() expands the active domain, inlines predicates, and runs
  // linear QE iff the result is still quantified; memoized in the
  // shared rewrite cache. Quantified nonlinear queries error here with
  // the engine's kUnsupported, which is the right answer for MC too.
  return volumes_.queries().rewrite(query, rw);
}

Result<VolumeAnswer> Session::pooled_monte_carlo(const Request& request,
                                                 const FormulaPtr& membership,
                                                 std::size_t sample_size,
                                                 double target_epsilon,
                                                 CancelToken* token,
                                                 guard::WorkMeter* meter) {
  // Validate free variables against the query as written, not the
  // rewrite (QE may simplify a stray free variable away).
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(request.query);
  if (!parsed.is_ok()) return parsed.status();
  std::vector<std::size_t> element_vars;
  for (const auto& name : request.output_vars) {
    int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(name);
    if (idx < 0) return Status::invalid("unknown output variable: " + name);
    element_vars.push_back(static_cast<std::size_t>(idx));
  }
  for (std::size_t v : parsed.value()->free_vars()) {
    if (std::find(element_vars.begin(), element_vars.end(), v) ==
        element_vars.end()) {
      return Status::invalid(
          "query has a free variable that is not an output: " +
          db_->vars().name_of(v));
    }
  }
  ParallelSampler sampler(&db_->db(), membership, element_vars,
                          sample_size, request.seed,
                          options_.mc_chunk_size, meter);
  auto est = sampler.estimate_partial({}, &pool_, token);
  if (!est.is_ok()) return est.status();
  const McPartial& p = est.value();
  mc_points_evaluated_total_->inc(p.evaluated);

  VolumeAnswer answer;
  answer.points_evaluated = p.evaluated;
  answer.points_requested = p.requested;
  if (p.complete) {
    answer.estimate = p.estimate;
    answer.lower = p.estimate - target_epsilon;
    answer.upper = p.estimate + target_epsilon;
    return answer;
  }
  if (p.evaluated == 0) {
    // Expired before a single chunk finished: nothing to estimate from.
    return trivial_half_volume(true);
  }
  // Best-so-far: the completed chunks are i.i.d. slices of the planned
  // sample (up to the mild survivorship caveat in parallel_sampler.h);
  // widen the bars to the Hoeffding half-width the smaller sample
  // supports.
  const double eps = hoeffding_epsilon(request.budget.delta, p.evaluated);
  answer.degraded = true;
  answer.estimate = p.estimate;
  answer.lower = std::max(0.0, p.estimate - eps);
  answer.upper = std::min(1.0, p.estimate + eps);
  return answer;
}

// Wraps one batch member's McPartial exactly the way pooled_monte_carlo
// + run_volume would have: complete -> +-epsilon bars, partial ->
// Hoeffding-shrunk degraded bars, empty -> trivial 1/2.
Result<Answer> Session::finish_mc_answer(const Request& request,
                                         Result<McPartial> part,
                                         double target_epsilon) {
  if (!part.is_ok()) return part.status();
  const McPartial& p = part.value();
  mc_points_evaluated_total_->inc(p.evaluated);

  Answer answer;
  answer.kind = RequestKind::kVolume;
  VolumeAnswer& v = answer.volume;
  v.points_evaluated = p.evaluated;
  v.points_requested = p.requested;
  if (p.complete) {
    v.estimate = p.estimate;
    v.lower = p.estimate - target_epsilon;
    v.upper = p.estimate + target_epsilon;
  } else if (p.evaluated == 0) {
    v = trivial_half_volume(true);
    v.points_requested = p.requested;
  } else {
    const double eps = hoeffding_epsilon(request.budget.delta, p.evaluated);
    v.degraded = true;
    v.estimate = p.estimate;
    v.lower = std::max(0.0, p.estimate - eps);
    v.upper = std::min(1.0, p.estimate + eps);
  }
  answer.guard.rung = rung_of(v);
  if (v.degraded) {
    answer.status = AnswerStatus::kDegraded;
    planner_degraded_total_->inc();
  }
  // run_mc_batch fills in the member's metered usage and records the
  // guard report when it resolves the slot.
  return answer;
}

std::vector<Result<Answer>> Session::run_mc_batch(
    const std::vector<const Request*>& requests,
    const std::vector<CancelToken*>& tokens) {
  const std::size_t n = requests.size();
  std::vector<Result<Answer>> results(
      n, Status::internal("batch slot not filled"));
  if (n == 0) return results;
  const auto start = std::chrono::steady_clock::now();
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc(n);

  // One meter per member: each request's own budget.quota governs the
  // work attributed to it, and each answer's guard report comes from
  // its own meter -- the same accounting run() gives a solo request.
  std::vector<std::unique_ptr<guard::WorkMeter>> meters;
  meters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    meters.push_back(
        std::make_unique<guard::WorkMeter>(requests[i]->budget.quota));
  }

  // resolve() is the single exit for a slot: it stamps the member's
  // metered usage into the guard report (preserving the rung the answer
  // already carries), records it, and never overwrites a resolved slot.
  std::vector<bool> resolved(n, false);
  auto resolve = [&](std::size_t i, Result<Answer> r) {
    if (resolved[i]) return;
    resolved[i] = true;
    if (r.is_ok()) {
      Answer& a = r.value();
      const guard::Rung rung = a.guard.rung;
      a.guard = guard::make_report(*meters[i]);
      a.guard.rung = rung;
      a.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      record_guard(a.guard);
    } else {
      record_guard(guard::make_report(*meters[i]));
    }
    results[i] = std::move(r);
  };
  auto degraded_half = [&]() {
    Answer a;
    a.kind = RequestKind::kVolume;
    a.status = AnswerStatus::kDegraded;
    a.volume = trivial_half_volume(true);
    a.guard.rung = guard::Rung::kTrivialHalf;
    planner_degraded_total_->inc();
    return a;
  };
  auto fail_rest = [&](const Status& s) {
    for (std::size_t i = 0; i < n; ++i) resolve(i, s);
    return results;
  };

  // The same handler boundary run() has around run_impl: an allocation
  // failure (real, or the injected FaultSite::kBigIntAlloc) anywhere in
  // the shared work must not escape onto the executor thread -- volume
  // requests still own the last rung; anything else is kInternal.
  try {
    // All members share (query, output_vars), so membership + variable
    // validation happen once. The shared membership rewrite runs under
    // one member's token and meter at a time: a degradable failure
    // (that member's deadline, cancellation, or quota) degrades *that
    // member only* to trivial-1/2, and the next still-live member
    // retries -- cancelling request X never degrades request Y. A
    // structural error fails every member the same way a solo run
    // would have.
    Result<FormulaPtr> membership{Status::internal("no live member")};
    bool have_membership = false;
    for (std::size_t i = 0; i < n && !have_membership; ++i) {
      guard::MeterScope meter_scope(meters[i].get());
      ServeTokenScope token_scope(tokens[i]);
      membership = mc_membership_formula(requests[i]->query, tokens[i],
                                         meters[i].get());
      if (membership.is_ok()) {
        have_membership = true;
      } else if (is_degradable(membership.status())) {
        resolve(i, degraded_half());
      } else {
        return fail_rest(membership.status());
      }
    }
    if (!have_membership) return results;  // every member degraded

    const Request& head = *requests[0];
    auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(head.query);
    if (!parsed.is_ok()) return fail_rest(parsed.status());
    std::vector<std::size_t> element_vars;
    for (const auto& name : head.output_vars) {
      int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(name);
      if (idx < 0) {
        return fail_rest(Status::invalid("unknown output variable: " + name));
      }
      element_vars.push_back(static_cast<std::size_t>(idx));
    }
    for (std::size_t v : parsed.value()->free_vars()) {
      if (std::find(element_vars.begin(), element_vars.end(), v) ==
          element_vars.end()) {
        return fail_rest(Status::invalid(
            "query has a free variable that is not an output: " +
            db_->vars().name_of(v)));
      }
    }

    // One sampler per still-live member: its own Blumer-sized sample
    // from its own (epsilon, delta, vc_dim, seed), capped by its own
    // max_mc_samples -- the identical construction pooled_monte_carlo
    // would use solo.
    VolumeOptions defaults;
    std::vector<std::size_t> live;
    std::vector<std::unique_ptr<ParallelSampler>> samplers;
    std::vector<McBatchItem> items;
    for (std::size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      const Request& r = *requests[i];
      std::size_t m =
          blumer_sample_bound(r.budget.epsilon, r.budget.delta,
                              r.vc_dim.value_or(defaults.vc_dim));
      if (r.max_mc_samples > 0) m = std::min(m, r.max_mc_samples);
      samplers.push_back(std::make_unique<ParallelSampler>(
          &db_->db(), membership.value(), element_vars, m, r.seed,
          options_.mc_chunk_size, meters[i].get()));
      items.push_back(McBatchItem{samplers.back().get(), tokens[i]});
      live.push_back(i);
    }

    std::vector<Result<McPartial>> parts =
        ParallelSampler::estimate_partial_batch(items, {}, &pool_);
    for (std::size_t k = 0; k < live.size(); ++k) {
      const std::size_t i = live[k];
      auto fin = finish_mc_answer(*requests[i], std::move(parts[k]),
                                  requests[i]->budget.epsilon);
      // A member whose own quota tripped (e.g. during its sampler's
      // plan compilation) degrades to trivial-1/2 like a solo run;
      // structural errors still fail that slot.
      if (!fin.is_ok() && is_degradable(fin.status())) {
        resolve(i, degraded_half());
      } else {
        resolve(i, std::move(fin));
      }
    }
  } catch (const std::bad_alloc&) {
    for (std::size_t i = 0; i < n; ++i) resolve(i, degraded_half());
  } catch (const std::exception& e) {
    const Status s = Status::internal(
        std::string("query evaluation threw: ") + e.what());
    for (std::size_t i = 0; i < n; ++i) resolve(i, s);
  }
  return results;
}

void Session::record_plan(const PlanDecision& decision) {
  planner_decisions_total_->inc();
  metrics_
      .counter(std::string("planner_choice_") +
               strategy_name(decision.chosen) + "_total")
      ->inc();
}

void Session::record_guard(const guard::GuardReport& report) {
  if (report.quota_tripped) {
    guard_quota_trip_total_->inc();
    metrics_
        .counter(std::string("guard_quota_trip_") + report.tripped_quota +
                 "_total")
        ->inc();
  }
  if (report.rung != guard::Rung::kNone) {
    metrics_
        .counter(std::string("guard_degradation_rung_") +
                 guard::rung_name(report.rung) + "_total")
        ->inc();
  }
}

}  // namespace cqa
