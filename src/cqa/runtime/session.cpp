#include "cqa/runtime/session.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <new>

#include "cqa/runtime/parallel_sampler.h"
#include "cqa/vc/sample_bounds.h"

namespace cqa {

namespace {

// The last rung of the degradation ladder: Proposition 4's constant 1/2
// with hard bars [0, 1]. Needs no decomposition, so it is always
// available, even when the deadline expired before any work ran.
VolumeAnswer trivial_half_answer(bool degraded) {
  VolumeAnswer a;
  a.estimate = 0.5;
  a.lower = 0.0;
  a.upper = 1.0;
  a.degraded = degraded;
  return a;
}

bool is_expiry(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kCancelled;
}

// A tripped resource quota degrades a volume answer exactly like
// deadline expiry: down the ladder, never an error to the caller.
bool is_degradable(const Status& s) {
  return is_expiry(s) || s.code() == StatusCode::kResourceExhausted;
}

// Which degradation rung a finished volume answer represents.
guard::Rung rung_of(const VolumeAnswer& v) {
  if (v.exact) return guard::Rung::kExact;
  if (v.degraded) {
    return v.points_evaluated > 0 ? guard::Rung::kMcPartial
                                  : guard::Rung::kTrivialHalf;
  }
  return guard::Rung::kMonteCarlo;
}

}  // namespace

Session::Session(const ConstraintDatabase* db, const SessionOptions& options)
    : db_(db),
      options_(options),
      cache_(EvalCacheOptions{options.rewrite_cache_capacity,
                                options.volume_cache_capacity,
                                options.cache_shards},
             &metrics_),
      pool_(options.threads),
      rewrite_adapter_(&cache_),
      volume_adapter_(&cache_),
      queries_(db),
      volumes_(db),
      aggregates_(db),
      qe_rewrites_total_(metrics_.counter("qe_rewrites_total")),
      volume_calls_total_(metrics_.counter("volume_calls_total")),
      mc_points_evaluated_total_(
          metrics_.counter("mc_points_evaluated_total")),
      aggregate_calls_total_(metrics_.counter("aggregate_calls_total")),
      planner_decisions_total_(metrics_.counter("planner_decisions_total")),
      planner_degraded_total_(metrics_.counter("planner_degraded_total")),
      guard_quota_trip_total_(metrics_.counter("guard_quota_trip_total")),
      rewrite_call_ns_(metrics_.histogram("rewrite_call_ns")),
      volume_call_ns_(metrics_.histogram("volume_call_ns")),
      ask_call_ns_(metrics_.histogram("ask_call_ns")),
      aggregate_call_ns_(metrics_.histogram("aggregate_call_ns")),
      planner_plan_ns_(metrics_.histogram("planner_plan_ns")) {
  queries_.set_cache(&rewrite_adapter_);
  volumes_.set_cache(&volume_adapter_);
  // The volume engine's internal pipeline shares the same rewrite cache.
  volumes_.queries().set_cache(&rewrite_adapter_);
}

Result<Answer> Session::run(const Request& request) {
  // One meter per request, scoped to the calling thread for the BigInt
  // thread-local hook (the exact pipeline is single-threaded; MC workers
  // run unmetered, which is safe because sampling is O(1) per point).
  guard::WorkMeter meter(request.budget.quota);
  guard::MeterScope meter_scope(&meter);
  const auto start = std::chrono::steady_clock::now();

  Result<Answer> result = [&]() -> Result<Answer> {
    try {
      return run_impl(request, &meter);
    } catch (const std::bad_alloc&) {
      // Allocation failure -- real, or injected at the BigInt layer by
      // FaultSite::kBigIntAlloc. Volume requests still own a sound
      // answer (the last rung); everything else gets a typed error.
      if (request.kind == RequestKind::kVolume) {
        Answer a;
        a.kind = RequestKind::kVolume;
        a.status = AnswerStatus::kDegraded;
        a.volume = trivial_half_answer(true);
        a.guard.rung = guard::Rung::kTrivialHalf;
        planner_degraded_total_->inc();
        return a;
      }
      return Status::resource_exhausted(
          "allocation failure during query evaluation");
    } catch (const std::exception& e) {
      return Status::internal(std::string("query evaluation threw: ") +
                              e.what());
    }
  }();

  if (result.is_ok()) {
    Answer& answer = result.value();
    const guard::Rung rung = answer.guard.rung;
    answer.guard = guard::make_report(meter);
    answer.guard.rung = rung;
    answer.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    record_guard(answer.guard);
  } else {
    record_guard(guard::make_report(meter));
  }
  return result;
}

Result<Answer> Session::run_impl(const Request& request,
                                 guard::WorkMeter* meter) {
  CancelToken token;
  if (request.budget.has_deadline()) {
    token.set_deadline_after_ms(request.budget.deadline_ms);
  }

  Answer answer;
  answer.kind = request.kind;

  switch (request.kind) {
    case RequestKind::kAsk: {
      ScopedTimer timer(ask_call_ns_);
      RewriteOptions rw;
      rw.cancel = &token;
      rw.meter = meter;
      auto r = queries_.ask(request.query, rw);
      if (!r.is_ok()) return r.status();
      answer.truth = r.value();
      break;
    }
    case RequestKind::kRewrite: {
      ScopedTimer timer(rewrite_call_ns_);
      qe_rewrites_total_->inc();
      RewriteOptions rw;
      rw.cancel = &token;
      rw.meter = meter;
      auto r = queries_.rewrite(request.query, rw);
      if (!r.is_ok()) return r.status();
      answer.formula = r.value();
      break;
    }
    case RequestKind::kCells: {
      ScopedTimer timer(rewrite_call_ns_);
      qe_rewrites_total_->inc();
      RewriteOptions rw;
      rw.cancel = &token;
      rw.meter = meter;
      auto r = queries_.cells(request.query, request.output_vars, rw);
      if (!r.is_ok()) return r.status();
      answer.cells = r.value();
      break;
    }
    case RequestKind::kVolume: {
      auto r = run_volume(request, &token, meter);
      if (!r.is_ok()) return r.status();
      answer = std::move(r.value());
      break;
    }
    case RequestKind::kMu: {
      ScopedTimer timer(volume_call_ns_);
      volume_calls_total_->inc();
      auto r = volumes_.mu(request.query, request.output_vars);
      if (!r.is_ok()) return r.status();
      answer.mu = r.value();
      break;
    }
    case RequestKind::kGrowthPolynomial: {
      ScopedTimer timer(volume_call_ns_);
      volume_calls_total_->inc();
      auto r = volumes_.growth_polynomial(request.query,
                                          request.output_vars);
      if (!r.is_ok()) return r.status();
      answer.growth = r.value();
      break;
    }
    case RequestKind::kAggregate: {
      ScopedTimer timer(aggregate_call_ns_);
      aggregate_calls_total_->inc();
      if (request.output_vars.size() != 1) {
        return Status::invalid(
            "aggregate requests take exactly one output variable");
      }
      auto r = aggregates_.aggregate(request.aggregate_fn, request.query,
                                     request.output_vars[0],
                                     request.bindings);
      if (!r.is_ok()) return r.status();
      answer.aggregate = r.value();
      break;
    }
  }

  return answer;
}

Result<Answer> Session::run_volume(const Request& request,
                                   CancelToken* token,
                                   guard::WorkMeter* meter) {
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc();

  if (request.strategy) {
    // Planner bypass: the caller pinned a strategy; the budget still
    // arms the deadline and MC sample sizing. A tripped quota degrades
    // to the last rung (expiry keeps its pre-guard error contract for
    // pinned strategies).
    Answer answer;
    answer.kind = RequestKind::kVolume;
    auto v = forced_volume(request, *request.strategy, token, meter);
    if (!v.is_ok()) {
      if (v.status().code() != StatusCode::kResourceExhausted) {
        return v.status();
      }
      answer.volume = trivial_half_answer(true);
    } else {
      answer.volume = v.value();
    }
    answer.guard.rung = rung_of(answer.volume);
    if (answer.volume.degraded) {
      answer.status = AnswerStatus::kDegraded;
      planner_degraded_total_->inc();
    }
    return answer;
  }
  return run_planned_volume(request, token, meter);
}

Result<Answer> Session::run_planned_volume(const Request& request,
                                           CancelToken* token,
                                           guard::WorkMeter* meter) {
  // --- Stats: cheap structure first, the cached rewrite if available --
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(request.query);
  if (!parsed.is_ok()) return parsed.status();
  const std::size_t quantifiers = parsed.value()->count_quantifiers();

  auto expanded = db_->db().expand_active_domain(parsed.value());
  if (!expanded.is_ok()) return expanded.status();
  auto inlined = db_->db().inline_predicates(expanded.value());
  if (!inlined.is_ok()) return inlined.status();
  FormulaPtr analysis = inlined.value();

  if (!analysis->is_quantifier_free() && analysis->is_linear()) {
    // Quantified FO+LIN: the QE rewrite is what exact evaluation runs
    // anyway and it is memoized, so analyze the eliminated form. A
    // deadline or quota firing inside QE falls straight to the last
    // rung -- for a quota, MC is no rescue here because mc_count_hits
    // needs a quantifier-free formula and QE is exactly what tripped.
    RewriteOptions rw;
    rw.cancel = token;
    rw.meter = meter;
    auto rewritten = volumes_.queries().rewrite(request.query, rw);
    if (rewritten.is_ok()) {
      analysis = rewritten.value();
    } else if (is_degradable(rewritten.status())) {
      Answer degraded;
      degraded.kind = RequestKind::kVolume;
      degraded.status = AnswerStatus::kDegraded;
      degraded.volume = trivial_half_answer(true);
      degraded.guard.rung = guard::Rung::kTrivialHalf;
      planner_degraded_total_->inc();
      return degraded;
    } else {
      return rewritten.status();
    }
  }

  FormulaStats stats =
      extract_stats(analysis, request.output_vars.size(), quantifiers,
                    options_.cost_model);

  PlanDecision decision;
  {
    ScopedTimer plan_timer(planner_plan_ns_);
    decision = plan_volume(stats, request.budget, options_.cost_model);
  }
  record_plan(decision);

  Answer answer;
  answer.kind = RequestKind::kVolume;
  answer.plan = decision;

  switch (decision.chosen) {
    case VolumeStrategy::kMonteCarlo: {
      // Sample the analysis formula: for quantified FO+LIN it is the QE
      // rewrite, and mc_count_hits only accepts quantifier-free input.
      auto v = pooled_monte_carlo(request, analysis, decision.mc_samples,
                                  decision.expected_epsilon, token);
      if (!v.is_ok()) return v.status();
      answer.volume = v.value();
      break;
    }
    case VolumeStrategy::kTrivialHalf: {
      answer.volume = trivial_half_answer(decision.degrade_preplanned);
      break;
    }
    default: {
      // Exact strategies (and hit-and-run) run in the engine under the
      // shared token and meter. Expiry mid-decomposition cannot salvage
      // a partial exact answer, so it degrades to the last rung; a
      // tripped quota first falls one rung to Monte-Carlo on the
      // (quantifier-free) analysis formula -- sampling is O(1)-memory
      // per point, so it runs fine where the exact sweep could not --
      // and only reaches trivial-1/2 if sampling fails too.
      auto v = forced_volume(request, decision.chosen, token, meter);
      if (v.is_ok()) {
        answer.volume = v.value();
      } else if (v.status().code() == StatusCode::kResourceExhausted &&
                 analysis->is_quantifier_free()) {
        const std::size_t m = blumer_sample_bound(
            request.budget.epsilon, request.budget.delta, stats.vc_dim);
        auto mc = pooled_monte_carlo(request, analysis, m,
                                     request.budget.epsilon, token);
        if (mc.is_ok()) {
          answer.volume = mc.value();
          answer.guard.rung = rung_of(answer.volume);
          answer.volume.degraded = true;  // carries no exact guarantee
        } else if (is_degradable(mc.status())) {
          answer.volume = trivial_half_answer(true);
        } else {
          return mc.status();
        }
      } else if (is_degradable(v.status())) {
        answer.volume = trivial_half_answer(true);
      } else {
        return v.status();
      }
      break;
    }
  }

  if (answer.guard.rung == guard::Rung::kNone) {
    answer.guard.rung = rung_of(answer.volume);
  }
  if (answer.volume.degraded || decision.degrade_preplanned) {
    answer.status = AnswerStatus::kDegraded;
    planner_degraded_total_->inc();
  }
  return answer;
}

Result<VolumeAnswer> Session::forced_volume(const Request& request,
                                            VolumeStrategy strategy,
                                            CancelToken* token,
                                            guard::WorkMeter* meter) {
  if (strategy == VolumeStrategy::kMonteCarlo) {
    auto membership = mc_membership_formula(request.query, token);
    if (!membership.is_ok()) {
      // Expiry or a quota trip inside the QE rewrite degrades to the
      // last rung, the same as expiry inside the sampling itself.
      if (is_degradable(membership.status())) {
        return trivial_half_answer(true);
      }
      return membership.status();
    }
    VolumeOptions vo;
    const std::size_t m = blumer_sample_bound(
        request.budget.epsilon, request.budget.delta, vo.vc_dim);
    return pooled_monte_carlo(request, membership.value(), m,
                              request.budget.epsilon, token);
  }
  VolumeOptions vo;
  vo.strategy = strategy;
  vo.epsilon = request.budget.epsilon;
  vo.delta = request.budget.delta;
  vo.seed = request.seed;
  vo.cancel = token;
  vo.meter = meter;
  return volumes_.volume(request.query, request.output_vars, vo);
}

Result<FormulaPtr> Session::mc_membership_formula(const std::string& query,
                                                  const CancelToken* token) {
  RewriteOptions rw;
  rw.cancel = token;
  // rewrite() expands the active domain, inlines predicates, and runs
  // linear QE iff the result is still quantified; memoized in the
  // shared rewrite cache. Quantified nonlinear queries error here with
  // the engine's kUnsupported, which is the right answer for MC too.
  return volumes_.queries().rewrite(query, rw);
}

Result<VolumeAnswer> Session::pooled_monte_carlo(const Request& request,
                                                 const FormulaPtr& membership,
                                                 std::size_t sample_size,
                                                 double target_epsilon,
                                                 CancelToken* token) {
  // Validate free variables against the query as written, not the
  // rewrite (QE may simplify a stray free variable away).
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(request.query);
  if (!parsed.is_ok()) return parsed.status();
  std::vector<std::size_t> element_vars;
  for (const auto& name : request.output_vars) {
    int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(name);
    if (idx < 0) return Status::invalid("unknown output variable: " + name);
    element_vars.push_back(static_cast<std::size_t>(idx));
  }
  for (std::size_t v : parsed.value()->free_vars()) {
    if (std::find(element_vars.begin(), element_vars.end(), v) ==
        element_vars.end()) {
      return Status::invalid(
          "query has a free variable that is not an output: " +
          db_->vars().name_of(v));
    }
  }
  ParallelSampler sampler(&db_->db(), membership, element_vars,
                          sample_size, request.seed,
                          options_.mc_chunk_size);
  auto est = sampler.estimate_partial({}, &pool_, token);
  if (!est.is_ok()) return est.status();
  const McPartial& p = est.value();
  mc_points_evaluated_total_->inc(p.evaluated);

  VolumeAnswer answer;
  answer.points_evaluated = p.evaluated;
  answer.points_requested = p.requested;
  if (p.complete) {
    answer.estimate = p.estimate;
    answer.lower = p.estimate - target_epsilon;
    answer.upper = p.estimate + target_epsilon;
    return answer;
  }
  if (p.evaluated == 0) {
    // Expired before a single chunk finished: nothing to estimate from.
    return trivial_half_answer(true);
  }
  // Best-so-far: the completed chunks are i.i.d. slices of the planned
  // sample (up to the mild survivorship caveat in parallel_sampler.h);
  // widen the bars to the Hoeffding half-width the smaller sample
  // supports.
  const double eps = hoeffding_epsilon(request.budget.delta, p.evaluated);
  answer.degraded = true;
  answer.estimate = p.estimate;
  answer.lower = std::max(0.0, p.estimate - eps);
  answer.upper = std::min(1.0, p.estimate + eps);
  return answer;
}

void Session::record_plan(const PlanDecision& decision) {
  planner_decisions_total_->inc();
  metrics_
      .counter(std::string("planner_choice_") +
               strategy_name(decision.chosen) + "_total")
      ->inc();
}

void Session::record_guard(const guard::GuardReport& report) {
  if (report.quota_tripped) {
    guard_quota_trip_total_->inc();
    metrics_
        .counter(std::string("guard_quota_trip_") + report.tripped_quota +
                 "_total")
        ->inc();
  }
  if (report.rung != guard::Rung::kNone) {
    metrics_
        .counter(std::string("guard_degradation_rung_") +
                 guard::rung_name(report.rung) + "_total")
        ->inc();
  }
}

// --- Deprecated per-operation shims ----------------------------------

Result<FormulaPtr> Session::rewrite(const std::string& query) {
  Request req;
  req.kind = RequestKind::kRewrite;
  req.query = query;
  auto a = run(req);
  if (!a.is_ok()) return a.status();
  return a.value().formula;
}

Result<std::vector<LinearCell>> Session::cells(
    const std::string& query, const std::vector<std::string>& output_vars) {
  Request req;
  req.kind = RequestKind::kCells;
  req.query = query;
  req.output_vars = output_vars;
  auto a = run(req);
  if (!a.is_ok()) return a.status();
  return a.value().cells;
}

Result<bool> Session::ask(const std::string& sentence) {
  Request req;
  req.kind = RequestKind::kAsk;
  req.query = sentence;
  auto a = run(req);
  if (!a.is_ok()) return a.status();
  return *a.value().truth;
}

Result<VolumeAnswer> Session::volume(
    const std::string& query, const std::vector<std::string>& output_vars,
    const VolumeOptions& options) {
  // Kept engine-shaped (not a Request round-trip) because VolumeOptions
  // carries knobs Request deliberately does not (vc_dim override,
  // clip_to_unit_box, sample caps); behaviour and counters are
  // unchanged from the pre-run() Session.
  ScopedTimer timer(volume_call_ns_);
  volume_calls_total_->inc();
  if (options.strategy == VolumeStrategy::kMonteCarlo) {
    auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
    if (!parsed.is_ok()) return parsed.status();
    std::vector<std::size_t> element_vars;
    for (const auto& name : output_vars) {
      int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(name);
      if (idx < 0) {
        return Status::invalid("unknown output variable: " + name);
      }
      element_vars.push_back(static_cast<std::size_t>(idx));
    }
    for (std::size_t v : parsed.value()->free_vars()) {
      if (std::find(element_vars.begin(), element_vars.end(), v) ==
          element_vars.end()) {
        return Status::invalid(
            "query has a free variable that is not an output: " +
            db_->vars().name_of(v));
      }
    }
    auto membership = mc_membership_formula(query, options.cancel);
    if (!membership.is_ok()) {
      if (is_expiry(membership.status())) return trivial_half_answer(true);
      return membership.status();
    }
    std::size_t m =
        blumer_sample_bound(options.epsilon, options.delta, options.vc_dim);
    if (options.max_mc_samples > 0) m = std::min(m, options.max_mc_samples);
    ParallelSampler sampler(&db_->db(), membership.value(), element_vars,
                            m, options.seed, options_.mc_chunk_size);
    auto est = sampler.estimate_partial({}, &pool_, options.cancel);
    if (!est.is_ok()) return est.status();
    const McPartial& p = est.value();
    mc_points_evaluated_total_->inc(p.evaluated);
    if (!p.complete && p.evaluated == 0) {
      // Expired before a single chunk finished: mirror run()'s last
      // rung rather than claiming [0, 0.5] bars from zero data.
      VolumeAnswer answer = trivial_half_answer(true);
      answer.points_requested = p.requested;
      return answer;
    }
    VolumeAnswer answer;
    answer.points_evaluated = p.evaluated;
    answer.points_requested = p.requested;
    answer.estimate = p.estimate;
    if (p.complete) {
      answer.lower = p.estimate - options.epsilon;
      answer.upper = p.estimate + options.epsilon;
    } else {
      const double eps = hoeffding_epsilon(options.delta, p.evaluated);
      answer.degraded = true;
      answer.lower = std::max(0.0, p.estimate - eps);
      answer.upper = std::min(1.0, p.estimate + eps);
    }
    return answer;
  }
  return volumes_.volume(query, output_vars, options);
}

Result<Rational> Session::mu(const std::string& query,
                             const std::vector<std::string>& output_vars) {
  Request req;
  req.kind = RequestKind::kMu;
  req.query = query;
  req.output_vars = output_vars;
  auto a = run(req);
  if (!a.is_ok()) return a.status();
  return *a.value().mu;
}

Result<UPoly> Session::growth_polynomial(
    const std::string& query, const std::vector<std::string>& output_vars) {
  Request req;
  req.kind = RequestKind::kGrowthPolynomial;
  req.query = query;
  req.output_vars = output_vars;
  auto a = run(req);
  if (!a.is_ok()) return a.status();
  return *a.value().growth;
}

Result<Rational> Session::aggregate(
    AggregateFn fn, const std::string& query, const std::string& output_var,
    const std::vector<std::pair<std::string, Rational>>& bindings) {
  Request req;
  req.kind = RequestKind::kAggregate;
  req.query = query;
  req.output_vars = {output_var};
  req.aggregate_fn = fn;
  req.bindings = bindings;
  auto a = run(req);
  if (!a.is_ok()) return a.status();
  return *a.value().aggregate;
}

}  // namespace cqa
