#include "cqa/runtime/eval_cache.h"

namespace cqa {

namespace {
Counter* metric_or_null(MetricsRegistry* metrics, const char* name) {
  return metrics ? metrics->counter(name) : nullptr;
}
}  // namespace

EvalCache::EvalCache(EvalCacheOptions options, MetricsRegistry* metrics)
    : rewrites_(options.rewrite_capacity, options.shards,
                metric_or_null(metrics, "cache_hits_total"),
                metric_or_null(metrics, "cache_misses_total"),
                metric_or_null(metrics, "cache_evictions_total")),
      volumes_(options.volume_capacity, options.shards,
               metric_or_null(metrics, "cache_hits_total"),
               metric_or_null(metrics, "cache_misses_total"),
               metric_or_null(metrics, "cache_evictions_total")) {}

CacheStats EvalCache::stats() const {
  const CacheStats r = rewrite_stats();
  const CacheStats v = volume_stats();
  CacheStats out;
  out.hits = r.hits + v.hits;
  out.misses = r.misses + v.misses;
  out.evictions = r.evictions + v.evictions;
  out.entries = r.entries + v.entries;
  return out;
}

}  // namespace cqa
