#include "cqa/runtime/eval_cache.h"

#include <chrono>

#include "cqa/guard/fault.h"
#include "cqa/logic/printer.h"

namespace cqa {

namespace {

Counter* metric_or_null(MetricsRegistry* metrics, const char* name) {
  return metrics ? metrics->counter(name) : nullptr;
}

// Content checksums. FNV-1a over the printed form for formulas (the
// printed form is already the canonical identity the cache keys use);
// the rational's own hash for volumes. Salted so an all-zero corrupted
// entry never accidentally verifies.
constexpr std::uint64_t kChecksumSalt = 0x9e3779b97f4a7c15ULL;

std::uint64_t checksum_string(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL ^ kChecksumSalt;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t checksum_formula(const FormulaPtr& f) {
  return checksum_string(to_string(f));
}

std::uint64_t checksum_rational(const Rational& r) {
  return static_cast<std::uint64_t>(r.hash()) ^ kChecksumSalt;
}

// The kCachePoison chaos fault corrupts the *stored* checksum, modeling
// an entry whose bytes rotted after being written.
std::uint64_t maybe_poison(std::uint64_t sum) {
  if (guard::fault_fires(guard::FaultSite::kCachePoison)) {
    return sum ^ 0xbadc0ffee0ddf00dULL;
  }
  return sum;
}

// Serve-context marker. A depth counter (not a flag) keeps nested
// scopes -- a scheduler executor running a request that spawns another
// scoped section -- well defined.
thread_local int tl_serve_depth = 0;

// The token of the request this serve thread is running, polled by
// blocked FlightTable followers (see ServeTokenScope).
thread_local const CancelToken* tl_serve_token = nullptr;

}  // namespace

bool in_serve_context() { return tl_serve_depth > 0; }

const CancelToken* current_serve_token() { return tl_serve_token; }

ServeTokenScope::ServeTokenScope(const CancelToken* token)
    : previous_(tl_serve_token) {
  tl_serve_token = token;
}

ServeTokenScope::~ServeTokenScope() { tl_serve_token = previous_; }

ServeFlightScope::ServeFlightScope(EvalCache* cache) : cache_(cache) {
  ++tl_serve_depth;
}

ServeFlightScope::~ServeFlightScope() {
  --tl_serve_depth;
  if (cache_ != nullptr) {
    cache_->rewrite_flights_.abandon_thread();
    cache_->volume_flights_.abandon_thread();
  }
}

FlightTable::JoinResult FlightTable::join(const std::string& key,
                                          Counter* coalesced,
                                          const CancelToken* token) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    flights_.emplace(key, std::this_thread::get_id());
    return JoinResult::kLeader;
  }
  if (it->second == std::this_thread::get_id()) {
    // Recursive lookup of a key this thread is already computing (the
    // volume pipeline consulting the rewrite entry it leads): compute
    // inline; the nested store lands the flight early, which is fine.
    return JoinResult::kLeader;
  }
  if (coalesced) coalesced->inc();
  // Wait until no flight exists for the key. A *new* leader may take
  // over between the wake and the predicate re-check; keep waiting on
  // it -- the caller only cares that some leader published or died.
  // The wait is periodic because the follower's own token can trip
  // without anyone signalling this cv (Ticket::cancel, deadline
  // expiry): a follower that outlived its budget leaves the queue
  // instead of head-of-line blocking an executor behind a slow leader.
  for (;;) {
    const bool gone =
        cv_.wait_for(lock, std::chrono::milliseconds(1),
                     [&] { return flights_.find(key) == flights_.end(); });
    if (gone) return JoinResult::kRetry;
    if (token_expired(token)) return JoinResult::kExpired;
  }
}

void FlightTable::land(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it != flights_.end() && it->second == std::this_thread::get_id()) {
    flights_.erase(it);
    cv_.notify_all();
  }
}

std::size_t FlightTable::abandon_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  for (auto it = flights_.begin(); it != flights_.end();) {
    if (it->second == std::this_thread::get_id()) {
      it = flights_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) cv_.notify_all();
  return dropped;
}

std::size_t FlightTable::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

EvalCache::EvalCache(EvalCacheOptions options, MetricsRegistry* metrics)
    : rewrites_(options.rewrite_capacity, options.shards,
                metric_or_null(metrics, "cache_hits_total"),
                metric_or_null(metrics, "cache_misses_total"),
                metric_or_null(metrics, "cache_evictions_total")),
      volumes_(options.volume_capacity, options.shards,
               metric_or_null(metrics, "cache_hits_total"),
               metric_or_null(metrics, "cache_misses_total"),
               metric_or_null(metrics, "cache_evictions_total")),
      checksum_fail_metric_(
          metric_or_null(metrics, "guard_cache_poison_detected_total")),
      coalesced_metric_(metric_or_null(metrics, "serve_coalesced_total")) {}

std::optional<FormulaPtr> EvalCache::lookup_rewrite_once(
    const std::string& key) {
  auto entry = rewrites_.lookup(key);
  if (!entry) return std::nullopt;
  if (checksum_formula(entry->value) != entry->sum) {
    rewrite_checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    if (checksum_fail_metric_) checksum_fail_metric_->inc();
    return std::nullopt;  // caller recomputes and overwrites the entry
  }
  return std::move(entry->value);
}

std::optional<FormulaPtr> EvalCache::lookup_rewrite(const std::string& key) {
  if (!in_serve_context()) return lookup_rewrite_once(key);
  for (;;) {
    if (auto hit = lookup_rewrite_once(key)) return hit;
    switch (rewrite_flights_.join(key, coalesced_metric_,
                                  current_serve_token())) {
      case FlightTable::JoinResult::kLeader:
        // Miss returned to the engine, which computes and stores
        // (landing the flight) -- or errors, in which case the
        // ServeFlightScope abandons the flight and a follower takes
        // over.
        return std::nullopt;
      case FlightTable::JoinResult::kExpired:
        // This request's own token tripped while it waited: report a
        // miss (without becoming leader) so the engine starts
        // computing, notices the expired token at its next poll, and
        // degrades down the normal ladder.
        return std::nullopt;
      case FlightTable::JoinResult::kRetry:
        // A leader landed or abandoned while we waited: retry the
        // lookup.
        break;
    }
  }
}

void EvalCache::store_rewrite(const std::string& key, FormulaPtr value) {
  Checked<FormulaPtr> entry;
  entry.sum = maybe_poison(checksum_formula(value));
  entry.value = std::move(value);
  rewrites_.store(key, std::move(entry));
  rewrite_flights_.land(key);
}

std::optional<Rational> EvalCache::lookup_volume_once(
    const std::string& key) {
  auto entry = volumes_.lookup(key);
  if (!entry) return std::nullopt;
  if (checksum_rational(entry->value) != entry->sum) {
    volume_checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    if (checksum_fail_metric_) checksum_fail_metric_->inc();
    return std::nullopt;
  }
  return std::move(entry->value);
}

std::optional<Rational> EvalCache::lookup_volume(const std::string& key) {
  if (!in_serve_context()) return lookup_volume_once(key);
  for (;;) {
    if (auto hit = lookup_volume_once(key)) return hit;
    switch (volume_flights_.join(key, coalesced_metric_,
                                 current_serve_token())) {
      case FlightTable::JoinResult::kLeader:
      case FlightTable::JoinResult::kExpired:
        return std::nullopt;
      case FlightTable::JoinResult::kRetry:
        break;
    }
  }
}

void EvalCache::store_volume(const std::string& key, Rational value) {
  Checked<Rational> entry;
  entry.sum = maybe_poison(checksum_rational(value));
  entry.value = std::move(value);
  volumes_.store(key, std::move(entry));
  volume_flights_.land(key);
}

std::vector<std::pair<std::string, Rational>> EvalCache::snapshot_volumes()
    const {
  std::vector<std::pair<std::string, Rational>> out;
  for (auto& [key, entry] : volumes_.snapshot()) {
    if (checksum_rational(entry.value) != entry.sum) continue;
    out.emplace_back(std::move(key), std::move(entry.value));
  }
  return out;
}

void EvalCache::restore_volumes(
    const std::vector<std::pair<std::string, Rational>>& entries) {
  // store_volume recomputes the checksum, so a snapshot that rotted on
  // disk is re-sealed here -- the served layer validates file records
  // before they ever reach this point.
  for (const auto& [key, value] : entries) store_volume(key, value);
}

std::size_t EvalCache::flights_in_flight() const {
  return rewrite_flights_.in_flight() + volume_flights_.in_flight();
}

CacheStats EvalCache::rewrite_stats() const {
  CacheStats out = rewrites_.stats();
  out.checksum_failures =
      rewrite_checksum_failures_.load(std::memory_order_relaxed);
  return out;
}

CacheStats EvalCache::volume_stats() const {
  CacheStats out = volumes_.stats();
  out.checksum_failures =
      volume_checksum_failures_.load(std::memory_order_relaxed);
  return out;
}

CacheStats EvalCache::stats() const {
  const CacheStats r = rewrite_stats();
  const CacheStats v = volume_stats();
  CacheStats out;
  out.hits = r.hits + v.hits;
  out.misses = r.misses + v.misses;
  out.evictions = r.evictions + v.evictions;
  out.entries = r.entries + v.entries;
  out.checksum_failures = r.checksum_failures + v.checksum_failures;
  return out;
}

}  // namespace cqa
