// Process-local metrics for the concurrent runtime: named monotonic
// counters and latency histograms. Updates are lock-free (relaxed
// atomics); only first-time registration of a name takes a mutex, so a
// hot path that caches the returned Counter*/Histogram* never contends.
//
// The dump format is one `name value` line per metric (histograms add
// `_count`, `_sum_ns`, and per-bucket lines), greppable from bench
// output and stable enough to assert on in tests.

#ifndef CQA_RUNTIME_METRICS_H_
#define CQA_RUNTIME_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cqa {

/// Monotonic counter. inc() is wait-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Level gauge (current queue depth, in-flight work): unlike a Counter
/// it moves both ways. add()/sub()/set() are wait-free; `peak` tracks
/// the high-water mark so a dump shows pressure even after it drains.
class Gauge {
 public:
  void add(std::int64_t n = 1) {
    const std::int64_t now =
        value_.fetch_add(n, std::memory_order_relaxed) + n;
    raise_peak(now);
  }
  void sub(std::int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    raise_peak(v);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Reads the high-water mark and resets it to the *current* level, so
  /// each scrape window reports its own peak instead of the process
  /// lifetime's (per-shard overload reporting needs the former). A
  /// concurrent add() racing the reset can only raise the new peak, so
  /// the invariant peak >= value self-heals on the next movement.
  std::int64_t take_peak() {
    return peak_.exchange(value_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;  // absorb() merges peaks only

  void raise_peak(std::int64_t v) {
    std::int64_t cur = peak_.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak_.compare_exchange_weak(cur, v,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Latency histogram with power-of-two nanosecond buckets: bucket b
/// counts observations in [2^b, 2^(b+1)) ns (bucket 0 also catches 0).
/// observe() is wait-free.
class Histogram {
 public:
  static constexpr int kBuckets = 48;  // 2^48 ns ~ 3.3 days: plenty

  void observe_ns(std::uint64_t ns);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Mean latency in nanoseconds (0 when empty).
  double mean_ns() const;

 private:
  friend class MetricsRegistry;  // absorb() merges raw buckets

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Registry of named counters and histograms. Returned pointers are
/// stable for the registry's lifetime; cache them on hot paths.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Value of a counter if registered, 0 otherwise (for tests).
  std::uint64_t counter_value(const std::string& name) const;

  /// Value of a gauge if registered, 0 otherwise (for tests).
  std::int64_t gauge_value(const std::string& name) const;

  /// Plain-text dump, one metric per line, names sorted.
  std::string dump() const;

  /// Adds every counter and histogram of `other` into this registry
  /// (creating names as needed). Lets a harness that runs many
  /// short-lived sessions aggregate their metrics into one registry.
  void absorb(const MetricsRegistry& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer recording wall time into a Histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (!h_) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->observe_ns(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_METRICS_H_
