// Sharded, LRU-bounded memo-cache for expensive engine results.
//
// Keys are canonical strings (the printed form of the parsed query, plus
// any binding/option fingerprint -- see QueryEngine::canonical_key), so
// textually different spellings of the same formula share an entry.
// Values are immutable (FormulaPtr is shared_ptr<const Formula>;
// Rational is copied out under the shard lock), so cached results can be
// handed to any thread.
//
// Sharding bounds lock contention: a key hashes to one shard, each shard
// is an independent mutex + LRU list + hash index. Capacity is enforced
// per shard (total/shards, min 1), so the global footprint is bounded by
// ~capacity entries regardless of access pattern.

#ifndef CQA_RUNTIME_EVAL_CACHE_H_
#define CQA_RUNTIME_EVAL_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cqa/arith/rational.h"
#include "cqa/logic/formula.h"
#include "cqa/runtime/metrics.h"
#include "cqa/util/cancellation.h"

namespace cqa {

/// Aggregated cache accounting.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  /// Entries whose checksum failed verification on lookup (dropped and
  /// recomputed by the caller; nonzero means corruption was *caught*).
  std::uint64_t checksum_failures = 0;
};

/// A sharded LRU map from canonical-string keys to values of type V.
template <typename V>
class ShardedLru {
 public:
  /// `capacity` is the total entry bound across shards; optional metric
  /// counters (may be null) are bumped alongside the internal stats.
  ShardedLru(std::size_t capacity, std::size_t shards, Counter* hits,
             Counter* misses, Counter* evictions)
      : per_shard_capacity_(
            std::max<std::size_t>(1, capacity / std::max<std::size_t>(
                                                    1, shards))),
        hits_metric_(hits),
        misses_metric_(misses),
        evictions_metric_(evictions) {
    shards_.resize(std::max<std::size_t>(1, shards));
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  std::optional<V> lookup(const std::string& key) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (misses_metric_) misses_metric_->inc();
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_metric_) hits_metric_->inc();
    return it->second->second;
  }

  void store(const std::string& key, V value) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.emplace_front(key, std::move(value));
    s.index.emplace(key, s.lru.begin());
    if (s.lru.size() > per_shard_capacity_) {
      s.index.erase(s.lru.back().first);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (evictions_metric_) evictions_metric_->inc();
    }
  }

  /// Copy of every entry, most-recently-used first within each shard
  /// (the order restore-then-evict wants: re-storing in this order
  /// keeps the hottest entries when capacities shrank).
  std::vector<std::pair<std::string, V>> snapshot() const {
    std::vector<std::pair<std::string, V>> out;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      for (const auto& kv : s->lru) out.push_back(kv);
    }
    return out;
  }

  CacheStats stats() const {
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      out.entries += s->lru.size();
    }
    return out;
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t per_shard_capacity() const { return per_shard_capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    // front = most recently used; index points into the list.
    std::list<std::pair<std::string, V>> lru;
    std::unordered_map<std::string,
                       typename std::list<std::pair<std::string,
                                                    V>>::iterator>
        index;
  };

  Shard& shard_of(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  Counter* hits_metric_;
  Counter* misses_metric_;
  Counter* evictions_metric_;
};

struct EvalCacheOptions {
  std::size_t rewrite_capacity = 512;
  std::size_t volume_capacity = 512;
  std::size_t shards = 8;
};

/// Registry of in-flight computations, keyed by cache key: the
/// single-flight half of the cache (the LRU dedups *completed* work;
/// this dedups work that is still running). The first thread to join a
/// key becomes its leader and computes; later joiners block until the
/// leader lands the value (store) or abandons (error / scope exit),
/// then retry the cache lookup. A leader re-joining its own key (the
/// volume pipeline re-entering the rewrite lookup it is computing)
/// stays leader and computes inline rather than self-deadlocking.
class FlightTable {
 public:
  enum class JoinResult {
    kLeader,   // caller owns the computation; publish via land/abandon
    kRetry,    // a leader finished meanwhile; redo the cache lookup
    kExpired,  // the follower's own token tripped while it waited
  };

  /// Blocks while another thread leads `key`. `coalesced` (may be null)
  /// is bumped once per blocked joiner -- the serve_coalesced_total
  /// metric counts exactly the duplicate computations avoided. A
  /// blocked joiner polls `token` (may be null): Ticket::cancel cannot
  /// signal this condition variable, and a follower must not sit past
  /// its own deadline behind a slow leader, so a tripped token returns
  /// kExpired and the caller falls back to computing inline (where the
  /// engine's own token polls unwind it down the degradation ladder).
  JoinResult join(const std::string& key, Counter* coalesced,
                  const CancelToken* token);

  /// Leader publishes: the value is in the cache, wake all followers.
  /// No-op unless the calling thread leads `key` (idempotent, and safe
  /// against a racing synchronous store from a non-serve thread).
  void land(const std::string& key);

  /// Drops every flight the calling thread still leads (computation
  /// errored out before store). Followers wake, retry, and the first
  /// one to re-join becomes the new leader. Returns the number dropped.
  std::size_t abandon_thread();

  std::size_t in_flight() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::thread::id> flights_;
};

/// True while the calling thread runs a request on behalf of the
/// serving layer. Single-flight joins happen only in this context:
/// synchronous Session::run keeps the plain lookup/compute/store path,
/// because a blocking join would change its latency contract and the
/// serve layer is the first place where requests interact.
bool in_serve_context();

/// The cancel token of the request the calling serve thread is
/// currently running (null when none is bound). FlightTable followers
/// poll it so a blocked joiner wakes when its own deadline expires or
/// its ticket is cancelled, instead of waiting on the leader.
const CancelToken* current_serve_token();

/// RAII binding of a request's token to the calling serve thread;
/// nests (restores the previous binding on destruction). Installed by
/// serve::Scheduler around each job execution and by the fused-MC path
/// around each member's share of the batch's common work.
class ServeTokenScope {
 public:
  explicit ServeTokenScope(const CancelToken* token);
  ~ServeTokenScope();
  ServeTokenScope(const ServeTokenScope&) = delete;
  ServeTokenScope& operator=(const ServeTokenScope&) = delete;

 private:
  const CancelToken* previous_;
};

/// RAII serve-context marker, installed by serve::Scheduler executors
/// around each request. On exit it abandons any flights the thread
/// still leads (the computation failed before landing), so followers
/// can never be stranded by a leader that errored.
class ServeFlightScope {
 public:
  explicit ServeFlightScope(class EvalCache* cache);
  ~ServeFlightScope();
  ServeFlightScope(const ServeFlightScope&) = delete;
  ServeFlightScope& operator=(const ServeFlightScope&) = delete;

 private:
  class EvalCache* cache_;
};

/// The runtime's memo-cache: rewrite results (quantifier-eliminated
/// formulas) and exact volume results, independently LRU-bounded.
///
/// Reads are checksum-verified: every entry carries a content checksum
/// computed at store time and re-verified at lookup. A mismatch (bit
/// rot, or the cqa::guard kCachePoison chaos fault) is counted, the
/// entry is treated as a miss, and the caller recomputes + overwrites --
/// a poisoned cache can cost latency but never a silently wrong answer.
///
/// In serve context (see ServeFlightScope) lookups additionally join a
/// FlightTable: a miss on a key another serve thread is already
/// computing blocks until that leader stores (then hits) instead of
/// recomputing -- N identical concurrent requests cost one computation
/// plus N reads.
class EvalCache {
 public:
  explicit EvalCache(EvalCacheOptions options = {},
                     MetricsRegistry* metrics = nullptr);

  std::optional<FormulaPtr> lookup_rewrite(const std::string& key);
  void store_rewrite(const std::string& key, FormulaPtr value);

  std::optional<Rational> lookup_volume(const std::string& key);
  void store_volume(const std::string& key, Rational value);

  CacheStats rewrite_stats() const;
  CacheStats volume_stats() const;
  /// Both kinds combined.
  CacheStats stats() const;

  /// Persistence hooks (cqa::served warm restarts): a checksum-verified
  /// snapshot of the exact-volume entries, and its inverse. Entries that
  /// fail verification are dropped from the snapshot, not exported.
  /// Rewrite entries hold parsed formulas whose canonical text is
  /// already the cache key, so only the Rational-valued volume side
  /// round-trips through disk.
  std::vector<std::pair<std::string, Rational>> snapshot_volumes() const;
  void restore_volumes(
      const std::vector<std::pair<std::string, Rational>>& entries);

  /// Flights still running (for tests / introspection).
  std::size_t flights_in_flight() const;

 private:
  friend class ServeFlightScope;

  // One verified read of the underlying LRU (nullopt on miss or
  // checksum failure); the serve-context wrappers loop join() around
  // these.
  std::optional<FormulaPtr> lookup_rewrite_once(const std::string& key);
  std::optional<Rational> lookup_volume_once(const std::string& key);
  template <typename V>
  struct Checked {
    V value;
    std::uint64_t sum = 0;
  };

  ShardedLru<Checked<FormulaPtr>> rewrites_;
  ShardedLru<Checked<Rational>> volumes_;
  FlightTable rewrite_flights_;
  FlightTable volume_flights_;
  std::atomic<std::uint64_t> rewrite_checksum_failures_{0};
  std::atomic<std::uint64_t> volume_checksum_failures_{0};
  Counter* checksum_fail_metric_ = nullptr;
  Counter* coalesced_metric_ = nullptr;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_EVAL_CACHE_H_
