// Session: the one public query API, backed by the concurrent runtime,
// the cost-based adaptive planner, and the serving layer.
//
//   ConstraintDatabase db; ...
//   Session session(&db);            // pool + cache + metrics + planner
//   Request req = Request::volume("x^2 + y^2 <= 1")
//                     .vars({"x", "y"})
//                     .epsilon(0.02)
//                     .deadline_ms(50);
//   Result<Answer> a = session.run(req);        // synchronous
//   serve::Ticket t = session.submit(req2);     // asynchronous
//   Result<Answer> b = t.wait();
//
// Every query flows through Request -> Result<Answer>:
//   - requests are validated up front (empty query, epsilon/delta out
//     of (0, 1), missing output variables -> kInvalidArgument before
//     any engine runs);
//   - volume requests go through cqa::plan, which picks the strategy
//     (exact sweep / chunked Theorem-4 MC on the pool / hit-and-run /
//     trivial 1/2) under the request's Budget{epsilon, delta,
//     deadline_ms}; the decision lands in Answer.plan and in the
//     metrics registry (planner_choice_*_total);
//   - execution is cooperatively cancellable: a deadline arms a
//     CancelToken (the caller's Request.cancel when provided) threaded
//     through the engine hot loops, and expiry degrades to the
//     best-so-far estimate with widened error bars and
//     AnswerStatus::kDegraded instead of an error;
//   - rewrite() and exact volume results are memoized in the sharded
//     LRU cache; Monte-Carlo runs chunked on the work-stealing pool
//     with thread-count-independent results; every call is counted and
//     timed in the registry.
//
// submit() hands the request to the serve::Scheduler (created lazily on
// first use): bounded per-priority lanes, in-flight duplicate
// coalescing, fused Monte-Carlo batching, and load shedding down the
// degradation ladder. See serve/scheduler.h.
//
// The per-operation shims (rewrite / cells / ask / volume / mu /
// growth_polynomial / aggregate) that bridged the pre-run() API were
// removed at the end of their deprecation window; construct Requests
// (README has the migration table).
//
// Thread-safety: a Session may be shared by readers as long as the
// underlying ConstraintDatabase is not mutated concurrently (the
// engines themselves never mutate it).

#ifndef CQA_RUNTIME_SESSION_H_
#define CQA_RUNTIME_SESSION_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"
#include "cqa/guard/guard.h"
#include "cqa/plan/planner.h"
#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/metrics.h"
#include "cqa/runtime/parallel_sampler.h"
#include "cqa/runtime/request.h"
#include "cqa/runtime/thread_pool.h"
#include "cqa/serve/ticket.h"
#include "cqa/util/cancellation.h"

namespace cqa {

namespace serve {
class Scheduler;
}  // namespace serve

struct SessionOptions {
  std::size_t threads = 0;  // 0 = hardware_concurrency
  std::size_t rewrite_cache_capacity = 512;
  std::size_t volume_cache_capacity = 512;
  std::size_t cache_shards = 8;
  std::size_t mc_chunk_size = 2048;
  CostModel cost_model;  // planner calibration

  // Serving layer (submit()); see serve::SchedulerOptions.
  std::size_t serve_executors = 2;
  std::size_t serve_queue_capacity = 256;
  std::int64_t serve_promote_within_ms = 5;
  std::size_t serve_max_mc_batch = 8;
};

class Session {
 public:
  explicit Session(const ConstraintDatabase* db,
                   const SessionOptions& options = {});
  ~Session();

  /// The synchronous API: one entry point for every query kind.
  Result<Answer> run(const Request& request);

  /// The asynchronous API: validates, enqueues with the scheduler, and
  /// returns immediately. Ticket::wait()/try_get() resolve to what
  /// run() would have produced -- plus the serving layer's coalescing,
  /// batching, and admission control.
  serve::Ticket submit(Request request);

  /// The scheduler behind submit(), created lazily on first use.
  /// Exposed for its pause()/resume() test seam and queue introspection.
  serve::Scheduler& scheduler();

  ThreadPool& pool() { return pool_; }
  EvalCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::string metrics_dump() const { return metrics_.dump(); }

 private:
  friend class serve::Scheduler;

  class RewriteCacheAdapter : public RewriteCache {
   public:
    explicit RewriteCacheAdapter(EvalCache* cache) : cache_(cache) {}
    std::optional<FormulaPtr> lookup(const std::string& key) override {
      return cache_->lookup_rewrite(key);
    }
    void store(const std::string& key, const FormulaPtr& value) override {
      cache_->store_rewrite(key, value);
    }

   private:
    EvalCache* cache_;
  };

  class VolumeCacheAdapter : public VolumeCache {
   public:
    explicit VolumeCacheAdapter(EvalCache* cache) : cache_(cache) {}
    std::optional<Rational> lookup(const std::string& key) override {
      return cache_->lookup_volume(key);
    }
    void store(const std::string& key, const Rational& value) override {
      cache_->store_volume(key, value);
    }

   private:
    EvalCache* cache_;
  };

  Result<Answer> run_impl(const Request& request, guard::WorkMeter* meter);
  Result<Answer> run_volume(const Request& request, CancelToken* token,
                            guard::WorkMeter* meter);
  Result<Answer> run_planned_volume(const Request& request,
                                    CancelToken* token,
                                    guard::WorkMeter* meter);
  Result<VolumeAnswer> forced_volume(const Request& request,
                                     VolumeStrategy strategy,
                                     CancelToken* token,
                                     guard::WorkMeter* meter);
  // The quantifier-free membership formula Monte-Carlo evaluates:
  // expand + inline, plus the (memoized) linear QE rewrite when the
  // query is quantified. mc_count_hits rejects quantified formulas, so
  // every MC entry point must sample this, never the raw parse.
  Result<FormulaPtr> mc_membership_formula(const std::string& query,
                                           const CancelToken* token,
                                           guard::WorkMeter* meter);
  Result<VolumeAnswer> pooled_monte_carlo(const Request& request,
                                          const FormulaPtr& membership,
                                          std::size_t sample_size,
                                          double target_epsilon,
                                          CancelToken* token,
                                          guard::WorkMeter* meter);
  /// Serve-layer entry point: executes a batch of compatible
  /// forced-Monte-Carlo volume requests (same query and output_vars,
  /// arbitrary seeds/budgets) through ONE fused pool dispatch. Answer i
  /// is bitwise identical to run() on requests[i] alone.
  std::vector<Result<Answer>> run_mc_batch(
      const std::vector<const Request*>& requests,
      const std::vector<CancelToken*>& tokens);
  Result<Answer> finish_mc_answer(const Request& request,
                                  Result<McPartial> part,
                                  double target_epsilon);
  void record_plan(const PlanDecision& decision);
  void record_guard(const guard::GuardReport& report);

  const ConstraintDatabase* db_;
  SessionOptions options_;
  MetricsRegistry metrics_;
  EvalCache cache_;
  ThreadPool pool_;
  RewriteCacheAdapter rewrite_adapter_;
  VolumeCacheAdapter volume_adapter_;
  QueryEngine queries_;
  VolumeEngine volumes_;
  AggregationEngine aggregates_;

  // Hot-path metric handles (stable pointers into metrics_).
  Counter* qe_rewrites_total_;
  Counter* volume_calls_total_;
  Counter* mc_points_evaluated_total_;
  Counter* aggregate_calls_total_;
  Counter* planner_decisions_total_;
  Counter* planner_degraded_total_;
  Counter* guard_quota_trip_total_;
  Histogram* rewrite_call_ns_;
  Histogram* volume_call_ns_;
  Histogram* ask_call_ns_;
  Histogram* aggregate_call_ns_;
  Histogram* planner_plan_ns_;

  // Declared last: the scheduler's executors call back into everything
  // above, so it must be destroyed first.
  std::once_flag scheduler_once_;
  std::unique_ptr<serve::Scheduler> scheduler_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_SESSION_H_
