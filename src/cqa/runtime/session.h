// Session: the one-line opt-in to the concurrent runtime.
//
//   ConstraintDatabase db; ...
//   Session session(&db);                  // pool + cache + metrics
//   session.volume("x^2 + y^2 <= 1", {"x", "y"}, mc_options);
//
// A Session owns a work-stealing ThreadPool, a sharded LRU EvalCache,
// and a MetricsRegistry, and exposes the same call signatures as
// QueryEngine / VolumeEngine / AggregationEngine:
//   - rewrite() and exact volume() results are memoized in the cache
//     (canonical-formula keys, LRU-bounded);
//   - Monte-Carlo volume() runs chunked on the pool via ParallelSampler,
//     with results bitwise independent of the thread count;
//   - every call is counted and timed in the registry
//     (qe_rewrites_total, cache_hits_total, mc_points_evaluated_total,
//     *_call_ns histograms; see metrics().dump()).
//
// Thread-safety: a Session may be shared by readers as long as the
// underlying ConstraintDatabase is not mutated concurrently (the
// engines themselves never mutate it).

#ifndef CQA_RUNTIME_SESSION_H_
#define CQA_RUNTIME_SESSION_H_

#include <string>
#include <vector>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"
#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/metrics.h"
#include "cqa/runtime/thread_pool.h"

namespace cqa {

struct SessionOptions {
  std::size_t threads = 0;  // 0 = hardware_concurrency
  std::size_t rewrite_cache_capacity = 512;
  std::size_t volume_cache_capacity = 512;
  std::size_t cache_shards = 8;
  std::size_t mc_chunk_size = 2048;
};

class Session {
 public:
  explicit Session(const ConstraintDatabase* db,
                   const SessionOptions& options = {});

  // --- QueryEngine surface (memoized, metered) ---
  Result<FormulaPtr> rewrite(const std::string& query);
  Result<std::vector<LinearCell>> cells(
      const std::string& query,
      const std::vector<std::string>& output_vars);
  Result<bool> ask(const std::string& sentence);

  // --- VolumeEngine surface ---
  /// Exact strategies are memoized; kMonteCarlo runs chunked on the
  /// pool (same (seed, chunk) scheme at every thread count).
  Result<VolumeAnswer> volume(const std::string& query,
                              const std::vector<std::string>& output_vars,
                              const VolumeOptions& options = {});
  Result<Rational> mu(const std::string& query,
                      const std::vector<std::string>& output_vars);
  Result<UPoly> growth_polynomial(const std::string& query,
                                  const std::vector<std::string>&
                                      output_vars);

  // --- AggregationEngine surface ---
  Result<Rational> aggregate(AggregateFn fn, const std::string& query,
                             const std::string& output_var,
                             const std::vector<std::pair<std::string,
                                                         Rational>>&
                                 bindings = {});

  ThreadPool& pool() { return pool_; }
  EvalCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::string metrics_dump() const { return metrics_.dump(); }

 private:
  class RewriteCacheAdapter : public RewriteCache {
   public:
    explicit RewriteCacheAdapter(EvalCache* cache) : cache_(cache) {}
    std::optional<FormulaPtr> lookup(const std::string& key) override {
      return cache_->lookup_rewrite(key);
    }
    void store(const std::string& key, const FormulaPtr& value) override {
      cache_->store_rewrite(key, value);
    }

   private:
    EvalCache* cache_;
  };

  class VolumeCacheAdapter : public VolumeCache {
   public:
    explicit VolumeCacheAdapter(EvalCache* cache) : cache_(cache) {}
    std::optional<Rational> lookup(const std::string& key) override {
      return cache_->lookup_volume(key);
    }
    void store(const std::string& key, const Rational& value) override {
      cache_->store_volume(key, value);
    }

   private:
    EvalCache* cache_;
  };

  Result<VolumeAnswer> monte_carlo_volume(
      const std::string& query,
      const std::vector<std::string>& output_vars,
      const VolumeOptions& options);

  const ConstraintDatabase* db_;
  SessionOptions options_;
  MetricsRegistry metrics_;
  EvalCache cache_;
  ThreadPool pool_;
  RewriteCacheAdapter rewrite_adapter_;
  VolumeCacheAdapter volume_adapter_;
  QueryEngine queries_;
  VolumeEngine volumes_;
  AggregationEngine aggregates_;

  // Hot-path metric handles (stable pointers into metrics_).
  Counter* qe_rewrites_total_;
  Counter* volume_calls_total_;
  Counter* mc_points_evaluated_total_;
  Counter* aggregate_calls_total_;
  Histogram* rewrite_call_ns_;
  Histogram* volume_call_ns_;
  Histogram* ask_call_ns_;
  Histogram* aggregate_call_ns_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_SESSION_H_
