// Session: the one public query API, backed by the concurrent runtime
// and the cost-based adaptive planner.
//
//   ConstraintDatabase db; ...
//   Session session(&db);            // pool + cache + metrics + planner
//   Request req;
//   req.kind = RequestKind::kVolume;
//   req.query = "x^2 + y^2 <= 1";
//   req.output_vars = {"x", "y"};
//   req.budget = {.epsilon = 0.02, .delta = 0.05, .deadline_ms = 50};
//   Result<Answer> a = session.run(req);
//
// Every query flows through Session::run(Request) -> Result<Answer>:
//   - volume requests go through cqa::plan, which picks the strategy
//     (exact sweep / chunked Theorem-4 MC on the pool / hit-and-run /
//     trivial 1/2) under the request's Budget{epsilon, delta,
//     deadline_ms}; the decision lands in Answer.plan and in the
//     metrics registry (planner_choice_*_total);
//   - execution is cooperatively cancellable: a deadline arms a
//     CancelToken threaded through the engine hot loops, and expiry
//     degrades to the best-so-far estimate with widened error bars and
//     AnswerStatus::kDegraded instead of an error;
//   - rewrite() and exact volume results are memoized in the sharded
//     LRU cache; Monte-Carlo runs chunked on the work-stealing pool
//     with thread-count-independent results; every call is counted and
//     timed in the registry.
//
// The per-operation methods (rewrite / cells / ask / volume / mu /
// growth_polynomial / aggregate) survive as deprecated shims over run()
// for one release; new code should construct Requests.
//
// Thread-safety: a Session may be shared by readers as long as the
// underlying ConstraintDatabase is not mutated concurrently (the
// engines themselves never mutate it).

#ifndef CQA_RUNTIME_SESSION_H_
#define CQA_RUNTIME_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"
#include "cqa/guard/guard.h"
#include "cqa/plan/planner.h"
#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/metrics.h"
#include "cqa/runtime/thread_pool.h"
#include "cqa/util/cancellation.h"

namespace cqa {

struct SessionOptions {
  std::size_t threads = 0;  // 0 = hardware_concurrency
  std::size_t rewrite_cache_capacity = 512;
  std::size_t volume_cache_capacity = 512;
  std::size_t cache_shards = 8;
  std::size_t mc_chunk_size = 2048;
  CostModel cost_model;  // planner calibration
};

/// What a Request asks for.
enum class RequestKind {
  kAsk,               // decide a sentence
  kRewrite,           // quantifier-free equivalent
  kCells,             // closure: output as a union of linear cells
  kVolume,            // VOL of the denotation (planner-routed)
  kMu,                // Chomicki-Kuper measure at infinity
  kGrowthPolynomial,  // V(r) = Vol(S cap [-r,r]^n)
  kAggregate,         // SQL aggregate over a safe output
};

/// One query plus its budget: the unit of work Session::run accepts.
struct Request {
  RequestKind kind = RequestKind::kVolume;
  std::string query;
  std::vector<std::string> output_vars;
  Budget budget;
  /// Volume only: bypass the planner and force one strategy.
  std::optional<VolumeStrategy> strategy;
  std::uint64_t seed = 1;
  /// Aggregate only.
  AggregateFn aggregate_fn = AggregateFn::kCount;
  std::vector<std::pair<std::string, Rational>> bindings;
};

enum class AnswerStatus {
  kOk,        // full-fidelity answer
  kDegraded,  // deadline expired or quota tripped: best-so-far answer
};

/// The one result type. The payload matching the request kind is set;
/// volume answers carry the plan that produced them.
struct Answer {
  RequestKind kind = RequestKind::kVolume;
  AnswerStatus status = AnswerStatus::kOk;
  std::optional<bool> truth;             // kAsk
  FormulaPtr formula;                    // kRewrite
  std::vector<LinearCell> cells;         // kCells
  VolumeAnswer volume;                   // kVolume
  std::optional<Rational> mu;            // kMu
  std::optional<UPoly> growth;           // kGrowthPolynomial
  std::optional<Rational> aggregate;     // kAggregate
  std::optional<PlanDecision> plan;      // kVolume (planner-routed)
  /// What the request's WorkMeter accounted, whether a quota tripped,
  /// and which degradation rung served a volume request.
  guard::GuardReport guard;
  double elapsed_ms = 0.0;

  bool degraded() const { return status == AnswerStatus::kDegraded; }
};

class Session {
 public:
  explicit Session(const ConstraintDatabase* db,
                   const SessionOptions& options = {});

  /// The API: one entry point for every query kind.
  Result<Answer> run(const Request& request);

  // --- Deprecated per-operation shims (one release; prefer run()) ----
  Result<FormulaPtr> rewrite(const std::string& query);
  Result<std::vector<LinearCell>> cells(
      const std::string& query,
      const std::vector<std::string>& output_vars);
  Result<bool> ask(const std::string& sentence);
  Result<VolumeAnswer> volume(const std::string& query,
                              const std::vector<std::string>& output_vars,
                              const VolumeOptions& options = {});
  Result<Rational> mu(const std::string& query,
                      const std::vector<std::string>& output_vars);
  Result<UPoly> growth_polynomial(const std::string& query,
                                  const std::vector<std::string>&
                                      output_vars);
  Result<Rational> aggregate(AggregateFn fn, const std::string& query,
                             const std::string& output_var,
                             const std::vector<std::pair<std::string,
                                                         Rational>>&
                                 bindings = {});

  ThreadPool& pool() { return pool_; }
  EvalCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::string metrics_dump() const { return metrics_.dump(); }

 private:
  class RewriteCacheAdapter : public RewriteCache {
   public:
    explicit RewriteCacheAdapter(EvalCache* cache) : cache_(cache) {}
    std::optional<FormulaPtr> lookup(const std::string& key) override {
      return cache_->lookup_rewrite(key);
    }
    void store(const std::string& key, const FormulaPtr& value) override {
      cache_->store_rewrite(key, value);
    }

   private:
    EvalCache* cache_;
  };

  class VolumeCacheAdapter : public VolumeCache {
   public:
    explicit VolumeCacheAdapter(EvalCache* cache) : cache_(cache) {}
    std::optional<Rational> lookup(const std::string& key) override {
      return cache_->lookup_volume(key);
    }
    void store(const std::string& key, const Rational& value) override {
      cache_->store_volume(key, value);
    }

   private:
    EvalCache* cache_;
  };

  Result<Answer> run_impl(const Request& request, guard::WorkMeter* meter);
  Result<Answer> run_volume(const Request& request, CancelToken* token,
                            guard::WorkMeter* meter);
  Result<Answer> run_planned_volume(const Request& request,
                                    CancelToken* token,
                                    guard::WorkMeter* meter);
  Result<VolumeAnswer> forced_volume(const Request& request,
                                     VolumeStrategy strategy,
                                     CancelToken* token,
                                     guard::WorkMeter* meter);
  // The quantifier-free membership formula Monte-Carlo evaluates:
  // expand + inline, plus the (memoized) linear QE rewrite when the
  // query is quantified. mc_count_hits rejects quantified formulas, so
  // every MC entry point must sample this, never the raw parse.
  Result<FormulaPtr> mc_membership_formula(const std::string& query,
                                           const CancelToken* token);
  Result<VolumeAnswer> pooled_monte_carlo(const Request& request,
                                          const FormulaPtr& membership,
                                          std::size_t sample_size,
                                          double target_epsilon,
                                          CancelToken* token);
  void record_plan(const PlanDecision& decision);
  void record_guard(const guard::GuardReport& report);

  const ConstraintDatabase* db_;
  SessionOptions options_;
  MetricsRegistry metrics_;
  EvalCache cache_;
  ThreadPool pool_;
  RewriteCacheAdapter rewrite_adapter_;
  VolumeCacheAdapter volume_adapter_;
  QueryEngine queries_;
  VolumeEngine volumes_;
  AggregationEngine aggregates_;

  // Hot-path metric handles (stable pointers into metrics_).
  Counter* qe_rewrites_total_;
  Counter* volume_calls_total_;
  Counter* mc_points_evaluated_total_;
  Counter* aggregate_calls_total_;
  Counter* planner_decisions_total_;
  Counter* planner_degraded_total_;
  Counter* guard_quota_trip_total_;
  Histogram* rewrite_call_ns_;
  Histogram* volume_call_ns_;
  Histogram* ask_call_ns_;
  Histogram* aggregate_call_ns_;
  Histogram* planner_plan_ns_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_SESSION_H_
