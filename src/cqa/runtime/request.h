// Request / Answer: the value types of the unified query API.
//
// A Request names what is asked (kind + query + output variables), under
// what accuracy/latency budget, and -- for the serving layer -- at what
// priority. Session::run(Request) executes one synchronously;
// Session::submit(Request) enqueues one and returns a serve::Ticket.
//
// Requests are validated up front (validate_request): an empty query,
// an epsilon/delta outside (0, 1), or a volume-kind request with no
// output variables comes back as kInvalidArgument before any engine
// runs, instead of failing deep inside QE.
//
// The fluent RequestBuilder exists so call sites stop hand-initializing
// aggregate members:
//
//   Request req = Request::volume("x^2 + y^2 <= 1")
//                     .vars({"x", "y"})
//                     .epsilon(0.02)
//                     .deadline_ms(50)
//                     .build();

#ifndef CQA_RUNTIME_REQUEST_H_
#define CQA_RUNTIME_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/volume_engine.h"
#include "cqa/guard/guard.h"
#include "cqa/plan/planner.h"
#include "cqa/poly/univariate.h"
#include "cqa/util/cancellation.h"
#include "cqa/util/status.h"

namespace cqa {

class RequestBuilder;

/// What a Request asks for.
enum class RequestKind {
  kAsk,               // decide a sentence
  kRewrite,           // quantifier-free equivalent
  kCells,             // closure: output as a union of linear cells
  kVolume,            // VOL of the denotation (planner-routed)
  kMu,                // Chomicki-Kuper measure at infinity
  kGrowthPolynomial,  // V(r) = Vol(S cap [-r,r]^n)
  kAggregate,         // SQL aggregate over a safe output
};

/// Scheduling lane for Session::submit. Within a lane requests are
/// FIFO; across lanes the scheduler serves the highest priority first,
/// except that a request close to its deadline is promoted regardless
/// of lane so background traffic cannot starve it into expiry.
enum class Priority : int {
  kInteractive = 0,  // user-facing, latency-sensitive
  kNormal = 1,       // default
  kBatch = 2,        // bulk/offline work, first to wait under load
};

inline constexpr int kNumPriorities = 3;

/// One query plus its budget: the unit of work Session::run accepts.
struct Request {
  RequestKind kind = RequestKind::kVolume;
  std::string query;
  std::vector<std::string> output_vars;
  Budget budget;
  /// Volume only: bypass the planner and force one strategy.
  std::optional<VolumeStrategy> strategy;
  std::uint64_t seed = 1;
  /// Volume only: override the VC-dimension bound fed to the Blumer
  /// sample-size formula when a strategy is pinned (the planner derives
  /// its own bound from the formula).
  std::optional<double> vc_dim;
  /// Volume only: cap the Monte-Carlo sample below the Blumer bound
  /// (0 = use the bound). A cap that bites widens the effective epsilon.
  std::size_t max_mc_samples = 0;
  /// Scheduling lane for submit(); run() ignores it.
  Priority priority = Priority::kNormal;
  /// Optional caller-owned cancellation handle threaded through the
  /// engine hot loops alongside the budget deadline. Not owned.
  CancelToken* cancel = nullptr;
  /// Aggregate only.
  AggregateFn aggregate_fn = AggregateFn::kCount;
  std::vector<std::pair<std::string, Rational>> bindings;

  // Fluent construction (see RequestBuilder below).
  static RequestBuilder ask(std::string sentence);
  static RequestBuilder rewrite(std::string query);
  static RequestBuilder cells(std::string query);
  static RequestBuilder volume(std::string query);
  static RequestBuilder mu(std::string query);
  static RequestBuilder growth(std::string query);
  static RequestBuilder aggregate(AggregateFn fn, std::string query);
};

enum class AnswerStatus {
  kOk,        // full-fidelity answer
  kDegraded,  // deadline expired, quota tripped, or load shed:
              // best-so-far answer with honest bars
};

/// The one result type. The payload matching the request kind is set;
/// volume answers carry the plan that produced them.
struct Answer {
  RequestKind kind = RequestKind::kVolume;
  AnswerStatus status = AnswerStatus::kOk;
  std::optional<bool> truth;             // kAsk
  FormulaPtr formula;                    // kRewrite
  std::vector<LinearCell> cells;         // kCells
  VolumeAnswer volume;                   // kVolume
  std::optional<Rational> mu;            // kMu
  std::optional<UPoly> growth;           // kGrowthPolynomial
  std::optional<Rational> aggregate;     // kAggregate
  std::optional<PlanDecision> plan;      // kVolume (planner-routed)
  /// What the request's WorkMeter accounted, whether a quota tripped,
  /// which degradation rung served a volume request, and whether the
  /// serving layer shed it at admission.
  guard::GuardReport guard;
  double elapsed_ms = 0.0;

  bool degraded() const { return status == AnswerStatus::kDegraded; }
};

/// Structural validation, run before any engine: empty query, epsilon
/// or delta outside (0, 1), volume-kind request without output
/// variables, aggregate arity. kInvalidArgument with a message naming
/// the field, kOk otherwise.
Status validate_request(const Request& request);

/// Fluent builder over Request. Every setter returns *this, build()
/// returns the finished value (validation still happens in run/submit,
/// so a builder can express a deliberately invalid request in tests).
class RequestBuilder {
 public:
  explicit RequestBuilder(RequestKind kind, std::string query) {
    request_.kind = kind;
    request_.query = std::move(query);
  }

  RequestBuilder& vars(std::vector<std::string> output_vars) {
    request_.output_vars = std::move(output_vars);
    return *this;
  }
  RequestBuilder& epsilon(double eps) {
    request_.budget.epsilon = eps;
    return *this;
  }
  RequestBuilder& delta(double d) {
    request_.budget.delta = d;
    return *this;
  }
  RequestBuilder& deadline_ms(std::int64_t ms) {
    request_.budget.deadline_ms = ms;
    return *this;
  }
  RequestBuilder& quota(const guard::ResourceQuota& q) {
    request_.budget.quota = q;
    return *this;
  }
  RequestBuilder& strategy(VolumeStrategy s) {
    request_.strategy = s;
    return *this;
  }
  RequestBuilder& seed(std::uint64_t s) {
    request_.seed = s;
    return *this;
  }
  RequestBuilder& vc_dim(double d) {
    request_.vc_dim = d;
    return *this;
  }
  RequestBuilder& max_mc_samples(std::size_t m) {
    request_.max_mc_samples = m;
    return *this;
  }
  RequestBuilder& priority(Priority p) {
    request_.priority = p;
    return *this;
  }
  RequestBuilder& cancel(CancelToken* token) {
    request_.cancel = token;
    return *this;
  }
  RequestBuilder& bind(std::string var, Rational value) {
    request_.bindings.emplace_back(std::move(var), std::move(value));
    return *this;
  }
  RequestBuilder& fn(AggregateFn f) {
    request_.aggregate_fn = f;
    return *this;
  }

  Request build() { return std::move(request_); }
  // NOLINTNEXTLINE(google-explicit-constructor): `run(b)` ergonomics.
  operator Request() { return build(); }

 private:
  Request request_;
};

inline RequestBuilder Request::ask(std::string sentence) {
  return RequestBuilder(RequestKind::kAsk, std::move(sentence));
}
inline RequestBuilder Request::rewrite(std::string query) {
  return RequestBuilder(RequestKind::kRewrite, std::move(query));
}
inline RequestBuilder Request::cells(std::string query) {
  return RequestBuilder(RequestKind::kCells, std::move(query));
}
inline RequestBuilder Request::volume(std::string query) {
  return RequestBuilder(RequestKind::kVolume, std::move(query));
}
inline RequestBuilder Request::mu(std::string query) {
  return RequestBuilder(RequestKind::kMu, std::move(query));
}
inline RequestBuilder Request::growth(std::string query) {
  return RequestBuilder(RequestKind::kGrowthPolynomial, std::move(query));
}
inline RequestBuilder Request::aggregate(AggregateFn fn, std::string query) {
  RequestBuilder b(RequestKind::kAggregate, std::move(query));
  b.fn(fn);
  return b;
}

}  // namespace cqa

#endif  // CQA_RUNTIME_REQUEST_H_
