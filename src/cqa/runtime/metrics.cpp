#include "cqa/runtime/metrics.h"

#include <sstream>

namespace cqa {

void Histogram::observe_ns(std::uint64_t ns) {
  int b = 0;
  while ((ns >> (b + 1)) != 0 && b + 1 < kBuckets) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

double Histogram::mean_ns() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_ns()) / static_cast<double>(n);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void MetricsRegistry::absorb(const MetricsRegistry& other) {
  // Snapshot `other` under its lock, then merge under ours; never hold
  // both (same-order deadlock risk if two registries absorb each other).
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauge_peaks;
  struct HistSnapshot {
    std::uint64_t buckets[Histogram::kBuckets];
    std::uint64_t count;
    std::uint64_t sum_ns;
  };
  std::map<std::string, HistSnapshot> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counters[name] = c->value();
    }
    for (const auto& [name, g] : other.gauges_) {
      gauge_peaks[name] = g->peak();
    }
    for (const auto& [name, h] : other.histograms_) {
      HistSnapshot& snap = histograms[name];
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        snap.buckets[b] = h->bucket(b);
      }
      snap.count = h->count();
      snap.sum_ns = h->sum_ns();
    }
  }
  for (const auto& [name, value] : counters) {
    if (value != 0) counter(name)->inc(value);
  }
  // Gauges are levels, not totals: merging current values from a
  // finished session would be meaningless, so absorb keeps the max of
  // the high-water marks instead.
  for (const auto& [name, pk] : gauge_peaks) {
    gauge(name)->raise_peak(pk);
  }
  for (const auto& [name, snap] : histograms) {
    Histogram* h = histogram(name);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] != 0) {
        h->buckets_[b].fetch_add(snap.buckets[b],
                                 std::memory_order_relaxed);
      }
    }
    if (snap.count != 0) {
      h->count_.fetch_add(snap.count, std::memory_order_relaxed);
    }
    if (snap.sum_ns != 0) {
      h->sum_ns_.fetch_add(snap.sum_ns, std::memory_order_relaxed);
    }
  }
}

std::string MetricsRegistry::dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ' ' << g->value() << '\n';
    out << name << "_peak " << g->peak() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << name << "_count " << h->count() << '\n';
    out << name << "_sum_ns " << h->sum_ns() << '\n';
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      out << name << "_bucket_le_" << (2ull << b) << "ns " << n << '\n';
    }
  }
  return out.str();
}

}  // namespace cqa
