#include "cqa/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "cqa/guard/fault.h"

namespace cqa {

namespace {
// Which pool (if any) the current thread is a worker of, and its index;
// lets submit() push to the local deque and identifies nested calls.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t q;
  if (tl_pool == this) {
    q = tl_worker;  // worker submitting: keep it local
  } else {
    q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>* out) {
  // Own queue first (front: submission order), then steal round-robin
  // from the back of the victims' deques.
  {
    auto& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t d = 1; d < queues_.size(); ++d) {
    auto& q = *queues_[(self + d) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

// Executes one raw task. submit() and parallel_for() wrappers already
// route their exceptions through the future / ForState, so anything
// escaping here is either the kWorkerThrow chaos fault or a wrapper
// that failed before reaching its own handler; both are captured so
// the worker thread (and the process) survives.
void ThreadPool::run_task(std::function<void()>& task) {
  try {
    if (guard::fault_fires(guard::FaultSite::kWorkerThrow)) {
      throw std::runtime_error("cqa::guard injected worker-task fault");
    }
    task();
  } catch (...) {
    task_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  task = nullptr;
}

Status ThreadPool::drain_error() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (!err) return Status::ok();
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return Status::internal(std::string("worker task threw: ") + e.what());
  } catch (...) {
    return Status::internal("worker task threw a non-std exception");
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_worker = self;
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, &task)) {
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    // Recheck under the wake lock to avoid missing a notify between the
    // failed pop and the wait.
    lock.unlock();
    if (try_pop(self, &task)) {
      run_task(task);
      continue;
    }
    lock.lock();
    if (stop_.load(std::memory_order_acquire)) return;
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

struct ThreadPool::ForState {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t nchunks = 0;
  std::size_t end = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  // Every claimer hammers `next` and every finisher `done`; on separate
  // cache lines they cost one contended line each instead of bouncing
  // the whole header (measurable with cheap bodies at high thread
  // counts).
  alignas(64) std::atomic<std::size_t> next{0};
  alignas(64) std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::exception_ptr error;
  std::condition_variable done_cv;
};

std::size_t ThreadPool::recommend_grain(std::size_t items,
                                        std::size_t workers,
                                        std::size_t min_items_per_task) {
  if (items == 0) return 1;
  if (workers == 0) workers = 1;
  const std::size_t by_cost = std::max<std::size_t>(1, min_items_per_task);
  const std::size_t by_balance =
      std::max<std::size_t>(1, items / (workers * 8));
  return std::max(by_cost, by_balance);
}

void ThreadPool::run_chunks(const std::shared_ptr<ForState>& st) {
  for (;;) {
    const std::size_t c = st->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= st->nchunks) return;
    if (!st->failed.load(std::memory_order_acquire)) {
      const std::size_t lo = st->begin + c * st->grain;
      const std::size_t hi = std::min(st->end, lo + st->grain);
      try {
        (*st->body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->mu);
        if (!st->error) st->error = std::current_exception();
        st->failed.store(true, std::memory_order_release);
      }
    }
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        st->nchunks) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  auto st = std::make_shared<ForState>();
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->nchunks = (end - begin + grain - 1) / grain;
  st->body = &body;

  // Helpers beyond the caller itself; they exit immediately once all
  // chunks are claimed, so over-subscribing is harmless.
  const std::size_t helpers =
      std::min(st->nchunks > 0 ? st->nchunks - 1 : 0, size());
  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([st] { run_chunks(st); });
  }
  run_chunks(st);  // caller participates: nested calls always progress

  std::unique_lock<std::mutex> lock(st->mu);
  st->done_cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) == st->nchunks;
  });
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace cqa
