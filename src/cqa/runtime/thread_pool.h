// Work-stealing thread pool for the cqa runtime.
//
// Each worker owns a deque: it takes its own work from the front (so a
// single-worker pool preserves submission order), and steals from the
// back of a victim's deque when its own is empty. `parallel_for` is
// caller-participating -- the submitting thread claims chunks alongside
// the workers -- which makes nested parallel_for calls (a worker issuing
// its own parallel_for) deadlock-free even when every worker is busy:
// the nested caller always makes progress on its own chunks.
//
// Exceptions: `submit` surfaces them through the returned future;
// `parallel_for` captures the first body exception, skips remaining
// unclaimed chunks, and rethrows in the caller. A *raw* task that
// throws out of its wrapper (possible only through the cqa::guard
// kWorkerThrow chaos fault or a pathological allocator failure inside
// the wrapper itself) must never std::terminate the worker: the loop
// captures it, counts it in task_failures(), keeps the first as a
// Status for drain_error(), and the worker keeps serving tasks.

#ifndef CQA_RUNTIME_THREAD_POOL_H_
#define CQA_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "cqa/util/status.h"

namespace cqa {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs `body(lo, hi)` over contiguous chunks of [begin, end), each at
  /// most `grain` wide. The calling thread participates; chunks are
  /// claimed in index order. Safe to call from inside a pool task
  /// (nested). Rethrows the first body exception after all claimed
  /// chunks settle.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>&
                        body);

  /// Cost-aware grain for a parallel_for over `items` units of work.
  /// Grain-1 dispatch puts one shared-counter round trip and one task
  /// wakeup behind every unit, which swamps cheap bodies; this picks the
  /// larger of a cost floor (at least `min_items_per_task` units per
  /// claimed task, the caller's estimate of "enough work to amortize a
  /// dispatch") and a balance ceiling (enough chunks that `workers`
  /// stay busy ~8 claims each for work stealing to smooth stragglers).
  static std::size_t recommend_grain(std::size_t items, std::size_t workers,
                                     std::size_t min_items_per_task = 1);

  /// Raw task exceptions captured by the worker loop (tasks that threw
  /// out of their wrapper instead of through a future / ForState).
  std::size_t task_failures() const {
    return task_failures_.load(std::memory_order_relaxed);
  }

  /// Returns-and-clears the first captured raw-task exception as a
  /// Status (kOk when none). The "rethrow at join" policy, minus the
  /// throw: the destructor must stay noexcept, so joiners poll this.
  Status drain_error();

 private:
  struct ForState;

  void enqueue(std::function<void()> task);
  void run_task(std::function<void()>& task);
  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>* out);
  static void run_chunks(const std::shared_ptr<ForState>& st);

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> task_failures_{0};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_THREAD_POOL_H_
