// Chunked Theorem-4 Monte-Carlo estimation for the concurrent runtime.
//
// The M-point sample is partitioned into fixed-size chunks; chunk c
// draws its points from Xoshiro(stream_seed(seed, c)) -- a counter-based
// stream -- and counts membership hits with the CompiledMembership batch
// kernel (lowered once in the constructor, parameters bound once per
// estimate call). Per-chunk integer hit counts land in chunk-indexed,
// cache-line-padded slots and are summed in chunk order, so the
// estimate is a pure function of (seed, sample_size, chunk_size):
// bitwise identical whether chunks run serially or on any number of
// pool threads, in any interleaving.
//
// Unlike McVolumeEstimator, the sample is never materialized whole;
// chunks stream their draws straight into per-thread SoA block scratch,
// so a chunk is allocation-free and per-worker memory stays
// O(block * dim) at any M.

#ifndef CQA_RUNTIME_PARALLEL_SAMPLER_H_
#define CQA_RUNTIME_PARALLEL_SAMPLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/runtime/thread_pool.h"

namespace cqa {

/// Outcome of a (possibly deadline-bounded) chunked estimation. When a
/// cancel token fires mid-run, the chunks that completed before expiry
/// are whole i.i.d. slices of the planned sample; `evaluated` says how
/// many points that is. Caveat: survivors are selected by finishing
/// before the deadline, and completion time can correlate with hit/miss
/// through short-circuit formula evaluation, so a partial estimate may
/// carry a mild survivorship bias (a complete run has none).
struct McPartial {
  double estimate = 0.0;      // hits / evaluated (0 when evaluated == 0)
  std::size_t hits = 0;       // hits in completed chunks
  std::size_t evaluated = 0;  // points in completed chunks
  std::size_t requested = 0;  // the full sample size M
  bool complete = false;      // evaluated == requested
};

class ParallelSampler;

/// One member of a fused batch estimation: a sampler plus the cancel
/// token of the request it serves (tokens stay per-request so one
/// caller's deadline never cancels another's chunks).
struct McBatchItem {
  const ParallelSampler* sampler = nullptr;
  const CancelToken* cancel = nullptr;
};

class ParallelSampler {
 public:
  /// `phi` is inlined against `db` and lowered into a CompiledMembership
  /// plan once, up front (failure surfaces from estimate()). Same
  /// argument meanings as McVolumeEstimator. Plan compilation charges
  /// `meter` when given; a quota trip (or the kCompileMembership chaos
  /// fault) surfaces as kResourceExhausted, which sessions degrade down
  /// the guard ladder.
  ParallelSampler(const Database* db, FormulaPtr phi,
                  std::vector<std::size_t> element_vars,
                  std::size_t sample_size, std::uint64_t seed,
                  std::size_t chunk_size = 2048,
                  guard::WorkMeter* meter = nullptr);

  /// Estimated VOL_I(phi(params, D)). `pool == nullptr` is the serial
  /// reference path; any pool produces bitwise-identical results.
  Result<double> estimate(const std::map<std::size_t, Rational>& params,
                          ThreadPool* pool = nullptr) const;

  /// Best-so-far variant: runs chunks until done or `cancel` expires and
  /// reports whatever completed. Without a token (or an unexpired one)
  /// the result is complete and bitwise identical to estimate(). Real
  /// evaluation errors still surface as error Status; expiry does not.
  Result<McPartial> estimate_partial(
      const std::map<std::size_t, Rational>& params, ThreadPool* pool,
      const CancelToken* cancel) const;

  /// Fuses the chunk grids of several samplers into ONE parallel_for so
  /// a batch of compatible Monte-Carlo requests shares pool scheduling
  /// instead of running back to back. Each item's chunks use its own
  /// (seed, sample_size, chunk_size) stream and its own cancel token,
  /// so results[i] is bitwise identical to items[i].sampler->
  /// estimate_partial(params, pool, items[i].cancel) run solo. Errors
  /// are per-item: one bad formula fails its own slot only.
  static std::vector<Result<McPartial>> estimate_partial_batch(
      const std::vector<McBatchItem>& items,
      const std::map<std::size_t, Rational>& params, ThreadPool* pool);

  std::size_t sample_size() const { return sample_size_; }
  std::size_t chunk_size() const { return chunk_size_; }
  std::size_t num_chunks() const {
    return sample_size_ == 0 ? 0
                             : (sample_size_ + chunk_size_ - 1) /
                                   chunk_size_;
  }

  /// Minimum points a claimed parallel_for task should cover -- the
  /// cost floor fed to ThreadPool::recommend_grain (a dispatch costs a
  /// shared-counter round trip; a compiled-kernel point costs a few ns).
  static constexpr std::size_t kMinPointsPerTask = 8192;

 private:
  // Per-chunk result slot. Workers write disjoint slots concurrently;
  // one slot per cache line so neighbouring chunks on different threads
  // never ping-pong a line (with plain char flags, 64 chunks share one).
  struct alignas(64) ChunkSlot {
    std::size_t hits = 0;
    char done = 0;
  };

  // One chunk of this sampler's grid: streams its draws through the
  // compiled kernel and fills its slot. Shared by the solo and batch
  // paths so their per-chunk behaviour is the same code.
  void eval_chunk_into(std::size_t c,
                       const CompiledMembership::Binding& binding,
                       const CancelToken* cancel, ChunkSlot* slot,
                       Status* err_out) const;
  // Chunk-order reduction of one grid's outputs into a McPartial.
  Result<McPartial> reduce_partial(const std::vector<ChunkSlot>& slots,
                                   const std::vector<Status>& errors) const;
  // Chunks-per-task floor implied by kMinPointsPerTask at this sampler's
  // chunk size.
  std::size_t min_chunks_per_task() const {
    return (kMinPointsPerTask + chunk_size_ - 1) / chunk_size_;
  }

  Status init_;  // inline_predicates + compile outcome
  FormulaPtr inlined_;
  std::vector<std::size_t> element_vars_;
  std::size_t sample_size_;
  std::uint64_t seed_;
  std::size_t chunk_size_;
  CompiledMembership compiled_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_PARALLEL_SAMPLER_H_
