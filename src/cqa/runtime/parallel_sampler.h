// Chunked Theorem-4 Monte-Carlo estimation for the concurrent runtime.
//
// The M-point sample is partitioned into fixed-size chunks; chunk c
// draws its points from Xoshiro(stream_seed(seed, c)) -- a counter-based
// stream -- and counts membership hits with the same mc_count_hits
// kernel the serial McVolumeEstimator uses. Per-chunk integer hit
// counts land in a chunk-indexed array and are summed in chunk order,
// so the estimate is a pure function of (seed, sample_size, chunk_size):
// bitwise identical whether chunks run serially or on any number of
// pool threads, in any interleaving.
//
// Unlike McVolumeEstimator, the sample is never materialized whole;
// each chunk's points exist only while that chunk is being evaluated,
// so memory stays O(chunk_size * dim) per worker at any M.

#ifndef CQA_RUNTIME_PARALLEL_SAMPLER_H_
#define CQA_RUNTIME_PARALLEL_SAMPLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/runtime/thread_pool.h"

namespace cqa {

/// Outcome of a (possibly deadline-bounded) chunked estimation. When a
/// cancel token fires mid-run, the chunks that completed before expiry
/// are whole i.i.d. slices of the planned sample; `evaluated` says how
/// many points that is. Caveat: survivors are selected by finishing
/// before the deadline, and completion time can correlate with hit/miss
/// through short-circuit formula evaluation, so a partial estimate may
/// carry a mild survivorship bias (a complete run has none).
struct McPartial {
  double estimate = 0.0;      // hits / evaluated (0 when evaluated == 0)
  std::size_t hits = 0;       // hits in completed chunks
  std::size_t evaluated = 0;  // points in completed chunks
  std::size_t requested = 0;  // the full sample size M
  bool complete = false;      // evaluated == requested
};

class ParallelSampler;

/// One member of a fused batch estimation: a sampler plus the cancel
/// token of the request it serves (tokens stay per-request so one
/// caller's deadline never cancels another's chunks).
struct McBatchItem {
  const ParallelSampler* sampler = nullptr;
  const CancelToken* cancel = nullptr;
};

class ParallelSampler {
 public:
  /// `phi` is inlined against `db` once, up front (failure surfaces from
  /// estimate()). Same argument meanings as McVolumeEstimator.
  ParallelSampler(const Database* db, FormulaPtr phi,
                  std::vector<std::size_t> element_vars,
                  std::size_t sample_size, std::uint64_t seed,
                  std::size_t chunk_size = 2048);

  /// Estimated VOL_I(phi(params, D)). `pool == nullptr` is the serial
  /// reference path; any pool produces bitwise-identical results.
  Result<double> estimate(const std::map<std::size_t, Rational>& params,
                          ThreadPool* pool = nullptr) const;

  /// Best-so-far variant: runs chunks until done or `cancel` expires and
  /// reports whatever completed. Without a token (or an unexpired one)
  /// the result is complete and bitwise identical to estimate(). Real
  /// evaluation errors still surface as error Status; expiry does not.
  Result<McPartial> estimate_partial(
      const std::map<std::size_t, Rational>& params, ThreadPool* pool,
      const CancelToken* cancel) const;

  /// Fuses the chunk grids of several samplers into ONE parallel_for so
  /// a batch of compatible Monte-Carlo requests shares pool scheduling
  /// instead of running back to back. Each item's chunks use its own
  /// (seed, sample_size, chunk_size) stream and its own cancel token,
  /// so results[i] is bitwise identical to items[i].sampler->
  /// estimate_partial(params, pool, items[i].cancel) run solo. Errors
  /// are per-item: one bad formula fails its own slot only.
  static std::vector<Result<McPartial>> estimate_partial_batch(
      const std::vector<McBatchItem>& items,
      const std::map<std::size_t, Rational>& params, ThreadPool* pool);

  std::size_t sample_size() const { return sample_size_; }
  std::size_t chunk_size() const { return chunk_size_; }
  std::size_t num_chunks() const {
    return sample_size_ == 0 ? 0
                             : (sample_size_ + chunk_size_ - 1) /
                                   chunk_size_;
  }

 private:
  // One chunk of this sampler's grid: draws its points, counts hits,
  // writes into the chunk-indexed output slots. Shared by the solo and
  // batch paths so their per-chunk behaviour is the same code.
  void eval_chunk_into(std::size_t c,
                       const std::map<std::size_t, Rational>& params,
                       const CancelToken* cancel, std::size_t* hit_out,
                       char* done_out, Status* err_out) const;
  // Chunk-order reduction of one grid's outputs into a McPartial.
  Result<McPartial> reduce_partial(const std::vector<std::size_t>& hits,
                                   const std::vector<char>& done,
                                   const std::vector<Status>& errors) const;

  Status init_;  // inline_predicates outcome, checked in estimate()
  FormulaPtr inlined_;
  std::vector<std::size_t> element_vars_;
  std::size_t sample_size_;
  std::uint64_t seed_;
  std::size_t chunk_size_;
};

}  // namespace cqa

#endif  // CQA_RUNTIME_PARALLEL_SAMPLER_H_
