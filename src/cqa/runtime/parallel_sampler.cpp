#include "cqa/runtime/parallel_sampler.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cqa/approx/random.h"
#include "cqa/guard/fault.h"

namespace cqa {

ParallelSampler::ParallelSampler(const Database* db, FormulaPtr phi,
                                 std::vector<std::size_t> element_vars,
                                 std::size_t sample_size,
                                 std::uint64_t seed,
                                 std::size_t chunk_size)
    : element_vars_(std::move(element_vars)),
      sample_size_(sample_size),
      seed_(seed),
      chunk_size_(std::max<std::size_t>(1, chunk_size)) {
  auto inlined = db->inline_predicates(phi);
  if (!inlined.is_ok()) {
    init_ = inlined.status();
    return;
  }
  inlined_ = inlined.value();
}

Result<McPartial> ParallelSampler::estimate_partial(
    const std::map<std::size_t, Rational>& params, ThreadPool* pool,
    const CancelToken* cancel) const {
  CQA_RETURN_IF_ERROR(init_);
  McPartial out;
  out.requested = sample_size_;
  if (sample_size_ == 0) {
    out.complete = true;
    return out;
  }
  const std::size_t dim = element_vars_.size();
  const std::size_t nchunks = num_chunks();

  // Chunk-indexed outputs: no shared mutable state between chunks, and
  // the final reduction runs in chunk order regardless of scheduling.
  // A chunk either completes (done[c] = 1) or is dropped whole -- a
  // chunk interrupted mid-count contributes nothing. Survivors are
  // whichever chunks beat the deadline, so a partial estimate carries
  // the mild survivorship caveat documented on McPartial; a complete
  // run is exact.
  std::vector<std::size_t> hits(nchunks, 0);
  std::vector<char> done(nchunks, 0);
  std::vector<Status> errors(nchunks, Status::ok());

  auto eval_chunk = [&](std::size_t c) {
    // Chaos hooks: a spuriously-cancelled chunk is dropped whole --
    // exactly the failure mode the drop-whole-chunk partials are built
    // for -- and a slow chunk models a straggler worker.
    if (token_expired(cancel) ||
        guard::fault_fires(guard::FaultSite::kSpuriousCancel)) {
      return;
    }
    if (guard::fault_fires(guard::FaultSite::kSlowChunk)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::size_t lo = c * chunk_size_;
    const std::size_t hi = std::min(sample_size_, lo + chunk_size_);
    Xoshiro rng(stream_seed(seed_, c));
    std::vector<std::vector<double>> points;
    points.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) points.push_back(rng.point(dim));
    auto r = mc_count_hits(inlined_, element_vars_, params, points.data(),
                           points.size(), cancel);
    if (r.is_ok()) {
      hits[c] = r.value();
      done[c] = 1;
    } else if (r.status().code() != StatusCode::kCancelled &&
               r.status().code() != StatusCode::kDeadlineExceeded) {
      errors[c] = r.status();
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, nchunks, 1,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t c = lo; c < hi; ++c) {
                           eval_chunk(c);
                         }
                       });
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) eval_chunk(c);
  }

  // First error in chunk order wins (deterministic across schedules).
  for (const Status& s : errors) {
    CQA_RETURN_IF_ERROR(s);
  }
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (!done[c]) continue;
    const std::size_t lo = c * chunk_size_;
    const std::size_t hi = std::min(sample_size_, lo + chunk_size_);
    out.hits += hits[c];
    out.evaluated += hi - lo;
  }
  out.complete = out.evaluated == sample_size_;
  if (out.evaluated > 0) {
    out.estimate = static_cast<double>(out.hits) /
                   static_cast<double>(out.evaluated);
  }
  return out;
}

Result<double> ParallelSampler::estimate(
    const std::map<std::size_t, Rational>& params, ThreadPool* pool) const {
  auto r = estimate_partial(params, pool, /*cancel=*/nullptr);
  if (!r.is_ok()) return r.status();
  // No token was passed, so an incomplete run can only mean injected
  // spurious cancellation; refuse with a typed error rather than return
  // a partial estimate as if it covered the full sample.
  if (!r.value().complete) {
    return Status::cancelled("sampler chunks dropped by injected fault");
  }
  return r.value().estimate;
}

}  // namespace cqa
