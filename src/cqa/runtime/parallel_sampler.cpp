#include "cqa/runtime/parallel_sampler.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cqa/approx/random.h"
#include "cqa/guard/fault.h"

namespace cqa {

ParallelSampler::ParallelSampler(const Database* db, FormulaPtr phi,
                                 std::vector<std::size_t> element_vars,
                                 std::size_t sample_size,
                                 std::uint64_t seed,
                                 std::size_t chunk_size,
                                 guard::WorkMeter* meter)
    : element_vars_(std::move(element_vars)),
      sample_size_(sample_size),
      seed_(seed),
      chunk_size_(std::max<std::size_t>(1, chunk_size)) {
  auto inlined = db->inline_predicates(phi);
  if (!inlined.is_ok()) {
    init_ = inlined.status();
    return;
  }
  inlined_ = inlined.value();
  auto compiled = CompiledMembership::compile(inlined_, element_vars_, meter);
  if (!compiled.is_ok()) {
    init_ = compiled.status();
    return;
  }
  compiled_ = std::move(compiled).take();
}

// Chunk-indexed outputs: no shared mutable state between chunks, and
// the final reduction runs in chunk order regardless of scheduling.
// A chunk either completes (done = 1) or is dropped whole -- a chunk
// interrupted mid-count contributes nothing. Survivors are whichever
// chunks beat the deadline, so a partial estimate carries the mild
// survivorship caveat documented on McPartial; a complete run is exact.
void ParallelSampler::eval_chunk_into(
    std::size_t c, const CompiledMembership::Binding& binding,
    const CancelToken* cancel, ChunkSlot* slot, Status* err_out) const {
  // Chaos hooks: a spuriously-cancelled chunk is dropped whole --
  // exactly the failure mode the drop-whole-chunk partials are built
  // for -- and a slow chunk models a straggler worker.
  if (token_expired(cancel) ||
      guard::fault_fires(guard::FaultSite::kSpuriousCancel)) {
    return;
  }
  if (guard::fault_fires(guard::FaultSite::kSlowChunk)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::size_t lo = c * chunk_size_;
  const std::size_t hi = std::min(sample_size_, lo + chunk_size_);
  // Same counter-based stream as ever: chunk c's points depend only on
  // (seed, c). The compiled kernel draws them coordinate-by-coordinate
  // in Xoshiro::point order, straight into block scratch.
  Xoshiro rng(stream_seed(seed_, c));
  auto r = compiled_.count_hits_stream(binding, &rng, hi - lo, cancel);
  if (r.is_ok()) {
    slot->hits = r.value();
    slot->done = 1;
  } else if (r.status().code() != StatusCode::kCancelled &&
             r.status().code() != StatusCode::kDeadlineExceeded) {
    *err_out = r.status();
  }
}

Result<McPartial> ParallelSampler::reduce_partial(
    const std::vector<ChunkSlot>& slots,
    const std::vector<Status>& errors) const {
  // First error in chunk order wins (deterministic across schedules).
  for (const Status& s : errors) {
    CQA_RETURN_IF_ERROR(s);
  }
  McPartial out;
  out.requested = sample_size_;
  const std::size_t nchunks = num_chunks();
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (!slots[c].done) continue;
    const std::size_t lo = c * chunk_size_;
    const std::size_t hi = std::min(sample_size_, lo + chunk_size_);
    out.hits += slots[c].hits;
    out.evaluated += hi - lo;
  }
  out.complete = out.evaluated == sample_size_;
  if (out.evaluated > 0) {
    out.estimate = static_cast<double>(out.hits) /
                   static_cast<double>(out.evaluated);
  }
  return out;
}

Result<McPartial> ParallelSampler::estimate_partial(
    const std::map<std::size_t, Rational>& params, ThreadPool* pool,
    const CancelToken* cancel) const {
  CQA_RETURN_IF_ERROR(init_);
  if (sample_size_ == 0) {
    McPartial out;
    out.complete = true;
    return out;
  }
  // Parameters fold into the plan once per call, not once per chunk.
  auto binding = compiled_.bind(params);
  if (!binding.is_ok()) return binding.status();
  const std::size_t nchunks = num_chunks();
  std::vector<ChunkSlot> slots(nchunks);
  std::vector<Status> errors(nchunks, Status::ok());

  auto eval_chunk = [&](std::size_t c) {
    eval_chunk_into(c, binding.value(), cancel, &slots[c], &errors[c]);
  };

  if (pool != nullptr) {
    const std::size_t grain = ThreadPool::recommend_grain(
        nchunks, pool->size(), min_chunks_per_task());
    pool->parallel_for(0, nchunks, grain,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t c = lo; c < hi; ++c) {
                           eval_chunk(c);
                         }
                       });
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) eval_chunk(c);
  }
  return reduce_partial(slots, errors);
}

std::vector<Result<McPartial>> ParallelSampler::estimate_partial_batch(
    const std::vector<McBatchItem>& items,
    const std::map<std::size_t, Rational>& params, ThreadPool* pool) {
  const std::size_t n = items.size();
  std::vector<Result<McPartial>> results(
      n, Status::internal("batch slot not filled"));

  // Per-item chunk grids, laid out consecutively in one global index
  // space: global chunk g belongs to the item whose [offset, offset +
  // num_chunks) range contains it. Items that failed to inline/compile
  // or bind (or are empty) occupy zero global chunks and resolve
  // immediately.
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<CompiledMembership::Binding> bindings(n);
  std::vector<std::vector<ChunkSlot>> slots(n);
  std::vector<std::vector<Status>> errors(n);
  std::size_t min_chunk_points = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ParallelSampler& s = *items[i].sampler;
    std::size_t chunks = 0;
    if (!s.init_.is_ok()) {
      results[i] = s.init_;
    } else if (s.sample_size_ == 0) {
      McPartial out;
      out.complete = true;
      results[i] = out;
    } else {
      auto b = s.compiled_.bind(params);
      if (!b.is_ok()) {
        results[i] = b.status();
      } else {
        bindings[i] = std::move(b).take();
        chunks = s.num_chunks();
        slots[i].assign(chunks, ChunkSlot{});
        errors[i].assign(chunks, Status::ok());
        min_chunk_points = min_chunk_points == 0
                               ? s.chunk_size_
                               : std::min(min_chunk_points, s.chunk_size_);
      }
    }
    offsets[i + 1] = offsets[i] + chunks;
  }
  const std::size_t total = offsets[n];

  auto eval_global = [&](std::size_t g) {
    // Find the owning item: last offset <= g.
    const std::size_t i =
        static_cast<std::size_t>(
            std::upper_bound(offsets.begin(), offsets.end(), g) -
            offsets.begin()) -
        1;
    const std::size_t c = g - offsets[i];
    items[i].sampler->eval_chunk_into(c, bindings[i], items[i].cancel,
                                      &slots[i][c], &errors[i][c]);
  };

  if (pool != nullptr) {
    const std::size_t chunks_per_task =
        min_chunk_points == 0
            ? 1
            : (kMinPointsPerTask + min_chunk_points - 1) / min_chunk_points;
    const std::size_t grain =
        ThreadPool::recommend_grain(total, pool->size(), chunks_per_task);
    pool->parallel_for(0, total, grain,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t g = lo; g < hi; ++g) {
                           eval_global(g);
                         }
                       });
  } else {
    for (std::size_t g = 0; g < total; ++g) eval_global(g);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (offsets[i + 1] == offsets[i]) continue;  // resolved up front
    results[i] = items[i].sampler->reduce_partial(slots[i], errors[i]);
  }
  return results;
}

Result<double> ParallelSampler::estimate(
    const std::map<std::size_t, Rational>& params, ThreadPool* pool) const {
  auto r = estimate_partial(params, pool, /*cancel=*/nullptr);
  if (!r.is_ok()) return r.status();
  // No token was passed, so an incomplete run can only mean injected
  // spurious cancellation; refuse with a typed error rather than return
  // a partial estimate as if it covered the full sample.
  if (!r.value().complete) {
    return Status::cancelled("sampler chunks dropped by injected fault");
  }
  return r.value().estimate;
}

}  // namespace cqa
