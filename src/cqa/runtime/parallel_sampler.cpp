#include "cqa/runtime/parallel_sampler.h"

#include <algorithm>

#include "cqa/approx/random.h"

namespace cqa {

ParallelSampler::ParallelSampler(const Database* db, FormulaPtr phi,
                                 std::vector<std::size_t> element_vars,
                                 std::size_t sample_size,
                                 std::uint64_t seed,
                                 std::size_t chunk_size)
    : element_vars_(std::move(element_vars)),
      sample_size_(sample_size),
      seed_(seed),
      chunk_size_(std::max<std::size_t>(1, chunk_size)) {
  auto inlined = db->inline_predicates(phi);
  if (!inlined.is_ok()) {
    init_ = inlined.status();
    return;
  }
  inlined_ = inlined.value();
}

Result<double> ParallelSampler::estimate(
    const std::map<std::size_t, Rational>& params, ThreadPool* pool) const {
  CQA_RETURN_IF_ERROR(init_);
  if (sample_size_ == 0) return 0.0;
  const std::size_t dim = element_vars_.size();
  const std::size_t nchunks = num_chunks();

  // Chunk-indexed outputs: no shared mutable state between chunks, and
  // the final reduction runs in chunk order regardless of scheduling.
  std::vector<std::size_t> hits(nchunks, 0);
  std::vector<Status> errors(nchunks, Status::ok());

  auto eval_chunk = [&](std::size_t c) {
    const std::size_t lo = c * chunk_size_;
    const std::size_t hi = std::min(sample_size_, lo + chunk_size_);
    Xoshiro rng(stream_seed(seed_, c));
    std::vector<std::vector<double>> points;
    points.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) points.push_back(rng.point(dim));
    auto r = mc_count_hits(inlined_, element_vars_, params, points.data(),
                           points.size());
    if (r.is_ok()) {
      hits[c] = r.value();
    } else {
      errors[c] = r.status();
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, nchunks, 1,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t c = lo; c < hi; ++c) {
                           eval_chunk(c);
                         }
                       });
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) eval_chunk(c);
  }

  // First error in chunk order wins (deterministic across schedules).
  for (const Status& s : errors) {
    CQA_RETURN_IF_ERROR(s);
  }
  std::size_t total = 0;
  for (std::size_t h : hits) total += h;
  return static_cast<double>(total) / static_cast<double>(sample_size_);
}

}  // namespace cqa
