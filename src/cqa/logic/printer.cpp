#include "cqa/logic/printer.h"

#include <sstream>

namespace cqa {

namespace {

using Kind = Formula::Kind;

// Precedence for parenthesization: or < and < unary.
int precedence(Kind k) {
  switch (k) {
    case Kind::kOr: return 1;
    case Kind::kAnd: return 2;
    case Kind::kExists:
    case Kind::kForall: return 0;  // quantifier scope extends right
    default: return 3;
  }
}

void render(const FormulaPtr& f, const std::vector<std::string>& names,
            int parent_prec, std::ostringstream* os) {
  const int prec = precedence(f->kind());
  const bool need_parens = prec < parent_prec;
  if (need_parens) *os << "(";
  switch (f->kind()) {
    case Kind::kTrue:
      *os << "true";
      break;
    case Kind::kFalse:
      *os << "false";
      break;
    case Kind::kAtom:
      *os << f->poly().to_string(names) << " " << op_symbol(f->op()) << " 0";
      break;
    case Kind::kPredicate: {
      *os << f->pred_name() << "(";
      for (std::size_t i = 0; i < f->args().size(); ++i) {
        if (i) *os << ", ";
        *os << f->args()[i].to_string(names);
      }
      *os << ")";
      break;
    }
    case Kind::kNot:
      *os << "!";
      render(f->children()[0], names, 3, os);
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = f->kind() == Kind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < f->children().size(); ++i) {
        if (i) *os << sep;
        render(f->children()[i], names, prec + 1, os);
      }
      break;
    }
    case Kind::kExists:
    case Kind::kForall: {
      *os << (f->kind() == Kind::kExists ? "E " : "A ");
      if (f->var() < names.size()) {
        *os << names[f->var()];
      } else {
        *os << "x" << f->var();
      }
      if (f->active_domain()) *os << " in adom";
      *os << ". ";
      render(f->children()[0], names, 0, os);
      break;
    }
  }
  if (need_parens) *os << ")";
}

}  // namespace

std::string to_string(const FormulaPtr& f, const VarTable& vars) {
  std::ostringstream os;
  render(f, vars.names(), 0, &os);
  return os.str();
}

std::string to_string(const FormulaPtr& f) {
  std::ostringstream os;
  render(f, {}, 0, &os);
  return os.str();
}

}  // namespace cqa
