#include "cqa/logic/formula.h"

#include <algorithm>

namespace cqa {

RelOp negate_op(RelOp op) {
  switch (op) {
    case RelOp::kLt: return RelOp::kGe;
    case RelOp::kLe: return RelOp::kGt;
    case RelOp::kEq: return RelOp::kNe;
    case RelOp::kNe: return RelOp::kEq;
    case RelOp::kGt: return RelOp::kLe;
    case RelOp::kGe: return RelOp::kLt;
  }
  CQA_CHECK(false);
  return RelOp::kEq;
}

const char* op_symbol(RelOp op) {
  switch (op) {
    case RelOp::kLt: return "<";
    case RelOp::kLe: return "<=";
    case RelOp::kEq: return "=";
    case RelOp::kNe: return "!=";
    case RelOp::kGt: return ">";
    case RelOp::kGe: return ">=";
  }
  return "?";
}

bool op_holds(RelOp op, int sign) {
  switch (op) {
    case RelOp::kLt: return sign < 0;
    case RelOp::kLe: return sign <= 0;
    case RelOp::kEq: return sign == 0;
    case RelOp::kNe: return sign != 0;
    case RelOp::kGt: return sign > 0;
    case RelOp::kGe: return sign >= 0;
  }
  return false;
}

FormulaPtr Formula::make_true() {
  static const FormulaPtr kTrueF = [] {
    auto f = std::shared_ptr<Formula>(new Formula());
    f->kind_ = Kind::kTrue;
    return FormulaPtr(f);
  }();
  return kTrueF;
}

FormulaPtr Formula::make_false() {
  static const FormulaPtr kFalseF = [] {
    auto f = std::shared_ptr<Formula>(new Formula());
    f->kind_ = Kind::kFalse;
    return FormulaPtr(f);
  }();
  return kFalseF;
}

FormulaPtr Formula::atom(Polynomial poly, RelOp op) {
  if (poly.is_constant()) {
    return op_holds(op, poly.constant_term().sign()) ? make_true()
                                                     : make_false();
  }
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAtom;
  f->poly_ = std::move(poly);
  f->op_ = op;
  return f;
}

FormulaPtr Formula::predicate(std::string name,
                              std::vector<Polynomial> args) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kPredicate;
  f->pred_name_ = std::move(name);
  f->args_ = std::move(args);
  return f;
}

FormulaPtr Formula::f_not(FormulaPtr g) {
  CQA_CHECK(g != nullptr);
  switch (g->kind_) {
    case Kind::kTrue: return make_false();
    case Kind::kFalse: return make_true();
    case Kind::kAtom: return atom(g->poly_, negate_op(g->op_));
    case Kind::kNot: return g->children_[0];
    default: break;
  }
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kNot;
  f->children_.push_back(std::move(g));
  return f;
}

FormulaPtr Formula::f_and(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (auto& g : fs) {
    CQA_CHECK(g != nullptr);
    if (g->kind_ == Kind::kFalse) return make_false();
    if (g->kind_ == Kind::kTrue) continue;
    if (g->kind_ == Kind::kAnd) {
      flat.insert(flat.end(), g->children_.begin(), g->children_.end());
    } else {
      flat.push_back(std::move(g));
    }
  }
  if (flat.empty()) return make_true();
  if (flat.size() == 1) return flat[0];
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAnd;
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::f_and(FormulaPtr a, FormulaPtr b) {
  return f_and(std::vector<FormulaPtr>{std::move(a), std::move(b)});
}

FormulaPtr Formula::f_or(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (auto& g : fs) {
    CQA_CHECK(g != nullptr);
    if (g->kind_ == Kind::kTrue) return make_true();
    if (g->kind_ == Kind::kFalse) continue;
    if (g->kind_ == Kind::kOr) {
      flat.insert(flat.end(), g->children_.begin(), g->children_.end());
    } else {
      flat.push_back(std::move(g));
    }
  }
  if (flat.empty()) return make_false();
  if (flat.size() == 1) return flat[0];
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kOr;
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::f_or(FormulaPtr a, FormulaPtr b) {
  return f_or(std::vector<FormulaPtr>{std::move(a), std::move(b)});
}

FormulaPtr Formula::exists(std::size_t var, FormulaPtr body,
                           bool active_domain) {
  CQA_CHECK(body != nullptr);
  if (body->kind_ == Kind::kTrue || body->kind_ == Kind::kFalse) {
    // Quantifying over R (nonempty) or over adom: constant bodies fold,
    // except exists-over-adom of true, which is false on empty adom; we
    // keep the standard convention of folding (adom assumed nonempty for
    // folding purposes is unsafe) -- so only fold non-active quantifiers.
    if (!active_domain) return body;
  }
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kExists;
  f->var_ = var;
  f->active_domain_ = active_domain;
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::forall(std::size_t var, FormulaPtr body,
                           bool active_domain) {
  CQA_CHECK(body != nullptr);
  if (body->kind_ == Kind::kTrue || body->kind_ == Kind::kFalse) {
    if (!active_domain) return body;
  }
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kForall;
  f->var_ = var;
  f->active_domain_ = active_domain;
  f->children_.push_back(std::move(body));
  return f;
}

namespace {

void poly_vars(const Polynomial& p, std::set<std::size_t>* out) {
  for (const auto& [m, c] : p.terms()) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] > 0) out->insert(i);
    }
  }
}

}  // namespace

void Formula::free_vars(std::set<std::size_t>* out) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kAtom:
      poly_vars(poly_, out);
      return;
    case Kind::kPredicate:
      for (const auto& a : args_) poly_vars(a, out);
      return;
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr:
      for (const auto& c : children_) c->free_vars(out);
      return;
    case Kind::kExists:
    case Kind::kForall: {
      std::set<std::size_t> inner;
      children_[0]->free_vars(&inner);
      inner.erase(var_);
      out->insert(inner.begin(), inner.end());
      return;
    }
  }
}

std::set<std::size_t> Formula::free_vars() const {
  std::set<std::size_t> out;
  free_vars(&out);
  return out;
}

int Formula::max_var() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return -1;
    case Kind::kAtom:
      return poly_.max_var();
    case Kind::kPredicate: {
      int mv = -1;
      for (const auto& a : args_) mv = std::max(mv, a.max_var());
      return mv;
    }
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr: {
      int mv = -1;
      for (const auto& c : children_) mv = std::max(mv, c->max_var());
      return mv;
    }
    case Kind::kExists:
    case Kind::kForall:
      return std::max(static_cast<int>(var_), children_[0]->max_var());
  }
  return -1;
}

bool Formula::is_quantifier_free() const {
  switch (kind_) {
    case Kind::kExists:
    case Kind::kForall:
      return false;
    default:
      for (const auto& c : children_) {
        if (!c->is_quantifier_free()) return false;
      }
      return true;
  }
}

bool Formula::is_linear() const {
  switch (kind_) {
    case Kind::kAtom:
      return poly_.is_linear();
    case Kind::kPredicate:
      for (const auto& a : args_) {
        if (!a.is_linear()) return false;
      }
      return true;
    default:
      for (const auto& c : children_) {
        if (!c->is_linear()) return false;
      }
      return true;
  }
}

bool Formula::has_predicates() const {
  if (kind_ == Kind::kPredicate) return true;
  for (const auto& c : children_) {
    if (c->has_predicates()) return true;
  }
  return false;
}

std::size_t Formula::count_atoms() const {
  if (kind_ == Kind::kAtom || kind_ == Kind::kPredicate) return 1;
  std::size_t n = 0;
  for (const auto& c : children_) n += c->count_atoms();
  return n;
}

std::size_t Formula::count_quantifiers() const {
  std::size_t n = (kind_ == Kind::kExists || kind_ == Kind::kForall) ? 1 : 0;
  for (const auto& c : children_) n += c->count_quantifiers();
  return n;
}

}  // namespace cqa
