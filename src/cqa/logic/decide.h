// Decision procedure for first-order sentences over the real field.
//
// This is the "sample-point CAD on a line" scheme from DESIGN.md: an
// existential quantifier Exists x.psi is decided by isolating the real
// roots of the polynomials of the atoms that mention x, and testing psi at
// each root (an algebraic number, handled exactly) and at one rational
// point per open interval between roots. Nested quantifiers recurse.
//
// Supported fragment: predicate-free formulas in which every atom couples
// at most one *not-yet-assigned* quantified variable once outer variables
// are fixed ("separable" quantification). Every FO+LIN or FO+POLY formula
// used by the paper's constructions is in this fragment; coupled nonlinear
// quantifier blocks report kUnsupported (use the FO+LIN QE engine for
// coupled linear blocks).

#ifndef CQA_LOGIC_DECIDE_H_
#define CQA_LOGIC_DECIDE_H_

#include <map>

#include "cqa/arith/rational.h"
#include "cqa/logic/formula.h"
#include "cqa/poly/algebraic.h"

namespace cqa {

/// Decides a predicate-free formula under an assignment of rationals to
/// its free variables. Every free variable must be assigned.
Result<bool> decide(const FormulaPtr& f,
                    const std::map<std::size_t, Rational>& assignment);

/// Decides a predicate-free sentence.
Result<bool> decide_sentence(const FormulaPtr& f);

/// A rational number strictly between two algebraic numbers a < b.
Rational rational_between(const AlgebraicNumber& a, const AlgebraicNumber& b);

}  // namespace cqa

#endif  // CQA_LOGIC_DECIDE_H_
