#include "cqa/logic/eval.h"

namespace cqa {

Result<bool> eval_qf(const FormulaPtr& f, const RVec& point,
                     const PredicateOracle* oracle) {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      if (f->poly().max_var() >= static_cast<int>(point.size())) {
        return Status::invalid("evaluation point does not cover all variables");
      }
      return op_holds(f->op(), f->poly().eval(point).sign());
    }
    case Kind::kPredicate: {
      if (oracle == nullptr) {
        return Status::invalid("predicate " + f->pred_name() +
                               " evaluated without an oracle");
      }
      RVec tuple;
      tuple.reserve(f->args().size());
      for (const auto& a : f->args()) {
        if (a.max_var() >= static_cast<int>(point.size())) {
          return Status::invalid("evaluation point does not cover all variables");
        }
        tuple.push_back(a.eval(point));
      }
      return oracle->contains(f->pred_name(), tuple);
    }
    case Kind::kNot: {
      auto r = eval_qf(f->children()[0], point, oracle);
      if (!r.is_ok()) return r;
      return !r.value();
    }
    case Kind::kAnd: {
      for (const auto& c : f->children()) {
        auto r = eval_qf(c, point, oracle);
        if (!r.is_ok()) return r;
        if (!r.value()) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const auto& c : f->children()) {
        auto r = eval_qf(c, point, oracle);
        if (!r.is_ok()) return r;
        if (r.value()) return true;
      }
      return false;
    }
    case Kind::kExists:
    case Kind::kForall:
      return Status::unsupported("eval_qf on a quantified formula");
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

Result<bool> eval_qf_double(const FormulaPtr& f,
                            const std::vector<double>& point,
                            const DoubleOracle* oracle) {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      double v = f->poly().eval_double(point);
      int sign = v < 0 ? -1 : (v > 0 ? 1 : 0);
      return op_holds(f->op(), sign);
    }
    case Kind::kPredicate: {
      if (oracle == nullptr) {
        return Status::invalid("predicate " + f->pred_name() +
                               " evaluated without an oracle");
      }
      std::vector<double> tuple;
      tuple.reserve(f->args().size());
      for (const auto& a : f->args()) tuple.push_back(a.eval_double(point));
      return oracle->contains(f->pred_name(), tuple);
    }
    case Kind::kNot: {
      auto r = eval_qf_double(f->children()[0], point, oracle);
      if (!r.is_ok()) return r;
      return !r.value();
    }
    case Kind::kAnd: {
      for (const auto& c : f->children()) {
        auto r = eval_qf_double(c, point, oracle);
        if (!r.is_ok()) return r;
        if (!r.value()) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const auto& c : f->children()) {
        auto r = eval_qf_double(c, point, oracle);
        if (!r.is_ok()) return r;
        if (r.value()) return true;
      }
      return false;
    }
    case Kind::kExists:
    case Kind::kForall:
      return Status::unsupported("eval_qf_double on a quantified formula");
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

}  // namespace cqa
