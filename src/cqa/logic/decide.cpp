#include "cqa/logic/decide.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "cqa/logic/transform.h"
#include "cqa/poly/root_isolation.h"
#include "cqa/poly/univariate.h"

namespace cqa {

namespace {

using Kind = Formula::Kind;

// Substitutes the assignment into p.
Polynomial apply_assignment(const Polynomial& p,
                            const std::map<std::size_t, Rational>& sigma) {
  Polynomial out = p;
  for (const auto& [v, val] : sigma) {
    if (out.degree_in(v) > 0) out = out.substitute(v, val);
  }
  return out;
}

// Collects the atoms of f (by node pointer) whose polynomial, after
// applying sigma, still mentions `var`. Fails if such an atom mentions any
// additional unassigned variable (non-separable quantification).
Status collect_var_atoms(const FormulaPtr& f, std::size_t var,
                         const std::map<std::size_t, Rational>& sigma,
                         std::map<const Formula*, UPoly>* out) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return Status::ok();
    case Kind::kAtom: {
      Polynomial p = apply_assignment(f->poly(), sigma);
      if (p.degree_in(var) <= 0) return Status::ok();
      // Every remaining variable must be `var` itself.
      for (const auto& [m, c] : p.terms()) {
        for (std::size_t i = 0; i < m.size(); ++i) {
          if (m[i] > 0 && i != var) {
            return Status::unsupported(
                "decide: atom couples two unassigned quantified variables "
                "(non-separable quantifier block)");
          }
        }
      }
      out->emplace(f.get(), UPoly::from_polynomial(p, var));
      return Status::ok();
    }
    case Kind::kPredicate:
      return Status::invalid("decide: formula contains schema predicates");
    default:
      for (const auto& c : f->children()) {
        CQA_RETURN_IF_ERROR(collect_var_atoms(c, var, sigma, out));
      }
      return Status::ok();
  }
}

// Replaces atoms listed in `truths` by constant true/false.
FormulaPtr replace_atoms(const FormulaPtr& f,
                         const std::map<const Formula*, bool>& truths) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kPredicate:
      return f;
    case Kind::kAtom: {
      auto it = truths.find(f.get());
      if (it == truths.end()) return f;
      return it->second ? Formula::make_true() : Formula::make_false();
    }
    case Kind::kNot:
      return Formula::f_not(replace_atoms(f->children()[0], truths));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        kids.push_back(replace_atoms(c, truths));
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists:
    case Kind::kForall: {
      FormulaPtr body = replace_atoms(f->children()[0], truths);
      return f->kind() == Kind::kExists
                 ? Formula::exists(f->var(), std::move(body),
                                   f->active_domain())
                 : Formula::forall(f->var(), std::move(body),
                                   f->active_domain());
    }
  }
  CQA_CHECK(false);
  return nullptr;
}

Result<bool> decide_rec(const FormulaPtr& f,
                        std::map<std::size_t, Rational>* sigma);

// Decides Exists var . body under *sigma.
Result<bool> decide_exists(std::size_t var, const FormulaPtr& body,
                           std::map<std::size_t, Rational>* sigma) {
  // The bound variable shadows any outer assignment to the same index.
  std::optional<Rational> shadowed;
  if (auto it = sigma->find(var); it != sigma->end()) {
    shadowed = it->second;
    sigma->erase(it);
  }
  struct Restore {
    std::map<std::size_t, Rational>* sigma;
    std::size_t var;
    std::optional<Rational>* shadowed;
    ~Restore() {
      sigma->erase(var);
      if (shadowed->has_value()) sigma->emplace(var, **shadowed);
    }
  } restore{sigma, var, &shadowed};

  std::map<const Formula*, UPoly> var_atoms;
  CQA_RETURN_IF_ERROR(collect_var_atoms(body, var, *sigma, &var_atoms));

  if (var_atoms.empty()) {
    // var does not occur: any witness works.
    (*sigma)[var] = Rational(0);
    auto r = decide_rec(body, sigma);
    sigma->erase(var);
    return r;
  }

  // Distinct roots of all the atoms' polynomials, sorted.
  std::vector<AlgebraicNumber> roots;
  for (const auto& [node, up] : var_atoms) {
    if (up.degree() <= 0) continue;  // constant atom in var? cannot happen
    for (auto& r : isolate_real_roots(up)) {
      roots.push_back(AlgebraicNumber::from_root(std::move(r)));
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const AlgebraicNumber& a, const AlgebraicNumber& b) {
              return a.cmp(b) < 0;
            });
  roots.erase(std::unique(roots.begin(), roots.end(),
                          [](const AlgebraicNumber& a,
                             const AlgebraicNumber& b) {
                            return a.cmp(b) == 0;
                          }),
              roots.end());

  // Rational sample points: one per open interval (including the two rays).
  std::vector<Rational> rational_candidates;
  if (roots.empty()) {
    rational_candidates.push_back(Rational(0));
  } else {
    rational_candidates.push_back(roots.front().rational_below() - Rational(1));
    for (std::size_t i = 0; i + 1 < roots.size(); ++i) {
      rational_candidates.push_back(rational_between(roots[i], roots[i + 1]));
    }
    rational_candidates.push_back(roots.back().rational_above() + Rational(1));
  }

  // Try rational candidates: plain recursion with var assigned.
  for (const Rational& c : rational_candidates) {
    (*sigma)[var] = c;
    auto r = decide_rec(body, sigma);
    sigma->erase(var);
    if (!r.is_ok()) return r;
    if (r.value()) return true;
  }

  // Try the roots themselves: substitute exact atom truth values, which
  // removes var from the body, then recurse.
  for (const AlgebraicNumber& alpha : roots) {
    if (alpha.is_rational()) {
      (*sigma)[var] = alpha.rational_value();
      auto r = decide_rec(body, sigma);
      sigma->erase(var);
      if (!r.is_ok()) return r;
      if (r.value()) return true;
      continue;
    }
    std::map<const Formula*, bool> truths;
    for (const auto& [node, up] : var_atoms) {
      truths[node] = op_holds(node->op(), alpha.sign_of(up));
    }
    FormulaPtr reduced = replace_atoms(body, truths);
    auto r = decide_rec(reduced, sigma);
    if (!r.is_ok()) return r;
    if (r.value()) return true;
  }
  return false;
}

Result<bool> decide_rec(const FormulaPtr& f,
                        std::map<std::size_t, Rational>* sigma) {
  switch (f->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      Polynomial p = apply_assignment(f->poly(), *sigma);
      if (!p.is_constant()) {
        return Status::invalid("decide: unassigned free variable in atom " +
                               f->poly().to_string());
      }
      return op_holds(f->op(), p.constant_term().sign());
    }
    case Kind::kPredicate:
      return Status::invalid("decide: formula contains schema predicates");
    case Kind::kNot: {
      auto r = decide_rec(f->children()[0], sigma);
      if (!r.is_ok()) return r;
      return !r.value();
    }
    case Kind::kAnd: {
      for (const auto& c : f->children()) {
        auto r = decide_rec(c, sigma);
        if (!r.is_ok()) return r;
        if (!r.value()) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const auto& c : f->children()) {
        auto r = decide_rec(c, sigma);
        if (!r.is_ok()) return r;
        if (r.value()) return true;
      }
      return false;
    }
    case Kind::kExists:
      if (f->active_domain()) {
        return Status::invalid("decide: active-domain quantifier outside a "
                               "database context");
      }
      return decide_exists(f->var(), f->children()[0], sigma);
    case Kind::kForall: {
      if (f->active_domain()) {
        return Status::invalid("decide: active-domain quantifier outside a "
                               "database context");
      }
      auto r = decide_exists(f->var(), Formula::f_not(f->children()[0]), sigma);
      if (!r.is_ok()) return r;
      return !r.value();
    }
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

}  // namespace

Result<bool> decide(const FormulaPtr& f,
                    const std::map<std::size_t, Rational>& assignment) {
  std::map<std::size_t, Rational> sigma = assignment;
  return decide_rec(f, &sigma);
}

Result<bool> decide_sentence(const FormulaPtr& f) { return decide(f, {}); }

Rational rational_between(const AlgebraicNumber& a, const AlgebraicNumber& b) {
  CQA_CHECK(a.cmp(b) < 0);
  AlgebraicNumber x = a, y = b;
  for (;;) {
    const Rational qa = x.is_rational() ? x.rational_value() : x.hi();
    const Rational qb = y.is_rational() ? y.rational_value() : y.lo();
    if (qa < qb) return Rational::mid(qa, qb);
    if (x.is_rational() && y.is_rational()) {
      return Rational::mid(x.rational_value(), y.rational_value());
    }
    x.refine_to_width(x.hi() == x.lo() ? Rational(1)
                                       : (x.hi() - x.lo()) * Rational(1, 2));
    y.refine_to_width(y.hi() == y.lo() ? Rational(1)
                                       : (y.hi() - y.lo()) * Rational(1, 2));
  }
}

}  // namespace cqa
