// Rendering of formulas back to the parser's syntax.

#ifndef CQA_LOGIC_PRINTER_H_
#define CQA_LOGIC_PRINTER_H_

#include <string>
#include <vector>

#include "cqa/logic/formula.h"
#include "cqa/logic/parser.h"

namespace cqa {

/// Renders a formula with variables named via the table ("x<i>" fallback).
std::string to_string(const FormulaPtr& f, const VarTable& vars);
/// Renders with default variable names x0, x1, ...
std::string to_string(const FormulaPtr& f);

}  // namespace cqa

#endif  // CQA_LOGIC_PRINTER_H_
