#include "cqa/logic/transform.h"

#include <algorithm>

namespace cqa {

namespace {

FormulaPtr nnf_rec(const FormulaPtr& f, bool negate) {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
      return negate ? Formula::make_false() : f;
    case Kind::kFalse:
      return negate ? Formula::make_true() : f;
    case Kind::kAtom:
      return negate ? Formula::atom(f->poly(), negate_op(f->op())) : f;
    case Kind::kPredicate:
      return negate ? Formula::f_not(f) : f;
    case Kind::kNot:
      return nnf_rec(f->children()[0], !negate);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) kids.push_back(nnf_rec(c, negate));
      const bool make_and = (f->kind() == Kind::kAnd) != negate;
      return make_and ? Formula::f_and(std::move(kids))
                      : Formula::f_or(std::move(kids));
    }
    case Kind::kExists:
    case Kind::kForall: {
      FormulaPtr body = nnf_rec(f->children()[0], negate);
      const bool make_exists = (f->kind() == Kind::kExists) != negate;
      return make_exists
                 ? Formula::exists(f->var(), std::move(body), f->active_domain())
                 : Formula::forall(f->var(), std::move(body), f->active_domain());
    }
  }
  CQA_CHECK(false);
  return nullptr;
}

// Simultaneous substitution into a polynomial. Exponents expand through
// replacement polynomials; untouched variables stay as themselves.
Polynomial poly_substitute(const Polynomial& p,
                           const std::map<std::size_t, Polynomial>& sub) {
  Polynomial out;
  for (const auto& [m, c] : p.terms()) {
    Polynomial term = Polynomial::constant(c);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] == 0) continue;
      auto it = sub.find(i);
      if (it == sub.end()) {
        term *= Polynomial::variable(i).pow(m[i]);
      } else {
        term *= it->second.pow(m[i]);
      }
    }
    out += term;
  }
  return out;
}

FormulaPtr substitute_rec(const FormulaPtr& f,
                          std::map<std::size_t, Polynomial> sub,
                          std::size_t* fresh) {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return f;
    case Kind::kAtom:
      return Formula::atom(poly_substitute(f->poly(), sub), f->op());
    case Kind::kPredicate: {
      std::vector<Polynomial> args;
      args.reserve(f->args().size());
      for (const auto& a : f->args()) args.push_back(poly_substitute(a, sub));
      return Formula::predicate(f->pred_name(), std::move(args));
    }
    case Kind::kNot:
      return Formula::f_not(substitute_rec(f->children()[0], sub, fresh));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        kids.push_back(substitute_rec(c, sub, fresh));
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists:
    case Kind::kForall: {
      // Rename the bound variable to a fresh index to avoid capture.
      std::size_t nv = (*fresh)++;
      sub[f->var()] = Polynomial::variable(nv);
      FormulaPtr body = substitute_rec(f->children()[0], sub, fresh);
      return f->kind() == Kind::kExists
                 ? Formula::exists(nv, std::move(body), f->active_domain())
                 : Formula::forall(nv, std::move(body), f->active_domain());
    }
  }
  CQA_CHECK(false);
  return nullptr;
}

}  // namespace

FormulaPtr to_nnf(const FormulaPtr& f) { return nnf_rec(f, false); }

FormulaPtr substitute_var(const FormulaPtr& f, std::size_t var,
                          const Rational& value) {
  std::map<std::size_t, Polynomial> sub;
  sub.emplace(var, Polynomial::constant(value));
  return substitute_vars(f, sub);
}

FormulaPtr substitute_vars(const FormulaPtr& f,
                           const std::map<std::size_t, Polynomial>& sub) {
  int mv = f->max_var();
  for (const auto& [v, p] : sub) {
    mv = std::max(mv, static_cast<int>(v));
    mv = std::max(mv, p.max_var());
  }
  std::size_t fresh = static_cast<std::size_t>(mv + 1);
  return substitute_rec(f, sub, &fresh);
}

FormulaPtr substitute_predicate(const FormulaPtr& f, const std::string& name,
                                std::size_t arity, const FormulaPtr& def) {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return f;
    case Kind::kPredicate: {
      if (f->pred_name() != name) return f;
      CQA_CHECK(f->args().size() == arity);
      std::map<std::size_t, Polynomial> sub;
      for (std::size_t i = 0; i < arity; ++i) sub.emplace(i, f->args()[i]);
      return substitute_vars(def, sub);
    }
    case Kind::kNot:
      return Formula::f_not(
          substitute_predicate(f->children()[0], name, arity, def));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        kids.push_back(substitute_predicate(c, name, arity, def));
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists:
    case Kind::kForall: {
      FormulaPtr body =
          substitute_predicate(f->children()[0], name, arity, def);
      return f->kind() == Kind::kExists
                 ? Formula::exists(f->var(), std::move(body),
                                   f->active_domain())
                 : Formula::forall(f->var(), std::move(body),
                                   f->active_domain());
    }
  }
  CQA_CHECK(false);
  return nullptr;
}

namespace {

using Dnf = std::vector<std::vector<Literal>>;

Result<Dnf> dnf_rec(const FormulaPtr& f, std::size_t max_cells) {
  using Kind = Formula::Kind;
  switch (f->kind()) {
    case Kind::kTrue:
      return Dnf{{}};
    case Kind::kFalse:
      return Dnf{};
    case Kind::kAtom:
      return Dnf{{Literal{f->poly(), f->op()}}};
    case Kind::kPredicate:
    case Kind::kNot:
      return Status::unsupported(
          "DNF requires a predicate-free NNF formula");
    case Kind::kOr: {
      Dnf out;
      for (const auto& c : f->children()) {
        auto sub = dnf_rec(c, max_cells);
        if (!sub.is_ok()) return sub.status();
        for (auto& cell : sub.value()) out.push_back(std::move(cell));
        if (out.size() > max_cells) {
          return Status::out_of_range("DNF cell blow-up");
        }
      }
      return out;
    }
    case Kind::kAnd: {
      Dnf out{{}};
      for (const auto& c : f->children()) {
        auto sub = dnf_rec(c, max_cells);
        if (!sub.is_ok()) return sub.status();
        Dnf next;
        for (const auto& left : out) {
          for (const auto& right : sub.value()) {
            std::vector<Literal> cell = left;
            cell.insert(cell.end(), right.begin(), right.end());
            next.push_back(std::move(cell));
            if (next.size() > max_cells) {
              return Status::out_of_range("DNF cell blow-up");
            }
          }
        }
        out = std::move(next);
      }
      return out;
    }
    case Kind::kExists:
    case Kind::kForall:
      return Status::unsupported("DNF of a quantified formula");
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

}  // namespace

Result<std::vector<std::vector<Literal>>> to_dnf(const FormulaPtr& f,
                                                 std::size_t max_cells) {
  return dnf_rec(to_nnf(f), max_cells);
}

FormulaPtr from_dnf(const std::vector<std::vector<Literal>>& dnf) {
  std::vector<FormulaPtr> cells;
  cells.reserve(dnf.size());
  for (const auto& cell : dnf) {
    std::vector<FormulaPtr> lits;
    lits.reserve(cell.size());
    for (const auto& lit : cell) lits.push_back(Formula::atom(lit.poly, lit.op));
    cells.push_back(Formula::f_and(std::move(lits)));
  }
  return Formula::f_or(std::move(cells));
}

}  // namespace cqa
